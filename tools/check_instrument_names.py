#!/usr/bin/env python3
"""Lint: instrument registrations, catalogue, schema, and docs must agree.

Four artifacts name the metrics instruments and they drift independently:

  1. literal registration sites -- counter("...") / gauge("...") /
     histogram("...") / series("...") calls in src/ and bench/
  2. the kWellKnown[] / kWellKnownSeries[] catalogue in src/util/metrics.cpp
     (pre-registers every instrument so snapshots never omit a namespace)
  3. tools/metrics_schema_keys.txt (the exact key set check_metrics.py
     validates snapshots against)
  4. OBSERVABILITY.md (the namespace documentation)

This lint fails the build when they disagree:

  * a registration site uses a name missing from the catalogue (the
    snapshot would grow a key check_metrics.py rejects)
  * the catalogue and the schema key file differ in either direction
  * a catalogue namespace prefix is undocumented in OBSERVABILITY.md

Usage:  check_instrument_names.py [REPO_ROOT]
"""

import pathlib
import re
import sys

from gatelib import make_die

die = make_die("check_instrument_names")

# A registration: one of the registry entry points with a literal name.
# \s* spans newlines, so clang-format'ed multi-line calls still match.
REGISTRATION = re.compile(
    r"\b(?:timing_)?(?:counter|gauge|histogram|series|minute_series)"
    r"\(\s*\"([a-z0-9_]+(?:\.[a-z0-9_]+)+)\"")

CATALOGUE_ENTRY = re.compile(
    r"\{WellKnown::k(?:Counter|Gauge|Histogram),\s*\"([^\"]+)\""
    r"(?:,\s*(true|false))?")

SERIES_ENTRY = re.compile(r"\{\"([^\"]+)\"")


def scrape_registrations(root):
    names = {}
    for subdir in ("src", "bench", "tools"):
        for path in sorted((root / subdir).rglob("*")):
            if path.suffix not in (".cpp", ".h"):
                continue
            if path.name == "metrics.cpp":
                continue  # the catalogue itself; parsed separately
            text = path.read_text(encoding="utf-8")
            for m in REGISTRATION.finditer(text):
                names.setdefault(m.group(1), path.relative_to(root))
    return names


def parse_catalogue(root):
    text = (root / "src/util/metrics.cpp").read_text(encoding="utf-8")

    start = text.find("kWellKnown[]")
    end = text.find("};", start)
    if start < 0 or end < 0:
        die("metrics.cpp: cannot locate kWellKnown[]")
    deterministic, timing = set(), set()
    for m in CATALOGUE_ENTRY.finditer(text[start:end]):
        (timing if m.group(2) == "true" else deterministic).add(m.group(1))

    start = text.find("kWellKnownSeries[]")
    end = text.find("};", start)
    if start < 0 or end < 0:
        die("metrics.cpp: cannot locate kWellKnownSeries[]")
    series = {m.group(1) for m in SERIES_ENTRY.finditer(text[start:end])}

    if not deterministic or not series:
        die("metrics.cpp: catalogue parse came up empty")
    return deterministic, timing, series


def parse_schema(root):
    expected = {"metrics": set(), "timing": set()}
    path = root / "tools/metrics_schema_keys.txt"
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        section, _, name = line.partition("\t")
        if section not in expected or not name:
            die(f"{path}: malformed line {line!r}")
        expected[section].add(name)
    return expected


def main(argv):
    root = pathlib.Path(argv[1] if len(argv) > 1 else ".").resolve()
    registrations = scrape_registrations(root)
    deterministic, timing, series = parse_catalogue(root)
    catalogue = deterministic | timing | series
    schema = parse_schema(root)

    rogue = sorted(n for n in registrations if n not in catalogue)
    if rogue:
        where = ", ".join(f"{n} ({registrations[n]})" for n in rogue)
        die(f"registration sites not in the kWellKnown catalogue "
            f"(src/util/metrics.cpp): {where}")

    want_metrics = deterministic | series
    if want_metrics != schema["metrics"]:
        missing = sorted(want_metrics - schema["metrics"])
        extra = sorted(schema["metrics"] - want_metrics)
        die(f"metrics_schema_keys.txt drifted from the catalogue: "
            f"missing={missing} extra={extra}")
    if timing != schema["timing"]:
        die(f"timing keys drifted: catalogue={sorted(timing)} "
            f"schema={sorted(schema['timing'])}")

    doc = (root / "OBSERVABILITY.md").read_text(encoding="utf-8")
    prefixes = sorted({name.split(".", 1)[0] + "." for name in catalogue})
    undocumented = [p for p in prefixes if p not in doc]
    if undocumented:
        die(f"OBSERVABILITY.md does not mention namespace(s) "
            f"{undocumented}")

    print(f"check_instrument_names: ok ({len(registrations)} registration "
          f"sites, {len(catalogue)} catalogued instruments, "
          f"{len(prefixes)} documented namespaces)")


if __name__ == "__main__":
    main(sys.argv)
