#!/usr/bin/env python3
"""Regression gate on the chaos soak's false-accusation rate.

The nightly workflow runs `soak_chaos --metrics-out chaos.json` and feeds
the snapshot here.  The bench scores every diagnosed message against
simulation ground truth in an all-honest cluster, so chaos.false_accusations
counts messages where an IP-level fault was pinned on an innocent node.
This script fails the build when that rate exceeds the threshold -- the
check that keeps retry/backoff and graceful snapshot degradation honest.

Usage:
  check_chaos.py SNAPSHOT.json [--max-rate R] [--min-diagnosed N]
                 [--flight SPANS.json]

  --max-rate R       fail when false_accusations / diagnosed > R
                     (default 0.05)
  --min-diagnosed N  fail when fewer than N messages were diagnosed at
                     all -- a silently idle soak must not pass (default 10)
  --flight SPANS.json  on failure, dump the last sim events of this
                     --spans-out trace (the flight-recorder post-mortem)
"""

import argparse
import sys

import gatelib

die = gatelib.make_die("check_chaos")


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("snapshot")
    parser.add_argument("--max-rate", type=float, default=0.05)
    parser.add_argument("--min-diagnosed", type=int, default=10)
    parser.add_argument("--flight", default=None)
    args = parser.parse_args(argv[1:])

    fail = gatelib.with_flight(die, args.flight)
    metrics = gatelib.load_metrics(args.snapshot, fail)
    counter = gatelib.counter_reader(metrics, args.snapshot, fail,
                                     "soak_chaos")
    series = gatelib.series_reader(metrics, args.snapshot, fail,
                                   "soak_chaos")

    diagnosed = counter("chaos.diagnosed_messages")
    false_acc = counter("chaos.false_accusations")
    correct = counter("chaos.correct_accusations")
    by_minute = series("chaos.false_accusations.by_minute")

    gatelib.require_activity(diagnosed, args.min_diagnosed, fail)
    rate = false_acc / diagnosed
    print(f"{args.snapshot}: diagnosed={diagnosed} correct={correct} "
          f"false={false_acc} rate={rate:.4f} (max {args.max_rate})")
    print(f"  by minute: {gatelib.describe_series(by_minute)}")
    if rate > args.max_rate:
        fail(f"false-accusation rate {rate:.4f} exceeds {args.max_rate}")
    print("ok")


if __name__ == "__main__":
    main(sys.argv)
