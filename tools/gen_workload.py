#!/usr/bin/env python3
"""Generate a conciliumd workload trace (DAEMON.md).

Produces the millions-of-users-shaped traffic the daemon exists to serve,
as a pure function of --seed:

  * diurnal load: message arrivals follow an inhomogeneous Poisson process
    whose rate swings sinusoidally over a 24-hour sim day (quiet nights,
    busy afternoons),
  * flash crowds: short windows where the arrival rate multiplies, landing
    preferentially on a handful of "hot" destination keys,
  * correlated regional churn: nodes are partitioned into regions; a churn
    event takes several nodes of one region down with staggered leave
    times (a rack or ISP going away, not independent coin flips),
  * background crash-stop cycles and IP link faults between member pairs,
  * optional static attacker roles.

The output is the strict text format parsed by src/daemon/workload.h: a
directive preamble, timestamp-sorted records, and an `end <count>` trailer.

Usage:
  gen_workload.py --out day.trace --seed 7 --nodes 48 --minutes 30
  gen_workload.py --out weeks.trace --seed 1 --nodes 48 --days 14 \\
      --rate-per-min 4 --flash-crowds 8 --regions 6 --churn-per-day 4 \\
      --crashes-per-day 2 --link-faults-per-day 6 --attackers 3
"""

import argparse
import math
import random
import sys

US = 1
MS = 1000 * US
S = 1000 * MS
MIN = 60 * S
HOUR = 60 * MIN
DAY = 24 * HOUR

ATTACK_ROLES = ("drop", "flip", "equivocate", "replay", "slander", "spam",
                "collude")


def parse_args(argv):
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--out", required=True, help="output trace path")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--nodes", type=int, default=48)
    p.add_argument("--hosts", type=int, default=320)
    p.add_argument("--stubs", type=int, default=12)
    dur = p.add_mutually_exclusive_group()
    dur.add_argument("--minutes", type=float, help="trace length in minutes")
    dur.add_argument("--days", type=float, help="trace length in days")
    p.add_argument("--rate-per-min", type=float, default=3.0,
                   help="mean message rate at the diurnal midline")
    p.add_argument("--diurnal-swing", type=float, default=0.7,
                   help="sinusoid amplitude as a fraction of the midline")
    p.add_argument("--flash-crowds", type=int, default=2,
                   help="number of flash-crowd windows")
    p.add_argument("--flash-multiplier", type=float, default=8.0)
    p.add_argument("--flash-minutes", type=float, default=10.0)
    p.add_argument("--regions", type=int, default=4,
                   help="regions for correlated churn")
    p.add_argument("--churn-per-day", type=float, default=3.0,
                   help="regional churn events per sim day")
    p.add_argument("--crashes-per-day", type=float, default=1.0)
    p.add_argument("--link-faults-per-day", type=float, default=4.0)
    p.add_argument("--attackers", type=int, default=0,
                   help="nodes given a random static attack role at t=0")
    args = p.parse_args(argv)
    if args.nodes < 8:
        p.error("--nodes must be >= 8")
    if args.minutes is not None:
        args.duration_us = int(args.minutes * MIN)
    elif args.days is not None:
        args.duration_us = int(args.days * DAY)
    else:
        args.duration_us = 2 * HOUR
    if args.duration_us <= 0:
        p.error("duration must be positive")
    return args


def diurnal_rate(t_us, midline_per_min, swing):
    """Messages per sim minute at sim time t (sinusoid over a 24 h day)."""
    phase = 2.0 * math.pi * (t_us % DAY) / DAY
    # Peak mid-afternoon, trough in the small hours.
    return midline_per_min * (1.0 + swing * math.sin(phase - math.pi / 2))


def message_times(rng, args, flash_windows):
    """Inhomogeneous Poisson arrivals by thinning."""
    peak = args.rate_per_min * (1.0 + args.diurnal_swing) * (
        args.flash_multiplier if flash_windows else 1.0)
    if peak <= 0.0:
        return []
    times = []
    t = 0.0
    while True:
        t += rng.expovariate(peak / MIN)
        if t >= args.duration_us:
            return times
        rate = diurnal_rate(t, args.rate_per_min, args.diurnal_swing)
        for (start, end) in flash_windows:
            if start <= t < end:
                rate *= args.flash_multiplier
                break
        if rng.random() < rate / peak:
            times.append(int(t))


def main(argv):
    args = parse_args(argv)
    rng = random.Random(args.seed)
    duration = args.duration_us
    records = []  # (t_us, order, line)

    def emit(t, line):
        records.append((t, len(records), line))

    # Static attacker roles, all at t=0 (behaviors are fixed at cluster
    # start; the parser insists timestamps are sorted, and 0 sorts first).
    attackers = rng.sample(range(args.nodes), min(args.attackers, args.nodes))
    for node in attackers:
        emit(0, f"attack 0us {node} {rng.choice(ATTACK_ROLES)}")

    # Flash-crowd windows, each with a small hot key set.
    flash_windows = []
    hot_keys = []
    flash_len = int(args.flash_minutes * MIN)
    for _ in range(args.flash_crowds):
        start = rng.randrange(max(1, duration - flash_len))
        flash_windows.append((start, min(start + flash_len, duration)))
        hot_keys.append([rng.getrandbits(64) for _ in range(3)])

    # Messages: random sender; destination keys are uniform except inside a
    # flash crowd, where most of the traffic piles onto that crowd's hot
    # keys (everyone fetching the same thing).
    for t in message_times(rng, args, flash_windows):
        sender = rng.randrange(args.nodes)
        key = rng.getrandbits(64)
        for i, (start, end) in enumerate(flash_windows):
            if start <= t < end and rng.random() < 0.8:
                key = rng.choice(hot_keys[i])
                break
        emit(t, f"msg {t}us {sender} {key:016x}")

    # Correlated regional churn: regions are contiguous index stripes; one
    # event takes a random subset of a region down with staggered leaves.
    regions = [
        list(range(r * args.nodes // args.regions,
                   (r + 1) * args.nodes // args.regions))
        for r in range(args.regions)
    ]
    n_churn = int(args.churn_per_day * duration / DAY + 0.5)
    for _ in range(n_churn):
        region = rng.choice([r for r in regions if r])
        t0 = rng.randrange(duration)
        down = int(rng.uniform(2, 15) * MIN)
        for node in rng.sample(region, max(1, len(region) // 2)):
            t = t0 + int(rng.uniform(0, 30) * S)  # staggered, not lockstep
            emit(t, f"churn {t}us {node} {down}us")

    # Independent crash-stop cycles (journal replay on restart).
    n_crash = int(args.crashes_per_day * duration / DAY + 0.5)
    for _ in range(n_crash):
        t = rng.randrange(duration)
        node = rng.randrange(args.nodes)
        down = int(rng.uniform(1, 5) * MIN)
        emit(t, f"crash {t}us {node} {down}us")

    # IP link faults between member pairs (the daemon downs the middle link
    # of the a->b path).
    n_fault = int(args.link_faults_per_day * duration / DAY + 0.5)
    for _ in range(n_fault):
        t = rng.randrange(duration)
        a, b = rng.sample(range(args.nodes), 2)
        down = int(rng.uniform(1, 10) * MIN)
        emit(t, f"fault {t}us {a} {b} {down}us")

    records.sort()
    lines = ["concilium-trace v1",
             f"# generated by tools/gen_workload.py --seed {args.seed}",
             f"seed {args.seed}",
             f"nodes {args.nodes}",
             f"hosts {args.hosts}",
             f"stubs {args.stubs}",
             f"duration {duration}us"]
    lines.extend(line for (_, _, line) in records)
    lines.append(f"end {len(records)}")
    with open(args.out, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")
    n_msg = sum(1 for (_, _, l) in records if l.startswith("msg "))
    print(f"{args.out}: {len(records)} records "
          f"({n_msg} msg, {n_churn} churn events, {n_crash} crashes, "
          f"{n_fault} faults, {len(attackers)} attackers) over "
          f"{duration / HOUR:.1f} sim hours")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
