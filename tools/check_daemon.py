#!/usr/bin/env python3
"""Regression gate on the daemon soak's simulated-weeks scores.

The nightly workflow generates a diurnal + flash-crowd + regional-churn
trace with tools/gen_workload.py, runs `soak_daemon --trace ... --metrics-out
daemon.json`, and feeds the snapshot here.  The daemon scores every
completed message against simulation ground truth:

  daemon.false_accusations   diagnoses whose final blame landed on the
                             wrong node (or on any node when the IP network
                             was the real cause)
  daemon.orphaned_messages   fed messages whose completion callback never
                             fired by end of run + settle
  daemon.checkpoints_written checkpoint files cut during the run; a
                             long-running service that stops checkpointing
                             has lost its restart story even if the math
                             is still right

Usage:
  check_daemon.py SNAPSHOT.json [--max-false-rate R] [--max-orphan-rate R]
                  [--min-messages N] [--min-checkpoints N]
                  [--flight SPANS.json]

  --max-false-rate R    fail when false_accusations / diagnosed > R
                        (default 0.15; the trace mixes honest churn and
                        IP faults where abstention, not blame, is right)
  --max-orphan-rate R   fail when orphaned / fed > R (default 0.02)
  --min-messages N      fail when fewer than N messages were fed -- a
                        silently idle daemon must not pass (default 100)
  --min-checkpoints N   fail when fewer than N checkpoints were written
                        (default 0 = not enforced; the nightly lane passes
                        the cadence it expects from the trace length)
  --flight SPANS.json   on failure, dump the last sim events of this
                        --spans-out trace (the flight-recorder post-mortem)
"""

import argparse
import sys

import gatelib

die = gatelib.make_die("check_daemon")


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("snapshot")
    parser.add_argument("--max-false-rate", type=float, default=0.15)
    parser.add_argument("--max-orphan-rate", type=float, default=0.02)
    parser.add_argument("--min-messages", type=int, default=100)
    parser.add_argument("--min-checkpoints", type=int, default=0)
    parser.add_argument("--flight", default=None)
    args = parser.parse_args(argv[1:])

    fail = gatelib.with_flight(die, args.flight)
    metrics = gatelib.load_metrics(args.snapshot, fail)
    counter = gatelib.counter_reader(metrics, args.snapshot, fail,
                                     "soak_daemon")
    series = gatelib.series_reader(metrics, args.snapshot, fail,
                                   "soak_daemon")

    fed = counter("daemon.messages_fed")
    diagnosed = counter("daemon.messages_diagnosed")
    false_acc = counter("daemon.false_accusations")
    correct = counter("daemon.correct_attributions")
    insufficient = counter("daemon.insufficient_outcomes")
    orphans = counter("daemon.orphaned_messages")
    checkpoints = counter("daemon.checkpoints_written")
    crashes = counter("daemon.crash_events")
    false_by_hour = series("daemon.false_accusations.by_hour")

    gatelib.require_activity(fed, args.min_messages, fail)

    false_rate = 0.0 if diagnosed == 0 else false_acc / diagnosed
    orphan_rate = 0.0 if fed == 0 else orphans / fed
    print(f"{args.snapshot}: fed={fed} diagnosed={diagnosed} "
          f"correct={correct} insufficient={insufficient} "
          f"false={false_acc} (rate {false_rate:.4f}, "
          f"max {args.max_false_rate}) "
          f"orphans={orphans}/{fed} (rate {orphan_rate:.4f}, "
          f"max {args.max_orphan_rate}) "
          f"checkpoints={checkpoints} crashes={crashes}")
    print(f"  false by hour: "
          f"{gatelib.describe_series(false_by_hour, window_seconds=3600)}")
    if false_rate > args.max_false_rate:
        fail(f"false-accusation rate {false_rate:.4f} exceeds "
             f"{args.max_false_rate}")
    if orphan_rate > args.max_orphan_rate:
        fail(f"orphan rate {orphan_rate:.4f} exceeds {args.max_orphan_rate}")
    if checkpoints < args.min_checkpoints:
        fail(f"only {checkpoints} checkpoints written; expected at least "
             f"{args.min_checkpoints} (cadence broke)")
    print("ok")


if __name__ == "__main__":
    main(sys.argv)
