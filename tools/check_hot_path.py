#!/usr/bin/env python3
"""Hot-path lint: no NodeId-keyed hash containers off the sanctioned boundaries.

The arena/index refactor's contract (DESIGN.md, "Memory architecture"): per
packet, per probe, and per judgment the simulation addresses state by dense
MemberIndex / LinkId / slot, never by hashing a 20-byte NodeId.  NodeId-keyed
maps are allowed only at the wire boundary, where identifiers enter from a
message and are resolved to an index exactly once.

Mechanically: every declaration in src/ matching

    unordered_map< ... NodeId ... >   or   unordered_set< ... NodeId ... >

must carry the annotation comment

    // hot-path-lint: boundary

on the declaration's first line or an adjacent line (up to two lines above
or below, for declarations wrapped by clang-format).  Fails
listing every unannotated declaration; passes silently otherwise.

Scope: src/ only.  Tests, benches, and examples build whatever ad-hoc maps
they like -- they are not the simulation hot path.
"""

import re
import sys
from pathlib import Path

ANNOTATION = "hot-path-lint: boundary"
DECL = re.compile(r"unordered_(?:map|set)\s*<[^;{}]*NodeId")


def find_violations(root):
    violations = []
    for path in sorted((root / "src").rglob("*.h")) + sorted(
            (root / "src").rglob("*.cpp")):
        lines = path.read_text(encoding="utf-8").splitlines()
        for i, line in enumerate(lines):
            # Join wrapped declarations: the template argument list can
            # span lines, so look at a 3-line window for the NodeId match.
            window = " ".join(lines[i:i + 3])
            if not DECL.search(window):
                continue
            if "unordered_" not in line:
                continue  # attribute the violation to the opening line only
            context = lines[max(0, i - 2):i + 4]
            if any(ANNOTATION in c for c in context):
                continue
            violations.append(f"{path.relative_to(root)}:{i + 1}: {line.strip()}")
    return violations


def main():
    root = Path(__file__).resolve().parent.parent
    violations = find_violations(root)
    if violations:
        print("check_hot_path: NodeId-keyed hash containers without a "
              f"'// {ANNOTATION}' annotation:", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        print(f"\n{len(violations)} violation(s).  Either address the state "
              "by dense index (preferred on hot paths) or, if this is a "
              "sanctioned wire-boundary resolution, annotate the "
              "declaration.", file=sys.stderr)
        sys.exit(1)
    print("check_hot_path: ok")


if __name__ == "__main__":
    main()
