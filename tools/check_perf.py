#!/usr/bin/env python3
"""Perf-trajectory gate over BENCH_<name>.json snapshots.

Benches emit a flat JSON perf snapshot via --bench-out (see
bench_common.h's BenchReport): wall time plus whichever of events/sec,
probes/sec, hosts/sec, and bytes/diagnosis apply.  Committed baselines
live in bench/baselines/.  This tool diffs a fresh snapshot against a
baseline:

    check_perf.py report  NEW BASELINE   # print the deltas, always exit 0
    check_perf.py enforce NEW BASELINE   # fail on >10% rate regression
    check_perf.py improved NEW BASELINE --min-speedup 2.0
                                         # fail unless every rate improved
                                         # by the given factor

`report` is the PR-gate mode (perf noise on shared runners should not
block merges); `enforce` runs nightly where the runners are quieter;
`improved` documents a refactor's claimed speedup against the captured
pre-refactor baseline.

Higher-is-better keys: *_per_sec.  Lower-is-better keys: wall_seconds,
build_seconds, bytes_per_diagnosis.  Counts (events, probes, hosts) are
workload descriptors, not scores; they are reported but never gated.
"""

import argparse
import json
import sys

from gatelib import make_die

die = make_die("check_perf")

HIGHER_IS_BETTER = lambda k: k.endswith("_per_sec")  # noqa: E731
LOWER_IS_BETTER = ("wall_seconds", "build_seconds", "bytes_per_diagnosis")


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            snap = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"{path}: {e}")
    if not isinstance(snap, dict) or "bench" not in snap:
        die(f"{path}: not a BenchReport snapshot (missing 'bench')")
    return snap


def scored_keys(new, base):
    for key in new:
        if key not in base:
            continue
        if not isinstance(new[key], (int, float)):
            continue
        if HIGHER_IS_BETTER(key) or key in LOWER_IS_BETTER:
            yield key


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("mode", choices=["report", "enforce", "improved"])
    ap.add_argument("new", help="fresh --bench-out snapshot")
    ap.add_argument("baseline", help="committed baseline snapshot")
    ap.add_argument("--max-regression", type=float, default=0.10,
                    help="enforce: allowed fractional rate loss (default 0.10)")
    ap.add_argument("--min-speedup", type=float, default=2.0,
                    help="improved: required rate multiple (default 2.0)")
    args = ap.parse_args()

    new = load(args.new)
    base = load(args.baseline)
    if new["bench"] != base["bench"]:
        die(f"bench mismatch: {new['bench']!r} vs {base['bench']!r}")

    failures = []
    any_scored = False
    for key in scored_keys(new, base):
        any_scored = True
        n, b = float(new[key]), float(base[key])
        if b == 0.0:
            print(f"  {key:<24} baseline 0, new {n:.6g} (unscored)")
            continue
        ratio = n / b
        better = ratio if HIGHER_IS_BETTER(key) else 1.0 / ratio
        print(f"  {key:<24} {b:.6g} -> {n:.6g}  ({better:.2f}x "
              f"{'better' if better >= 1.0 else 'worse'})")
        if args.mode == "enforce" and better < 1.0 - args.max_regression:
            failures.append(f"{key}: {better:.2f}x of baseline "
                            f"(allowed {1.0 - args.max_regression:.2f}x)")
        if args.mode == "improved" and better < args.min_speedup:
            failures.append(f"{key}: {better:.2f}x of baseline "
                            f"(need {args.min_speedup:.2f}x)")
    if not any_scored:
        die("no comparable rate keys between the two snapshots")
    if failures:
        die(f"{new['bench']}: " + "; ".join(failures))
    print(f"check_perf: {new['bench']} ok ({args.mode})")


if __name__ == "__main__":
    main()
