#!/usr/bin/env python3
"""Validator for --metrics-out snapshots (see OBSERVABILITY.md).

Usage:
  check_metrics.py validate SNAPSHOT.json KEYS.txt
      Checks that the snapshot is well-formed JSON with "metrics" and
      "timing" sections whose key sets exactly match KEYS.txt (one
      `section<TAB>name` per line), that histogram objects are internally
      consistent, and that every instrumented namespace is present.

  check_metrics.py compare A.json B.json
      Checks that the raw bytes of the "metrics" section are identical in
      both files (the cross---jobs determinism guarantee).  The "timing"
      section is wall-clock derived and deliberately ignored.
"""

import json
import sys

NAMESPACES = ("net.", "tomography.", "overlay.", "core.", "runtime.",
              "sim.", "chaos.", "attack.", "defense.", "dht.",
              "recovery.", "partition.", "crypto.", "daemon.")


def die(msg):
    print(f"check_metrics: {msg}", file=sys.stderr)
    sys.exit(1)


def metrics_section_bytes(path):
    """The raw text of the "metrics" section, for byte-level comparison."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    start = text.find('"metrics": {')
    end = text.find('"timing"')
    if start < 0 or end < 0 or end <= start:
        die(f"{path}: snapshot lacks metrics/timing sections")
    return text[start:end]


def check_histogram(name, value):
    for field in ("lo", "hi", "total", "sum", "counts"):
        if field not in value:
            die(f"histogram {name} missing field '{field}'")
    if value["total"] != sum(value["counts"]):
        die(f"histogram {name}: total {value['total']} != "
            f"sum of counts {sum(value['counts'])}")
    if not value["counts"]:
        die(f"histogram {name} has no bins")


def check_series(name, value):
    """A windowed time-series object (see OBSERVABILITY.md)."""
    for field in ("window_seconds", "mode", "clipped", "values"):
        if field not in value:
            die(f"series {name} missing field '{field}'")
    if value["mode"] not in ("sum", "max"):
        die(f"series {name}: unknown mode {value['mode']!r}")
    if value["window_seconds"] <= 0:
        die(f"series {name}: non-positive window {value['window_seconds']}")
    if value["clipped"] < 0:
        die(f"series {name}: negative clipped count")
    if not all(isinstance(v, (int, float)) for v in value["values"]):
        die(f"series {name}: non-numeric window value")
    if value["values"] and value["values"][-1] == 0:
        die(f"series {name}: trailing zero windows were not trimmed")


def validate(snapshot_path, keys_path):
    with open(snapshot_path, encoding="utf-8") as f:
        snap = json.load(f)
    for section in ("metrics", "timing"):
        if section not in snap:
            die(f"{snapshot_path}: missing '{section}' section")

    expected = {"metrics": set(), "timing": set()}
    with open(keys_path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            section, _, name = line.partition("\t")
            if section not in expected or not name:
                die(f"{keys_path}: malformed line {line!r}")
            expected[section].add(name)

    for section in ("metrics", "timing"):
        got = set(snap[section])
        missing = expected[section] - got
        extra = got - expected[section]
        if missing:
            die(f"{section}: missing keys {sorted(missing)}")
        if extra:
            die(f"{section}: unexpected keys {sorted(extra)} "
                f"(new instrumentation? update {keys_path})")
        for name, value in snap[section].items():
            if isinstance(value, dict):
                if "window_seconds" in value:
                    check_series(name, value)
                else:
                    check_histogram(name, value)
            elif not isinstance(value, (int, float)):
                die(f"{section}.{name}: unexpected value {value!r}")

    for ns in NAMESPACES:
        if not any(k.startswith(ns) for k in snap["metrics"]):
            die(f"metrics section covers no '{ns}*' instrument")

    print(f"{snapshot_path}: ok "
          f"({len(snap['metrics'])} metrics, {len(snap['timing'])} timing)")


def compare(path_a, path_b):
    a = metrics_section_bytes(path_a)
    b = metrics_section_bytes(path_b)
    if a != b:
        die(f"metrics sections differ between {path_a} and {path_b}")
    print(f"metrics sections identical: {path_a} == {path_b}")


def main(argv):
    if len(argv) == 4 and argv[1] == "validate":
        validate(argv[2], argv[3])
    elif len(argv) == 4 and argv[1] == "compare":
        compare(argv[2], argv[3])
    else:
        print(__doc__, file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main(sys.argv)
