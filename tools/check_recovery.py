#!/usr/bin/env python3
"""Regression gate on the recovery soak's crash/partition scores.

The nightly workflow runs `soak_recovery --metrics-out recovery.json` and
feeds the snapshot here.  The bench sweeps crash-stop and partition faults
over an all-honest cluster and scores every outcome against simulation
ground truth:

  recovery.false_accusations  diagnosed messages whose final blame landed
                              on a node when the real cause was a crash, a
                              cut, or IP loss -- degraded-mode diagnosis
                              (RECOVERY.md) exists to keep this low
  recovery.orphaned_messages  messages whose completion callback never
                              fired: a crashed sender failed to resume or
                              abandon its stewardship
  recovery.insufficient_outcomes
                              diagnoses that correctly abstained

Usage:
  check_recovery.py SNAPSHOT.json [--max-false-rate R] [--max-orphan-rate R]
                    [--min-diagnosed N] [--flight SPANS.json]

  --max-false-rate R   fail when false_accusations / diagnosed > R
                       (default 0.25; the sweep's intensity-0 level keeps
                       the plain lossy-IP baseline in the denominator)
  --max-orphan-rate R  fail when orphaned_messages / soak_messages > R
                       (default 0.02: crash recovery must close out
                       virtually every stewardship)
  --min-diagnosed N    fail when fewer than N messages were diagnosed at
                       all -- a silently idle soak must not pass (default 10)
  --flight SPANS.json  on failure, dump the last sim events of this
                       --spans-out trace (the flight-recorder post-mortem)
"""

import argparse
import sys

import gatelib

die = gatelib.make_die("check_recovery")


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("snapshot")
    parser.add_argument("--max-false-rate", type=float, default=0.25)
    parser.add_argument("--max-orphan-rate", type=float, default=0.02)
    parser.add_argument("--min-diagnosed", type=int, default=10)
    parser.add_argument("--flight", default=None)
    args = parser.parse_args(argv[1:])

    fail = gatelib.with_flight(die, args.flight)
    metrics = gatelib.load_metrics(args.snapshot, fail)
    counter = gatelib.counter_reader(metrics, args.snapshot, fail,
                                     "soak_recovery")
    series = gatelib.series_reader(metrics, args.snapshot, fail,
                                   "soak_recovery")

    sent = counter("recovery.soak_messages")
    diagnosed = counter("recovery.diagnosed_messages")
    false_acc = counter("recovery.false_accusations")
    correct = counter("recovery.correct_attributions")
    insufficient = counter("recovery.insufficient_outcomes")
    orphans = counter("recovery.orphaned_messages")
    crashes = counter("recovery.crashes")
    restarts = counter("recovery.restarts")
    by_minute = series("recovery.false_accusations.by_minute")

    gatelib.require_activity(diagnosed, args.min_diagnosed, fail)
    if crashes > 0 and restarts == 0:
        fail(f"{crashes} crashes but no restarts; journal recovery never ran")

    false_rate = false_acc / diagnosed
    orphan_rate = 0.0 if sent == 0 else orphans / sent
    print(f"{args.snapshot}: diagnosed={diagnosed} correct={correct} "
          f"insufficient={insufficient} false={false_acc} "
          f"(rate {false_rate:.4f}, max {args.max_false_rate}) "
          f"orphans={orphans}/{sent} (rate {orphan_rate:.4f}, "
          f"max {args.max_orphan_rate}) crashes={crashes}")
    print(f"  false by minute: {gatelib.describe_series(by_minute)}")
    if false_rate > args.max_false_rate:
        fail(f"false-accusation rate {false_rate:.4f} exceeds "
             f"{args.max_false_rate}")
    if orphan_rate > args.max_orphan_rate:
        fail(f"orphan rate {orphan_rate:.4f} exceeds {args.max_orphan_rate}")
    print("ok")


if __name__ == "__main__":
    main(sys.argv)
