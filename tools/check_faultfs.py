#!/usr/bin/env python3
"""Crashpoint sweep: every injectable storage fault, at every I/O site.

The durability contract (DAEMON.md "Durability under storage faults") is
binary: whatever single storage fault fires at whatever I/O site, a
conciliumd run must end in one of exactly two states --

  * the final state text is byte-identical (cmp) to an unfaulted
    reference run of the same trace, or
  * the process refuses loudly, naming the corrupt artifact or the
    injected fault on stderr.

Anything else is a *silent divergence*, and one is one too many.  This
gate enumerates the space:

  phase A (sweep)    for each (site, kind): run with --io-fault-at
                     SITE:KIND.  A crash kind must exit 137; anything
                     else must either finish with cmp-identical state or
                     fail loudly.  Then a clean follow-up run on the same
                     checkpoint directory must resume/complete and end
                     cmp-identical -- the self-healing half of the claim.
  phase B (degrade)  a run with --io-faults eio:1 (every write fails,
                     retry budget exhausted) must still exit 0, report
                     io-degraded, and end cmp-identical.

Modes: --mode smoke spreads each fault kind across the site space once
(PR gate, ~a dozen runs); --mode full covers every site x kind, with
--stride to subsample evenly (nightly).  Exits non-zero listing every
violation; on failure the offending case's artifacts are left in the
workdir for post-mortem.
"""

import argparse
import os
import pathlib
import shutil
import subprocess
import sys

import gatelib

die = gatelib.make_die("check_faultfs")

FAULT_KINDS = ["eio", "short", "torn_rename", "bitrot", "enospc", "crash"]
# Loud faults fail the operation; silent ones corrupt the artifact and are
# only caught by checkpoint verification at the next resume.
SILENT_KINDS = {"short", "torn_rename", "bitrot"}


def run(cmd, **kw):
    return subprocess.run(cmd, capture_output=True, text=True, **kw)


def gen_trace(tools_dir: pathlib.Path, path: pathlib.Path) -> None:
    r = run([
        sys.executable, str(tools_dir / "gen_workload.py"),
        "--out", str(path), "--seed", "9", "--nodes", "24", "--hosts", "160",
        "--stubs", "4", "--minutes", "8", "--rate-per-min", "2",
        "--churn-per-day", "40", "--crashes-per-day", "20",
        "--link-faults-per-day", "30", "--attackers", "2",
    ])
    if r.returncode != 0:
        die(f"gen_workload failed:\n{r.stderr}")


def conciliumd_cmd(binary, trace, ckpt_dir, state_out, extra=()):
    return [
        str(binary), "--trace", str(trace), "--checkpoint-dir", str(ckpt_dir),
        "--checkpoint-every-sec", "120", "--tick-sec", "30",
        "--settle-sec", "120", "--state-out", str(state_out), *extra,
    ]


def is_loud(proc, case: str) -> bool:
    """A loud refusal names the injected fault or the corrupt artifact."""
    text = proc.stderr + proc.stdout
    return ("injected" in text or "checkpoint" in text or
            "quarantined" in text or case in text)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--conciliumd", required=True,
                    help="path to the conciliumd binary")
    ap.add_argument("--workdir", required=True,
                    help="scratch directory (created, then reused)")
    ap.add_argument("--mode", choices=["smoke", "full"], default="smoke",
                    help="smoke: each kind once at spread sites; "
                         "full: every site x kind (with --stride)")
    ap.add_argument("--stride", type=int, default=1,
                    help="in full mode, test every Nth site per kind")
    args = ap.parse_args()

    binary = pathlib.Path(args.conciliumd).resolve()
    if not binary.exists():
        die(f"no such binary: {binary}")
    tools_dir = pathlib.Path(__file__).resolve().parent
    work = pathlib.Path(args.workdir)
    if work.exists():
        shutil.rmtree(work)
    work.mkdir(parents=True)

    trace = work / "sweep.trace"
    gen_trace(tools_dir, trace)

    # Reference: one unfaulted run.  Also counts the I/O sites to sweep.
    ref_state = work / "ref.state"
    ops_file = work / "ref.ops"
    r = run(conciliumd_cmd(binary, trace, work / "ref-ckpt", ref_state,
                           ["--io-ops-out", str(ops_file)]))
    if r.returncode != 0:
        die(f"reference run failed:\n{r.stdout}\n{r.stderr}")
    ref_bytes = ref_state.read_bytes()
    total_sites = int(ops_file.read_text().strip())
    if total_sites < 10:
        die(f"suspiciously few I/O sites ({total_sites}); "
            "is checkpointing on?")

    # Which (site, kind) pairs to test.
    cases = []
    if args.mode == "smoke":
        # Each kind once, at sites spread across the op space so the trace
        # read, early writes, and late writes all get coverage.
        for i, kind in enumerate(FAULT_KINDS):
            for frac in (0.1, 0.6):
                site = min(total_sites - 1,
                           int(total_sites * frac) + i)
                cases.append((site, kind))
    else:
        stride = max(1, args.stride)
        for site in range(0, total_sites, stride):
            for kind in FAULT_KINDS:
                cases.append((site, kind))

    silent_divergences = []
    failures = []
    tested = 0
    for site, kind in cases:
        case = f"site{site}-{kind}"
        ckpt = work / f"ckpt-{case}"
        state = work / f"state-{case}"
        proc = run(conciliumd_cmd(
            binary, trace, ckpt, state,
            ["--io-fault-at", f"{site}:{kind}"]))
        tested += 1

        if kind == "crash":
            if proc.returncode != 137:
                failures.append(
                    f"{case}: crash injection exited {proc.returncode}, "
                    f"expected 137")
                continue
        elif proc.returncode == 0:
            # Claimed success: the state must be cmp-identical.  A silent
            # fault that evaded detection here would also have had to evade
            # the checkpoint self-digest -- that is the zero we assert.
            if not state.exists() or state.read_bytes() != ref_bytes:
                silent_divergences.append(
                    f"{case}: exit 0 but state differs from reference")
                continue
        else:
            if not is_loud(proc, case):
                silent_divergences.append(
                    f"{case}: exit {proc.returncode} with no loud "
                    f"explanation on stderr:\n{proc.stderr[-400:]}")
                continue

        # Self-healing half: a clean run on the same directory must
        # recover whatever the fault left behind (quarantine corrupt
        # checkpoints, resume from a valid ancestor or from zero) and end
        # cmp-identical -- or refuse loudly naming the artifact.
        state2 = work / f"state2-{case}"
        proc2 = run(conciliumd_cmd(binary, trace, ckpt, state2))
        if proc2.returncode == 0:
            if state2.read_bytes() != ref_bytes:
                silent_divergences.append(
                    f"{case}: post-fault resume diverged from reference")
                continue
        elif not is_loud(proc2, case):
            silent_divergences.append(
                f"{case}: post-fault resume exited {proc2.returncode} "
                f"silently:\n{proc2.stderr[-400:]}")
            continue

        # Case passed: reclaim its scratch space (full mode sweeps
        # hundreds of cases).
        shutil.rmtree(ckpt, ignore_errors=True)
        state.unlink(missing_ok=True)
        state2.unlink(missing_ok=True)

    # Phase B: persistent loud failure degrades gracefully.
    deg_state = work / "state-degraded"
    proc = run(conciliumd_cmd(binary, trace, work / "ckpt-degraded",
                              deg_state, ["--io-faults", "eio:1"]))
    if proc.returncode != 0:
        failures.append(
            f"degraded run (eio:1) exited {proc.returncode}; graceful "
            f"degradation must keep the run alive:\n{proc.stderr[-400:]}")
    else:
        if deg_state.read_bytes() != ref_bytes:
            silent_divergences.append(
                "degraded run (eio:1): state differs from reference")
        if "degraded" not in (proc.stdout + proc.stderr):
            failures.append(
                "degraded run (eio:1) never reported degradation")

    print(f"check_faultfs: mode={args.mode} sites={total_sites} "
          f"cases={tested} silent_divergences={len(silent_divergences)} "
          f"other_failures={len(failures)}")
    problems = silent_divergences + failures
    if problems:
        for p in problems:
            print(f"check_faultfs: FAIL {p}", file=sys.stderr)
        die(f"{len(silent_divergences)} silent divergence(s), "
            f"{len(failures)} other failure(s); artifacts kept in {work}")
    print("check_faultfs: ok -- every fault was survived byte-identically "
          "or refused loudly")


if __name__ == "__main__":
    main()
