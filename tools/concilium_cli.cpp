// concilium — command-line front end to the library.
//
//   concilium topology   [--full] [--seed N]    generated-topology statistics
//   concilium occupancy  --nodes N              Equation-1 occupancy model
//   concilium gamma      --nodes N --collusion C   density-test tuning
//   concilium bandwidth  --nodes N              Section 4.4 cost model
//   concilium coverage   [--full] [--seed N] [--jobs N]
//                                               Figure-4 style coverage curve
//   concilium run        [--seed N] [--messages M] [--droppers F]
//                                               event-driven protocol demo
//   concilium metrics    [--seed N] [--messages M] [--droppers F] [--json]
//                                               run demo, dump metric registry
//   concilium trace      [--seed N] [--messages M]
//                                               diagnose a known dropper and
//                                               print the JSON blame journal
//   concilium spans      [--seed N] [--messages M] [--droppers F]
//                                               run demo with the span
//                                               recorder armed and print the
//                                               Chrome trace-event JSON

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/bandwidth.h"
#include "core/trace.h"
#include "net/topology_gen.h"
#include "overlay/density.h"
#include "runtime/cluster.h"
#include "sim/experiments.h"
#include "sim/scenario.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/spans.h"

namespace {

using namespace concilium;

struct Options {
    bool full = false;
    std::uint64_t seed = 1;
    double nodes = 10000;
    double collusion = 0.2;
    std::size_t messages = 100;
    double droppers = 0.1;
    /// Experiment-driver workers; 0 = hardware_concurrency.
    std::size_t jobs = 0;
    /// `metrics`: emit the JSON snapshot instead of Prometheus text.
    bool json = false;
};

Options parse(int argc, char** argv, int first) {
    Options o;
    for (int i = first; i < argc; ++i) {
        const std::string a = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--full") {
            o.full = true;
        } else if (a == "--seed") {
            o.seed = std::strtoull(next(), nullptr, 10);
        } else if (a == "--nodes") {
            o.nodes = std::strtod(next(), nullptr);
        } else if (a == "--collusion") {
            o.collusion = std::strtod(next(), nullptr);
        } else if (a == "--messages") {
            o.messages = std::strtoull(next(), nullptr, 10);
        } else if (a == "--droppers") {
            o.droppers = std::strtod(next(), nullptr);
        } else if (a == "--jobs") {
            o.jobs = std::strtoull(next(), nullptr, 10);
        } else if (a == "--json") {
            o.json = true;
        } else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            std::exit(2);
        }
    }
    return o;
}

int cmd_topology(const Options& o) {
    util::Rng rng(o.seed);
    const auto params =
        o.full ? net::scan_like_params() : net::medium_params();
    const auto topo = net::generate_topology(params, rng);
    const auto stats = net::summarize(topo);
    std::printf("routers            %zu\n", stats.routers);
    std::printf("links              %zu\n", stats.links);
    std::printf("core routers       %zu\n", stats.core_routers);
    std::printf("stub routers       %zu\n", stats.stub_routers);
    std::printf("end hosts          %zu\n", stats.end_hosts);
    std::printf("links/routers      %.3f   (SCAN: 1.608)\n",
                stats.link_router_ratio);
    std::printf("mean interior deg  %.2f\n", stats.mean_interior_degree);
    std::printf("connected          %s\n", topo.connected() ? "yes" : "NO");
    return 0;
}

int cmd_occupancy(const Options& o) {
    const util::OverlayGeometry geom{.digits = 32};
    const auto model = overlay::occupancy_model(o.nodes, geom);
    std::printf("N                  %.0f\n", o.nodes);
    std::printf("mu_phi (entries)   %.2f\n", model.mean_count());
    std::printf("sigma_phi          %.2f\n", model.stddev_count());
    std::printf("routing peers      %.2f  (mu_phi + 16 leaves)\n",
                model.mean_count() + 16);
    std::printf("\nrow fill probabilities (Equation 1):\n");
    for (int row = 0; row < 8; ++row) {
        std::printf("  row %d: %.4f\n", row,
                    overlay::slot_fill_probability(row, o.nodes, geom));
    }
    return 0;
}

int cmd_gamma(const Options& o) {
    const util::OverlayGeometry geom{.digits = 32};
    const auto best = overlay::optimal_gamma(
        o.nodes, o.nodes, o.collusion * o.nodes, geom, 1.0, 4.0, 301);
    std::printf("N = %.0f, colluding fraction c = %.2f\n", o.nodes,
                o.collusion);
    std::printf("optimal gamma      %.3f\n", best.gamma);
    std::printf("false positives    %.4f\n", best.false_positive);
    std::printf("false negatives    %.4f\n", best.false_negative);
    return 0;
}

int cmd_bandwidth(const Options& o) {
    const core::BandwidthModel model;
    const double peers = model.expected_routing_peers(o.nodes);
    std::printf("N                    %.0f\n", o.nodes);
    std::printf("routing peers        %.2f\n", peers);
    std::printf("advertisement        %.2f kB\n",
                model.advertisement_bytes(o.nodes) / 1000.0);
    std::printf("heavyweight probe    %.2f MB\n",
                core::BandwidthModel::heavyweight_probe_bytes(peers) /
                    (1024.0 * 1024.0));
    return 0;
}

int cmd_coverage(const Options& o) {
    sim::ScenarioParams p;
    p.topology = o.full ? net::scan_like_params() : net::medium_params();
    p.seed = o.seed;
    const sim::Scenario world(p);
    const sim::ExperimentDriver driver(o.seed + 17, o.jobs);
    const auto curve = sim::run_coverage_experiment(world, 40, 60, driver);
    std::printf("%-12s %-12s %-12s\n", "peer_trees", "coverage",
                "vouchers");
    for (std::size_t k = 0; k < curve.coverage.size(); k += 5) {
        if (curve.hosts_counted[k] == 0) break;
        std::printf("%-12zu %-12.4f %-12.3f\n", k, curve.coverage[k],
                    curve.vouchers[k]);
    }
    return 0;
}

int run_demo(const Options& o, bool print_summary);

int cmd_run(const Options& o) { return run_demo(o, true); }

int run_demo(const Options& o, bool print_summary) {
    sim::ScenarioParams p;
    p.topology = net::small_params();
    p.topology.end_hosts = 500;
    p.overlay_nodes_override = 80;
    p.duration = 2 * util::kHour;
    p.seed = o.seed;
    const sim::Scenario world(p);
    util::Rng rng(o.seed + 71);
    std::vector<runtime::NodeBehavior> behaviors(world.overlay_net().size());
    for (const auto d : rng.sample_indices(
             behaviors.size(),
             static_cast<std::size_t>(o.droppers * behaviors.size()))) {
        behaviors[d].drop_forward_probability = 0.5;
    }
    net::EventSim sim;
    runtime::Cluster cluster(sim, world.timeline(), world.overlay_net(),
                             world.trees(), runtime::RuntimeParams{},
                             behaviors, rng.fork());
    cluster.start();
    sim.run_until(3 * util::kMinute);
    std::size_t delivered = 0;
    std::size_t correct = 0;
    std::size_t judged = 0;
    for (std::size_t i = 0; i < o.messages; ++i) {
        const auto from = static_cast<overlay::MemberIndex>(
            rng.uniform_index(world.overlay_net().size()));
        cluster.send(from, util::NodeId::random(rng),
                     [&](const runtime::Cluster::MessageOutcome& out) {
                         if (out.delivered) {
                             ++delivered;
                             return;
                         }
                         ++judged;
                         if (out.true_drop_hop.has_value()) {
                             if (out.blamed ==
                                 world.overlay_net()
                                     .member(out.route[*out.true_drop_hop])
                                     .id()) {
                                 ++correct;
                             }
                         } else if (out.true_network_drop &&
                                    out.network_blamed) {
                             ++correct;
                         }
                     });
        sim.run_until(sim.now() + 20 * util::kSecond);
    }
    sim.run_until(sim.now() + 5 * util::kMinute);
    const auto& s = cluster.stats();
    if (print_summary) {
        std::printf(
            "messages %zu | delivered %zu | diagnosed correctly %zu/%zu\n",
            s.messages, delivered, correct, judged);
        std::printf(
            "snapshots %zu | heavyweight sessions %zu | accusations %zu\n",
            s.snapshots_published, s.heavyweight_sessions,
            s.accusations_filed);
    }
    return 0;
}

int cmd_metrics(const Options& o) {
    // Exercise the full protocol (same world as `concilium run`), then dump
    // everything the instrumentation saw.
    run_demo(o, false);
    const auto snapshot = util::metrics::Registry::global().snapshot();
    const std::string out = o.json ? snapshot.to_json() : snapshot.to_text();
    std::fputs(out.c_str(), stdout);
    return 0;
}

int cmd_spans(const Options& o) {
    // Same world as `concilium run`, with the span recorder armed: the
    // demo's world-build phases, probe rounds, diagnoses, judgments, and
    // snapshot exchanges come out as Chrome trace-event JSON (load in
    // Perfetto / chrome://tracing, or feed to tools/check_spans.py).
    util::spans::Recorder::global().enable();
    run_demo(o, false);
    const std::string out = util::spans::Recorder::global().to_chrome_json();
    std::fputs(out.c_str(), stdout);
    return 0;
}

int cmd_trace(const Options& o) {
    // A known-guilty world: one node on a predictable route drops every
    // message it should forward.  The journal printed at the end shows the
    // full diagnosis — forwarder chain, per-link Equation 2 confidences,
    // Equation 3 blame, and the revision chain that converged on the
    // dropper.
    sim::ScenarioParams p;
    p.topology = net::small_params();
    p.topology.end_hosts = 500;
    p.overlay_nodes_override = 80;
    p.duration = 2 * util::kHour;
    // No background link failures: the dropper should be the only fault,
    // so every lost message traces back to it.
    p.failures.fraction_bad = 0.0;
    p.seed = o.seed;
    const sim::Scenario world(p);
    const auto& overlay_net = world.overlay_net();

    // Find a sender/key pair whose route is long enough to bury the dropper
    // two hops downstream (so diagnosing it exercises the revision chain).
    util::Rng search(o.seed + 99);
    std::vector<overlay::MemberIndex> hops;
    overlay::MemberIndex from = 0;
    util::NodeId key;
    for (int attempt = 0; attempt < 20000 && hops.size() < 4; ++attempt) {
        from = static_cast<overlay::MemberIndex>(
            search.uniform_index(overlay_net.size()));
        key = util::NodeId::random(search);
        try {
            hops = overlay_net.route(from, key);
        } catch (const std::exception&) {
            hops.clear();
        }
    }
    std::size_t drop_pos = 2;
    if (hops.size() < 4) {
        // Fall back to any 3-hop route with the middle hop guilty.
        for (int attempt = 0; attempt < 20000 && hops.size() < 3; ++attempt) {
            from = static_cast<overlay::MemberIndex>(
                search.uniform_index(overlay_net.size()));
            key = util::NodeId::random(search);
            try {
                hops = overlay_net.route(from, key);
            } catch (const std::exception&) {
                hops.clear();
            }
        }
        drop_pos = 1;
    }
    if (hops.size() < 3) {
        std::fprintf(stderr,
                     "trace: no multi-hop route found for seed %llu\n",
                     static_cast<unsigned long long>(o.seed));
        return 1;
    }
    const overlay::MemberIndex dropper = hops[drop_pos];

    std::vector<runtime::NodeBehavior> behaviors(overlay_net.size());
    behaviors[dropper].drop_forward_probability = 1.0;
    util::Rng rng(o.seed + 71);
    net::EventSim sim;
    runtime::Cluster cluster(sim, world.timeline(), overlay_net,
                             world.trees(), runtime::RuntimeParams{},
                             behaviors, rng.fork());
    core::DiagnosisTrace trace;
    cluster.set_trace(&trace);
    cluster.start();
    sim.run_until(3 * util::kMinute);
    const std::size_t messages = o.messages == 100 ? 8 : o.messages;
    for (std::size_t i = 0; i < messages; ++i) {
        cluster.send(from, key);
        sim.run_until(sim.now() + 30 * util::kSecond);
    }
    sim.run_until(sim.now() + 2 * util::kMinute);

    std::string out = "{\"scenario\": {\"seed\": ";
    out += util::json_number(static_cast<std::uint64_t>(o.seed));
    out += ", \"dropper\": ";
    out += util::json_quote(overlay_net.member(dropper).id().to_hex());
    out += ", \"messages\": ";
    out += util::json_number(static_cast<std::uint64_t>(messages));
    out += "},\n\"records\": ";
    out += trace.records_json();
    out += "}\n";
    std::fputs(out.c_str(), stdout);
    return 0;
}

void usage() {
    std::fprintf(stderr,
                 "usage: concilium <topology|occupancy|gamma|bandwidth|"
                 "coverage|run|metrics|trace|spans> [options]\n");
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    const Options o = parse(argc, argv, 2);
    if (cmd == "topology") return cmd_topology(o);
    if (cmd == "occupancy") return cmd_occupancy(o);
    if (cmd == "gamma") return cmd_gamma(o);
    if (cmd == "bandwidth") return cmd_bandwidth(o);
    if (cmd == "coverage") return cmd_coverage(o);
    if (cmd == "run") return cmd_run(o);
    if (cmd == "metrics") return cmd_metrics(o);
    if (cmd == "trace") return cmd_trace(o);
    if (cmd == "spans") return cmd_spans(o);
    usage();
    return 2;
}
