#!/usr/bin/env python3
"""Validator for --spans-out Chrome trace-event dumps (see OBSERVABILITY.md).

Usage:
  check_spans.py validate TRACE.json [--require NAME ...]
      Checks that the trace is loadable Chrome trace-event JSON: a dict
      with displayTimeUnit / otherData / traceEvents, two clock-metadata
      process_name events, every span event carrying name/cat/ph/pid/
      tid/ts (and dur >= 0 for ph "X"), names drawn from the recorder's
      catalogue, sim-section events on pid 1 with deterministic integer
      args, wall-section events on pid 2.  --require NAME fails unless at
      least one event with that name is present (repeatable).

  check_spans.py compare A.json B.json
      Checks that the canonical sim sections are identical (the
      cross---jobs determinism guarantee).  Wall-section events are
      wall-clock derived and deliberately ignored.

  check_spans.py tail TRACE.json [N]
      Prints the flight-recorder view: the last N (default 40) sim-clock
      events, oldest first.
"""

import json
import sys

from gatelib import flight_tail, make_die

die = make_die("check_spans")

# Keep in sync with span_name() in src/util/spans.cpp.
KNOWN_NAMES = {
    "world_build", "topology_gen", "overlay_build", "tree_build",
    "failure_timeline", "scenario_index", "fault_plan", "trial", "shard",
    "probe_round", "heavyweight_session", "mle_solve", "snapshot_exchange",
    "diagnosis", "judgment", "recovery_handshake",
}

SIM_PID = 1
WALL_PID = 2


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"{path}: {e}")
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        die(f"{path}: not a trace-event dump (missing 'traceEvents')")
    return trace


def sim_events(trace):
    return [e for e in trace["traceEvents"] if e.get("cat") == "sim"]


def canonical_sim(trace):
    """The sim section as canonical bytes (order- and field-exact)."""
    return json.dumps(sim_events(trace), sort_keys=True,
                      separators=(",", ":")).encode()


def validate(path, required):
    trace = load(path)
    for field in ("displayTimeUnit", "otherData", "traceEvents"):
        if field not in trace:
            die(f"{path}: missing top-level '{field}'")
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        die(f"{path}: empty traceEvents")

    meta = [e for e in events if e.get("ph") == "M"]
    meta_pids = {e.get("pid") for e in meta
                 if e.get("name") == "process_name"}
    if not {SIM_PID, WALL_PID} <= meta_pids:
        die(f"{path}: missing clock process_name metadata "
            f"(got pids {sorted(meta_pids)})")

    spans = [e for e in events if e.get("ph") in ("X", "i")]
    if not spans:
        die(f"{path}: no span events (recorder never armed?)")
    for e in spans:
        for field in ("name", "cat", "pid", "tid", "ts"):
            if field not in e:
                die(f"{path}: span event missing '{field}': {e!r}")
        if e["name"] not in KNOWN_NAMES:
            die(f"{path}: unknown span name {e['name']!r} "
                f"(update KNOWN_NAMES after extending SpanType)")
        if e["ph"] == "X" and e.get("dur", -1) < 0:
            die(f"{path}: negative/missing dur on {e['name']}")
        if e["cat"] == "sim":
            if e["pid"] != SIM_PID:
                die(f"{path}: sim event on pid {e['pid']}")
            args = e.get("args", {})
            for field in ("scope", "seq", "causal", "arg"):
                if not isinstance(args.get(field), int):
                    die(f"{path}: sim event {e['name']} lacks integer "
                        f"arg '{field}' (wall data leaking into the "
                        f"deterministic section?)")
        elif e["cat"] == "wall":
            if e["pid"] != WALL_PID:
                die(f"{path}: wall event on pid {e['pid']}")
        else:
            die(f"{path}: unknown cat {e['cat']!r} on {e['name']}")

    names = {e["name"] for e in spans}
    for name in required:
        if name not in names:
            die(f"{path}: required span '{name}' absent "
                f"(names present: {sorted(names)})")

    n_sim = sum(1 for e in spans if e["cat"] == "sim")
    print(f"{path}: ok ({len(spans)} spans, {n_sim} sim / "
          f"{len(spans) - n_sim} wall, {len(names)} span types, "
          f"dropped={trace['otherData'].get('dropped', 0)})")


def compare(path_a, path_b):
    a, b = load(path_a), load(path_b)
    if canonical_sim(a) != canonical_sim(b):
        sa, sb = sim_events(a), sim_events(b)
        if len(sa) != len(sb):
            die(f"sim sections differ: {len(sa)} events in {path_a} vs "
                f"{len(sb)} in {path_b}")
        for i, (ea, eb) in enumerate(zip(sa, sb)):
            if ea != eb:
                die(f"sim sections differ at event {i}: "
                    f"{ea!r} vs {eb!r}")
        die(f"sim sections differ between {path_a} and {path_b}")
    print(f"sim sections identical: {path_a} == {path_b} "
          f"({len(sim_events(a))} events)")


def tail(path, last_n):
    for line in flight_tail(path, last_n):
        print(line)


def main(argv):
    if len(argv) >= 3 and argv[1] == "validate":
        required = []
        rest = argv[3:]
        while rest:
            if rest[0] == "--require" and len(rest) >= 2:
                required.append(rest[1])
                rest = rest[2:]
            else:
                die(f"unknown validate argument {rest[0]!r}")
        validate(argv[2], required)
    elif len(argv) == 4 and argv[1] == "compare":
        compare(argv[2], argv[3])
    elif len(argv) in (3, 4) and argv[1] == "tail":
        tail(argv[2], int(argv[3]) if len(argv) == 4 else 40)
    else:
        print(__doc__, file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main(sys.argv)
