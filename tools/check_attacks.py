#!/usr/bin/env python3
"""Regression gate on the attack soak's evidence-integrity scores.

The nightly workflow runs `soak_attacks --metrics-out attacks.json` and
feeds the snapshot here.  The bench recruits equivocators, replayers,
slanderers, accusation spammers, and verdict colluders, then scores the
defenses against simulation ground truth:

  attack.attackers_evaded    attackers that dropped a message yet were never
                             blamed, never received a verified accusation,
                             and have no equivocation proof on file
  attack.slander_successes   slanderer-filed accusations a third party
                             verified as kOk -- must be exactly zero
  attack.false_accusations   diagnosed messages whose final blame landed on
                             an honest node

Usage:
  check_attacks.py SNAPSHOT.json [--max-evasion R] [--max-slander N]
                   [--max-false-rate R] [--min-diagnosed N]
                   [--flight SPANS.json]

  --max-evasion R     fail when attackers_evaded / attackers_with_drops > R
                      (default 0.25)
  --max-slander N     fail when slander_successes > N (default 0: slander
                      must never verify)
  --max-false-rate R  fail when false_accusations / diagnosed > R
                      (default 0.1)
  --min-diagnosed N   fail when fewer than N messages were diagnosed at
                      all -- a silently idle soak must not pass (default 10)
  --flight SPANS.json on failure, dump the last sim events of this
                      --spans-out trace (the flight-recorder post-mortem)
"""

import argparse
import sys

import gatelib

die = gatelib.make_die("check_attacks")


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("snapshot")
    parser.add_argument("--max-evasion", type=float, default=0.25)
    parser.add_argument("--max-slander", type=int, default=0)
    parser.add_argument("--max-false-rate", type=float, default=0.1)
    parser.add_argument("--min-diagnosed", type=int, default=10)
    parser.add_argument("--flight", default=None)
    args = parser.parse_args(argv[1:])

    fail = gatelib.with_flight(die, args.flight)
    metrics = gatelib.load_metrics(args.snapshot, fail)
    counter = gatelib.counter_reader(metrics, args.snapshot, fail,
                                     "soak_attacks")
    series = gatelib.series_reader(metrics, args.snapshot, fail,
                                   "soak_attacks")

    diagnosed = counter("attack.diagnosed_messages")
    false_acc = counter("attack.false_accusations")
    with_drops = counter("attack.attackers_with_drops")
    caught = counter("attack.attackers_caught")
    evaded = counter("attack.attackers_evaded")
    slander = counter("attack.slander_successes")
    by_minute = series("attack.false_accusations.by_minute")

    gatelib.require_activity(diagnosed, args.min_diagnosed, fail)

    evasion_rate = 0.0 if with_drops == 0 else evaded / with_drops
    false_rate = false_acc / diagnosed
    print(f"{args.snapshot}: diagnosed={diagnosed} caught={caught} "
          f"evaded={evaded}/{with_drops} (rate {evasion_rate:.4f}, "
          f"max {args.max_evasion}) slander={slander} "
          f"(max {args.max_slander}) false={false_acc} "
          f"(rate {false_rate:.4f}, max {args.max_false_rate})")
    print(f"  false by minute: {gatelib.describe_series(by_minute)}")
    if evasion_rate > args.max_evasion:
        fail(f"evasion rate {evasion_rate:.4f} exceeds {args.max_evasion}")
    if slander > args.max_slander:
        fail(f"{slander} slander accusations verified "
             f"(max {args.max_slander}); the hardened verifier has a hole")
    if false_rate > args.max_false_rate:
        fail(f"false-accusation rate {false_rate:.4f} exceeds "
             f"{args.max_false_rate}")
    print("ok")


if __name__ == "__main__":
    main(sys.argv)
