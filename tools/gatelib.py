"""Shared plumbing for the soak gate scripts.

check_chaos.py, check_attacks.py, and check_recovery.py all read a
`--metrics-out` snapshot, pull a handful of counters, and fail the build
when a scored rate crosses a threshold.  The thresholds and the scoring
stay in each gate; the snapshot loading, counter access, and uniform
error reporting live here so the three scripts cannot drift apart.
"""

import json
import sys


def make_die(tool):
    """An exit-with-error printer prefixed with the tool's name."""

    def die(msg):
        print(f"{tool}: {msg}", file=sys.stderr)
        sys.exit(1)

    return die


def load_metrics(path, die):
    """The 'metrics' dict of a --metrics-out snapshot, or die trying."""
    try:
        with open(path, encoding="utf-8") as f:
            snap = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"{path}: {e}")
    metrics = snap.get("metrics")
    if not isinstance(metrics, dict):
        die(f"{path}: missing 'metrics' section")
    return metrics


def counter_reader(metrics, path, die, producer):
    """A numeric-counter reader that dies naming the producing bench."""

    def counter(name):
        value = metrics.get(name)
        if not isinstance(value, (int, float)):
            die(f"{path}: missing counter '{name}' "
                f"(was this snapshot produced by {producer}?)")
        return value

    return counter


def require_activity(diagnosed, minimum, die):
    """Fail a silently idle soak instead of green-lighting it."""
    if diagnosed < minimum:
        die(f"only {diagnosed} messages diagnosed "
            f"(need >= {minimum}); the soak ran effectively idle")


def series_reader(metrics, path, die, producer):
    """A windowed-series reader (returns the trimmed values list).

    Series are the `<counter>.by_minute` objects a --metrics-out snapshot
    carries next to the counters (see OBSERVABILITY.md "Windowed series").
    """

    def series(name):
        value = metrics.get(name)
        if not isinstance(value, dict) or "values" not in value:
            die(f"{path}: missing series '{name}' "
                f"(was this snapshot produced by {producer}?)")
        return value["values"]

    return series


def describe_series(values, window_seconds=60):
    """One-line 'peak N in minute M' summary for gate output."""
    if not values:
        return "quiet (no non-zero windows)"
    peak = max(values)
    minute = values.index(peak) * window_seconds // 60
    return (f"{sum(values)} across {len(values)} windows, "
            f"peak {peak} in minute {minute}")


def flight_tail(spans_path, last_n=40):
    """The last `last_n` sim-clock events of a --spans-out trace.

    Returns formatted lines, oldest first — the flight-recorder dump the
    gates print when a threshold trips, so the post-mortem starts from the
    events leading up to the failure instead of a re-run.
    """
    with open(spans_path, encoding="utf-8") as f:
        trace = json.load(f)
    events = [e for e in trace.get("traceEvents", [])
              if e.get("cat") == "sim"]
    lines = [f"--- flight recorder: last {min(last_n, len(events))} of "
             f"{len(events)} sim events ({spans_path}) ---"]
    for e in events[-last_n:]:
        args = e.get("args", {})
        lines.append(
            f"  t={e.get('ts', '?'):>14} dur={e.get('dur', 0):>12} "
            f"{e.get('name', '?'):<20} scope={args.get('scope', 0):#x} "
            f"causal={args.get('causal', 0)} arg={args.get('arg', 0)}")
    dropped = trace.get("otherData", {}).get("dropped", 0)
    if dropped:
        lines.append(f"  ({dropped} older events overwritten in the ring)")
    return lines


def with_flight(die, spans_path, last_n=40):
    """Wraps `die` to dump the flight-recorder tail before failing."""
    if not spans_path:
        return die

    def flight_die(msg):
        try:
            for line in flight_tail(spans_path, last_n):
                print(line, file=sys.stderr)
        except (OSError, json.JSONDecodeError, KeyError) as e:
            print(f"(flight recorder unavailable: {e})", file=sys.stderr)
        die(msg)

    return flight_die
