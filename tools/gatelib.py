"""Shared plumbing for the soak gate scripts.

check_chaos.py, check_attacks.py, and check_recovery.py all read a
`--metrics-out` snapshot, pull a handful of counters, and fail the build
when a scored rate crosses a threshold.  The thresholds and the scoring
stay in each gate; the snapshot loading, counter access, and uniform
error reporting live here so the three scripts cannot drift apart.
"""

import json
import sys


def make_die(tool):
    """An exit-with-error printer prefixed with the tool's name."""

    def die(msg):
        print(f"{tool}: {msg}", file=sys.stderr)
        sys.exit(1)

    return die


def load_metrics(path, die):
    """The 'metrics' dict of a --metrics-out snapshot, or die trying."""
    try:
        with open(path, encoding="utf-8") as f:
            snap = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"{path}: {e}")
    metrics = snap.get("metrics")
    if not isinstance(metrics, dict):
        die(f"{path}: missing 'metrics' section")
    return metrics


def counter_reader(metrics, path, die, producer):
    """A numeric-counter reader that dies naming the producing bench."""

    def counter(name):
        value = metrics.get(name)
        if not isinstance(value, (int, float)):
            die(f"{path}: missing counter '{name}' "
                f"(was this snapshot produced by {producer}?)")
        return value

    return counter


def require_activity(diagnosed, minimum, die):
    """Fail a silently idle soak instead of green-lighting it."""
    if diagnosed < minimum:
        die(f"only {diagnosed} messages diagnosed "
            f"(need >= {minimum}); the soak ran effectively idle")
