// Strict trace-parser edge cases (daemon/workload.h): a daemon fed garbage
// must refuse to start, naming the offending line, never guess.

#include "daemon/workload.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/time.h"

namespace concilium::daemon {
namespace {

using util::kHour;
using util::kMicrosecond;
using util::kMillisecond;
using util::kMinute;
using util::kSecond;

constexpr const char* kGood =
    "concilium-trace v1\n"
    "# a comment, then a blank line\n"
    "\n"
    "seed 7\n"
    "nodes 16\n"
    "hosts 120\n"
    "stubs 4\n"
    "duration 10min\n"
    "attack 0us 3 drop\n"
    "msg 5s 0 00000000000000aa\n"
    "churn 20s 1 2min\n"
    "crash 40s 2 90s\n"
    "fault 1min 4 5 3min\n"
    "msg 2min 6 ff\n"
    "end 6\n";

/// Expects parse() to throw std::invalid_argument whose message contains
/// `needle` (always prefixed "origin:line:", so "t:N" pins the line too).
void expect_rejects(const std::string& text, const std::string& needle) {
    try {
        (void)Workload::parse(text, "t");
        FAIL() << "parse accepted a trace that should be rejected ("
               << needle << ")";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "error was: " << e.what();
    }
}

TEST(Workload, ParsesDirectivesRecordsAndCounts) {
    const auto wl = Workload::parse(kGood, "t");
    EXPECT_EQ(wl.seed, 7u);
    EXPECT_EQ(wl.overlay_nodes, 16u);
    EXPECT_EQ(wl.end_hosts, 120u);
    EXPECT_EQ(wl.stub_domains, 4u);
    EXPECT_EQ(wl.duration, 10 * kMinute);
    ASSERT_EQ(wl.records.size(), 6u);
    EXPECT_EQ(wl.messages, 2u);
    EXPECT_EQ(wl.churns, 1u);
    EXPECT_EQ(wl.crashes, 1u);
    EXPECT_EQ(wl.faults, 1u);
    EXPECT_EQ(wl.attacks, 1u);
    EXPECT_EQ(wl.last_record_at(), 2 * kMinute);

    EXPECT_EQ(wl.records[0].kind, RecordKind::kAttack);
    EXPECT_EQ(wl.records[0].role, AttackRole::kDrop);
    EXPECT_EQ(wl.records[1].kind, RecordKind::kMessage);
    EXPECT_EQ(wl.records[1].a, 0u);
    EXPECT_EQ(wl.records[1].key, 0xaaull);
    EXPECT_EQ(wl.records[4].kind, RecordKind::kFault);
    EXPECT_EQ(wl.records[4].b, 5u);
    EXPECT_EQ(wl.records[4].down, 3 * kMinute);
}

TEST(Workload, ContentFnvBindsToTheExactBytes) {
    const auto a = Workload::parse(kGood, "t");
    const auto b = Workload::parse(kGood, "t");
    EXPECT_EQ(a.content_fnv, b.content_fnv);

    // Even a comment edit changes the digest: a checkpoint binds to trace
    // *bytes*, not parsed meaning, so resume-after-tamper fails loudly.
    std::string edited = kGood;
    edited.insert(edited.find("# a comment"), "# extra\n");
    const auto c = Workload::parse(edited, "t");
    EXPECT_NE(a.content_fnv, c.content_fnv);
    EXPECT_EQ(a.records.size(), c.records.size());
}

TEST(Workload, RejectsMissingOrWrongHeader) {
    expect_rejects("", "t:1");
    expect_rejects("msg 0us 0 aa\nend 1\n", "concilium-trace v1");
    expect_rejects("concilium-trace v2\nend 0\n", "concilium-trace v1");
}

TEST(Workload, RejectsUnknownRecordKind) {
    expect_rejects("concilium-trace v1\nbogus 1s 0 aa\nend 1\n",
                   "unknown record kind 'bogus'");
}

TEST(Workload, RejectsOutOfOrderTimestamps) {
    expect_rejects(
        "concilium-trace v1\n"
        "msg 5s 0 aa\n"
        "msg 4s 1 bb\n"
        "end 2\n",
        "t:3: out-of-order timestamp");
}

TEST(Workload, RejectsTruncatedFile) {
    // A trace chopped mid-stream loses its `end` trailer.
    expect_rejects("concilium-trace v1\nmsg 5s 0 aa\n", "missing 'end'");
    // ... or keeps the trailer but lost records before it.
    expect_rejects("concilium-trace v1\nmsg 5s 0 aa\nend 3\n",
                   "end trailer says 3 records but 1");
}

TEST(Workload, RejectsContentAfterEnd) {
    expect_rejects("concilium-trace v1\nend 0\nmsg 5s 0 aa\n",
                   "content after the 'end' trailer");
}

TEST(Workload, RejectsDuplicateAndLateDirectives) {
    expect_rejects("concilium-trace v1\nseed 1\nseed 2\nend 0\n",
                   "duplicate directive 'seed'");
    expect_rejects("concilium-trace v1\nmsg 1s 0 aa\nnodes 16\nend 1\n",
                   "directive 'nodes' after the first record");
}

TEST(Workload, RejectsOutOfRangeDirectiveValues) {
    expect_rejects("concilium-trace v1\nnodes 4\nend 0\n",
                   "nodes must be in [8, 100000]");
    expect_rejects("concilium-trace v1\nhosts 2\nend 0\n",
                   "hosts must be >= 16");
    expect_rejects("concilium-trace v1\nstubs 1\nend 0\n",
                   "stubs must be >= 2");
    expect_rejects("concilium-trace v1\nduration 0s\nend 0\n",
                   "duration must be positive");
}

TEST(Workload, RejectsMembersOutsideTheOverlay) {
    // Default overlay is 90 nodes; member indices saturate at nodes-1.
    expect_rejects("concilium-trace v1\nmsg 1s 90 aa\nend 1\n",
                   "member 90 out of range");
    expect_rejects("concilium-trace v1\nnodes 16\nmsg 1s 16 aa\nend 1\n",
                   "member 16 out of range");
}

TEST(Workload, RejectsMalformedRecordFields) {
    expect_rejects("concilium-trace v1\nmsg 1s 0\nend 1\n",
                   "'msg' takes: time member key64");
    expect_rejects("concilium-trace v1\nmsg 1s 0 xyz\nend 1\n",
                   "expected hex digits");
    expect_rejects("concilium-trace v1\nattack 1s 0 nice\nend 1\n",
                   "unknown attack role 'nice'");
    expect_rejects("concilium-trace v1\nchurn 1s 0 0s\nend 1\n",
                   "down-for must be positive");
    expect_rejects("concilium-trace v1\nfault 1s 3 3 1min\nend 1\n",
                   "fault endpoints must differ");
}

TEST(Workload, ParseTimeUnitsAndErrors) {
    EXPECT_EQ(parse_time("250us", "w"), 250 * kMicrosecond);
    EXPECT_EQ(parse_time("250ms", "w"), 250 * kMillisecond);
    EXPECT_EQ(parse_time("90s", "w"), 90 * kSecond);
    EXPECT_EQ(parse_time("5min", "w"), 5 * kMinute);
    EXPECT_EQ(parse_time("2h", "w"), 2 * kHour);
    EXPECT_THROW((void)parse_time("90", "w"), std::invalid_argument);
    EXPECT_THROW((void)parse_time("90d", "w"), std::invalid_argument);
    EXPECT_THROW((void)parse_time("s", "w"), std::invalid_argument);
    EXPECT_THROW((void)parse_time("-5s", "w"), std::invalid_argument);
}

TEST(Workload, ParseUintRejectsJunk) {
    EXPECT_EQ(parse_uint("0", "w"), 0u);
    EXPECT_EQ(parse_uint("12345", "w"), 12345u);
    EXPECT_THROW((void)parse_uint("", "w"), std::invalid_argument);
    EXPECT_THROW((void)parse_uint("12x", "w"), std::invalid_argument);
    EXPECT_THROW((void)parse_uint("-1", "w"), std::invalid_argument);
    // 20 digits overflow uint64; the parser bounds length up front.
    EXPECT_THROW((void)parse_uint("99999999999999999999", "w"),
                 std::invalid_argument);
}

TEST(Workload, ParseFileRejectsMissingFile) {
    EXPECT_THROW((void)Workload::parse_file("/nonexistent/no.trace"),
                 std::invalid_argument);
}

}  // namespace
}  // namespace concilium::daemon
