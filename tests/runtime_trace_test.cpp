// Tests for the diagnosis journal: a Cluster with an attached
// DiagnosisTrace records the full blame derivation for every diagnosed
// message, and the ring buffer evicts oldest-first.

#include "core/trace.h"

#include <gtest/gtest.h>

#include "net/topology_gen.h"
#include "runtime/cluster.h"

namespace concilium::runtime {
namespace {

using overlay::MemberIndex;

/// Same deterministic world the cluster tests use: small topology,
/// 50-node overlay, clean failure timeline.
struct TraceWorld {
    explicit TraceWorld(std::uint64_t seed = 5, std::size_t nodes = 50)
        : rng(seed),
          topology(net::generate_topology(alter(net::small_params()), rng)),
          ca(seed + 1) {
        overlay.emplace(overlay::build_overlay_from_hosts(
            topology.end_hosts(), nodes, ca, overlay::OverlayParams{}, rng));
        trees.emplace(*overlay, topology);
        timeline.finalize();
    }

    static net::TopologyParams alter(net::TopologyParams p) {
        p.end_hosts = 300;
        return p;
    }

    util::Rng rng;
    net::Topology topology;
    crypto::CertificateAuthority ca;
    std::optional<overlay::OverlayNetwork> overlay;
    std::optional<tomography::OverlayTrees> trees;
    net::FailureTimeline timeline;
    net::EventSim sim;
};

TEST(DiagnosisTrace, JournalNamesTheGuiltyForwarder) {
    TraceWorld world;
    // Same route search as Cluster.DropperIsConvictedAndAccused: a route of
    // length >= 4 with the dropper two hops downstream, so the journal must
    // capture a revision chain, not just the sender's own judgment.
    util::Rng search(31);
    std::vector<MemberIndex> hops;
    MemberIndex from = 0;
    util::NodeId key;
    for (int attempt = 0; attempt < 20000 && hops.size() < 4; ++attempt) {
        from = static_cast<MemberIndex>(
            search.uniform_index(world.overlay->size()));
        key = util::NodeId::random(search);
        try {
            hops = world.overlay->route(from, key);
        } catch (const std::exception&) {
            hops.clear();
        }
    }
    ASSERT_GE(hops.size(), 4u) << "no 4-hop route in small world";
    const MemberIndex dropper = hops[2];

    std::vector<NodeBehavior> behaviors(world.overlay->size());
    behaviors[dropper].drop_forward_probability = 1.0;
    Cluster cluster(world.sim, world.timeline, *world.overlay, *world.trees,
                    RuntimeParams{}, behaviors, world.rng.fork());
    core::DiagnosisTrace trace;
    cluster.set_trace(&trace);
    cluster.start();
    world.sim.run_until(3 * util::kMinute);

    for (int i = 0; i < 8; ++i) {
        cluster.send(from, key);
        world.sim.run_until(world.sim.now() + 30 * util::kSecond);
    }
    world.sim.run_until(world.sim.now() + 2 * util::kMinute);

    const auto records = trace.records();
    ASSERT_EQ(records.size(), 8u);
    EXPECT_EQ(trace.total_recorded(), 8u);

    const auto& dropper_id = world.overlay->member(dropper).id();
    int named_dropper = 0;
    for (const auto& rec : records) {
        EXPECT_GE(rec.completed_at, rec.sent_at);
        // The forwarder chain is the route, sender first.
        ASSERT_EQ(rec.forwarder_chain.size(), hops.size());
        EXPECT_EQ(rec.forwarder_chain.front(),
                  world.overlay->member(from).id());
        if (rec.verdict == core::DiagnosisRecord::Verdict::kNodeBlamed &&
            rec.blamed == dropper_id) {
            ++named_dropper;
            // The judgment that convicted the dropper must carry the
            // Equation 2-3 evidence it was derived from.
            bool found = false;
            for (const auto& j : rec.judgments) {
                if (j.suspect != dropper_id || !j.guilty) continue;
                found = true;
                EXPECT_GT(j.breakdown.blame, 0.0);
                EXPECT_FALSE(j.breakdown.links.empty());
                EXPECT_FALSE(j.path_links.empty());
                // The dropper sits downstream of the sender, so its
                // conviction arrived as a revision.
                EXPECT_TRUE(j.revision);
            }
            EXPECT_TRUE(found);
        }
    }
    // Matches the conviction rate the cluster test asserts.
    EXPECT_GE(named_dropper, 7);

    // The JSON dump round-trips the verdict and the guilty node.
    const std::string json = trace.to_json();
    EXPECT_NE(json.find("\"verdict\": \"node\""), std::string::npos);
    EXPECT_NE(json.find(dropper_id.to_hex()), std::string::npos);
}

TEST(DiagnosisTrace, RingBufferEvictsOldestFirst) {
    core::DiagnosisTrace trace(3);
    for (std::uint64_t i = 0; i < 5; ++i) {
        core::DiagnosisRecord rec;
        rec.message_id = i;
        trace.record(std::move(rec));
    }
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.total_recorded(), 5u);
    const auto records = trace.records();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records.front().message_id, 2u);
    EXPECT_EQ(records.back().message_id, 4u);
    trace.clear();
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.total_recorded(), 5u);
}

TEST(DiagnosisTrace, ZeroCapacityIsRejected) {
    EXPECT_THROW(core::DiagnosisTrace(0), std::invalid_argument);
}

TEST(DiagnosisTrace, EmptyJournalSerializes) {
    const core::DiagnosisTrace trace;
    EXPECT_EQ(trace.records_json(), "[]");
    EXPECT_EQ(trace.to_json(), "{\"total_recorded\": 0, \"records\": []}\n");
}

}  // namespace
}  // namespace concilium::runtime
