// Soak: the crash/partition recovery pipeline -- journaled restarts,
// recovery handshakes, degraded-mode judgments, heal-time resync -- must
// be byte-reproducible at any worker count.  This is the in-process
// version of the nightly `soak_recovery --jobs 1` vs `--jobs 4` artifact
// comparison.

#include <gtest/gtest.h>

#include <string>

#include "net/chaos.h"
#include "runtime/cluster.h"
#include "sim/experiment_driver.h"
#include "sim/scenario.h"
#include "util/metrics.h"

namespace concilium::sim {
namespace {

/// The deterministic half of the registry's JSON snapshot (everything
/// before the "timing" section).
std::string metrics_section() {
    const std::string json =
        util::metrics::Registry::global().snapshot().to_json();
    const auto cut = json.find("\"timing\"");
    return json.substr(0, cut);
}

/// A miniature soak_recovery: per-trial crash/partition plan from the
/// trial substream, a recovery-enabled cluster, a paced workload, and a
/// printable row.  Returns the concatenated rows (merged in trial order).
std::string run_soak(const Scenario& world, std::size_t jobs) {
    const ExperimentDriver driver(23, jobs);
    std::string table;
    driver.run(
        3,
        [&](std::uint64_t trial, util::Rng& rng) {
            const net::FaultSpec spec =
                net::FaultSpec::parse("crash:0.05,partition:0.1");
            auto plan_rng = rng.fork();
            const net::FaultPlan plan = net::build_fault_plan(
                spec.scaled(static_cast<double>(trial)),
                world.params().duration, world.trees().member_peer_paths(),
                world.overlay_net().size(), plan_rng);

            runtime::RuntimeParams params;
            params.forward_retry.max_attempts = 3;
            net::EventSim sim;
            runtime::Cluster cluster(sim, world.timeline(),
                                     world.overlay_net(), world.trees(),
                                     params, {}, rng.fork());
            cluster.set_chaos(&plan);
            cluster.start();
            sim.run_until(3 * util::kMinute);

            std::size_t delivered = 0;
            std::size_t insufficient = 0;
            for (int i = 0; i < 10; ++i) {
                const auto from = static_cast<overlay::MemberIndex>(
                    rng.uniform_index(world.overlay_net().size()));
                cluster.send(from, util::NodeId::random(rng),
                             [&](const runtime::Cluster::MessageOutcome& o) {
                                 if (o.delivered) ++delivered;
                                 if (o.insufficient_evidence) ++insufficient;
                             });
                sim.run_until(sim.now() + 45 * util::kSecond);
            }
            // Past the longest restart delay, so every handshake lands.
            sim.run_until(sim.now() + 5 * util::kMinute);

            return std::to_string(trial) + ":" + std::to_string(delivered) +
                   ":" + std::to_string(insufficient) + ":" +
                   std::to_string(cluster.stats().restarts) + ":" +
                   std::to_string(cluster.stats().partition_heals) + ":" +
                   std::to_string(cluster.stats().stewardships_resumed +
                                  cluster.stats().stewardships_abandoned) +
                   "\n";
        },
        [&](std::uint64_t, std::string&& row) { table += row; });
    return table;
}

TEST(RecoveryDeterminism, SoakIsByteIdenticalAcrossJobs) {
    ScenarioParams params;
    params.topology = net::small_params();
    params.topology.end_hosts = 300;
    params.overlay_nodes_override = 50;
    params.seed = 29;
    const Scenario world(params);

    auto& registry = util::metrics::Registry::global();

    registry.reset();
    const std::string table_seq = run_soak(world, 1);
    const std::string section_seq = metrics_section();

    registry.reset();
    const std::string table_par = run_soak(world, 4);
    const std::string section_par = metrics_section();

    // The printed table and every deterministic metric -- including the
    // recovery.* and partition.* instruments fed by journal replays,
    // handshakes, and heal-time resync -- are byte-identical at any
    // worker count.
    EXPECT_EQ(table_seq, table_par);
    EXPECT_EQ(section_seq, section_par);
    EXPECT_NE(table_seq.find(':'), std::string::npos);
    EXPECT_NE(section_seq.find("\"recovery.crashes\""), std::string::npos);
    EXPECT_NE(section_seq.find("\"partition.activations\""),
              std::string::npos);
    // The soak exercised the machinery it claims to pin down: trials 1-2
    // carry nonzero crash rates, so the crash counter must have fired.
    EXPECT_EQ(section_seq.find("\"recovery.crashes\": 0,"),
              std::string::npos);
}

}  // namespace
}  // namespace concilium::sim
