#include <gtest/gtest.h>

#include "crypto/certificates.h"
#include "net/paths.h"
#include "tomography/inference.h"
#include "tomography/probing.h"
#include "tomography/snapshot.h"
#include "util/rng.h"

namespace concilium::tomography {
namespace {

TEST(LossBucket, QuantizationBoundaries) {
    EXPECT_EQ(quantize_loss(0.0), LossBucket::kClean);
    EXPECT_EQ(quantize_loss(0.009), LossBucket::kClean);
    EXPECT_EQ(quantize_loss(0.01), LossBucket::kLow);
    EXPECT_EQ(quantize_loss(0.049), LossBucket::kLow);
    EXPECT_EQ(quantize_loss(0.05), LossBucket::kModerate);
    EXPECT_EQ(quantize_loss(0.2), LossBucket::kHigh);
    EXPECT_EQ(quantize_loss(0.8), LossBucket::kDown);
    EXPECT_EQ(quantize_loss(1.0), LossBucket::kDown);
}

TEST(LossBucket, RepresentativeLossIsInsideBucket) {
    EXPECT_EQ(quantize_loss(bucket_loss(LossBucket::kLow)), LossBucket::kLow);
    EXPECT_EQ(quantize_loss(bucket_loss(LossBucket::kModerate)),
              LossBucket::kModerate);
    EXPECT_EQ(quantize_loss(bucket_loss(LossBucket::kHigh)),
              LossBucket::kHigh);
    EXPECT_EQ(quantize_loss(bucket_loss(LossBucket::kDown)),
              LossBucket::kDown);
}

struct SnapshotFixture : ::testing::Test {
    SnapshotFixture() : ca(7) {
        for (int i = 0; i < 7; ++i) topo.add_router(net::RouterTier::kCore);
        links[0] = topo.add_link(0, 1);
        links[1] = topo.add_link(1, 2);
        links[2] = topo.add_link(1, 3);
        links[3] = topo.add_link(2, 4);
        links[4] = topo.add_link(2, 5);
        links[5] = topo.add_link(3, 6);
        const net::PathOracle oracle(topo);
        const std::vector<net::RouterId> dsts{4, 5, 6};
        tree.emplace(0, oracle.paths_from(0, dsts));
        origin = ca.admit(0);
        util::Rng rng(5);
        for (int i = 0; i < 3; ++i) {
            leaf_ids.push_back(util::NodeId::random(rng));
        }
    }

    TomographicSnapshot snap(std::unordered_map<net::LinkId, double> loss) {
        util::Rng rng(3);
        const auto pass = [&loss](net::LinkId l, util::SimTime) {
            const auto it = loss.find(l);
            return it == loss.end() ? 1.0 : 1.0 - it->second;
        };
        const auto session = run_heavyweight_session(
            *tree, pass, 0, HeavyweightParams{.probe_count = 2000}, {}, rng);
        const auto inference = infer_link_loss(*tree, session.probes);
        return make_snapshot(origin->certificate.node_id, origin->keys,
                             42 * util::kSecond, *tree, inference,
                             SnapshotParams{}, leaf_ids);
    }

    net::Topology topo;
    net::LinkId links[6];
    std::optional<ProbeTree> tree;
    crypto::CertificateAuthority ca;
    std::optional<crypto::CertificateAuthority::Admission> origin;
    std::vector<util::NodeId> leaf_ids;
};

TEST_F(SnapshotFixture, CleanNetworkSnapshotsAllUp) {
    const auto s = snap({});
    EXPECT_EQ(s.paths.size(), 3u);
    EXPECT_EQ(s.links.size(), 6u);
    for (const auto& p : s.paths) EXPECT_EQ(p.bucket, LossBucket::kClean);
    for (const auto& l : s.links) EXPECT_TRUE(l.up);
}

TEST_F(SnapshotFixture, DownLinkReportedDownOnCorrectPath) {
    const auto s = snap({{links[3], 1.0}});
    // The path to leaf 0 (router 4) is dead; others clean.
    EXPECT_EQ(s.paths[0].bucket, LossBucket::kDown);
    EXPECT_EQ(s.paths[1].bucket, LossBucket::kClean);
    EXPECT_EQ(s.paths[2].bucket, LossBucket::kClean);
    for (const auto& l : s.links) {
        if (l.link == links[3]) {
            EXPECT_FALSE(l.up);
        } else {
            EXPECT_TRUE(l.up) << "link " << l.link;
        }
    }
}

TEST_F(SnapshotFixture, ModerateLossIsUpButBucketed) {
    const auto s = snap({{links[5], 0.10}});
    EXPECT_EQ(s.paths[2].bucket, LossBucket::kModerate);
    for (const auto& l : s.links) {
        if (l.link == links[5]) EXPECT_TRUE(l.up);  // below down threshold
    }
}

TEST_F(SnapshotFixture, SignatureVerifiesAndTamperFails) {
    auto s = snap({});
    EXPECT_TRUE(
        verify_snapshot(s, origin->keys.public_key(), ca.registry()));
    s.links[0].up = !s.links[0].up;  // flip a probe result after signing
    EXPECT_FALSE(
        verify_snapshot(s, origin->keys.public_key(), ca.registry()));
}

TEST_F(SnapshotFixture, WrongOriginKeyFails) {
    const auto s = snap({});
    const auto other = ca.admit(99);
    EXPECT_FALSE(verify_snapshot(s, other.keys.public_key(), ca.registry()));
}

TEST_F(SnapshotFixture, WireBytesUseOneBytePerPath) {
    const auto s = snap({});
    EXPECT_EQ(s.wire_bytes(),
              s.paths.size() + util::NodeId::kBytes + 8 + 8 +
                  crypto::Signature::kWireBytes);
}

TEST_F(SnapshotFixture, LeafIdCountMismatchThrows) {
    util::Rng rng(3);
    const auto session = run_heavyweight_session(
        *tree, [](net::LinkId, util::SimTime) { return 1.0; }, 0,
        HeavyweightParams{.probe_count = 10}, {}, rng);
    const auto inference = infer_link_loss(*tree, session.probes);
    std::vector<util::NodeId> wrong(2);
    EXPECT_THROW(make_snapshot(origin->certificate.node_id, origin->keys, 0,
                               *tree, inference, SnapshotParams{}, wrong),
                 std::invalid_argument);
}

}  // namespace
}  // namespace concilium::tomography
