#include "core/validation.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "test_helpers.h"

namespace concilium::core {
namespace {

struct ValidationFixture : ::testing::Test {
    ValidationFixture() : ca(31), rng(32) {
        overlay::OverlayParams params;
        params.geometry.digits = 32;
        net.emplace(overlay::OverlayNetwork(
            concilium::testing::make_members(ca, 150), params, rng));
        for (overlay::MemberIndex i = 0; i < net->size(); ++i) {
            keys_by_id.emplace(net->member(i).id(),
                               net->member(i).keys.public_key());
        }
    }

    overlay::JumpTableAdvertisement advertise(overlay::MemberIndex who,
                                              util::SimTime now,
                                              util::SimTime probe_age) {
        return overlay::make_advertisement(
            *net, who, now,
            [&](overlay::MemberIndex) { return now - probe_age; });
    }

    std::function<std::optional<crypto::PublicKey>(const util::NodeId&)>
    key_of() {
        return [this](const util::NodeId& id)
                   -> std::optional<crypto::PublicKey> {
            const auto it = keys_by_id.find(id);
            if (it == keys_by_id.end()) return std::nullopt;
            return it->second;
        };
    }

    ValidationParams params_with(double gamma = 1.5) {
        ValidationParams p;
        p.geometry = net->params().geometry;
        p.gamma = gamma;
        return p;
    }

    double local_density() { return net->secure_table(0).density(); }

    crypto::CertificateAuthority ca;
    util::Rng rng;
    std::optional<overlay::OverlayNetwork> net;
    std::unordered_map<util::NodeId, crypto::PublicKey, util::NodeIdHash>
        keys_by_id;
};

TEST_F(ValidationFixture, HonestAdvertisementPasses) {
    const util::SimTime now = 20 * util::kMinute;
    const auto ad = advertise(5, now, 40 * util::kSecond);
    EXPECT_EQ(validate_advertisement(ad, local_density(), now, params_with(),
                                     key_of(), ca.registry()),
              AdvertisementCheck::kOk);
}

TEST_F(ValidationFixture, TamperedAdvertisementFailsOwnerSignature) {
    const util::SimTime now = 20 * util::kMinute;
    auto ad = advertise(5, now, 40 * util::kSecond);
    ad.population_estimate *= 2.0;
    EXPECT_EQ(validate_advertisement(ad, local_density(), now, params_with(),
                                     key_of(), ca.registry()),
              AdvertisementCheck::kBadOwnerSignature);
}

TEST_F(ValidationFixture, StaleFreshnessTimestampsRejected) {
    // Entries last vouched for 10 minutes ago exceed the 5-minute bound:
    // exactly the inflation attack with identifiers of departed peers.
    const util::SimTime now = 30 * util::kMinute;
    const auto ad = advertise(5, now, 10 * util::kMinute);
    EXPECT_EQ(validate_advertisement(ad, local_density(), now, params_with(),
                                     key_of(), ca.registry()),
              AdvertisementCheck::kStaleEntry);
}

TEST_F(ValidationFixture, ForgedFreshnessTimestampRejected) {
    const util::SimTime now = 30 * util::kMinute;
    auto ad = advertise(5, now, 10 * util::kMinute);
    // The owner "freshens" its stale entries itself and re-signs the
    // advertisement -- but the per-entry timestamps are signed by the
    // referenced peers, so the forgery shows.
    for (auto& e : ad.entries) e.freshness.at = now;
    ad.signature = net->member(5).keys.sign(ad.signed_payload());
    EXPECT_EQ(validate_advertisement(ad, local_density(), now, params_with(),
                                     key_of(), ca.registry()),
              AdvertisementCheck::kBadEntryTimestamp);
}

TEST_F(ValidationFixture, ConstraintViolationRejected) {
    const util::SimTime now = 20 * util::kMinute;
    auto ad = advertise(5, now, 40 * util::kSecond);
    ASSERT_FALSE(ad.entries.empty());
    // Move a legitimate entry into a slot it does not belong to.
    ad.entries[0].row = (ad.entries[0].row + 5) % 32;
    ad.signature = net->member(5).keys.sign(ad.signed_payload());
    const auto verdict = validate_advertisement(
        ad, local_density(), now, params_with(), key_of(), ca.registry());
    EXPECT_EQ(verdict, AdvertisementCheck::kConstraintViolation);
}

TEST_F(ValidationFixture, DuplicateSlotRejected) {
    const util::SimTime now = 20 * util::kMinute;
    auto ad = advertise(5, now, 40 * util::kSecond);
    ASSERT_GE(ad.entries.size(), 2u);
    ad.entries.push_back(ad.entries[0]);
    ad.signature = net->member(5).keys.sign(ad.signed_payload());
    EXPECT_EQ(validate_advertisement(ad, local_density(), now, params_with(),
                                     key_of(), ca.registry()),
              AdvertisementCheck::kMalformedEntry);
}

TEST_F(ValidationFixture, SuppressedTableFailsDensityTest) {
    const util::SimTime now = 20 * util::kMinute;
    auto ad = advertise(5, now, 40 * util::kSecond);
    // The peer advertises only a third of its real table, hiding honest
    // nodes it does not control.
    ad.entries.resize(ad.entries.size() / 3);
    ad.signature = net->member(5).keys.sign(ad.signed_payload());
    EXPECT_EQ(validate_advertisement(ad, local_density(), now,
                                     params_with(1.5), key_of(),
                                     ca.registry()),
              AdvertisementCheck::kTooSparse);
}

TEST_F(ValidationFixture, LargeGammaToleratesSparseTables) {
    const util::SimTime now = 20 * util::kMinute;
    auto ad = advertise(5, now, 40 * util::kSecond);
    ad.entries.resize(ad.entries.size() / 3);
    ad.signature = net->member(5).keys.sign(ad.signed_payload());
    EXPECT_EQ(validate_advertisement(ad, local_density(), now,
                                     params_with(20.0), key_of(),
                                     ca.registry()),
              AdvertisementCheck::kOk);
}

TEST_F(ValidationFixture, UnknownOwnerRejected) {
    const util::SimTime now = 20 * util::kMinute;
    const auto ad = advertise(5, now, 40 * util::kSecond);
    const auto no_keys = [](const util::NodeId&)
        -> std::optional<crypto::PublicKey> { return std::nullopt; };
    EXPECT_EQ(validate_advertisement(ad, local_density(), now, params_with(),
                                     no_keys, ca.registry()),
              AdvertisementCheck::kBadOwnerSignature);
}

TEST_F(ValidationFixture, CheckNamesAreHuman) {
    EXPECT_STREQ(to_string(AdvertisementCheck::kOk), "ok");
    EXPECT_STREQ(to_string(AdvertisementCheck::kTooSparse), "too sparse");
}

}  // namespace
}  // namespace concilium::core
