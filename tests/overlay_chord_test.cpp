// Chord substrate + the occupancy test's Chord analogue (Section 3.1:
// "the test can be extended to other overlays in a straightforward manner").

#include "overlay/chord.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "test_helpers.h"

namespace concilium::overlay {
namespace {

ChordNetwork make_chord(std::size_t count, std::uint64_t seed = 71) {
    crypto::CertificateAuthority ca(seed);
    return ChordNetwork(concilium::testing::make_members(ca, count),
                        ChordNetwork::ChordParams{});
}

TEST(Chord, SuccessorListsFollowTheRing) {
    const auto chord = make_chord(100);
    for (MemberIndex m = 0; m < chord.size(); ++m) {
        const auto& succ = chord.successors(m);
        ASSERT_EQ(succ.size(), 8u);
        // Each successor is the ring-wise next after the previous.
        util::NodeId prev = chord.member(m).id();
        for (const MemberIndex s : succ) {
            // No member lies strictly between prev and this successor.
            const auto& sid = chord.member(s).id();
            for (MemberIndex other = 0; other < chord.size(); ++other) {
                if (other == m || other == s) continue;
                const auto& oid = chord.member(other).id();
                const auto d_o = util::clockwise_distance(prev, oid);
                const auto d_s = util::clockwise_distance(prev, sid);
                EXPECT_FALSE(d_o < d_s && oid != prev)
                    << "member skipped in successor list";
            }
            prev = sid;
        }
    }
}

TEST(Chord, SuccessorOfIsFirstClockwiseOwner) {
    const auto chord = make_chord(64);
    util::Rng rng(3);
    for (int trial = 0; trial < 100; ++trial) {
        const auto key = util::NodeId::random(rng);
        const MemberIndex owner = chord.successor_of(key);
        const auto d_owner =
            util::clockwise_distance(key, chord.member(owner).id());
        for (MemberIndex m = 0; m < chord.size(); ++m) {
            EXPECT_FALSE(util::clockwise_distance(key, chord.member(m).id()) <
                         d_owner);
        }
    }
}

TEST(Chord, FingersPointAtTargetsSuccessors) {
    const auto chord = make_chord(64);
    // Spot-check: finger 159 of any node is the successor of the antipode.
    for (MemberIndex m = 0; m < 10; ++m) {
        const MemberIndex f = chord.finger(m, 159);
        EXPECT_LT(f, chord.size());
        EXPECT_THROW((void)chord.finger(m, 160), std::out_of_range);
    }
}

TEST(Chord, RoutingConvergesInLogHops) {
    const auto chord = make_chord(256);
    util::Rng rng(5);
    for (int trial = 0; trial < 100; ++trial) {
        const auto key = util::NodeId::random(rng);
        const auto from =
            static_cast<MemberIndex>(rng.uniform_index(chord.size()));
        const auto hops = chord.route(from, key);
        EXPECT_EQ(hops.front(), from);
        EXPECT_EQ(hops.back(), chord.successor_of(key));
        // O(log N): log2(256) = 8; generous cap.
        EXPECT_LE(hops.size(), 14u);
        std::unordered_set<MemberIndex> seen(hops.begin(), hops.end());
        EXPECT_EQ(seen.size(), hops.size()) << "routing loop";
    }
}

TEST(Chord, DistinctFingersNearLog2N) {
    // The well-known Chord property: ~log2(N) distinct fingers.
    const auto chord = make_chord(512);
    util::OnlineMoments distinct;
    for (MemberIndex m = 0; m < chord.size(); ++m) {
        distinct.add(chord.distinct_fingers(m));
    }
    EXPECT_NEAR(distinct.mean(), 9.0, 2.0);  // log2(512) = 9
}

TEST(Chord, FingerModelMatchesMonteCarlo) {
    // The Poisson-binomial distinct-finger model vs real rings -- the Chord
    // twin of Figure 1.
    for (const std::size_t n : {128u, 512u, 2048u}) {
        const auto model = chord_finger_model(static_cast<double>(n));
        const auto chord = make_chord(n, 100 + n);
        util::OnlineMoments mc;
        for (MemberIndex m = 0; m < chord.size(); ++m) {
            mc.add(chord.distinct_fingers(m));
        }
        EXPECT_NEAR(mc.mean(), model.mean_count(), 0.15 * model.mean_count())
            << "N=" << n;
    }
}

TEST(Chord, FingerProbabilityMonotoneAndBounded) {
    double prev = 0.0;
    for (int i = 1; i < ChordNetwork::kFingers; ++i) {
        const double p = chord_finger_distinct_probability(i, 10000);
        EXPECT_GE(p, prev - 1e-12);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
        prev = p;
    }
    EXPECT_DOUBLE_EQ(chord_finger_distinct_probability(0, 10000), 1.0);
    EXPECT_EQ(chord_finger_distinct_probability(5, 1.0), 0.0);
}

TEST(Chord, DensityTestErrorsBehaveLikePastrys) {
    // FP falls with gamma, FN rises; larger collusion pools are harder to
    // catch -- the same structure as Figures 2(a)-(b).
    const double n = 10000;
    double prev_fp = 1.1;
    double prev_fn = -0.1;
    for (const double gamma : {1.0, 1.2, 1.5, 2.0}) {
        const double fp = chord_density_false_positive(gamma, n, n);
        const double fn = chord_density_false_negative(gamma, n, 0.2 * n);
        EXPECT_LE(fp, prev_fp + 1e-9);
        EXPECT_GE(fn, prev_fn - 1e-9);
        prev_fp = fp;
        prev_fn = fn;
    }
    EXPECT_GT(chord_density_false_negative(1.3, n, 0.3 * n),
              chord_density_false_negative(1.3, n, 0.1 * n));
}

TEST(Chord, SuppressionAttackOnChordDetectable) {
    // A 20%-pool attacker's ring has log2(0.2 N) ~ log2(N) - 2.3 distinct
    // fingers: close, so the test needs a tight gamma -- but at gamma just
    // above 1 the separation is real.
    const double n = 100000;
    const double fp = chord_density_false_positive(1.10, n, n);
    const double fn = chord_density_false_negative(1.10, n, 0.2 * n);
    EXPECT_LT(fp, 0.35);
    EXPECT_LT(fn, 0.35);
}

TEST(Chord, RejectsDegenerateConstruction) {
    EXPECT_THROW(ChordNetwork({}, ChordNetwork::ChordParams{}),
                 std::invalid_argument);
    crypto::CertificateAuthority ca(9);
    EXPECT_THROW(ChordNetwork(concilium::testing::make_members(ca, 3),
                              ChordNetwork::ChordParams{
                                  .successor_list_length = 0}),
                 std::invalid_argument);
}

TEST(Chord, SingleMemberRingIsItsOwnWorld) {
    const auto chord = make_chord(1);
    EXPECT_EQ(chord.distinct_fingers(0), 0);
    EXPECT_TRUE(chord.successors(0).empty());
    const auto hops = chord.route(0, util::NodeId::from_hex("aa"));
    EXPECT_EQ(hops.size(), 1u);
}

}  // namespace
}  // namespace concilium::overlay
