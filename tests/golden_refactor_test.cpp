// Golden seams for the arena/index-addressing refactor.
//
// The memory-architecture refactor (flat storage, calendar queue, interned
// digests) must be behaviour-preserving: routes, verdicts, and generated
// topologies are required to come out byte-identical before and after.
// These checksums were captured against the pre-refactor implementations;
// any divergence means the refactor changed observable behaviour, not just
// layout.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/verdicts.h"
#include "net/paths.h"
#include "net/topology_gen.h"
#include "util/rng.h"
#include "util/time.h"

namespace concilium {
namespace {

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h = (h ^ ((v >> (8 * i)) & 0xff)) * 0x100000001b3ULL;
    }
    return h;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

TEST(GoldenRefactor, PathOracleRoutesAreByteIdentical) {
    util::Rng rng(7);
    const auto topo = net::generate_topology(net::small_params(), rng);
    ASSERT_EQ(topo.router_count(), 204u);
    ASSERT_EQ(topo.link_count(), 241u);

    net::PathOracle oracle(topo);
    std::vector<net::RouterId> dsts;
    for (net::RouterId r = 0; r < topo.router_count(); r += 17) {
        dsts.push_back(r);
    }
    std::uint64_t h = kFnvOffset;
    for (net::RouterId src = 0; src < topo.router_count(); src += 41) {
        const auto paths = oracle.paths_from(src, dsts);
        for (const auto& p : paths) {
            h = fnv(h, p.routers.size());
            for (const auto r : p.routers) h = fnv(h, r);
            for (const auto l : p.links) h = fnv(h, l);
        }
    }
    EXPECT_EQ(h, 0xe41f4298f8a83b96ULL);
}

TEST(GoldenRefactor, VerdictOutcomesAreByteIdentical) {
    core::VerdictLedger ledger{core::VerdictParams{}};
    util::Rng rng(1234);
    std::uint64_t h = kFnvOffset;
    for (int i = 0; i < 5000; ++i) {
        const auto suspect =
            util::NodeId::hash_of(std::string(1, static_cast<char>('a' + i % 23)));
        const auto out = ledger.record(suspect, rng.uniform(),
                                       i * util::kSecond);
        h = fnv(h, static_cast<std::uint64_t>(out.guilty));
        h = fnv(h, static_cast<std::uint64_t>(out.guilty_in_window));
        h = fnv(h, static_cast<std::uint64_t>(out.accusation_triggered));
    }
    for (int k = 0; k < 23; ++k) {
        const auto suspect =
            util::NodeId::hash_of(std::string(1, static_cast<char>('a' + k)));
        const int n = ledger.retract_guilty(suspect, 1000 * util::kSecond,
                                            3000 * util::kSecond);
        h = fnv(h, static_cast<std::uint64_t>(n));
        h = fnv(h, static_cast<std::uint64_t>(ledger.guilty_count(suspect)));
        h = fnv(h, static_cast<std::uint64_t>(ledger.verdict_count(suspect)));
    }
    for (const auto& w : ledger.export_windows()) {
        for (const auto b : w.suspect.bytes()) h = fnv(h, b);
        for (const auto& e : w.entries) {
            h = fnv(h, static_cast<std::uint64_t>(e.guilty));
            h = fnv(h, static_cast<std::uint64_t>(e.at));
        }
    }
    EXPECT_EQ(h, 0x9bce516a5f11c3a9ULL);
}

TEST(GoldenRefactor, FullScanTopologyStatsAreByteIdentical) {
    // Matches `concilium topology --full --seed 1`, which ROADMAP pins as a
    // byte-determinism acceptance gate for the refactor.
    util::Rng rng(1);
    const auto topo = net::generate_topology(net::scan_like_params(), rng);
    const auto s = net::summarize(topo);
    EXPECT_EQ(s.routers, 113302u);
    EXPECT_EQ(s.links, 172975u);
    EXPECT_EQ(s.core_routers, 600u);
    EXPECT_EQ(s.stub_routers, 75302u);
    EXPECT_EQ(s.end_hosts, 37400u);
    EXPECT_NEAR(s.link_router_ratio, 1.526672, 1e-6);
    EXPECT_NEAR(s.mean_interior_degree, 4.065110, 1e-6);
    EXPECT_TRUE(topo.connected());
}

}  // namespace
}  // namespace concilium
