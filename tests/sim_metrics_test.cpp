// Determinism tests for driver-level metrics: counters incremented inside
// trials — and the registry's whole deterministic section — must not depend
// on the worker count.

#include <gtest/gtest.h>

#include <string>

#include "sim/experiment_driver.h"
#include "util/metrics.h"

namespace concilium::sim {
namespace {

/// The deterministic half of the registry's JSON snapshot (everything
/// before the "timing" section).
std::string metrics_section() {
    const std::string json =
        util::metrics::Registry::global().snapshot().to_json();
    const auto cut = json.find("\"timing\"");
    return json.substr(0, cut);
}

/// One rejection-sampled workload: accept trials whose first draw clears a
/// threshold, and count every computed trial in a deterministic counter
/// (standing in for the protocol instrumentation that fires inside trials).
RunStats run_workload(std::size_t jobs) {
    const ExperimentDriver driver(123, jobs);
    auto& computed =
        util::metrics::Registry::global().counter("test.trials_computed");
    return driver.run_until(
        200,
        [&](std::uint64_t, util::Rng& rng) {
            computed.add(1);
            return rng.uniform(0.0, 1.0);
        },
        [](std::uint64_t, double x) { return x > 0.5; });
}

TEST(DriverMetrics, DeterministicSectionIsIdenticalAcrossJobs) {
    auto& registry = util::metrics::Registry::global();

    registry.reset();
    const RunStats seq = run_workload(1);
    const std::string section_seq = metrics_section();

    registry.reset();
    const RunStats par = run_workload(4);
    const std::string section_par = metrics_section();

    // Trial schedule and acceptance set are jobs-independent...
    EXPECT_EQ(seq.trials, par.trials);
    EXPECT_EQ(seq.accepted, par.accepted);
    EXPECT_EQ(seq.accepted, 200u);
    // ...and so is every deterministic metric, byte for byte.  This only
    // holds because run_range computes every issued trial even after the
    // merge loop stops consuming.
    EXPECT_EQ(section_seq, section_par);
    EXPECT_NE(section_seq.find("\"test.trials_computed\""),
              std::string::npos);
}

TEST(DriverMetrics, RunReportsStatsToRegistry) {
    auto& registry = util::metrics::Registry::global();
    registry.reset();

    const ExperimentDriver driver(7, 2);
    const RunStats stats = driver.run(
        50, [](std::uint64_t i, util::Rng&) { return i; },
        [](std::uint64_t, std::uint64_t) {});

    EXPECT_EQ(stats.trials, 50u);
    EXPECT_EQ(stats.accepted, 50u);
    EXPECT_EQ(stats.jobs, 2u);
    EXPECT_GE(stats.wall_seconds, 0.0);
    EXPECT_GE(stats.busy_seconds, 0.0);
    EXPECT_GE(stats.utilization(), 0.0);

    EXPECT_EQ(registry.counter("sim.driver_runs").value(), 1);
    EXPECT_EQ(registry.counter("sim.driver_trials").value(), 50);
    EXPECT_DOUBLE_EQ(registry.timing_gauge("sim.driver_jobs").value(), 2.0);
}

TEST(DriverMetrics, ResetDoesNotPerturbExperimentResults) {
    const ExperimentDriver driver(99, 3);
    const auto run_sum = [&] {
        std::uint64_t sum = 0;
        driver.run(
            100,
            [](std::uint64_t, util::Rng& rng) {
                return rng.uniform_index(1000);
            },
            [&](std::uint64_t, std::size_t v) { sum += v; });
        return sum;
    };
    const std::uint64_t before = run_sum();
    util::metrics::Registry::global().reset();
    EXPECT_EQ(run_sum(), before);
}

}  // namespace
}  // namespace concilium::sim
