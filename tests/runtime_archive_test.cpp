#include "runtime/archive.h"

#include <gtest/gtest.h>

#include "crypto/keys.h"

namespace concilium::runtime {
namespace {

using util::kMinute;
using util::kSecond;

tomography::TomographicSnapshot snap(const util::NodeId& origin,
                                     util::SimTime at,
                                     std::vector<std::pair<net::LinkId, bool>>
                                         links) {
    tomography::TomographicSnapshot s;
    s.origin = origin;
    s.probed_at = at;
    for (const auto& [l, up] : links) {
        s.links.push_back(tomography::LinkObservation{l, up});
    }
    return s;
}

const util::NodeId kAlice = util::NodeId::from_hex("0a");
const util::NodeId kBob = util::NodeId::from_hex("0b");

TEST(SnapshotArchive, StoresAndCounts) {
    SnapshotArchive archive;
    EXPECT_EQ(archive.size(), 0u);
    archive.add(snap(kAlice, 10 * kSecond, {{1, true}}), 10 * kSecond);
    archive.add(snap(kAlice, 20 * kSecond, {{1, false}}), 20 * kSecond);
    archive.add(snap(kBob, 15 * kSecond, {{2, true}}), 20 * kSecond);
    EXPECT_EQ(archive.size(), 3u);
    EXPECT_EQ(archive.snapshots_from(kAlice).size(), 2u);
    EXPECT_EQ(archive.snapshots_from(kBob).size(), 1u);
    EXPECT_TRUE(archive.snapshots_from(util::NodeId::from_hex("0c")).empty());
}

TEST(SnapshotArchive, PrunesOldSnapshots) {
    SnapshotArchive archive(/*retention=*/2 * kMinute);
    archive.add(snap(kAlice, 0, {{1, true}}), 0);
    archive.add(snap(kAlice, 1 * kMinute, {{1, true}}), 1 * kMinute);
    EXPECT_EQ(archive.size(), 2u);
    // Inserting at t=3min prunes the t=0 snapshot (older than 2 min).
    archive.add(snap(kBob, 3 * kMinute, {{2, true}}), 3 * kMinute);
    EXPECT_EQ(archive.size(), 2u);
    EXPECT_EQ(archive.snapshots_from(kAlice).size(), 1u);
}

TEST(SnapshotArchive, ProbesForFiltersByLinkWindowAndOrigin) {
    SnapshotArchive archive;
    archive.add(snap(kAlice, 100 * kSecond, {{1, true}, {9, false}}),
                100 * kSecond);
    archive.add(snap(kBob, 100 * kSecond, {{1, false}}), 100 * kSecond);
    archive.add(snap(kAlice, 300 * kSecond, {{1, true}}), 300 * kSecond);

    const std::vector<net::LinkId> links{1};
    // Window around t=100s: both snapshots at 100s qualify; link 9 excluded.
    auto probes = archive.probes_for(links, 110 * kSecond, 60 * kSecond,
                                     util::NodeId::from_hex("ff"));
    ASSERT_EQ(probes.size(), 2u);
    for (const auto& p : probes) EXPECT_EQ(p.link, 1u);

    // Excluding Bob removes its probe.
    probes = archive.probes_for(links, 110 * kSecond, 60 * kSecond, kBob);
    ASSERT_EQ(probes.size(), 1u);
    EXPECT_EQ(probes[0].reporter, kAlice);
    EXPECT_TRUE(probes[0].link_up);

    // A tight window around t=300s sees only the late snapshot.
    probes = archive.probes_for(links, 300 * kSecond, 10 * kSecond,
                                util::NodeId::from_hex("ff"));
    EXPECT_EQ(probes.size(), 1u);
}

TEST(SnapshotArchive, EvidenceForReturnsWholeTouchingSnapshots) {
    SnapshotArchive archive;
    archive.add(snap(kAlice, 100 * kSecond, {{1, true}, {9, false}}),
                100 * kSecond);
    archive.add(snap(kBob, 100 * kSecond, {{7, true}}), 100 * kSecond);
    const std::vector<net::LinkId> links{1, 2};
    const auto evidence = archive.evidence_for(
        links, 100 * kSecond, 60 * kSecond, util::NodeId::from_hex("ff"));
    ASSERT_EQ(evidence.size(), 1u);  // Bob's snapshot touches no path link
    EXPECT_EQ(evidence[0].origin, kAlice);
    EXPECT_EQ(evidence[0].links.size(), 2u);  // the whole snapshot, signed
}

}  // namespace
}  // namespace concilium::runtime
