#include "runtime/archive.h"

#include <gtest/gtest.h>

#include "crypto/keys.h"

namespace concilium::runtime {
namespace {

using util::kMinute;
using util::kSecond;

tomography::TomographicSnapshot snap(const util::NodeId& origin,
                                     util::SimTime at,
                                     std::vector<std::pair<net::LinkId, bool>>
                                         links) {
    tomography::TomographicSnapshot s;
    s.origin = origin;
    s.probed_at = at;
    for (const auto& [l, up] : links) {
        s.links.push_back(tomography::LinkObservation{l, up});
    }
    return s;
}

const util::NodeId kAlice = util::NodeId::from_hex("0a");
const util::NodeId kBob = util::NodeId::from_hex("0b");

TEST(SnapshotArchive, StoresAndCounts) {
    SnapshotArchive archive;
    EXPECT_EQ(archive.size(), 0u);
    archive.add(snap(kAlice, 10 * kSecond, {{1, true}}), 10 * kSecond);
    archive.add(snap(kAlice, 20 * kSecond, {{1, false}}), 20 * kSecond);
    archive.add(snap(kBob, 15 * kSecond, {{2, true}}), 20 * kSecond);
    EXPECT_EQ(archive.size(), 3u);
    EXPECT_EQ(archive.snapshots_from(kAlice).size(), 2u);
    EXPECT_EQ(archive.snapshots_from(kBob).size(), 1u);
    EXPECT_TRUE(archive.snapshots_from(util::NodeId::from_hex("0c")).empty());
}

TEST(SnapshotArchive, PrunesOldSnapshots) {
    SnapshotArchive archive(/*retention=*/2 * kMinute);
    archive.add(snap(kAlice, 0, {{1, true}}), 0);
    archive.add(snap(kAlice, 1 * kMinute, {{1, true}}), 1 * kMinute);
    EXPECT_EQ(archive.size(), 2u);
    // Inserting at t=3min prunes the t=0 snapshot (older than 2 min).
    archive.add(snap(kBob, 3 * kMinute, {{2, true}}), 3 * kMinute);
    EXPECT_EQ(archive.size(), 2u);
    EXPECT_EQ(archive.snapshots_from(kAlice).size(), 1u);
}

TEST(SnapshotArchive, ProbesForFiltersByLinkWindowAndOrigin) {
    SnapshotArchive archive;
    archive.add(snap(kAlice, 100 * kSecond, {{1, true}, {9, false}}),
                100 * kSecond);
    archive.add(snap(kBob, 100 * kSecond, {{1, false}}), 100 * kSecond);
    archive.add(snap(kAlice, 300 * kSecond, {{1, true}}), 300 * kSecond);

    const std::vector<net::LinkId> links{1};
    // Window around t=100s: both snapshots at 100s qualify; link 9 excluded.
    auto probes = archive.probes_for(links, 110 * kSecond, 60 * kSecond,
                                     util::NodeId::from_hex("ff"));
    ASSERT_EQ(probes.size(), 2u);
    for (const auto& p : probes) EXPECT_EQ(p.link, 1u);

    // Excluding Bob removes its probe.
    probes = archive.probes_for(links, 110 * kSecond, 60 * kSecond, kBob);
    ASSERT_EQ(probes.size(), 1u);
    EXPECT_EQ(probes[0].reporter, kAlice);
    EXPECT_TRUE(probes[0].link_up);

    // A tight window around t=300s sees only the late snapshot.
    probes = archive.probes_for(links, 300 * kSecond, 10 * kSecond,
                                util::NodeId::from_hex("ff"));
    EXPECT_EQ(probes.size(), 1u);
}

TEST(SnapshotArchive, EvidenceForReturnsWholeTouchingSnapshots) {
    SnapshotArchive archive;
    archive.add(snap(kAlice, 100 * kSecond, {{1, true}, {9, false}}),
                100 * kSecond);
    archive.add(snap(kBob, 100 * kSecond, {{7, true}}), 100 * kSecond);
    const std::vector<net::LinkId> links{1, 2};
    const auto evidence = archive.evidence_for(
        links, 100 * kSecond, 60 * kSecond, util::NodeId::from_hex("ff"));
    ASSERT_EQ(evidence.size(), 1u);  // Bob's snapshot touches no path link
    EXPECT_EQ(evidence[0].origin, kAlice);
    EXPECT_EQ(evidence[0].links.size(), 2u);  // the whole snapshot, signed
}

tomography::TomographicSnapshot vsnap(const util::NodeId& origin,
                                      std::uint64_t epoch, util::SimTime at,
                                      bool link_up = true) {
    auto s = snap(origin, at, {{1, link_up}});
    s.epoch = epoch;
    return s;
}

TEST(SnapshotArchive, RejectsStaleDelivery) {
    SnapshotArchive archive(/*retention=*/10 * kMinute,
                            /*max_transit=*/kMinute);
    // Delivered two minutes after it was probed: an honest snapshot rides
    // the next advertisement; one this old is a replay in transit.
    EXPECT_EQ(archive.add(snap(kAlice, 0, {{1, true}}), 2 * kMinute),
              ArchiveAdd::kRejectedStale);
    EXPECT_EQ(archive.size(), 0u);
    EXPECT_EQ(archive.add(snap(kAlice, 90 * kSecond, {{1, true}}),
                          2 * kMinute),
              ArchiveAdd::kArchived);
}

TEST(SnapshotArchive, RejectsEpochReplay) {
    SnapshotArchive archive;
    EXPECT_EQ(archive.add(vsnap(kAlice, 2, 10 * kSecond), 10 * kSecond),
              ArchiveAdd::kArchived);
    // The same epoch again, and an older one, are replays.
    EXPECT_EQ(archive.add(vsnap(kAlice, 2, 20 * kSecond), 20 * kSecond),
              ArchiveAdd::kRejectedEpoch);
    EXPECT_EQ(archive.add(vsnap(kAlice, 1, 20 * kSecond), 20 * kSecond),
              ArchiveAdd::kRejectedEpoch);
    // The epoch floor is per origin, and advancing epochs are accepted.
    EXPECT_EQ(archive.add(vsnap(kBob, 1, 20 * kSecond), 20 * kSecond),
              ArchiveAdd::kArchived);
    EXPECT_EQ(archive.add(vsnap(kAlice, 3, 30 * kSecond), 30 * kSecond),
              ArchiveAdd::kArchived);
    EXPECT_EQ(archive.size(), 3u);
}

TEST(SnapshotArchive, FindLocatesByOriginAndEpoch) {
    SnapshotArchive archive;
    archive.add(vsnap(kAlice, 1, 10 * kSecond, true), 10 * kSecond);
    archive.add(vsnap(kAlice, 2, 20 * kSecond, false), 20 * kSecond);
    const auto* found = archive.find(kAlice, 2);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->epoch, 2u);
    EXPECT_FALSE(found->links[0].up);
    EXPECT_EQ(archive.find(kAlice, 9), nullptr);
    EXPECT_EQ(archive.find(kBob, 1), nullptr);
    // Epoch 0 carries no uniqueness promise, so it is never findable.
    archive.add(snap(kBob, 20 * kSecond, {{1, true}}), 20 * kSecond);
    EXPECT_EQ(archive.find(kBob, 0), nullptr);
}

TEST(SnapshotArchive, PerOriginCapKeepsNewest) {
    SnapshotArchive archive(/*retention=*/10 * kMinute,
                            /*max_transit=*/kMinute, /*max_per_origin=*/3);
    for (std::uint64_t e = 1; e <= 5; ++e) {
        const auto at = static_cast<util::SimTime>(e) * 10 * kSecond;
        EXPECT_EQ(archive.add(vsnap(kAlice, e, at), at),
                  ArchiveAdd::kArchived);
    }
    EXPECT_EQ(archive.size(), 3u);
    const auto kept = archive.snapshots_from(kAlice);
    ASSERT_EQ(kept.size(), 3u);
    EXPECT_EQ(kept.front()->epoch, 3u);  // oldest two evicted
    EXPECT_EQ(kept.back()->epoch, 5u);
    // The evicted epochs stay on the replay floor: a hostile origin cannot
    // flush the archive to relive its past.
    EXPECT_EQ(archive.add(vsnap(kAlice, 2, 60 * kSecond), 60 * kSecond),
              ArchiveAdd::kRejectedEpoch);
}

TEST(SnapshotArchive, QueriesEnforceRetentionHorizon) {
    SnapshotArchive archive(/*retention=*/2 * kMinute);
    archive.add(snap(kAlice, 100 * kSecond, {{1, true}}), 100 * kSecond);
    archive.add(snap(kBob, 200 * kSecond, {{1, false}}), 200 * kSecond);
    ASSERT_EQ(archive.size(), 2u);

    // A query anchored at t=300s with a five-minute delta would admit both
    // snapshots by the window alone; the retention horizon (t - 2min = 180s)
    // must still exclude the older one even though it was never pruned.
    const std::vector<net::LinkId> links{1};
    const auto exclude = util::NodeId::from_hex("ff");
    const auto probes =
        archive.probes_for(links, 300 * kSecond, 300 * kSecond, exclude);
    ASSERT_EQ(probes.size(), 1u);
    EXPECT_EQ(probes[0].reporter, kBob);

    const auto evidence =
        archive.evidence_for(links, 300 * kSecond, 300 * kSecond, exclude);
    ASSERT_EQ(evidence.size(), 1u);
    EXPECT_EQ(evidence[0].origin, kBob);
}

}  // namespace
}  // namespace concilium::runtime
