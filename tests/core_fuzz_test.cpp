// Adversarial-input robustness: mutated or random byte strings fed to the
// accusation deserializer must throw cleanly or fail verification -- never
// crash, hang, or verify.

#include <gtest/gtest.h>

#include <memory>

#include "core/accusation.h"
#include "crypto/certificates.h"
#include "util/rng.h"

namespace concilium::core {
namespace {

struct FuzzWorld {
    FuzzWorld() : ca(61) {
        for (int i = 0; i < 4; ++i) {
            nodes.push_back(std::make_unique<
                            crypto::CertificateAuthority::Admission>(
                ca.admit(static_cast<crypto::IpAddress>(i))));
            keys.emplace(nodes.back()->certificate.node_id,
                         nodes.back()->keys.public_key());
        }
    }

    FaultAccusation make_valid() {
        BlameEvidence ev;
        ev.judge = nodes[0]->certificate.node_id;
        ev.suspect = nodes[1]->certificate.node_id;
        ev.message_id = 7;
        ev.message_time = 100 * util::kSecond;
        ev.path_links = {1, 2, 3};
        tomography::TomographicSnapshot snap;
        snap.origin = nodes[2]->certificate.node_id;
        snap.probed_at = 100 * util::kSecond;
        snap.links = {{1, true}, {2, true}, {3, true}};
        snap.signature = nodes[2]->keys.sign(snap.signed_payload());
        ev.snapshots.push_back(std::move(snap));
        ev.commitment = make_forwarding_commitment(
            ev.judge, ev.suspect, nodes[3]->certificate.node_id,
            ev.message_id, ev.message_time, nodes[1]->keys);
        ev.claimed_blame =
            compute_blame(ev.path_links, probes_from_snapshots(ev.snapshots),
                          ev.message_time, ev.suspect, BlameParams{})
                .blame;
        ev.judge_signature = nodes[0]->keys.sign(ev.signed_payload());
        FaultAccusation acc;
        acc.accuser = nodes[0]->certificate.node_id;
        acc.evidence.push_back(std::move(ev));
        acc.signature = nodes[0]->keys.sign(acc.signed_payload());
        return acc;
    }

    AccusationVerifier verifier() {
        return AccusationVerifier(
            ca.registry(),
            [this](const util::NodeId& id)
                -> std::optional<crypto::PublicKey> {
                const auto it = keys.find(id);
                if (it == keys.end()) return std::nullopt;
                return it->second;
            },
            BlameParams{}, VerdictParams{});
    }

    crypto::CertificateAuthority ca;
    std::vector<std::unique_ptr<crypto::CertificateAuthority::Admission>>
        nodes;
    std::unordered_map<util::NodeId, crypto::PublicKey, util::NodeIdHash>
        keys;
};

class AccusationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AccusationFuzz, SingleByteMutationsNeverVerify) {
    FuzzWorld world;
    const auto valid = world.make_valid();
    const auto verifier = world.verifier();
    ASSERT_EQ(verifier.verify(valid), AccusationCheck::kOk);
    const auto bytes = valid.serialize();

    util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 17);
    for (int trial = 0; trial < 200; ++trial) {
        auto mutated = bytes;
        const std::size_t pos = rng.uniform_index(mutated.size());
        const auto flip = static_cast<std::uint8_t>(
            1u << rng.uniform_index(8));
        mutated[pos] ^= flip;
        try {
            const auto parsed = FaultAccusation::deserialize(mutated);
            if (verifier.verify(parsed) == AccusationCheck::kOk) {
                // A mutation may hit a non-canonical encoding (e.g. the
                // high bits of a boolean byte) that parses back to the
                // same semantics; then verifying is correct -- but the
                // canonical re-serialization must equal the original.
                EXPECT_EQ(parsed.serialize(), bytes)
                    << "mutation at byte " << pos
                    << " verified with altered content";
            }
        } catch (const std::exception&) {
            // Clean rejection is fine.
        }
    }
}

TEST_P(AccusationFuzz, RandomGarbageIsRejectedCleanly) {
    FuzzWorld world;
    const auto verifier = world.verifier();
    util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 3);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> garbage(
            rng.uniform_index(512) + 1);
        for (auto& b : garbage) {
            b = static_cast<std::uint8_t>(rng.uniform_u64());
        }
        try {
            const auto parsed = FaultAccusation::deserialize(garbage);
            EXPECT_NE(verifier.verify(parsed), AccusationCheck::kOk);
        } catch (const std::exception&) {
        }
    }
}

TEST_P(AccusationFuzz, TruncationsAreRejected) {
    FuzzWorld world;
    const auto bytes = world.make_valid().serialize();
    util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t keep = rng.uniform_index(bytes.size());
        const std::vector<std::uint8_t> cut(bytes.begin(),
                                            bytes.begin() + keep);
        EXPECT_THROW((void)FaultAccusation::deserialize(cut),
                     std::exception)
            << "accepted a " << keep << "-byte truncation";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccusationFuzz, ::testing::Values(1, 2, 3));

TEST(AccusationPathCheck, LiedAboutPathIsRejected) {
    FuzzWorld world;
    const auto acc = world.make_valid();
    // A verifier that knows the true path between these nodes is {9, 10}.
    const AccusationVerifier strict(
        world.ca.registry(),
        [&](const util::NodeId& id) -> std::optional<crypto::PublicKey> {
            const auto it = world.keys.find(id);
            if (it == world.keys.end()) return std::nullopt;
            return it->second;
        },
        BlameParams{}, VerdictParams{},
        [](const util::NodeId&, const util::NodeId&,
           std::span<const net::LinkId> links) {
            const std::vector<net::LinkId> truth{9, 10};
            return std::equal(links.begin(), links.end(), truth.begin(),
                              truth.end());
        });
    EXPECT_EQ(strict.verify(acc), AccusationCheck::kBadPath);
    EXPECT_STREQ(to_string(AccusationCheck::kBadPath), "bad path claim");

    // And one whose link map agrees accepts it.
    const AccusationVerifier lenient(
        world.ca.registry(),
        [&](const util::NodeId& id) -> std::optional<crypto::PublicKey> {
            const auto it = world.keys.find(id);
            if (it == world.keys.end()) return std::nullopt;
            return it->second;
        },
        BlameParams{}, VerdictParams{},
        [](const util::NodeId&, const util::NodeId&,
           std::span<const net::LinkId> links) {
            const std::vector<net::LinkId> truth{1, 2, 3};
            return std::equal(links.begin(), links.end(), truth.begin(),
                              truth.end());
        });
    EXPECT_EQ(lenient.verify(acc), AccusationCheck::kOk);
}

}  // namespace
}  // namespace concilium::core
