// Soak: the attack pipeline -- campaign materialization, the Byzantine
// cluster roles, proof filing, and the defense counters -- must be
// byte-reproducible at any worker count.  This is the in-process version of
// the nightly `soak_attacks --jobs 1` vs `--jobs 4` artifact comparison.

#include <gtest/gtest.h>

#include <string>

#include "runtime/attack.h"
#include "runtime/cluster.h"
#include "sim/experiment_driver.h"
#include "sim/scenario.h"
#include "util/metrics.h"

namespace concilium::sim {
namespace {

/// The deterministic half of the registry's JSON snapshot (everything
/// before the "timing" section).
std::string metrics_section() {
    const std::string json =
        util::metrics::Registry::global().snapshot().to_json();
    const auto cut = json.find("\"timing\"");
    return json.substr(0, cut);
}

/// A miniature soak_attacks: per-trial recruitment from the trial
/// substream, a cluster under campaign roles, a paced message workload, and
/// a printable row.  Returns the concatenated rows (merged in trial order).
std::string run_soak(const Scenario& world, std::size_t jobs) {
    const ExperimentDriver driver(19, jobs);
    std::string table;
    driver.run(
        3,
        [&](std::uint64_t trial, util::Rng& rng) {
            const auto base = runtime::AttackCampaign::parse(
                "equivocate:0.08,replay:0.08,slander:0.06,spam:0.04,"
                "collude:0.06");
            const auto campaign =
                base.scaled(static_cast<double>(trial));
            auto recruit_rng = rng.fork();
            auto behaviors = runtime::materialize_attackers(
                campaign, world.overlay_net().size(), recruit_rng);
            if (trial == 0) behaviors.clear();

            runtime::RuntimeParams params;
            net::EventSim sim;
            runtime::Cluster cluster(sim, world.timeline(),
                                     world.overlay_net(), world.trees(),
                                     params, behaviors, rng.fork());
            cluster.start();
            sim.run_until(3 * util::kMinute);

            std::size_t delivered = 0;
            for (int i = 0; i < 10; ++i) {
                const auto from = static_cast<overlay::MemberIndex>(
                    rng.uniform_index(world.overlay_net().size()));
                cluster.send(from, util::NodeId::random(rng),
                             [&](const runtime::Cluster::MessageOutcome& o) {
                                 if (o.delivered) ++delivered;
                             });
                sim.run_until(sim.now() + 45 * util::kSecond);
            }
            sim.run_until(sim.now() + 2 * util::kMinute);

            const auto& s = cluster.stats();
            return std::to_string(trial) + ":" + std::to_string(delivered) +
                   ":" + std::to_string(s.equivocations_published) + ":" +
                   std::to_string(s.replays_published) + ":" +
                   std::to_string(s.slanders_filed) + ":" +
                   std::to_string(s.equivocation_proofs_filed) + ":" +
                   std::to_string(s.revisions_rejected) + ":" +
                   std::to_string(s.dht_puts_rejected) + "\n";
        },
        [&](std::uint64_t, std::string&& row) { table += row; });
    return table;
}

TEST(AttackDeterminism, SoakIsByteIdenticalAcrossJobs) {
    ScenarioParams params;
    params.topology = net::small_params();
    params.topology.end_hosts = 300;
    params.overlay_nodes_override = 50;
    params.seed = 23;
    const Scenario world(params);

    auto& registry = util::metrics::Registry::global();

    registry.reset();
    const std::string table_seq = run_soak(world, 1);
    const std::string section_seq = metrics_section();

    registry.reset();
    const std::string table_par = run_soak(world, 4);
    const std::string section_par = metrics_section();

    // The printed table and every deterministic metric -- including the
    // attack.* recruitment and defense.* rejection counters -- are
    // byte-identical at any worker count.
    EXPECT_EQ(table_seq, table_par);
    EXPECT_EQ(section_seq, section_par);
    EXPECT_NE(table_seq.find(':'), std::string::npos);
    EXPECT_NE(section_seq.find("\"attack.nodes_recruited\""),
              std::string::npos);
    EXPECT_NE(section_seq.find("\"dht.puts\""), std::string::npos);
}

}  // namespace
}  // namespace concilium::sim
