// Checkpoint format round-trips and the daemon's replay-and-resume
// contract (daemon/checkpoint.h, daemon/daemon.h): a killed-and-restarted
// run must end in byte-identical state to an uninterrupted run of the same
// trace, and every mismatch -- tampered bytes, different trace, different
// loop geometry -- must refuse loudly instead of silently diverging.

#include "daemon/checkpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "daemon/daemon.h"
#include "daemon/workload.h"
#include "util/time.h"

namespace concilium::daemon {
namespace {

namespace fs = std::filesystem;
using util::kMinute;
using util::kSecond;

// A small world with every record kind: enough protocol activity that the
// checkpointed stats and journals are non-trivial, small enough that three
// full runs stay test-suite cheap.
constexpr const char* kTrace =
    "concilium-trace v1\n"
    "seed 11\n"
    "nodes 16\n"
    "hosts 120\n"
    "stubs 4\n"
    "duration 10min\n"
    "attack 0us 9 drop\n"
    "msg 15s 0 00000000000000aa\n"
    "msg 45s 1 00000000000000bb\n"
    "crash 70s 3 2min\n"
    "msg 90s 2 00000000000000cc\n"
    "churn 2min 5 3min\n"
    "msg 3min 4 00000000000000dd\n"
    "fault 4min 1 2 2min\n"
    "msg 5min 6 00000000000000ee\n"
    "msg 7min 7 00000000000000ff\n"
    "msg 8min 8 0000000000000011\n"
    "end 11\n";

DaemonOptions test_options(std::string checkpoint_dir) {
    DaemonOptions opts;
    opts.checkpoint_dir = std::move(checkpoint_dir);
    opts.checkpoint_every = 2 * kMinute;
    opts.tick = 30 * kSecond;
    opts.settle = 2 * kMinute;
    return opts;
}

/// A fresh, empty scratch directory under the system temp dir.
fs::path scratch_dir(const std::string& name) {
    const fs::path dir =
        fs::temp_directory_path() / "concilium_daemon_test" / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

Checkpoint sample_checkpoint() {
    Checkpoint ck;
    ck.trace_fnv = 0x1234abcd5678ef00ull;
    ck.sim_clock = 5 * kMinute;
    ck.tick = 30 * kSecond;
    ck.checkpoint_every = 2 * kMinute;
    ck.messages_fed = 42;
    ck.checkpoints_written = 2;
    ck.stats = {{"messages_sent", 42}, {"messages_delivered", 40},
                {"accusations", 1}};
    ck.journals = {{7, 0xdeadbeefull}, {0, kFnvOffset}, {3, 0x42ull}};
    return ck;
}

TEST(Checkpoint, TextRoundTripPreservesEveryField) {
    const Checkpoint ck = sample_checkpoint();
    const std::string text = ck.to_text();
    const Checkpoint back = Checkpoint::parse(text, "mem");

    EXPECT_EQ(back.trace_fnv, ck.trace_fnv);
    EXPECT_EQ(back.sim_clock, ck.sim_clock);
    EXPECT_EQ(back.tick, ck.tick);
    EXPECT_EQ(back.checkpoint_every, ck.checkpoint_every);
    EXPECT_EQ(back.messages_fed, ck.messages_fed);
    EXPECT_EQ(back.checkpoints_written, ck.checkpoints_written);
    ASSERT_EQ(back.stats.size(), ck.stats.size());
    for (std::size_t i = 0; i < ck.stats.size(); ++i) {
        EXPECT_EQ(back.stats[i], ck.stats[i]) << "stat " << i;
    }
    ASSERT_EQ(back.journals.size(), ck.journals.size());
    for (std::size_t i = 0; i < ck.journals.size(); ++i) {
        EXPECT_EQ(back.journals[i].entries, ck.journals[i].entries);
        EXPECT_EQ(back.journals[i].fnv, ck.journals[i].fnv);
    }
    // Identity: re-serialization is byte-stable, the property cmp(1) and
    // resume verification both lean on.
    EXPECT_EQ(back.to_text(), text);
}

TEST(Checkpoint, RejectsTamperedBytes) {
    std::string text = sample_checkpoint().to_text();
    // Nudge one stat value; the trailing self-digest no longer matches.
    const auto pos = text.find("messages_delivered 40");
    ASSERT_NE(pos, std::string::npos);
    text[pos + std::string("messages_delivered 4").size()] = '1';
    try {
        (void)Checkpoint::parse(text, "mem");
        FAIL() << "parse accepted a tampered checkpoint";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("digest"), std::string::npos)
            << "error was: " << e.what();
    }
}

TEST(Checkpoint, RejectsTruncation) {
    const std::string text = sample_checkpoint().to_text();
    // Drop the final "end\n" -- the torn-write shape rename() prevents but
    // the parser must still detect.
    EXPECT_THROW(
        (void)Checkpoint::parse(text.substr(0, text.size() - 4), "mem"),
        std::invalid_argument);
    EXPECT_THROW((void)Checkpoint::parse("", "mem"), std::invalid_argument);
}

TEST(Checkpoint, LatestCheckpointFilePicksTheHighestClock) {
    const fs::path dir = scratch_dir("latest");
    EXPECT_EQ(latest_checkpoint_file(dir.string()), "");

    Checkpoint early = sample_checkpoint();
    early.sim_clock = 2 * kMinute;
    Checkpoint late = sample_checkpoint();
    late.sim_clock = 8 * kMinute;
    const auto name = [&](const Checkpoint& ck) {
        return (dir / ("checkpoint-" + std::to_string(ck.sim_clock) +
                       ".ckpt"))
            .string();
    };
    write_atomic(name(early), early.to_text());
    write_atomic(name(late), late.to_text());
    // An unrelated file must not confuse the scan.
    write_atomic((dir / "notes.txt").string(), "not a checkpoint\n");

    EXPECT_EQ(latest_checkpoint_file(dir.string()), name(late));
    fs::remove_all(dir.parent_path());
}

// The tentpole contract: SIGKILL-shaped interruption (stop mid-run, start
// a fresh Daemon on the same directory) ends in exactly the bytes of an
// uninterrupted run, and the replay rewrites the cadence checkpoints it
// passes byte-identically.
TEST(DaemonResume, StoppedAndResumedRunMatchesUninterruptedByteForByte) {
    const fs::path ref_dir = scratch_dir("ref");
    const fs::path cut_dir = scratch_dir("cut");

    // Reference: one uninterrupted run.
    std::string ref_state;
    {
        Daemon ref(Workload::parse(kTrace, "test"),
                   test_options(ref_dir.string()));
        ASSERT_TRUE(ref.run());
        ref_state = ref.state_text();
        EXPECT_GT(ref.score().fed, 0u);
    }

    // Interrupted: stop the run once its sim clock passes 4 minutes.  The
    // stopper watches health_text() (the documented thread-safe view) and
    // the run paces 2ms per tick, so the flag lands mid-run, at some tick
    // boundary past the threshold.
    {
        Daemon victim(Workload::parse(kTrace, "test"),
                      test_options(cut_dir.string()));
        std::atomic<bool> stop{false};
        std::thread stopper([&] {
            while (!stop.load()) {
                const std::string health = victim.health_text();
                const auto pos = health.find("sim-clock-us ");
                if (pos != std::string::npos &&
                    std::stoll(health.substr(
                        pos + std::string("sim-clock-us ").size())) >=
                        4 * kMinute) {
                    stop.store(true);
                }
                std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
        });
        const bool finished = victim.run(&stop, /*pace_ms=*/2);
        stop.store(true);  // unblock the stopper on the finished path
        stopper.join();
        ASSERT_FALSE(finished) << "stop flag never landed mid-run";
        EXPECT_FALSE(latest_checkpoint_file(cut_dir.string()).empty());
    }

    // Resumed: a fresh Daemon on the same directory replays, verifies
    // against the loaded checkpoint, and runs to completion.
    {
        Daemon resumed(Workload::parse(kTrace, "test"),
                       test_options(cut_dir.string()));
        EXPECT_TRUE(resumed.resumed());
        ASSERT_TRUE(resumed.run());
        EXPECT_FALSE(resumed.resumed());  // verification consumed the target
        EXPECT_EQ(resumed.state_text(), ref_state);
    }

    // Every cadence checkpoint of the reference run exists in the resumed
    // directory with identical bytes (the off-cadence stop checkpoint is
    // extra, and ignored here).
    std::size_t compared = 0;
    for (const auto& entry : fs::directory_iterator(ref_dir)) {
        const fs::path twin = cut_dir / entry.path().filename();
        ASSERT_TRUE(fs::exists(twin)) << twin;
        EXPECT_EQ(slurp(entry.path()), slurp(twin)) << twin;
        ++compared;
    }
    EXPECT_GT(compared, 0u);
    fs::remove_all(ref_dir.parent_path());
}

TEST(DaemonResume, RefusesGeometryAndTraceMismatches) {
    const fs::path dir = scratch_dir("mismatch");

    // Leave a checkpoint behind by stopping right after the first cadence
    // point: run un-paced with a stop flag armed from the start is not
    // enough (it checkpoints at clock 0, which resume ignores), so run to
    // completion instead -- the final cadence checkpoint is on disk.
    {
        Daemon d(Workload::parse(kTrace, "test"),
                 test_options(dir.string()));
        ASSERT_TRUE(d.run());
    }
    ASSERT_FALSE(latest_checkpoint_file(dir.string()).empty());

    // Same trace, different tick: refused.
    {
        DaemonOptions opts = test_options(dir.string());
        opts.tick = 1 * kMinute;
        EXPECT_THROW(Daemon(Workload::parse(kTrace, "test"), opts),
                     std::invalid_argument);
    }
    // Same trace, different cadence: refused.
    {
        DaemonOptions opts = test_options(dir.string());
        opts.checkpoint_every = 5 * kMinute;
        EXPECT_THROW(Daemon(Workload::parse(kTrace, "test"), opts),
                     std::invalid_argument);
    }
    // Edited trace bytes (one destination key changed): refused.
    {
        std::string edited = kTrace;
        const auto pos = edited.find("00000000000000aa");
        ASSERT_NE(pos, std::string::npos);
        edited[pos + 15] = 'b';
        EXPECT_THROW(Daemon(Workload::parse(edited, "test"),
                            test_options(dir.string())),
                     std::invalid_argument);
    }
    fs::remove_all(dir.parent_path());
}

TEST(CheckpointChain, SkipsTmpQuarantinedAndForeignFiles) {
    const fs::path dir = scratch_dir("chain");
    Checkpoint ck = sample_checkpoint();
    const auto write_at = [&](util::SimTime clock) {
        ck.sim_clock = clock;
        const std::string path =
            (dir / ("checkpoint-" + std::to_string(clock) + ".ckpt"))
                .string();
        write_atomic(path, ck.to_text());
        return path;
    };
    const std::string oldest = write_at(2 * kMinute);
    const std::string newest = write_at(6 * kMinute);
    // Distractors: an interrupted write's leftover temp file, a quarantined
    // artifact, a non-decimal stem, and an unrelated file.
    std::ofstream(dir / "checkpoint-999.ckpt.tmp") << "torn";
    std::ofstream(dir / "checkpoint-888.ckpt.quarantined-digest-mismatch")
        << "bad";
    std::ofstream(dir / "checkpoint-abc.ckpt") << "junk";
    std::ofstream(dir / "notes.txt") << "unrelated";

    const std::vector<std::string> chain = checkpoint_chain(dir.string());
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain[0], newest);
    EXPECT_EQ(chain[1], oldest);
    EXPECT_EQ(latest_checkpoint_file(dir.string()), newest);
    fs::remove_all(dir.parent_path());
}

TEST(CheckpointChain, PruneKeepsTheNewestAndSparesQuarantine) {
    const fs::path dir = scratch_dir("prune");
    Checkpoint ck = sample_checkpoint();
    for (int i = 1; i <= 5; ++i) {
        ck.sim_clock = i * kMinute;
        write_atomic((dir / ("checkpoint-" + std::to_string(ck.sim_clock) +
                             ".ckpt"))
                         .string(),
                     ck.to_text());
    }
    std::ofstream(dir / "checkpoint-7.ckpt.quarantined-truncated") << "bad";

    EXPECT_EQ(prune_checkpoint_chain(dir.string(), 0), 0u);  // keep all
    EXPECT_EQ(prune_checkpoint_chain(dir.string(), 2), 3u);
    const std::vector<std::string> chain = checkpoint_chain(dir.string());
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_NE(chain[0].find(std::to_string(5 * kMinute)), std::string::npos);
    EXPECT_NE(chain[1].find(std::to_string(4 * kMinute)), std::string::npos);
    EXPECT_TRUE(
        fs::exists(dir / "checkpoint-7.ckpt.quarantined-truncated"));
    fs::remove_all(dir.parent_path());
}

// The self-healing contract (DAEMON.md "Durability under storage faults"):
// whatever shape of corruption hits the newest checkpoint -- truncation,
// one flipped bit, a tampered self-digest line -- resume quarantines it
// with a named reason, falls back to the newest valid ancestor, finishes
// byte-identical to an unfaulted run, and regenerates the corrupted
// cadence checkpoint cleanly along the way.
class DaemonSelfHeal : public ::testing::Test {
  protected:
    static void SetUpTestSuite() {
        ref_dir_ = new fs::path(scratch_dir("selfheal_ref"));
        Daemon ref(Workload::parse(kTrace, "test"),
                   test_options(ref_dir_->string()));
        ASSERT_TRUE(ref.run());
        ref_state_ = new std::string(ref.state_text());
    }

    static void TearDownTestSuite() {
        fs::remove_all(ref_dir_->parent_path());
        delete ref_dir_;
        delete ref_state_;
        ref_dir_ = nullptr;
        ref_state_ = nullptr;
    }

    /// A fresh copy of the reference checkpoint directory.
    static fs::path cloned_dir(const std::string& name) {
        const fs::path dir = scratch_dir(name);
        for (const auto& entry : fs::directory_iterator(*ref_dir_)) {
            fs::copy_file(entry.path(), dir / entry.path().filename());
        }
        return dir;
    }

    /// Corrupts the newest checkpoint in `dir`; returns its path.
    static std::string corrupt_newest(const fs::path& dir,
                                      const std::string& shape) {
        const std::string path = latest_checkpoint_file(dir.string());
        EXPECT_FALSE(path.empty());
        std::string text = slurp(path);
        if (shape == "truncate") {
            // Tear at a line boundary: whole trailing lines (self-digest
            // and 'end' included) are gone, the prefix is intact.
            text.resize(text.rfind('\n', text.size() / 2) + 1);
        } else if (shape == "bitflip") {
            text[text.size() / 3] =
                static_cast<char>(text[text.size() / 3] ^ 0x10);
        } else {  // tamper the self-digest line itself
            const auto pos = text.rfind("digest ");
            EXPECT_NE(pos, std::string::npos);
            char& c = text[pos + 7];
            c = c == '0' ? '1' : '0';
        }
        std::ofstream(path, std::ios::binary | std::ios::trunc) << text;
        return path;
    }

    void expect_heals(const std::string& name, const std::string& shape,
                      const std::string& reason) {
        const fs::path dir = cloned_dir(name);
        const std::string corrupted = corrupt_newest(dir, shape);
        const std::string clean_bytes =
            slurp(*ref_dir_ / fs::path(corrupted).filename());

        Daemon d(Workload::parse(kTrace, "test"),
                 test_options(dir.string()));
        // The corrupt file is out of the candidate set, under a name that
        // states why, and the daemon said so.
        EXPECT_FALSE(fs::exists(corrupted));
        EXPECT_TRUE(fs::exists(corrupted + ".quarantined-" + reason))
            << shape;
        ASSERT_EQ(d.io_notes().size(), 1u);
        EXPECT_NE(d.io_notes()[0].find(corrupted), std::string::npos);
        EXPECT_NE(d.io_notes()[0].find(reason), std::string::npos);
        EXPECT_NE(d.health_text().find("checkpoints-quarantined 1"),
                  std::string::npos);
        // Resume fell back to the older ancestor, not a fresh start.
        EXPECT_TRUE(d.resumed());

        ASSERT_TRUE(d.run());
        EXPECT_EQ(d.state_text(), *ref_state_) << shape;
        // Replay regenerated the corrupted cadence checkpoint cleanly.
        EXPECT_EQ(slurp(corrupted), clean_bytes) << shape;
        fs::remove_all(dir);
    }

    static fs::path* ref_dir_;
    static std::string* ref_state_;
};

fs::path* DaemonSelfHeal::ref_dir_ = nullptr;
std::string* DaemonSelfHeal::ref_state_ = nullptr;

TEST_F(DaemonSelfHeal, TruncatedNewestFallsBackToOlder) {
    expect_heals("selfheal_trunc", "truncate", "truncated");
}

TEST_F(DaemonSelfHeal, BitFlippedNewestFallsBackToOlder) {
    expect_heals("selfheal_flip", "bitflip", "digest-mismatch");
}

TEST_F(DaemonSelfHeal, TamperedDigestLineFallsBackToOlder) {
    expect_heals("selfheal_digest", "digest", "digest-mismatch");
}

TEST_F(DaemonSelfHeal, FullyCorruptChainStartsFreshAndStillMatches) {
    const fs::path dir = cloned_dir("selfheal_all");
    std::size_t corrupted = 0;
    for (const std::string& path : checkpoint_chain(dir.string())) {
        std::string text = slurp(path);
        text.resize(text.size() / 2);
        std::ofstream(path, std::ios::binary | std::ios::trunc) << text;
        ++corrupted;
    }
    ASSERT_GT(corrupted, 1u);

    Daemon d(Workload::parse(kTrace, "test"), test_options(dir.string()));
    EXPECT_FALSE(d.resumed());  // nothing valid left: fresh start
    EXPECT_EQ(d.io_notes().size(), corrupted);
    ASSERT_TRUE(d.run());
    EXPECT_EQ(d.state_text(), *ref_state_);
    fs::remove_all(dir);
}

TEST_F(DaemonSelfHeal, ExhaustedWriteRetriesDegradeInsteadOfDying) {
    // Every write fails loudly (eio at rate 1): the daemon retries within
    // its bounded budget, then disarms checkpointing and finishes the run
    // -- with the exact bytes of the unfaulted reference, because cadence
    // accounting keeps advancing while degraded.
    const fs::path dir = scratch_dir("selfheal_degraded");
    DaemonOptions opts = test_options(dir.string());
    opts.io = std::make_shared<util::FaultFs>(
        util::IoFaultSpec::parse("eio:1", /*seed=*/3));

    Daemon d(Workload::parse(kTrace, "test"), opts);
    EXPECT_FALSE(d.resumed());
    ASSERT_TRUE(d.run());
    EXPECT_TRUE(d.io_degraded());
    EXPECT_NE(d.health_text().find("io-degraded 1"), std::string::npos);
    ASSERT_FALSE(d.io_notes().empty());
    EXPECT_NE(d.io_notes().back().find("retry budget exhausted"),
              std::string::npos);
    EXPECT_EQ(d.state_text(), *ref_state_);
    EXPECT_TRUE(latest_checkpoint_file(dir.string()).empty());
    fs::remove_all(dir);
}

TEST_F(DaemonSelfHeal, CheckpointKeepBoundsTheChainOnDisk) {
    const fs::path dir = scratch_dir("selfheal_keep");
    DaemonOptions opts = test_options(dir.string());
    opts.checkpoint_keep = 2;
    Daemon d(Workload::parse(kTrace, "test"), opts);
    ASSERT_TRUE(d.run());
    const std::vector<std::string> chain = checkpoint_chain(dir.string());
    EXPECT_EQ(chain.size(), 2u);
    EXPECT_EQ(d.state_text(), *ref_state_);
    // The retained prefix of the chain is byte-identical to the unpruned
    // reference run's: pruning is a disk policy, not a state change.
    for (const std::string& path : chain) {
        EXPECT_EQ(slurp(path),
                  slurp(*ref_dir_ / fs::path(path).filename()));
    }
    fs::remove_all(dir);
}

}  // namespace
}  // namespace concilium::daemon
