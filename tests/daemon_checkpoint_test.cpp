// Checkpoint format round-trips and the daemon's replay-and-resume
// contract (daemon/checkpoint.h, daemon/daemon.h): a killed-and-restarted
// run must end in byte-identical state to an uninterrupted run of the same
// trace, and every mismatch -- tampered bytes, different trace, different
// loop geometry -- must refuse loudly instead of silently diverging.

#include "daemon/checkpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "daemon/daemon.h"
#include "daemon/workload.h"
#include "util/time.h"

namespace concilium::daemon {
namespace {

namespace fs = std::filesystem;
using util::kMinute;
using util::kSecond;

// A small world with every record kind: enough protocol activity that the
// checkpointed stats and journals are non-trivial, small enough that three
// full runs stay test-suite cheap.
constexpr const char* kTrace =
    "concilium-trace v1\n"
    "seed 11\n"
    "nodes 16\n"
    "hosts 120\n"
    "stubs 4\n"
    "duration 10min\n"
    "attack 0us 9 drop\n"
    "msg 15s 0 00000000000000aa\n"
    "msg 45s 1 00000000000000bb\n"
    "crash 70s 3 2min\n"
    "msg 90s 2 00000000000000cc\n"
    "churn 2min 5 3min\n"
    "msg 3min 4 00000000000000dd\n"
    "fault 4min 1 2 2min\n"
    "msg 5min 6 00000000000000ee\n"
    "msg 7min 7 00000000000000ff\n"
    "msg 8min 8 0000000000000011\n"
    "end 11\n";

DaemonOptions test_options(std::string checkpoint_dir) {
    DaemonOptions opts;
    opts.checkpoint_dir = std::move(checkpoint_dir);
    opts.checkpoint_every = 2 * kMinute;
    opts.tick = 30 * kSecond;
    opts.settle = 2 * kMinute;
    return opts;
}

/// A fresh, empty scratch directory under the system temp dir.
fs::path scratch_dir(const std::string& name) {
    const fs::path dir =
        fs::temp_directory_path() / "concilium_daemon_test" / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

Checkpoint sample_checkpoint() {
    Checkpoint ck;
    ck.trace_fnv = 0x1234abcd5678ef00ull;
    ck.sim_clock = 5 * kMinute;
    ck.tick = 30 * kSecond;
    ck.checkpoint_every = 2 * kMinute;
    ck.messages_fed = 42;
    ck.checkpoints_written = 2;
    ck.stats = {{"messages_sent", 42}, {"messages_delivered", 40},
                {"accusations", 1}};
    ck.journals = {{7, 0xdeadbeefull}, {0, kFnvOffset}, {3, 0x42ull}};
    return ck;
}

TEST(Checkpoint, TextRoundTripPreservesEveryField) {
    const Checkpoint ck = sample_checkpoint();
    const std::string text = ck.to_text();
    const Checkpoint back = Checkpoint::parse(text, "mem");

    EXPECT_EQ(back.trace_fnv, ck.trace_fnv);
    EXPECT_EQ(back.sim_clock, ck.sim_clock);
    EXPECT_EQ(back.tick, ck.tick);
    EXPECT_EQ(back.checkpoint_every, ck.checkpoint_every);
    EXPECT_EQ(back.messages_fed, ck.messages_fed);
    EXPECT_EQ(back.checkpoints_written, ck.checkpoints_written);
    ASSERT_EQ(back.stats.size(), ck.stats.size());
    for (std::size_t i = 0; i < ck.stats.size(); ++i) {
        EXPECT_EQ(back.stats[i], ck.stats[i]) << "stat " << i;
    }
    ASSERT_EQ(back.journals.size(), ck.journals.size());
    for (std::size_t i = 0; i < ck.journals.size(); ++i) {
        EXPECT_EQ(back.journals[i].entries, ck.journals[i].entries);
        EXPECT_EQ(back.journals[i].fnv, ck.journals[i].fnv);
    }
    // Identity: re-serialization is byte-stable, the property cmp(1) and
    // resume verification both lean on.
    EXPECT_EQ(back.to_text(), text);
}

TEST(Checkpoint, RejectsTamperedBytes) {
    std::string text = sample_checkpoint().to_text();
    // Nudge one stat value; the trailing self-digest no longer matches.
    const auto pos = text.find("messages_delivered 40");
    ASSERT_NE(pos, std::string::npos);
    text[pos + std::string("messages_delivered 4").size()] = '1';
    try {
        (void)Checkpoint::parse(text, "mem");
        FAIL() << "parse accepted a tampered checkpoint";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("digest"), std::string::npos)
            << "error was: " << e.what();
    }
}

TEST(Checkpoint, RejectsTruncation) {
    const std::string text = sample_checkpoint().to_text();
    // Drop the final "end\n" -- the torn-write shape rename() prevents but
    // the parser must still detect.
    EXPECT_THROW(
        (void)Checkpoint::parse(text.substr(0, text.size() - 4), "mem"),
        std::invalid_argument);
    EXPECT_THROW((void)Checkpoint::parse("", "mem"), std::invalid_argument);
}

TEST(Checkpoint, LatestCheckpointFilePicksTheHighestClock) {
    const fs::path dir = scratch_dir("latest");
    EXPECT_EQ(latest_checkpoint_file(dir.string()), "");

    Checkpoint early = sample_checkpoint();
    early.sim_clock = 2 * kMinute;
    Checkpoint late = sample_checkpoint();
    late.sim_clock = 8 * kMinute;
    const auto name = [&](const Checkpoint& ck) {
        return (dir / ("checkpoint-" + std::to_string(ck.sim_clock) +
                       ".ckpt"))
            .string();
    };
    write_atomic(name(early), early.to_text());
    write_atomic(name(late), late.to_text());
    // An unrelated file must not confuse the scan.
    write_atomic((dir / "notes.txt").string(), "not a checkpoint\n");

    EXPECT_EQ(latest_checkpoint_file(dir.string()), name(late));
    fs::remove_all(dir.parent_path());
}

// The tentpole contract: SIGKILL-shaped interruption (stop mid-run, start
// a fresh Daemon on the same directory) ends in exactly the bytes of an
// uninterrupted run, and the replay rewrites the cadence checkpoints it
// passes byte-identically.
TEST(DaemonResume, StoppedAndResumedRunMatchesUninterruptedByteForByte) {
    const fs::path ref_dir = scratch_dir("ref");
    const fs::path cut_dir = scratch_dir("cut");

    // Reference: one uninterrupted run.
    std::string ref_state;
    {
        Daemon ref(Workload::parse(kTrace, "test"),
                   test_options(ref_dir.string()));
        ASSERT_TRUE(ref.run());
        ref_state = ref.state_text();
        EXPECT_GT(ref.score().fed, 0u);
    }

    // Interrupted: stop the run once its sim clock passes 4 minutes.  The
    // stopper watches health_text() (the documented thread-safe view) and
    // the run paces 2ms per tick, so the flag lands mid-run, at some tick
    // boundary past the threshold.
    {
        Daemon victim(Workload::parse(kTrace, "test"),
                      test_options(cut_dir.string()));
        std::atomic<bool> stop{false};
        std::thread stopper([&] {
            while (!stop.load()) {
                const std::string health = victim.health_text();
                const auto pos = health.find("sim-clock-us ");
                if (pos != std::string::npos &&
                    std::stoll(health.substr(
                        pos + std::string("sim-clock-us ").size())) >=
                        4 * kMinute) {
                    stop.store(true);
                }
                std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
        });
        const bool finished = victim.run(&stop, /*pace_ms=*/2);
        stop.store(true);  // unblock the stopper on the finished path
        stopper.join();
        ASSERT_FALSE(finished) << "stop flag never landed mid-run";
        EXPECT_FALSE(latest_checkpoint_file(cut_dir.string()).empty());
    }

    // Resumed: a fresh Daemon on the same directory replays, verifies
    // against the loaded checkpoint, and runs to completion.
    {
        Daemon resumed(Workload::parse(kTrace, "test"),
                       test_options(cut_dir.string()));
        EXPECT_TRUE(resumed.resumed());
        ASSERT_TRUE(resumed.run());
        EXPECT_FALSE(resumed.resumed());  // verification consumed the target
        EXPECT_EQ(resumed.state_text(), ref_state);
    }

    // Every cadence checkpoint of the reference run exists in the resumed
    // directory with identical bytes (the off-cadence stop checkpoint is
    // extra, and ignored here).
    std::size_t compared = 0;
    for (const auto& entry : fs::directory_iterator(ref_dir)) {
        const fs::path twin = cut_dir / entry.path().filename();
        ASSERT_TRUE(fs::exists(twin)) << twin;
        EXPECT_EQ(slurp(entry.path()), slurp(twin)) << twin;
        ++compared;
    }
    EXPECT_GT(compared, 0u);
    fs::remove_all(ref_dir.parent_path());
}

TEST(DaemonResume, RefusesGeometryAndTraceMismatches) {
    const fs::path dir = scratch_dir("mismatch");

    // Leave a checkpoint behind by stopping right after the first cadence
    // point: run un-paced with a stop flag armed from the start is not
    // enough (it checkpoints at clock 0, which resume ignores), so run to
    // completion instead -- the final cadence checkpoint is on disk.
    {
        Daemon d(Workload::parse(kTrace, "test"),
                 test_options(dir.string()));
        ASSERT_TRUE(d.run());
    }
    ASSERT_FALSE(latest_checkpoint_file(dir.string()).empty());

    // Same trace, different tick: refused.
    {
        DaemonOptions opts = test_options(dir.string());
        opts.tick = 1 * kMinute;
        EXPECT_THROW(Daemon(Workload::parse(kTrace, "test"), opts),
                     std::invalid_argument);
    }
    // Same trace, different cadence: refused.
    {
        DaemonOptions opts = test_options(dir.string());
        opts.checkpoint_every = 5 * kMinute;
        EXPECT_THROW(Daemon(Workload::parse(kTrace, "test"), opts),
                     std::invalid_argument);
    }
    // Edited trace bytes (one destination key changed): refused.
    {
        std::string edited = kTrace;
        const auto pos = edited.find("00000000000000aa");
        ASSERT_NE(pos, std::string::npos);
        edited[pos + 15] = 'b';
        EXPECT_THROW(Daemon(Workload::parse(edited, "test"),
                            test_options(dir.string())),
                     std::invalid_argument);
    }
    fs::remove_all(dir.parent_path());
}

}  // namespace
}  // namespace concilium::daemon
