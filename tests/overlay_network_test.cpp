#include <gtest/gtest.h>

#include <unordered_set>

#include "overlay/advertisement.h"
#include "overlay/network.h"
#include "test_helpers.h"
#include "util/rng.h"
#include "util/stats.h"

namespace concilium::overlay {
namespace {

class OverlayNetworkTest : public ::testing::Test {
  protected:
    OverlayNetworkTest() : net_(concilium::testing::make_overlay(200)) {}
    OverlayNetwork net_;
};

TEST_F(OverlayNetworkTest, MembersIndexable) {
    EXPECT_EQ(net_.size(), 200u);
    for (MemberIndex i = 0; i < net_.size(); ++i) {
        const auto idx = net_.index_of(net_.member(i).id());
        ASSERT_TRUE(idx.has_value());
        EXPECT_EQ(*idx, i);
    }
    EXPECT_FALSE(net_.index_of(util::NodeId::from_hex("00")).has_value());
}

TEST_F(OverlayNetworkTest, LeafSetsAreNearestNeighbors) {
    // For every member, its successors must be the nodes with the smallest
    // clockwise distances among all members.
    for (MemberIndex i = 0; i < 20; ++i) {
        const auto& self = net_.member(i).id();
        const auto succ = net_.leaf_set(i).successors();
        ASSERT_EQ(succ.size(), 8u);
        // Successor 0 must be the global clockwise-nearest member.
        util::NodeId best_dist = util::clockwise_distance(
            self, net_.member(succ[0]).id());
        for (MemberIndex j = 0; j < net_.size(); ++j) {
            if (j == i) continue;
            const auto d =
                util::clockwise_distance(self, net_.member(j).id());
            EXPECT_FALSE(d < best_dist)
                << "member " << j << " is closer than leaf successor";
        }
    }
}

TEST_F(OverlayNetworkTest, SecureTableEntriesSatisfyConstraints) {
    for (MemberIndex i = 0; i < net_.size(); ++i) {
        const JumpTable& table = net_.secure_table(i);
        for (const JumpTable::Entry& e : table.entries()) {
            const auto& peer = net_.member(e.member).id();
            EXPECT_TRUE(
                table.satisfies_standard_constraint(e.row, e.col, peer))
                << "member " << i << " slot (" << e.row << "," << e.col << ")";
        }
    }
}

TEST_F(OverlayNetworkTest, SecureEntryIsClosestToConstraintPoint) {
    // Spot-check: the chosen entry must be at least as close to p as any
    // other qualifying member (Castro's constrained table).
    for (MemberIndex i = 0; i < 10; ++i) {
        const JumpTable& table = net_.secure_table(i);
        for (const JumpTable::Entry& e : table.entries()) {
            const util::NodeId p = table.constraint_point(e.row, e.col);
            const util::NodeId chosen_dist =
                net_.member(e.member).id().ring_distance(p);
            for (MemberIndex j = 0; j < net_.size(); ++j) {
                if (j == i) continue;
                if (!table.satisfies_standard_constraint(
                        e.row, e.col, net_.member(j).id())) {
                    continue;
                }
                const auto d = net_.member(j).id().ring_distance(p);
                EXPECT_FALSE(d < chosen_dist)
                    << "slot (" << e.row << "," << e.col << ") of member "
                    << i;
            }
        }
    }
}

TEST_F(OverlayNetworkTest, StandardTableFilledWhereSecureIs) {
    // The unconstrained table draws from a superset of candidates, so every
    // occupied secure slot must be occupied in the standard table too.
    for (MemberIndex i = 0; i < net_.size(); ++i) {
        for (const JumpTable::Entry& e : net_.secure_table(i).entries()) {
            EXPECT_TRUE(net_.standard_table(i).slot(e.row, e.col).has_value());
        }
    }
}

TEST_F(OverlayNetworkTest, RoutingPeersAreDeduplicated) {
    for (MemberIndex i = 0; i < net_.size(); ++i) {
        const auto& peers = net_.routing_peers(i);
        std::unordered_set<MemberIndex> set(peers.begin(), peers.end());
        EXPECT_EQ(set.size(), peers.size());
        EXPECT_FALSE(set.contains(i));
        EXPECT_GE(peers.size(), 16u);  // at least the leaf set
    }
}

TEST_F(OverlayNetworkTest, RootOfIsNearestMember) {
    util::Rng rng(9);
    for (int trial = 0; trial < 50; ++trial) {
        const util::NodeId key = util::NodeId::random(rng);
        const MemberIndex root = net_.root_of(key);
        const auto root_dist = net_.member(root).id().ring_distance(key);
        for (MemberIndex j = 0; j < net_.size(); ++j) {
            EXPECT_FALSE(net_.member(j).id().ring_distance(key) < root_dist);
        }
    }
}

TEST_F(OverlayNetworkTest, RoutesConvergeAndMakePrefixProgress) {
    util::Rng rng(10);
    for (int trial = 0; trial < 100; ++trial) {
        const util::NodeId key = util::NodeId::random(rng);
        const auto start = static_cast<MemberIndex>(
            rng.uniform_index(net_.size()));
        const auto route = net_.route(start, key);
        ASSERT_FALSE(route.empty());
        EXPECT_EQ(route.front(), start);
        EXPECT_EQ(route.back(), net_.root_of(key));
        // Pastry bound: O(log N) hops; generous cap for n=200.
        EXPECT_LE(route.size(), 8u);
        // No node repeats.
        std::unordered_set<MemberIndex> seen(route.begin(), route.end());
        EXPECT_EQ(seen.size(), route.size());
    }
}

TEST_F(OverlayNetworkTest, RouteToOwnIdIsTrivial) {
    const auto route = net_.route(5, net_.member(5).id());
    ASSERT_EQ(route.size(), 1u);
    EXPECT_EQ(route.front(), 5u);
}

TEST_F(OverlayNetworkTest, NextHopUsesJumpTableSlot) {
    util::Rng rng(11);
    for (int trial = 0; trial < 30; ++trial) {
        const util::NodeId key = util::NodeId::random(rng);
        const auto start = static_cast<MemberIndex>(
            rng.uniform_index(net_.size()));
        if (net_.root_of(key) == start) continue;
        const auto hop = net_.next_hop(start, key);
        ASSERT_TRUE(hop.has_value());
        const auto& self = net_.member(start).id();
        const auto& next = net_.member(*hop).id();
        // The next hop either gains prefix digits or closes ring distance.
        const bool prefix_progress =
            next.shared_prefix_digits(key) > self.shared_prefix_digits(key);
        const bool distance_progress =
            next.ring_distance(key) < self.ring_distance(key);
        EXPECT_TRUE(prefix_progress || distance_progress);
    }
}

TEST_F(OverlayNetworkTest, PopulationEstimateIsSane) {
    util::OnlineMoments estimates;
    for (MemberIndex i = 0; i < net_.size(); ++i) {
        estimates.add(net_.estimate_population(i));
    }
    // The mean estimate should be within a factor ~2 of the truth.
    EXPECT_GT(estimates.mean(), 100.0);
    EXPECT_LT(estimates.mean(), 420.0);
}

TEST(OverlayNetworkConstruction, RejectsEmptyAndDuplicates) {
    util::Rng rng(1);
    EXPECT_THROW(OverlayNetwork({}, OverlayParams{}, rng),
                 std::invalid_argument);

    crypto::CertificateAuthority ca(5);
    auto members = concilium::testing::make_members(ca, 2);
    members[1].certificate.node_id = members[0].certificate.node_id;
    EXPECT_THROW(OverlayNetwork(std::move(members), OverlayParams{}, rng),
                 std::invalid_argument);
}

TEST(OverlayNetworkConstruction, TinyOverlayWorks) {
    const auto net = concilium::testing::make_overlay(3);
    EXPECT_EQ(net.size(), 3u);
    for (MemberIndex i = 0; i < 3; ++i) {
        EXPECT_LE(net.leaf_set(i).successors().size(), 2u);
        const auto route = net.route(i, net.member((i + 1) % 3).id());
        EXPECT_EQ(route.back(), (i + 1) % 3);
    }
}

TEST(Advertisement, CarriesSecureTableWithFreshTimestamps) {
    const auto net = concilium::testing::make_overlay(100, 7);
    const util::SimTime now = 10 * util::kMinute;
    const auto ad = make_advertisement(net, 3, now, [&](MemberIndex) {
        return now - 30 * util::kSecond;
    });
    EXPECT_EQ(ad.owner, net.member(3).id());
    EXPECT_EQ(ad.entries.size(),
              static_cast<std::size_t>(net.secure_table(3).occupancy()));
    for (const AdvertisedEntry& e : ad.entries) {
        EXPECT_EQ(e.freshness.signer, e.peer);
        EXPECT_EQ(e.freshness.at, now - 30 * util::kSecond);
    }
    EXPECT_NEAR(ad.density(net.params().geometry),
                net.secure_table(3).density(), 1e-12);
    // Wire size: 144 bytes per entry plus envelope.
    EXPECT_GE(ad.wire_bytes(), ad.entries.size() * 144);
}

}  // namespace
}  // namespace concilium::overlay
