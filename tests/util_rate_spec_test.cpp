// The shared "kind:rate" spec parser (util/rate_spec.h): rejection
// semantics and canonical formatting, tested once against a synthetic
// vocabulary.  net::FaultSpec and runtime::AttackCampaign both delegate
// here, so their own tests only need to cover kind wiring.

#include "util/rate_spec.h"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <string>

namespace concilium::util {
namespace {

constexpr std::array<RateSpecKind, 3> kKinds = {{
    {0, "alpha"},
    {1, "beta"},
    {2, "gamma"},
}};

std::array<double, 3> parse(std::string_view text) {
    std::array<double, 3> rates = {};
    parse_rate_spec(text, "--test", "thing", kKinds, rates);
    return rates;
}

/// The diagnostic text of the std::invalid_argument `fn` throws.
template <typename Fn>
std::string thrown_what(Fn&& fn) {
    try {
        fn();
    } catch (const std::invalid_argument& e) {
        return e.what();
    }
    ADD_FAILURE() << "expected std::invalid_argument";
    return "";
}

TEST(RateSpec, EmptyStringLeavesEveryRateUntouched) {
    std::array<double, 3> rates = {0.5, 0.25, 0.125};
    parse_rate_spec("", "--test", "thing", kKinds, rates);
    EXPECT_DOUBLE_EQ(rates[0], 0.5);
    EXPECT_DOUBLE_EQ(rates[1], 0.25);
    EXPECT_DOUBLE_EQ(rates[2], 0.125);
}

TEST(RateSpec, ParsesIntoNamedSlots) {
    const auto rates = parse("gamma:0.75,alpha:0.5");
    EXPECT_DOUBLE_EQ(rates[0], 0.5);
    EXPECT_DOUBLE_EQ(rates[1], 0.0);  // beta not named: untouched
    EXPECT_DOUBLE_EQ(rates[2], 0.75);
}

TEST(RateSpec, DiagnosticsCarryOptionPrefixAndToken) {
    // Every rejection names the option (so a bench's --chaos error reads
    // differently from its --attack error) and the offending token.
    EXPECT_NE(thrown_what([] { parse("alpha"); })
                  .find("--test: expected 'kind:rate', got 'alpha'"),
              std::string::npos);
    EXPECT_NE(thrown_what([] { parse("delta:0.1"); })
                  .find("unknown thing kind 'delta'"),
              std::string::npos);
    // The unknown-kind message lists the vocabulary.
    EXPECT_NE(thrown_what([] { parse("delta:0.1"); }).find("alpha"),
              std::string::npos);
    EXPECT_NE(thrown_what([] { parse("alpha:0.1,alpha:0.2"); })
                  .find("thing 'alpha' given twice"),
              std::string::npos);
    EXPECT_NE(thrown_what([] { parse("alpha:"); })
                  .find("thing 'alpha' has an empty rate"),
              std::string::npos);
    EXPECT_NE(thrown_what([] { parse("alpha:0.1q"); })
                  .find("malformed rate '0.1q'"),
              std::string::npos);
    EXPECT_NE(thrown_what([] { parse("alpha:2"); })
                  .find("outside [0, 1]"),
              std::string::npos);
    EXPECT_NE(thrown_what([] { parse("alpha:0.1,"); })
                  .find("trailing ','"),
              std::string::npos);
}

TEST(RateSpec, RejectsNonFiniteRates) {
    EXPECT_THROW(parse("alpha:nan"), std::invalid_argument);
    EXPECT_THROW(parse("alpha:inf"), std::invalid_argument);
    EXPECT_THROW(parse("alpha:-inf"), std::invalid_argument);
}

TEST(RateSpec, CheckRateBoundsRejectsNaN) {
    EXPECT_NO_THROW(check_rate_bounds("--test", 0.0));
    EXPECT_NO_THROW(check_rate_bounds("--test", 1.0));
    EXPECT_THROW(check_rate_bounds("--test", 1.0000001),
                 std::invalid_argument);
    EXPECT_THROW(check_rate_bounds("--test", -0.0000001),
                 std::invalid_argument);
    const double nan = std::stod("nan");
    EXPECT_THROW(check_rate_bounds("--test", nan), std::invalid_argument);
}

TEST(RateSpec, FormatEmitsTableOrderAndRoundTrips) {
    const std::array<double, 3> rates = {0.0, 0.25, 0.5};
    const std::string text = format_rate_spec(kKinds, rates);
    // alpha's zero rate is omitted; the rest appear in table order.
    EXPECT_EQ(text, "beta:0.25,gamma:0.5");
    EXPECT_EQ(parse(text), rates);
    const std::array<double, 3> empty = {};
    EXPECT_EQ(format_rate_spec(kKinds, empty), "");
}

}  // namespace
}  // namespace concilium::util
