// util::FaultFs: the deterministic storage-fault seam (util/faultfs.h).
//
// The seam's contract has three load-bearing parts: the passthrough mode is
// byte-transparent real I/O, loud faults throw naming path/op/site, and
// silent faults corrupt the artifact in exactly the promised shape while
// claiming success.  Determinism is the meta-contract -- the same spec,
// seed, and operation sequence must produce the same fault schedule.

#include "util/faultfs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace concilium::util {
namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const char* name) {
    const fs::path dir = fs::temp_directory_path() /
                         (std::string("concilium_faultfs_") + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

/// The full atomic-write sequence through the seam, checkpoint.cpp style.
void write_through(FaultFs& f, const std::string& dir,
                   const std::string& name, const std::string& text) {
    const std::string path = dir + "/" + name;
    const std::string tmp = path + ".tmp";
    const int fd = f.open_trunc(tmp);
    f.write_all(fd, text, tmp);
    f.fsync_fd(fd, tmp);
    f.close_fd(fd);
    f.rename_file(tmp, path);
    f.fsync_dir(dir);
}

TEST(IoFaultSpec, ParsesAndFormatsTheFullGrammar) {
    const IoFaultSpec spec = IoFaultSpec::parse(
        "eio:0.01,short:0.01,torn_rename:0.005,bitrot:0.001,enospc:0.002",
        42);
    EXPECT_DOUBLE_EQ(spec.rates[static_cast<std::size_t>(IoFaultKind::kEio)],
                     0.01);
    EXPECT_DOUBLE_EQ(
        spec.rates[static_cast<std::size_t>(IoFaultKind::kBitrot)], 0.001);
    EXPECT_EQ(spec.seed, 42u);
    EXPECT_TRUE(spec.any());
    // format() is canonical and parse() round-trips it.
    const IoFaultSpec again = IoFaultSpec::parse(spec.format(), 42);
    EXPECT_EQ(again.format(), spec.format());
}

TEST(IoFaultSpec, EmptySpecIsInert) {
    const IoFaultSpec spec = IoFaultSpec::parse("", 0);
    EXPECT_FALSE(spec.any());
    EXPECT_EQ(spec.format(), "");
}

TEST(IoFaultSpec, RejectsUnknownKindsAndMalformedRates) {
    EXPECT_THROW((void)IoFaultSpec::parse("diskfire:0.5", 0),
                 std::invalid_argument);
    EXPECT_THROW((void)IoFaultSpec::parse("eio:nope", 0),
                 std::invalid_argument);
    EXPECT_THROW((void)IoFaultSpec::parse("eio:2.0", 0),
                 std::invalid_argument);
    // crash is one-shot-only by design: a rate-driven process exit is not
    // a reproducible experiment.
    EXPECT_THROW((void)IoFaultSpec::parse("crash:0.5", 0),
                 std::invalid_argument);
}

TEST(ParseOneShotFault, AcceptsEveryKindAndRejectsJunk) {
    const auto [site, kind] = parse_one_shot_fault("17:bitrot");
    EXPECT_EQ(site, 17u);
    EXPECT_EQ(kind, IoFaultKind::kBitrot);
    EXPECT_EQ(parse_one_shot_fault("0:crash").second, IoFaultKind::kCrash);
    EXPECT_THROW((void)parse_one_shot_fault("17"), std::invalid_argument);
    EXPECT_THROW((void)parse_one_shot_fault(":eio"), std::invalid_argument);
    EXPECT_THROW((void)parse_one_shot_fault("x:eio"), std::invalid_argument);
    EXPECT_THROW((void)parse_one_shot_fault("3:diskfire"),
                 std::invalid_argument);
}

TEST(FaultFs, PassthroughRoundTripsBytesAndCountsSites) {
    const std::string dir = scratch_dir("passthrough");
    FaultFs f;
    const std::string text = "line one\nline two\n";
    write_through(f, dir, "a.txt", text);
    // open, write, fsync, rename, dir-fsync = 5 sites; read is the 6th.
    EXPECT_EQ(f.ops(), 5u);
    EXPECT_EQ(f.read_file(dir + "/a.txt"), text);
    EXPECT_EQ(f.ops(), 6u);
    EXPECT_EQ(f.injected(), 0u);
    EXPECT_FALSE(fs::exists(dir + "/a.txt.tmp"));
}

TEST(FaultFs, OneShotEioThrowsNamingPathOpAndSite) {
    const std::string dir = scratch_dir("oneshot_eio");
    for (std::uint64_t site = 0; site < 5; ++site) {
        FaultFs f;
        f.arm_one_shot(site, IoFaultKind::kEio);
        try {
            write_through(f, dir, "a.txt", "payload\n");
            FAIL() << "site " << site << " did not throw";
        } catch (const std::runtime_error& e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("injected EIO"), std::string::npos) << what;
            EXPECT_NE(what.find("[io fault site " + std::to_string(site)),
                      std::string::npos)
                << what;
        }
        EXPECT_EQ(f.injected(), 1u);
    }
}

TEST(FaultFs, OneShotEnospcNamesEnospc) {
    const std::string dir = scratch_dir("oneshot_enospc");
    FaultFs f;
    f.arm_one_shot(1, IoFaultKind::kEnospc);  // the write site
    try {
        write_through(f, dir, "a.txt", "payload\n");
        FAIL() << "did not throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("injected ENOSPC"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FaultFs, ShortWritePersistsAPrefixAndClaimsSuccess) {
    const std::string dir = scratch_dir("short");
    FaultFs f;
    f.arm_one_shot(1, IoFaultKind::kShortWrite);
    const std::string text(1000, 'x');
    write_through(f, dir, "a.txt", text);  // must NOT throw
    EXPECT_EQ(f.injected(), 1u);
    const std::string got = slurp(dir + "/a.txt");
    EXPECT_LT(got.size(), text.size());
    EXPECT_EQ(got, text.substr(0, got.size()));
}

TEST(FaultFs, TornRenameLeavesTruncatedDestinationAndNoSource) {
    const std::string dir = scratch_dir("torn");
    FaultFs f;
    f.arm_one_shot(3, IoFaultKind::kTornRename);  // the rename site
    const std::string text(1000, 'y');
    write_through(f, dir, "a.txt", text);  // must NOT throw
    EXPECT_FALSE(fs::exists(dir + "/a.txt.tmp"));
    const std::string got = slurp(dir + "/a.txt");
    EXPECT_LT(got.size(), text.size());
    EXPECT_EQ(got, text.substr(0, got.size()));
}

TEST(FaultFs, BitrotFlipsExactlyOneBit) {
    const std::string dir = scratch_dir("bitrot");
    FaultFs f;
    f.arm_one_shot(3, IoFaultKind::kBitrot);
    const std::string text(512, 'z');
    write_through(f, dir, "a.txt", text);  // must NOT throw
    const std::string got = slurp(dir + "/a.txt");
    ASSERT_EQ(got.size(), text.size());
    int bits_flipped = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        unsigned diff = static_cast<unsigned char>(got[i]) ^
                        static_cast<unsigned char>(text[i]);
        while (diff != 0) {
            bits_flipped += static_cast<int>(diff & 1u);
            diff >>= 1;
        }
    }
    EXPECT_EQ(bits_flipped, 1);
}

TEST(FaultFs, RateScheduleIsReproducibleAndSeedSensitive) {
    const auto schedule = [](std::uint64_t seed) {
        const std::string dir = scratch_dir("sched");
        IoFaultSpec spec = IoFaultSpec::parse("eio:0.3", seed);
        FaultFs f(spec);
        std::string fired;
        for (int i = 0; i < 64; ++i) {
            try {
                const int fd = f.open_trunc(dir + "/s.tmp");
                f.close_fd(fd);
                fired += '.';
            } catch (const std::runtime_error&) {
                fired += 'X';
            }
        }
        return fired;
    };
    const std::string a = schedule(7);
    EXPECT_EQ(a, schedule(7));   // byte-reproducible
    EXPECT_NE(a, schedule(8));   // and actually seed-driven
    EXPECT_NE(a.find('X'), std::string::npos);
    EXPECT_NE(a.find('.'), std::string::npos);
}

TEST(FaultFs, OneShotFiresOnlyAtApplicableSites) {
    // Arm bitrot at a write site: writes cannot bitrot, so nothing fires
    // anywhere and the file is intact.
    const std::string dir = scratch_dir("inapplicable");
    FaultFs f;
    f.arm_one_shot(1, IoFaultKind::kBitrot);
    write_through(f, dir, "a.txt", "payload\n");
    EXPECT_EQ(f.injected(), 0u);
    EXPECT_EQ(slurp(dir + "/a.txt"), "payload\n");
}

TEST(FaultFs, RateFaultsSpareReadSitesButOneShotDoesNot) {
    const std::string dir = scratch_dir("read_exempt");
    {
        // Rate mode is a write-path failure model: even at eio:1 a read
        // goes through (or the trace load would abort every degraded run
        // at startup), while the write path fails every time.
        FaultFs clean;
        write_through(clean, dir, "a.txt", "payload\n");
        FaultFs f(IoFaultSpec::parse("eio:1", 5));
        EXPECT_EQ(f.read_file(dir + "/a.txt"), "payload\n");
        EXPECT_THROW((void)f.open_trunc(dir + "/b.txt"),
                     std::runtime_error);
    }
    {
        // One-shot still reaches reads: the sweep needs every site
        // addressable.
        FaultFs f;
        f.arm_one_shot(0, IoFaultKind::kEio);
        EXPECT_THROW((void)f.read_file(dir + "/a.txt"), std::runtime_error);
    }
}

TEST(FaultFs, RealIoErrorsStillSurface) {
    FaultFs f;
    EXPECT_THROW((void)f.read_file("/nonexistent/concilium/nope.txt"),
                 std::runtime_error);
    EXPECT_THROW((void)f.open_trunc("/nonexistent/concilium/nope.txt"),
                 std::runtime_error);
}

}  // namespace
}  // namespace concilium::util
