// Unit tests for the causal span recorder and its Chrome trace export.
//
// The Recorder is a process singleton, so every test arms it, clears the
// rings, tags its own events with distinctive causal ids, and disarms on
// the way out; filtering by causal keeps the assertions valid even when
// several tests share one process.

#include "util/spans.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace concilium::util::spans {
namespace {

std::vector<Event> events_with_causal(std::uint64_t lo, std::uint64_t hi) {
    std::vector<Event> out;
    for (const Event& e : Recorder::global().collect()) {
        if (e.causal >= lo && e.causal < hi) out.push_back(e);
    }
    return out;
}

class SpansTest : public ::testing::Test {
  protected:
    void SetUp() override {
        Recorder::global().enable();
        Recorder::global().clear();
    }
    void TearDown() override {
        Recorder::global().clear();
        Recorder::global().enable(Recorder::kDefaultCapacity);
        Recorder::global().disable();
    }
};

TEST(SpanName, EveryTypeHasAUniqueLowercaseName) {
    std::vector<std::string> names;
    for (int t = 0; t < static_cast<int>(SpanType::kCount); ++t) {
        const std::string name = span_name(static_cast<SpanType>(t));
        EXPECT_NE(name, "unknown") << "type " << t;
        for (const char c : name) {
            EXPECT_TRUE((c >= 'a' && c <= 'z') || c == '_')
                << "type " << t << " name " << name;
        }
        for (const auto& prev : names) EXPECT_NE(name, prev);
        names.push_back(name);
    }
    EXPECT_STREQ(span_name(SpanType::kCount), "unknown");
}

TEST_F(SpansTest, DisabledRecorderIsANoOp) {
    Recorder::global().disable();
    sim_span(SpanType::kDiagnosis, 10, 20, 9001);
    { const WallSpan span(SpanType::kWorldBuild, 9002); }
    { const TrialScope scope(77); sim_instant(SpanType::kJudgment, 5, 9003); }
    Recorder::global().enable();
    EXPECT_TRUE(events_with_causal(9000, 9100).empty());
}

TEST_F(SpansTest, SimSpanStampsMonotonicSeq) {
    sim_span(SpanType::kProbeRound, 100, 200, 9101, 4);
    sim_instant(SpanType::kJudgment, 200, 9102);
    const auto events = events_with_causal(9100, 9200);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].type, SpanType::kProbeRound);
    EXPECT_EQ(events[0].sim_begin, 100);
    EXPECT_EQ(events[0].sim_end, 200);
    EXPECT_EQ(events[0].arg, 4);
    EXPECT_EQ(events[0].wall_begin, kNoClock);  // sim-only event
    EXPECT_EQ(events[1].sim_begin, events[1].sim_end);
    EXPECT_EQ(events[1].seq, events[0].seq + 1);
    EXPECT_EQ(events[0].scope, events[1].scope);
}

TEST_F(SpansTest, TrialScopeTagsAndRestoresOnNesting) {
    constexpr std::uint64_t kOuter = (7ull << 32) | 1;
    constexpr std::uint64_t kInner = (7ull << 32) | 2;
    {
        const TrialScope outer(kOuter);
        sim_instant(SpanType::kDiagnosis, 1, 9201);
        sim_instant(SpanType::kDiagnosis, 2, 9202);
        {
            const TrialScope inner(kInner);
            sim_instant(SpanType::kDiagnosis, 3, 9203);
        }
        sim_instant(SpanType::kDiagnosis, 4, 9204);
    }
    const auto events = events_with_causal(9200, 9300);
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].scope, kOuter);
    EXPECT_EQ(events[0].seq, 0u);
    EXPECT_EQ(events[1].seq, 1u);
    EXPECT_EQ(events[2].scope, kInner);
    EXPECT_EQ(events[2].seq, 0u);  // numbering restarts per scope
    EXPECT_EQ(events[3].scope, kOuter);
    EXPECT_EQ(events[3].seq, 2u);  // outer numbering resumed, not reset
}

TEST_F(SpansTest, RingOverwritesOldestFirst) {
    // Capacity applies to threads that register after enable(), so record
    // from a fresh thread; the per-thread ring floor is 16.
    Recorder::global().enable(16);
    std::thread worker([] {
        for (std::uint64_t i = 0; i < 40; ++i) {
            sim_instant(SpanType::kProbeRound, static_cast<SimTime>(i),
                        9300 + i);
        }
    });
    worker.join();
    const auto events = events_with_causal(9300, 9400);
    ASSERT_EQ(events.size(), 16u);
    for (std::uint64_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].causal, 9324 + i);  // the last 16, oldest first
    }
    EXPECT_EQ(Recorder::global().total_dropped(), 24u);
}

TEST_F(SpansTest, DualClockSpanLandsInBothSections) {
    {
        WallSpan span(SpanType::kHeavyweightSession, 9401, 24);
        span.set_sim(1000, 2000);
    }
    const auto events = events_with_causal(9400, 9500);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].sim_begin, 1000);
    EXPECT_EQ(events[0].sim_end, 2000);
    EXPECT_NE(events[0].wall_begin, kNoClock);
    EXPECT_GE(events[0].wall_end, events[0].wall_begin);

    const std::string json = to_chrome_json(events, 0);
    EXPECT_NE(json.find("\"cat\":\"sim\",\"ph\":\"X\",\"pid\":1"),
              std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"wall\",\"ph\":\"X\",\"pid\":2"),
              std::string::npos);
    EXPECT_NE(json.find("\"ts\":1000,\"dur\":1000"), std::string::npos);
}

TEST_F(SpansTest, ChromeJsonSortsSimSectionByScopeThenSeq) {
    // Record the higher scope first; the export must order by (scope, seq)
    // regardless of arrival order — that is the cross-jobs guarantee.
    {
        const TrialScope late((1ull << 32) | 9);
        sim_instant(SpanType::kDiagnosis, 50, 9502);
    }
    {
        const TrialScope early((1ull << 32) | 3);
        sim_instant(SpanType::kDiagnosis, 99, 9501);
    }
    const std::string json =
        to_chrome_json(events_with_causal(9500, 9600), 0);
    const auto pos_early = json.find("\"causal\":9501");
    const auto pos_late = json.find("\"causal\":9502");
    ASSERT_NE(pos_early, std::string::npos);
    ASSERT_NE(pos_late, std::string::npos);
    EXPECT_LT(pos_early, pos_late);
}

TEST_F(SpansTest, ChromeJsonCarriesMetadataAndDropCount) {
    sim_instant(SpanType::kMleSolve, 1, 9601);
    const std::string json = to_chrome_json(events_with_causal(9600, 9700), 3);
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\"", 0), 0u);
    EXPECT_NE(json.find("\"dropped\":3"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"mle_solve\""), std::string::npos);
}

TEST_F(SpansTest, ExportGoldenBytes) {
    // Hand-built events through the free exporter: the bytes are part of
    // the tool contract (tools/check_spans.py parses them).
    Event sim_only;
    sim_only.type = SpanType::kProbeRound;
    sim_only.sim_begin = 10;
    sim_only.sim_end = 30;
    sim_only.scope = 5;
    sim_only.seq = 2;
    sim_only.causal = 8;
    sim_only.arg = 4;
    Event wall_only;
    wall_only.type = SpanType::kWorldBuild;
    wall_only.wall_begin = 1500;  // ns -> 1.5 us in the export
    wall_only.wall_end = 4500;
    wall_only.thread = 1;
    const std::string expected =
        "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
        "\"tool\":\"concilium util::spans\",\"dropped\":7},\"traceEvents\":[\n"
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"sim clock (deterministic)\"}},\n"
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
        "\"args\":{\"name\":\"wall clock\"}},\n"
        "{\"name\":\"probe_round\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":0,\"ts\":10,\"dur\":20,\"args\":{\"scope\":5,\"seq\":2,"
        "\"causal\":8,\"arg\":4}},\n"
        "{\"name\":\"world_build\",\"cat\":\"wall\",\"ph\":\"X\",\"pid\":2,"
        "\"tid\":1,\"ts\":1.5,\"dur\":3,\"args\":{\"scope\":0,\"seq\":0,"
        "\"causal\":0,\"arg\":0}}\n"
        "]}\n";
    EXPECT_EQ(to_chrome_json({sim_only, wall_only}, 7), expected);
}

TEST_F(SpansTest, ClearDropsEventsButKeepsRecording) {
    sim_instant(SpanType::kJudgment, 1, 9701);
    ASSERT_FALSE(events_with_causal(9700, 9800).empty());
    Recorder::global().clear();
    EXPECT_TRUE(events_with_causal(9700, 9800).empty());
    sim_instant(SpanType::kJudgment, 2, 9702);
    ASSERT_EQ(events_with_causal(9700, 9800).size(), 1u);
}

TEST_F(SpansTest, ScopeBlocksNeverCollide) {
    const std::uint64_t a = Recorder::global().next_scope_block();
    const std::uint64_t b = Recorder::global().next_scope_block();
    EXPECT_NE(a, b);
    EXPECT_EQ(a & 0xffffffffu, 0u);  // trial index lives in the low half
    EXPECT_EQ(b & 0xffffffffu, 0u);
}

}  // namespace
}  // namespace concilium::util::spans
