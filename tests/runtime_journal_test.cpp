// Durable node state for crash recovery (runtime/journal.h): the journal
// fold, and the two signed recovery artifacts.

#include "runtime/journal.h"

#include <gtest/gtest.h>

#include "crypto/keys.h"
#include "util/time.h"

namespace concilium::runtime {
namespace {

using util::kMinute;
using util::kSecond;

const util::NodeId kPeerA = util::NodeId::from_hex("aa");
const util::NodeId kPeerB = util::NodeId::from_hex("bb");
const util::NodeId kSelf = util::NodeId::from_hex("0f");

TEST(NodeJournal, EmptyJournalRecoversTheInitialState) {
    const NodeJournal journal;
    const auto state = journal.replay(100);
    EXPECT_EQ(state.next_epoch, 1u);
    EXPECT_EQ(state.incarnations, 0u);
    EXPECT_TRUE(state.windows.empty());
    EXPECT_TRUE(state.votes.empty());
    EXPECT_TRUE(state.open_stewardships.empty());
    EXPECT_TRUE(state.collected.empty());
}

TEST(NodeJournal, EpochCheckpointIsTheHighestRecorded) {
    NodeJournal journal;
    journal.record_epoch(2);
    journal.record_epoch(3);
    journal.record_epoch(4);
    // The fold keeps the maximum, so an out-of-order replayed entry (which
    // the append-only writer never produces, but the fold must not trust)
    // cannot roll the epoch counter backwards into equivocation territory.
    journal.record_epoch(3);
    EXPECT_EQ(journal.replay(100).next_epoch, 4u);
}

TEST(NodeJournal, VerdictWindowsFoldInFirstVerdictOrderAndTrim) {
    NodeJournal journal;
    journal.record_verdict(kPeerB, true, 1 * kSecond);
    journal.record_verdict(kPeerA, false, 2 * kSecond);
    journal.record_verdict(kPeerB, false, 3 * kSecond);
    journal.record_verdict(kPeerB, true, 4 * kSecond);

    const auto state = journal.replay(100);
    ASSERT_EQ(state.windows.size(), 2u);
    EXPECT_EQ(state.windows[0].suspect, kPeerB);  // first seen first
    EXPECT_EQ(state.windows[1].suspect, kPeerA);
    ASSERT_EQ(state.windows[0].entries.size(), 3u);
    EXPECT_TRUE(state.windows[0].entries[0].guilty);
    EXPECT_FALSE(state.windows[0].entries[1].guilty);
    EXPECT_TRUE(state.windows[0].entries[2].guilty);

    // A window of 2 keeps only the newest two verdicts per suspect.
    const auto trimmed = journal.replay(2);
    ASSERT_EQ(trimmed.windows[0].entries.size(), 2u);
    EXPECT_EQ(trimmed.windows[0].entries[0].at, 3 * kSecond);
    EXPECT_EQ(trimmed.windows[0].entries[1].at, 4 * kSecond);
}

TEST(NodeJournal, RetractionEntriesClearGuiltInsideTheInterval) {
    NodeJournal journal;
    journal.record_verdict(kPeerA, true, 10 * kSecond);
    journal.record_verdict(kPeerA, true, 20 * kSecond);
    journal.record_verdict(kPeerA, true, 30 * kSecond);
    journal.record_retraction(kPeerA, 15 * kSecond, 25 * kSecond);

    const auto state = journal.replay(100);
    ASSERT_EQ(state.windows.size(), 1u);
    ASSERT_EQ(state.windows[0].entries.size(), 3u);
    EXPECT_TRUE(state.windows[0].entries[0].guilty);   // before interval
    EXPECT_FALSE(state.windows[0].entries[1].guilty);  // retracted
    EXPECT_TRUE(state.windows[0].entries[2].guilty);   // after interval
}

TEST(NodeJournal, OpenStewardshipsAreOpensWithoutACloses) {
    NodeJournal journal;
    journal.record_steward_open(7, 1, 1 * kMinute, std::nullopt);
    journal.record_steward_open(8, 0, 2 * kMinute, std::nullopt);
    journal.record_steward_open(9, 2, 3 * kMinute, std::nullopt);
    journal.record_steward_close(8, 0);

    const auto state = journal.replay(100);
    ASSERT_EQ(state.open_stewardships.size(), 2u);
    EXPECT_EQ(state.open_stewardships[0].message_id, 7u);
    EXPECT_EQ(state.open_stewardships[0].hop, 1u);
    EXPECT_EQ(state.open_stewardships[0].forwarded_at, 1 * kMinute);
    EXPECT_EQ(state.open_stewardships[1].message_id, 9u);
}

TEST(NodeJournal, StewardCommitmentSurvivesReplay) {
    const crypto::KeyPair forwarder_keys = crypto::KeyPair::from_seed(40);
    const auto commitment = core::make_forwarding_commitment(
        kSelf, kPeerA, kPeerB, 11, 5 * kSecond, forwarder_keys);

    NodeJournal journal;
    journal.record_steward_open(11, 1, 5 * kSecond, commitment);
    const auto state = journal.replay(100);
    ASSERT_EQ(state.open_stewardships.size(), 1u);
    ASSERT_TRUE(state.open_stewardships[0].commitment.has_value());
    EXPECT_EQ(state.open_stewardships[0].commitment->message_id, 11u);
    EXPECT_EQ(state.open_stewardships[0].commitment->signature,
              commitment.signature);
}

TEST(NodeJournal, IncarnationsCountRestartEntries) {
    NodeJournal journal;
    EXPECT_EQ(journal.replay(100).incarnations, 0u);
    journal.record_restart(4 * kMinute);
    journal.record_restart(9 * kMinute);
    EXPECT_EQ(journal.replay(100).incarnations, 2u);
}

TEST(NodeJournal, VotesRecoverInCastOrder) {
    NodeJournal journal;
    journal.record_vote(kPeerB, 1 * kSecond);
    journal.record_vote(kPeerA, 2 * kSecond);
    const auto state = journal.replay(100);
    ASSERT_EQ(state.votes.size(), 2u);
    EXPECT_EQ(state.votes[0].first, kPeerB);
    EXPECT_EQ(state.votes[1].first, kPeerA);
    EXPECT_EQ(state.votes[1].second, 2 * kSecond);
}

TEST(NodeJournal, ReplayIsAPureFunctionOfTheEntries) {
    NodeJournal journal;
    journal.record_epoch(5);
    journal.record_verdict(kPeerA, true, kSecond);
    journal.record_steward_open(3, 1, kMinute, std::nullopt);
    const auto once = journal.replay(100);
    const auto twice = journal.replay(100);
    EXPECT_EQ(once.next_epoch, twice.next_epoch);
    ASSERT_EQ(once.windows.size(), twice.windows.size());
    EXPECT_EQ(once.windows[0].suspect, twice.windows[0].suspect);
    EXPECT_EQ(once.open_stewardships.size(), twice.open_stewardships.size());
}

// --------------------------------------------- signed recovery artifacts

TEST(RecoveryAnnouncement, SignsAndVerifies) {
    const crypto::KeyPair keys = crypto::KeyPair::from_seed(50);
    crypto::KeyRegistry registry;
    registry.register_key(keys);

    const auto ann = make_recovery_announcement(kSelf, 1, 2 * kMinute,
                                                5 * kMinute, keys);
    EXPECT_TRUE(verify_recovery_announcement(ann, keys.public_key(),
                                             registry));
    EXPECT_EQ(ann.incarnation, 1u);
}

TEST(RecoveryAnnouncement, TamperedFieldsFailVerification) {
    const crypto::KeyPair keys = crypto::KeyPair::from_seed(51);
    crypto::KeyRegistry registry;
    registry.register_key(keys);
    const auto ann = make_recovery_announcement(kSelf, 1, 2 * kMinute,
                                                5 * kMinute, keys);

    // A node cannot stretch its announced outage to cover extra verdicts.
    RecoveryAnnouncement stretched = ann;
    stretched.crashed_at = 0;
    EXPECT_FALSE(verify_recovery_announcement(stretched, keys.public_key(),
                                              registry));
    RecoveryAnnouncement replayed = ann;
    replayed.incarnation = 2;
    EXPECT_FALSE(verify_recovery_announcement(replayed, keys.public_key(),
                                              registry));
    // Nor can another node claim the announcement as its own.
    const crypto::KeyPair other = crypto::KeyPair::from_seed(52);
    registry.register_key(other);
    EXPECT_FALSE(verify_recovery_announcement(ann, other.public_key(),
                                              registry));
}

TEST(RecoveryAnnouncement, CoversIsTheClosedOutageInterval) {
    const crypto::KeyPair keys = crypto::KeyPair::from_seed(53);
    const auto ann = make_recovery_announcement(kSelf, 1, 2 * kMinute,
                                                5 * kMinute, keys);
    EXPECT_FALSE(ann.covers(2 * kMinute - 1));
    EXPECT_TRUE(ann.covers(2 * kMinute));
    EXPECT_TRUE(ann.covers(3 * kMinute));
    EXPECT_TRUE(ann.covers(5 * kMinute));
    EXPECT_FALSE(ann.covers(5 * kMinute + 1));
}

TEST(StewardHandoff, SignsVerifiesAndRejectsTampering) {
    const crypto::KeyPair keys = crypto::KeyPair::from_seed(54);
    crypto::KeyRegistry registry;
    registry.register_key(keys);

    const auto handoff =
        make_steward_handoff(kSelf, 42, 1, 2 * kMinute, 6 * kMinute, keys);
    EXPECT_TRUE(verify_steward_handoff(handoff, keys.public_key(), registry));

    // An abandonment for message 42 cannot be replayed against message 43.
    StewardHandoff moved = handoff;
    moved.message_id = 43;
    EXPECT_FALSE(verify_steward_handoff(moved, keys.public_key(), registry));
    StewardHandoff rehopped = handoff;
    rehopped.hop = 2;
    EXPECT_FALSE(
        verify_steward_handoff(rehopped, keys.public_key(), registry));
}

}  // namespace
}  // namespace concilium::runtime
