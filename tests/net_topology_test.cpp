#include <gtest/gtest.h>

#include "net/paths.h"
#include "net/topology.h"
#include "net/topology_gen.h"
#include "util/rng.h"

namespace concilium::net {
namespace {

TEST(Topology, AddRoutersAndLinks) {
    Topology topo;
    const RouterId a = topo.add_router(RouterTier::kCore);
    const RouterId b = topo.add_router(RouterTier::kStub);
    const LinkId l = topo.add_link(a, b);
    EXPECT_EQ(topo.router_count(), 2u);
    EXPECT_EQ(topo.link_count(), 1u);
    EXPECT_EQ(topo.degree(a), 1u);
    EXPECT_EQ(topo.link(l).other(a), b);
    EXPECT_EQ(topo.link(l).other(b), a);
    EXPECT_EQ(topo.find_link(a, b), l);
    EXPECT_EQ(topo.find_link(b, a), l);
}

TEST(Topology, RejectsSelfLoopsAndDuplicates) {
    Topology topo;
    const RouterId a = topo.add_router(RouterTier::kCore);
    const RouterId b = topo.add_router(RouterTier::kCore);
    topo.add_link(a, b);
    EXPECT_THROW(topo.add_link(a, a), std::invalid_argument);
    EXPECT_THROW(topo.add_link(a, b), std::invalid_argument);
    EXPECT_THROW(topo.add_link(b, a), std::invalid_argument);
    EXPECT_THROW(topo.add_link(a, 99), std::invalid_argument);
}

TEST(Topology, EndHostsAreDegreeOne) {
    Topology topo;
    const RouterId core = topo.add_router(RouterTier::kCore);
    const RouterId stub = topo.add_router(RouterTier::kStub);
    const RouterId host = topo.add_router(RouterTier::kEndHost);
    topo.add_link(core, stub);
    topo.add_link(stub, host);
    const auto hosts = topo.end_hosts();
    ASSERT_EQ(hosts.size(), 2u);  // core also has degree 1 here
    EXPECT_EQ(hosts[0], core);
    EXPECT_EQ(hosts[1], host);
}

TEST(Topology, ConnectivityCheck) {
    Topology topo;
    const RouterId a = topo.add_router(RouterTier::kCore);
    const RouterId b = topo.add_router(RouterTier::kCore);
    const RouterId c = topo.add_router(RouterTier::kCore);
    topo.add_link(a, b);
    EXPECT_FALSE(topo.connected());
    topo.add_link(b, c);
    EXPECT_TRUE(topo.connected());
}

TEST(TopologyGen, SmallPresetIsConnectedWithRequestedHosts) {
    util::Rng rng(1);
    const TopologyParams params = small_params();
    const Topology topo = generate_topology(params, rng);
    EXPECT_TRUE(topo.connected());
    const TopologyStats stats = summarize(topo);
    EXPECT_EQ(stats.end_hosts, static_cast<std::size_t>(params.end_hosts));
    EXPECT_GT(stats.core_routers, 0u);
    EXPECT_GT(stats.stub_routers, 0u);
}

TEST(TopologyGen, EndHostsAreAllDegreeOne) {
    util::Rng rng(2);
    const Topology topo = generate_topology(small_params(), rng);
    for (RouterId r = 0; r < topo.router_count(); ++r) {
        if (topo.tier(r) == RouterTier::kEndHost) {
            EXPECT_EQ(topo.degree(r), 1u);
        }
    }
}

TEST(TopologyGen, DeterministicGivenSeed) {
    util::Rng rng1(7);
    util::Rng rng2(7);
    const Topology a = generate_topology(small_params(), rng1);
    const Topology b = generate_topology(small_params(), rng2);
    ASSERT_EQ(a.router_count(), b.router_count());
    ASSERT_EQ(a.link_count(), b.link_count());
    for (LinkId l = 0; l < a.link_count(); ++l) {
        EXPECT_EQ(a.link(l).a, b.link(l).a);
        EXPECT_EQ(a.link(l).b, b.link(l).b);
    }
}

TEST(TopologyGen, MediumPresetMatchesScanShape) {
    util::Rng rng(3);
    const Topology topo = generate_topology(medium_params(), rng);
    EXPECT_TRUE(topo.connected());
    const TopologyStats stats = summarize(topo);
    // SCAN's structural signature: link/router ratio ~1.61, end hosts a
    // ~30% minority (Section 4.2 derives 37.7k of 113k).
    EXPECT_NEAR(stats.link_router_ratio, 1.61, 0.25);
    const double host_fraction = static_cast<double>(stats.end_hosts) /
                                 static_cast<double>(stats.routers);
    EXPECT_NEAR(host_fraction, 0.33, 0.08);
}

TEST(TopologyGen, RejectsDegenerateParams) {
    util::Rng rng(4);
    TopologyParams p = small_params();
    p.transit_domains = 0;
    EXPECT_THROW(generate_topology(p, rng), std::invalid_argument);
}

TEST(PathOracle, FindsShortestPath) {
    // Line: 0 - 1 - 2 - 3 plus shortcut 0 - 3.
    Topology topo;
    for (int i = 0; i < 4; ++i) topo.add_router(RouterTier::kCore);
    topo.add_link(0, 1);
    topo.add_link(1, 2);
    topo.add_link(2, 3);
    const LinkId shortcut = topo.add_link(0, 3);

    const PathOracle oracle(topo);
    const Path p = oracle.path(0, 3);
    ASSERT_EQ(p.hops(), 1u);
    EXPECT_EQ(p.links[0], shortcut);
    EXPECT_EQ(p.routers.front(), 0u);
    EXPECT_EQ(p.routers.back(), 3u);
}

TEST(PathOracle, PathInvariants) {
    util::Rng rng(5);
    const Topology topo = generate_topology(small_params(), rng);
    const PathOracle oracle(topo);
    const auto hosts = topo.end_hosts();
    ASSERT_GE(hosts.size(), 2u);
    const Path p = oracle.path(hosts[0], hosts[1]);
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.routers.size(), p.links.size() + 1);
    for (std::size_t i = 0; i < p.links.size(); ++i) {
        const Link& l = topo.link(p.links[i]);
        EXPECT_EQ(l.other(p.routers[i]), p.routers[i + 1]);
    }
}

TEST(PathOracle, SelfPathIsEmpty) {
    Topology topo;
    topo.add_router(RouterTier::kCore);
    const PathOracle oracle(topo);
    EXPECT_TRUE(oracle.path(0, 0).empty());
}

TEST(PathOracle, UnreachableYieldsEmpty) {
    Topology topo;
    topo.add_router(RouterTier::kCore);
    topo.add_router(RouterTier::kCore);
    const PathOracle oracle(topo);
    EXPECT_TRUE(oracle.path(0, 1).empty());
}

TEST(PathOracle, PathsFromMatchesSinglePathQueries) {
    util::Rng rng(6);
    const Topology topo = generate_topology(small_params(), rng);
    const PathOracle oracle(topo);
    const auto hosts = topo.end_hosts();
    ASSERT_GE(hosts.size(), 5u);
    const std::vector<RouterId> dsts(hosts.begin() + 1, hosts.begin() + 5);
    const auto batch = oracle.paths_from(hosts[0], dsts);
    ASSERT_EQ(batch.size(), 4u);
    for (std::size_t i = 0; i < dsts.size(); ++i) {
        const Path single = oracle.path(hosts[0], dsts[i]);
        EXPECT_EQ(batch[i].links, single.links);
    }
}

TEST(PathOracle, PathsIntoMatchesPathsFrom) {
    // The arena-backed batch API is byte-for-byte the heap-backed one.
    util::Rng rng(6);
    const Topology topo = generate_topology(small_params(), rng);
    const PathOracle oracle(topo);
    const auto hosts = topo.end_hosts();
    ASSERT_GE(hosts.size(), 6u);
    std::vector<RouterId> dsts(hosts.begin() + 1, hosts.begin() + 5);
    dsts.push_back(hosts[0]);  // src itself -> empty path
    const auto heap = oracle.paths_from(hosts[0], dsts);
    util::Arena arena;
    const auto views = oracle.paths_into(hosts[0], dsts, arena);
    ASSERT_EQ(views.size(), heap.size());
    for (std::size_t i = 0; i < heap.size(); ++i) {
        EXPECT_EQ(views[i].empty(), heap[i].empty());
        EXPECT_EQ(std::vector<RouterId>(views[i].routers.begin(),
                                        views[i].routers.end()),
                  heap[i].routers);
        EXPECT_EQ(std::vector<LinkId>(views[i].links.begin(),
                                      views[i].links.end()),
                  heap[i].links);
    }
    EXPECT_TRUE(views.back().empty());
    EXPECT_GT(arena.bytes_used(), 0u);
}

TEST(PathOracle, PathsFromOneSourceFormATree) {
    // Every router reached by two paths from the same source must be reached
    // via the same parent link -- the property ProbeTree relies on.
    util::Rng rng(8);
    const Topology topo = generate_topology(small_params(), rng);
    const PathOracle oracle(topo);
    const auto hosts = topo.end_hosts();
    const std::vector<RouterId> dsts(hosts.begin() + 1, hosts.end());
    const auto paths = oracle.paths_from(hosts[0], dsts);
    std::unordered_map<RouterId, LinkId> parent;
    for (const Path& p : paths) {
        for (std::size_t i = 0; i < p.links.size(); ++i) {
            const RouterId child = p.routers[i + 1];
            const auto [it, inserted] = parent.emplace(child, p.links[i]);
            if (!inserted) EXPECT_EQ(it->second, p.links[i]);
        }
    }
}

}  // namespace
}  // namespace concilium::net
