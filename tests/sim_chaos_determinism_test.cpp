// Soak: the full chaos pipeline -- scenario-built fault plan, cluster with
// retry/backoff, per-packet effects -- must be byte-reproducible at any
// worker count.  This is the in-process version of the nightly
// `soak_chaos --jobs 1` vs `--jobs 4` artifact comparison.

#include <gtest/gtest.h>

#include <string>

#include "net/chaos.h"
#include "runtime/cluster.h"
#include "sim/experiment_driver.h"
#include "sim/scenario.h"
#include "util/metrics.h"

namespace concilium::sim {
namespace {

/// The deterministic half of the registry's JSON snapshot (everything
/// before the "timing" section).
std::string metrics_section() {
    const std::string json =
        util::metrics::Registry::global().snapshot().to_json();
    const auto cut = json.find("\"timing\"");
    return json.substr(0, cut);
}

/// A miniature soak_chaos: per-trial fault plan from the trial substream, a
/// chaos-attached cluster, a paced message workload, and a printable row.
/// Returns the concatenated rows (merged in trial order by the driver).
std::string run_soak(const Scenario& world, std::size_t jobs) {
    const ExperimentDriver driver(17, jobs);
    std::string table;
    driver.run(
        3,
        [&](std::uint64_t trial, util::Rng& rng) {
            const net::FaultSpec spec = net::FaultSpec::parse(
                "flap:0.02,churn:0.01,dup:0.05,reorder:0.05");
            auto plan_rng = rng.fork();
            const net::FaultPlan plan = net::build_fault_plan(
                spec.scaled(static_cast<double>(trial)),
                world.params().duration, world.trees().member_peer_paths(),
                world.overlay_net().size(), plan_rng);

            runtime::RuntimeParams params;
            params.forward_retry.max_attempts = 3;
            net::EventSim sim;
            runtime::Cluster cluster(sim, world.timeline(),
                                     world.overlay_net(), world.trees(),
                                     params, {}, rng.fork());
            cluster.set_chaos(&plan);
            cluster.start();
            sim.run_until(3 * util::kMinute);

            std::size_t delivered = 0;
            for (int i = 0; i < 10; ++i) {
                const auto from = static_cast<overlay::MemberIndex>(
                    rng.uniform_index(world.overlay_net().size()));
                cluster.send(from, util::NodeId::random(rng),
                             [&](const runtime::Cluster::MessageOutcome& o) {
                                 if (o.delivered) ++delivered;
                             });
                sim.run_until(sim.now() + 45 * util::kSecond);
            }
            sim.run_until(sim.now() + 2 * util::kMinute);

            return std::to_string(trial) + ":" + std::to_string(delivered) +
                   ":" +
                   std::to_string(cluster.stats().forward_retransmissions) +
                   ":" + std::to_string(cluster.stats().churn_leaves) + "\n";
        },
        [&](std::uint64_t, std::string&& row) { table += row; });
    return table;
}

TEST(ChaosDeterminism, SoakIsByteIdenticalAcrossJobs) {
    // One shared world, as in the benches (scenario construction is
    // single-threaded and jobs-independent by design).
    ScenarioParams params;
    params.topology = net::small_params();
    params.topology.end_hosts = 300;
    params.overlay_nodes_override = 50;
    params.seed = 21;
    const Scenario world(params);

    auto& registry = util::metrics::Registry::global();

    registry.reset();
    const std::string table_seq = run_soak(world, 1);
    const std::string section_seq = metrics_section();

    registry.reset();
    const std::string table_par = run_soak(world, 4);
    const std::string section_par = metrics_section();

    // The printed table and every deterministic metric -- including the
    // chaos.* and runtime.retry.* instruments and the backoff histogram --
    // are byte-identical at any worker count.
    EXPECT_EQ(table_seq, table_par);
    EXPECT_EQ(section_seq, section_par);
    EXPECT_NE(table_seq.find(':'), std::string::npos);
    EXPECT_NE(section_seq.find("\"chaos.plans_built\""), std::string::npos);
    EXPECT_NE(section_seq.find("\"runtime.retry.backoff_seconds\""),
              std::string::npos);
}

TEST(ChaosDeterminism, ScenarioBuildsPlanFromChaosParams) {
    ScenarioParams params;
    params.topology = net::small_params();
    params.topology.end_hosts = 300;
    params.overlay_nodes_override = 40;
    params.chaos = net::FaultSpec::parse("churn:0.05,flap:0.2");
    params.seed = 33;
    const Scenario with_chaos(params);
    EXPECT_FALSE(with_chaos.fault_plan().churn.empty());

    // The same seed without chaos builds the identical world: the plan is
    // drawn after everything else, so enabling chaos never perturbs the
    // scenario's topology, overlay, or failure ground truth.
    ScenarioParams quiet = params;
    quiet.chaos = net::FaultSpec{};
    const Scenario without_chaos(quiet);
    EXPECT_TRUE(without_chaos.fault_plan().churn.empty());
    EXPECT_EQ(with_chaos.overlay_net().size(),
              without_chaos.overlay_net().size());
    for (overlay::MemberIndex m = 0; m < with_chaos.overlay_net().size();
         ++m) {
        ASSERT_EQ(with_chaos.overlay_net().member(m).id(),
                  without_chaos.overlay_net().member(m).id());
    }
}

}  // namespace
}  // namespace concilium::sim
