// Fault-spec parsing and fault-plan generation (net/chaos.h).

#include "net/chaos.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/event_sim.h"
#include "net/transport.h"
#include "util/rng.h"

namespace concilium::net {
namespace {

using util::kMinute;
using util::kSecond;

// ------------------------------------------------------------- FaultSpec

TEST(FaultSpec, EmptyStringIsEmptySpec) {
    const FaultSpec spec = FaultSpec::parse("");
    EXPECT_TRUE(spec.empty());
    EXPECT_EQ(spec.to_string(), "");
}

TEST(FaultSpec, ParsesEveryKind) {
    const FaultSpec spec = FaultSpec::parse(
        "flap:0.02,corr:0.5,loss:1,reorder:0.25,dup:0.125,churn:0.01,"
        "ackdrop:0.3,ackdelay:0,crash:0.03,partition:0.04");
    EXPECT_DOUBLE_EQ(spec.rate(FaultKind::kFlap), 0.02);
    EXPECT_DOUBLE_EQ(spec.rate(FaultKind::kCorrelated), 0.5);
    EXPECT_DOUBLE_EQ(spec.rate(FaultKind::kLossSpike), 1.0);
    EXPECT_DOUBLE_EQ(spec.rate(FaultKind::kReorder), 0.25);
    EXPECT_DOUBLE_EQ(spec.rate(FaultKind::kDuplicate), 0.125);
    EXPECT_DOUBLE_EQ(spec.rate(FaultKind::kChurn), 0.01);
    EXPECT_DOUBLE_EQ(spec.rate(FaultKind::kAckDrop), 0.3);
    EXPECT_DOUBLE_EQ(spec.rate(FaultKind::kAckDelay), 0.0);
    EXPECT_DOUBLE_EQ(spec.rate(FaultKind::kCrash), 0.03);
    EXPECT_DOUBLE_EQ(spec.rate(FaultKind::kPartition), 0.04);
    EXPECT_FALSE(spec.empty());
}

TEST(FaultSpec, RejectsMalformedRecoveryKinds) {
    // The CI smoke test depends on these exiting loudly at parse time.
    EXPECT_THROW((void)FaultSpec::parse("crash:1.5"), std::invalid_argument);
    EXPECT_THROW((void)FaultSpec::parse("partition:abc"),
                 std::invalid_argument);
    EXPECT_THROW((void)FaultSpec::parse("crash:"), std::invalid_argument);
    EXPECT_THROW((void)FaultSpec::parse("partition:-0.1"),
                 std::invalid_argument);
}

TEST(FaultSpec, ToStringRoundTrips) {
    const FaultSpec spec = FaultSpec::parse("churn:0.01,flap:0.02");
    // Canonical order is enum order, regardless of input order.
    EXPECT_EQ(spec.to_string(), "flap:0.02,churn:0.01");
    const FaultSpec again = FaultSpec::parse(spec.to_string());
    for (std::size_t k = 0; k < static_cast<std::size_t>(FaultKind::kCount_);
         ++k) {
        EXPECT_DOUBLE_EQ(again.rate(static_cast<FaultKind>(k)),
                         spec.rate(static_cast<FaultKind>(k)));
    }
}

TEST(FaultSpec, RejectsUnknownKind) {
    try {
        (void)FaultSpec::parse("flap:0.02,warp:0.1");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("unknown fault kind 'warp'"), std::string::npos)
            << what;
        EXPECT_NE(what.find("flap"), std::string::npos)
            << "message should list the known kinds: " << what;
    }
}

TEST(FaultSpec, RejectsMalformedPairs) {
    EXPECT_THROW((void)FaultSpec::parse("flap"), std::invalid_argument);
    EXPECT_THROW((void)FaultSpec::parse("flap:"), std::invalid_argument);
    EXPECT_THROW((void)FaultSpec::parse(":0.1"), std::invalid_argument);
    EXPECT_THROW((void)FaultSpec::parse("flap:0.1,"), std::invalid_argument);
    EXPECT_THROW((void)FaultSpec::parse("flap:0.1x"), std::invalid_argument);
    EXPECT_THROW((void)FaultSpec::parse("flap:nan"), std::invalid_argument);
    EXPECT_THROW((void)FaultSpec::parse("flap:inf"), std::invalid_argument);
}

TEST(FaultSpec, RejectsOutOfRangeRates) {
    EXPECT_THROW((void)FaultSpec::parse("flap:1.5"), std::invalid_argument);
    EXPECT_THROW((void)FaultSpec::parse("flap:-0.1"), std::invalid_argument);
    EXPECT_THROW((void)FaultSpec::parse("dup:1e9"), std::invalid_argument);
    FaultSpec spec;
    EXPECT_THROW(spec.set_rate(FaultKind::kFlap, 2.0), std::invalid_argument);
    EXPECT_THROW(spec.set_rate(FaultKind::kFlap, -1.0),
                 std::invalid_argument);
}

TEST(FaultSpec, RejectsDuplicateKind) {
    EXPECT_THROW((void)FaultSpec::parse("flap:0.1,flap:0.2"),
                 std::invalid_argument);
}

TEST(FaultSpec, ScaledMultipliesAndClamps) {
    const FaultSpec spec = FaultSpec::parse("flap:0.02,dup:0.6");
    const FaultSpec doubled = spec.scaled(2.0);
    EXPECT_DOUBLE_EQ(doubled.rate(FaultKind::kFlap), 0.04);
    EXPECT_DOUBLE_EQ(doubled.rate(FaultKind::kDuplicate), 1.0);  // clamped
    EXPECT_TRUE(spec.scaled(0.0).empty());
}

// ------------------------------------------------------------- FaultPlan

/// Hand-built candidate paths: three disjoint 3-link paths over links
/// 0..8, enough structure for every fault process to draw from.
std::vector<Path> test_paths() {
    std::vector<Path> paths;
    for (LinkId base = 0; base < 9; base += 3) {
        Path p;
        p.routers = {base + 100, base + 101, base + 102, base + 103};
        p.links = {base, base + 1, base + 2};
        paths.push_back(p);
    }
    return paths;
}

TEST(FaultPlan, EmptySpecYieldsEmptyPlanAndDrawsNothing) {
    const auto paths = test_paths();
    util::Rng rng(42);
    const FaultPlan plan =
        build_fault_plan(FaultSpec{}, 2 * util::kHour, paths, 50, rng);
    EXPECT_TRUE(plan.spikes.empty());
    EXPECT_TRUE(plan.churn.empty());
    EXPECT_FALSE(plan.has_packet_effects());
    EXPECT_TRUE(plan.link_up(0, kMinute));
    // Determinism contract: an empty spec consumes no randomness, so
    // pre-existing seeds' worlds are untouched when chaos is off.
    util::Rng fresh(42);
    EXPECT_EQ(rng.uniform_u64(), fresh.uniform_u64());
}

TEST(FaultPlan, SameSeedSameSpecIsByteIdentical) {
    const auto paths = test_paths();
    const FaultSpec spec =
        FaultSpec::parse("flap:0.5,corr:1,loss:1,churn:0.05");
    util::Rng a(7);
    util::Rng b(7);
    const FaultPlan pa = build_fault_plan(spec, 2 * util::kHour, paths, 50, a);
    const FaultPlan pb = build_fault_plan(spec, 2 * util::kHour, paths, 50, b);

    ASSERT_EQ(pa.spikes.size(), pb.spikes.size());
    for (std::size_t i = 0; i < pa.spikes.size(); ++i) {
        EXPECT_EQ(pa.spikes[i].link, pb.spikes[i].link);
        EXPECT_EQ(pa.spikes[i].start, pb.spikes[i].start);
        EXPECT_EQ(pa.spikes[i].end, pb.spikes[i].end);
        EXPECT_DOUBLE_EQ(pa.spikes[i].loss, pb.spikes[i].loss);
    }
    ASSERT_EQ(pa.churn.size(), pb.churn.size());
    for (std::size_t i = 0; i < pa.churn.size(); ++i) {
        EXPECT_EQ(pa.churn[i].node, pb.churn[i].node);
        EXPECT_EQ(pa.churn[i].leave, pb.churn[i].leave);
        EXPECT_EQ(pa.churn[i].rejoin, pb.churn[i].rejoin);
    }
    for (LinkId l = 0; l < 9; ++l) {
        ASSERT_EQ(pa.downs.intervals(l).size(), pb.downs.intervals(l).size());
        for (std::size_t i = 0; i < pa.downs.intervals(l).size(); ++i) {
            EXPECT_EQ(pa.downs.intervals(l)[i].start,
                      pb.downs.intervals(l)[i].start);
            EXPECT_EQ(pa.downs.intervals(l)[i].end,
                      pb.downs.intervals(l)[i].end);
        }
    }
}

TEST(FaultPlan, HighRatesProduceEvents) {
    const auto paths = test_paths();
    const FaultSpec spec =
        FaultSpec::parse("flap:0.5,corr:1,loss:1,churn:0.2,reorder:0.5,"
                         "dup:0.5,ackdrop:0.1,ackdelay:0.1");
    util::Rng rng(11);
    const FaultPlan plan =
        build_fault_plan(spec, 2 * util::kHour, paths, 50, rng);
    std::size_t down_intervals = 0;
    for (LinkId l = 0; l < 9; ++l) {
        down_intervals += plan.downs.intervals(l).size();
    }
    EXPECT_GT(down_intervals, 0u);
    EXPECT_FALSE(plan.spikes.empty());
    EXPECT_FALSE(plan.churn.empty());
    EXPECT_TRUE(plan.has_packet_effects());
    for (const ChurnEvent& ev : plan.churn) {
        EXPECT_LT(ev.node, 50u);
        EXPECT_LT(ev.leave, ev.rejoin);
        EXPECT_LE(ev.rejoin, 2 * util::kHour);
    }
    for (const LossSpike& s : plan.spikes) {
        EXPECT_LT(s.start, s.end);
        EXPECT_GE(s.loss, 0.2);
        EXPECT_LE(s.loss, 0.8);
    }
}

TEST(FaultPlan, CrashAndPartitionEventsAreWellFormed) {
    const auto paths = test_paths();
    const FaultSpec spec = FaultSpec::parse("crash:0.2,partition:0.2");
    util::Rng rng(19);
    const auto duration = 2 * util::kHour;
    const FaultPlan plan = build_fault_plan(spec, duration, paths, 50, rng);

    ASSERT_FALSE(plan.crashes.empty());
    ASSERT_FALSE(plan.partitions.empty());
    EXPECT_TRUE(plan.has_recovery_faults());
    for (const CrashEvent& ev : plan.crashes) {
        EXPECT_LT(ev.node, 50u);
        EXPECT_LT(ev.crash, ev.restart);
        EXPECT_LE(ev.restart, duration);
        // Downtime is 1-4 minutes unless clipped by the horizon.
        if (ev.restart < duration) {
            EXPECT_GE(ev.restart - ev.crash, kMinute);
            EXPECT_LE(ev.restart - ev.crash, 4 * kMinute);
        }
    }
    util::SimTime prev_heal = 0;
    for (const PartitionEvent& ev : plan.partitions) {
        EXPECT_LT(ev.start, ev.heal);
        EXPECT_LE(ev.heal, duration);
        EXPECT_GE(ev.start, prev_heal) << "partition events must not overlap";
        prev_heal = ev.heal;
        ASSERT_EQ(ev.side.size(), 50u);
        // A bisection: both sides populated, middle-heavy cut.
        std::size_t ones = 0;
        for (const std::uint8_t s : ev.side) ones += s;
        EXPECT_GE(ones, 50u / 4);
        EXPECT_LE(ones, 50u - 50u / 4);
    }
}

TEST(FaultPlan, RecoveryKindsDrawFromDedicatedSubstreams) {
    // Determinism contract for stacked specs: adding crash/partition to an
    // existing spec must not perturb the events the original kinds
    // generate, because pre-existing seeds' chaos schedules are part of
    // their recorded figures.
    const auto paths = test_paths();
    const FaultSpec base =
        FaultSpec::parse("flap:0.5,corr:1,loss:1,churn:0.05");
    const FaultSpec stacked = FaultSpec::parse(
        "flap:0.5,corr:1,loss:1,churn:0.05,crash:0.3,partition:0.3");
    util::Rng a(7);
    util::Rng b(7);
    const FaultPlan pa = build_fault_plan(base, 2 * util::kHour, paths, 50, a);
    const FaultPlan pb =
        build_fault_plan(stacked, 2 * util::kHour, paths, 50, b);

    EXPECT_TRUE(pa.crashes.empty());
    EXPECT_FALSE(pb.crashes.empty());
    ASSERT_EQ(pa.spikes.size(), pb.spikes.size());
    for (std::size_t i = 0; i < pa.spikes.size(); ++i) {
        EXPECT_EQ(pa.spikes[i].link, pb.spikes[i].link);
        EXPECT_EQ(pa.spikes[i].start, pb.spikes[i].start);
    }
    ASSERT_EQ(pa.churn.size(), pb.churn.size());
    for (std::size_t i = 0; i < pa.churn.size(); ++i) {
        EXPECT_EQ(pa.churn[i].node, pb.churn[i].node);
        EXPECT_EQ(pa.churn[i].leave, pb.churn[i].leave);
    }
    for (LinkId l = 0; l < 9; ++l) {
        ASSERT_EQ(pa.downs.intervals(l).size(), pb.downs.intervals(l).size());
    }
}

TEST(FaultPlan, PartitionBlocksOnlyAcrossTheActiveCut) {
    FaultPlan plan;
    PartitionEvent ev;
    ev.start = 10 * kSecond;
    ev.heal = 60 * kSecond;
    ev.side = {0, 0, 1, 1};
    plan.partitions.push_back(ev);
    plan.downs.finalize();

    EXPECT_TRUE(plan.partition_active(10 * kSecond));
    EXPECT_FALSE(plan.partition_active(5 * kSecond));
    EXPECT_FALSE(plan.partition_active(60 * kSecond));  // heal exclusive

    EXPECT_TRUE(plan.partition_blocks(0, 2, 30 * kSecond));
    EXPECT_TRUE(plan.partition_blocks(3, 1, 30 * kSecond));
    EXPECT_FALSE(plan.partition_blocks(0, 1, 30 * kSecond));  // same side
    EXPECT_FALSE(plan.partition_blocks(2, 3, 30 * kSecond));
    EXPECT_FALSE(plan.partition_blocks(0, 2, 5 * kSecond));  // not yet
    EXPECT_FALSE(plan.partition_blocks(0, 2, 60 * kSecond));  // healed
    // Nodes beyond the recorded side vector are unpartitioned.
    EXPECT_FALSE(plan.partition_blocks(0, 9, 30 * kSecond));
    EXPECT_FALSE(plan.partition_blocks(9, 10, 30 * kSecond));
}

TEST(FaultPlan, LossAtReportsActiveSpikesOnly) {
    FaultPlan plan;
    plan.spikes.push_back({/*link=*/3, 10 * kSecond, 20 * kSecond, 0.5});
    plan.spikes.push_back({/*link=*/3, 15 * kSecond, 30 * kSecond, 0.3});
    plan.downs.finalize();
    EXPECT_DOUBLE_EQ(plan.loss_at(3, 5 * kSecond), 0.0);
    EXPECT_DOUBLE_EQ(plan.loss_at(3, 12 * kSecond), 0.5);
    EXPECT_DOUBLE_EQ(plan.loss_at(3, 17 * kSecond), 0.5);  // max of both
    EXPECT_DOUBLE_EQ(plan.loss_at(3, 25 * kSecond), 0.3);
    EXPECT_DOUBLE_EQ(plan.loss_at(3, 30 * kSecond), 0.0);  // end exclusive
    EXPECT_DOUBLE_EQ(plan.loss_at(4, 12 * kSecond), 0.0);  // other link
}

// ----------------------------------------------- Transport composition

TEST(Transport, ChaosDownsAndSpikesFoldIntoPassProbability) {
    FailureTimeline timeline;
    timeline.finalize();  // scenario says every link is healthy
    net::EventSim sim;
    Transport transport(timeline, sim, util::Rng(3));

    FaultPlan plan;
    plan.downs.add_down(1, {10 * kSecond, 20 * kSecond});
    plan.spikes.push_back({/*link=*/2, 0, kMinute, 0.4});
    plan.downs.finalize();

    // Without a plan the transport is untouched.
    EXPECT_DOUBLE_EQ(transport.pass_probability(1, 15 * kSecond), 1.0);

    transport.set_chaos(&plan);
    EXPECT_DOUBLE_EQ(transport.pass_probability(1, 15 * kSecond), 0.0);
    EXPECT_DOUBLE_EQ(transport.pass_probability(1, 25 * kSecond), 1.0);
    EXPECT_DOUBLE_EQ(transport.pass_probability(2, 30 * kSecond), 0.6);
    EXPECT_DOUBLE_EQ(transport.pass_probability(0, 30 * kSecond), 1.0);

    transport.set_chaos(nullptr);
    EXPECT_DOUBLE_EQ(transport.pass_probability(1, 15 * kSecond), 1.0);
}

TEST(Transport, ScenarioDownWinsOverChaos) {
    FailureTimeline timeline;
    timeline.add_down(5, {0, kMinute});
    timeline.finalize();
    net::EventSim sim;
    Transport transport(timeline, sim, util::Rng(3));
    FaultPlan plan;
    plan.downs.finalize();
    transport.set_chaos(&plan);
    EXPECT_DOUBLE_EQ(transport.pass_probability(5, 30 * kSecond), 0.0);
}

}  // namespace
}  // namespace concilium::net
