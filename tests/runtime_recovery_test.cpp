// Integration tests of crash recovery and partition tolerance
// (RECOVERY.md): a crashed forwarder must never be accused, journaled
// epochs must survive a restart without tripping the equivocation
// defenses, partitions must heal back into a delivering cluster, and
// degraded mode must still convict a live malicious dropper.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "net/chaos.h"
#include "net/topology_gen.h"
#include "runtime/cluster.h"

namespace concilium::runtime {
namespace {

using overlay::MemberIndex;
using util::kMinute;
using util::kSecond;

/// The runtime_chaos_test world: small topology, 50-node overlay, healthy
/// IP ground truth -- every fault below comes from the recovery plan.
struct RecoveryWorld {
    explicit RecoveryWorld(std::uint64_t seed = 5, std::size_t nodes = 50)
        : rng(seed),
          topology(net::generate_topology(alter(net::small_params()), rng)),
          ca(seed + 1) {
        overlay.emplace(overlay::build_overlay_from_hosts(
            topology.end_hosts(), nodes, ca, overlay::OverlayParams{}, rng));
        trees.emplace(*overlay, topology);
        timeline.finalize();
    }

    static net::TopologyParams alter(net::TopologyParams p) {
        p.end_hosts = 300;
        return p;
    }

    Cluster make_cluster(RuntimeParams params = {},
                         std::vector<NodeBehavior> behaviors = {}) {
        return Cluster(sim, timeline, *overlay, *trees, params,
                       std::move(behaviors), rng.fork());
    }

    util::Rng rng;
    net::Topology topology;
    crypto::CertificateAuthority ca;
    std::optional<overlay::OverlayNetwork> overlay;
    std::optional<tomography::OverlayTrees> trees;
    net::FailureTimeline timeline;
    net::EventSim sim;
};

/// A route of at least `min_len` hops, searched deterministically.
std::optional<std::pair<MemberIndex, util::NodeId>> long_route(
    const overlay::OverlayNetwork& net, std::size_t min_len) {
    util::Rng search(3);
    for (int attempt = 0; attempt < 20000; ++attempt) {
        const auto from =
            static_cast<MemberIndex>(search.uniform_index(net.size()));
        const util::NodeId key = util::NodeId::random(search);
        try {
            if (net.route(from, key).size() >= min_len) {
                return std::make_pair(from, key);
            }
        } catch (const std::exception&) {
        }
    }
    return std::nullopt;
}

// The headline scenario: the forwarder crash-stops before the sends, so
// every message dies at its hop with the evidence hollowed out -- no
// snapshots, no probe coverage, no commitment.  Degraded-mode diagnosis
// must close those messages as insufficient evidence, never as guilt, and
// after the restart the forwarder must carry traffic again.
TEST(ClusterRecovery, CrashedForwarderDrawsInsufficientEvidenceNotGuilt) {
    RecoveryWorld world;
    const auto picked = long_route(*world.overlay, 3);
    ASSERT_TRUE(picked.has_value()) << "no 3-hop route in small world";
    const auto [from, key] = *picked;
    const auto hops = world.overlay->route(from, key);
    const MemberIndex forwarder = hops[1];
    const util::NodeId forwarder_id = world.overlay->member(forwarder).id();

    net::FaultPlan plan;
    plan.crashes.push_back({forwarder, 5 * kMinute, 9 * kMinute});
    plan.downs.finalize();

    RuntimeParams params;
    params.forward_retry.max_attempts = 3;
    Cluster cluster = world.make_cluster(params);
    cluster.set_chaos(&plan);
    cluster.start();
    world.sim.run_until(5 * kMinute + 30 * kSecond);
    ASSERT_TRUE(cluster.is_crashed(forwarder));

    std::size_t insufficient = 0;
    std::size_t node_blamed = 0;
    bool forwarder_ever_blamed = false;
    for (int i = 0; i < 6; ++i) {
        cluster.send(from, key,
                     [&](const Cluster::MessageOutcome& out) {
                         if (out.insufficient_evidence) ++insufficient;
                         if (out.blamed.has_value()) {
                             ++node_blamed;
                             forwarder_ever_blamed =
                                 forwarder_ever_blamed ||
                                 *out.blamed == forwarder_id;
                         }
                     });
        world.sim.run_until(world.sim.now() + 30 * kSecond);
    }
    // Run past the restart so the recovery handshake completes.
    world.sim.run_until(15 * kMinute);

    EXPECT_GT(insufficient, 0u) << "no send was closed as insufficient";
    EXPECT_FALSE(forwarder_ever_blamed);
    EXPECT_EQ(node_blamed, 0u);
    EXPECT_TRUE(cluster.accusations_against(forwarder).empty());
    EXPECT_EQ(cluster.stats().accusations_filed, 0u);
    EXPECT_GT(cluster.stats().insufficient_verdicts, 0u);

    // The restart actually happened and announced itself.
    EXPECT_FALSE(cluster.is_crashed(forwarder));
    EXPECT_EQ(cluster.stats().crashes, 1u);
    EXPECT_EQ(cluster.stats().restarts, 1u);
    EXPECT_EQ(cluster.stats().journal_replays, 1u);
    EXPECT_GE(cluster.stats().recovery_announcements, 1u);

    // And the recovered forwarder carries traffic again.
    std::size_t delivered_after = 0;
    for (int i = 0; i < 5; ++i) {
        cluster.send(from, key,
                     [&](const Cluster::MessageOutcome& out) {
                         if (out.delivered) ++delivered_after;
                     });
        world.sim.run_until(world.sim.now() + 30 * kSecond);
    }
    world.sim.run_until(world.sim.now() + 2 * kMinute);
    EXPECT_GT(delivered_after, 0u);
}

TEST(ClusterRecovery, JournaledEpochSurvivesRestartWithoutEquivocating) {
    RecoveryWorld world;
    const MemberIndex victim = 7;

    net::FaultPlan plan;
    plan.crashes.push_back({victim, 6 * kMinute, 8 * kMinute});
    plan.downs.finalize();

    Cluster cluster = world.make_cluster();
    cluster.set_chaos(&plan);
    cluster.start();
    // Long enough for several snapshot publications on both sides of the
    // crash/restart cycle.
    world.sim.run_until(20 * kMinute);

    // The journal checkpointed epochs beyond the initial one, and the
    // restarted node resumed above them.
    const auto recovered = cluster.journal(victim).replay(100);
    EXPECT_GT(recovered.next_epoch, 1u);
    EXPECT_EQ(recovered.incarnations, 1u);
    EXPECT_EQ(cluster.stats().restarts, 1u);

    // The decisive part: peers hold the victim's pre-crash snapshots, so a
    // node restarting from epoch 1 would be rejected by every archive's
    // replay floor (and look like an equivocator).  With the journal the
    // epoch stream stays strictly increasing: zero epoch rejections, zero
    // equivocation proofs, and the peers accepted the recovery repairs.
    EXPECT_EQ(cluster.stats().snapshots_rejected_epoch, 0u);
    EXPECT_EQ(cluster.stats().equivocation_proofs_filed, 0u);
    EXPECT_GT(cluster.stats().recovery_repairs_accepted, 0u);
    EXPECT_GT(cluster.stats().snapshots_published, 0u);
}

TEST(ClusterRecovery, PartitionBlocksCrossCutTrafficThenHealsAndDelivers) {
    RecoveryWorld world;
    const auto picked = long_route(*world.overlay, 3);
    ASSERT_TRUE(picked.has_value());
    const auto [from, key] = *picked;
    const auto hops = world.overlay->route(from, key);

    // Isolate the route's second forwarder on its own side of the cut for
    // two minutes: messages die on the segment into it, acks die coming
    // back out of it.
    net::FaultPlan plan;
    net::PartitionEvent ev;
    ev.start = 5 * kMinute;
    ev.heal = 7 * kMinute;
    ev.side.assign(world.overlay->size(), 0);
    ev.side[hops[2]] = 1;
    plan.partitions.push_back(std::move(ev));
    plan.downs.finalize();

    Cluster cluster = world.make_cluster();
    cluster.set_chaos(&plan);
    cluster.start();
    world.sim.run_until(5 * kMinute + 10 * kSecond);

    std::size_t delivered_during = 0;
    std::size_t node_blamed = 0;
    for (int i = 0; i < 3; ++i) {
        cluster.send(from, key,
                     [&](const Cluster::MessageOutcome& out) {
                         if (out.delivered) ++delivered_during;
                         if (out.blamed.has_value()) ++node_blamed;
                     });
        world.sim.run_until(world.sim.now() + 30 * kSecond);
    }
    EXPECT_EQ(delivered_during, 0u) << "the cut leaked a message";
    EXPECT_GT(cluster.stats().partition_blocked_packets, 0u);

    // Heal, then give the post-heal anti-entropy a moment to resync.
    world.sim.run_until(9 * kMinute);
    EXPECT_EQ(cluster.stats().partition_activations, 1u);
    EXPECT_EQ(cluster.stats().partition_heals, 1u);
    EXPECT_GT(cluster.stats().resync_rounds, 0u);

    std::size_t delivered_after = 0;
    for (int i = 0; i < 5; ++i) {
        cluster.send(from, key,
                     [&](const Cluster::MessageOutcome& out) {
                         if (out.delivered) ++delivered_after;
                         if (out.blamed.has_value()) ++node_blamed;
                     });
        world.sim.run_until(world.sim.now() + 30 * kSecond);
    }
    world.sim.run_until(world.sim.now() + 2 * kMinute);

    // Post-heal convergence: the cluster delivers again, and at no point
    // did an IP-invisible cut turn into a node accusation.
    EXPECT_GT(delivered_after, 0u);
    EXPECT_EQ(node_blamed, 0u);
    EXPECT_EQ(cluster.stats().accusations_filed, 0u);
}

// Degraded mode must not become an amnesty: a live malicious dropper
// leaves post-incident probe coverage on its links (its peers keep
// answering), so the coverage test passes and the conviction stands even
// while crash faults elsewhere hold the cluster in degraded mode.
TEST(ClusterRecovery, DegradedModeStillConvictsALiveDropper) {
    RecoveryWorld world;
    const auto picked = long_route(*world.overlay, 4);
    ASSERT_TRUE(picked.has_value()) << "no 4-hop route in small world";
    const auto [from, key] = *picked;
    const auto hops = world.overlay->route(from, key);
    const MemberIndex dropper = hops[2];
    const util::NodeId dropper_id = world.overlay->member(dropper).id();

    // A crash far away (an unrelated node, late enough not to overlap the
    // sends) keeps has_recovery_faults() -- and with it degraded mode --
    // active for every judgment below.
    MemberIndex bystander = 0;
    while (bystander == dropper ||
           std::find(hops.begin(), hops.end(), bystander) != hops.end()) {
        ++bystander;
    }
    net::FaultPlan plan;
    plan.crashes.push_back({bystander, 30 * kMinute, 32 * kMinute});
    plan.downs.finalize();

    std::vector<NodeBehavior> behaviors(world.overlay->size());
    behaviors[dropper].drop_forward_probability = 1.0;
    Cluster cluster = world.make_cluster(RuntimeParams{}, behaviors);
    cluster.set_chaos(&plan);
    cluster.start();
    world.sim.run_until(3 * kMinute);

    int blamed_dropper = 0;
    for (int i = 0; i < 8; ++i) {
        cluster.send(from, key,
                     [&](const Cluster::MessageOutcome& out) {
                         EXPECT_FALSE(out.delivered);
                         if (out.blamed == dropper_id) ++blamed_dropper;
                     });
        world.sim.run_until(world.sim.now() + 30 * kSecond);
    }
    world.sim.run_until(world.sim.now() + 2 * kMinute);

    EXPECT_GE(blamed_dropper, 7);
    EXPECT_FALSE(cluster.accusations_against(dropper).empty());
    EXPECT_GT(cluster.stats().guilty_verdicts, 0u);
}

}  // namespace
}  // namespace concilium::runtime
