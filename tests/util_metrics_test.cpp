// Unit tests for the process-wide metrics registry and its exporters.

#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

namespace concilium::util::metrics {
namespace {

TEST(Counter, AddAndValue) {
    Counter c;
    EXPECT_EQ(c.value(), 0);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
    c.reset();
    EXPECT_EQ(c.value(), 0);
}

TEST(Counter, ConcurrentUpdatesAreExact) {
    Counter c;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&c] {
            for (int i = 0; i < kPerThread; ++i) c.add();
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(c.value(),
              static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAddAndMax) {
    Gauge g;
    g.set(3.5);
    EXPECT_DOUBLE_EQ(g.value(), 3.5);
    g.add(1.5);
    EXPECT_DOUBLE_EQ(g.value(), 5.0);
    g.set_max(4.0);  // lower: no effect
    EXPECT_DOUBLE_EQ(g.value(), 5.0);
    g.set_max(9.0);
    EXPECT_DOUBLE_EQ(g.value(), 9.0);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Gauge, ConcurrentSetMaxKeepsMaximum) {
    Gauge g;
    constexpr int kThreads = 8;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&g, t] {
            for (int i = 0; i < 5000; ++i) {
                g.set_max(static_cast<double>(t * 10000 + i));
            }
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_DOUBLE_EQ(g.value(), 74999.0);
}

TEST(HistogramMetric, ObservationsLandInBinsAndClamp) {
    HistogramMetric h(0.0, 1.0, 10);
    h.observe(0.05);   // bin 0
    h.observe(0.55);   // bin 5
    h.observe(-3.0);   // clamps to bin 0
    h.observe(7.0);    // clamps to bin 9
    EXPECT_EQ(h.count(0), 2);
    EXPECT_EQ(h.count(5), 1);
    EXPECT_EQ(h.count(9), 1);
    EXPECT_EQ(h.total(), 4);
    EXPECT_NEAR(h.sum(), 0.05 + 0.55 - 3.0 + 7.0, 1e-6);
    EXPECT_DOUBLE_EQ(h.upper_edge(0), 0.1);
    EXPECT_DOUBLE_EQ(h.upper_edge(9), 1.0);
}

TEST(HistogramMetric, SumIsFixedPointExact) {
    // The sum accumulates in integer nano-units so it is independent of
    // update order (the cross---jobs byte-stability guarantee).
    HistogramMetric h(0.0, 1.0, 4);
    constexpr int kThreads = 8;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&h] {
            for (int i = 0; i < 10000; ++i) h.observe(0.1);
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(h.total(), 80000);
    // 0.1 rounds to exactly 100000000 nanos, so the sum is exactly 8000.
    EXPECT_DOUBLE_EQ(h.sum(), 8000.0);
}

TEST(HistogramMetric, RejectsBadGeometry) {
    EXPECT_THROW(HistogramMetric(1.0, 1.0, 10), std::invalid_argument);
    EXPECT_THROW(HistogramMetric(0.0, 1.0, 0), std::invalid_argument);
}

TEST(SeriesMetric, SumModeAccumulatesPerWindow) {
    SeriesMetric s(1000, 4, SeriesMetric::Mode::kSum);
    s.observe(0, 2);
    s.observe(999, 3);   // still window 0
    s.observe(1000, 5);  // window 1
    EXPECT_EQ(s.value(0), 5);
    EXPECT_EQ(s.value(1), 5);
    EXPECT_EQ(s.value(2), 0);
    EXPECT_EQ(s.clipped(), 0);
}

TEST(SeriesMetric, MaxModeKeepsPerWindowMaximum) {
    SeriesMetric s(1000, 4, SeriesMetric::Mode::kMax);
    s.observe(1500, 7);
    s.observe(1600, 4);  // lower: no effect
    s.observe(1700, 9);
    EXPECT_EQ(s.value(1), 9);
    EXPECT_EQ(s.value(0), 0);
}

TEST(SeriesMetric, OutOfRangeObservationsCountAsClipped) {
    SeriesMetric s(1000, 2, SeriesMetric::Mode::kSum);
    s.observe(-1, 5);
    s.observe(2000, 5);  // first window past the end
    EXPECT_EQ(s.clipped(), 2);
    EXPECT_EQ(s.value(0), 0);
    EXPECT_EQ(s.value(1), 0);
    s.observe(500, 1);
    s.reset();
    EXPECT_EQ(s.value(0), 0);
    EXPECT_EQ(s.clipped(), 0);
}

TEST(SeriesMetric, RejectsBadGeometry) {
    EXPECT_THROW(SeriesMetric(0, 4, SeriesMetric::Mode::kSum),
                 std::invalid_argument);
    EXPECT_THROW(SeriesMetric(1000, 0, SeriesMetric::Mode::kSum),
                 std::invalid_argument);
}

TEST(SeriesMetric, ConcurrentSumIsExact) {
    SeriesMetric s(1000, 8, SeriesMetric::Mode::kSum);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&s] {
            for (int i = 0; i < kPerThread; ++i) s.observe(3500);
        });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(s.value(3),
              static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(Registry, SameNameReturnsSameInstrument) {
    Registry reg;
    Counter& a = reg.counter("x.count");
    Counter& b = reg.counter("x.count");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3);
}

TEST(Registry, CrossKindNameCollisionThrows) {
    Registry reg;
    reg.counter("x.metric");
    EXPECT_THROW(reg.gauge("x.metric"), std::logic_error);
    EXPECT_THROW(reg.histogram("x.metric", 0.0, 1.0, 4), std::logic_error);
    reg.gauge("y.metric");
    EXPECT_THROW(reg.counter("y.metric"), std::logic_error);
}

TEST(Registry, HistogramGeometryMismatchThrows) {
    Registry reg;
    reg.histogram("h", 0.0, 1.0, 10);
    EXPECT_NO_THROW(reg.histogram("h", 0.0, 1.0, 10));
    EXPECT_THROW(reg.histogram("h", 0.0, 2.0, 10), std::logic_error);
    EXPECT_THROW(reg.histogram("h", 0.0, 1.0, 5), std::logic_error);
}

TEST(Registry, SnapshotIsIsolatedFromLaterUpdates) {
    Registry reg;
    Counter& c = reg.counter("a.count");
    c.add(5);
    const Snapshot snap = reg.snapshot();
    c.add(100);
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].value, 5);
    EXPECT_EQ(reg.snapshot().counters[0].value, 105);
}

TEST(Registry, ResetZeroesEverything) {
    Registry reg;
    reg.counter("c").add(7);
    reg.gauge("g").set(2.5);
    reg.histogram("h", 0.0, 1.0, 4).observe(0.4);
    reg.reset();
    const Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters[0].value, 0);
    EXPECT_DOUBLE_EQ(snap.gauges[0].value, 0.0);
    EXPECT_EQ(snap.histograms[0].total, 0);
}

TEST(Registry, GlobalPreregistersAllNamespaces) {
    const Snapshot snap = Registry::global().snapshot();
    bool seen_net = false;
    bool seen_tomography = false;
    bool seen_overlay = false;
    bool seen_core = false;
    bool seen_runtime = false;
    bool seen_sim = false;
    for (const auto& c : snap.counters) {
        seen_net = seen_net || c.name.starts_with("net.");
        seen_tomography =
            seen_tomography || c.name.starts_with("tomography.");
        seen_overlay = seen_overlay || c.name.starts_with("overlay.");
        seen_core = seen_core || c.name.starts_with("core.");
        seen_runtime = seen_runtime || c.name.starts_with("runtime.");
        seen_sim = seen_sim || c.name.starts_with("sim.");
    }
    EXPECT_TRUE(seen_net);
    EXPECT_TRUE(seen_tomography);
    EXPECT_TRUE(seen_overlay);
    EXPECT_TRUE(seen_core);
    EXPECT_TRUE(seen_runtime);
    EXPECT_TRUE(seen_sim);
}

TEST(Registry, SeriesGeometryMismatchThrows) {
    Registry reg;
    auto& s = reg.series("demo.series", 1000, 4, SeriesMetric::Mode::kSum);
    EXPECT_EQ(&reg.series("demo.series", 1000, 4, SeriesMetric::Mode::kSum),
              &s);
    EXPECT_THROW(reg.series("demo.series", 2000, 4, SeriesMetric::Mode::kSum),
                 std::logic_error);
    EXPECT_THROW(reg.series("demo.series", 1000, 4, SeriesMetric::Mode::kMax),
                 std::logic_error);
    reg.counter("demo.count");
    EXPECT_THROW(reg.series("demo.count", 1000, 4, SeriesMetric::Mode::kSum),
                 std::logic_error);
}

TEST(Registry, SeriesSnapshotTrimsTrailingZeroWindows) {
    Registry reg;
    auto& s = reg.series("demo.series", 1000, 8, SeriesMetric::Mode::kSum);
    s.observe(0, 2);
    s.observe(2500, 7);
    s.observe(9999);  // clipped
    const Snapshot snap = reg.snapshot();
    ASSERT_EQ(snap.series.size(), 1u);
    const auto& v = snap.series[0];
    EXPECT_EQ(v.name, "demo.series");
    EXPECT_EQ(v.window_us, 1000);
    EXPECT_FALSE(v.maximum);
    EXPECT_EQ(v.values, (std::vector<std::int64_t>{2, 0, 7}));
    EXPECT_EQ(v.clipped, 1);
}

TEST(Exporters, PrometheusTextGolden) {
    Registry reg;  // bare: no well-known catalogue
    reg.counter("demo.count").add(3);
    reg.gauge("demo.level").set(1.5);
    reg.histogram("demo.hist", 0.0, 1.0, 2).observe(0.25);
    const std::string expected =
        "# TYPE concilium_demo_count counter\n"
        "concilium_demo_count 3\n"
        "# TYPE concilium_demo_level gauge\n"
        "concilium_demo_level 1.5\n"
        "# TYPE concilium_demo_hist histogram\n"
        "concilium_demo_hist_bucket{le=\"0.5\"} 1\n"
        "concilium_demo_hist_bucket{le=\"1\"} 1\n"
        "concilium_demo_hist_bucket{le=\"+Inf\"} 1\n"
        "concilium_demo_hist_sum 0.25\n"
        "concilium_demo_hist_count 1\n";
    EXPECT_EQ(reg.snapshot().to_text(), expected);
}

TEST(Exporters, TimingInstrumentsAreFlaggedInText) {
    Registry reg;
    reg.timing_gauge("demo.wall_seconds").set(2.0);
    const std::string text = reg.snapshot().to_text();
    EXPECT_NE(text.find("# TIMING (excluded from determinism checks)\n"
                        "# TYPE concilium_demo_wall_seconds gauge\n"),
              std::string::npos);
}

TEST(Exporters, PrometheusNamesGainPrefixAndLoseDots) {
    Registry reg;
    reg.counter("net.eventsim.queue_depth_max").add(1);
    const std::string text = reg.snapshot().to_text();
    EXPECT_NE(text.find("concilium_net_eventsim_queue_depth_max 1\n"),
              std::string::npos);
    EXPECT_EQ(text.find("net.eventsim"), std::string::npos);
}

TEST(Exporters, PrometheusBucketsAreCumulativeAndMonotonic) {
    Registry reg;
    auto& h = reg.histogram("demo.hist", 0.0, 1.0, 4);
    h.observe(0.1);   // bin 0
    h.observe(0.3);   // bin 1
    h.observe(0.35);  // bin 1
    h.observe(0.9);   // bin 3
    const std::string text = reg.snapshot().to_text();
    std::vector<std::int64_t> cumulative;
    std::size_t pos = 0;
    while ((pos = text.find("_bucket{le=", pos)) != std::string::npos) {
        const std::size_t value_at = text.find("} ", pos) + 2;
        cumulative.push_back(std::stoll(text.substr(value_at)));
        pos = value_at;
    }
    ASSERT_EQ(cumulative.size(), 5u);  // 4 bins + le="+Inf"
    EXPECT_EQ(cumulative, (std::vector<std::int64_t>{1, 3, 3, 4, 4}));
    EXPECT_NE(text.find("concilium_demo_hist_count 4\n"), std::string::npos);
}

TEST(Exporters, PrometheusSeriesRendersLabeledWindows) {
    Registry reg;
    auto& s = reg.series("demo.series", 2'000'000, 4, SeriesMetric::Mode::kMax);
    s.observe(0, 3);
    s.observe(5'000'000, 9);  // window 2; window 1 stays zero and is elided
    const std::string text = reg.snapshot().to_text();
    EXPECT_NE(text.find("# TYPE concilium_demo_series gauge\n"),
              std::string::npos);
    EXPECT_NE(
        text.find(
            "concilium_demo_series{window=\"0\",window_seconds=\"2\"} 3\n"),
        std::string::npos);
    EXPECT_NE(
        text.find(
            "concilium_demo_series{window=\"2\",window_seconds=\"2\"} 9\n"),
        std::string::npos);
    EXPECT_EQ(text.find("{window=\"1\""), std::string::npos);
    EXPECT_NE(text.find("concilium_demo_series_clipped 0\n"),
              std::string::npos);
}

TEST(Exporters, SeriesJsonGolden) {
    Registry reg;
    auto& s = reg.series("demo.series", 1'000'000, 4, SeriesMetric::Mode::kSum);
    s.observe(0, 2);
    s.observe(2'500'000, 7);
    s.observe(99'000'000);  // clipped
    const std::string expected =
        "{\n"
        "  \"metrics\": {\n"
        "    \"demo.series\": {\"window_seconds\": 1, \"mode\": \"sum\", "
        "\"clipped\": 1, \"values\": [2, 0, 7]}\n"
        "  },\n"
        "  \"timing\": {\n"
        "  }\n"
        "}\n";
    EXPECT_EQ(reg.snapshot().to_json(), expected);
}

TEST(Exporters, JsonGoldenSplitsSections) {
    Registry reg;
    reg.counter("demo.count").add(2);
    reg.timing_gauge("demo.seconds").set(0.5);
    reg.histogram("demo.hist", 0.0, 1.0, 2).observe(0.75);
    const std::string expected =
        "{\n"
        "  \"metrics\": {\n"
        "    \"demo.count\": 2,\n"
        "    \"demo.hist\": {\"lo\": 0, \"hi\": 1, \"total\": 1, "
        "\"sum\": 0.75, \"counts\": [0, 1]}\n"
        "  },\n"
        "  \"timing\": {\n"
        "    \"demo.seconds\": 0.5\n"
        "  }\n"
        "}\n";
    EXPECT_EQ(reg.snapshot().to_json(), expected);
}

TEST(Exporters, JsonIsByteStableAcrossRegistrationOrder) {
    Registry a;
    a.counter("z.count").add(1);
    a.counter("a.count").add(2);
    Registry b;
    b.counter("a.count").add(2);
    b.counter("z.count").add(1);
    EXPECT_EQ(a.snapshot().to_json(), b.snapshot().to_json());
}

}  // namespace
}  // namespace concilium::util::metrics
