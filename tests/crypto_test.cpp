#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/certificates.h"
#include "crypto/keys.h"
#include "crypto/tokens.h"
#include "crypto/verify_cache.h"
#include "util/metrics.h"
#include "util/time.h"

namespace concilium::crypto {
namespace {

TEST(Keys, SignaturesVerifyForOwner) {
    const KeyPair keys = KeyPair::from_seed(1);
    KeyRegistry registry;
    registry.register_key(keys);
    const Signature sig = keys.sign("hello");
    EXPECT_TRUE(registry.verify(keys.public_key(), "hello", sig));
}

TEST(Keys, VerificationRejectsTamperedMessage) {
    const KeyPair keys = KeyPair::from_seed(2);
    KeyRegistry registry;
    registry.register_key(keys);
    const Signature sig = keys.sign("hello");
    EXPECT_FALSE(registry.verify(keys.public_key(), "hellp", sig));
    EXPECT_FALSE(registry.verify(keys.public_key(), "", sig));
}

TEST(Keys, VerificationRejectsWrongKey) {
    const KeyPair a = KeyPair::from_seed(3);
    const KeyPair b = KeyPair::from_seed(4);
    KeyRegistry registry;
    registry.register_key(a);
    registry.register_key(b);
    const Signature sig = a.sign("msg");
    EXPECT_FALSE(registry.verify(b.public_key(), "msg", sig));
}

TEST(Keys, UnknownKeyNeverVerifies) {
    const KeyPair keys = KeyPair::from_seed(5);
    KeyRegistry registry;  // key never registered
    EXPECT_FALSE(registry.knows(keys.public_key()));
    EXPECT_FALSE(
        registry.verify(keys.public_key(), "msg", keys.sign("msg")));
}

TEST(Keys, DistinctSeedsDistinctKeys) {
    const KeyPair a = KeyPair::from_seed(10);
    const KeyPair b = KeyPair::from_seed(11);
    EXPECT_NE(a.public_key(), b.public_key());
    EXPECT_NE(a.sign("x"), b.sign("x"));
}

TEST(Keys, SigningIsDeterministic) {
    const KeyPair a = KeyPair::from_seed(12);
    EXPECT_EQ(a.sign("x"), a.sign("x"));
    EXPECT_NE(a.sign("x"), a.sign("y"));
}

TEST(Keys, PublicKeyToStringIsHex) {
    const KeyPair a = KeyPair::from_seed(13);
    const std::string s = a.public_key().to_string();
    EXPECT_EQ(s.size(), 2u * PublicKey::kBytes);
    for (const char c : s) {
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
    }
}

TEST(CertificateAuthority, AdmissionProducesValidCertificate) {
    CertificateAuthority ca(123);
    const auto admission = ca.admit(42);
    EXPECT_EQ(admission.certificate.ip, 42u);
    EXPECT_EQ(admission.certificate.public_key,
              admission.keys.public_key());
    EXPECT_TRUE(ca.validate(admission.certificate));
}

TEST(CertificateAuthority, TamperedCertificateFailsValidation) {
    CertificateAuthority ca(124);
    auto admission = ca.admit(1);
    admission.certificate.ip = 2;  // rebind to a different host
    EXPECT_FALSE(ca.validate(admission.certificate));
}

TEST(CertificateAuthority, IdentifiersAreRandomlyAssigned) {
    // "Since identifiers are static and randomly assigned, adversaries
    // cannot deliberately move their hosts to advantageous regions."
    CertificateAuthority ca(125);
    const auto a = ca.admit(1);
    const auto b = ca.admit(2);
    EXPECT_NE(a.certificate.node_id, b.certificate.node_id);
    // The admitted host cannot pick the id: two CAs with different seeds
    // assign different ids to the same ip.
    CertificateAuthority other(126);
    EXPECT_NE(other.admit(1).certificate.node_id, a.certificate.node_id);
}

TEST(CertificateAuthority, WireBytesAccountForModeledSizes) {
    CertificateAuthority ca(127);
    const auto admission = ca.admit(9);
    EXPECT_EQ(admission.certificate.wire_bytes(),
              4u + PublicKey::kWireBytes + util::NodeId::kBytes +
                  Signature::kWireBytes);
}

TEST(SignedTimestamp, RoundTripVerifies) {
    CertificateAuthority ca(128);
    const auto admission = ca.admit(3);
    const auto ts = make_signed_timestamp(admission.certificate.node_id,
                                          90 * util::kSecond, admission.keys);
    EXPECT_TRUE(verify_signed_timestamp(ts, admission.keys.public_key(),
                                        ca.registry()));
}

TEST(SignedTimestamp, ForgedTimeFailsVerification) {
    CertificateAuthority ca(129);
    const auto admission = ca.admit(3);
    auto ts = make_signed_timestamp(admission.certificate.node_id,
                                    90 * util::kSecond, admission.keys);
    ts.at = 900 * util::kSecond;  // "freshen" a stale timestamp
    EXPECT_FALSE(verify_signed_timestamp(ts, admission.keys.public_key(),
                                         ca.registry()));
}

TEST(SignedTimestamp, CannotBeSignedByAnotherNode) {
    CertificateAuthority ca(130);
    const auto victim = ca.admit(1);
    const auto attacker = ca.admit(2);
    // The attacker tries to fabricate a fresh timestamp for the victim's
    // identifier using its own keys (inflation attack).
    const auto forged = make_signed_timestamp(victim.certificate.node_id,
                                              120 * util::kSecond,
                                              attacker.keys);
    EXPECT_FALSE(verify_signed_timestamp(forged, victim.keys.public_key(),
                                         ca.registry()));
}

TEST(VerifyCache, MemoizesByKeyDigestAndSignature) {
    auto& registry = util::metrics::Registry::global();
    registry.reset();
    KeyRegistry keys;
    const auto alice = KeyPair::from_seed(1);
    const auto bob = KeyPair::from_seed(2);
    keys.register_key(alice);
    keys.register_key(bob);

    const std::vector<std::uint8_t> message{1, 2, 3, 4, 5};
    const auto digest = util::digest_bytes({message.data(), message.size()});
    const auto sig = alice.sign(std::span<const std::uint8_t>{message});

    VerifyCache cache(keys);
    EXPECT_TRUE(cache.verify(alice.public_key(), digest, message, sig));
    EXPECT_TRUE(cache.verify(alice.public_key(), digest, message, sig));
    EXPECT_TRUE(cache.verify(alice.public_key(), digest, message, sig));
    EXPECT_EQ(registry.counter("crypto.verify.cache_hit").value(), 2);
    EXPECT_EQ(registry.counter("crypto.verify.cache_miss").value(), 1);

    // A different verifier key is a distinct memo entry, not a stale hit.
    EXPECT_FALSE(cache.verify(bob.public_key(), digest, message, sig));
    EXPECT_FALSE(cache.verify(bob.public_key(), digest, message, sig));
    EXPECT_EQ(registry.counter("crypto.verify.cache_hit").value(), 3);
    EXPECT_EQ(registry.counter("crypto.verify.cache_miss").value(), 2);

    // A tampered signature misses the memo and fails verification.
    auto bad_bytes = sig.bytes();
    bad_bytes[0] ^= 0xff;
    const Signature bad(bad_bytes);
    EXPECT_FALSE(cache.verify(alice.public_key(), digest, message, bad));
    EXPECT_EQ(registry.counter("crypto.verify.cache_miss").value(), 3);
}

}  // namespace
}  // namespace concilium::crypto
