#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace concilium::util {
namespace {

TEST(Rng, DeterministicGivenSeed) {
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniform_u64(), b.uniform_u64());
    }
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform_u64() == b.uniform_u64()) ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, ForksAreIndependentStreams) {
    Rng parent(99);
    Rng c1 = parent.fork();
    Rng c2 = parent.fork();
    EXPECT_NE(c1.uniform_u64(), c2.uniform_u64());
    // Forking does not perturb the parent's own stream relative to a replay.
    Rng parent2(99);
    (void)parent2.fork();
    (void)parent2.fork();
    EXPECT_EQ(parent.uniform_u64(), parent2.uniform_u64());
}

TEST(Rng, SubstreamsAreReplayableFromAnywhere) {
    // The same (seed, stream) pair reconstructs the identical generator --
    // no parent state involved -- so a worker thread can derive trial 17's
    // stream without having derived trials 0..16 first.
    Rng a = Rng::substream(42, 17);
    Rng b = Rng::substream(42, 17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniform_u64(), b.uniform_u64());
    }
}

TEST(Rng, SubstreamsAreIndependentAcrossIndices) {
    // Adjacent trial indices must not produce correlated streams.
    Rng a = Rng::substream(42, 0);
    Rng b = Rng::substream(42, 1);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform_u64() == b.uniform_u64()) ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, SubstreamsAreIndependentAcrossSeeds) {
    Rng a = Rng::substream(1, 5);
    Rng b = Rng::substream(2, 5);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform_u64() == b.uniform_u64()) ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, SubstreamSeedsDoNotCollideOverTrialRange) {
    // A coarse avalanche check: the first 100k trial indices of one seed
    // map to 100k distinct substream seeds.
    std::vector<std::uint64_t> seeds;
    seeds.reserve(100000);
    for (std::uint64_t t = 0; t < 100000; ++t) {
        seeds.push_back(Rng::substream_seed(7, t));
    }
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

TEST(Rng, UniformIntCoversRangeInclusive) {
    Rng rng(3);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniform_int(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInHalfOpenInterval) {
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Rng, BernoulliEdgeCases) {
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
    Rng rng(6);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (rng.bernoulli(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
    Rng rng(8);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, BetaMomentsMatchTheory) {
    // Beta(0.9, 0.6) is the paper's failure-depth distribution; its mean is
    // alpha / (alpha + beta) = 0.6.
    Rng rng(9);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.beta(0.9, 0.6);
        ASSERT_GE(v, 0.0);
        ASSERT_LE(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.6, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
    Rng rng(10);
    std::vector<int> v(50);
    std::iota(v.begin(), v.end(), 0);
    auto shuffled = v;
    rng.shuffle(shuffled);
    EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
    Rng rng(11);
    const auto sample = rng.sample_indices(100, 30);
    EXPECT_EQ(sample.size(), 30u);
    std::vector<std::size_t> sorted = sample;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
    EXPECT_LT(sorted.back(), 100u);
}

TEST(Rng, SampleIndicesFullPopulation) {
    Rng rng(12);
    auto sample = rng.sample_indices(10, 10);
    std::sort(sample.begin(), sample.end());
    for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleIndicesRejectsOversizedRequest) {
    Rng rng(13);
    EXPECT_THROW(rng.sample_indices(5, 6), std::invalid_argument);
}

}  // namespace
}  // namespace concilium::util
