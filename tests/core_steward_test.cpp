#include "core/steward.h"

#include <gtest/gtest.h>

namespace concilium::core {
namespace {

/// blame_fn helper: guilt[j] is the blame judge j assigns to hop j+1.
std::function<double(std::size_t, std::size_t)> blame_table(
    std::vector<double> blames) {
    return [blames = std::move(blames)](std::size_t judge,
                                        std::size_t suspect) {
        EXPECT_EQ(suspect, judge + 1);
        return blames.at(judge);
    };
}

TEST(AttributeFault, PaperExampleBlameSticksAtDropper) {
    // A -> B -> C -> D -> ... Z with D dropping and all links good: A blames
    // B, B blames C, C blames D; D cannot push further, so D is blamed.
    const auto outcome = attribute_fault(
        6, 3, blame_table({1.0, 1.0, 1.0}), VerdictParams{});
    EXPECT_FALSE(outcome.network_blamed);
    ASSERT_TRUE(outcome.blamed_hop.has_value());
    EXPECT_EQ(*outcome.blamed_hop, 3u);
    ASSERT_EQ(outcome.judgments.size(), 3u);
    for (const auto& j : outcome.judgments) EXPECT_TRUE(j.guilty);
}

TEST(AttributeFault, NetworkRebuttalStopsTheChain) {
    // B's tomographic evidence shows the B->C link bad: the chain ends with
    // the network blamed at segment 1, exonerating everyone.
    const auto outcome = attribute_fault(
        5, 2, blame_table({1.0, 0.1}), VerdictParams{});
    EXPECT_TRUE(outcome.network_blamed);
    EXPECT_FALSE(outcome.blamed_hop.has_value());
    ASSERT_TRUE(outcome.faulted_segment.has_value());
    EXPECT_EQ(*outcome.faulted_segment, 1u);
}

TEST(AttributeFault, SenderItselfBlamesNetworkDirectly) {
    // A's own evidence shows the first segment bad.
    const auto outcome =
        attribute_fault(4, 2, blame_table({0.2, 0.9}), VerdictParams{});
    EXPECT_TRUE(outcome.network_blamed);
    EXPECT_EQ(*outcome.faulted_segment, 0u);
}

TEST(AttributeFault, FirstHopDropperBlamedWithoutRevisions) {
    // B (hop 1) dropped: A's guilty verdict is the whole chain.
    const auto outcome =
        attribute_fault(4, 1, blame_table({1.0}), VerdictParams{});
    EXPECT_FALSE(outcome.network_blamed);
    EXPECT_EQ(*outcome.blamed_hop, 1u);
    EXPECT_EQ(outcome.judgments.size(), 1u);
}

TEST(AttributeFault, SenderWithNoJudgmentsIsItsOwnProblem) {
    // last_steward == 0: the sender never handed the message off.
    const auto outcome =
        attribute_fault(3, 0, blame_table({}), VerdictParams{});
    EXPECT_FALSE(outcome.network_blamed);
    EXPECT_EQ(*outcome.blamed_hop, 0u);
    EXPECT_TRUE(outcome.judgments.empty());
}

TEST(AttributeFault, ThresholdGovernsGuilt) {
    VerdictParams strict;
    strict.guilty_blame_threshold = 0.95;
    // Blame 0.9 acquits under the strict threshold -> network blamed.
    const auto outcome = attribute_fault(3, 1, blame_table({0.9}), strict);
    EXPECT_TRUE(outcome.network_blamed);

    VerdictParams loose;
    loose.guilty_blame_threshold = 0.5;
    const auto outcome2 = attribute_fault(3, 1, blame_table({0.9}), loose);
    EXPECT_FALSE(outcome2.network_blamed);
    EXPECT_EQ(*outcome2.blamed_hop, 1u);
}

TEST(AttributeFault, DropAtLastForwarder) {
    // Route of 4; hop 2 (last forwarder before Z) dropped.
    const auto outcome = attribute_fault(
        4, 2, blame_table({1.0, 1.0}), VerdictParams{});
    EXPECT_EQ(*outcome.blamed_hop, 2u);
}

TEST(AttributeFault, JudgmentsRecordRoutePositions) {
    const auto outcome = attribute_fault(
        5, 3, blame_table({0.8, 0.9, 1.0}), VerdictParams{});
    ASSERT_EQ(outcome.judgments.size(), 3u);
    for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(outcome.judgments[j].judge_hop, j);
        EXPECT_EQ(outcome.judgments[j].suspect_hop, j + 1);
    }
}

TEST(AttributeFault, ValidatesArguments) {
    EXPECT_THROW(attribute_fault(1, 0, blame_table({}), VerdictParams{}),
                 std::invalid_argument);
    EXPECT_THROW(attribute_fault(3, 3, blame_table({}), VerdictParams{}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace concilium::core
