#include "runtime/attack.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.h"

namespace concilium::runtime {
namespace {

TEST(AttackSpec, ParsesKindRatePairs) {
    const auto c = AttackCampaign::parse("equivocate:0.05,replay:0.1");
    EXPECT_DOUBLE_EQ(c.rate(AttackKind::kEquivocate), 0.05);
    EXPECT_DOUBLE_EQ(c.rate(AttackKind::kReplay), 0.1);
    EXPECT_DOUBLE_EQ(c.rate(AttackKind::kSlander), 0.0);
    EXPECT_DOUBLE_EQ(c.rate(AttackKind::kSpam), 0.0);
    EXPECT_DOUBLE_EQ(c.rate(AttackKind::kCollude), 0.0);
    EXPECT_FALSE(c.empty());
}

TEST(AttackSpec, EmptyTextIsEmptyCampaign) {
    EXPECT_TRUE(AttackCampaign::parse("").empty());
    EXPECT_EQ(AttackCampaign{}.to_string(), "");
}

TEST(AttackSpec, ToStringRoundTripsCanonically) {
    const auto c = AttackCampaign::parse(
        "collude:0.05,equivocate:0.06,slander:0.02");
    // Canonical order is declaration order, zero rates omitted.
    EXPECT_EQ(c.to_string(), "equivocate:0.06,slander:0.02,collude:0.05");
    const auto again = AttackCampaign::parse(c.to_string());
    for (const auto kind :
         {AttackKind::kEquivocate, AttackKind::kReplay, AttackKind::kSlander,
          AttackKind::kSpam, AttackKind::kCollude}) {
        EXPECT_DOUBLE_EQ(again.rate(kind), c.rate(kind));
    }
}

TEST(AttackSpec, RejectsMalformedSpecs) {
    const auto rejects = [](const char* text, const char* fragment) {
        try {
            AttackCampaign::parse(text);
            FAIL() << "parse('" << text << "') did not throw";
        } catch (const std::invalid_argument& e) {
            const std::string what = e.what();
            EXPECT_EQ(what.rfind("--attack: ", 0), 0u) << what;
            EXPECT_NE(what.find(fragment), std::string::npos) << what;
        }
    };
    rejects("warp:0.1", "unknown attack kind");
    rejects("equivocate", "expected 'kind:rate'");
    rejects("equivocate:", "empty rate");
    rejects("equivocate:zebra", "malformed rate");
    rejects("equivocate:0.5x", "malformed rate");
    rejects("equivocate:nan", "malformed rate");
    rejects("equivocate:1.5", "outside [0, 1]");
    rejects("equivocate:-0.1", "outside [0, 1]");
    rejects("equivocate:0.1,equivocate:0.2", "given twice");
    rejects("equivocate:0.1,", "trailing ','");
    rejects(",", "trailing ','");
}

TEST(AttackSpec, SetRateValidatesRange) {
    AttackCampaign c;
    c.set_rate(AttackKind::kSpam, 0.4);
    EXPECT_DOUBLE_EQ(c.rate(AttackKind::kSpam), 0.4);
    EXPECT_THROW(c.set_rate(AttackKind::kSpam, 1.5), std::invalid_argument);
    EXPECT_THROW(c.set_rate(AttackKind::kSpam, -0.5), std::invalid_argument);
}

TEST(AttackSpec, ScaledClampsToOne) {
    const auto c = AttackCampaign::parse("equivocate:0.4,replay:0.05");
    const auto doubled = c.scaled(3.0);
    EXPECT_DOUBLE_EQ(doubled.rate(AttackKind::kEquivocate), 1.0);
    EXPECT_DOUBLE_EQ(doubled.rate(AttackKind::kReplay), 0.15);
    EXPECT_TRUE(c.scaled(0.0).empty());
}

TEST(AttackMaterialize, RolesAreExclusiveAndSized) {
    const auto c = AttackCampaign::parse(
        "equivocate:0.1,replay:0.1,slander:0.1,spam:0.1,collude:0.1");
    util::Rng rng(7);
    const auto behaviors = materialize_attackers(c, 100, rng);
    ASSERT_EQ(behaviors.size(), 100u);
    std::size_t per_kind[5] = {};
    for (const auto& b : behaviors) {
        const int roles = static_cast<int>(b.equivocate_snapshots) +
                          static_cast<int>(b.replay_snapshots) +
                          static_cast<int>(b.slander) +
                          static_cast<int>(b.spam_accusations) +
                          static_cast<int>(b.collude_revisions);
        EXPECT_LE(roles, 1);  // exclusive recruitment
        EXPECT_EQ(b.byzantine(), roles == 1);
        per_kind[0] += b.equivocate_snapshots;
        per_kind[1] += b.replay_snapshots;
        per_kind[2] += b.slander;
        per_kind[3] += b.spam_accusations;
        per_kind[4] += b.collude_revisions;
        // Snapshot/revision liars drop to give their lies a purpose;
        // slanderers and spammers forward honestly.
        if (b.equivocate_snapshots || b.replay_snapshots ||
            b.collude_revisions) {
            EXPECT_DOUBLE_EQ(b.drop_forward_probability, 1.0);
        } else {
            EXPECT_DOUBLE_EQ(b.drop_forward_probability, 0.0);
        }
    }
    for (const std::size_t n : per_kind) EXPECT_EQ(n, 10u);
}

TEST(AttackMaterialize, TinyWorldStillRecruitsOnePerActiveKind) {
    const auto c = AttackCampaign::parse("equivocate:0.01,slander:0.01");
    util::Rng rng(11);
    const auto behaviors = materialize_attackers(c, 20, rng);
    std::size_t equivocators = 0;
    std::size_t slanderers = 0;
    for (const auto& b : behaviors) {
        equivocators += b.equivocate_snapshots;
        slanderers += b.slander;
    }
    EXPECT_EQ(equivocators, 1u);
    EXPECT_EQ(slanderers, 1u);
}

TEST(AttackMaterialize, DeterministicForEqualStreams) {
    const auto c = AttackCampaign::parse("equivocate:0.2,spam:0.1");
    util::Rng a(42);
    util::Rng b(42);
    const auto first = materialize_attackers(c, 64, a);
    const auto second = materialize_attackers(c, 64, b);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].equivocate_snapshots,
                  second[i].equivocate_snapshots);
        EXPECT_EQ(first[i].spam_accusations, second[i].spam_accusations);
    }
}

TEST(AttackMaterialize, EmptyCampaignIsAllHonest) {
    util::Rng rng(3);
    const auto behaviors = materialize_attackers(AttackCampaign{}, 10, rng);
    for (const auto& b : behaviors) EXPECT_FALSE(b.byzantine());
}

}  // namespace
}  // namespace concilium::runtime
