// Wire-format and bookkeeping tests for routing-state advertisements.

#include "overlay/advertisement.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace concilium::overlay {
namespace {

struct AdvertisementFixture : ::testing::Test {
    AdvertisementFixture() : net(concilium::testing::make_overlay(120, 81)) {}

    overlay::OverlayNetwork net;
    util::SimTime now = 20 * util::kMinute;
};

TEST_F(AdvertisementFixture, SignedPayloadIsDeterministic) {
    const auto ad1 = make_advertisement(
        net, 4, now, [&](MemberIndex) { return now - util::kSecond; });
    const auto ad2 = make_advertisement(
        net, 4, now, [&](MemberIndex) { return now - util::kSecond; });
    EXPECT_EQ(ad1.signed_payload(), ad2.signed_payload());
    EXPECT_EQ(ad1.signature, ad2.signature);
}

TEST_F(AdvertisementFixture, PayloadBindsEveryField) {
    const auto base = make_advertisement(
        net, 4, now, [&](MemberIndex) { return now - util::kSecond; });
    auto mutate = base;
    mutate.issued_at += 1;
    EXPECT_NE(base.signed_payload(), mutate.signed_payload());
    mutate = base;
    mutate.population_estimate += 1.0;
    EXPECT_NE(base.signed_payload(), mutate.signed_payload());
    mutate = base;
    ASSERT_FALSE(mutate.entries.empty());
    mutate.entries[0].freshness.at += 1;
    EXPECT_NE(base.signed_payload(), mutate.signed_payload());
}

TEST_F(AdvertisementFixture, WireBytesScaleWithEntries) {
    const auto ad = make_advertisement(
        net, 4, now, [&](MemberIndex) { return now; });
    auto half = ad;
    half.entries.resize(ad.entries.size() / 2);
    EXPECT_EQ(ad.wire_bytes() - half.wire_bytes(),
              (ad.entries.size() - half.entries.size()) *
                  AdvertisedEntry::kWireBytes);
}

TEST_F(AdvertisementFixture, PopulationEstimateTravelsInAdvertisement) {
    const auto ad = make_advertisement(
        net, 9, now, [&](MemberIndex) { return now; });
    EXPECT_NEAR(ad.population_estimate, net.estimate_population(9), 1e-12);
}

TEST_F(AdvertisementFixture, LeafAdvertisementSidesMatchLeafSet) {
    const auto ad = make_leaf_advertisement(
        net, 6, now, [&](MemberIndex) { return now; });
    const auto& ls = net.leaf_set(6);
    ASSERT_EQ(ad.successors.size(), ls.successors().size());
    ASSERT_EQ(ad.predecessors.size(), ls.predecessors().size());
    for (std::size_t i = 0; i < ad.successors.size(); ++i) {
        EXPECT_EQ(ad.successors[i].peer,
                  net.member(ls.successors()[i]).id());
    }
    for (std::size_t i = 0; i < ad.predecessors.size(); ++i) {
        EXPECT_EQ(ad.predecessors[i].peer,
                  net.member(ls.predecessors()[i]).id());
    }
}

TEST_F(AdvertisementFixture, LeafPayloadBindsBothSides) {
    const auto base = make_leaf_advertisement(
        net, 6, now, [&](MemberIndex) { return now; });
    auto mutate = base;
    ASSERT_FALSE(mutate.predecessors.empty());
    mutate.predecessors[0].freshness.at += 1;
    EXPECT_NE(base.signed_payload(), mutate.signed_payload());
    mutate = base;
    std::swap(mutate.successors.front(), mutate.successors.back());
    EXPECT_NE(base.signed_payload(), mutate.signed_payload());
}

TEST_F(AdvertisementFixture, LeafWireBytesMatchEntryModel) {
    const auto ad = make_leaf_advertisement(
        net, 6, now, [&](MemberIndex) { return now; });
    EXPECT_EQ(ad.wire_bytes(),
              (ad.successors.size() + ad.predecessors.size()) *
                      AdvertisedEntry::kWireBytes +
                  util::NodeId::kBytes + 8 + crypto::Signature::kWireBytes);
}

TEST_F(AdvertisementFixture, EmptyLeafAdvertisementHasUnitSpacing) {
    LeafSetAdvertisement empty;
    empty.owner = net.member(0).id();
    EXPECT_DOUBLE_EQ(empty.mean_spacing(), 1.0);
}

}  // namespace
}  // namespace concilium::overlay
