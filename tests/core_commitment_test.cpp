#include "core/commitments.h"

#include <gtest/gtest.h>

#include "crypto/certificates.h"

namespace concilium::core {
namespace {

struct CommitmentFixture : ::testing::Test {
    CommitmentFixture() : ca(11) {
        sender = std::make_unique<crypto::CertificateAuthority::Admission>(
            ca.admit(1));
        forwarder = std::make_unique<crypto::CertificateAuthority::Admission>(
            ca.admit(2));
        destination =
            std::make_unique<crypto::CertificateAuthority::Admission>(
                ca.admit(3));
    }

    ForwardingCommitment make(std::uint64_t message_id = 7) {
        return make_forwarding_commitment(
            sender->certificate.node_id, forwarder->certificate.node_id,
            destination->certificate.node_id, message_id,
            90 * util::kSecond, forwarder->keys);
    }

    crypto::CertificateAuthority ca;
    std::unique_ptr<crypto::CertificateAuthority::Admission> sender;
    std::unique_ptr<crypto::CertificateAuthority::Admission> forwarder;
    std::unique_ptr<crypto::CertificateAuthority::Admission> destination;
};

TEST_F(CommitmentFixture, RoundTripVerifies) {
    const auto c = make();
    EXPECT_TRUE(verify_forwarding_commitment(
        c, forwarder->keys.public_key(), ca.registry()));
    EXPECT_EQ(c.sender, sender->certificate.node_id);
    EXPECT_EQ(c.forwarder, forwarder->certificate.node_id);
    EXPECT_EQ(c.destination, destination->certificate.node_id);
}

TEST_F(CommitmentFixture, TamperedFieldsFailVerification) {
    {
        auto c = make();
        c.message_id = 8;  // rebind the promise to another message
        EXPECT_FALSE(verify_forwarding_commitment(
            c, forwarder->keys.public_key(), ca.registry()));
    }
    {
        auto c = make();
        c.destination = sender->certificate.node_id;
        EXPECT_FALSE(verify_forwarding_commitment(
            c, forwarder->keys.public_key(), ca.registry()));
    }
    {
        auto c = make();
        c.at += 1;
        EXPECT_FALSE(verify_forwarding_commitment(
            c, forwarder->keys.public_key(), ca.registry()));
    }
}

TEST_F(CommitmentFixture, SenderCannotForgeForwardersCommitment) {
    // A malicious sender signing a "commitment" with its own keys must not
    // verify against the forwarder's public key -- this is exactly the
    // spurious-accusation defence of Section 3.6.
    const auto forged = make_forwarding_commitment(
        sender->certificate.node_id, forwarder->certificate.node_id,
        destination->certificate.node_id, 7, 90 * util::kSecond,
        sender->keys);  // wrong signer
    EXPECT_FALSE(verify_forwarding_commitment(
        forged, forwarder->keys.public_key(), ca.registry()));
}

TEST_F(CommitmentFixture, WireBytesIncludeSignature) {
    EXPECT_EQ(ForwardingCommitment::wire_bytes(),
              3u * util::NodeId::kBytes + 16u +
                  crypto::Signature::kWireBytes);
}

TEST_F(CommitmentFixture, DistinctMessagesDistinctSignatures) {
    EXPECT_NE(make(1).signature, make(2).signature);
}

}  // namespace
}  // namespace concilium::core
