#include "core/equivocation.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/accusation.h"
#include "crypto/certificates.h"

namespace concilium::core {
namespace {

using Admission = crypto::CertificateAuthority::Admission;

struct EquivocationFixture : ::testing::Test {
    EquivocationFixture()
        : ca(31), origin(ca.admit(1)), other(ca.admit(2)) {}

    /// A signed snapshot from `who` with the given epoch and link verdict.
    tomography::TomographicSnapshot snapshot(const Admission& who,
                                             std::uint64_t epoch,
                                             bool link_up) {
        tomography::TomographicSnapshot s;
        s.origin = who.certificate.node_id;
        s.epoch = epoch;
        s.probed_at = 100 * util::kSecond;
        s.links.push_back(tomography::LinkObservation{7, link_up});
        s.paths.push_back(tomography::PathSummary{
            other.certificate.node_id,
            link_up ? tomography::LossBucket::kClean
                    : tomography::LossBucket::kDown});
        s.signature = who.keys.sign(s.signed_payload());
        return s;
    }

    crypto::CertificateAuthority ca;
    Admission origin;
    Admission other;
};

TEST_F(EquivocationFixture, ConflictingSameEpochSnapshotsVerify) {
    const EquivocationProof proof{snapshot(origin, 3, true),
                                  snapshot(origin, 3, false)};
    EXPECT_EQ(verify_equivocation_proof(proof, origin.keys.public_key(),
                                        ca.registry()),
              EquivocationCheck::kOk);
}

TEST_F(EquivocationFixture, SerializeRoundTrips) {
    const EquivocationProof proof{snapshot(origin, 5, true),
                                  snapshot(origin, 5, false)};
    const auto bytes = proof.serialize();
    const auto back = EquivocationProof::deserialize(bytes);
    EXPECT_EQ(back.first.origin, proof.first.origin);
    EXPECT_EQ(back.first.epoch, 5u);
    EXPECT_EQ(back.second.epoch, 5u);
    EXPECT_EQ(back.first.signature, proof.first.signature);
    EXPECT_EQ(back.second.signature, proof.second.signature);
    ASSERT_EQ(back.first.links.size(), 1u);
    EXPECT_TRUE(back.first.links[0].up);
    EXPECT_FALSE(back.second.links[0].up);
    // The round-tripped proof still convicts.
    EXPECT_EQ(verify_equivocation_proof(back, origin.keys.public_key(),
                                        ca.registry()),
              EquivocationCheck::kOk);
}

TEST_F(EquivocationFixture, DeserializeRejectsTrailingBytes) {
    auto bytes =
        EquivocationProof{snapshot(origin, 1, true), snapshot(origin, 1, false)}
            .serialize();
    bytes.push_back(0x00);
    EXPECT_THROW(EquivocationProof::deserialize(bytes), std::exception);
}

TEST_F(EquivocationFixture, RejectsOriginMismatch) {
    const EquivocationProof proof{snapshot(origin, 3, true),
                                  snapshot(other, 3, false)};
    EXPECT_EQ(verify_equivocation_proof(proof, origin.keys.public_key(),
                                        ca.registry()),
              EquivocationCheck::kOriginMismatch);
}

TEST_F(EquivocationFixture, RejectsDifferentEpochs) {
    // Consecutive honest rounds naturally differ; no equivocation.
    const EquivocationProof proof{snapshot(origin, 3, true),
                                  snapshot(origin, 4, false)};
    EXPECT_EQ(verify_equivocation_proof(proof, origin.keys.public_key(),
                                        ca.registry()),
              EquivocationCheck::kEpochMismatch);
}

TEST_F(EquivocationFixture, RejectsUnversionedSnapshots) {
    const EquivocationProof proof{snapshot(origin, 0, true),
                                  snapshot(origin, 0, false)};
    EXPECT_EQ(verify_equivocation_proof(proof, origin.keys.public_key(),
                                        ca.registry()),
              EquivocationCheck::kUnversioned);
}

TEST_F(EquivocationFixture, RejectsIdenticalPayloads) {
    const auto s = snapshot(origin, 3, true);
    const EquivocationProof proof{s, s};
    EXPECT_EQ(verify_equivocation_proof(proof, origin.keys.public_key(),
                                        ca.registry()),
              EquivocationCheck::kIdenticalPayloads);
}

TEST_F(EquivocationFixture, RejectsForgedSignature) {
    auto forged = snapshot(origin, 3, false);
    // A slanderer forging "conflicting" snapshots can only sign with its own
    // key; the proof must not convict the framed origin.
    forged.signature = other.keys.sign(forged.signed_payload());
    const EquivocationProof proof{snapshot(origin, 3, true), forged};
    EXPECT_EQ(verify_equivocation_proof(proof, origin.keys.public_key(),
                                        ca.registry()),
              EquivocationCheck::kBadSignature);
}

TEST_F(EquivocationFixture, DhtKeyDisjointFromAccusationKey) {
    const auto proof_key = EquivocationProof::dht_key(origin.keys.public_key());
    const auto accusation_key =
        FaultAccusation::dht_key(origin.keys.public_key());
    EXPECT_NE(proof_key, accusation_key);
    // Deterministic: prospective peers recompute the same key.
    EXPECT_EQ(proof_key, EquivocationProof::dht_key(origin.keys.public_key()));
}

TEST(EquivocationCheckNames, AllDistinct) {
    EXPECT_STREQ(to_string(EquivocationCheck::kOk), "ok");
    EXPECT_NE(std::string(to_string(EquivocationCheck::kEpochMismatch)),
              std::string(to_string(EquivocationCheck::kBadSignature)));
}

}  // namespace
}  // namespace concilium::core
