// Bounded retry with exponential backoff (runtime/retry.h), driven against
// net::EventSim as a fake clock.

#include "runtime/retry.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/event_sim.h"
#include "util/rng.h"

namespace concilium::runtime {
namespace {

using util::kMillisecond;
using util::kSecond;

RetryPolicy no_jitter(int max_attempts) {
    RetryPolicy p;
    p.max_attempts = max_attempts;
    p.base_delay = 500 * kMillisecond;
    p.multiplier = 2.0;
    p.jitter_fraction = 0.0;
    p.max_delay = 8 * kSecond;
    return p;
}

TEST(RetryPolicy, AllowsCountsTotalAttempts) {
    const RetryPolicy once = no_jitter(1);  // the paper's default: no retry
    EXPECT_TRUE(once.allows(1));
    EXPECT_FALSE(once.allows(2));

    const RetryPolicy three = no_jitter(3);
    EXPECT_TRUE(three.allows(2));
    EXPECT_TRUE(three.allows(3));
    EXPECT_FALSE(three.allows(4));
}

TEST(RetryPolicy, BackoffIsExponentialWithoutJitter) {
    const RetryPolicy p = no_jitter(8);
    util::Rng rng(1);
    EXPECT_EQ(p.delay_before(2, rng), 500 * kMillisecond);
    EXPECT_EQ(p.delay_before(3, rng), 1000 * kMillisecond);
    EXPECT_EQ(p.delay_before(4, rng), 2000 * kMillisecond);
    EXPECT_EQ(p.delay_before(5, rng), 4000 * kMillisecond);
    EXPECT_EQ(p.delay_before(6, rng), 8000 * kMillisecond);  // cap
    EXPECT_EQ(p.delay_before(7, rng), 8000 * kMillisecond);  // stays capped
}

TEST(RetryPolicy, JitterStaysWithinFractionAndIsDeterministic) {
    RetryPolicy p = no_jitter(8);
    p.jitter_fraction = 0.1;
    util::Rng a(9);
    util::Rng b(9);
    for (int attempt = 2; attempt <= 8; ++attempt) {
        // Jitterless calls draw nothing, so a and b stay in lockstep.
        const auto nominal = no_jitter(8).delay_before(attempt, a);
        const auto da = p.delay_before(attempt, a);
        const auto db = p.delay_before(attempt, b);
        EXPECT_EQ(da, db) << "same seed, same schedule";
        EXPECT_GE(da, static_cast<util::SimTime>(
                          0.9 * static_cast<double>(nominal)));
        EXPECT_LE(da, static_cast<util::SimTime>(
                          1.1 * static_cast<double>(nominal) + 1.0));
    }
}

TEST(RetryPolicy, BackoffSaturatesAtHugeAttemptCountsWithoutOverflow) {
    // A stewardship resumed after a crash can carry a large attempt index;
    // multiplier^k overflows double's exponent range long before that, and
    // the cap must absorb it instead of wrapping to garbage.
    RetryPolicy p = no_jitter(1 << 30);
    util::Rng rng(1);
    EXPECT_EQ(p.delay_before(100, rng), p.max_delay);
    EXPECT_EQ(p.delay_before(100000, rng), p.max_delay);
    EXPECT_EQ(p.delay_before(1 << 30, rng), p.max_delay);
}

TEST(RetryPolicy, JitterAtTheCapStaysWithinBounds) {
    RetryPolicy p = no_jitter(64);
    p.jitter_fraction = 0.25;
    util::Rng rng(17);
    for (int attempt = 20; attempt < 60; ++attempt) {  // deep in saturation
        const auto d = p.delay_before(attempt, rng);
        EXPECT_GE(d, static_cast<util::SimTime>(
                         0.75 * static_cast<double>(p.max_delay)));
        EXPECT_LE(d, static_cast<util::SimTime>(
                         1.25 * static_cast<double>(p.max_delay) + 1.0));
    }
}

TEST(RetryPolicy, ZeroBudgetNeverAllowsEvenTheFirstAttempt) {
    RetryPolicy p = no_jitter(0);
    EXPECT_FALSE(p.allows(1));
    p.max_attempts = -1;  // nonsensical configs behave like zero
    EXPECT_FALSE(p.allows(1));
}

TEST(RetryPolicy, DelayIsNeverZero) {
    RetryPolicy p;
    p.base_delay = 0;
    p.jitter_fraction = 0.0;
    util::Rng rng(1);
    EXPECT_EQ(p.delay_before(2, rng), 1);  // at least one microsecond
}

TEST(RetryPolicy, ScheduleAgainstFakeClockFiresAtExactTimes) {
    // The schedule a steward follows: try, and while unacked, retry after
    // delay_before(k).  With jitter off the firing instants are exact.
    const RetryPolicy p = no_jitter(4);
    util::Rng rng(5);
    net::EventSim sim;
    std::vector<util::SimTime> fired;

    // Arm all retries up front, exactly as the runtime does after each
    // failed attempt: attempt k schedules attempt k+1 relative to now.
    std::function<void(int)> attempt = [&](int k) {
        fired.push_back(sim.now());
        const int next = k + 1;
        if (!p.allows(next)) return;
        sim.schedule_after(p.delay_before(next, rng),
                           [&attempt, next] { attempt(next); });
    };
    sim.schedule_at(0, [&attempt] { attempt(1); });
    sim.run_all();

    ASSERT_EQ(fired.size(), 4u);
    EXPECT_EQ(fired[0], 0);
    EXPECT_EQ(fired[1], 500 * kMillisecond);
    EXPECT_EQ(fired[2], 1500 * kMillisecond);  // +1000 ms
    EXPECT_EQ(fired[3], 3500 * kMillisecond);  // +2000 ms
}

}  // namespace
}  // namespace concilium::runtime
