#include <gtest/gtest.h>

#include <unordered_map>

#include "net/paths.h"
#include "tomography/inference.h"
#include "tomography/probing.h"
#include "util/rng.h"

namespace concilium::tomography {
namespace {

/// Builds the shared 7-router test tree and runs a heavyweight session with
/// the given per-link loss, returning the MLE result.
struct InferenceFixture : ::testing::Test {
    InferenceFixture() {
        for (int i = 0; i < 7; ++i) topo.add_router(net::RouterTier::kCore);
        links[0] = topo.add_link(0, 1);
        links[1] = topo.add_link(1, 2);
        links[2] = topo.add_link(1, 3);
        links[3] = topo.add_link(2, 4);
        links[4] = topo.add_link(2, 5);
        links[5] = topo.add_link(3, 6);
        const net::PathOracle oracle(topo);
        const std::vector<net::RouterId> dsts{4, 5, 6};
        tree.emplace(0, oracle.paths_from(0, dsts));
    }

    InferenceResult infer(std::unordered_map<net::LinkId, double> loss,
                          int probes = 4000, std::uint64_t seed = 1) {
        util::Rng rng(seed);
        const auto pass = [&loss](net::LinkId l, util::SimTime) {
            const auto it = loss.find(l);
            return it == loss.end() ? 1.0 : 1.0 - it->second;
        };
        const auto session = run_heavyweight_session(
            *tree, pass, 0, HeavyweightParams{.probe_count = probes}, {},
            rng);
        return infer_link_loss(*tree, session.probes);
    }

    net::Topology topo;
    net::LinkId links[6];
    std::optional<ProbeTree> tree;
};

TEST_F(InferenceFixture, CleanNetworkInfersNoLoss) {
    const auto result = infer({});
    for (const auto& e : result.links) {
        EXPECT_NEAR(e.loss, 0.0, 0.01) << "link " << e.link;
    }
}

TEST_F(InferenceFixture, LastMileLossLandsOnTheRightLink) {
    const auto result = infer({{links[3], 0.30}});
    EXPECT_NEAR(result.loss_of(links[3]), 0.30, 0.05);
    EXPECT_NEAR(result.loss_of(links[4]), 0.0, 0.03);
    EXPECT_NEAR(result.loss_of(links[5]), 0.0, 0.03);
    EXPECT_NEAR(result.loss_of(links[1]), 0.0, 0.03);
}

TEST_F(InferenceFixture, SharedLinkLossSeparatesFromLastMiles) {
    // This is the crux of MINC: loss on the shared link 1->2 must not be
    // misattributed to the last miles of leaves 4 and 5.
    const auto result = infer({{links[1], 0.25}});
    EXPECT_NEAR(result.loss_of(links[1]), 0.25, 0.05);
    EXPECT_NEAR(result.loss_of(links[3]), 0.0, 0.04);
    EXPECT_NEAR(result.loss_of(links[4]), 0.0, 0.04);
}

TEST_F(InferenceFixture, MixedLossesResolveSimultaneously) {
    const auto result =
        infer({{links[1], 0.15}, {links[3], 0.20}, {links[5], 0.10}});
    EXPECT_NEAR(result.loss_of(links[1]), 0.15, 0.05);
    EXPECT_NEAR(result.loss_of(links[3]), 0.20, 0.06);
    EXPECT_NEAR(result.loss_of(links[5]), 0.10, 0.05);
    EXPECT_NEAR(result.loss_of(links[4]), 0.0, 0.04);
}

TEST_F(InferenceFixture, PaperAccuracyClaimOnModerateLoss) {
    // Duffield et al. report inferred rates within ~1% of actual; with 4000
    // stripes we hold a comparable bound on this small tree.
    const auto result = infer({{links[1], 0.05}}, 8000);
    EXPECT_NEAR(result.loss_of(links[1]), 0.05, 0.015);
}

TEST_F(InferenceFixture, DeadSubtreeReportsFullLoss) {
    const auto result = infer({{links[2], 1.0}});
    EXPECT_NEAR(result.loss_of(links[2]), 1.0, 1e-6);
}

TEST_F(InferenceFixture, ChainLossAttributedWithChainLength) {
    // The root chain 0->1 is a single-child chain ending at branch router 1,
    // so its link is fully identifiable (chain length 1).  Check bookkeeping.
    const auto result = infer({{links[0], 0.2}});
    for (const auto& e : result.links) {
        if (e.link == links[0]) {
            EXPECT_EQ(e.chain_length, 1);
            EXPECT_NEAR(e.loss, 0.2, 0.05);
        }
    }
}

TEST_F(InferenceFixture, CumulativePassesAreMonotoneDownTree) {
    const auto result = infer({{links[1], 0.2}, {links[3], 0.2}});
    const auto& nodes = tree->nodes();
    for (std::size_t k = 1; k < nodes.size(); ++k) {
        const auto parent = static_cast<std::size_t>(nodes[k].parent);
        EXPECT_LE(result.cumulative_pass[k],
                  result.cumulative_pass[parent] + 1e-9);
    }
}

TEST_F(InferenceFixture, RejectsEmptyProbeSet) {
    EXPECT_THROW(infer_link_loss(*tree, {}), std::invalid_argument);
}

TEST(InferenceChain, MultiLinkChainSharesAggregateLoss) {
    // Root -> r1 -> r2 -> branch -> {leafA, leafB}: the two chain links
    // (root-r1, r1-r2) are individually unidentifiable; both must carry the
    // chain's aggregate loss with chain_length == 3 (including r2->branch).
    net::Topology topo;
    for (int i = 0; i < 6; ++i) topo.add_router(net::RouterTier::kCore);
    const auto l0 = topo.add_link(0, 1);
    const auto l1 = topo.add_link(1, 2);
    const auto l2 = topo.add_link(2, 3);
    const auto l3 = topo.add_link(3, 4);
    const auto l4 = topo.add_link(3, 5);
    const net::PathOracle oracle(topo);
    const std::vector<net::RouterId> dsts{4, 5};
    const ProbeTree tree(0, oracle.paths_from(0, dsts));

    util::Rng rng(2);
    const auto pass = [&](net::LinkId l, util::SimTime) {
        return l == l1 ? 0.8 : 1.0;
    };
    const auto session = run_heavyweight_session(
        tree, pass, 0, HeavyweightParams{.probe_count = 6000}, {}, rng);
    const auto result = infer_link_loss(tree, session.probes);

    EXPECT_NEAR(result.loss_of(l0), 0.2, 0.05);
    EXPECT_NEAR(result.loss_of(l1), 0.2, 0.05);
    EXPECT_NEAR(result.loss_of(l2), 0.2, 0.05);
    for (const auto& e : result.links) {
        if (e.link == l0 || e.link == l1 || e.link == l2) {
            EXPECT_EQ(e.chain_length, 3);
        }
        if (e.link == l3 || e.link == l4) {
            EXPECT_EQ(e.chain_length, 1);
            EXPECT_NEAR(e.loss, 0.0, 0.04);
        }
    }
}

}  // namespace
}  // namespace concilium::tomography
