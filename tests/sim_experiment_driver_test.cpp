#include "sim/experiment_driver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "util/spans.h"
#include "util/stats.h"

namespace concilium::sim {
namespace {

// A deterministic stand-in for a Monte-Carlo trial: a few draws, one value.
double noisy_trial(std::uint64_t trial, util::Rng& rng) {
    double acc = static_cast<double>(trial);
    for (int i = 0; i < 8; ++i) acc += rng.uniform(0.0, 1.0);
    return acc;
}

TEST(ExperimentDriver, ResolvedJobsIsNeverZero) {
    EXPECT_GE(ExperimentDriver(1, 0).jobs(), 1u);
    EXPECT_EQ(ExperimentDriver(1, 3).jobs(), 3u);
}

TEST(ExperimentDriver, MergeSeesTrialsInOrderAtAnyWorkerCount) {
    for (const std::size_t jobs : {1u, 2u, 4u, 7u}) {
        const ExperimentDriver driver(11, jobs);
        std::vector<std::uint64_t> order;
        driver.run(100, noisy_trial,
                   [&](std::uint64_t i, double&&) { order.push_back(i); });
        ASSERT_EQ(order.size(), 100u);
        for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
    }
}

TEST(ExperimentDriver, MergedResultsIdenticalJobs1VsJobs4) {
    // The tentpole guarantee: the merged aggregate is bit-identical no
    // matter how the trials were scheduled across workers.
    const auto aggregate = [](std::size_t jobs) {
        const ExperimentDriver driver(42, jobs);
        util::OnlineMoments moments;
        util::Histogram hist(0.0, 60.0, 30);
        driver.run(500, noisy_trial, [&](std::uint64_t, double&& v) {
            moments.add(v);
            hist.add(v);
        });
        return std::pair(moments, hist);
    };
    const auto [m1, h1] = aggregate(1);
    const auto [m4, h4] = aggregate(4);
    EXPECT_EQ(m1.count(), m4.count());
    EXPECT_EQ(m1.mean(), m4.mean());          // bitwise, not approximate
    EXPECT_EQ(m1.variance(), m4.variance());
    ASSERT_EQ(h1.bins(), h4.bins());
    EXPECT_EQ(h1.total(), h4.total());
    for (std::size_t b = 0; b < h1.bins(); ++b) {
        EXPECT_EQ(h1.count(b), h4.count(b)) << "bin " << b;
    }
}

TEST(ExperimentDriver, TrialRngIsAPureFunctionOfSeedAndIndex) {
    const ExperimentDriver driver(7, 4);
    std::vector<double> first_draw(64);
    driver.run(
        64,
        [](std::uint64_t, util::Rng& rng) { return rng.uniform(0.0, 1.0); },
        [&](std::uint64_t i, double&& v) { first_draw[i] = v; });
    // Any thread (here: the test thread) can reconstruct trial i's stream.
    for (std::uint64_t i = 0; i < 64; ++i) {
        util::Rng replay = driver.trial_rng(i);
        EXPECT_EQ(first_draw[i], replay.uniform(0.0, 1.0)) << "trial " << i;
    }
}

TEST(ExperimentDriver, SetupStreamDisjointFromTrialStreams) {
    const ExperimentDriver driver(3, 1);
    const auto setup_seed =
        util::Rng::substream_seed(3, 0xC011'EC70'0000'0000ULL);
    for (std::uint64_t i = 0; i < 10000; ++i) {
        ASSERT_NE(util::Rng::substream_seed(3, i), setup_seed);
    }
}

TEST(ExperimentDriver, RunUntilAcceptsSameSetAsSequentialLoop) {
    // Reference: the bespoke sequential rejection loop the benches used.
    const std::uint64_t seed = 99;
    const std::size_t target = 50;
    const auto accept = [](util::Rng& rng) { return rng.bernoulli(0.3); };
    std::vector<std::uint64_t> expected;
    for (std::uint64_t q = 0; expected.size() < target; ++q) {
        util::Rng rng = util::Rng::substream(seed, q);
        if (accept(rng)) expected.push_back(q);
    }

    for (const std::size_t jobs : {1u, 4u}) {
        const ExperimentDriver driver(seed, jobs);
        std::vector<std::uint64_t> accepted;
        driver.run_until(
            target,
            [&](std::uint64_t, util::Rng& rng) { return accept(rng); },
            [&](std::uint64_t i, bool&& ok) {
                if (ok) accepted.push_back(i);
                return ok;
            });
        EXPECT_EQ(accepted, expected) << "jobs=" << jobs;
    }
}

TEST(ExperimentDriver, MergeRunsOnTheCallingThread) {
    const ExperimentDriver driver(5, 4);
    const auto caller = std::this_thread::get_id();
    bool all_on_caller = true;
    driver.run(
        64, [](std::uint64_t, util::Rng&) { return 0; },
        [&](std::uint64_t, int&&) {
            all_on_caller &= std::this_thread::get_id() == caller;
        });
    EXPECT_TRUE(all_on_caller);
}

TEST(ExperimentDriver, TrialExceptionsPropagateFromWorkers) {
    const ExperimentDriver driver(5, 4);
    const auto boom = [](std::uint64_t i, util::Rng&) -> int {
        if (i == 17) throw std::runtime_error("trial 17 failed");
        return 0;
    };
    EXPECT_THROW(
        driver.run(64, boom, [](std::uint64_t, int&&) {}),
        std::runtime_error);
}

TEST(ExperimentDriver, ShardRngDisjointFromTrialAndSetupStreams) {
    const ExperimentDriver driver(9, 1);
    auto shard = driver.shard_rng(0, 0);
    auto trial = driver.trial_rng(0);
    auto setup = driver.setup_rng();
    EXPECT_NE(shard.uniform_u64(), trial.uniform_u64());
    EXPECT_NE(driver.shard_rng(0, 0).uniform_u64(), setup.uniform_u64());
    // Distinct (trial, shard) pairs get distinct streams.
    EXPECT_NE(driver.shard_rng(0, 1).uniform_u64(),
              driver.shard_rng(1, 0).uniform_u64());
}

TEST(ExperimentDriver, RunShardsMergesInOrderIdenticalAcrossJobs) {
    // The intra-trial fan-out carries the same guarantee as run(): shard
    // substreams + ordered merge => byte-identical output at any worker
    // count.
    const auto collect = [](std::size_t jobs) {
        const ExperimentDriver driver(11, jobs);
        std::vector<std::uint64_t> merged;
        driver.run_shards(
            3, 64,
            [](std::uint64_t s, util::Rng& rng) {
                return (s << 32) ^ (rng.uniform_u64() & 0xFFFFFFFFULL);
            },
            [&](std::uint64_t s, std::uint64_t&& r) {
                EXPECT_EQ(merged.size(), s);  // strict shard order
                merged.push_back(r);
            });
        return merged;
    };
    const auto j1 = collect(1);
    const auto j4 = collect(4);
    ASSERT_EQ(j1.size(), 64u);
    EXPECT_EQ(j1, j4);
}

TEST(ExperimentDriver, SimSpanSequenceIdenticalAcrossJobs) {
    // The span recorder's cross-jobs guarantee, end to end: trials emit
    // sim-clock spans under the driver's TrialScope, and the deterministic
    // identity (scope-within-run, seq, type, times, causal) must not depend
    // on which worker ran which trial.  Scope blocks (the high 32 bits) are
    // allocated per run, so mask them off before comparing runs.
    auto& recorder = util::spans::Recorder::global();
    recorder.enable();
    using Key = std::tuple<std::uint64_t, std::uint32_t, int, std::int64_t,
                           std::int64_t, std::uint64_t, std::int64_t>;
    const auto run_and_collect = [&](std::size_t jobs) {
        recorder.clear();
        const ExperimentDriver driver(21, jobs);
        driver.run(
            48,
            [](std::uint64_t i, util::Rng& rng) {
                const auto t = static_cast<util::SimTime>(
                    rng.uniform(0.0, 1e6));
                util::spans::sim_span(util::spans::SpanType::kProbeRound, t,
                                      t + 50, i, static_cast<std::int64_t>(i));
                util::spans::sim_instant(util::spans::SpanType::kJudgment,
                                         t + 50, i);
                return 0;
            },
            [](std::uint64_t, int&&) {});
        std::vector<Key> keys;
        for (const auto& e : recorder.collect()) {
            if (e.sim_begin == util::spans::kNoClock) continue;  // wall-only
            keys.emplace_back(e.scope & 0xffffffffu, e.seq,
                              static_cast<int>(e.type), e.sim_begin,
                              e.sim_end, e.causal, e.arg);
        }
        std::sort(keys.begin(), keys.end());
        return keys;
    };
    const auto j1 = run_and_collect(1);
    const auto j4 = run_and_collect(4);
    recorder.clear();
    recorder.disable();
    ASSERT_EQ(j1.size(), 96u);  // 2 sim events per trial
    EXPECT_EQ(j1, j4);
}

TEST(ExperimentDriver, ZeroTrialsIsANoOp) {
    const ExperimentDriver driver(5, 4);
    bool touched = false;
    driver.run(
        0,
        [&](std::uint64_t, util::Rng&) {
            touched = true;
            return 0;
        },
        [&](std::uint64_t, int&&) { touched = true; });
    EXPECT_FALSE(touched);
}

}  // namespace
}  // namespace concilium::sim
