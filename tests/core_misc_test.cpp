#include <gtest/gtest.h>

#include "core/bandwidth.h"
#include "core/reputation.h"

namespace concilium::core {
namespace {

const util::NodeId kAlice = util::NodeId::from_hex("0a");
const util::NodeId kBob = util::NodeId::from_hex("0b");
const util::NodeId kCarol = util::NodeId::from_hex("0c");

TEST(ReputationBook, CountsDistinctVoters) {
    ReputationBook book;
    EXPECT_EQ(book.votes_against(kBob), 0);
    book.cast_vote(kAlice, kBob, 0);
    book.cast_vote(kAlice, kBob, 5);  // re-vote does not double count
    EXPECT_EQ(book.votes_against(kBob), 1);
    book.cast_vote(kCarol, kBob, 6);
    EXPECT_EQ(book.votes_against(kBob), 2);
    EXPECT_EQ(book.votes_against(kAlice), 0);
}

TEST(ReputationBook, PoorPeerThreshold) {
    ReputationBook book;
    book.cast_vote(kAlice, kBob, 0);
    EXPECT_FALSE(book.poor_peer(kBob, 2));
    book.cast_vote(kCarol, kBob, 1);
    EXPECT_TRUE(book.poor_peer(kBob, 2));
}

TEST(ReputationBook, VotesExpireAfterWindow) {
    using util::kMinute;
    ReputationBook book(/*vote_expiry=*/10 * kMinute);
    EXPECT_EQ(book.vote_expiry(), 10 * kMinute);
    book.cast_vote(kAlice, kBob, 0);
    book.cast_vote(kCarol, kBob, 5 * kMinute);
    EXPECT_EQ(book.votes_against(kBob, 9 * kMinute), 2);
    // Alice's vote ages out first, then Carol's.
    EXPECT_EQ(book.votes_against(kBob, 12 * kMinute), 1);
    EXPECT_EQ(book.votes_against(kBob, 16 * kMinute), 0);
    // The lifetime (audit) count never decays.
    EXPECT_EQ(book.votes_against(kBob), 2);
}

TEST(ReputationBook, ReVoteRefreshesExpiry) {
    using util::kMinute;
    ReputationBook book(/*vote_expiry=*/10 * kMinute);
    book.cast_vote(kAlice, kBob, 0);
    book.cast_vote(kAlice, kBob, 8 * kMinute);  // still one distinct voter
    EXPECT_EQ(book.votes_against(kBob, 15 * kMinute), 1);
    EXPECT_EQ(book.votes_against(kBob), 1);
}

TEST(ReputationBook, PoorPeerHonorsExpiry) {
    using util::kMinute;
    ReputationBook book(/*vote_expiry=*/10 * kMinute);
    book.cast_vote(kAlice, kBob, 0);
    book.cast_vote(kCarol, kBob, kMinute);
    EXPECT_TRUE(book.poor_peer(kBob, 2, 5 * kMinute));
    // A node that stopped refusing commitments long ago regains standing...
    EXPECT_FALSE(book.poor_peer(kBob, 2, 30 * kMinute));
    // ...though the lifetime check still remembers.
    EXPECT_TRUE(book.poor_peer(kBob, 2));
}

TEST(ReputationBook, ZeroExpiryNeverDecays) {
    ReputationBook book(/*vote_expiry=*/0);
    book.cast_vote(kAlice, kBob, 0);
    EXPECT_EQ(book.votes_against(kBob, 400 * util::kHour), 1);
    EXPECT_TRUE(book.poor_peer(kBob, 1, 400 * util::kHour));
}

TEST(Sanctions, NoAccusationsNoSanctions) {
    for (const auto policy :
         {SanctionPolicy::kNone, SanctionPolicy::kDistrustSensitive,
          SanctionPolicy::kUniversalBlacklist}) {
        const auto d = evaluate_sanction(policy, 0, 3);
        EXPECT_TRUE(d.allow_peering);
        EXPECT_TRUE(d.allow_sensitive_messages);
        EXPECT_TRUE(d.keep_in_leaf_set);
    }
}

TEST(Sanctions, DistrustWithholdsSensitiveOnly) {
    const auto d =
        evaluate_sanction(SanctionPolicy::kDistrustSensitive, 1, 3);
    EXPECT_TRUE(d.allow_peering);
    EXPECT_FALSE(d.allow_sensitive_messages);
}

TEST(Sanctions, BlacklistRequiresThreshold) {
    const auto below =
        evaluate_sanction(SanctionPolicy::kUniversalBlacklist, 2, 3);
    EXPECT_TRUE(below.allow_peering);
    const auto at =
        evaluate_sanction(SanctionPolicy::kUniversalBlacklist, 3, 3);
    EXPECT_FALSE(at.allow_peering);
}

TEST(Sanctions, LeafSetMembershipNeverRevokedLocally) {
    // Section 3.7: local leaf-set eviction causes inconsistent routing.
    const auto d =
        evaluate_sanction(SanctionPolicy::kUniversalBlacklist, 10, 3);
    EXPECT_TRUE(d.keep_in_leaf_set);
}

TEST(BandwidthModel, RoutingPeersNearPaperValue) {
    // Section 4.4: "In a 100,000 node overlay, the average node has 77
    // entries in its local routing state" (mu_phi + 16).
    const BandwidthModel model;
    EXPECT_NEAR(model.expected_routing_peers(100000), 77.0, 3.0);
}

TEST(BandwidthModel, AdvertisementNearElevenAndAHalfKilobytes) {
    // "an entire advertised routing table is about 11.5 kilobytes"
    const BandwidthModel model;
    const double bytes = model.advertisement_bytes(100000);
    EXPECT_GT(bytes, 10000.0);
    EXPECT_LT(bytes, 12500.0);
}

TEST(BandwidthModel, HeavyweightProbeNearPaperValue) {
    // C(77, 2) * 100 stripes * 2 probes * 30 bytes = 17,556,000 bytes
    // ~= 16.7 MiB ("16.7 MB of outgoing network traffic").
    const double bytes = BandwidthModel::heavyweight_probe_bytes(77);
    EXPECT_DOUBLE_EQ(bytes, 2926.0 * 100 * 2 * 30);
    EXPECT_NEAR(bytes / (1024.0 * 1024.0), 16.7, 0.1);
}

TEST(BandwidthModel, ProbeCostScalesQuadratically) {
    const double small = BandwidthModel::heavyweight_probe_bytes(10);
    const double big = BandwidthModel::heavyweight_probe_bytes(20);
    EXPECT_NEAR(big / small, 190.0 / 45.0, 1e-9);
}

TEST(BandwidthModel, JumpEntriesGrowWithPopulation) {
    const BandwidthModel model;
    EXPECT_LT(model.expected_jump_entries(1000),
              model.expected_jump_entries(100000));
}

}  // namespace
}  // namespace concilium::core
