// Parameterized property sweeps over the core mathematical machinery.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/blame.h"
#include "core/verdicts.h"
#include "overlay/density.h"
#include "util/rng.h"
#include "util/stats.h"

namespace concilium {
namespace {

// ---------------------------------------------------------- binomial tails

class BinomialTailProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BinomialTailProperty, TailsPartitionAndAreMonotone) {
    const auto [n, p] = GetParam();
    double prev_upper = 1.0 + 1e-12;
    for (int k = 0; k <= n + 1; ++k) {
        const double upper = util::binomial_upper_tail(n, k, p);
        const double lower = util::binomial_lower_tail_exclusive(n, k, p);
        EXPECT_NEAR(upper + lower, 1.0, 1e-9);
        EXPECT_LE(upper, prev_upper + 1e-12);
        EXPECT_GE(upper, -1e-12);
        prev_upper = upper;
    }
}

TEST_P(BinomialTailProperty, MeanFromTailsMatchesNP) {
    const auto [n, p] = GetParam();
    // E[X] = sum_{k>=1} Pr(X >= k).
    double mean = 0.0;
    for (int k = 1; k <= n; ++k) mean += util::binomial_upper_tail(n, k, p);
    EXPECT_NEAR(mean, n * p, 1e-6 * n + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinomialTailProperty,
    ::testing::Combine(::testing::Values(1, 5, 20, 100),
                       ::testing::Values(0.0, 0.02, 0.3, 0.5, 0.9, 1.0)));

// ----------------------------------------------------- occupancy model

class OccupancyModelProperty : public ::testing::TestWithParam<int> {};

TEST_P(OccupancyModelProperty, ModelTracksMonteCarlo) {
    const int n = GetParam();
    const util::OverlayGeometry geom{.digits = 32};
    const auto model = overlay::occupancy_model(n, geom);
    util::Rng rng(1000 + n);
    const auto mc = overlay::simulate_table_occupancy(n, geom, 150, rng);
    EXPECT_NEAR(mc.mean(), model.mean_count(),
                0.2 * model.mean_count() + 1.5)
        << "N=" << n;
}

TEST_P(OccupancyModelProperty, MeanIncreasesWithPopulation) {
    const int n = GetParam();
    const util::OverlayGeometry geom{.digits = 32};
    EXPECT_LT(overlay::occupancy_model(n, geom).mean_count(),
              overlay::occupancy_model(4 * n, geom).mean_count());
}

INSTANTIATE_TEST_SUITE_P(Sweep, OccupancyModelProperty,
                         ::testing::Values(100, 500, 1131, 4000, 20000));

// ------------------------------------------------- density test errors

class DensityErrorProperty : public ::testing::TestWithParam<double> {};

TEST_P(DensityErrorProperty, ErrorsAreProbabilitiesAndMoveOppositeWays) {
    const double gamma = GetParam();
    const util::OverlayGeometry geom{.digits = 32};
    const double n = 5000;
    const double fp = overlay::density_false_positive(gamma, n, n, geom);
    const double fn =
        overlay::density_false_negative(gamma, n, 0.2 * n, geom);
    EXPECT_GE(fp, 0.0);
    EXPECT_LE(fp, 1.0);
    EXPECT_GE(fn, 0.0);
    EXPECT_LE(fn, 1.0);
    // Tightening gamma by 0.3 raises FP and lowers FN (weak monotonicity).
    const double fp2 =
        overlay::density_false_positive(gamma + 0.3, n, n, geom);
    const double fn2 =
        overlay::density_false_negative(gamma + 0.3, n, 0.2 * n, geom);
    EXPECT_LE(fp2, fp + 1e-9);
    EXPECT_GE(fn2, fn - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DensityErrorProperty,
                         ::testing::Values(1.0, 1.2, 1.5, 1.8, 2.2, 3.0));

// ------------------------------------------------------------ blame

class BlameAccuracyProperty : public ::testing::TestWithParam<double> {};

TEST_P(BlameAccuracyProperty, BlameIsBoundedAndAccuracySharpensIt) {
    const double a = GetParam();
    core::BlameParams params;
    params.probe_accuracy = a;
    const std::vector<net::LinkId> path{1};
    // One down-vote: blame = 1 - a.
    const std::vector<core::ProbeResult> down{
        {util::NodeId::from_hex("01"), 1, false, 0}};
    const auto b_down = core::compute_blame(path, down, 0,
                                            util::NodeId::from_hex("bb"),
                                            params);
    EXPECT_NEAR(b_down.blame, 1.0 - a, 1e-12);
    // One up-vote: blame = a.
    const std::vector<core::ProbeResult> up{
        {util::NodeId::from_hex("01"), 1, true, 0}};
    const auto b_up = core::compute_blame(path, up, 0,
                                          util::NodeId::from_hex("bb"),
                                          params);
    EXPECT_NEAR(b_up.blame, a, 1e-12);
    EXPECT_GE(b_up.blame, b_down.blame);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BlameAccuracyProperty,
                         ::testing::Values(0.5, 0.6, 0.75, 0.9, 0.99, 1.0));

class BlameMixProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BlameMixProperty, MatchesClosedFormVoteAverage) {
    const auto [downs, ups] = GetParam();
    if (downs + ups == 0) GTEST_SKIP();
    core::BlameParams params;  // a = 0.9
    const std::vector<net::LinkId> path{1};
    std::vector<core::ProbeResult> probes;
    for (int i = 0; i < downs; ++i) {
        probes.push_back({util::NodeId::from_hex("a" + std::to_string(i)), 1,
                          false, 0});
    }
    for (int i = 0; i < ups; ++i) {
        probes.push_back({util::NodeId::from_hex("b" + std::to_string(i)), 1,
                          true, 0});
    }
    const auto b = core::compute_blame(path, probes, 0,
                                       util::NodeId::from_hex("ee"), params);
    const double expected_confidence =
        (downs * 0.9 + ups * 0.1) / static_cast<double>(downs + ups);
    EXPECT_NEAR(b.path_bad_confidence, expected_confidence, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BlameMixProperty,
                         ::testing::Combine(::testing::Values(0, 1, 3, 9),
                                            ::testing::Values(0, 1, 3, 9)));

// ----------------------------------------------- accusation window errors

class AccusationWindowProperty
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(AccusationWindowProperty, MinimalThresholdIsActuallyMinimal) {
    const auto [w, p_good, p_faulty] = GetParam();
    const double bound = 0.01;
    const auto m = core::minimal_accusation_threshold(w, p_good, p_faulty,
                                                      bound);
    if (!m.has_value()) GTEST_SKIP();
    EXPECT_LT(core::accusation_false_positive(w, *m, p_good), bound);
    EXPECT_LT(core::accusation_false_negative(w, *m, p_faulty), bound);
    if (*m > 1) {
        const bool prev_ok =
            core::accusation_false_positive(w, *m - 1, p_good) < bound &&
            core::accusation_false_negative(w, *m - 1, p_faulty) < bound;
        EXPECT_FALSE(prev_ok);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AccusationWindowProperty,
    ::testing::Combine(::testing::Values(50, 100, 200),
                       ::testing::Values(0.018, 0.084, 0.15),
                       ::testing::Values(0.938, 0.713, 0.5)));

// -------------------------------------------- Monte Carlo window checks

TEST(AccusationWindowMonteCarlo, BinomialModelMatchesSimulatedLedger) {
    // Feed a VerdictLedger i.i.d. guilty verdicts at rate p and compare the
    // accusation frequency after w verdicts with the binomial prediction.
    const int w = 60;
    const int m = 8;
    const double p = 0.1;
    util::Rng rng(123);
    core::VerdictParams params;
    params.window = w;
    params.accusation_threshold = m;
    int triggered = 0;
    const int trials = 3000;
    const auto suspect = util::NodeId::from_hex("bb");
    for (int trial = 0; trial < trials; ++trial) {
        core::VerdictLedger ledger(params);
        bool fired = false;
        for (int i = 0; i < w; ++i) {
            const double blame = rng.bernoulli(p) ? 1.0 : 0.0;
            if (ledger.record(suspect, blame, i).accusation_triggered) {
                fired = true;
            }
        }
        if (fired) ++triggered;
    }
    const double predicted = util::binomial_upper_tail(w, m, p);
    EXPECT_NEAR(static_cast<double>(triggered) / trials, predicted,
                3.0 * std::sqrt(predicted * (1 - predicted) / trials) + 0.01);
}

}  // namespace
}  // namespace concilium
