// End-to-end integration: the full Concilium pipeline on a simulated world.
//
// These tests wire together every layer -- topology, overlay, tomography,
// blame, verdicts, accusations, DHT -- and replay the paper's running
// example: a message from A through B, C toward Z is dropped by D; the
// accusation chain must exonerate B and C and stick to D, and the final
// self-verifying accusation must check out for an arbitrary third party
// fetching it from the DHT.

#include <gtest/gtest.h>

#include <unordered_map>

#include "core/accusation.h"
#include "core/steward.h"
#include "core/validation.h"
#include "dht/dht.h"
#include "sim/experiments.h"
#include "sim/scenario.h"

namespace concilium {
namespace {

using overlay::MemberIndex;

struct IntegrationFixture : ::testing::Test {
    IntegrationFixture() : scenario(make_params()) {
        const auto& net = scenario.overlay_net();
        for (MemberIndex i = 0; i < net.size(); ++i) {
            keys_by_id.emplace(net.member(i).id(),
                               net.member(i).keys.public_key());
        }
    }

    static sim::ScenarioParams make_params() {
        sim::ScenarioParams p;
        p.topology = net::small_params();
        p.topology.end_hosts = 400;
        p.overlay_nodes_override = 60;
        p.duration = 60 * util::kMinute;
        p.seed = 77;
        return p;
    }

    core::AccusationVerifier::KeyOfFn key_of() {
        return [this](const util::NodeId& id)
                   -> std::optional<crypto::PublicKey> {
            const auto it = keys_by_id.find(id);
            if (it == keys_by_id.end()) return std::nullopt;
            return it->second;
        };
    }

    /// Finds a route of length >= 4 whose hop-to-hop IP paths all exist and
    /// are all up at time t.
    std::optional<std::vector<MemberIndex>> find_clean_route(
        util::SimTime t, util::Rng& rng) {
        const auto& net = scenario.overlay_net();
        for (int attempt = 0; attempt < 500; ++attempt) {
            const auto a =
                static_cast<MemberIndex>(rng.uniform_index(net.size()));
            const auto key = util::NodeId::random(rng);
            std::vector<MemberIndex> hops;
            try {
                hops = net.route(a, key);
            } catch (const std::runtime_error&) {
                continue;
            }
            if (hops.size() < 4) continue;
            bool ok = true;
            for (std::size_t i = 0; ok && i + 1 < hops.size(); ++i) {
                const auto slot = scenario.leaf_slot(hops[i], hops[i + 1]);
                if (!slot.has_value()) {
                    ok = false;
                    break;
                }
                if (scenario.path_bad(
                        scenario.path_links(hops[i], hops[i + 1]), t)) {
                    ok = false;
                }
            }
            if (ok) return hops;
        }
        return std::nullopt;
    }

    /// Builds the BlameEvidence `judge` (route position j) holds against
    /// j+1 at time t, bundling real gathered probes as signed snapshots.
    core::BlameEvidence build_evidence(const std::vector<MemberIndex>& hops,
                                       std::size_t j, util::SimTime t,
                                       std::uint64_t message_id) {
        const auto& net = scenario.overlay_net();
        const MemberIndex judge = hops[j];
        const MemberIndex suspect = hops[j + 1];
        core::BlameEvidence ev;
        ev.judge = net.member(judge).id();
        ev.suspect = net.member(suspect).id();
        ev.message_id = message_id;
        ev.message_time = t;
        const auto judge_links = scenario.path_links(judge, suspect);
        ev.path_links.assign(judge_links.begin(), judge_links.end());
        // One snapshot per reporter, carrying that reporter's link verdicts.
        const auto probes = scenario.gather_probes(
            judge, ev.path_links, t, sim::Scenario::CollusionStance::kNone,
            message_id * 1000 + j);
        std::unordered_map<util::NodeId,
                           std::vector<tomography::LinkObservation>,
                           util::NodeIdHash>
            by_reporter;
        std::unordered_map<util::NodeId, util::SimTime, util::NodeIdHash>
            probe_time;
        for (const auto& p : probes) {
            by_reporter[p.reporter].push_back(
                tomography::LinkObservation{p.link, p.link_up});
            probe_time[p.reporter] = p.at;
        }
        for (auto& [reporter, observations] : by_reporter) {
            tomography::TomographicSnapshot snap;
            snap.origin = reporter;
            snap.probed_at = probe_time[reporter];
            snap.links = std::move(observations);
            const auto idx = net.index_of(reporter);
            snap.signature =
                net.member(*idx).keys.sign(snap.signed_payload());
            ev.snapshots.push_back(std::move(snap));
        }
        ev.commitment = core::make_forwarding_commitment(
            ev.judge, ev.suspect, net.member(hops.back()).id(), message_id,
            t, net.member(suspect).keys);
        ev.claimed_blame =
            core::compute_blame(ev.path_links,
                                core::probes_from_snapshots(ev.snapshots), t,
                                ev.suspect, scenario.params().blame)
                .blame;
        ev.judge_signature = net.member(judge).keys.sign(ev.signed_payload());
        return ev;
    }

    sim::Scenario scenario;
    std::unordered_map<util::NodeId, crypto::PublicKey, util::NodeIdHash>
        keys_by_id;
};

TEST_F(IntegrationFixture, RoutingStateValidationPassesForHonestMembers) {
    const auto& net = scenario.overlay_net();
    const util::SimTime now = 10 * util::kMinute;
    core::ValidationParams params;
    params.geometry = net.params().geometry;
    params.gamma = 2.0;  // small overlays have high density variance
    crypto::KeyRegistry registry;
    for (MemberIndex i = 0; i < net.size(); ++i) {
        registry.register_key(net.member(i).keys);
    }
    int ok = 0;
    for (MemberIndex i = 0; i < 20; ++i) {
        const auto ad = overlay::make_advertisement(
            net, i, now,
            [&](MemberIndex) { return now - 30 * util::kSecond; });
        const auto verdict = core::validate_advertisement(
            ad, net.secure_table(0).density(), now, params,
            [this](const util::NodeId& id)
                -> std::optional<crypto::PublicKey> {
                const auto it = keys_by_id.find(id);
                if (it == keys_by_id.end()) return std::nullopt;
                return it->second;
            },
            registry);
        if (verdict == core::AdvertisementCheck::kOk) ++ok;
    }
    EXPECT_GE(ok, 18);  // density noise may flag a straggler
}

TEST_F(IntegrationFixture, DownstreamDropperIsBlamedAndExonerationHolds) {
    util::Rng rng(5);
    const util::SimTime t = 20 * util::kMinute;
    const auto route = find_clean_route(t, rng);
    ASSERT_TRUE(route.has_value()) << "no clean route found";
    const auto& hops = *route;
    // The penultimate forwarder drops the message.
    const std::size_t dropper = hops.size() - 2;

    const auto blame_fn = [&](std::size_t judge, std::size_t suspect) {
        const auto path = scenario.path_links(hops[judge], hops[suspect]);
        const auto probes = scenario.gather_probes(
            hops[judge], path, t, sim::Scenario::CollusionStance::kNone,
            9000 + judge);
        return core::compute_blame(path, probes, t,
                                   scenario.overlay_net()
                                       .member(hops[suspect])
                                       .id(),
                                   scenario.params().blame)
            .blame;
    };
    const auto outcome = core::attribute_fault(
        hops.size(), dropper, blame_fn, core::VerdictParams{});
    // With all hop paths verified clean, blame should usually travel all
    // the way to the dropper.  (Probe noise can occasionally blame the
    // network; the statistical rates are covered by the Figure 5 tests.)
    if (!outcome.network_blamed) {
        EXPECT_EQ(*outcome.blamed_hop, dropper);
    }
}

TEST_F(IntegrationFixture, FullAccusationLifecycleThroughDht) {
    util::Rng rng(6);
    const util::SimTime t = 30 * util::kMinute;
    const auto route = find_clean_route(t, rng);
    ASSERT_TRUE(route.has_value());
    const auto& hops = *route;
    const auto& net = scenario.overlay_net();
    const std::uint64_t message_id = 424242;

    // A's original accusation against B, then revisions B->C and C->D.
    core::FaultAccusation acc;
    acc.accuser = net.member(hops[0]).id();
    acc.evidence.push_back(build_evidence(hops, 0, t, message_id));
    acc.signature =
        net.member(hops[0]).keys.sign(acc.signed_payload());
    const std::size_t revisions = std::min<std::size_t>(2, hops.size() - 2);
    for (std::size_t j = 1; j <= revisions; ++j) {
        auto ev = build_evidence(hops, j, t, message_id);
        if (ev.claimed_blame <
            core::VerdictParams{}.guilty_blame_threshold) {
            break;  // noise produced an acquittal; chain stops here
        }
        core::amend_accusation(acc, std::move(ev),
                               net.member(hops[0]).keys);
    }

    // Store in the DHT keyed by the accused node's public key.
    dht::Dht repository(net, 4);
    const auto accused_idx = net.index_of(acc.accused());
    ASSERT_TRUE(accused_idx.has_value());
    const auto key = core::FaultAccusation::dht_key(
        net.member(*accused_idx).keys.public_key());
    repository.put(hops[0], key, acc.serialize());

    // An unrelated third party fetches and independently verifies it.
    const MemberIndex third_party = (hops[0] + 13) % net.size();
    const auto fetched = repository.get(third_party, key);
    ASSERT_EQ(fetched.values.size(), 1u);
    const auto parsed = core::FaultAccusation::deserialize(fetched.values[0]);

    crypto::KeyRegistry registry;
    for (MemberIndex i = 0; i < net.size(); ++i) {
        registry.register_key(net.member(i).keys);
    }
    const core::AccusationVerifier verifier(
        registry, key_of(), scenario.params().blame, core::VerdictParams{});
    EXPECT_EQ(verifier.verify(parsed), core::AccusationCheck::kOk);
    EXPECT_EQ(parsed.accused(), acc.accused());

    // A tampered copy must not verify.
    auto bytes = fetched.values[0];
    bytes[bytes.size() / 2] ^= 0x01;
    bool rejected = false;
    try {
        const auto tampered = core::FaultAccusation::deserialize(bytes);
        rejected =
            verifier.verify(tampered) != core::AccusationCheck::kOk;
    } catch (const std::exception&) {
        rejected = true;  // malformed enough to fail parsing
    }
    EXPECT_TRUE(rejected);
}

TEST_F(IntegrationFixture, NetworkFaultsAreNotPinnedOnForwarders) {
    // Sample drops caused purely by down links; the pipeline should blame
    // the network in the clear majority of cases.
    util::Rng rng(8);
    int network_blamed = 0;
    int cases = 0;
    for (int attempt = 0; attempt < 4000 && cases < 60; ++attempt) {
        const auto triple = scenario.sample_triple(rng);
        if (!triple) continue;
        const util::SimTime t = static_cast<util::SimTime>(rng.uniform(
            static_cast<double>(util::kMinute),
            static_cast<double>(scenario.params().duration - util::kMinute)));
        const auto path = scenario.path_links(triple->b, triple->c);
        if (!scenario.path_bad(path, t)) continue;  // want network faults
        ++cases;
        const auto probes = scenario.gather_probes(
            triple->a, path, t, sim::Scenario::CollusionStance::kNone,
            50000 + static_cast<std::uint64_t>(attempt));
        const auto blame = core::compute_blame(
            path, probes, t, scenario.overlay_net().member(triple->b).id(),
            scenario.params().blame);
        if (!core::is_guilty_verdict(blame.blame, core::VerdictParams{})) {
            ++network_blamed;
        }
    }
    ASSERT_GT(cases, 20);
    EXPECT_GT(static_cast<double>(network_blamed) / cases, 0.7);
}

}  // namespace
}  // namespace concilium
