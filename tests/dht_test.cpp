#include "dht/dht.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace concilium::dht {
namespace {

std::vector<std::uint8_t> blob(const std::string& s) {
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

struct DhtFixture : ::testing::Test {
    DhtFixture()
        : net(concilium::testing::make_overlay(120, 55)), dht(net, 4) {}

    overlay::OverlayNetwork net;
    Dht dht;
};

TEST_F(DhtFixture, PutThenGetReturnsValue) {
    const auto key = util::NodeId::from_hex("1234");
    dht.put(3, key, blob("accusation-1"));
    const auto result = dht.get(17, key);
    ASSERT_EQ(result.values.size(), 1u);
    EXPECT_EQ(result.values[0], blob("accusation-1"));
}

TEST_F(DhtFixture, GetOnEmptyKeyIsEmpty) {
    const auto result = dht.get(0, util::NodeId::from_hex("dead"));
    EXPECT_TRUE(result.values.empty());
}

TEST_F(DhtFixture, MultipleAccusersAccumulate) {
    const auto key = util::NodeId::from_hex("77");
    dht.put(1, key, blob("from-accuser-1"));
    dht.put(2, key, blob("from-accuser-2"));
    const auto result = dht.get(9, key);
    EXPECT_EQ(result.values.size(), 2u);
}

TEST_F(DhtFixture, DuplicatePutsStoredOnce) {
    const auto key = util::NodeId::from_hex("88");
    dht.put(1, key, blob("same"));
    dht.put(4, key, blob("same"));
    const auto result = dht.get(9, key);
    EXPECT_EQ(result.values.size(), 1u);
}

TEST_F(DhtFixture, ReplicaSetCentersOnKeyRoot) {
    const auto key = util::NodeId::from_hex("abcd");
    const auto replicas = dht.replica_set(key);
    EXPECT_EQ(replicas.size(), 4u);
    const auto root = net.root_of(key);
    EXPECT_NE(std::find(replicas.begin(), replicas.end(), root),
              replicas.end());
    // All replicas are either the root or its leaf neighbours.
    const auto& leaves = net.leaf_set(root);
    for (const auto r : replicas) {
        if (r == root) continue;
        const auto all = leaves.all();
        EXPECT_NE(std::find(all.begin(), all.end(), r), all.end());
    }
}

TEST_F(DhtFixture, ValuesSurviveSingleReplicaLoss) {
    // The union-read over the replica set tolerates one silent replica.
    const auto key = util::NodeId::from_hex("55aa");
    const auto put = dht.put(0, key, blob("replicated"));
    ASSERT_GE(put.replicas.size(), 2u);
    // Simulate one replica losing its store: read from the others only.
    std::size_t holding = 0;
    for (const auto r : put.replicas) {
        if (dht.stored_at(r) > 0) ++holding;
    }
    EXPECT_GE(holding, 2u);
}

TEST_F(DhtFixture, RoutesAreSecureOverlayRoutes) {
    const auto key = util::NodeId::from_hex("31337");
    const auto put = dht.put(5, key, blob("x"));
    EXPECT_EQ(put.route.front(), 5u);
    EXPECT_EQ(put.route.back(), net.root_of(key));
    const auto get = dht.get(6, key);
    EXPECT_EQ(get.route.front(), 6u);
    EXPECT_EQ(get.route.back(), net.root_of(key));
}

TEST_F(DhtFixture, StorageBalancesAcrossKeys) {
    util::Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        dht.put(0, util::NodeId::random(rng), blob("v" + std::to_string(i)));
    }
    std::size_t total = 0;
    std::size_t max_at_one = 0;
    for (overlay::MemberIndex m = 0; m < net.size(); ++m) {
        total += dht.stored_at(m);
        max_at_one = std::max(max_at_one, dht.stored_at(m));
    }
    EXPECT_EQ(total, 200u * 4u);  // replication factor 4
    // No single node should hold a wildly disproportionate share.
    EXPECT_LT(max_at_one, 60u);
}

TEST_F(DhtFixture, GetReturnsValuesInLexicographicOrder) {
    const auto key = util::NodeId::from_hex("99");
    dht.put(1, key, blob("bravo"));
    dht.put(2, key, blob("alpha"));
    dht.put(3, key, blob("charlie"));
    const auto result = dht.get(5, key);
    ASSERT_EQ(result.values.size(), 3u);
    EXPECT_EQ(result.values[0], blob("alpha"));
    EXPECT_EQ(result.values[1], blob("bravo"));
    EXPECT_EQ(result.values[2], blob("charlie"));
}

TEST(DhtQuota, PerWriterQuotaBoundsSpam) {
    const auto net = concilium::testing::make_overlay(120, 58);
    dht::Dht dht(net, 4, /*per_writer_quota=*/2);
    EXPECT_EQ(dht.per_writer_quota(), 2);
    const auto key = util::NodeId::from_hex("5a");
    EXPECT_TRUE(dht.put(7, key, blob("junk-1")).accepted);
    EXPECT_TRUE(dht.put(7, key, blob("junk-2")).accepted);
    // The spammer's third distinct value is refused everywhere ...
    EXPECT_FALSE(dht.put(7, key, blob("junk-3")).accepted);
    // ... but an honest accuser still gets through under the same key.
    EXPECT_TRUE(dht.put(8, key, blob("real-accusation")).accepted);
    const auto result = dht.get(9, key);
    ASSERT_EQ(result.values.size(), 3u);
    for (const auto& v : result.values) EXPECT_NE(v, blob("junk-3"));
}

TEST(DhtQuota, DuplicatePutsDoNotConsumeQuota) {
    const auto net = concilium::testing::make_overlay(120, 59);
    dht::Dht dht(net, 4, /*per_writer_quota=*/1);
    const auto key = util::NodeId::from_hex("5b");
    EXPECT_TRUE(dht.put(7, key, blob("same")).accepted);
    // Re-storing an identical value is idempotent, not a quota spend.
    EXPECT_TRUE(dht.put(7, key, blob("same")).accepted);
    EXPECT_FALSE(dht.put(7, key, blob("different")).accepted);
    EXPECT_EQ(dht.get(9, key).values.size(), 1u);
}

TEST(DhtQuota, ZeroQuotaIsUnlimited) {
    const auto net = concilium::testing::make_overlay(120, 60);
    dht::Dht dht(net, 4, /*per_writer_quota=*/0);
    const auto key = util::NodeId::from_hex("5c");
    for (int i = 0; i < 20; ++i) {
        EXPECT_TRUE(dht.put(7, key, blob("v" + std::to_string(i))).accepted);
    }
    EXPECT_EQ(dht.get(9, key).values.size(), 20u);
}

TEST(DhtConstruction, RejectsZeroReplication) {
    const auto net = concilium::testing::make_overlay(20, 56);
    EXPECT_THROW(Dht(net, 0), std::invalid_argument);
}

TEST(DhtConstruction, TinyOverlayCapsReplicaSet) {
    const auto net = concilium::testing::make_overlay(3, 57);
    Dht dht(net, 10);
    const auto replicas = dht.replica_set(util::NodeId::from_hex("1"));
    EXPECT_LE(replicas.size(), 3u);
    EXPECT_GE(replicas.size(), 1u);
}

}  // namespace
}  // namespace concilium::dht
