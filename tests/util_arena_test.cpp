#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/ids.h"

namespace concilium::util {
namespace {

TEST(Arena, SpansAreZeroedAndWritable) {
    Arena arena;
    auto a = arena.make_span<std::uint32_t>(100);
    ASSERT_EQ(a.size(), 100u);
    for (auto v : a) EXPECT_EQ(v, 0u);
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<std::uint32_t>(i);
    EXPECT_EQ(a[99], 99u);
}

TEST(Arena, AllocationsDoNotMoveWhenBlocksGrow) {
    Arena arena(4096);
    auto first = arena.make_span<std::uint64_t>(16);
    first[0] = 0xdeadbeef;
    // Force many new blocks.
    for (int i = 0; i < 100; ++i) arena.make_span<std::uint64_t>(400);
    EXPECT_EQ(first[0], 0xdeadbeefu);
}

TEST(Arena, OversizedAllocationGetsDedicatedBlock) {
    Arena arena(4096);
    auto small = arena.make_span<std::uint8_t>(10);
    small[0] = 7;
    auto huge = arena.make_span<std::uint8_t>(1 << 20);
    huge[0] = 9;
    // A following small allocation still bump-allocates from the old block.
    auto small2 = arena.make_span<std::uint8_t>(10);
    small2[0] = 8;
    EXPECT_EQ(small[0], 7);
    EXPECT_EQ(huge[0], 9);
    EXPECT_GE(arena.bytes_used(), (1u << 20) + 20u);
}

TEST(Arena, CopyPreservesBytes) {
    Arena arena;
    std::vector<std::uint32_t> src{1, 2, 3, 4, 5};
    auto copy = arena.copy<std::uint32_t>({src.data(), src.size()});
    src.assign(5, 0);  // mutate the source; the copy must be independent
    ASSERT_EQ(copy.size(), 5u);
    EXPECT_EQ(copy[0], 1u);
    EXPECT_EQ(copy[4], 5u);
}

TEST(Arena, AlignmentIsRespected) {
    Arena arena;
    arena.make_span<std::uint8_t>(3);  // misalign the bump pointer
    auto d = arena.make_span<double>(4);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double), 0u);
    arena.make_span<std::uint8_t>(1);
    auto q = arena.make_span<std::uint64_t>(2);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q.data()) % alignof(std::uint64_t),
              0u);
}

TEST(Arena, ResetReclaimsWithoutFreeingTheWarmBlock) {
    Arena arena(4096);
    for (int i = 0; i < 50; ++i) arena.make_span<std::uint64_t>(100);
    EXPECT_GT(arena.bytes_used(), 0u);
    arena.reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
    EXPECT_EQ(arena.bytes_reserved(), 4096u);
    auto again = arena.make_span<std::uint32_t>(8);
    again[0] = 1;
    EXPECT_EQ(again[0], 1u);
}

TEST(Arena, EmptySpanRequestsAreCheap) {
    Arena arena;
    auto s = arena.make_span<std::uint32_t>(0);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(DigestInterner, AssignsDenseIdsInFirstInternOrder) {
    DigestInterner interner;
    Digest a{};
    a[0] = 1;
    Digest b{};
    b[0] = 2;
    EXPECT_EQ(interner.intern(a), 0u);
    EXPECT_EQ(interner.intern(b), 1u);
    EXPECT_EQ(interner.intern(a), 0u);  // stable on re-intern
    EXPECT_EQ(interner.size(), 2u);
    EXPECT_EQ(interner.digest(0), a);
    EXPECT_EQ(interner.digest(1), b);
}

TEST(DigestInterner, FindDoesNotIntern) {
    DigestInterner interner;
    Digest a{};
    a[5] = 42;
    EXPECT_EQ(interner.find(a), DigestInterner::kInvalidId);
    EXPECT_EQ(interner.size(), 0u);
    const auto id = interner.intern(a);
    EXPECT_EQ(interner.find(a), id);
}

TEST(DigestInterner, DigestBytesMatchesNodeIdHashOf) {
    // digest_bytes must agree with NodeId::hash_of so snapshot digests can
    // be compared against ids derived either way.
    const std::string payload = "tomographic snapshot payload";
    const auto via_node_id = NodeId::hash_of(payload).bytes();
    std::vector<std::uint8_t> bytes(payload.begin(), payload.end());
    const Digest via_digest = digest_bytes({bytes.data(), bytes.size()});
    EXPECT_EQ(via_node_id, via_digest);
}

TEST(DigestInterner, DistinctPayloadsGetDistinctIds) {
    DigestInterner interner;
    std::vector<std::uint8_t> p1{1, 2, 3};
    std::vector<std::uint8_t> p2{1, 2, 4};
    const auto id1 = interner.intern(digest_bytes({p1.data(), p1.size()}));
    const auto id2 = interner.intern(digest_bytes({p2.data(), p2.size()}));
    EXPECT_NE(id1, id2);
}

}  // namespace
}  // namespace concilium::util
