// daemon::HttpServer: the scrape loop must defend its own availability.
//
// The serve loop is single-threaded by design; these tests pin down the two
// ways a misbehaving client used to wedge it -- a silent connection that
// sends nothing (now cut off with 408 after the per-connection deadline)
// and an unbounded request header (now refused with 413) -- by asserting
// that a well-behaved /healthz scrape still succeeds *afterwards*.

#include "daemon/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>

namespace concilium::daemon {
namespace {

int connect_to(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    return fd;
}

std::string roundtrip(std::uint16_t port, const std::string& request) {
    const int fd = connect_to(port);
    std::size_t off = 0;
    while (off < request.size()) {
        const ssize_t n = ::send(fd, request.data() + off,
                                 request.size() - off, MSG_NOSIGNAL);
        if (n <= 0) break;
        off += static_cast<std::size_t>(n);
    }
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

class HttpServerFixture : public ::testing::Test {
  protected:
    void SetUp() override {
        HttpServer::Handlers handlers;
        handlers.metrics_text = [] { return std::string("metrics\n"); };
        handlers.metrics_json = [] { return std::string("{}"); };
        handlers.health = [] { return std::string("ok\n"); };
        handlers.spans = [] { return std::string("[]"); };
        server_.start(0, std::move(handlers));
    }

    HttpServer server_;
};

TEST_F(HttpServerFixture, HealthzAnswers) {
    const std::string r =
        roundtrip(server_.port(), "GET /healthz HTTP/1.0\r\n\r\n");
    EXPECT_NE(r.find("200 OK"), std::string::npos) << r;
    EXPECT_NE(r.find("ok\n"), std::string::npos) << r;
}

TEST_F(HttpServerFixture, UnknownPathIs404) {
    const std::string r =
        roundtrip(server_.port(), "GET /nope HTTP/1.0\r\n\r\n");
    EXPECT_NE(r.find("404 Not Found"), std::string::npos) << r;
}

TEST_F(HttpServerFixture, SilentClientGets408AndDoesNotWedgeTheLoop) {
    // Connect and send *nothing*.  Before the per-connection deadline this
    // held the single-threaded loop hostage forever; now the server must
    // answer 408 on its own initiative and move on.
    const int silent = connect_to(server_.port());
    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(silent, buf, sizeof buf, 0)) > 0) {
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(silent);
    EXPECT_NE(response.find("408 Request Timeout"), std::string::npos)
        << response;

    // The loop is free again: a normal scrape succeeds.
    const std::string r =
        roundtrip(server_.port(), "GET /healthz HTTP/1.0\r\n\r\n");
    EXPECT_NE(r.find("200 OK"), std::string::npos) << r;
}

TEST_F(HttpServerFixture, OversizedHeaderIs413) {
    std::string request = "GET /healthz HTTP/1.0\r\n";
    request += "X-Junk: " + std::string(20000, 'a') + "\r\n\r\n";
    const std::string r = roundtrip(server_.port(), request);
    EXPECT_NE(r.find("413 Payload Too Large"), std::string::npos) << r;

    const std::string ok =
        roundtrip(server_.port(), "GET /healthz HTTP/1.0\r\n\r\n");
    EXPECT_NE(ok.find("200 OK"), std::string::npos) << ok;
}

TEST_F(HttpServerFixture, NonGetIs405) {
    const std::string r =
        roundtrip(server_.port(), "POST /healthz HTTP/1.0\r\n\r\n");
    EXPECT_NE(r.find("405 Method Not Allowed"), std::string::npos) << r;
}

}  // namespace
}  // namespace concilium::daemon
