// Shared fixtures: small deterministic overlays and worlds for tests.

#pragma once

#include <vector>

#include "crypto/certificates.h"
#include "net/paths.h"
#include "net/topology_gen.h"
#include "overlay/network.h"
#include "util/rng.h"

namespace concilium::testing {

struct SmallWorld {
    util::Rng rng{1};
    net::Topology topology;
    crypto::CertificateAuthority ca{42};
    std::vector<overlay::Member> members;
};

/// An overlay of `count` members admitted through a CA; members get ips
/// 0..count-1 unless a topology's end hosts are supplied.
inline std::vector<overlay::Member> make_members(
    crypto::CertificateAuthority& ca, std::size_t count) {
    std::vector<overlay::Member> members;
    members.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto admission = ca.admit(static_cast<crypto::IpAddress>(i));
        members.push_back(overlay::Member{std::move(admission.certificate),
                                          std::move(admission.keys)});
    }
    return members;
}

inline overlay::OverlayNetwork make_overlay(std::size_t count,
                                            std::uint64_t seed = 42,
                                            int digits = 32) {
    crypto::CertificateAuthority ca(seed);
    util::Rng rng(seed + 1);
    overlay::OverlayParams params;
    params.geometry.digits = digits;
    return overlay::OverlayNetwork(make_members(ca, count), params, rng);
}

}  // namespace concilium::testing
