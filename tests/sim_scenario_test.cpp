#include "sim/scenario.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace concilium::sim {
namespace {

ScenarioParams small_scenario(std::uint64_t seed = 1) {
    ScenarioParams p;
    p.topology = net::small_params();
    p.overlay_nodes_override = 40;
    p.duration = 30 * util::kMinute;
    p.seed = seed;
    return p;
}

struct ScenarioFixture : ::testing::Test {
    ScenarioFixture() : scenario(small_scenario()) {}
    Scenario scenario;
};

TEST_F(ScenarioFixture, BuildsOverlayOfRequestedSize) {
    EXPECT_EQ(scenario.overlay_net().size(), 40u);
    EXPECT_TRUE(scenario.topology().connected());
}

TEST_F(ScenarioFixture, OverlayNodesSitOnEndHosts) {
    for (overlay::MemberIndex m = 0; m < scenario.overlay_net().size(); ++m) {
        const auto ip = scenario.overlay_net().member(m).ip();
        EXPECT_EQ(scenario.topology().tier(ip), net::RouterTier::kEndHost);
    }
}

TEST_F(ScenarioFixture, TreesRootAtMembersAndReachPeers) {
    for (overlay::MemberIndex m = 0; m < scenario.overlay_net().size(); ++m) {
        const auto& tree = scenario.tree(m);
        EXPECT_EQ(tree.root(), scenario.overlay_net().member(m).ip());
        // Every routing peer with a leaf slot appears as a tree leaf.
        for (const auto p : scenario.overlay_net().routing_peers(m)) {
            const auto slot = scenario.leaf_slot(m, p);
            if (!slot.has_value()) continue;
            EXPECT_EQ(tree.leaves().at(static_cast<std::size_t>(*slot)),
                      scenario.overlay_net().member(p).ip());
        }
    }
}

TEST_F(ScenarioFixture, PathLinksMatchTreePaths) {
    const auto& peers = scenario.overlay_net().routing_peers(0);
    ASSERT_FALSE(peers.empty());
    const auto peer = peers.front();
    const auto links = scenario.path_links(0, peer);
    EXPECT_FALSE(links.empty());
    // Every path link is a link of the member's tree.
    const auto& tree_links = scenario.tree(0).links();
    for (const auto l : links) {
        EXPECT_NE(std::find(tree_links.begin(), tree_links.end(), l),
                  tree_links.end());
    }
}

TEST_F(ScenarioFixture, ReportersOfLinkAreTreeOwners) {
    const auto& tree = scenario.tree(7);
    for (const auto l : tree.links()) {
        const auto reporters = scenario.reporters_of_link(l);
        EXPECT_NE(std::find(reporters.begin(), reporters.end(), 7u),
                  reporters.end());
    }
}

TEST_F(ScenarioFixture, GatherProbesRespectsJudgeVisibility) {
    // All probes must come from the judge or its routing peers.
    const auto& peers = scenario.overlay_net().routing_peers(0);
    const auto path = scenario.path_links(0, peers.front());
    const auto probes = scenario.gather_probes(
        0, path, 10 * util::kMinute, Scenario::CollusionStance::kNone, 1);
    std::unordered_set<util::NodeId, util::NodeIdHash> allowed;
    allowed.insert(scenario.overlay_net().member(0).id());
    for (const auto p : peers) {
        allowed.insert(scenario.overlay_net().member(p).id());
    }
    for (const auto& probe : probes) {
        EXPECT_TRUE(allowed.contains(probe.reporter));
        EXPECT_GE(probe.at, 10 * util::kMinute - 60 * util::kSecond);
        EXPECT_LE(probe.at, 10 * util::kMinute + 60 * util::kSecond);
        EXPECT_NE(std::find(path.begin(), path.end(), probe.link),
                  path.end());
    }
    EXPECT_FALSE(probes.empty());
}

TEST_F(ScenarioFixture, GatherProbesIsDeterministicPerQueryId) {
    const auto& peers = scenario.overlay_net().routing_peers(0);
    const auto path = scenario.path_links(0, peers.front());
    const auto a = scenario.gather_probes(
        0, path, 10 * util::kMinute, Scenario::CollusionStance::kNone, 7);
    const auto b = scenario.gather_probes(
        0, path, 10 * util::kMinute, Scenario::CollusionStance::kNone, 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].reporter, b[i].reporter);
        EXPECT_EQ(a[i].link, b[i].link);
        EXPECT_EQ(a[i].link_up, b[i].link_up);
        EXPECT_EQ(a[i].at, b[i].at);
    }
    const auto c = scenario.gather_probes(
        0, path, 10 * util::kMinute, Scenario::CollusionStance::kNone, 8);
    bool identical = c.size() == a.size();
    if (identical) {
        for (std::size_t i = 0; i < a.size(); ++i) {
            identical = identical && c[i].at == a[i].at &&
                        c[i].link_up == a[i].link_up;
        }
    }
    EXPECT_FALSE(identical);
}

TEST_F(ScenarioFixture, HonestProbesTrackGroundTruthAtConfiguredAccuracy) {
    util::Rng rng(9);
    int agree = 0;
    int total = 0;
    for (std::uint64_t q = 0; q < 400; ++q) {
        const auto triple = scenario.sample_triple(rng);
        if (!triple) continue;
        const auto path = scenario.path_links(triple->b, triple->c);
        const util::SimTime t = 10 * util::kMinute;
        const auto probes = scenario.gather_probes(
            triple->a, path, t, Scenario::CollusionStance::kNone, 1000 + q);
        for (const auto& p : probes) {
            const bool truth = scenario.timeline().is_up(p.link, p.at);
            if (p.link_up == truth) ++agree;
            ++total;
        }
    }
    ASSERT_GT(total, 500);
    EXPECT_NEAR(static_cast<double>(agree) / total, 0.9, 0.03);
}

TEST_F(ScenarioFixture, SampleTripleSatisfiesRoutingConstraints) {
    util::Rng rng(4);
    for (int i = 0; i < 50; ++i) {
        const auto triple = scenario.sample_triple(rng);
        ASSERT_TRUE(triple.has_value());
        const auto& peers_a = scenario.overlay_net().routing_peers(triple->a);
        EXPECT_NE(std::find(peers_a.begin(), peers_a.end(), triple->b),
                  peers_a.end());
        const auto& peers_b = scenario.overlay_net().routing_peers(triple->b);
        EXPECT_NE(std::find(peers_b.begin(), peers_b.end(), triple->c),
                  peers_b.end());
        EXPECT_TRUE(scenario.leaf_slot(triple->b, triple->c).has_value());
    }
}

TEST(ScenarioMalicious, ColludersFollowStance) {
    auto params = small_scenario(3);
    params.malicious_fraction = 0.5;  // make colluder probes plentiful
    const Scenario scenario(params);
    EXPECT_EQ(scenario.malicious_count(), 20u);

    util::Rng rng(5);
    const auto triple = scenario.sample_triple(rng);
    ASSERT_TRUE(triple.has_value());
    const auto path = scenario.path_links(triple->b, triple->c);
    const util::SimTime t = 10 * util::kMinute;

    const auto incr = scenario.gather_probes(
        triple->a, path, t, Scenario::CollusionStance::kIncriminate, 1);
    const auto exon = scenario.gather_probes(
        triple->a, path, t, Scenario::CollusionStance::kExonerate, 1);
    ASSERT_EQ(incr.size(), exon.size());
    int colluder_probes = 0;
    for (std::size_t i = 0; i < incr.size(); ++i) {
        const auto member =
            scenario.overlay_net().index_of(incr[i].reporter);
        ASSERT_TRUE(member.has_value());
        if (scenario.is_malicious(*member)) {
            ++colluder_probes;
            EXPECT_TRUE(incr[i].link_up);   // claim up to frame the innocent
            EXPECT_FALSE(exon[i].link_up);  // claim down to shield the guilty
        } else {
            EXPECT_EQ(incr[i].link_up, exon[i].link_up);  // honest unchanged
        }
    }
    EXPECT_GT(colluder_probes, 0);
}

TEST(ScenarioDeterminism, SameSeedSameWorld) {
    const Scenario a(small_scenario(11));
    const Scenario b(small_scenario(11));
    ASSERT_EQ(a.overlay_net().size(), b.overlay_net().size());
    for (overlay::MemberIndex m = 0; m < a.overlay_net().size(); ++m) {
        EXPECT_EQ(a.overlay_net().member(m).id(),
                  b.overlay_net().member(m).id());
        EXPECT_EQ(a.tree(m).links().size(), b.tree(m).links().size());
    }
}

TEST(ScenarioValidation, RejectsOversizedOverlay) {
    ScenarioParams p;
    p.topology = net::small_params();
    p.overlay_nodes_override = 100000;
    EXPECT_THROW(Scenario{p}, std::invalid_argument);
}

}  // namespace
}  // namespace concilium::sim
