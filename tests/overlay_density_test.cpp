#include <gtest/gtest.h>

#include <cmath>

#include "overlay/density.h"
#include "util/rng.h"

namespace concilium::overlay {
namespace {

util::OverlayGeometry geom32() { return util::OverlayGeometry{.digits = 32}; }

TEST(Equation1, MatchesDirectFormula) {
    const double n = 1131;
    for (int row = 0; row < 6; ++row) {
        const double direct =
            1.0 - std::pow(1.0 - std::pow(1.0 / 16.0, row + 1), n - 1);
        EXPECT_NEAR(slot_fill_probability(row, n, geom32()), direct, 1e-12)
            << "row " << row;
    }
}

TEST(Equation1, MonotoneInRowAndPopulation) {
    // Shallow rows saturate at exactly 1.0 in double precision for large N,
    // so monotonicity is weak there and strict once below saturation.
    for (int row = 0; row + 1 < 10; ++row) {
        const double shallow = slot_fill_probability(row, 10000, geom32());
        const double deep = slot_fill_probability(row + 1, 10000, geom32());
        EXPECT_GE(shallow, deep);
        if (shallow < 1.0) EXPECT_GT(shallow, deep);
    }
    for (const int row : {3, 4, 5}) {
        EXPECT_LT(slot_fill_probability(row, 1000, geom32()),
                  slot_fill_probability(row, 100000, geom32()));
    }
}

TEST(Equation1, EdgeCases) {
    EXPECT_EQ(slot_fill_probability(0, 1.0, geom32()), 0.0);  // alone
    EXPECT_NEAR(slot_fill_probability(0, 1e9, geom32()), 1.0, 1e-12);
    EXPECT_THROW(slot_fill_probability(-1, 100, geom32()), std::out_of_range);
    EXPECT_THROW(slot_fill_probability(32, 100, geom32()), std::out_of_range);
}

TEST(OccupancyModel, GridIsRowConstant) {
    const auto grid = fill_probability_grid(5000, geom32());
    ASSERT_EQ(grid.size(), 512u);
    for (int row = 0; row < 32; ++row) {
        for (int col = 1; col < 16; ++col) {
            EXPECT_EQ(grid[row * 16 + col], grid[row * 16]);
        }
    }
}

TEST(OccupancyModel, NormalApproximationMatchesMonteCarlo) {
    // Figure 1's claim: phi(mu_phi, sigma_phi) tracks simulated occupancy.
    util::Rng rng(77);
    for (const int n : {200, 1131, 5000}) {
        const auto model = occupancy_model(n, geom32());
        const auto mc = simulate_table_occupancy(n, geom32(), 300, rng);
        EXPECT_NEAR(mc.mean(), model.mean_count(),
                    0.15 * model.mean_count() + 1.0)
            << "N=" << n;
        EXPECT_NEAR(mc.stddev(), model.stddev_count(),
                    0.5 * model.stddev_count() + 0.5)
            << "N=" << n;
    }
}

TEST(OccupancyModel, MeanGrowsLogarithmically) {
    // Adding a factor of 16 in population fills roughly one more row.
    const double m1 = occupancy_model(1000, geom32()).mean_count();
    const double m2 = occupancy_model(16000, geom32()).mean_count();
    EXPECT_NEAR(m2 - m1, 16.0, 3.0);
}

TEST(DensityTest, RuntimeCheckSemantics) {
    // gamma * d_peer < d_local  ==> suspicious.
    EXPECT_TRUE(jump_table_too_sparse(0.12, 0.05, 1.5));
    EXPECT_FALSE(jump_table_too_sparse(0.12, 0.10, 1.5));
    EXPECT_FALSE(jump_table_too_sparse(0.12, 0.12, 1.5));
    EXPECT_THROW(jump_table_too_sparse(0.1, 0.1, 0.9),
                 std::invalid_argument);
}

TEST(DensityTest, LeafVariantUsesSpacing) {
    // Sparse leaf set == larger spacing.
    EXPECT_TRUE(leaf_set_too_sparse(0.001, 0.01, 2.0));
    EXPECT_FALSE(leaf_set_too_sparse(0.001, 0.0015, 2.0));
}

TEST(DensityErrors, FalsePositiveDecreasesWithGamma) {
    const double n = 5000;
    double prev = 1.0;
    for (const double gamma : {1.0, 1.2, 1.5, 2.0, 3.0}) {
        const double fp = density_false_positive(gamma, n, n, geom32());
        EXPECT_LE(fp, prev + 1e-9) << "gamma " << gamma;
        prev = fp;
    }
    // At gamma = 3 nearly no honest peer is flagged.
    EXPECT_LT(density_false_positive(3.0, n, n, geom32()), 0.01);
}

TEST(DensityErrors, FalseNegativeIncreasesWithGamma) {
    const double n = 5000;
    const double pool = 0.2 * n;
    double prev = 0.0;
    for (const double gamma : {1.0, 1.2, 1.5, 2.0, 3.0}) {
        const double fn = density_false_negative(gamma, n, pool, geom32());
        EXPECT_GE(fn, prev - 1e-9) << "gamma " << gamma;
        prev = fn;
    }
}

TEST(DensityErrors, LargerCollusionIsHarderToCatch) {
    // Figure 2(b): the false-negative rate grows with the colluding
    // fraction c, because an attacker controlling more nodes can fill more
    // slots legitimately.
    const double n = 5000;
    const double gamma = 1.5;
    double prev = 0.0;
    for (const double c : {0.05, 0.1, 0.2, 0.3}) {
        const double fn = density_false_negative(gamma, n, c * n, geom32());
        EXPECT_GT(fn, prev) << "c=" << c;
        prev = fn;
    }
}

TEST(DensityErrors, FalsePositiveIndependentOfCollusionWithoutSuppression) {
    // Figure 2(a): without suppression the FP rate does not depend on c.
    const double n = 5000;
    const double fp1 = density_false_positive(1.4, n, n, geom32());
    // c enters only through the attacker pool, which the FP integral never
    // consults.
    EXPECT_DOUBLE_EQ(fp1, density_false_positive(1.4, n, n, geom32()));
}

TEST(DensityErrors, SuppressionRaisesFalsePositives) {
    // Figure 3(a): when colluders suppress themselves from honest peers'
    // tables, honest tables look sparser and get flagged more.
    const double n = 5000;
    const double gamma = 1.4;
    const double fp_clean = density_false_positive(gamma, n, n, geom32());
    const double fp_suppressed =
        density_false_positive(gamma, n, 0.8 * n, geom32());
    EXPECT_GT(fp_suppressed, fp_clean);
}

TEST(DensityErrors, OptimalGammaBalancesErrors) {
    const double n = 5000;
    const auto best =
        optimal_gamma(n, n, 0.2 * n, geom32(), 1.0, 3.0, 81);
    EXPECT_GE(best.gamma, 1.0);
    EXPECT_LE(best.gamma, 3.0);
    // The optimum beats the extremes.
    const double at_lo = density_false_positive(1.0, n, n, geom32()) +
                         density_false_negative(1.0, n, 0.2 * n, geom32());
    const double at_hi = density_false_positive(3.0, n, n, geom32()) +
                         density_false_negative(3.0, n, 0.2 * n, geom32());
    EXPECT_LE(best.total_error(), at_lo + 1e-9);
    EXPECT_LE(best.total_error(), at_hi + 1e-9);
    EXPECT_THROW(optimal_gamma(n, n, n, geom32(), 2.0, 1.0, 10),
                 std::invalid_argument);
}

TEST(DensityErrors, PaperOperatingPointIsReasonable) {
    // Section 4.1: with c = 20% and no suppression, a well-chosen gamma
    // keeps FN near a few percent; with c = 30% both error rates are
    // noticeably worse.  Verify the ordering, not the exact numbers (the
    // paper does not publish its N).
    const double n = 10000;
    const auto at20 = optimal_gamma(n, n, 0.2 * n, geom32(), 1.0, 4.0, 121);
    const auto at30 = optimal_gamma(n, n, 0.3 * n, geom32(), 1.0, 4.0, 121);
    EXPECT_LT(at20.total_error(), at30.total_error());
    EXPECT_LT(at20.false_negative, 0.10);
    EXPECT_LT(at20.false_positive, 0.10);
}

TEST(MonteCarloOccupancy, ValidatesArguments) {
    util::Rng rng(1);
    EXPECT_THROW(simulate_table_occupancy(1, geom32(), 10, rng),
                 std::invalid_argument);
    EXPECT_THROW(simulate_table_occupancy(100, geom32(), 0, rng),
                 std::invalid_argument);
}

}  // namespace
}  // namespace concilium::overlay
