// End-to-end tests of the Byzantine campaign roles against the
// evidence-integrity defenses.  These are the headline guarantees of the
// attack layer: a node that lies in signed snapshots is caught by a
// self-verifying proof and never evades accusation for its drops, while an
// honest node a slanderer targets is never credibly blacklisted.

#include <gtest/gtest.h>

#include "net/topology_gen.h"
#include "runtime/cluster.h"

namespace concilium::runtime {
namespace {

using overlay::MemberIndex;

/// The RuntimeWorld of runtime_cluster_test: small topology, 50-node
/// overlay, empty failure timeline.
struct AttackWorld {
    explicit AttackWorld(std::uint64_t seed = 5, std::size_t nodes = 50)
        : rng(seed),
          topology(net::generate_topology(alter(net::small_params()), rng)),
          ca(seed + 1) {
        overlay.emplace(overlay::build_overlay_from_hosts(
            topology.end_hosts(), nodes, ca, overlay::OverlayParams{}, rng));
        trees.emplace(*overlay, topology);
        timeline.finalize();
    }

    static net::TopologyParams alter(net::TopologyParams p) {
        p.end_hosts = 300;
        return p;
    }

    Cluster make_cluster(RuntimeParams params = {},
                         std::vector<NodeBehavior> behaviors = {}) {
        return Cluster(sim, timeline, *overlay, *trees, params,
                       std::move(behaviors), rng.fork());
    }

    /// A (sender, key) pair whose route has length >= 4; the returned hops
    /// let callers place an attacker at a chosen interior position.
    std::tuple<MemberIndex, util::NodeId, std::vector<MemberIndex>>
    long_route(std::uint64_t search_seed) {
        util::Rng search(search_seed);
        for (int attempt = 0; attempt < 20000; ++attempt) {
            const auto from = static_cast<MemberIndex>(
                search.uniform_index(overlay->size()));
            const util::NodeId key = util::NodeId::random(search);
            std::vector<MemberIndex> hops;
            try {
                hops = overlay->route(from, key);
            } catch (const std::exception&) {
                continue;
            }
            if (hops.size() >= 4) return {from, key, hops};
        }
        ADD_FAILURE() << "no 4-hop route in small world";
        return {0, util::NodeId{}, {}};
    }

    util::Rng rng;
    net::Topology topology;
    crypto::CertificateAuthority ca;
    std::optional<overlay::OverlayNetwork> overlay;
    std::optional<tomography::OverlayTrees> trees;
    net::FailureTimeline timeline;
    net::EventSim sim;
};

/// Headline: an equivocating node is caught with a self-verifying proof --
/// its contradictory same-epoch signatures convict it to any third party --
/// and it never evades diagnosis for the messages it drops.
TEST(ClusterAttack, EquivocatorIsCaughtWithSelfVerifyingProof) {
    AttackWorld world;
    const auto [from, key, hops] = world.long_route(31);
    ASSERT_GE(hops.size(), 4u);
    const MemberIndex attacker = hops[2];

    std::vector<NodeBehavior> behaviors(world.overlay->size());
    behaviors[attacker].equivocate_snapshots = true;
    behaviors[attacker].drop_forward_probability = 1.0;
    Cluster cluster = world.make_cluster(RuntimeParams{}, behaviors);
    cluster.start();
    world.sim.run_until(3 * util::kMinute);

    std::vector<Cluster::MessageOutcome> outcomes;
    for (int i = 0; i < 8; ++i) {
        cluster.send(from, key, [&](const Cluster::MessageOutcome& out) {
            outcomes.push_back(out);
        });
        world.sim.run_until(world.sim.now() + 30 * util::kSecond);
    }
    world.sim.run_until(world.sim.now() + 2 * util::kMinute);

    // The attacker equivocated, and honest peers cross-checked the
    // conflicting signatures into a proof stored under its key.
    EXPECT_GT(cluster.stats().equivocations_published, 0u);
    ASSERT_GT(cluster.stats().equivocation_proofs_filed, 0u);
    const auto proofs = cluster.equivocation_proofs_against(attacker);
    ASSERT_FALSE(proofs.empty());
    for (const auto& proof : proofs) {
        EXPECT_EQ(cluster.verify(proof, attacker),
                  core::EquivocationCheck::kOk)
            << core::to_string(cluster.verify(proof, attacker));
    }

    // And the lying snapshots bought it nothing: every drop was still
    // diagnosed against it.
    ASSERT_EQ(outcomes.size(), 8u);
    const auto& attacker_id = world.overlay->member(attacker).id();
    int blamed = 0;
    for (const auto& out : outcomes) {
        EXPECT_FALSE(out.delivered);
        if (out.blamed == attacker_id) ++blamed;
    }
    EXPECT_GE(blamed, 7);
    // No proof ever implicates anyone else.
    for (MemberIndex m = 0; m < world.overlay->size(); ++m) {
        if (m == attacker) continue;
        EXPECT_TRUE(cluster.equivocation_proofs_against(m).empty())
            << "honest member " << m << " has an equivocation proof on file";
    }
}

/// Headline: a replaying node's stale snapshots are rejected at every
/// archive (the signed epoch regressed), so it never evades accusation for
/// its drops.
TEST(ClusterAttack, ReplayerNeverEvadesAccusation) {
    AttackWorld world;
    const auto [from, key, hops] = world.long_route(47);
    ASSERT_GE(hops.size(), 4u);
    const MemberIndex attacker = hops[2];

    std::vector<NodeBehavior> behaviors(world.overlay->size());
    behaviors[attacker].replay_snapshots = true;
    behaviors[attacker].drop_forward_probability = 1.0;
    Cluster cluster = world.make_cluster(RuntimeParams{}, behaviors);
    cluster.start();
    world.sim.run_until(3 * util::kMinute);

    std::vector<Cluster::MessageOutcome> outcomes;
    for (int i = 0; i < 8; ++i) {
        cluster.send(from, key, [&](const Cluster::MessageOutcome& out) {
            outcomes.push_back(out);
        });
        world.sim.run_until(world.sim.now() + 30 * util::kSecond);
    }
    world.sim.run_until(world.sim.now() + 2 * util::kMinute);

    // The replays happened and the archives threw them out.
    EXPECT_GT(cluster.stats().replays_published, 0u);
    EXPECT_GT(cluster.stats().snapshots_rejected_epoch +
                  cluster.stats().snapshots_rejected_stale,
              0u);

    ASSERT_EQ(outcomes.size(), 8u);
    const auto& attacker_id = world.overlay->member(attacker).id();
    int blamed = 0;
    for (const auto& out : outcomes) {
        EXPECT_FALSE(out.delivered);
        if (out.blamed == attacker_id) ++blamed;
    }
    EXPECT_GE(blamed, 7);

    // Formal accusations landed in the DHT and verify for third parties.
    const auto accusations = cluster.accusations_against(attacker);
    ASSERT_FALSE(accusations.empty());
    bool verified = false;
    for (const auto& acc : accusations) {
        if (cluster.verify(acc) == core::AccusationCheck::kOk) {
            verified = true;
        }
    }
    EXPECT_TRUE(verified);
}

/// Headline: a slanderer's forged accusations against honest nodes never
/// verify for a third party, so no honest node is ever blacklisted.
TEST(ClusterAttack, SlanderedHonestNodeIsNeverBlacklisted) {
    AttackWorld world;
    std::vector<NodeBehavior> behaviors(world.overlay->size());
    behaviors[7].slander = true;
    behaviors[23].slander = true;
    Cluster cluster = world.make_cluster(RuntimeParams{}, behaviors);
    cluster.start();
    world.sim.run_until(3 * util::kMinute);

    util::Rng pick(9);
    for (int i = 0; i < 10; ++i) {
        const auto from = static_cast<MemberIndex>(
            pick.uniform_index(world.overlay->size()));
        cluster.send(from, util::NodeId::random(pick));
        world.sim.run_until(world.sim.now() + 30 * util::kSecond);
    }
    world.sim.run_until(world.sim.now() + 2 * util::kMinute);

    // The slanderers were active...
    ASSERT_GT(cluster.stats().slanders_filed, 0u);
    // ...but in an all-honest-forwarding world, nothing they filed (and
    // nothing anyone filed) verifies against anybody: a third party running
    // the sanction policy never blacklists an honest node.
    for (MemberIndex m = 0; m < world.overlay->size(); ++m) {
        for (const auto& acc : cluster.accusations_against(m)) {
            EXPECT_NE(cluster.verify(acc), core::AccusationCheck::kOk)
                << "slander against member " << m << " verified";
        }
    }
}

/// A verdict colluder that drops and then pushes a fabricated revision
/// blaming its next hop: the sender re-verifies pushed revisions, rejects
/// the fabrication, and blame stays on the colluder.
TEST(ClusterAttack, ColluderFabricatedRevisionIsRejected) {
    AttackWorld world;
    const auto [from, key, hops] = world.long_route(63);
    ASSERT_GE(hops.size(), 4u);
    const MemberIndex attacker = hops[1];
    const MemberIndex framed = hops[2];

    std::vector<NodeBehavior> behaviors(world.overlay->size());
    behaviors[attacker].collude_revisions = true;
    behaviors[attacker].drop_forward_probability = 1.0;
    Cluster cluster = world.make_cluster(RuntimeParams{}, behaviors);
    cluster.start();
    world.sim.run_until(3 * util::kMinute);

    std::vector<Cluster::MessageOutcome> outcomes;
    for (int i = 0; i < 8; ++i) {
        cluster.send(from, key, [&](const Cluster::MessageOutcome& out) {
            outcomes.push_back(out);
        });
        world.sim.run_until(world.sim.now() + 30 * util::kSecond);
    }
    world.sim.run_until(world.sim.now() + 2 * util::kMinute);

    // Fabricated revisions were pushed and every one was rejected on
    // re-verification.
    EXPECT_GT(cluster.stats().collusions_pushed, 0u);
    EXPECT_GT(cluster.stats().revisions_rejected, 0u);

    // Blame never moved to the framed next hop.
    const auto& attacker_id = world.overlay->member(attacker).id();
    const auto& framed_id = world.overlay->member(framed).id();
    int blamed_attacker = 0;
    for (const auto& out : outcomes) {
        EXPECT_NE(out.blamed, framed_id);
        if (out.blamed == attacker_id) ++blamed_attacker;
    }
    EXPECT_GE(blamed_attacker, 7);
    EXPECT_TRUE(cluster.accusations_against(framed).empty());
}

/// An accusation spammer floods a victim's DHT key with junk: the
/// per-writer quota contains the flood, readers skip the malformed values,
/// and a genuine accusation filed under the same key still verifies.
TEST(ClusterAttack, SpamCannotDrownRealAccusations) {
    AttackWorld world;
    const auto [from, key, hops] = world.long_route(31);
    ASSERT_GE(hops.size(), 4u);
    const MemberIndex dropper = hops[2];

    std::vector<NodeBehavior> behaviors(world.overlay->size());
    behaviors[dropper].drop_forward_probability = 1.0;
    // Every routing peer of the dropper spams, so the dropper's own
    // accusation key is among the flooded ones.
    for (const MemberIndex peer : world.overlay->routing_peers(dropper)) {
        behaviors[peer].spam_accusations = true;
    }
    // A tight quota: the spammers round-robin over their whole peer set, so
    // each (writer, key) pair sees only a handful of junk values in a short
    // test run.
    RuntimeParams params;
    params.dht_per_writer_quota = 2;
    Cluster cluster = world.make_cluster(params, behaviors);
    cluster.start();
    world.sim.run_until(3 * util::kMinute);

    for (int i = 0; i < 8; ++i) {
        cluster.send(from, key);
        world.sim.run_until(world.sim.now() + 30 * util::kSecond);
    }
    world.sim.run_until(world.sim.now() + 5 * util::kMinute);

    // The flood ran into the per-writer quota.
    EXPECT_GT(cluster.stats().spam_puts, 0u);
    EXPECT_GT(cluster.stats().dht_puts_rejected, 0u);

    // The genuine accusation still surfaces from the flooded key and
    // verifies; the junk values were skipped, not fatal.
    const auto accusations = cluster.accusations_against(dropper);
    ASSERT_FALSE(accusations.empty());
    bool verified = false;
    for (const auto& acc : accusations) {
        if (cluster.verify(acc) == core::AccusationCheck::kOk) {
            verified = true;
        }
    }
    EXPECT_TRUE(verified);
}

}  // namespace
}  // namespace concilium::runtime
