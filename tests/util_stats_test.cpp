#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace concilium::util {
namespace {

TEST(NormalDistribution, CdfKnownValues) {
    EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-9);
    EXPECT_NEAR(normal_cdf(-1.96), 0.024997895, 1e-6);
    EXPECT_NEAR(normal_cdf(1.0) + normal_cdf(-1.0), 1.0, 1e-12);
}

TEST(NormalDistribution, ParameterizedCdf) {
    EXPECT_NEAR(normal_cdf(10.0, 10.0, 2.0), 0.5, 1e-12);
    EXPECT_NEAR(normal_cdf(12.0, 10.0, 2.0), normal_cdf(1.0), 1e-12);
}

TEST(NormalDistribution, ZeroStddevIsStep) {
    EXPECT_EQ(normal_cdf(0.99, 1.0, 0.0), 0.0);
    EXPECT_EQ(normal_cdf(1.0, 1.0, 0.0), 1.0);
}

TEST(NormalDistribution, QuantileInvertsTheCdf) {
    for (const double p : {0.001, 0.01, 0.25, 0.5, 0.9, 0.999}) {
        EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-7) << "p=" << p;
    }
    EXPECT_THROW(normal_quantile(0.0), std::domain_error);
    EXPECT_THROW(normal_quantile(1.0), std::domain_error);
}

TEST(NormalDistribution, PdfIntegratesToOneApprox) {
    double sum = 0.0;
    const double dx = 0.01;
    for (double x = -8.0; x <= 8.0; x += dx) sum += normal_pdf(x) * dx;
    EXPECT_NEAR(sum, 1.0, 1e-3);
}

TEST(Binomial, PmfSumsToOne) {
    for (const double p : {0.1, 0.5, 0.93}) {
        double sum = 0.0;
        for (int k = 0; k <= 20; ++k) sum += binomial_pmf(20, k, p);
        EXPECT_NEAR(sum, 1.0, 1e-12) << "p=" << p;
    }
}

TEST(Binomial, PmfKnownValue) {
    // C(10, 3) * 0.5^10 = 120/1024
    EXPECT_NEAR(binomial_pmf(10, 3, 0.5), 120.0 / 1024.0, 1e-12);
}

TEST(Binomial, DegenerateP) {
    EXPECT_EQ(binomial_pmf(5, 0, 0.0), 1.0);
    EXPECT_EQ(binomial_pmf(5, 1, 0.0), 0.0);
    EXPECT_EQ(binomial_pmf(5, 5, 1.0), 1.0);
}

TEST(Binomial, TailsArePartitions) {
    for (int m = 0; m <= 11; ++m) {
        EXPECT_NEAR(binomial_upper_tail(10, m, 0.3) +
                        binomial_lower_tail_exclusive(10, m, 0.3),
                    1.0, 1e-12)
            << "m=" << m;
    }
}

TEST(Binomial, UpperTailBoundaries) {
    EXPECT_EQ(binomial_upper_tail(10, 0, 0.3), 1.0);
    EXPECT_EQ(binomial_upper_tail(10, 11, 0.3), 0.0);
    // Pr(X >= 1) = 1 - (1-p)^n.
    EXPECT_NEAR(binomial_upper_tail(10, 1, 0.1),
                1.0 - std::pow(0.9, 10), 1e-12);
}

TEST(Binomial, Section43ErrorRatesAreSmallAtPaperOperatingPoint) {
    // Sanity on the paper's headline: w=100, honest pdfs give roughly
    // p_good ~ 1.8% and p_faulty ~ 93.8%; m = 6 should push both error
    // rates below 1% (Figure 6a).
    const double fp = binomial_upper_tail(100, 6, 0.018);
    const double fn = binomial_lower_tail_exclusive(100, 6, 0.938);
    EXPECT_LT(fp, 0.01);
    EXPECT_LT(fn, 0.01);
}

TEST(PoissonBinomial, MatchesBinomialWhenUniform) {
    std::vector<double> probs(50, 0.3);
    const PoissonBinomialNormal pb(probs);
    EXPECT_NEAR(pb.mean_count(), 15.0, 1e-12);
    EXPECT_NEAR(pb.stddev_count(), std::sqrt(50 * 0.3 * 0.7), 1e-12);
    EXPECT_NEAR(pb.grid_mean(), 0.3, 1e-12);
    EXPECT_NEAR(pb.grid_variance(), 0.0, 1e-12);
}

TEST(PoissonBinomial, VarianceIdentityHolds) {
    // sigma_phi^2 = S*mu*(1-mu) - S*sigma^2 must equal sum p(1-p).
    std::vector<double> probs{0.1, 0.9, 0.5, 0.25, 0.75, 1.0, 0.0};
    const PoissonBinomialNormal pb(probs);
    double direct = 0.0;
    double mean = 0.0;
    for (const double p : probs) {
        direct += p * (1.0 - p);
        mean += p;
    }
    EXPECT_NEAR(pb.mean_count(), mean, 1e-12);
    EXPECT_NEAR(pb.stddev_count() * pb.stddev_count(), direct, 1e-12);
}

TEST(PoissonBinomial, PmfSumsToOneOverSupport) {
    std::vector<double> probs(100, 0.4);
    const PoissonBinomialNormal pb(probs);
    double sum = 0.0;
    for (int d = 0; d <= 100; ++d) sum += pb.pmf(d);
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PoissonBinomial, RejectsBadInput) {
    EXPECT_THROW(PoissonBinomialNormal(std::vector<double>{}),
                 std::invalid_argument);
    EXPECT_THROW(PoissonBinomialNormal(std::vector<double>{1.5}),
                 std::domain_error);
}

TEST(OnlineMoments, BasicStatistics) {
    OnlineMoments m;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.add(x);
    EXPECT_EQ(m.count(), 8);
    EXPECT_NEAR(m.mean(), 5.0, 1e-12);
    EXPECT_NEAR(m.variance(), 4.0, 1e-12);  // classic population-variance set
    EXPECT_NEAR(m.stddev(), 2.0, 1e-12);
    EXPECT_EQ(m.min(), 2.0);
    EXPECT_EQ(m.max(), 9.0);
}

TEST(OnlineMoments, MergeEqualsBulk) {
    Rng rng(77);
    OnlineMoments bulk;
    OnlineMoments left;
    OnlineMoments right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(3.0, 2.0);
        bulk.add(x);
        (i % 2 == 0 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), bulk.count());
    EXPECT_NEAR(left.mean(), bulk.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), bulk.variance(), 1e-9);
}

TEST(Histogram, CountsAndDensity) {
    Histogram h(0.0, 1.0, 10);
    for (int i = 0; i < 100; ++i) h.add(0.05);  // all in bin 0
    EXPECT_EQ(h.count(0), 100);
    EXPECT_EQ(h.total(), 100);
    EXPECT_NEAR(h.density(0), 10.0, 1e-12);  // mass 1 over width 0.1
    EXPECT_NEAR(h.bin_center(0), 0.05, 1e-12);
}

TEST(Histogram, ClampsOutOfRange) {
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(5.0);
    h.add(1.0);  // the hi edge lands in the last bin
    EXPECT_EQ(h.count(0), 1);
    EXPECT_EQ(h.count(3), 2);
}

TEST(Histogram, FractionBelow) {
    Histogram h(0.0, 1.0, 10);
    for (int i = 0; i < 50; ++i) h.add(0.15);  // bin 1
    for (int i = 0; i < 50; ++i) h.add(0.85);  // bin 8
    EXPECT_NEAR(h.fraction_below(0.5), 0.5, 1e-9);
    EXPECT_NEAR(h.fraction_below(0.0), 0.0, 1e-12);
    EXPECT_NEAR(h.fraction_below(1.0), 1.0, 1e-12);
    EXPECT_NEAR(h.fraction_below(2.0), 1.0, 1e-12);
}

TEST(Histogram, MergeEqualsBulk) {
    Rng rng(78);
    Histogram bulk(0.0, 1.0, 20);
    Histogram left(0.0, 1.0, 20);
    Histogram right(0.0, 1.0, 20);
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.uniform();
        bulk.add(x);
        (i % 3 == 0 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.total(), bulk.total());
    for (std::size_t b = 0; b < bulk.bins(); ++b) {
        EXPECT_EQ(left.count(b), bulk.count(b)) << "bin " << b;
    }
}

TEST(Histogram, MergeRejectsGeometryMismatch) {
    Histogram base(0.0, 1.0, 10);
    EXPECT_THROW(base.merge(Histogram(0.0, 1.0, 20)), std::invalid_argument);
    EXPECT_THROW(base.merge(Histogram(0.0, 2.0, 10)), std::invalid_argument);
    EXPECT_THROW(base.merge(Histogram(-1.0, 1.0, 10)), std::invalid_argument);
}

TEST(Histogram, RejectsDegenerateConstruction) {
    EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace concilium::util
