#include <gtest/gtest.h>

#include <algorithm>

#include "net/paths.h"
#include "net/topology.h"
#include "net/topology_gen.h"
#include "tomography/tree.h"
#include "util/rng.h"

namespace concilium::tomography {
namespace {

/// The canonical small tree used across tomography tests:
///        0 (root)
///        |
///        1
///       / \
///      2   3
///     / \   \
///    4   5   6        (4, 5, 6 are probed leaves)
struct TreeFixture {
    TreeFixture() {
        for (int i = 0; i < 7; ++i) topo.add_router(net::RouterTier::kCore);
        links[0] = topo.add_link(0, 1);
        links[1] = topo.add_link(1, 2);
        links[2] = topo.add_link(1, 3);
        links[3] = topo.add_link(2, 4);
        links[4] = topo.add_link(2, 5);
        links[5] = topo.add_link(3, 6);
        const net::PathOracle oracle(topo);
        const std::vector<net::RouterId> dsts{4, 5, 6};
        paths = oracle.paths_from(0, dsts);
    }

    net::Topology topo;
    net::LinkId links[6];
    std::vector<net::Path> paths;
};

TEST(ProbeTree, MergesPathsIntoSharedTree) {
    TreeFixture f;
    const ProbeTree tree(0, f.paths);
    EXPECT_EQ(tree.root(), 0u);
    EXPECT_EQ(tree.nodes().size(), 7u);
    EXPECT_EQ(tree.links().size(), 6u);
    ASSERT_EQ(tree.leaves().size(), 3u);
    EXPECT_EQ(tree.leaves()[0], 4u);
    EXPECT_EQ(tree.leaves()[1], 5u);
    EXPECT_EQ(tree.leaves()[2], 6u);
}

TEST(ProbeTree, PathLinksReconstructRootPaths) {
    TreeFixture f;
    const ProbeTree tree(0, f.paths);
    const auto to4 = tree.path_links(0);
    ASSERT_EQ(to4.size(), 3u);
    EXPECT_EQ(to4[0], f.links[0]);
    EXPECT_EQ(to4[1], f.links[1]);
    EXPECT_EQ(to4[2], f.links[3]);
    const auto to6 = tree.path_links(2);
    ASSERT_EQ(to6.size(), 3u);
    EXPECT_EQ(to6[2], f.links[5]);
    EXPECT_THROW((void)tree.path_links(3), std::out_of_range);
}

TEST(ProbeTree, NodeOfAndSubtreeLeaves) {
    TreeFixture f;
    const ProbeTree tree(0, f.paths);
    const auto n2 = tree.node_of(2);
    ASSERT_TRUE(n2.has_value());
    const auto under2 = tree.leaf_slots_under(*n2);
    EXPECT_EQ(under2, (std::vector<int>{0, 1}));  // leaves 4 and 5
    const auto under_root = tree.leaf_slots_under(0);
    EXPECT_EQ(under_root, (std::vector<int>{0, 1, 2}));
    EXPECT_FALSE(tree.node_of(99).has_value());
}

TEST(ProbeTree, SkipsEmptyPaths) {
    TreeFixture f;
    f.paths.push_back(net::Path{});  // unreachable peer
    const ProbeTree tree(0, f.paths);
    EXPECT_EQ(tree.leaves().size(), 3u);
}

TEST(ProbeTree, InteriorEndpointGetsLeafSlot) {
    TreeFixture f;
    // Also probe router 2, which lies on the way to 4 and 5.
    const net::PathOracle oracle(f.topo);
    const std::vector<net::RouterId> dsts{4, 5, 2};
    const auto paths = oracle.paths_from(0, dsts);
    const ProbeTree tree(0, paths);
    ASSERT_EQ(tree.leaves().size(), 3u);
    const auto n2 = tree.node_of(2);
    ASSERT_TRUE(n2.has_value());
    EXPECT_TRUE(tree.nodes()[static_cast<std::size_t>(*n2)]
                    .leaf_slot.has_value());
}

TEST(ProbeTree, RejectsForeignPaths) {
    TreeFixture f;
    const net::PathOracle oracle(f.topo);
    std::vector<net::Path> wrong{oracle.path(1, 4)};  // starts at 1, not 0
    EXPECT_THROW(ProbeTree(0, wrong), std::invalid_argument);
}

TEST(ProbeTree, RejectsInconsistentParents) {
    TreeFixture f;
    // Add a second route to router 4 through 3 to fabricate a disagreement.
    const net::LinkId alt = f.topo.add_link(3, 4);
    net::Path bogus;
    bogus.routers = {0, 1, 3, 4};
    bogus.links = {f.links[0], f.links[2], alt};
    auto paths = f.paths;
    paths.push_back(bogus);
    EXPECT_THROW(ProbeTree(0, paths), std::invalid_argument);
}

TEST(Forest, CoverageGrowsMonotonically) {
    TreeFixture f;
    const net::PathOracle oracle(f.topo);
    const ProbeTree t0(0, f.paths);
    // Peer trees rooted at 4 and 6, probing the other hosts.
    const std::vector<net::RouterId> d4{0, 5, 6};
    const auto p4 = oracle.paths_from(4, d4);
    const ProbeTree t4(4, p4);
    const std::vector<net::RouterId> d6{0, 4, 5};
    const auto p6 = oracle.paths_from(6, d6);
    const ProbeTree t6(6, p6);

    const Forest forest({&t0, &t4, &t6});
    double prev = 0.0;
    for (std::size_t k = 1; k <= 3; ++k) {
        const double c = forest.coverage(k);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_DOUBLE_EQ(forest.coverage(3), 1.0);  // trees cover same links here
    EXPECT_GE(forest.mean_vouchers(3), forest.mean_vouchers(1));
}

TEST(Forest, SingleTreeCoversItself) {
    TreeFixture f;
    const ProbeTree t0(0, f.paths);
    const Forest forest({&t0});
    EXPECT_DOUBLE_EQ(forest.coverage(1), 1.0);
    EXPECT_DOUBLE_EQ(forest.mean_vouchers(1), 1.0);
    EXPECT_THROW(Forest({}), std::invalid_argument);
}

TEST(Forest, GeneratedTopologyOwnTreeCoversMinority) {
    // On a realistic topology a node's own tree is a sliver of its forest
    // (Figure 4 starts near 25%).
    util::Rng rng(3);
    const net::Topology topo = net::generate_topology(net::small_params(), rng);
    const net::PathOracle oracle(topo);
    auto hosts = topo.end_hosts();
    ASSERT_GE(hosts.size(), 12u);
    // Tree per host: paths to 8 other random hosts.
    std::vector<ProbeTree> trees;
    for (std::size_t h = 0; h < 10; ++h) {
        std::vector<net::RouterId> dsts;
        for (std::size_t k = 1; k <= 8; ++k) {
            dsts.push_back(hosts[(h + k * 7) % hosts.size()]);
        }
        trees.emplace_back(hosts[h], oracle.paths_from(hosts[h], dsts));
    }
    std::vector<const ProbeTree*> ptrs;
    for (const auto& t : trees) ptrs.push_back(&t);
    const Forest forest(ptrs);
    EXPECT_LT(forest.coverage(1), 0.9);
    EXPECT_GT(forest.coverage(1), 0.05);
    EXPECT_DOUBLE_EQ(forest.coverage(10), 1.0);
}

}  // namespace
}  // namespace concilium::tomography
