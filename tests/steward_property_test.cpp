// Property sweep over the fault-attribution chain and the event simulator.

#include <gtest/gtest.h>

#include "core/steward.h"
#include "net/event_sim.h"
#include "util/rng.h"

namespace concilium {
namespace {

class StewardChainProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StewardChainProperty, OutcomeInvariantsHoldForRandomVerdicts) {
    const auto [route_length, seed] = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(seed) * 37 + 5);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t forwarders =
            rng.uniform_index(static_cast<std::size_t>(route_length));
        std::vector<double> blames;
        for (std::size_t j = 0; j < forwarders; ++j) {
            blames.push_back(rng.uniform());
        }
        const core::VerdictParams params;
        const auto outcome = core::attribute_fault(
            static_cast<std::size_t>(route_length), forwarders,
            [&](std::size_t judge, std::size_t suspect) {
                EXPECT_EQ(suspect, judge + 1);
                return blames.at(judge);
            },
            params);

        // Exactly one resolution.
        EXPECT_NE(outcome.network_blamed, outcome.blamed_hop.has_value());
        EXPECT_EQ(outcome.judgments.size(), forwarders);

        if (outcome.network_blamed) {
            // The faulted segment is the FIRST acquitting judge.
            ASSERT_TRUE(outcome.faulted_segment.has_value());
            const std::size_t s = *outcome.faulted_segment;
            for (std::size_t j = 0; j < s; ++j) {
                EXPECT_TRUE(outcome.judgments[j].guilty);
            }
            EXPECT_FALSE(outcome.judgments[s].guilty);
        } else {
            // Every judge convicted (or there were no judges), and blame
            // sits just past the last one.
            for (const auto& j : outcome.judgments) {
                EXPECT_TRUE(j.guilty);
            }
            EXPECT_EQ(*outcome.blamed_hop, forwarders);
            EXPECT_FALSE(outcome.faulted_segment.has_value());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StewardChainProperty,
                         ::testing::Combine(::testing::Values(2, 3, 5, 9),
                                            ::testing::Values(1, 2, 3)));

TEST(EventSimStress, TenThousandRandomEventsFireInOrder) {
    net::EventSim sim;
    util::Rng rng(99);
    util::SimTime last = -1;
    int fired = 0;
    for (int i = 0; i < 10000; ++i) {
        const auto at = static_cast<util::SimTime>(rng.uniform_index(50000));
        sim.schedule_at(at, [&, at] {
            EXPECT_GE(at, last);
            last = at;
            ++fired;
            // Some events spawn follow-ups.
            if (fired % 100 == 0) {
                sim.schedule_after(7, [&] { ++fired; });
            }
        });
    }
    sim.run_all();
    EXPECT_GE(fired, 10000);
    EXPECT_TRUE(sim.empty());
}

}  // namespace
}  // namespace concilium
