#include "util/ids.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/rng.h"

namespace concilium::util {
namespace {

TEST(NodeId, DefaultIsZero) {
    const NodeId id;
    for (int i = 0; i < NodeId::kDigits; ++i) {
        EXPECT_EQ(id.digit(i), 0);
    }
    EXPECT_EQ(id.to_hex(), std::string(40, '0'));
}

TEST(NodeId, FromHexRoundTrips) {
    const std::string hex = "0123456789abcdef0123456789abcdef01234567";
    const NodeId id = NodeId::from_hex(hex);
    EXPECT_EQ(id.to_hex(), hex);
}

TEST(NodeId, FromHexAcceptsUppercase) {
    EXPECT_EQ(NodeId::from_hex("ABCDEF").to_hex().substr(0, 6), "abcdef");
}

TEST(NodeId, FromHexPadsShortStrings) {
    const NodeId id = NodeId::from_hex("ff");
    EXPECT_EQ(id.digit(0), 15);
    EXPECT_EQ(id.digit(1), 15);
    EXPECT_EQ(id.digit(2), 0);
}

TEST(NodeId, FromHexRejectsBadInput) {
    EXPECT_THROW(NodeId::from_hex("xyz"), std::invalid_argument);
    EXPECT_THROW(NodeId::from_hex(std::string(41, 'a')),
                 std::invalid_argument);
}

TEST(NodeId, DigitAccessMatchesHex) {
    const NodeId id = NodeId::from_hex("f0a5");
    EXPECT_EQ(id.digit(0), 0xf);
    EXPECT_EQ(id.digit(1), 0x0);
    EXPECT_EQ(id.digit(2), 0xa);
    EXPECT_EQ(id.digit(3), 0x5);
    EXPECT_THROW(id.digit(-1), std::out_of_range);
    EXPECT_THROW(id.digit(NodeId::kDigits), std::out_of_range);
}

TEST(NodeId, WithDigitReplacesExactlyOneDigit) {
    const NodeId id = NodeId::from_hex("aaaaaaaaaa");
    const NodeId mod = id.with_digit(3, 0x7);
    EXPECT_EQ(mod.digit(3), 0x7);
    for (int i = 0; i < NodeId::kDigits; ++i) {
        if (i == 3) continue;
        EXPECT_EQ(mod.digit(i), id.digit(i)) << "digit " << i;
    }
    EXPECT_THROW(id.with_digit(0, 16), std::out_of_range);
}

TEST(NodeId, SharedPrefixDigits) {
    const NodeId a = NodeId::from_hex("abcd00");
    EXPECT_EQ(a.shared_prefix_digits(NodeId::from_hex("abcd00")), 40);
    EXPECT_EQ(a.shared_prefix_digits(NodeId::from_hex("abce00")), 3);
    EXPECT_EQ(a.shared_prefix_digits(NodeId::from_hex("bbcd00")), 0);
    // First differing digit in the low nibble of a byte.
    EXPECT_EQ(a.shared_prefix_digits(NodeId::from_hex("abcd01")), 5);
}

TEST(NodeId, ClockwiseDistanceWraps) {
    const NodeId zero;
    const NodeId one = NodeId::from_hex(std::string(39, '0') + "1");
    EXPECT_EQ(clockwise_distance(zero, one), one);
    // Wrapping: distance from 1 to 0 is 2^160 - 1 (all f's).
    EXPECT_EQ(clockwise_distance(one, zero).to_hex(), std::string(40, 'f'));
}

TEST(NodeId, RingDistanceIsSymmetricAndPicksShortSide) {
    const NodeId lo = NodeId::from_hex("00");
    const NodeId hi = NodeId::from_hex("ff");  // very close going backwards
    EXPECT_EQ(lo.ring_distance(hi), hi.ring_distance(lo));
    // hi -> lo clockwise is 0x01 0...0, much shorter than lo -> hi.
    EXPECT_EQ(lo.ring_distance(hi), clockwise_distance(hi, lo));
}

TEST(NodeId, AsFractionSpansTheRing) {
    EXPECT_DOUBLE_EQ(NodeId().as_fraction(), 0.0);
    EXPECT_NEAR(NodeId::from_hex("80").as_fraction(), 0.5, 1e-12);
    EXPECT_LT(NodeId::from_hex(std::string(40, 'f')).as_fraction(), 1.0);
    EXPECT_GT(NodeId::from_hex(std::string(40, 'f')).as_fraction(), 0.999);
}

TEST(NodeId, RandomIdsAreDistinctAndDeterministic) {
    Rng rng1(42);
    Rng rng2(42);
    std::unordered_set<NodeId, NodeIdHash> seen;
    for (int i = 0; i < 1000; ++i) {
        const NodeId a = NodeId::random(rng1);
        const NodeId b = NodeId::random(rng2);
        EXPECT_EQ(a, b);
        EXPECT_TRUE(seen.insert(a).second) << "collision at " << i;
    }
}

TEST(NodeId, HashOfIsStableAndSpreads) {
    const NodeId a = NodeId::hash_of("some public key");
    EXPECT_EQ(a, NodeId::hash_of("some public key"));
    EXPECT_NE(a, NodeId::hash_of("some public kez"));
    std::unordered_set<NodeId, NodeIdHash> seen;
    for (int i = 0; i < 500; ++i) {
        EXPECT_TRUE(seen.insert(NodeId::hash_of("key" + std::to_string(i))).second);
    }
}

TEST(NodeId, OrderingIsLexicographicOnBytes) {
    EXPECT_LT(NodeId::from_hex("00ff"), NodeId::from_hex("01"));
    EXPECT_LT(NodeId::from_hex("7f"), NodeId::from_hex("80"));
}

TEST(OverlayGeometry, SlotCounts) {
    const OverlayGeometry g{.digits = 32};
    EXPECT_EQ(g.rows(), 32);
    EXPECT_EQ(g.columns(), 16);
    EXPECT_EQ(g.table_slots(), 512);
}

TEST(NodeId, ShortHexIsPrefix) {
    const NodeId id = NodeId::from_hex("deadbeef12345678");
    EXPECT_EQ(id.short_hex(), "deadbeef");
}

}  // namespace
}  // namespace concilium::util
