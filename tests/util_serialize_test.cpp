#include "util/serialize.h"

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/rng.h"
#include "util/time.h"

namespace concilium::util {
namespace {

TEST(Serialize, ScalarRoundTrip) {
    ByteWriter w;
    w.u8(0xab);
    w.u16(0xbeef);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefULL);
    w.i64(-42);
    w.f64(3.14159);

    ByteReader r(w.data());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0xbeef);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
    EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, StringAndBytesRoundTrip) {
    ByteWriter w;
    w.str("hello overlay");
    const std::vector<std::uint8_t> blob{1, 2, 3, 255};
    w.bytes(blob);
    w.str("");  // empty strings are legal

    ByteReader r(w.data());
    EXPECT_EQ(r.str(), "hello overlay");
    EXPECT_EQ(r.bytes(), blob);
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, NodeIdRoundTrip) {
    Rng rng(1);
    const NodeId id = NodeId::random(rng);
    ByteWriter w;
    w.node_id(id);
    EXPECT_EQ(w.size(), static_cast<std::size_t>(NodeId::kBytes));
    ByteReader r(w.data());
    EXPECT_EQ(r.node_id(), id);
}

TEST(Serialize, TruncatedReadsThrow) {
    ByteWriter w;
    w.u32(7);
    {
        ByteReader r(w.data());
        EXPECT_THROW(r.u64(), std::out_of_range);
    }
    // Length prefix claiming more bytes than present.
    ByteWriter w2;
    w2.u32(100);  // looks like a 100-byte string header
    ByteReader r2(w2.data());
    EXPECT_THROW(r2.str(), std::out_of_range);
}

TEST(Serialize, RemainingTracksProgress) {
    ByteWriter w;
    w.u32(1);
    w.u32(2);
    ByteReader r(w.data());
    EXPECT_EQ(r.remaining(), 8u);
    r.u32();
    EXPECT_EQ(r.remaining(), 4u);
    r.u32();
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serialize, LittleEndianLayout) {
    ByteWriter w;
    w.u32(0x01020304u);
    ASSERT_EQ(w.size(), 4u);
    EXPECT_EQ(w.data()[0], 0x04);
    EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Serialize, RandomizedRoundTripFuzz) {
    Rng rng(99);
    for (int round = 0; round < 50; ++round) {
        ByteWriter w;
        std::vector<std::uint64_t> values;
        const int n = 1 + static_cast<int>(rng.uniform_index(20));
        for (int i = 0; i < n; ++i) {
            values.push_back(rng.uniform_u64());
            w.u64(values.back());
        }
        ByteReader r(w.data());
        for (const std::uint64_t v : values) EXPECT_EQ(r.u64(), v);
        EXPECT_TRUE(r.exhausted());
    }
}

TEST(SimTime, UnitConversions) {
    EXPECT_EQ(kSecond, 1'000'000);
    EXPECT_EQ(kMinute, 60 * kSecond);
    EXPECT_EQ(kHour, 3600 * kSecond);
    EXPECT_DOUBLE_EQ(to_seconds(90 * kSecond), 90.0);
    EXPECT_EQ(from_seconds(2.5), 2'500'000);
}

TEST(Logging, LevelGateWorks) {
    const LogLevel old = log_level();
    set_log_level(LogLevel::kError);
    EXPECT_EQ(log_level(), LogLevel::kError);
    // Below-threshold logging is a no-op (no crash, no assertion).
    log_debug("invisible ", 42);
    log_info("also invisible");
    set_log_level(old);
}

}  // namespace
}  // namespace concilium::util
