// Property sweeps for the tomography stack: MINC inference on randomly
// generated trees with randomly placed loss must recover the planted rates
// on identifiable links, and overlay tree construction must be consistent
// with the overlay's routing state.

#include <gtest/gtest.h>

#include <unordered_map>

#include "net/topology_gen.h"
#include "tomography/inference.h"
#include "tomography/overlay_trees.h"
#include "tomography/probing.h"
#include "util/rng.h"

namespace concilium::tomography {
namespace {

/// Builds a random tree topology: `branch` children per interior node,
/// `depth` levels, one end host per leaf.
struct RandomTree {
    RandomTree(int branch, int depth, util::Rng& rng) {
        root = topo.add_router(net::RouterTier::kCore);
        grow(root, branch, depth, rng);
        const net::PathOracle oracle(topo);
        tree.emplace(root, oracle.paths_from(root, hosts));
    }

    void grow(net::RouterId at, int branch, int depth, util::Rng& rng) {
        if (depth == 0) return;
        // Randomize the branch count a little so trees are not regular.
        const int kids = std::max(
            1, branch + static_cast<int>(rng.uniform_int(-1, 1)));
        for (int c = 0; c < kids; ++c) {
            const bool leaf_level = depth == 1;
            const net::RouterId child = topo.add_router(
                leaf_level ? net::RouterTier::kEndHost
                           : net::RouterTier::kStub);
            topo.add_link(at, child);
            if (leaf_level) {
                hosts.push_back(child);
            } else {
                grow(child, branch, depth - 1, rng);
            }
        }
    }

    net::Topology topo;
    net::RouterId root = 0;
    std::vector<net::RouterId> hosts;
    std::optional<ProbeTree> tree;
};

class MincRandomTreeProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MincRandomTreeProperty, RecoversPlantedLossRates) {
    const auto [branch, depth, seed] = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
    RandomTree world(branch, depth, rng);
    const auto& tree = *world.tree;
    if (tree.leaves().size() < 2) GTEST_SKIP();

    // Plant loss on ~20% of tree links, rates in [0.05, 0.3].
    std::unordered_map<net::LinkId, double> loss;
    for (const net::LinkId l : tree.links()) {
        if (rng.bernoulli(0.2)) {
            loss.emplace(l, rng.uniform(0.05, 0.3));
        }
    }
    const auto pass = [&loss](net::LinkId l, util::SimTime) {
        const auto it = loss.find(l);
        return it == loss.end() ? 1.0 : 1.0 - it->second;
    };
    const auto session = run_heavyweight_session(
        tree, pass, 0, HeavyweightParams{.probe_count = 6000}, {}, rng);
    const auto result = infer_link_loss(tree, session.probes);

    for (const auto& e : result.links) {
        if (!e.observable) continue;
        const double truth =
            loss.contains(e.link) ? loss.at(e.link) : 0.0;
        if (e.chain_length == 1) {
            // Fully identifiable link: the estimate must track the truth.
            EXPECT_NEAR(e.loss, truth, 0.06)
                << "link " << e.link << " branch=" << branch
                << " depth=" << depth << " seed=" << seed;
        } else {
            // Chain estimate: bounded below by any member's true loss...
            EXPECT_GE(e.loss, truth - 0.06);
            // ...and above by the chain's aggregate.
        }
        EXPECT_GE(e.loss, -1e-9);
        EXPECT_LE(e.loss, 1.0 + 1e-9);
    }
}

TEST_P(MincRandomTreeProperty, CleanTreeInfersClean) {
    const auto [branch, depth, seed] = GetParam();
    util::Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 7);
    RandomTree world(branch, depth, rng);
    const auto& tree = *world.tree;
    if (tree.leaves().empty()) GTEST_SKIP();
    const auto session = run_heavyweight_session(
        tree, [](net::LinkId, util::SimTime) { return 1.0; }, 0,
        HeavyweightParams{.probe_count = 300}, {}, rng);
    const auto result = infer_link_loss(tree, session.probes);
    for (const auto& e : result.links) {
        EXPECT_NEAR(e.loss, 0.0, 1e-9);
        EXPECT_TRUE(e.observable);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MincRandomTreeProperty,
    ::testing::Combine(::testing::Values(2, 3),   // branching factor
                       ::testing::Values(2, 3, 4),  // depth
                       ::testing::Values(1, 2, 3)));  // seeds

// ------------------------------------------------------- OverlayTrees

TEST(OverlayTrees, ConsistentWithRoutingState) {
    util::Rng rng(9);
    const net::Topology topo =
        net::generate_topology(net::small_params(), rng);
    crypto::CertificateAuthority ca(10);
    const auto net = overlay::build_overlay_from_hosts(
        topo.end_hosts(), 50, ca, overlay::OverlayParams{}, rng);
    const OverlayTrees trees(net, topo);

    ASSERT_EQ(trees.size(), net.size());
    for (overlay::MemberIndex m = 0; m < net.size(); ++m) {
        EXPECT_EQ(trees.tree(m).root(), net.member(m).ip());
        const auto& peers = net.routing_peers(m);
        std::size_t reachable = 0;
        for (const auto p : peers) {
            const auto slot = trees.leaf_slot(m, p);
            if (!slot.has_value()) continue;
            ++reachable;
            // The leaf slot's ip/id bookkeeping lines up.
            EXPECT_EQ(trees.tree(m).leaves().at(
                          static_cast<std::size_t>(*slot)),
                      net.member(p).ip());
            EXPECT_EQ(trees.leaf_ids(m).at(static_cast<std::size_t>(*slot)),
                      net.member(p).id());
            EXPECT_EQ(trees.leaf_members(m).at(
                          static_cast<std::size_t>(*slot)),
                      p);
            // path_links agrees with the tree's own path.
            const auto arena_links = trees.path_links(m, p);
            EXPECT_EQ(std::vector<net::LinkId>(arena_links.begin(),
                                               arena_links.end()),
                      trees.tree(m).path_links(*slot));
            // ... and with direct slot addressing.
            const auto slot_links = trees.slot_path_links(m, *slot);
            EXPECT_TRUE(std::equal(arena_links.begin(), arena_links.end(),
                                   slot_links.begin(), slot_links.end()));
        }
        // A connected topology reaches every peer.
        EXPECT_EQ(reachable, peers.size());
    }
    // The candidate-path list has one entry per (member, reachable peer).
    std::size_t expected_paths = 0;
    for (overlay::MemberIndex m = 0; m < net.size(); ++m) {
        expected_paths += net.routing_peers(m).size();
    }
    EXPECT_EQ(trees.member_peer_paths().size(), expected_paths);
}

TEST(OverlayTrees, PathLinksThrowsForNonPeer) {
    util::Rng rng(11);
    const net::Topology topo =
        net::generate_topology(net::small_params(), rng);
    crypto::CertificateAuthority ca(12);
    const auto net = overlay::build_overlay_from_hosts(
        topo.end_hosts(), 20, ca, overlay::OverlayParams{}, rng);
    const OverlayTrees trees(net, topo);
    // Find a non-peer pair.
    for (overlay::MemberIndex m = 0; m < net.size(); ++m) {
        const auto& peers = net.routing_peers(0);
        if (m != 0 &&
            std::find(peers.begin(), peers.end(), m) == peers.end()) {
            EXPECT_THROW((void)trees.path_links(0, m),
                         std::invalid_argument);
            return;
        }
    }
    GTEST_SKIP() << "everyone peers with node 0 in this tiny overlay";
}

}  // namespace
}  // namespace concilium::tomography
