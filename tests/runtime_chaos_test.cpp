// Integration tests of the chaos layer against the protocol runtime: fault
// plans attached with Cluster::set_chaos must degrade delivery, not
// diagnosis -- an innocent forwarder whose IP link flaps draws a link
// verdict, never an accusation.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "net/chaos.h"
#include "net/topology_gen.h"
#include "runtime/cluster.h"

namespace concilium::runtime {
namespace {

using overlay::MemberIndex;
using util::kMinute;
using util::kSecond;

/// The runtime_cluster_test world: small topology, 50-node overlay, and an
/// initially healthy failure timeline (chaos supplies the faults here).
struct ChaosWorld {
    explicit ChaosWorld(std::uint64_t seed = 5, std::size_t nodes = 50)
        : rng(seed),
          topology(net::generate_topology(alter(net::small_params()), rng)),
          ca(seed + 1) {
        overlay.emplace(overlay::build_overlay_from_hosts(
            topology.end_hosts(), nodes, ca, overlay::OverlayParams{}, rng));
        trees.emplace(*overlay, topology);
        timeline.finalize();
    }

    static net::TopologyParams alter(net::TopologyParams p) {
        p.end_hosts = 300;
        return p;
    }

    Cluster make_cluster(RuntimeParams params = {},
                         std::vector<NodeBehavior> behaviors = {}) {
        return Cluster(sim, timeline, *overlay, *trees, params,
                       std::move(behaviors), rng.fork());
    }

    util::Rng rng;
    net::Topology topology;
    crypto::CertificateAuthority ca;
    std::optional<overlay::OverlayNetwork> overlay;
    std::optional<tomography::OverlayTrees> trees;
    net::FailureTimeline timeline;
    net::EventSim sim;
};

/// A route of at least `min_len` hops, searched deterministically.
std::optional<std::pair<MemberIndex, util::NodeId>> long_route(
    const overlay::OverlayNetwork& net, std::size_t min_len) {
    util::Rng search(3);
    for (int attempt = 0; attempt < 20000; ++attempt) {
        const auto from =
            static_cast<MemberIndex>(search.uniform_index(net.size()));
        const util::NodeId key = util::NodeId::random(search);
        try {
            if (net.route(from, key).size() >= min_len) {
                return std::make_pair(from, key);
            }
        } catch (const std::exception&) {
        }
    }
    return std::nullopt;
}

TEST(ClusterChaos, InnocentForwarderUnderFlappingLinkIsNotAccused) {
    ChaosWorld world;
    const auto picked = long_route(*world.overlay, 3);
    ASSERT_TRUE(picked.has_value()) << "no 3-hop route in small world";
    const auto [from, key] = *picked;
    const auto hops = world.overlay->route(from, key);
    const MemberIndex forwarder = hops[1];

    // Flap a shared *transit* link of the forwarder's outgoing segment:
    // not on the upstream segment (the message must reach the forwarder),
    // not either endpoint's last mile, and observed by at least two leaves
    // of the forwarder's probe tree.  Correlated silence behind a shared
    // link survives the suppression filter (the silent leaves are each
    // other's only siblings), so the forwarder's reactive heavyweight
    // probing localizes the outage and its innocent verdict on the next
    // hop rides the revision chain back to the sender.  (A flapped
    // last-mile link is observationally identical to an offline node and
    // is deliberately convicted; see
    // Cluster.OfflineNodeIsBlamedLikeADropperAndRecovers.)
    const auto upstream = world.trees->path_links(hops[0], hops[1]);
    const auto segment = world.trees->path_links(hops[1], hops[2]);
    ASSERT_GE(segment.size(), 3u);
    const auto& tree = world.trees->tree(forwarder);
    std::optional<net::LinkId> flapped;
    for (std::size_t i = 1; i + 1 < segment.size() && !flapped; ++i) {
        const net::LinkId link = segment[i];
        if (std::find(upstream.begin(), upstream.end(), link) !=
            upstream.end()) {
            continue;
        }
        int observers = 0;
        for (std::size_t s = 0; s < tree.leaves().size(); ++s) {
            const auto path = tree.path_links(static_cast<int>(s));
            if (std::find(path.begin(), path.end(), link) != path.end()) {
                ++observers;
            }
        }
        if (observers >= 2) flapped = link;
    }
    ASSERT_TRUE(flapped.has_value()) << "no shared transit link on segment";

    // 150 s down / 90 s up, forever.  Sends land 60 s into the down
    // window, so the whole +-delta blame window sits inside the outage
    // and every admissible probe of the flapped link voted "down".
    net::FaultPlan plan;
    for (util::SimTime t = 0; t < 3 * util::kHour; t += 4 * kMinute) {
        plan.downs.add_down(*flapped, {t, t + 150 * kSecond});
    }
    plan.downs.finalize();

    RuntimeParams params;
    params.forward_retry.max_attempts = 3;
    Cluster cluster = world.make_cluster(params);
    cluster.set_chaos(&plan);
    cluster.start();
    // 5 min = 60 s into the second down window; every send below advances
    // by two full flap cycles, so each lands at the same cycle position.
    world.sim.run_until(5 * kMinute);

    std::size_t network_blamed = 0;
    std::size_t node_blamed = 0;
    std::size_t delivered = 0;
    const util::NodeId forwarder_id = world.overlay->member(forwarder).id();
    bool forwarder_ever_blamed = false;
    for (int i = 0; i < 12; ++i) {
        cluster.send(from, key,
                     [&](const Cluster::MessageOutcome& out) {
                         if (out.delivered) {
                             ++delivered;
                             return;
                         }
                         if (out.network_blamed) ++network_blamed;
                         if (out.blamed.has_value()) {
                             ++node_blamed;
                             forwarder_ever_blamed =
                                 forwarder_ever_blamed ||
                                 *out.blamed == forwarder_id;
                         }
                     });
        world.sim.run_until(world.sim.now() + 8 * kMinute);
    }
    world.sim.run_until(world.sim.now() + 5 * kMinute);

    // Every send died inside a down window and was diagnosed as such.
    EXPECT_GT(network_blamed, 0u) << "no send hit a down window";
    // The point of the chaos layer: an IP fault yields a link verdict, not
    // a node verdict, and never an accusation against the honest forwarder.
    EXPECT_FALSE(forwarder_ever_blamed);
    EXPECT_EQ(node_blamed, 0u);
    EXPECT_TRUE(cluster.accusations_against(forwarder).empty());
    EXPECT_EQ(cluster.stats().accusations_filed, 0u);
}

TEST(ClusterChaos, RetransmissionImprovesDeliveryUnderResidualLoss) {
    const auto run = [](int max_attempts) {
        ChaosWorld world;
        RuntimeParams params;
        params.transport.healthy_link_loss = 0.05;
        params.forward_retry.max_attempts = max_attempts;
        Cluster cluster = world.make_cluster(params);
        cluster.start();
        world.sim.run_until(3 * kMinute);
        std::size_t delivered = 0;
        util::Rng pick(7);
        for (int i = 0; i < 30; ++i) {
            const auto from = static_cast<MemberIndex>(
                pick.uniform_index(world.overlay->size()));
            cluster.send(from, util::NodeId::random(pick),
                         [&](const Cluster::MessageOutcome& out) {
                             if (out.delivered) ++delivered;
                         });
            world.sim.run_until(world.sim.now() + 30 * kSecond);
        }
        world.sim.run_until(world.sim.now() + 2 * kMinute);
        return std::make_pair(delivered, cluster.stats());
    };

    const auto [without_retry, stats_without] = run(1);
    const auto [with_retry, stats_with] = run(4);
    EXPECT_EQ(stats_without.forward_retransmissions, 0u);
    EXPECT_GT(stats_with.forward_retransmissions, 0u);
    // Retransmission heals IP loss the steward could not otherwise tell
    // apart from a malicious drop.
    EXPECT_GT(with_retry, without_retry);
}

TEST(ClusterChaos, DuplicatedPacketsDeliverExactlyOnce) {
    ChaosWorld world;
    net::FaultPlan plan;
    plan.duplicate_rate = 1.0;  // every transmission is duplicated
    plan.downs.finalize();

    Cluster cluster = world.make_cluster();
    cluster.set_chaos(&plan);
    cluster.start();
    world.sim.run_until(3 * kMinute);

    std::size_t callbacks = 0;
    std::size_t delivered = 0;
    util::Rng pick(11);
    for (int i = 0; i < 15; ++i) {
        const auto from = static_cast<MemberIndex>(
            pick.uniform_index(world.overlay->size()));
        cluster.send(from, util::NodeId::random(pick),
                     [&](const Cluster::MessageOutcome& out) {
                         ++callbacks;
                         if (out.delivered) ++delivered;
                     });
        world.sim.run_until(world.sim.now() + 30 * kSecond);
    }
    world.sim.run_until(world.sim.now() + 2 * kMinute);

    // Exactly one completion per send despite the duplicate copies, and
    // the receivers actually saw (and suppressed) duplicates.
    EXPECT_EQ(callbacks, 15u);
    EXPECT_EQ(delivered, 15u);
    EXPECT_GT(cluster.stats().duplicates_suppressed, 0u);
    EXPECT_EQ(cluster.stats().accusations_filed, 0u);
}

TEST(ClusterChaos, ChurnScheduleTogglesNodesAndRecovers) {
    ChaosWorld world;
    net::FaultPlan plan;
    // Every node leaves once, staggered, for 2 minutes each.
    for (std::size_t n = 0; n < world.overlay->size(); ++n) {
        const auto leave =
            static_cast<util::SimTime>(5 * kMinute + n * 10 * kSecond);
        plan.churn.push_back({n, leave, leave + 2 * kMinute});
    }
    plan.downs.finalize();

    Cluster cluster = world.make_cluster();
    cluster.set_chaos(&plan);
    cluster.start();
    world.sim.run_until(30 * kMinute);

    EXPECT_EQ(cluster.stats().churn_leaves, world.overlay->size());
    EXPECT_EQ(cluster.stats().churn_rejoins, world.overlay->size());

    // After the churn wave has fully passed, the cluster delivers again.
    std::size_t delivered = 0;
    util::Rng pick(13);
    for (int i = 0; i < 10; ++i) {
        const auto from = static_cast<MemberIndex>(
            pick.uniform_index(world.overlay->size()));
        cluster.send(from, util::NodeId::random(pick),
                     [&](const Cluster::MessageOutcome& out) {
                         if (out.delivered) ++delivered;
                     });
        world.sim.run_until(world.sim.now() + 30 * kSecond);
    }
    world.sim.run_until(world.sim.now() + 2 * kMinute);
    EXPECT_GT(delivered, 7u);
}

TEST(ClusterChaos, SnapshotRetryExhaustionDegradesGracefully) {
    ChaosWorld world;
    const auto picked = long_route(*world.overlay, 3);
    ASSERT_TRUE(picked.has_value());
    const auto [from, key] = *picked;
    const auto hops = world.overlay->route(from, key);

    // Take the whole forwarder segment down hard: snapshot exchanges over
    // it fail every retry, and the budget must bound the attempts.
    net::FaultPlan plan;
    for (const net::LinkId l : world.trees->path_links(hops[1], hops[2])) {
        plan.downs.add_down(l, {0, 2 * util::kHour});
    }
    plan.downs.finalize();

    Cluster cluster = world.make_cluster();
    cluster.set_chaos(&plan);
    cluster.start();
    world.sim.run_until(10 * kMinute);

    std::optional<Cluster::MessageOutcome> outcome;
    cluster.send(from, key, [&](const Cluster::MessageOutcome& out) {
        outcome = out;
    });
    world.sim.run_until(world.sim.now() + 3 * kMinute);

    // Some snapshot deliveries exhausted their retry budget...
    EXPECT_GT(cluster.stats().snapshot_retries, 0u);
    // ...yet diagnosis still completed instead of wedging on the missing
    // evidence, and nobody was accused for an IP outage.
    ASSERT_TRUE(outcome.has_value());
    EXPECT_FALSE(outcome->delivered);
    EXPECT_EQ(cluster.stats().accusations_filed, 0u);
}

}  // namespace
}  // namespace concilium::runtime
