#include "core/blame.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace concilium::core {
namespace {

using util::kSecond;

const util::NodeId kJudged = util::NodeId::from_hex("bb");
const util::NodeId kReporterQ = util::NodeId::from_hex("01");
const util::NodeId kReporterR = util::NodeId::from_hex("02");
const util::NodeId kReporterS = util::NodeId::from_hex("03");

ProbeResult probe(const util::NodeId& who, net::LinkId link, bool up,
                  util::SimTime at = 0) {
    return ProbeResult{who, link, up, at};
}

TEST(ProbeVote, WeighsByAccuracy) {
    EXPECT_DOUBLE_EQ(probe_vote(false, 0.8), 0.8);  // down-probe: bad w.p. a
    EXPECT_DOUBLE_EQ(probe_vote(true, 0.8), 0.2);   // up-probe: bad w.p. 1-a
}

TEST(ComputeBlame, PaperWorkedExample) {
    // Section 3.4: Q and R probe a link as down, S probes it up, a = 0.8
    // => bad confidence (1/3)(0.8)+(1/3)(0.8)+(1/3)(0.2) = 0.6.
    const std::vector<net::LinkId> path{5};
    const std::vector<ProbeResult> probes{
        probe(kReporterQ, 5, false),
        probe(kReporterR, 5, false),
        probe(kReporterS, 5, true),
    };
    BlameParams params;
    params.probe_accuracy = 0.8;
    const auto b = compute_blame(path, probes, 0, kJudged, params);
    EXPECT_NEAR(b.path_bad_confidence, 0.6, 1e-12);
    EXPECT_NEAR(b.blame, 0.4, 1e-12);
    ASSERT_EQ(b.links.size(), 1u);
    EXPECT_EQ(b.links[0].probes_used, 3);
}

TEST(ComputeBlame, NoProbesMeansFullBlame) {
    // "Otherwise, Concilium determines that B was faulty."
    const std::vector<net::LinkId> path{1, 2, 3};
    const auto b = compute_blame(path, {}, 0, kJudged, BlameParams{});
    EXPECT_DOUBLE_EQ(b.blame, 1.0);
    EXPECT_TRUE(b.links.empty());
}

TEST(ComputeBlame, FuzzyMaxPicksWorstLink) {
    const std::vector<net::LinkId> path{1, 2};
    const std::vector<ProbeResult> probes{
        probe(kReporterQ, 1, true),   // link 1 looks fine: confidence 0.1
        probe(kReporterQ, 2, false),  // link 2 looks down: confidence 0.9
    };
    const auto b = compute_blame(path, probes, 0, kJudged, BlameParams{});
    EXPECT_NEAR(b.path_bad_confidence, 0.9, 1e-12);
    EXPECT_NEAR(b.blame, 0.1, 1e-12);
}

TEST(ComputeBlame, MeanOperatorAverages) {
    const std::vector<net::LinkId> path{1, 2};
    const std::vector<ProbeResult> probes{
        probe(kReporterQ, 1, true),
        probe(kReporterQ, 2, false),
    };
    BlameParams params;
    params.or_operator = BlameParams::OrOperator::kMean;
    const auto b = compute_blame(path, probes, 0, kJudged, params);
    EXPECT_NEAR(b.path_bad_confidence, 0.5, 1e-12);
}

TEST(ComputeBlame, JudgedNodesOwnProbesAreExcluded) {
    // "when A judges the trustworthiness of B, it does not incorporate B's
    // probe results into Equation 3."
    const std::vector<net::LinkId> path{1};
    const std::vector<ProbeResult> probes{
        probe(kJudged, 1, false),  // B claims the link was down
    };
    const auto b = compute_blame(path, probes, 0, kJudged, BlameParams{});
    EXPECT_DOUBLE_EQ(b.blame, 1.0);  // B's self-serving claim carries nothing
}

TEST(ComputeBlame, DeltaWindowFiltersStaleAndFutureProbes) {
    const std::vector<net::LinkId> path{1};
    BlameParams params;  // delta = 60 s
    const util::SimTime t = 600 * kSecond;
    const std::vector<ProbeResult> probes{
        probe(kReporterQ, 1, false, t - 61 * kSecond),  // too old
        probe(kReporterR, 1, false, t + 61 * kSecond),  // too new
        probe(kReporterS, 1, true, t + 30 * kSecond),   // admitted
    };
    const auto b = compute_blame(path, probes, t, kJudged, params);
    ASSERT_EQ(b.links.size(), 1u);
    EXPECT_EQ(b.links[0].probes_used, 1);
    EXPECT_NEAR(b.path_bad_confidence, 1.0 - params.probe_accuracy, 1e-12);
}

TEST(ComputeBlame, WindowBoundariesAreInclusive) {
    const std::vector<net::LinkId> path{1};
    BlameParams params;
    const util::SimTime t = 600 * kSecond;
    const std::vector<ProbeResult> probes{
        probe(kReporterQ, 1, false, t - 60 * kSecond),
        probe(kReporterR, 1, false, t + 60 * kSecond),
    };
    const auto b = compute_blame(path, probes, t, kJudged, params);
    EXPECT_EQ(b.links[0].probes_used, 2);
}

TEST(ComputeBlame, OffPathProbesIgnored) {
    const std::vector<net::LinkId> path{1};
    const std::vector<ProbeResult> probes{
        probe(kReporterQ, 99, false),  // not on the path
    };
    const auto b = compute_blame(path, probes, 0, kJudged, BlameParams{});
    EXPECT_DOUBLE_EQ(b.blame, 1.0);
}

TEST(ComputeBlame, AllProbesDownYieldsMinimalBlame) {
    const std::vector<net::LinkId> path{1};
    const std::vector<ProbeResult> probes{
        probe(kReporterQ, 1, false),
        probe(kReporterR, 1, false),
    };
    BlameParams params;
    params.probe_accuracy = 0.9;
    const auto b = compute_blame(path, probes, 0, kJudged, params);
    EXPECT_NEAR(b.blame, 0.1, 1e-12);
}

TEST(ComputeBlame, DuplicatePathLinksCountOnce) {
    const std::vector<net::LinkId> path{1, 1, 2};
    const std::vector<ProbeResult> probes{
        probe(kReporterQ, 1, false),
        probe(kReporterQ, 2, true),
    };
    const auto b = compute_blame(path, probes, 0, kJudged, BlameParams{});
    EXPECT_EQ(b.links.size(), 2u);  // link 1 listed once
}

TEST(ComputeBlame, BreakdownIsDeterministicPathOrder) {
    const std::vector<net::LinkId> path{9, 3, 7};
    const std::vector<ProbeResult> probes{
        probe(kReporterQ, 3, true),
        probe(kReporterQ, 7, true),
        probe(kReporterQ, 9, true),
    };
    const auto b = compute_blame(path, probes, 0, kJudged, BlameParams{});
    ASSERT_EQ(b.links.size(), 3u);
    EXPECT_EQ(b.links[0].link, 9u);
    EXPECT_EQ(b.links[1].link, 3u);
    EXPECT_EQ(b.links[2].link, 7u);
}

TEST(ComputeBlame, RejectsNonsenseAccuracy) {
    const std::vector<net::LinkId> path{1};
    BlameParams params;
    params.probe_accuracy = 0.3;  // worse than coin-flip: misconfiguration
    EXPECT_THROW(compute_blame(path, {}, 0, kJudged, params),
                 std::invalid_argument);
}

TEST(ComputeBlame, MoreDownVotesMonotonicallyLowerBlame) {
    const std::vector<net::LinkId> path{1};
    BlameParams params;
    double prev_blame = 1.1;
    for (int down = 0; down <= 10; ++down) {
        std::vector<ProbeResult> probes;
        for (int i = 0; i < 10; ++i) {
            // Distinct reporter ids so none are filtered.
            probes.push_back(probe(
                util::NodeId::from_hex("c" + std::to_string(i)), 1, i >= down));
        }
        const auto b = compute_blame(path, probes, 0, kJudged, params);
        EXPECT_LT(b.blame, prev_blame) << down << " down-votes";
        prev_blame = b.blame;
    }
}

}  // namespace
}  // namespace concilium::core
