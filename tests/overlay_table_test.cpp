#include <gtest/gtest.h>

#include "overlay/jump_table.h"
#include "overlay/leaf_set.h"
#include "util/rng.h"

namespace concilium::overlay {
namespace {

util::OverlayGeometry geom32() { return util::OverlayGeometry{.digits = 32}; }

TEST(JumpTable, StartsEmpty) {
    const JumpTable t(util::NodeId::from_hex("ab"), geom32());
    EXPECT_EQ(t.occupancy(), 0);
    EXPECT_DOUBLE_EQ(t.density(), 0.0);
    EXPECT_FALSE(t.slot(0, 0).has_value());
    EXPECT_TRUE(t.entries().empty());
}

TEST(JumpTable, SetClearAndOccupancy) {
    JumpTable t(util::NodeId::from_hex("ab"), geom32());
    t.set_slot(0, 3, 7);
    t.set_slot(1, 5, 9);
    EXPECT_EQ(t.occupancy(), 2);
    EXPECT_EQ(t.slot(0, 3).value(), 7u);
    // Overwriting does not double-count.
    t.set_slot(0, 3, 8);
    EXPECT_EQ(t.occupancy(), 2);
    EXPECT_EQ(t.slot(0, 3).value(), 8u);
    t.clear_slot(0, 3);
    EXPECT_EQ(t.occupancy(), 1);
    t.clear_slot(0, 3);  // clearing empty slot is harmless
    EXPECT_EQ(t.occupancy(), 1);
    EXPECT_DOUBLE_EQ(t.density(), 1.0 / geom32().table_slots());
}

TEST(JumpTable, SlotIndexValidation) {
    JumpTable t(util::NodeId::from_hex("ab"), geom32());
    EXPECT_THROW((void)t.slot(-1, 0), std::out_of_range);
    EXPECT_THROW((void)t.slot(32, 0), std::out_of_range);
    EXPECT_THROW((void)t.slot(0, 16), std::out_of_range);
    EXPECT_THROW(t.set_slot(0, -1, 1), std::out_of_range);
}

TEST(JumpTable, EntriesEnumerationIsRowMajor) {
    JumpTable t(util::NodeId::from_hex("ab"), geom32());
    t.set_slot(2, 1, 10);
    t.set_slot(0, 5, 11);
    t.set_slot(0, 2, 12);
    const auto entries = t.entries();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].member, 12u);
    EXPECT_EQ(entries[1].member, 11u);
    EXPECT_EQ(entries[2].member, 10u);
}

TEST(JumpTable, StandardConstraint) {
    // Owner abc...; slot (2, 7) requires prefix "ab" and third digit 7.
    const util::NodeId owner = util::NodeId::from_hex("abc123");
    const JumpTable t(owner, geom32());
    EXPECT_TRUE(t.satisfies_standard_constraint(
        2, 7, util::NodeId::from_hex("ab7999")));
    EXPECT_FALSE(t.satisfies_standard_constraint(
        2, 7, util::NodeId::from_hex("ac7999")));  // wrong prefix
    EXPECT_FALSE(t.satisfies_standard_constraint(
        2, 8, util::NodeId::from_hex("ab7999")));  // wrong digit
    EXPECT_FALSE(t.satisfies_standard_constraint(2, 0xc, owner));  // self
}

TEST(JumpTable, ConstraintPointSubstitutesOneDigit) {
    const util::NodeId owner = util::NodeId::from_hex("abc123");
    const JumpTable t(owner, geom32());
    const util::NodeId p = t.constraint_point(1, 0xf);
    EXPECT_EQ(p.digit(0), 0xa);
    EXPECT_EQ(p.digit(1), 0xf);
    EXPECT_EQ(p.digit(2), 0xc);
}

TEST(JumpTable, RejectsBadGeometry) {
    EXPECT_THROW(JumpTable(util::NodeId(),
                           util::OverlayGeometry{.digits = 0}),
                 std::invalid_argument);
    EXPECT_THROW(JumpTable(util::NodeId(),
                           util::OverlayGeometry{.digits = 41}),
                 std::invalid_argument);
}

TEST(LeafSet, HoldsBothSides) {
    LeafSet ls(util::NodeId::from_hex("80"), 3);
    ls.set_successors({1, 2, 3});
    ls.set_predecessors({4, 5});
    EXPECT_EQ(ls.size(), 5u);
    EXPECT_EQ(ls.successors().size(), 3u);
    EXPECT_EQ(ls.predecessors().size(), 2u);
    const auto all = ls.all();
    EXPECT_EQ(all.size(), 5u);
}

TEST(LeafSet, RejectsOverfill) {
    LeafSet ls(util::NodeId::from_hex("80"), 2);
    EXPECT_THROW(ls.set_successors({1, 2, 3}), std::invalid_argument);
    EXPECT_THROW(LeafSet(util::NodeId(), 0), std::invalid_argument);
}

TEST(LeafSet, MeanSpacingOfUniformRing) {
    // Ids at exact 1/8 intervals around the ring; owner at 0x80....
    std::vector<util::NodeId> ids;
    for (int i = 0; i < 8; ++i) {
        std::string hex(40, '0');
        hex[0] = "0123456789abcdef"[i * 2];
        ids.push_back(util::NodeId::from_hex(hex));
    }
    // Owner is ids[4] (0x8...); successors 5,6; predecessors 3,2.
    LeafSet ls(ids[4], 2);
    ls.set_successors({5, 6});
    ls.set_predecessors({3, 2});
    const auto resolver = [&](MemberIndex m) { return ids[m]; };
    // Span covers ids[2]..ids[6]: 4/8 of the ring over 4 members.
    EXPECT_NEAR(ls.mean_spacing(resolver), 0.125, 1e-9);
    EXPECT_NEAR(ls.estimate_population(resolver), 8.0, 1e-6);
}

TEST(LeafSet, PopulationEstimateTracksOverlaySize) {
    util::Rng rng(5);
    const int n = 4000;
    std::vector<util::NodeId> ids;
    for (int i = 0; i < n; ++i) ids.push_back(util::NodeId::random(rng));
    std::vector<int> order(n);
    for (int i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return ids[a] < ids[b]; });
    // Build the leaf set of the node at sorted position 2000.
    const int center = 2000;
    LeafSet ls(ids[order[center]], 8);
    std::vector<MemberIndex> cw;
    std::vector<MemberIndex> ccw;
    for (int k = 1; k <= 8; ++k) {
        cw.push_back(static_cast<MemberIndex>(order[center + k]));
        ccw.push_back(static_cast<MemberIndex>(order[center - k]));
    }
    ls.set_successors(cw);
    ls.set_predecessors(ccw);
    const double estimate =
        ls.estimate_population([&](MemberIndex m) { return ids[m]; });
    // Leaf-spacing estimates are noisy but unbiased to within a factor.
    EXPECT_GT(estimate, n * 0.4);
    EXPECT_LT(estimate, n * 2.5);
}

}  // namespace
}  // namespace concilium::overlay
