#include <gtest/gtest.h>

#include <unordered_set>

#include "net/link_state.h"
#include "util/stats.h"
#include "net/topology_gen.h"
#include "net/transport.h"
#include "util/rng.h"

namespace concilium::net {
namespace {

using util::kMinute;
using util::kSecond;

TEST(FailureTimeline, UpByDefault) {
    FailureTimeline t;
    t.finalize();
    EXPECT_TRUE(t.is_up(0, 0));
    EXPECT_TRUE(t.is_up(12345, 99 * kMinute));
}

TEST(FailureTimeline, DownInsideIntervalOnly) {
    FailureTimeline t;
    t.add_down(7, DownInterval{10 * kSecond, 20 * kSecond});
    t.finalize();
    EXPECT_TRUE(t.is_up(7, 9 * kSecond));
    EXPECT_FALSE(t.is_up(7, 10 * kSecond));
    EXPECT_FALSE(t.is_up(7, 19 * kSecond));
    EXPECT_TRUE(t.is_up(7, 20 * kSecond));  // end is exclusive
    EXPECT_TRUE(t.is_up(8, 15 * kSecond));  // other links unaffected
}

TEST(FailureTimeline, OverlappingIntervalsMerge) {
    FailureTimeline t;
    t.add_down(1, DownInterval{0, 10});
    t.add_down(1, DownInterval{5, 20});
    t.add_down(1, DownInterval{30, 40});
    t.finalize();
    ASSERT_EQ(t.intervals(1).size(), 2u);
    EXPECT_EQ(t.intervals(1)[0].start, 0);
    EXPECT_EQ(t.intervals(1)[0].end, 20);
}

TEST(FailureTimeline, QueriesBeforeFinalizeThrow) {
    FailureTimeline t;
    t.add_down(1, DownInterval{0, 10});
    EXPECT_THROW((void)t.is_up(1, 5), std::logic_error);
}

TEST(FailureTimeline, EmptyIntervalIgnored) {
    FailureTimeline t;
    t.add_down(1, DownInterval{10, 10});
    t.add_down(1, DownInterval{10, 5});
    t.finalize();
    EXPECT_TRUE(t.intervals(1).empty());
}

TEST(FailureTimeline, AnyDownAndDownCount) {
    FailureTimeline t;
    t.add_down(2, DownInterval{0, 100});
    t.add_down(4, DownInterval{0, 100});
    t.finalize();
    const std::vector<LinkId> links{1, 2, 3};
    EXPECT_TRUE(t.any_down(links, 50));
    EXPECT_EQ(t.down_count(links, 50), 1u);
    const std::vector<LinkId> up_links{1, 3, 5};
    EXPECT_FALSE(t.any_down(up_links, 50));
    EXPECT_TRUE(t.any_down(links, 0));
    EXPECT_FALSE(t.any_down(links, 100));
}

TEST(FailureTimeline, DownFraction) {
    FailureTimeline t;
    t.add_down(3, DownInterval{10, 20});
    t.finalize();
    EXPECT_DOUBLE_EQ(t.down_fraction(3, 0, 40), 0.25);
    EXPECT_DOUBLE_EQ(t.down_fraction(3, 10, 20), 1.0);
    EXPECT_DOUBLE_EQ(t.down_fraction(3, 20, 40), 0.0);
    EXPECT_DOUBLE_EQ(t.down_fraction(99, 0, 40), 0.0);
}

class GeneratedTimelineTest : public ::testing::Test {
  protected:
    void SetUp() override {
        util::Rng rng(11);
        topo_ = generate_topology(small_params(), rng);
        const PathOracle oracle(topo_);
        const auto hosts = topo_.end_hosts();
        // Paths between random host pairs play the (host, peer) role.
        for (std::size_t i = 0; i + 1 < hosts.size() && i < 60; i += 2) {
            paths_.push_back(oracle.path(hosts[i], hosts[i + 1]));
        }
    }

    Topology topo_;
    std::vector<Path> paths_;
};

TEST_F(GeneratedTimelineTest, SteadyStateFractionNearTarget) {
    util::Rng rng(12);
    FailureModelParams params;
    params.fraction_bad = 0.05;
    const util::SimTime duration = 2 * util::kHour;
    const FailureTimeline timeline =
        generate_failure_timeline(params, duration, paths_, rng);

    std::vector<LinkId> universe;
    {
        std::unordered_set<LinkId> seen;
        for (const Path& p : paths_) {
            for (const LinkId l : p.links) {
                if (seen.insert(l).second) universe.push_back(l);
            }
        }
    }
    // Average the instantaneous down fraction over many probes.
    double sum = 0.0;
    const int probes = 48;
    for (int i = 0; i < probes; ++i) {
        const util::SimTime t = duration * i / probes;
        sum += static_cast<double>(timeline.down_count(universe, t)) /
               static_cast<double>(universe.size());
    }
    EXPECT_NEAR(sum / probes, 0.05, 0.035);
}

TEST_F(GeneratedTimelineTest, DowntimesHavePaperScale) {
    util::Rng rng(13);
    FailureModelParams params;
    const FailureTimeline timeline = generate_failure_timeline(
        params, 2 * util::kHour, paths_, rng);
    util::OnlineMoments durations;
    std::unordered_set<LinkId> seen;
    for (const Path& p : paths_) {
        for (const LinkId l : p.links) {
            if (!seen.insert(l).second) continue;
            for (const DownInterval& iv : timeline.intervals(l)) {
                // Skip intervals clipped by the horizon.
                if (iv.start == 0 || iv.end == 2 * util::kHour) continue;
                durations.add(util::to_seconds(iv.end - iv.start));
            }
        }
    }
    ASSERT_GT(durations.count(), 10);
    // Mean downtime ~15 min (clipping and merging perturb it slightly).
    EXPECT_NEAR(durations.mean(), 15.0 * 60.0, 6.0 * 60.0);
}

TEST_F(GeneratedTimelineTest, NoPathsMeansNoFailures) {
    util::Rng rng(14);
    const FailureTimeline timeline = generate_failure_timeline(
        FailureModelParams{}, util::kHour, {}, rng);
    EXPECT_TRUE(timeline.is_up(0, 0));
}

TEST(Transport, PassProbabilityReflectsLinkState) {
    FailureTimeline timeline;
    timeline.add_down(0, DownInterval{0, 10 * kSecond});
    timeline.finalize();
    EventSim sim;
    Transport transport(timeline, sim, util::Rng(1),
                        TransportParams{.healthy_link_loss = 0.25});
    EXPECT_DOUBLE_EQ(transport.pass_probability(0, 5 * kSecond), 0.0);
    EXPECT_DOUBLE_EQ(transport.pass_probability(0, 15 * kSecond), 0.75);
}

TEST(Transport, SendDeliversOverHealthyPath) {
    Topology topo;
    topo.add_router(RouterTier::kEndHost);
    topo.add_router(RouterTier::kCore);
    topo.add_router(RouterTier::kEndHost);
    topo.add_link(0, 1);
    topo.add_link(1, 2);
    const PathOracle oracle(topo);
    const Path path = oracle.path(0, 2);

    FailureTimeline timeline;
    timeline.finalize();
    EventSim sim;
    Transport transport(timeline, sim, util::Rng(2));
    bool delivered = false;
    bool dropped = false;
    transport.send(path, [&] { delivered = true; }, [&] { dropped = true; });
    sim.run_all();
    EXPECT_TRUE(delivered);
    EXPECT_FALSE(dropped);
    EXPECT_EQ(sim.now(), transport.latency(path));
}

TEST(Transport, SendDropsWhenLinkDown) {
    Topology topo;
    topo.add_router(RouterTier::kEndHost);
    topo.add_router(RouterTier::kEndHost);
    const LinkId l = topo.add_link(0, 1);
    const PathOracle oracle(topo);
    const Path path = oracle.path(0, 1);

    FailureTimeline timeline;
    timeline.add_down(l, DownInterval{0, util::kHour});
    timeline.finalize();
    EventSim sim;
    Transport transport(timeline, sim, util::Rng(3));
    bool delivered = false;
    bool dropped = false;
    transport.send(path, [&] { delivered = true; }, [&] { dropped = true; });
    sim.run_all();
    EXPECT_FALSE(delivered);
    EXPECT_TRUE(dropped);
}

TEST(Transport, ResidualLossDropsSomePackets) {
    Topology topo;
    topo.add_router(RouterTier::kEndHost);
    topo.add_router(RouterTier::kEndHost);
    topo.add_link(0, 1);
    const Path path = PathOracle(topo).path(0, 1);

    FailureTimeline timeline;
    timeline.finalize();
    EventSim sim;
    Transport transport(timeline, sim, util::Rng(4),
                        TransportParams{.healthy_link_loss = 0.5});
    int delivered = 0;
    for (int i = 0; i < 400; ++i) {
        transport.send(path, [&] { ++delivered; }, [] {});
    }
    sim.run_all();
    EXPECT_NEAR(delivered, 200, 45);
}

}  // namespace
}  // namespace concilium::net
