#include "sim/experiments.h"

#include <gtest/gtest.h>

namespace concilium::sim {
namespace {

ScenarioParams test_scenario(double malicious = 0.0,
                             std::uint64_t seed = 21) {
    ScenarioParams p;
    p.topology = net::small_params();
    p.topology.end_hosts = 400;
    p.overlay_nodes_override = 60;
    p.duration = 60 * util::kMinute;
    p.malicious_fraction = malicious;
    p.seed = seed;
    return p;
}

TEST(CoverageExperiment, OwnTreeCoversMinorityAndGrowsToOne) {
    const Scenario scenario(test_scenario());
    const ExperimentDriver driver({.seed = 1});
    const auto curve = run_coverage_experiment(scenario, 30, 20, driver);
    ASSERT_GE(curve.coverage.size(), 31u);
    // Figure 4's shape: own tree covers a minority of the forest...
    EXPECT_LT(curve.coverage[0], 0.7);
    EXPECT_GT(curve.coverage[0], 0.02);
    // ...coverage is monotone in included trees...
    for (std::size_t k = 1; k < curve.coverage.size(); ++k) {
        if (curve.hosts_counted[k] == 0) break;
        EXPECT_GE(curve.coverage[k] + 1e-12, curve.coverage[k - 1]);
    }
    // ...with diminishing returns: the first 5 trees add more than the
    // next 5.
    const double early = curve.coverage[5] - curve.coverage[0];
    const double late = curve.coverage[10] - curve.coverage[5];
    EXPECT_GT(early, late);
    // Vouching peers grow as more trees are included.
    EXPECT_GT(curve.vouchers[10], curve.vouchers[0]);
}

TEST(BlameExperiment, HonestPdfsSeparate) {
    const Scenario scenario(test_scenario());
    const ExperimentDriver driver({.seed = 2});
    BlameExperimentParams params;
    params.samples = 4000;
    const auto result = run_blame_experiment(scenario, params, driver);
    ASSERT_GT(result.faulty_samples, 100u);
    ASSERT_GT(result.nonfaulty_samples, 100u);
    // Faulty nodes usually convicted, innocent nodes usually acquitted.
    EXPECT_GT(result.p_faulty, 0.75);
    EXPECT_LT(result.p_good, 0.15);
    // The pdfs concentrate at opposite ends: most faulty-node mass above
    // 0.5, most innocent mass below.
    EXPECT_GT(result.faulty_pdf.fraction_below(0.5), 0.0);
    EXPECT_LT(result.faulty_pdf.fraction_below(0.5), 0.3);
    EXPECT_GT(result.nonfaulty_pdf.fraction_below(0.5), 0.7);
}

TEST(BlameExperiment, ColludersBlurTheSeparation) {
    const Scenario honest(test_scenario(0.0));
    const Scenario colluding(test_scenario(0.2));
    const ExperimentDriver driver({.seed = 3});
    BlameExperimentParams params;
    params.samples = 4000;
    const auto clean = run_blame_experiment(honest, params, driver);
    const auto dirty = run_blame_experiment(colluding, params, driver);
    // Section 4.3: collusion raises the innocent conviction rate and lowers
    // the faulty conviction rate.
    EXPECT_GT(dirty.p_good, clean.p_good);
    EXPECT_LT(dirty.p_faulty, clean.p_faulty);
    // But thresholding still separates usefully.
    EXPECT_GT(dirty.p_faulty, 0.5);
    EXPECT_LT(dirty.p_good, 0.4);
}

TEST(BlameExperiment, MeanOperatorDilutesBlame) {
    // Ablation: averaging across path links (instead of fuzzy max) weakens
    // the single-bad-link signal, reducing network blame and thus raising
    // blame on innocent forwarders.
    const Scenario scenario(test_scenario());
    const ExperimentDriver driver({.seed = 4});
    BlameExperimentParams max_params;
    max_params.samples = 3000;
    BlameExperimentParams mean_params = max_params;
    mean_params.or_operator = core::BlameParams::OrOperator::kMean;
    const auto with_max = run_blame_experiment(scenario, max_params, driver);
    const auto with_mean = run_blame_experiment(scenario, mean_params, driver);
    EXPECT_GT(with_mean.p_good, with_max.p_good);
}

TEST(AttributionExperiment, RevisionFindsDownstreamCulprits) {
    const Scenario scenario(test_scenario());
    const ExperimentDriver driver({.seed = 5});
    AttributionExperimentParams params;
    params.samples = 400;
    const auto result = run_attribution_experiment(scenario, params, driver);
    EXPECT_EQ(result.samples, 400u);
    EXPECT_GT(result.cause_forwarder, 0u);
    EXPECT_GT(result.cause_network, 0u);
    // The full protocol should land blame correctly most of the time.
    // (Per-judge conviction accuracy compounds along the chain, so this is
    // below the single-hop p_faulty of Figure 5.)
    EXPECT_GT(result.accuracy(), 0.6);
}

TEST(AttributionExperiment, DisablingRevisionHurtsAccuracy) {
    const Scenario scenario(test_scenario());
    const ExperimentDriver driver({.seed = 6});
    AttributionExperimentParams with;
    with.samples = 400;
    with.min_route_length = 4;  // deep chains showcase revision
    AttributionExperimentParams without = with;
    without.enable_revision = false;
    const auto recursive = run_attribution_experiment(scenario, with, driver);
    const auto flat = run_attribution_experiment(scenario, without, driver);
    // Without revision, drops beyond the first hop are misattributed to it.
    EXPECT_GT(recursive.accuracy(), flat.accuracy());
}

}  // namespace
}  // namespace concilium::sim
