// End-to-end tests of the event-driven protocol runtime.

#include "runtime/cluster.h"

#include <gtest/gtest.h>

#include "net/topology_gen.h"

namespace concilium::runtime {
namespace {

using overlay::MemberIndex;

/// A deterministic world: small topology, 50-node overlay, and an initially
/// empty failure timeline (tests add failures where needed).
struct RuntimeWorld {
    explicit RuntimeWorld(std::uint64_t seed = 5, std::size_t nodes = 50)
        : rng(seed), topology(net::generate_topology(alter(net::small_params()), rng)),
          ca(seed + 1) {
        overlay.emplace(overlay::build_overlay_from_hosts(
            topology.end_hosts(), nodes, ca, overlay::OverlayParams{}, rng));
        trees.emplace(*overlay, topology);
        timeline.finalize();
    }

    static net::TopologyParams alter(net::TopologyParams p) {
        p.end_hosts = 300;
        return p;
    }

    Cluster make_cluster(RuntimeParams params = {},
                         std::vector<NodeBehavior> behaviors = {}) {
        return Cluster(sim, timeline, *overlay, *trees, params,
                       std::move(behaviors), rng.fork());
    }

    /// Finds (sender, key) whose route passes through `via` as an interior
    /// hop, with route length >= min_len.
    std::optional<std::pair<MemberIndex, util::NodeId>> route_through(
        MemberIndex via, std::size_t min_len = 3, std::size_t min_pos = 1) {
        util::Rng search(99);
        for (int attempt = 0; attempt < 20000; ++attempt) {
            const auto from = static_cast<MemberIndex>(
                search.uniform_index(overlay->size()));
            const util::NodeId key = util::NodeId::random(search);
            std::vector<MemberIndex> hops;
            try {
                hops = overlay->route(from, key);
            } catch (const std::exception&) {
                continue;
            }
            if (hops.size() < min_len) continue;
            for (std::size_t i = min_pos; i + 1 < hops.size(); ++i) {
                if (hops[i] == via) return std::make_pair(from, key);
            }
        }
        return std::nullopt;
    }

    util::Rng rng;
    net::Topology topology;
    crypto::CertificateAuthority ca;
    std::optional<overlay::OverlayNetwork> overlay;
    std::optional<tomography::OverlayTrees> trees;
    net::FailureTimeline timeline;
    net::EventSim sim;
};

TEST(Cluster, HealthyWorldDeliversEverything) {
    RuntimeWorld world;
    Cluster cluster = world.make_cluster();
    cluster.start();
    world.sim.run_until(3 * util::kMinute);  // let probing warm up

    int delivered = 0;
    util::Rng pick(7);
    for (int i = 0; i < 25; ++i) {
        const auto from = static_cast<MemberIndex>(
            pick.uniform_index(world.overlay->size()));
        cluster.send(from, util::NodeId::random(pick),
                     [&](const Cluster::MessageOutcome& out) {
                         if (out.delivered) ++delivered;
                     });
        world.sim.run_until(world.sim.now() + 5 * util::kSecond);
    }
    world.sim.run_until(world.sim.now() + 2 * util::kMinute);

    EXPECT_EQ(delivered, 25);
    EXPECT_EQ(cluster.stats().delivered, 25u);
    EXPECT_EQ(cluster.stats().accusations_filed, 0u);
    EXPECT_EQ(cluster.stats().guilty_verdicts, 0u);
    EXPECT_GT(cluster.stats().snapshots_published, 0u);
    EXPECT_EQ(cluster.stats().snapshots_rejected, 0u);
    EXPECT_GT(cluster.stats().commitments_issued, 0u);
}

TEST(Cluster, DropperIsConvictedAndAccused) {
    RuntimeWorld world;
    // Find a route of length >= 4 and place the dropper two hops
    // downstream, so revisions must climb the chain.
    util::Rng search(31);
    std::vector<MemberIndex> hops;
    MemberIndex from = 0;
    util::NodeId key;
    for (int attempt = 0; attempt < 20000 && hops.size() < 4; ++attempt) {
        from = static_cast<MemberIndex>(
            search.uniform_index(world.overlay->size()));
        key = util::NodeId::random(search);
        try {
            hops = world.overlay->route(from, key);
        } catch (const std::exception&) {
            hops.clear();
        }
    }
    ASSERT_GE(hops.size(), 4u) << "no 4-hop route in small world";
    const MemberIndex dropper = hops[2];
    const auto route = std::make_optional(std::make_pair(from, key));

    std::vector<NodeBehavior> behaviors(world.overlay->size());
    behaviors[dropper].drop_forward_probability = 1.0;
    Cluster cluster = world.make_cluster(RuntimeParams{}, behaviors);
    cluster.start();
    world.sim.run_until(3 * util::kMinute);

    std::vector<Cluster::MessageOutcome> outcomes;
    for (int i = 0; i < 8; ++i) {
        cluster.send(route->first, route->second,
                     [&](const Cluster::MessageOutcome& out) {
                         outcomes.push_back(out);
                     });
        world.sim.run_until(world.sim.now() + 30 * util::kSecond);
    }
    world.sim.run_until(world.sim.now() + 2 * util::kMinute);

    ASSERT_EQ(outcomes.size(), 8u);
    const auto& dropper_id = world.overlay->member(dropper).id();
    int blamed_dropper = 0;
    for (const auto& out : outcomes) {
        EXPECT_FALSE(out.delivered);
        if (out.blamed == dropper_id) ++blamed_dropper;
    }
    // With a clean network and real probes the chain is deterministic.
    EXPECT_GE(blamed_dropper, 7);

    // Formal accusations landed in the DHT and verify for third parties.
    const auto accusations = cluster.accusations_against(dropper);
    ASSERT_FALSE(accusations.empty());
    for (const auto& acc : accusations) {
        EXPECT_EQ(cluster.verify(acc), core::AccusationCheck::kOk)
            << core::to_string(cluster.verify(acc));
        EXPECT_EQ(acc.accused(), dropper_id);
    }
    EXPECT_GT(cluster.stats().dropped_by_forwarder, 0u);
    EXPECT_GT(cluster.stats().revisions_pushed, 0u);
}

TEST(Cluster, UpstreamForwardersAreExonerated) {
    RuntimeWorld world;
    util::Rng search(47);
    std::vector<MemberIndex> hops;
    MemberIndex from = 0;
    util::NodeId key;
    for (int attempt = 0; attempt < 20000 && hops.size() < 4; ++attempt) {
        from = static_cast<MemberIndex>(
            search.uniform_index(world.overlay->size()));
        key = util::NodeId::random(search);
        try {
            hops = world.overlay->route(from, key);
        } catch (const std::exception&) {
            hops.clear();
        }
    }
    ASSERT_GE(hops.size(), 4u);
    const MemberIndex dropper = hops[hops.size() - 2];
    const auto route = std::make_optional(std::make_pair(from, key));

    std::vector<NodeBehavior> behaviors(world.overlay->size());
    behaviors[dropper].drop_forward_probability = 1.0;
    Cluster cluster = world.make_cluster(RuntimeParams{}, behaviors);
    cluster.start();
    world.sim.run_until(3 * util::kMinute);

    for (int i = 0; i < 8; ++i) {
        cluster.send(route->first, route->second);
        world.sim.run_until(world.sim.now() + 30 * util::kSecond);
    }
    world.sim.run_until(world.sim.now() + 2 * util::kMinute);

    // No formal accusation should target any *other* member.
    for (MemberIndex m = 0; m < world.overlay->size(); ++m) {
        if (m == dropper) continue;
        EXPECT_TRUE(cluster.accusations_against(m).empty())
            << "innocent member " << m << " was accused";
    }
}

TEST(Cluster, NetworkFaultIsBlamedOnNetwork) {
    RuntimeWorld world;
    // Kill the first IP segment of some route permanently.
    util::Rng pick(3);
    const auto from = static_cast<MemberIndex>(
        pick.uniform_index(world.overlay->size()));
    const util::NodeId key = util::NodeId::random(pick);
    const auto hops = world.overlay->route(from, key);
    if (hops.size() < 3) GTEST_SKIP() << "route too short";
    for (const net::LinkId l :
         world.trees->path_links(hops[0], hops[1])) {
        // Fail just the last-mile link of the segment (edge-biased, like the
        // paper's failure model); probes elsewhere stay healthy.
        world.timeline.add_down(
            l, net::DownInterval{0, 2 * util::kHour});
        break;
    }
    world.timeline.finalize();

    Cluster cluster = world.make_cluster();
    cluster.start();
    world.sim.run_until(5 * util::kMinute);  // heavyweight probing kicks in

    std::optional<Cluster::MessageOutcome> outcome;
    cluster.send(from, key, [&](const Cluster::MessageOutcome& out) {
        outcome = out;
    });
    world.sim.run_until(world.sim.now() + 3 * util::kMinute);

    ASSERT_TRUE(outcome.has_value());
    EXPECT_FALSE(outcome->delivered);
    EXPECT_TRUE(outcome->network_blamed)
        << "blamed node instead: "
        << (outcome->blamed ? outcome->blamed->short_hex() : "none");
    EXPECT_EQ(cluster.stats().accusations_filed, 0u);
    EXPECT_GT(cluster.stats().heavyweight_sessions, 0u);
}

TEST(Cluster, RevisionRefusalShiftsBlameToRefuser) {
    RuntimeWorld world;
    // Find a route of length >= 5 so an interior refuser sits upstream of
    // the dropper.
    util::Rng search(11);
    std::vector<MemberIndex> hops;
    MemberIndex from = 0;
    util::NodeId key;
    for (int attempt = 0; attempt < 20000 && hops.size() < 5; ++attempt) {
        from = static_cast<MemberIndex>(
            search.uniform_index(world.overlay->size()));
        key = util::NodeId::random(search);
        try {
            hops = world.overlay->route(from, key);
        } catch (const std::exception&) {
            hops.clear();
        }
    }
    if (hops.size() < 5) GTEST_SKIP() << "no 5-hop route in small world";

    const MemberIndex refuser = hops[2];
    const MemberIndex dropper = hops[3];
    std::vector<NodeBehavior> behaviors(world.overlay->size());
    behaviors[refuser].refuse_revisions = true;
    behaviors[dropper].drop_forward_probability = 1.0;
    Cluster cluster = world.make_cluster(RuntimeParams{}, behaviors);
    cluster.start();
    world.sim.run_until(3 * util::kMinute);

    std::optional<Cluster::MessageOutcome> outcome;
    cluster.send(from, key, [&](const Cluster::MessageOutcome& out) {
        outcome = out;
    });
    world.sim.run_until(world.sim.now() + 3 * util::kMinute);

    ASSERT_TRUE(outcome.has_value());
    ASSERT_TRUE(outcome->blamed.has_value());
    // The refuser withheld the verdict that would have exonerated it, so
    // blame sticks with it ("They do so at their own peril").
    EXPECT_EQ(*outcome->blamed, world.overlay->member(refuser).id());
}

TEST(Cluster, CommitmentRefusalDrawsReputationVotes) {
    RuntimeWorld world;
    const MemberIndex refuser = 17;
    const auto route = world.route_through(refuser);
    ASSERT_TRUE(route.has_value());

    std::vector<NodeBehavior> behaviors(world.overlay->size());
    behaviors[refuser].refuse_commitments = true;
    behaviors[refuser].drop_forward_probability = 1.0;
    Cluster cluster = world.make_cluster(RuntimeParams{}, behaviors);
    cluster.start();
    world.sim.run_until(2 * util::kMinute);

    for (int i = 0; i < 8; ++i) {
        cluster.send(route->first, route->second);
        world.sim.run_until(world.sim.now() + 30 * util::kSecond);
    }
    world.sim.run_until(world.sim.now() + 2 * util::kMinute);

    // Votes of no confidence accumulate (Section 3.6)...
    EXPECT_GT(cluster.stats().commitments_refused, 0u);
    EXPECT_GT(cluster.reputation().votes_against(
                  world.overlay->member(refuser).id()),
              0);
    // ...and every accusation that did get filed verifies (a chain can
    // legitimately stop upstream of the refuser, but it must never be
    // forged).
    for (MemberIndex m = 0; m < world.overlay->size(); ++m) {
        for (const auto& acc : cluster.accusations_against(m)) {
            EXPECT_EQ(cluster.verify(acc), core::AccusationCheck::kOk);
        }
    }
}

TEST(Cluster, FlippedReportsCannotExonerateTheFlipper) {
    RuntimeWorld world;
    const MemberIndex villain = 9;
    const auto route = world.route_through(villain);
    ASSERT_TRUE(route.has_value());

    std::vector<NodeBehavior> behaviors(world.overlay->size());
    behaviors[villain].drop_forward_probability = 1.0;
    behaviors[villain].flip_probe_reports = true;  // claims its links down
    Cluster cluster = world.make_cluster(RuntimeParams{}, behaviors);
    cluster.start();
    world.sim.run_until(3 * util::kMinute);

    std::vector<Cluster::MessageOutcome> outcomes;
    for (int i = 0; i < 8; ++i) {
        cluster.send(route->first, route->second,
                     [&](const Cluster::MessageOutcome& out) {
                         outcomes.push_back(out);
                     });
        world.sim.run_until(world.sim.now() + 30 * util::kSecond);
    }
    world.sim.run_until(world.sim.now() + 2 * util::kMinute);

    // The flipper's own snapshots are excluded when it is judged, so its
    // "my links were down" lie cannot save it.
    int blamed_villain = 0;
    for (const auto& out : outcomes) {
        if (out.blamed == world.overlay->member(villain).id()) {
            ++blamed_villain;
        }
    }
    EXPECT_GE(blamed_villain, 6);
}

TEST(Cluster, DeterministicGivenSeed) {
    auto run = [](std::uint64_t seed) {
        RuntimeWorld world(seed);
        Cluster cluster = world.make_cluster();
        cluster.start();
        world.sim.run_until(2 * util::kMinute);
        util::Rng pick(1);
        for (int i = 0; i < 5; ++i) {
            cluster.send(static_cast<MemberIndex>(
                             pick.uniform_index(world.overlay->size())),
                         util::NodeId::random(pick));
        }
        world.sim.run_until(world.sim.now() + util::kMinute);
        return cluster.stats();
    };
    const auto a = run(42);
    const auto b = run(42);
    EXPECT_EQ(a.snapshots_published, b.snapshots_published);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.lightweight_rounds, b.lightweight_rounds);
}

TEST(Cluster, ProbeSuppressorDoesNotPoisonSnapshots) {
    // A leaf that suppresses probe acknowledgments looks dead; Section 3.3's
    // feedback verification must exclude it so reporters neither mark its
    // last mile down nor let it corrupt shared-link inference.
    RuntimeWorld world;
    const MemberIndex suppressor = 5;
    std::vector<NodeBehavior> behaviors(world.overlay->size());
    behaviors[suppressor].suppress_probe_acks = 1.0;
    RuntimeParams params;
    params.heavyweight_min_gap = 30 * util::kSecond;
    Cluster cluster = world.make_cluster(params, behaviors);
    cluster.start();
    world.sim.run_until(10 * util::kMinute);

    // The suppressor's access link (its only link).
    const auto ip = world.overlay->member(suppressor).ip();
    ASSERT_EQ(world.topology.degree(ip), 1u);
    const net::LinkId access = world.topology.neighbors(ip)[0].link;

    // Inspect what the suppressor's routing peers have archived about it.
    int down_votes = 0;
    int up_votes = 0;
    for (const auto peer : world.overlay->routing_peers(suppressor)) {
        const std::vector<net::LinkId> links{access};
        const auto probes = cluster.archive(peer).probes_for(
            links, 9 * util::kMinute, 10 * util::kMinute,
            util::NodeId::from_hex("ff"));
        for (const auto& p : probes) {
            // The suppressor's own (self-serving) snapshots do not count.
            if (p.reporter == world.overlay->member(suppressor).id()) {
                continue;
            }
            (p.link_up ? up_votes : down_votes)++;
        }
    }
    // The link is actually healthy (no failures in this world); honest
    // reporters must not have convicted it just because its host is mute.
    EXPECT_EQ(down_votes, 0)
        << "suppressor's healthy last mile was reported down";
}

TEST(Cluster, FabricatedAcksCannotFakeALiveLink) {
    // A node behind a dead last mile fabricates acknowledgments for probes
    // it never received (Section 3.3).  Without the nonce defence, honest
    // reporters would publish "link up" for a dead link; with it, the
    // fabricator is excluded and the dead link is either reported down or
    // not reported at all -- never up.
    RuntimeWorld world;
    const MemberIndex fabricator = 11;
    const auto ip = world.overlay->member(fabricator).ip();
    ASSERT_EQ(world.topology.degree(ip), 1u);
    const net::LinkId access = world.topology.neighbors(ip)[0].link;
    world.timeline.add_down(access, net::DownInterval{0, 2 * util::kHour});
    world.timeline.finalize();

    std::vector<NodeBehavior> behaviors(world.overlay->size());
    behaviors[fabricator].fabricate_probe_acks = true;
    RuntimeParams params;
    params.heavyweight_min_gap = 30 * util::kSecond;
    Cluster cluster = world.make_cluster(params, behaviors);
    cluster.start();
    world.sim.run_until(10 * util::kMinute);

    int up_votes = 0;
    for (const auto peer : world.overlay->routing_peers(fabricator)) {
        const std::vector<net::LinkId> links{access};
        const auto probes = cluster.archive(peer).probes_for(
            links, 9 * util::kMinute, 10 * util::kMinute,
            world.overlay->member(fabricator).id());
        for (const auto& p : probes) {
            if (p.link_up) ++up_votes;
        }
    }
    EXPECT_EQ(up_votes, 0) << "fabricated acks revived a dead link";
}

TEST(Cluster, SendToSelfDeliversImmediately) {
    RuntimeWorld world;
    Cluster cluster = world.make_cluster();
    cluster.start();
    world.sim.run_until(util::kMinute);
    bool delivered = false;
    // Route to one's own identifier has length 1.
    cluster.send(3, world.overlay->member(3).id(),
                 [&](const Cluster::MessageOutcome& out) {
                     delivered = out.delivered;
                 });
    world.sim.run_until(world.sim.now() + util::kSecond);
    EXPECT_TRUE(delivered);
}

TEST(Cluster, StatsAccumulateAcrossWorkload) {
    RuntimeWorld world;
    Cluster cluster = world.make_cluster();
    cluster.start();
    world.sim.run_until(5 * util::kMinute);
    const auto rounds = cluster.stats().lightweight_rounds;
    // ~50 nodes probing with mean period 60 s for 5 minutes.
    EXPECT_GT(rounds, 150u);
    EXPECT_LT(rounds, 800u);
    EXPECT_GE(cluster.stats().snapshots_published, rounds);
}

TEST(Cluster, OfflineNodeIsBlamedLikeADropperAndRecovers) {
    // Our churn extension: a node that goes offline stops forwarding and
    // answering probes.  To the protocol it is a total dropper -- its
    // upstream neighbour convicts it -- and service resumes when it
    // returns.
    RuntimeWorld world;
    util::Rng search(53);
    std::vector<MemberIndex> hops;
    MemberIndex from = 0;
    util::NodeId key;
    for (int attempt = 0; attempt < 20000 && hops.size() < 3; ++attempt) {
        from = static_cast<MemberIndex>(
            search.uniform_index(world.overlay->size()));
        key = util::NodeId::random(search);
        try {
            hops = world.overlay->route(from, key);
        } catch (const std::exception&) {
            hops.clear();
        }
    }
    ASSERT_GE(hops.size(), 3u);
    const MemberIndex victim = hops[1];

    Cluster cluster = world.make_cluster();
    cluster.start();
    world.sim.run_until(3 * util::kMinute);

    // Phase 1: victim offline -> every message through it dies and the
    // diagnosis lands on the victim.
    cluster.set_online(victim, false);
    EXPECT_FALSE(cluster.is_online(victim));
    world.sim.run_until(world.sim.now() + 2 * util::kMinute);
    int blamed_victim = 0;
    int delivered = 0;
    for (int i = 0; i < 4; ++i) {
        cluster.send(from, key,
                     [&](const Cluster::MessageOutcome& out) {
                         if (out.delivered) ++delivered;
                         if (out.blamed ==
                             world.overlay->member(victim).id()) {
                             ++blamed_victim;
                         }
                     });
        world.sim.run_until(world.sim.now() + 30 * util::kSecond);
    }
    world.sim.run_until(world.sim.now() + util::kMinute);
    EXPECT_EQ(delivered, 0);
    EXPECT_GE(blamed_victim, 3);

    // Phase 2: victim returns; deliveries resume.
    cluster.set_online(victim, true);
    world.sim.run_until(world.sim.now() + 3 * util::kMinute);
    for (int i = 0; i < 4; ++i) {
        cluster.send(from, key,
                     [&](const Cluster::MessageOutcome& out) {
                         if (out.delivered) ++delivered;
                     });
        world.sim.run_until(world.sim.now() + 30 * util::kSecond);
    }
    world.sim.run_until(world.sim.now() + util::kMinute);
    EXPECT_EQ(delivered, 4);
}

TEST(Cluster, OfflineDestinationBlamedNotTheForwarders) {
    // When the *destination* is down, stewards' tomography shows clean
    // paths, so the guilty chain runs through every forwarder and sticks at
    // the silent destination -- not at an innocent intermediate.
    RuntimeWorld world;
    util::Rng search(59);
    std::vector<MemberIndex> hops;
    MemberIndex from = 0;
    util::NodeId key;
    for (int attempt = 0; attempt < 20000 && hops.size() < 3; ++attempt) {
        from = static_cast<MemberIndex>(
            search.uniform_index(world.overlay->size()));
        key = util::NodeId::random(search);
        try {
            hops = world.overlay->route(from, key);
        } catch (const std::exception&) {
            hops.clear();
        }
    }
    ASSERT_GE(hops.size(), 3u);
    const MemberIndex destination = hops.back();

    Cluster cluster = world.make_cluster();
    cluster.start();
    world.sim.run_until(3 * util::kMinute);
    cluster.set_online(destination, false);
    world.sim.run_until(world.sim.now() + 2 * util::kMinute);

    std::optional<Cluster::MessageOutcome> outcome;
    cluster.send(from, key, [&](const Cluster::MessageOutcome& out) {
        outcome = out;
    });
    world.sim.run_until(world.sim.now() + 2 * util::kMinute);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_FALSE(outcome->delivered);
    if (outcome->blamed.has_value()) {
        EXPECT_EQ(*outcome->blamed,
                  world.overlay->member(destination).id());
    }
}

TEST(Cluster, RoutingStateExchangeAcceptsHonestAdvertisements) {
    RuntimeWorld world;
    RuntimeParams params;
    params.validation.gamma = 2.5;  // density is noisy in a 50-node overlay
    Cluster cluster = world.make_cluster(params);
    cluster.start();
    EXPECT_GT(cluster.stats().advertisements_accepted, 0u);
    // Honest advertisements overwhelmingly pass; a rare density-variance
    // straggler is tolerated.
    EXPECT_LT(cluster.stats().advertisements_rejected,
              cluster.stats().advertisements_accepted / 10 + 2);
}

TEST(Cluster, SuppressedAdvertisementIsRejectedByPeers) {
    RuntimeWorld world;
    const MemberIndex attacker = 7;
    std::vector<NodeBehavior> behaviors(world.overlay->size());
    behaviors[attacker].advertised_table_fraction = 0.3;
    RuntimeParams params;
    params.validation.gamma = 2.5;
    Cluster cluster = world.make_cluster(params, behaviors);
    cluster.start();
    // Every online peer of the attacker flags the sparse table.
    const auto& rejecters = cluster.advertisement_rejecters(attacker);
    EXPECT_GE(rejecters.size(),
              world.overlay->routing_peers(attacker).size() / 2);
    // And nobody (or nearly nobody) flags honest members.
    std::size_t honest_rejections = 0;
    for (MemberIndex m = 0; m < world.overlay->size(); ++m) {
        if (m == attacker) continue;
        honest_rejections += cluster.advertisement_rejecters(m).size();
    }
    EXPECT_LT(honest_rejections, cluster.stats().advertisements_accepted / 10 + 2);
}

TEST(Cluster, BehaviorSizeMismatchRejected) {
    RuntimeWorld world;
    EXPECT_THROW(world.make_cluster(RuntimeParams{},
                                    std::vector<NodeBehavior>(3)),
                 std::invalid_argument);
}

}  // namespace
}  // namespace concilium::runtime
