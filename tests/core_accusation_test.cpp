#include "core/accusation.h"

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "crypto/certificates.h"

namespace concilium::core {
namespace {

using Admission = crypto::CertificateAuthority::Admission;

/// World: A sends through B (next hop C, then D); reporter R supplies
/// tomographic snapshots.
struct AccusationFixture : ::testing::Test {
    AccusationFixture() : ca(21) {
        for (const char* name : {"a", "b", "c", "d", "r"}) {
            auto adm = std::make_unique<Admission>(
                ca.admit(static_cast<crypto::IpAddress>(nodes.size())));
            keys_by_id.emplace(adm->certificate.node_id,
                               adm->keys.public_key());
            nodes.emplace(name, std::move(adm));
        }
    }

    const Admission& node(const std::string& name) { return *nodes.at(name); }
    const util::NodeId& id(const std::string& name) {
        return node(name).certificate.node_id;
    }

    /// A snapshot from `origin` reporting the given link states.
    tomography::TomographicSnapshot snapshot(
        const std::string& origin,
        std::vector<std::pair<net::LinkId, bool>> links,
        util::SimTime probed_at = 100 * util::kSecond) {
        tomography::TomographicSnapshot s;
        s.origin = id(origin);
        s.probed_at = probed_at;
        for (const auto& [link, up] : links) {
            s.links.push_back(tomography::LinkObservation{link, up});
        }
        s.signature = node(origin).keys.sign(s.signed_payload());
        return s;
    }

    /// Evidence: `judge` blames `suspect` for message 7 at t=100s over
    /// path {1, 2}, using the given snapshots.
    BlameEvidence evidence(const std::string& judge,
                           const std::string& suspect,
                           std::vector<tomography::TomographicSnapshot> snaps) {
        BlameEvidence ev;
        ev.judge = id(judge);
        ev.suspect = id(suspect);
        ev.message_id = 7;
        ev.message_time = 100 * util::kSecond;
        ev.path_links = {1, 2};
        ev.snapshots = std::move(snaps);
        ev.commitment = make_forwarding_commitment(
            ev.judge, ev.suspect, id("d"), ev.message_id, ev.message_time,
            node(suspect).keys);
        ev.claimed_blame =
            compute_blame(ev.path_links, probes_from_snapshots(ev.snapshots),
                          ev.message_time, ev.suspect, BlameParams{})
                .blame;
        ev.judge_signature = node(judge).keys.sign(ev.signed_payload());
        return ev;
    }

    FaultAccusation accusation(
        std::vector<tomography::TomographicSnapshot> snaps) {
        FaultAccusation acc;
        acc.accuser = id("a");
        acc.evidence.push_back(evidence("a", "b", std::move(snaps)));
        acc.signature = node("a").keys.sign(acc.signed_payload());
        return acc;
    }

    AccusationVerifier verifier() {
        return AccusationVerifier(
            ca.registry(),
            [this](const util::NodeId& who)
                -> std::optional<crypto::PublicKey> {
                const auto it = keys_by_id.find(who);
                if (it == keys_by_id.end()) return std::nullopt;
                return it->second;
            },
            BlameParams{}, VerdictParams{});
    }

    crypto::CertificateAuthority ca;
    std::unordered_map<std::string, std::unique_ptr<Admission>> nodes;
    std::unordered_map<util::NodeId, crypto::PublicKey, util::NodeIdHash>
        keys_by_id;
};

TEST_F(AccusationFixture, ProbesFromSnapshotsFlattenWithProvenance) {
    const auto s1 = snapshot("r", {{1, true}, {2, false}});
    const auto s2 = snapshot("c", {{2, true}}, 130 * util::kSecond);
    const auto probes = probes_from_snapshots(
        std::vector<tomography::TomographicSnapshot>{s1, s2});
    ASSERT_EQ(probes.size(), 3u);
    EXPECT_EQ(probes[0].reporter, id("r"));
    EXPECT_EQ(probes[0].link, 1u);
    EXPECT_TRUE(probes[0].link_up);
    EXPECT_EQ(probes[2].reporter, id("c"));
    EXPECT_EQ(probes[2].at, 130 * util::kSecond);
}

TEST_F(AccusationFixture, WellFormedAccusationVerifies) {
    // Reporter says both path links were up: full blame on B.
    const auto acc = accusation({snapshot("r", {{1, true}, {2, true}})});
    EXPECT_GT(acc.evidence[0].claimed_blame, 0.4);
    EXPECT_EQ(verifier().verify(acc), AccusationCheck::kOk);
    EXPECT_EQ(acc.accused(), id("b"));
    EXPECT_EQ(acc.original_accused(), id("b"));
}

TEST_F(AccusationFixture, SerializationRoundTrips) {
    const auto acc = accusation({snapshot("r", {{1, true}, {2, true}})});
    const auto bytes = acc.serialize();
    const auto back = FaultAccusation::deserialize(bytes);
    EXPECT_EQ(back.serialize(), bytes);
    EXPECT_EQ(verifier().verify(back), AccusationCheck::kOk);
    // Trailing garbage is rejected.
    auto longer = bytes;
    longer.push_back(0);
    EXPECT_THROW(FaultAccusation::deserialize(longer),
                 std::invalid_argument);
}

TEST_F(AccusationFixture, DhtKeyIsStablePerPublicKey) {
    const auto k1 = FaultAccusation::dht_key(node("b").keys.public_key());
    const auto k2 = FaultAccusation::dht_key(node("b").keys.public_key());
    const auto k3 = FaultAccusation::dht_key(node("c").keys.public_key());
    EXPECT_EQ(k1, k2);
    EXPECT_NE(k1, k3);
}

TEST_F(AccusationFixture, RevisionChainRetargetsBlame) {
    // B pushes its verdict against C upstream; then C pushes against D.
    auto acc = accusation({snapshot("r", {{1, true}, {2, true}})});
    amend_accusation(acc, evidence("b", "c", {snapshot("r", {{1, true}, {2, true}})}),
                     node("a").keys);
    EXPECT_EQ(acc.accused(), id("c"));
    amend_accusation(acc, evidence("c", "d", {snapshot("r", {{1, true}, {2, true}})}),
                     node("a").keys);
    EXPECT_EQ(acc.accused(), id("d"));
    EXPECT_EQ(acc.original_accused(), id("b"));
    EXPECT_EQ(verifier().verify(acc), AccusationCheck::kOk);
}

TEST_F(AccusationFixture, RevisionMustComeFromCurrentAccused) {
    auto acc = accusation({snapshot("r", {{1, true}, {2, true}})});
    // D (not the accused B) tries to push a revision.
    EXPECT_THROW(
        amend_accusation(acc, evidence("d", "c", {snapshot("r", {{1, true}}) }),
                         node("a").keys),
        std::invalid_argument);
}

TEST_F(AccusationFixture, BrokenChainDetected) {
    auto acc = accusation({snapshot("r", {{1, true}, {2, true}})});
    // Splice in a revision with a non-chaining judge and re-sign.
    acc.evidence.push_back(
        evidence("c", "d", {snapshot("r", {{1, true}, {2, true}})}));
    acc.signature = node("a").keys.sign(acc.signed_payload());
    EXPECT_EQ(verifier().verify(acc), AccusationCheck::kBrokenChain);
}

TEST_F(AccusationFixture, TamperedAccuserSignatureDetected) {
    auto acc = accusation({snapshot("r", {{1, true}, {2, true}})});
    acc.evidence[0].message_id = 8;  // mutate after signing
    EXPECT_EQ(verifier().verify(acc),
              AccusationCheck::kBadAccuserSignature);
}

TEST_F(AccusationFixture, EmptyEvidenceRejected) {
    FaultAccusation acc;
    acc.accuser = id("a");
    EXPECT_EQ(verifier().verify(acc), AccusationCheck::kEmptyEvidence);
    EXPECT_THROW((void)acc.accused(), std::logic_error);
}

TEST_F(AccusationFixture, MissingCommitmentDetected) {
    // B never issued a commitment; A forges one with its own keys.
    auto ev = evidence("a", "b", {snapshot("r", {{1, true}, {2, true}})});
    ev.commitment = make_forwarding_commitment(
        ev.judge, ev.suspect, id("d"), ev.message_id, ev.message_time,
        node("a").keys);  // signed by A, not B
    ev.judge_signature = node("a").keys.sign(ev.signed_payload());
    FaultAccusation acc;
    acc.accuser = id("a");
    acc.evidence.push_back(std::move(ev));
    acc.signature = node("a").keys.sign(acc.signed_payload());
    EXPECT_EQ(verifier().verify(acc), AccusationCheck::kBadCommitment);
}

TEST_F(AccusationFixture, CommitmentForDifferentMessageDetected) {
    auto ev = evidence("a", "b", {snapshot("r", {{1, true}, {2, true}})});
    ev.commitment = make_forwarding_commitment(
        ev.judge, ev.suspect, id("d"), 999, ev.message_time,
        node("b").keys);  // valid signature, wrong message
    ev.judge_signature = node("a").keys.sign(ev.signed_payload());
    FaultAccusation acc;
    acc.accuser = id("a");
    acc.evidence.push_back(std::move(ev));
    acc.signature = node("a").keys.sign(acc.signed_payload());
    EXPECT_EQ(verifier().verify(acc), AccusationCheck::kBadCommitment);
}

TEST_F(AccusationFixture, TamperedSnapshotDetected) {
    auto ev = evidence("a", "b", {snapshot("r", {{1, true}, {2, true}})});
    ev.snapshots[0].links[0].up = false;  // flip a probe after signing
    // Recompute claimed blame so only the snapshot signature is at fault.
    ev.claimed_blame =
        compute_blame(ev.path_links, probes_from_snapshots(ev.snapshots),
                      ev.message_time, ev.suspect, BlameParams{})
            .blame;
    ev.judge_signature = node("a").keys.sign(ev.signed_payload());
    FaultAccusation acc;
    acc.accuser = id("a");
    acc.evidence.push_back(std::move(ev));
    acc.signature = node("a").keys.sign(acc.signed_payload());
    EXPECT_EQ(verifier().verify(acc),
              AccusationCheck::kBadSnapshotSignature);
}

TEST_F(AccusationFixture, InflatedBlameClaimDetected) {
    auto ev = evidence("a", "b", {snapshot("r", {{1, false}, {2, false}})});
    ev.claimed_blame = 0.95;  // claims more blame than the evidence supports
    ev.judge_signature = node("a").keys.sign(ev.signed_payload());
    FaultAccusation acc;
    acc.accuser = id("a");
    acc.evidence.push_back(std::move(ev));
    acc.signature = node("a").keys.sign(acc.signed_payload());
    EXPECT_EQ(verifier().verify(acc), AccusationCheck::kBlameMismatch);
}

TEST_F(AccusationFixture, ExculpatoryEvidenceRejectsAccusation) {
    // The reporter saw link 2 down: blame = 0.1 < 0.4, so no honest node
    // would have filed this accusation.
    const auto acc = accusation({snapshot("r", {{1, true}, {2, false}})});
    EXPECT_EQ(verifier().verify(acc),
              AccusationCheck::kBlameBelowThreshold);
}

TEST_F(AccusationFixture, SuspectsOwnSnapshotCannotExonerate) {
    // B bundles its own snapshot claiming link 2 was down; the verifier's
    // blame computation ignores B's probes, so blame stays at 1.0 -- but a
    // bundle with no admissible third-party probe no longer convicts either:
    // presumed-guilt from an empty record is exactly the loophole slanderers
    // exploited, so the verifier now demands covering evidence.
    const auto acc = accusation({snapshot("b", {{1, true}, {2, false}})});
    EXPECT_DOUBLE_EQ(acc.evidence[0].claimed_blame, 1.0);
    EXPECT_EQ(verifier().verify(acc), AccusationCheck::kInsufficientEvidence);
}

TEST_F(AccusationFixture, StaleSnapshotRejectedOutright) {
    // A cherry-picked bundle: one admissible snapshot plus one probed well
    // outside the Delta window around the message.  compute_blame would
    // discard the stale probes silently; the verifier must instead reject
    // the bundle, or a slanderer could pad accusations with old favorable
    // history.
    const auto acc = accusation(
        {snapshot("r", {{1, true}, {2, true}}),
         snapshot("r", {{1, true}, {2, true}},
                  100 * util::kSecond + BlameParams{}.delta +
                      10 * util::kSecond)});
    EXPECT_EQ(verifier().verify(acc), AccusationCheck::kStaleEvidence);
}

TEST_F(AccusationFixture, TamperedClaimedBlameDetected) {
    // The accuser inflates claimed_blame after the judge signature was made
    // and re-signs only the outer chain: the inner judge signature no longer
    // matches.
    auto acc = accusation({snapshot("r", {{1, true}, {2, true}})});
    acc.evidence[0].claimed_blame = 1.0;
    acc.signature = node("a").keys.sign(acc.signed_payload());
    EXPECT_EQ(verifier().verify(acc), AccusationCheck::kBadJudgeSignature);
}

TEST_F(AccusationFixture, SnapshotSignedByForeignKeyDetected) {
    // A snapshot that names R as origin but carries C's signature: the
    // slanderer fabricated the probe results and signed with the only key
    // it holds.
    auto forged = snapshot("r", {{1, true}, {2, true}});
    forged.signature = node("c").keys.sign(forged.signed_payload());
    const auto acc = accusation({forged});
    EXPECT_EQ(verifier().verify(acc),
              AccusationCheck::kBadSnapshotSignature);
}

TEST_F(AccusationFixture, CommitmentTimeSkewDetected) {
    // A genuine commitment for an *old* message (outside the Delta window of
    // the claimed send time) must not anchor an accusation about a new one.
    auto ev = evidence("a", "b", {snapshot("r", {{1, true}, {2, true}})});
    ev.commitment = make_forwarding_commitment(
        ev.judge, ev.suspect, id("d"), ev.message_id,
        ev.message_time + BlameParams{}.delta + 10 * util::kSecond,
        node("b").keys);
    ev.judge_signature = node("a").keys.sign(ev.signed_payload());
    FaultAccusation acc;
    acc.accuser = id("a");
    acc.evidence.push_back(std::move(ev));
    acc.signature = node("a").keys.sign(acc.signed_payload());
    EXPECT_EQ(verifier().verify(acc), AccusationCheck::kBadCommitment);
}

TEST_F(AccusationFixture, UnknownIdentityFailsVerification) {
    auto acc = accusation({snapshot("r", {{1, true}, {2, true}})});
    crypto::CertificateAuthority other_ca(99);
    AccusationVerifier strict(
        other_ca.registry(),
        [](const util::NodeId&) -> std::optional<crypto::PublicKey> {
            return std::nullopt;
        },
        BlameParams{}, VerdictParams{});
    EXPECT_EQ(strict.verify(acc), AccusationCheck::kBadAccuserSignature);
}

TEST_F(AccusationFixture, CheckNamesAreHuman) {
    EXPECT_STREQ(to_string(AccusationCheck::kOk), "ok");
    EXPECT_STREQ(to_string(AccusationCheck::kBlameMismatch),
                 "blame mismatch");
}

}  // namespace
}  // namespace concilium::core
