#include <gtest/gtest.h>

#include "net/paths.h"
#include "tomography/probing.h"
#include "tomography/tree.h"
#include "tomography/verification.h"
#include "util/rng.h"

namespace concilium::tomography {
namespace {

struct ProbeFixture : ::testing::Test {
    ProbeFixture() {
        for (int i = 0; i < 7; ++i) topo.add_router(net::RouterTier::kCore);
        links[0] = topo.add_link(0, 1);
        links[1] = topo.add_link(1, 2);
        links[2] = topo.add_link(1, 3);
        links[3] = topo.add_link(2, 4);
        links[4] = topo.add_link(2, 5);
        links[5] = topo.add_link(3, 6);
        const net::PathOracle oracle(topo);
        const std::vector<net::RouterId> dsts{4, 5, 6};
        tree.emplace(0, oracle.paths_from(0, dsts));
    }

    /// Pass-probability function: perfect except for listed lossy links.
    PassProbabilityFn make_pass_fn(
        std::unordered_map<net::LinkId, double> loss = {}) {
        return [loss](net::LinkId l, util::SimTime) {
            const auto it = loss.find(l);
            return it == loss.end() ? 1.0 : 1.0 - it->second;
        };
    }

    net::Topology topo;
    net::LinkId links[6];
    std::optional<ProbeTree> tree;
};

TEST_F(ProbeFixture, PerfectNetworkAllLeavesAck) {
    util::Rng rng(1);
    const auto rec =
        sample_striped_probe(*tree, make_pass_fn(), 0, {}, rng);
    for (std::size_t leaf = 0; leaf < 3; ++leaf) {
        EXPECT_TRUE(rec.received[leaf]);
        EXPECT_TRUE(rec.acked[leaf]);
        EXPECT_TRUE(rec.nonce_valid[leaf]);
    }
}

TEST_F(ProbeFixture, DeadRootLinkSilencesEveryLeaf) {
    util::Rng rng(2);
    const auto rec = sample_striped_probe(
        *tree, make_pass_fn({{links[0], 1.0}}), 0, {}, rng);
    for (std::size_t leaf = 0; leaf < 3; ++leaf) {
        EXPECT_FALSE(rec.received[leaf]);
        EXPECT_FALSE(rec.acked[leaf]);
    }
}

TEST_F(ProbeFixture, SharedLinkLossIsCorrelatedAcrossLeaves) {
    // Leaves 4 and 5 share links[1]; their outcomes under its loss must be
    // identical in every stripe -- the multicast-emulation property.
    util::Rng rng(3);
    for (int trial = 0; trial < 200; ++trial) {
        const auto rec = sample_striped_probe(
            *tree, make_pass_fn({{links[1], 0.5}}), 0, {}, rng);
        EXPECT_EQ(rec.received[0], rec.received[1]) << "trial " << trial;
        EXPECT_TRUE(rec.received[2]);  // leaf 6 unaffected
    }
}

TEST_F(ProbeFixture, LastMileLossAffectsOneLeafOnly) {
    util::Rng rng(4);
    int lost4 = 0;
    const int n = 500;
    for (int trial = 0; trial < n; ++trial) {
        const auto rec = sample_striped_probe(
            *tree, make_pass_fn({{links[3], 0.3}}), 0, {}, rng);
        if (!rec.received[0]) ++lost4;
        EXPECT_TRUE(rec.received[1]);
        EXPECT_TRUE(rec.received[2]);
    }
    EXPECT_NEAR(lost4, 150, 45);
}

TEST_F(ProbeFixture, SuppressorDropsAcksButReceives) {
    util::Rng rng(5);
    std::vector<LeafBehavior> behaviors(3);
    behaviors[1].suppress_ack_probability = 1.0;
    const auto rec =
        sample_striped_probe(*tree, make_pass_fn(), 0, behaviors, rng);
    EXPECT_TRUE(rec.received[1]);
    EXPECT_FALSE(rec.acked[1]);
}

TEST_F(ProbeFixture, FabricatorAcksWithInvalidNonce) {
    util::Rng rng(6);
    std::vector<LeafBehavior> behaviors(3);
    behaviors[2].fabricate_acks = true;
    const auto rec = sample_striped_probe(
        *tree, make_pass_fn({{links[5], 1.0}}), 0, behaviors, rng);
    EXPECT_FALSE(rec.received[2]);
    EXPECT_TRUE(rec.acked[2]);
    EXPECT_FALSE(rec.nonce_valid[2]);  // cannot echo an unseen nonce
}

TEST_F(ProbeFixture, BehaviorSizeMismatchThrows) {
    util::Rng rng(7);
    std::vector<LeafBehavior> behaviors(2);
    EXPECT_THROW(
        sample_striped_probe(*tree, make_pass_fn(), 0, behaviors, rng),
        std::invalid_argument);
}

TEST_F(ProbeFixture, HeavyweightSessionCountsAcks) {
    util::Rng rng(8);
    HeavyweightParams params;
    params.probe_count = 400;
    const auto result = run_heavyweight_session(
        *tree, make_pass_fn({{links[3], 0.25}}), 0, params, {}, rng);
    EXPECT_EQ(result.probes.size(), 400u);
    EXPECT_NEAR(result.ack_rate(0), 0.75, 0.07);
    EXPECT_NEAR(result.ack_rate(1), 1.0, 1e-12);
    EXPECT_NEAR(result.ack_rate(2), 1.0, 1e-12);
    EXPECT_GT(result.finished_at, result.started_at);
    EXPECT_THROW(run_heavyweight_session(*tree, make_pass_fn(), 0,
                                         HeavyweightParams{.probe_count = 0},
                                         {}, rng),
                 std::invalid_argument);
}

TEST_F(ProbeFixture, LightweightRetriesRecoverLossyLeaves) {
    util::Rng rng(9);
    // 50% lossy last mile: retries almost always get through eventually.
    int responsive = 0;
    for (int trial = 0; trial < 100; ++trial) {
        const auto result = run_lightweight_probe(
            *tree, make_pass_fn({{links[3], 0.5}}), 0, 6, {}, rng);
        if (result.responsive[0]) ++responsive;
    }
    EXPECT_GT(responsive, 95);
}

TEST_F(ProbeFixture, LightweightCannotRecoverDeadLink) {
    util::Rng rng(10);
    const auto result = run_lightweight_probe(
        *tree, make_pass_fn({{links[5], 1.0}}), 0, 5, {}, rng);
    EXPECT_FALSE(result.responsive[2]);
    EXPECT_TRUE(result.responsive[0]);
    EXPECT_TRUE(result.responsive[1]);
}

TEST_F(ProbeFixture, DetectFabricatorsFlagsOnlyGuiltyLeaf) {
    util::Rng rng(11);
    std::vector<LeafBehavior> behaviors(3);
    behaviors[0].fabricate_acks = true;
    const auto session = run_heavyweight_session(
        *tree, make_pass_fn({{links[3], 0.4}}), 0,
        HeavyweightParams{.probe_count = 200}, behaviors, rng);
    const auto flagged = detect_fabricators(3, session.probes);
    EXPECT_TRUE(flagged[0]);
    EXPECT_FALSE(flagged[1]);
    EXPECT_FALSE(flagged[2]);
}

TEST_F(ProbeFixture, DetectSuppressorsFlagsAckDropper) {
    util::Rng rng(12);
    std::vector<LeafBehavior> behaviors(3);
    behaviors[0].suppress_ack_probability = 0.95;
    const auto session = run_heavyweight_session(
        *tree, make_pass_fn(), 0, HeavyweightParams{.probe_count = 300},
        behaviors, rng);
    const auto flagged =
        detect_suppressors(*tree, session.probes, SuppressionTestParams{});
    EXPECT_TRUE(flagged[0]);
    EXPECT_FALSE(flagged[1]);
    EXPECT_FALSE(flagged[2]);
}

TEST_F(ProbeFixture, HonestLeavesUnderModerateLossNotFlagged) {
    util::Rng rng(13);
    const auto session = run_heavyweight_session(
        *tree, make_pass_fn({{links[3], 0.2}, {links[1], 0.1}}), 0,
        HeavyweightParams{.probe_count = 300}, {}, rng);
    const auto flagged =
        detect_suppressors(*tree, session.probes, SuppressionTestParams{});
    EXPECT_FALSE(flagged[0]);
    EXPECT_FALSE(flagged[1]);
    EXPECT_FALSE(flagged[2]);
}

TEST_F(ProbeFixture, ExcludeLeavesSilencesFlaggedFeedback) {
    util::Rng rng(14);
    const auto session = run_heavyweight_session(
        *tree, make_pass_fn(), 0, HeavyweightParams{.probe_count = 10}, {},
        rng);
    const auto cleaned =
        exclude_leaves(session.probes, {true, false, false});
    for (const auto& rec : cleaned) {
        EXPECT_FALSE(rec.acked[0]);
        EXPECT_TRUE(rec.acked[1]);
    }
    EXPECT_THROW(exclude_leaves(session.probes, {true}),
                 std::invalid_argument);
}

}  // namespace
}  // namespace concilium::tomography
