#include "net/event_sim.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/metrics.h"

namespace concilium::net {
namespace {

TEST(EventSim, FiresInTimeOrder) {
    EventSim sim;
    std::vector<int> order;
    sim.schedule_at(30, [&] { order.push_back(3); });
    sim.schedule_at(10, [&] { order.push_back(1); });
    sim.schedule_at(20, [&] { order.push_back(2); });
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30);
}

TEST(EventSim, EqualTimesFireInScheduleOrder) {
    EventSim sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        sim.schedule_at(42, [&order, i] { order.push_back(i); });
    }
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventSim, ScheduleAfterUsesCurrentTime) {
    EventSim sim;
    util::SimTime observed = -1;
    sim.schedule_at(100, [&] {
        sim.schedule_after(50, [&] { observed = sim.now(); });
    });
    sim.run_all();
    EXPECT_EQ(observed, 150);
}

TEST(EventSim, PastEventsClampToNow) {
    EventSim sim;
    sim.schedule_at(100, [] {});
    sim.run_all();
    util::SimTime fired_at = -1;
    sim.schedule_at(10, [&] { fired_at = sim.now(); });  // in the past
    sim.run_all();
    EXPECT_EQ(fired_at, 100);
}

TEST(EventSim, RunUntilAdvancesClockEvenWhenIdle) {
    EventSim sim;
    sim.run_until(500);
    EXPECT_EQ(sim.now(), 500);
}

TEST(EventSim, RunUntilStopsAtBoundary) {
    EventSim sim;
    bool early = false;
    bool late = false;
    sim.schedule_at(10, [&] { early = true; });
    sim.schedule_at(20, [&] { late = true; });
    sim.run_until(15);
    EXPECT_TRUE(early);
    EXPECT_FALSE(late);
    EXPECT_EQ(sim.now(), 15);
    EXPECT_EQ(sim.pending(), 1u);
    sim.run_until(20);  // boundary inclusive
    EXPECT_TRUE(late);
}

TEST(EventSim, EventsMayScheduleMoreEvents) {
    EventSim sim;
    int chain = 0;
    std::function<void()> step = [&] {
        if (++chain < 100) sim.schedule_after(1, step);
    };
    sim.schedule_at(0, step);
    sim.run_all();
    EXPECT_EQ(chain, 100);
    EXPECT_EQ(sim.now(), 99);
}

TEST(EventSim, PastScheduleFromCallbackFiresAtCurrentTime) {
    // A callback that schedules into the past must see the new event fire
    // at the *current* time, inside the same run, not warp the clock back.
    EventSim sim;
    util::SimTime fired_at = -1;
    sim.schedule_at(50, [&] {
        sim.schedule_at(10, [&] { fired_at = sim.now(); });
    });
    sim.run_until(60);
    EXPECT_EQ(fired_at, 50);
    EXPECT_EQ(sim.now(), 60);
}

TEST(EventSim, CallbackSchedulingEqualTimeRunsAfterExistingPeers) {
    // An event scheduled *during* the tick for its own timestamp joins the
    // back of that timestamp's queue: insertion order is global, not
    // per-batch.
    EventSim sim;
    std::vector<int> order;
    sim.schedule_at(7, [&] {
        order.push_back(0);
        sim.schedule_at(7, [&] { order.push_back(2); });
    });
    sim.schedule_at(7, [&] { order.push_back(1); });
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventSim, RunUntilHonorsEventsScheduledDuringTheRun) {
    // Events a callback schedules inside run_until(h) still fire in the
    // same call when they land on or before the horizon, and are retained
    // (not dropped) when they land beyond it.
    EventSim sim;
    bool within = false;
    bool beyond = false;
    sim.schedule_at(10, [&] {
        sim.schedule_after(5, [&] { within = true; });
        sim.schedule_after(500, [&] { beyond = true; });
    });
    sim.run_until(100);
    EXPECT_TRUE(within);
    EXPECT_FALSE(beyond);
    EXPECT_EQ(sim.pending(), 1u);
    sim.run_until(510);
    EXPECT_TRUE(beyond);
}

TEST(EventSim, CountsScheduledAndExecutedEvents) {
    auto& registry = util::metrics::Registry::global();
    registry.reset();
    EventSim sim;
    sim.schedule_at(10, [] {});
    sim.schedule_at(20, [] {});
    sim.schedule_at(30, [] {});
    EXPECT_EQ(registry.counter("net.events_scheduled").value(), 3);
    EXPECT_EQ(registry.counter("net.events_executed").value(), 0);
    EXPECT_DOUBLE_EQ(registry.gauge("net.queue_depth_max").value(), 3.0);
    sim.run_until(20);
    EXPECT_EQ(registry.counter("net.events_executed").value(), 2);
    sim.run_all();
    EXPECT_EQ(registry.counter("net.events_executed").value(), 3);
}

TEST(EventSim, StepReturnsFalseWhenEmpty) {
    EventSim sim;
    EXPECT_FALSE(sim.step());
    sim.schedule_at(1, [] {});
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
    EXPECT_TRUE(sim.empty());
}

TEST(EventSim, PodEventsDispatchWithOperands) {
    EventSim sim;
    struct Seen {
        std::uint32_t a;
        std::uint64_t b;
        std::uint64_t c;
        util::SimTime at;
    };
    std::vector<Seen> seen;
    struct Ctx {
        EventSim* sim;
        std::vector<Seen>* seen;
    } ctx{&sim, &seen};
    const auto h = sim.register_handler(
        &ctx, [](void* p, std::uint32_t a, std::uint64_t b, std::uint64_t c) {
            auto* x = static_cast<Ctx*>(p);
            x->seen->push_back(Seen{a, b, c, x->sim->now()});
        });
    sim.post_at(20, h, 2, 22, 222);
    sim.post_at(10, h, 1, 11, 111);
    sim.post_after(5, h, 0);
    sim.run_all();
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0].a, 0u);
    EXPECT_EQ(seen[0].at, 5);
    EXPECT_EQ(seen[1].a, 1u);
    EXPECT_EQ(seen[1].b, 11u);
    EXPECT_EQ(seen[1].c, 111u);
    EXPECT_EQ(seen[2].a, 2u);
    EXPECT_EQ(seen[2].at, 20);
}

TEST(EventSim, PodAndCallbackEventsInterleaveDeterministically) {
    EventSim sim;
    std::vector<int> order;
    struct Ctx {
        std::vector<int>* order;
    } ctx{&order};
    const auto h = sim.register_handler(
        &ctx, [](void* p, std::uint32_t a, std::uint64_t, std::uint64_t) {
            static_cast<Ctx*>(p)->order->push_back(static_cast<int>(a));
        });
    sim.post_at(7, h, 0);
    sim.schedule_at(7, [&] { order.push_back(1); });
    sim.post_at(7, h, 2);
    sim.schedule_at(7, [&] { order.push_back(3); });
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventSim, CalendarOrderingProperty) {
    // Property: however events land relative to the wheel window (same
    // bucket, later buckets, overflow heap, clamped-to-now), dispatch order
    // is exactly ascending (time, schedule order).  Uses a deterministic
    // xorshift so failures reproduce.
    EventSim sim;
    struct Fired {
        util::SimTime at;
        std::uint32_t seq;
    };
    std::vector<Fired> fired;
    struct Ctx {
        EventSim* sim;
        std::vector<Fired>* fired;
    } ctx{&sim, &fired};
    const auto h = sim.register_handler(
        &ctx, [](void* p, std::uint32_t a, std::uint64_t, std::uint64_t) {
            auto* x = static_cast<Ctx*>(p);
            x->fired->push_back(Fired{x->sim->now(), a});
        });
    std::uint64_t x = 0x243f6a8885a308d3ULL;
    auto rnd = [&] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };
    std::uint32_t seq = 0;
    std::vector<std::pair<util::SimTime, std::uint32_t>> expected;
    for (int burst = 0; burst < 40; ++burst) {
        for (int i = 0; i < 50; ++i) {
            // Mix of near (same bucket), mid (wheel), and far (overflow)
            // times, including exact duplicates and sub-bucket collisions.
            util::SimTime t;
            switch (rnd() % 4) {
                case 0: t = sim.now() + static_cast<util::SimTime>(rnd() % 1000); break;
                case 1: t = sim.now() + static_cast<util::SimTime>(rnd() % (1 << 20)); break;
                case 2: t = sim.now() + static_cast<util::SimTime>(rnd() % (200LL << 20)); break;
                default: t = sim.now();  // equal-time pile-up
            }
            sim.post_at(t, h, seq);
            expected.emplace_back(t < sim.now() ? sim.now() : t, seq);
            ++seq;
        }
        // Drain partway so the cursor advances between bursts.
        sim.run_until(sim.now() + static_cast<util::SimTime>(rnd() % (50LL << 20)));
    }
    sim.run_all();
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& p, const auto& q) { return p.first < q.first; });
    ASSERT_EQ(fired.size(), expected.size());
    for (std::size_t i = 0; i < fired.size(); ++i) {
        EXPECT_EQ(fired[i].at, expected[i].first) << "event " << i;
        EXPECT_EQ(fired[i].seq, expected[i].second) << "event " << i;
    }
}

TEST(EventSim, MaxPendingValveThrowsInsteadOfGrowing) {
    EventSim sim;
    sim.set_max_pending(10);
    const auto h = sim.register_handler(
        nullptr, [](void*, std::uint32_t, std::uint64_t, std::uint64_t) {});
    for (int i = 0; i < 10; ++i) sim.post_at(i, h);
    EXPECT_THROW(sim.schedule_at(99, [] {}), std::length_error);
    // Draining makes room again.
    sim.run_all();
    EXPECT_NO_THROW(sim.schedule_at(100, [] {}));
}

TEST(EventSim, HighWaterGaugesTrackQueueDepth) {
    auto& registry = util::metrics::Registry::global();
    registry.reset();
    EventSim sim;
    const auto h = sim.register_handler(
        nullptr, [](void*, std::uint32_t, std::uint64_t, std::uint64_t) {});
    for (int i = 0; i < 5; ++i) sim.post_at(i, h);
    // Far-future events exercise the overflow heap.
    sim.schedule_at(util::kHour, [] {});
    sim.schedule_at(2 * util::kHour, [] {});
    EXPECT_GE(registry.gauge("net.eventsim.queue_high_water").value(), 7.0);
    EXPECT_GE(registry.gauge("net.eventsim.overflow_high_water").value(), 2.0);
    sim.run_all();
    EXPECT_EQ(sim.pending(), 0u);
    EXPECT_EQ(sim.now(), 2 * util::kHour);
}

}  // namespace
}  // namespace concilium::net
