#include "net/event_sim.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/metrics.h"

namespace concilium::net {
namespace {

TEST(EventSim, FiresInTimeOrder) {
    EventSim sim;
    std::vector<int> order;
    sim.schedule_at(30, [&] { order.push_back(3); });
    sim.schedule_at(10, [&] { order.push_back(1); });
    sim.schedule_at(20, [&] { order.push_back(2); });
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30);
}

TEST(EventSim, EqualTimesFireInScheduleOrder) {
    EventSim sim;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        sim.schedule_at(42, [&order, i] { order.push_back(i); });
    }
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventSim, ScheduleAfterUsesCurrentTime) {
    EventSim sim;
    util::SimTime observed = -1;
    sim.schedule_at(100, [&] {
        sim.schedule_after(50, [&] { observed = sim.now(); });
    });
    sim.run_all();
    EXPECT_EQ(observed, 150);
}

TEST(EventSim, PastEventsClampToNow) {
    EventSim sim;
    sim.schedule_at(100, [] {});
    sim.run_all();
    util::SimTime fired_at = -1;
    sim.schedule_at(10, [&] { fired_at = sim.now(); });  // in the past
    sim.run_all();
    EXPECT_EQ(fired_at, 100);
}

TEST(EventSim, RunUntilAdvancesClockEvenWhenIdle) {
    EventSim sim;
    sim.run_until(500);
    EXPECT_EQ(sim.now(), 500);
}

TEST(EventSim, RunUntilStopsAtBoundary) {
    EventSim sim;
    bool early = false;
    bool late = false;
    sim.schedule_at(10, [&] { early = true; });
    sim.schedule_at(20, [&] { late = true; });
    sim.run_until(15);
    EXPECT_TRUE(early);
    EXPECT_FALSE(late);
    EXPECT_EQ(sim.now(), 15);
    EXPECT_EQ(sim.pending(), 1u);
    sim.run_until(20);  // boundary inclusive
    EXPECT_TRUE(late);
}

TEST(EventSim, EventsMayScheduleMoreEvents) {
    EventSim sim;
    int chain = 0;
    std::function<void()> step = [&] {
        if (++chain < 100) sim.schedule_after(1, step);
    };
    sim.schedule_at(0, step);
    sim.run_all();
    EXPECT_EQ(chain, 100);
    EXPECT_EQ(sim.now(), 99);
}

TEST(EventSim, PastScheduleFromCallbackFiresAtCurrentTime) {
    // A callback that schedules into the past must see the new event fire
    // at the *current* time, inside the same run, not warp the clock back.
    EventSim sim;
    util::SimTime fired_at = -1;
    sim.schedule_at(50, [&] {
        sim.schedule_at(10, [&] { fired_at = sim.now(); });
    });
    sim.run_until(60);
    EXPECT_EQ(fired_at, 50);
    EXPECT_EQ(sim.now(), 60);
}

TEST(EventSim, CallbackSchedulingEqualTimeRunsAfterExistingPeers) {
    // An event scheduled *during* the tick for its own timestamp joins the
    // back of that timestamp's queue: insertion order is global, not
    // per-batch.
    EventSim sim;
    std::vector<int> order;
    sim.schedule_at(7, [&] {
        order.push_back(0);
        sim.schedule_at(7, [&] { order.push_back(2); });
    });
    sim.schedule_at(7, [&] { order.push_back(1); });
    sim.run_all();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventSim, RunUntilHonorsEventsScheduledDuringTheRun) {
    // Events a callback schedules inside run_until(h) still fire in the
    // same call when they land on or before the horizon, and are retained
    // (not dropped) when they land beyond it.
    EventSim sim;
    bool within = false;
    bool beyond = false;
    sim.schedule_at(10, [&] {
        sim.schedule_after(5, [&] { within = true; });
        sim.schedule_after(500, [&] { beyond = true; });
    });
    sim.run_until(100);
    EXPECT_TRUE(within);
    EXPECT_FALSE(beyond);
    EXPECT_EQ(sim.pending(), 1u);
    sim.run_until(510);
    EXPECT_TRUE(beyond);
}

TEST(EventSim, CountsScheduledAndExecutedEvents) {
    auto& registry = util::metrics::Registry::global();
    registry.reset();
    EventSim sim;
    sim.schedule_at(10, [] {});
    sim.schedule_at(20, [] {});
    sim.schedule_at(30, [] {});
    EXPECT_EQ(registry.counter("net.events_scheduled").value(), 3);
    EXPECT_EQ(registry.counter("net.events_executed").value(), 0);
    EXPECT_DOUBLE_EQ(registry.gauge("net.queue_depth_max").value(), 3.0);
    sim.run_until(20);
    EXPECT_EQ(registry.counter("net.events_executed").value(), 2);
    sim.run_all();
    EXPECT_EQ(registry.counter("net.events_executed").value(), 3);
}

TEST(EventSim, StepReturnsFalseWhenEmpty) {
    EventSim sim;
    EXPECT_FALSE(sim.step());
    sim.schedule_at(1, [] {});
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
    EXPECT_TRUE(sim.empty());
}

}  // namespace
}  // namespace concilium::net
