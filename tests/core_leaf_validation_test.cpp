// Castro's leaf-set density test, wired end to end (Section 2 / 3.1).

#include <gtest/gtest.h>

#include <unordered_map>

#include "core/validation.h"
#include "test_helpers.h"

namespace concilium::core {
namespace {

struct LeafValidationFixture : ::testing::Test {
    LeafValidationFixture() : ca(41), rng(42) {
        overlay::OverlayParams params;
        net.emplace(overlay::OverlayNetwork(
            concilium::testing::make_members(ca, 200), params, rng));
        for (overlay::MemberIndex i = 0; i < net->size(); ++i) {
            keys_by_id.emplace(net->member(i).id(),
                               net->member(i).keys.public_key());
        }
    }

    overlay::LeafSetAdvertisement advertise(overlay::MemberIndex who,
                                            util::SimTime now,
                                            util::SimTime probe_age) {
        return overlay::make_leaf_advertisement(
            *net, who, now,
            [&](overlay::MemberIndex) { return now - probe_age; });
    }

    std::function<std::optional<crypto::PublicKey>(const util::NodeId&)>
    key_of() {
        return [this](const util::NodeId& id)
                   -> std::optional<crypto::PublicKey> {
            const auto it = keys_by_id.find(id);
            if (it == keys_by_id.end()) return std::nullopt;
            return it->second;
        };
    }

    double local_spacing() {
        return net->leaf_set(0).mean_spacing(
            [&](overlay::MemberIndex m) { return net->member(m).id(); });
    }

    ValidationParams params_with(double gamma = 3.0) {
        ValidationParams p;
        p.gamma = gamma;  // spacing is noisy at n=200; generous default
        return p;
    }

    crypto::CertificateAuthority ca;
    util::Rng rng;
    std::optional<overlay::OverlayNetwork> net;
    std::unordered_map<util::NodeId, crypto::PublicKey, util::NodeIdHash>
        keys_by_id;
};

TEST_F(LeafValidationFixture, HonestLeafSetPasses) {
    const util::SimTime now = 20 * util::kMinute;
    const auto ad = advertise(7, now, 30 * util::kSecond);
    EXPECT_EQ(validate_leaf_advertisement(ad, local_spacing(), now,
                                          params_with(), key_of(),
                                          ca.registry()),
              AdvertisementCheck::kOk);
    EXPECT_GT(ad.wire_bytes(), 16u * 144u);  // 16 signed entries + envelope
}

TEST_F(LeafValidationFixture, AdvertisedSpacingApproximatesLocalView) {
    const auto ad = advertise(7, 0, 0);
    const double direct = net->leaf_set(7).mean_spacing(
        [&](overlay::MemberIndex m) { return net->member(m).id(); });
    EXPECT_NEAR(ad.mean_spacing(), direct, 1e-12);
}

TEST_F(LeafValidationFixture, SuppressedLeafSetFailsDensityTest) {
    // The classic suppression attack: hide every other neighbour so routing
    // detours through attacker-controlled space.  The survivors' spacing
    // roughly doubles.
    const util::SimTime now = 20 * util::kMinute;
    auto ad = advertise(7, now, 30 * util::kSecond);
    const auto thin = [](std::vector<overlay::LeafEntry>& side) {
        std::vector<overlay::LeafEntry> kept;
        for (std::size_t i = 1; i < side.size(); i += 2) {
            kept.push_back(side[i]);
        }
        side = std::move(kept);
    };
    thin(ad.successors);
    thin(ad.predecessors);
    ad.signature = net->member(7).keys.sign(ad.signed_payload());
    EXPECT_EQ(validate_leaf_advertisement(ad, local_spacing(), now,
                                          params_with(1.5), key_of(),
                                          ca.registry()),
              AdvertisementCheck::kTooSparse);
}

TEST_F(LeafValidationFixture, TamperedOwnerSignatureRejected) {
    const util::SimTime now = 20 * util::kMinute;
    auto ad = advertise(7, now, 30 * util::kSecond);
    ad.issued_at += 1;
    EXPECT_EQ(validate_leaf_advertisement(ad, local_spacing(), now,
                                          params_with(), key_of(),
                                          ca.registry()),
              AdvertisementCheck::kBadOwnerSignature);
}

TEST_F(LeafValidationFixture, StaleNeighboursRejected) {
    const util::SimTime now = 30 * util::kMinute;
    const auto ad = advertise(7, now, 10 * util::kMinute);
    EXPECT_EQ(validate_leaf_advertisement(ad, local_spacing(), now,
                                          params_with(), key_of(),
                                          ca.registry()),
              AdvertisementCheck::kStaleEntry);
}

TEST_F(LeafValidationFixture, MisorderedEntriesRejected) {
    const util::SimTime now = 20 * util::kMinute;
    auto ad = advertise(7, now, 30 * util::kSecond);
    ASSERT_GE(ad.successors.size(), 2u);
    std::swap(ad.successors[0], ad.successors[1]);
    ad.signature = net->member(7).keys.sign(ad.signed_payload());
    EXPECT_EQ(validate_leaf_advertisement(ad, local_spacing(), now,
                                          params_with(), key_of(),
                                          ca.registry()),
              AdvertisementCheck::kMalformedEntry);
}

TEST_F(LeafValidationFixture, OwnerListedAsNeighbourRejected) {
    const util::SimTime now = 20 * util::kMinute;
    auto ad = advertise(7, now, 30 * util::kSecond);
    ad.successors[0].peer = ad.owner;
    ad.successors[0].freshness = crypto::make_signed_timestamp(
        ad.owner, now, net->member(7).keys);
    ad.signature = net->member(7).keys.sign(ad.signed_payload());
    EXPECT_EQ(validate_leaf_advertisement(ad, local_spacing(), now,
                                          params_with(), key_of(),
                                          ca.registry()),
              AdvertisementCheck::kMalformedEntry);
}

}  // namespace
}  // namespace concilium::core
