#include "core/verdicts.h"

#include <gtest/gtest.h>

namespace concilium::core {
namespace {

const util::NodeId kSuspect = util::NodeId::from_hex("bb");
const util::NodeId kOther = util::NodeId::from_hex("cc");

TEST(Verdict, ThresholdSemantics) {
    VerdictParams params;  // threshold 0.4
    EXPECT_FALSE(is_guilty_verdict(0.39, params));
    EXPECT_TRUE(is_guilty_verdict(0.4, params));
    EXPECT_TRUE(is_guilty_verdict(1.0, params));
}

TEST(VerdictLedger, CountsGuiltyVerdictsPerSuspect) {
    VerdictParams params;
    params.accusation_threshold = 3;
    VerdictLedger ledger(params);
    EXPECT_EQ(ledger.guilty_count(kSuspect), 0);

    ledger.record(kSuspect, 0.9, 0);
    ledger.record(kSuspect, 0.1, 1);
    ledger.record(kOther, 0.9, 2);
    EXPECT_EQ(ledger.guilty_count(kSuspect), 1);
    EXPECT_EQ(ledger.verdict_count(kSuspect), 2);
    EXPECT_EQ(ledger.guilty_count(kOther), 1);
}

TEST(VerdictLedger, AccusationTriggersAtM) {
    VerdictParams params;
    params.accusation_threshold = 3;
    VerdictLedger ledger(params);
    EXPECT_FALSE(ledger.record(kSuspect, 0.9, 0).accusation_triggered);
    EXPECT_FALSE(ledger.record(kSuspect, 0.9, 1).accusation_triggered);
    const auto outcome = ledger.record(kSuspect, 0.9, 2);
    EXPECT_TRUE(outcome.accusation_triggered);
    EXPECT_EQ(outcome.guilty_in_window, 3);
}

TEST(VerdictLedger, WindowSlidesAndForgets) {
    VerdictParams params;
    params.window = 5;
    params.accusation_threshold = 3;
    VerdictLedger ledger(params);
    // Three guilty verdicts followed by five innocents: the guilty ones
    // fall out of the 5-slot window.
    for (int i = 0; i < 3; ++i) ledger.record(kSuspect, 0.9, i);
    EXPECT_EQ(ledger.guilty_count(kSuspect), 3);
    for (int i = 0; i < 5; ++i) ledger.record(kSuspect, 0.0, 10 + i);
    EXPECT_EQ(ledger.guilty_count(kSuspect), 0);
    EXPECT_EQ(ledger.verdict_count(kSuspect), 5);
}

TEST(VerdictLedger, RetractGuiltyWithdrawsOnlyTheAnnouncedInterval) {
    VerdictParams params;
    params.accusation_threshold = 3;
    VerdictLedger ledger(params);
    ledger.record(kSuspect, 0.9, 10);
    ledger.record(kSuspect, 0.9, 20);
    ledger.record(kSuspect, 0.9, 30);
    ledger.record(kOther, 0.9, 20);
    EXPECT_EQ(ledger.guilty_count(kSuspect), 3);

    // A verified recovery announcement covering [15, 25] proves the middle
    // verdict judged a crashed node.
    EXPECT_EQ(ledger.retract_guilty(kSuspect, 15, 25), 1);
    EXPECT_EQ(ledger.guilty_count(kSuspect), 2);
    // The entry stays in the window as innocent; w keeps counting.
    EXPECT_EQ(ledger.verdict_count(kSuspect), 3);
    // Other suspects and out-of-interval verdicts are untouched.
    EXPECT_EQ(ledger.guilty_count(kOther), 1);
    // Retracting again finds nothing left to withdraw.
    EXPECT_EQ(ledger.retract_guilty(kSuspect, 15, 25), 0);
    EXPECT_EQ(ledger.retract_guilty(kSuspect, 100, 200), 0);
}

TEST(VerdictLedger, ExportRestoreRoundTripsMidWindowState) {
    VerdictParams params;
    params.accusation_threshold = 3;
    VerdictLedger judge(params);
    // Two guilty verdicts on the books: one more would accuse.
    judge.record(kSuspect, 0.9, 10);
    judge.record(kSuspect, 0.9, 20);
    judge.record(kOther, 0.1, 15);

    // Crash: a fresh ledger restored from the checkpoint resumes
    // mid-window instead of forgetting m-1 of the m guilty verdicts.
    VerdictLedger restarted(params);
    restarted.restore_windows(judge.export_windows());
    EXPECT_EQ(restarted.guilty_count(kSuspect), 2);
    EXPECT_EQ(restarted.verdict_count(kSuspect), 2);
    EXPECT_EQ(restarted.verdict_count(kOther), 1);
    EXPECT_TRUE(
        restarted.record(kSuspect, 0.9, 30).accusation_triggered);
}

TEST(VerdictLedger, ExportWindowsIsOrderedBySuspectId) {
    VerdictParams params;
    VerdictLedger ledger(params);
    // Insertion order is kOther (cc) before kSuspect (bb); export must
    // sort by id so journal replays are byte-stable across processes.
    ledger.record(kOther, 0.9, 1);
    ledger.record(kSuspect, 0.9, 2);
    const auto windows = ledger.export_windows();
    ASSERT_EQ(windows.size(), 2u);
    EXPECT_EQ(windows[0].suspect, kSuspect);
    EXPECT_EQ(windows[1].suspect, kOther);
}

TEST(AccusationErrors, MatchBinomialTails) {
    // FP = Pr(W >= m) with W ~ Bin(w, p_good); FN = Pr(W < m) with p_faulty.
    const double fp = accusation_false_positive(100, 6, 0.018);
    const double fn = accusation_false_negative(100, 6, 0.938);
    EXPECT_NEAR(fp, util::binomial_upper_tail(100, 6, 0.018), 1e-15);
    EXPECT_NEAR(fn, util::binomial_lower_tail_exclusive(100, 6, 0.938),
                1e-15);
    EXPECT_THROW(accusation_false_positive(0, 1, 0.5),
                 std::invalid_argument);
}

TEST(AccusationErrors, Figure6aHonestOperatingPoint) {
    // "If all nodes faithfully report probe results, then we can drive both
    // error rates below 1% with an m of 6."  (w = 100, threshold 40%,
    // p_good ~ 1.8%, p_faulty ~ 93.8%.)
    const auto m = minimal_accusation_threshold(100, 0.018, 0.938, 0.01);
    ASSERT_TRUE(m.has_value());
    EXPECT_LE(*m, 6);
    EXPECT_GE(*m, 4);
}

TEST(AccusationErrors, Figure6bColludingOperatingPoint) {
    // "If 20% of hosts maliciously invert their probe results, we can
    // achieve equivalent error rates with an m of 16."  (p_good ~ 8.4%,
    // p_faulty ~ 71.3%.)
    const auto m = minimal_accusation_threshold(100, 0.084, 0.713, 0.01);
    ASSERT_TRUE(m.has_value());
    EXPECT_NEAR(*m, 16, 3);
    // And the honest m no longer suffices under collusion.
    EXPECT_GT(accusation_false_positive(100, 6, 0.084), 0.01);
}

TEST(AccusationErrors, FalsePositiveFallsAndFalseNegativeRisesWithM) {
    double prev_fp = 1.1;
    double prev_fn = -0.1;
    for (int m = 1; m <= 40; ++m) {
        const double fp = accusation_false_positive(100, m, 0.084);
        const double fn = accusation_false_negative(100, m, 0.713);
        EXPECT_LE(fp, prev_fp);
        EXPECT_GE(fn, prev_fn);
        prev_fp = fp;
        prev_fn = fn;
    }
}

TEST(AccusationErrors, ImpossibleBoundYieldsNullopt) {
    // p_good == p_faulty: no threshold separates them.
    EXPECT_FALSE(
        minimal_accusation_threshold(100, 0.5, 0.5, 0.01).has_value());
}

TEST(AccusationErrors, WindowSizeImprovesSeparation) {
    // A larger window gives the binomial more evidence: for fixed
    // (p_good, p_faulty), the best achievable total error shrinks.
    const auto best_error = [](int w, double p_good, double p_faulty) {
        double best = 2.0;
        for (int m = 1; m <= w; ++m) {
            best = std::min(best,
                            accusation_false_positive(w, m, p_good) +
                                accusation_false_negative(w, m, p_faulty));
        }
        return best;
    };
    EXPECT_LT(best_error(100, 0.084, 0.713), best_error(20, 0.084, 0.713));
}

}  // namespace
}  // namespace concilium::core
