#include "core/extensions.h"

#include <gtest/gtest.h>

#include "net/topology_gen.h"
#include "util/rng.h"

namespace concilium::core {
namespace {

TEST(ProbeSharing, GroupsCoLocatedMembersByDomain) {
    util::Rng rng(3);
    net::TopologyParams tp = net::small_params();
    tp.stub_domains = 4;       // few domains => guaranteed co-location
    tp.end_hosts = 200;
    const net::Topology topo = net::generate_topology(tp, rng);
    crypto::CertificateAuthority ca(4);
    const auto net = overlay::build_overlay_from_hosts(
        topo.end_hosts(), 40, ca, overlay::OverlayParams{}, rng);
    const tomography::OverlayTrees trees(net, topo);

    const auto plan = plan_probe_sharing(net, topo, trees);
    ASSERT_FALSE(plan.groups.empty());
    std::size_t grouped = plan.solo_members;
    for (const auto& g : plan.groups) {
        EXPECT_GE(g.members.size(), 2u);
        grouped += g.members.size();
        // Every member of a group really lives in the group's domain.
        for (const auto m : g.members) {
            EXPECT_EQ(topo.domain(net.member(m).ip()), g.domain);
        }
        EXPECT_GT(g.individual_bytes, 0.0);
        EXPECT_GT(g.shared_bytes_per_member, 0.0);
    }
    EXPECT_EQ(grouped, net.size());
}

TEST(ProbeSharing, SharingAmortizesBandwidth) {
    // With heavily co-located members, rotating one multi-forest probe must
    // beat everyone probing alone ("the bandwidth cost for probing shared
    // links could be amortized across multiple nodes").
    util::Rng rng(5);
    net::TopologyParams tp = net::small_params();
    tp.stub_domains = 3;
    tp.end_hosts = 200;
    const net::Topology topo = net::generate_topology(tp, rng);
    crypto::CertificateAuthority ca(6);
    const auto net = overlay::build_overlay_from_hosts(
        topo.end_hosts(), 45, ca, overlay::OverlayParams{}, rng);
    const tomography::OverlayTrees trees(net, topo);

    const auto plan = plan_probe_sharing(net, topo, trees);
    ASSERT_FALSE(plan.groups.empty());
    // Co-located members' trees share the stub and core links, so the group
    // covers each distinct forest link more than once when probing alone --
    // that duplicate coverage is what consolidation eliminates.
    EXPECT_GT(plan.mean_link_redundancy(), 1.2);
    // With only three stub domains the groups are large and their peer sets
    // overlap heavily, so even the all-pairs byte cost amortizes: sharing
    // pays off.  (With tiny groups of disjoint peers it does not -- the
    // bench surfaces that regime.)
    EXPECT_GT(plan.mean_savings(), 1.0);
}

TEST(AckBatch, CounterEncodingForContiguousIds) {
    const auto keys = crypto::KeyPair::from_seed(1);
    AckBatcher batcher(util::NodeId::from_hex("0a"),
                       util::NodeId::from_hex("0b"));
    for (std::uint64_t id = 100; id < 140; ++id) batcher.record(id);
    EXPECT_EQ(batcher.pending(), 40u);
    const auto ack = batcher.flush(5 * util::kSecond, keys);
    EXPECT_EQ(batcher.pending(), 0u);
    EXPECT_EQ(ack.encoding, AckEncoding::kCounter);
    EXPECT_TRUE(ack.covers(100));
    EXPECT_TRUE(ack.covers(139));
    EXPECT_FALSE(ack.covers(99));
    EXPECT_FALSE(ack.covers(140));
}

TEST(AckBatch, HashListEncodingForGappyIds) {
    const auto keys = crypto::KeyPair::from_seed(2);
    AckBatcher batcher(util::NodeId::from_hex("0a"),
                       util::NodeId::from_hex("0b"));
    for (const std::uint64_t id : {5u, 7u, 11u, 12u}) batcher.record(id);
    const auto ack = batcher.flush(0, keys);
    EXPECT_EQ(ack.encoding, AckEncoding::kHashList);
    EXPECT_TRUE(ack.covers(5));
    EXPECT_TRUE(ack.covers(12));
    EXPECT_FALSE(ack.covers(6));   // the gap is NOT acknowledged
    EXPECT_FALSE(ack.covers(10));
}

TEST(AckBatch, DuplicateRecordsCollapse) {
    const auto keys = crypto::KeyPair::from_seed(3);
    AckBatcher batcher(util::NodeId::from_hex("0a"),
                       util::NodeId::from_hex("0b"));
    batcher.record(1);
    batcher.record(1);
    batcher.record(2);
    EXPECT_EQ(batcher.pending(), 2u);
    const auto ack = batcher.flush(0, keys);
    EXPECT_EQ(ack.encoding, AckEncoding::kCounter);
    EXPECT_EQ(ack.count, 2u);
}

TEST(AckBatch, SignatureBindsContent) {
    const auto keys = crypto::KeyPair::from_seed(4);
    crypto::KeyRegistry registry;
    registry.register_key(keys);
    AckBatcher batcher(util::NodeId::from_hex("0a"),
                       util::NodeId::from_hex("0b"));
    for (std::uint64_t id = 0; id < 10; ++id) batcher.record(id);
    auto ack = batcher.flush(0, keys);
    EXPECT_TRUE(verify_batched_ack(ack, keys.public_key(), registry));
    ack.count += 5;  // claim more packets arrived than actually did
    EXPECT_FALSE(verify_batched_ack(ack, keys.public_key(), registry));
}

TEST(AckBatch, BatchingBeatsPerMessageAcks) {
    const auto keys = crypto::KeyPair::from_seed(5);
    AckBatcher contiguous(util::NodeId::from_hex("0a"),
                          util::NodeId::from_hex("0b"));
    AckBatcher gappy(util::NodeId::from_hex("0a"),
                     util::NodeId::from_hex("0b"));
    for (std::uint64_t id = 0; id < 100; ++id) {
        contiguous.record(id);
        if (id % 3 != 0) gappy.record(id);
    }
    const auto counter = contiguous.flush(0, keys);
    const auto hashes = gappy.flush(0, keys);
    const auto per_message = BatchedAck::per_message_wire_bytes(100);
    EXPECT_LT(counter.wire_bytes(), hashes.wire_bytes());
    EXPECT_LT(hashes.wire_bytes(), per_message);
    // The counter encoding is constant-size regardless of batch length.
    AckBatcher big(util::NodeId::from_hex("0a"),
                   util::NodeId::from_hex("0b"));
    for (std::uint64_t id = 0; id < 10000; ++id) big.record(id);
    EXPECT_EQ(big.flush(0, keys).wire_bytes(), counter.wire_bytes());
}

TEST(AdvertisementDiff, DiffsBeatFullTablesForSmallChanges) {
    // A full 100k-overlay advertisement is ~11.3 kB; a 3-entry diff must be
    // far cheaper.
    const BandwidthModel model;
    const double full = model.advertisement_bytes(100000);
    const double diff = advertisement_diff_bytes(3);
    EXPECT_LT(diff, full / 10.0);
    // Diffs grow linearly in changed entries.
    EXPECT_NEAR(advertisement_diff_bytes(10) - advertisement_diff_bytes(5),
                5 * 145.0, 1e-9);
}

}  // namespace
}  // namespace concilium::core
