file(REMOVE_RECURSE
  "CMakeFiles/concilium.dir/concilium_cli.cpp.o"
  "CMakeFiles/concilium.dir/concilium_cli.cpp.o.d"
  "concilium"
  "concilium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concilium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
