# Empty compiler generated dependencies file for concilium.
# This may be replaced when dependencies are built.
