# Empty compiler generated dependencies file for concilium_tests.
# This may be replaced when dependencies are built.
