
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_accusation_test.cpp" "tests/CMakeFiles/concilium_tests.dir/core_accusation_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/core_accusation_test.cpp.o.d"
  "/root/repo/tests/core_blame_test.cpp" "tests/CMakeFiles/concilium_tests.dir/core_blame_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/core_blame_test.cpp.o.d"
  "/root/repo/tests/core_commitment_test.cpp" "tests/CMakeFiles/concilium_tests.dir/core_commitment_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/core_commitment_test.cpp.o.d"
  "/root/repo/tests/core_extensions_test.cpp" "tests/CMakeFiles/concilium_tests.dir/core_extensions_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/core_extensions_test.cpp.o.d"
  "/root/repo/tests/core_fuzz_test.cpp" "tests/CMakeFiles/concilium_tests.dir/core_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/core_fuzz_test.cpp.o.d"
  "/root/repo/tests/core_leaf_validation_test.cpp" "tests/CMakeFiles/concilium_tests.dir/core_leaf_validation_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/core_leaf_validation_test.cpp.o.d"
  "/root/repo/tests/core_misc_test.cpp" "tests/CMakeFiles/concilium_tests.dir/core_misc_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/core_misc_test.cpp.o.d"
  "/root/repo/tests/core_steward_test.cpp" "tests/CMakeFiles/concilium_tests.dir/core_steward_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/core_steward_test.cpp.o.d"
  "/root/repo/tests/core_validation_test.cpp" "tests/CMakeFiles/concilium_tests.dir/core_validation_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/core_validation_test.cpp.o.d"
  "/root/repo/tests/core_verdicts_test.cpp" "tests/CMakeFiles/concilium_tests.dir/core_verdicts_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/core_verdicts_test.cpp.o.d"
  "/root/repo/tests/crypto_test.cpp" "tests/CMakeFiles/concilium_tests.dir/crypto_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/crypto_test.cpp.o.d"
  "/root/repo/tests/dht_test.cpp" "tests/CMakeFiles/concilium_tests.dir/dht_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/dht_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/concilium_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/net_event_sim_test.cpp" "tests/CMakeFiles/concilium_tests.dir/net_event_sim_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/net_event_sim_test.cpp.o.d"
  "/root/repo/tests/net_failure_test.cpp" "tests/CMakeFiles/concilium_tests.dir/net_failure_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/net_failure_test.cpp.o.d"
  "/root/repo/tests/net_topology_test.cpp" "tests/CMakeFiles/concilium_tests.dir/net_topology_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/net_topology_test.cpp.o.d"
  "/root/repo/tests/overlay_advertisement_test.cpp" "tests/CMakeFiles/concilium_tests.dir/overlay_advertisement_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/overlay_advertisement_test.cpp.o.d"
  "/root/repo/tests/overlay_chord_test.cpp" "tests/CMakeFiles/concilium_tests.dir/overlay_chord_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/overlay_chord_test.cpp.o.d"
  "/root/repo/tests/overlay_density_test.cpp" "tests/CMakeFiles/concilium_tests.dir/overlay_density_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/overlay_density_test.cpp.o.d"
  "/root/repo/tests/overlay_network_test.cpp" "tests/CMakeFiles/concilium_tests.dir/overlay_network_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/overlay_network_test.cpp.o.d"
  "/root/repo/tests/overlay_table_test.cpp" "tests/CMakeFiles/concilium_tests.dir/overlay_table_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/overlay_table_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/concilium_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/runtime_archive_test.cpp" "tests/CMakeFiles/concilium_tests.dir/runtime_archive_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/runtime_archive_test.cpp.o.d"
  "/root/repo/tests/runtime_cluster_test.cpp" "tests/CMakeFiles/concilium_tests.dir/runtime_cluster_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/runtime_cluster_test.cpp.o.d"
  "/root/repo/tests/sim_experiments_test.cpp" "tests/CMakeFiles/concilium_tests.dir/sim_experiments_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/sim_experiments_test.cpp.o.d"
  "/root/repo/tests/sim_scenario_test.cpp" "tests/CMakeFiles/concilium_tests.dir/sim_scenario_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/sim_scenario_test.cpp.o.d"
  "/root/repo/tests/steward_property_test.cpp" "tests/CMakeFiles/concilium_tests.dir/steward_property_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/steward_property_test.cpp.o.d"
  "/root/repo/tests/tomography_inference_test.cpp" "tests/CMakeFiles/concilium_tests.dir/tomography_inference_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/tomography_inference_test.cpp.o.d"
  "/root/repo/tests/tomography_probe_test.cpp" "tests/CMakeFiles/concilium_tests.dir/tomography_probe_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/tomography_probe_test.cpp.o.d"
  "/root/repo/tests/tomography_property_test.cpp" "tests/CMakeFiles/concilium_tests.dir/tomography_property_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/tomography_property_test.cpp.o.d"
  "/root/repo/tests/tomography_snapshot_test.cpp" "tests/CMakeFiles/concilium_tests.dir/tomography_snapshot_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/tomography_snapshot_test.cpp.o.d"
  "/root/repo/tests/tomography_tree_test.cpp" "tests/CMakeFiles/concilium_tests.dir/tomography_tree_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/tomography_tree_test.cpp.o.d"
  "/root/repo/tests/util_ids_test.cpp" "tests/CMakeFiles/concilium_tests.dir/util_ids_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/util_ids_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/concilium_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_serialize_test.cpp" "tests/CMakeFiles/concilium_tests.dir/util_serialize_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/util_serialize_test.cpp.o.d"
  "/root/repo/tests/util_stats_test.cpp" "tests/CMakeFiles/concilium_tests.dir/util_stats_test.cpp.o" "gcc" "tests/CMakeFiles/concilium_tests.dir/util_stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/concilium_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/concilium_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/concilium_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/concilium_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/tomography/CMakeFiles/concilium_tomography.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/concilium_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/concilium_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/concilium_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/concilium_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
