# Empty compiler generated dependencies file for event_driven.
# This may be replaced when dependencies are built.
