file(REMOVE_RECURSE
  "CMakeFiles/event_driven.dir/event_driven.cpp.o"
  "CMakeFiles/event_driven.dir/event_driven.cpp.o.d"
  "event_driven"
  "event_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
