file(REMOVE_RECURSE
  "CMakeFiles/diagnose_downstream.dir/diagnose_downstream.cpp.o"
  "CMakeFiles/diagnose_downstream.dir/diagnose_downstream.cpp.o.d"
  "diagnose_downstream"
  "diagnose_downstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_downstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
