# Empty dependencies file for diagnose_downstream.
# This may be replaced when dependencies are built.
