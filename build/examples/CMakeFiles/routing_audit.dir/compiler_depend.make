# Empty compiler generated dependencies file for routing_audit.
# This may be replaced when dependencies are built.
