file(REMOVE_RECURSE
  "CMakeFiles/routing_audit.dir/routing_audit.cpp.o"
  "CMakeFiles/routing_audit.dir/routing_audit.cpp.o.d"
  "routing_audit"
  "routing_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
