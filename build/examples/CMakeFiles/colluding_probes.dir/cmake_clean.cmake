file(REMOVE_RECURSE
  "CMakeFiles/colluding_probes.dir/colluding_probes.cpp.o"
  "CMakeFiles/colluding_probes.dir/colluding_probes.cpp.o.d"
  "colluding_probes"
  "colluding_probes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colluding_probes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
