# Empty compiler generated dependencies file for colluding_probes.
# This may be replaced when dependencies are built.
