# Empty compiler generated dependencies file for concilium_util.
# This may be replaced when dependencies are built.
