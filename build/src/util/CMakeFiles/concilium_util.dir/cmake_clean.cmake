file(REMOVE_RECURSE
  "CMakeFiles/concilium_util.dir/ids.cpp.o"
  "CMakeFiles/concilium_util.dir/ids.cpp.o.d"
  "CMakeFiles/concilium_util.dir/logging.cpp.o"
  "CMakeFiles/concilium_util.dir/logging.cpp.o.d"
  "CMakeFiles/concilium_util.dir/rng.cpp.o"
  "CMakeFiles/concilium_util.dir/rng.cpp.o.d"
  "CMakeFiles/concilium_util.dir/serialize.cpp.o"
  "CMakeFiles/concilium_util.dir/serialize.cpp.o.d"
  "CMakeFiles/concilium_util.dir/stats.cpp.o"
  "CMakeFiles/concilium_util.dir/stats.cpp.o.d"
  "libconcilium_util.a"
  "libconcilium_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concilium_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
