file(REMOVE_RECURSE
  "libconcilium_util.a"
)
