# Empty compiler generated dependencies file for concilium_runtime.
# This may be replaced when dependencies are built.
