file(REMOVE_RECURSE
  "CMakeFiles/concilium_runtime.dir/archive.cpp.o"
  "CMakeFiles/concilium_runtime.dir/archive.cpp.o.d"
  "CMakeFiles/concilium_runtime.dir/cluster.cpp.o"
  "CMakeFiles/concilium_runtime.dir/cluster.cpp.o.d"
  "libconcilium_runtime.a"
  "libconcilium_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concilium_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
