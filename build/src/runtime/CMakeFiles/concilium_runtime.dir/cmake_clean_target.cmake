file(REMOVE_RECURSE
  "libconcilium_runtime.a"
)
