file(REMOVE_RECURSE
  "CMakeFiles/concilium_tomography.dir/inference.cpp.o"
  "CMakeFiles/concilium_tomography.dir/inference.cpp.o.d"
  "CMakeFiles/concilium_tomography.dir/overlay_trees.cpp.o"
  "CMakeFiles/concilium_tomography.dir/overlay_trees.cpp.o.d"
  "CMakeFiles/concilium_tomography.dir/probing.cpp.o"
  "CMakeFiles/concilium_tomography.dir/probing.cpp.o.d"
  "CMakeFiles/concilium_tomography.dir/snapshot.cpp.o"
  "CMakeFiles/concilium_tomography.dir/snapshot.cpp.o.d"
  "CMakeFiles/concilium_tomography.dir/tree.cpp.o"
  "CMakeFiles/concilium_tomography.dir/tree.cpp.o.d"
  "CMakeFiles/concilium_tomography.dir/verification.cpp.o"
  "CMakeFiles/concilium_tomography.dir/verification.cpp.o.d"
  "libconcilium_tomography.a"
  "libconcilium_tomography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concilium_tomography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
