file(REMOVE_RECURSE
  "libconcilium_tomography.a"
)
