
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tomography/inference.cpp" "src/tomography/CMakeFiles/concilium_tomography.dir/inference.cpp.o" "gcc" "src/tomography/CMakeFiles/concilium_tomography.dir/inference.cpp.o.d"
  "/root/repo/src/tomography/overlay_trees.cpp" "src/tomography/CMakeFiles/concilium_tomography.dir/overlay_trees.cpp.o" "gcc" "src/tomography/CMakeFiles/concilium_tomography.dir/overlay_trees.cpp.o.d"
  "/root/repo/src/tomography/probing.cpp" "src/tomography/CMakeFiles/concilium_tomography.dir/probing.cpp.o" "gcc" "src/tomography/CMakeFiles/concilium_tomography.dir/probing.cpp.o.d"
  "/root/repo/src/tomography/snapshot.cpp" "src/tomography/CMakeFiles/concilium_tomography.dir/snapshot.cpp.o" "gcc" "src/tomography/CMakeFiles/concilium_tomography.dir/snapshot.cpp.o.d"
  "/root/repo/src/tomography/tree.cpp" "src/tomography/CMakeFiles/concilium_tomography.dir/tree.cpp.o" "gcc" "src/tomography/CMakeFiles/concilium_tomography.dir/tree.cpp.o.d"
  "/root/repo/src/tomography/verification.cpp" "src/tomography/CMakeFiles/concilium_tomography.dir/verification.cpp.o" "gcc" "src/tomography/CMakeFiles/concilium_tomography.dir/verification.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/concilium_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/concilium_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/concilium_net.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/concilium_overlay.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
