# Empty dependencies file for concilium_tomography.
# This may be replaced when dependencies are built.
