
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/certificates.cpp" "src/crypto/CMakeFiles/concilium_crypto.dir/certificates.cpp.o" "gcc" "src/crypto/CMakeFiles/concilium_crypto.dir/certificates.cpp.o.d"
  "/root/repo/src/crypto/keys.cpp" "src/crypto/CMakeFiles/concilium_crypto.dir/keys.cpp.o" "gcc" "src/crypto/CMakeFiles/concilium_crypto.dir/keys.cpp.o.d"
  "/root/repo/src/crypto/tokens.cpp" "src/crypto/CMakeFiles/concilium_crypto.dir/tokens.cpp.o" "gcc" "src/crypto/CMakeFiles/concilium_crypto.dir/tokens.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/concilium_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
