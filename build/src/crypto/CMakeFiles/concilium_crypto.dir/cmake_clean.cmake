file(REMOVE_RECURSE
  "CMakeFiles/concilium_crypto.dir/certificates.cpp.o"
  "CMakeFiles/concilium_crypto.dir/certificates.cpp.o.d"
  "CMakeFiles/concilium_crypto.dir/keys.cpp.o"
  "CMakeFiles/concilium_crypto.dir/keys.cpp.o.d"
  "CMakeFiles/concilium_crypto.dir/tokens.cpp.o"
  "CMakeFiles/concilium_crypto.dir/tokens.cpp.o.d"
  "libconcilium_crypto.a"
  "libconcilium_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concilium_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
