# Empty dependencies file for concilium_crypto.
# This may be replaced when dependencies are built.
