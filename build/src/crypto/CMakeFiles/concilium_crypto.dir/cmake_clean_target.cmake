file(REMOVE_RECURSE
  "libconcilium_crypto.a"
)
