file(REMOVE_RECURSE
  "CMakeFiles/concilium_sim.dir/experiments.cpp.o"
  "CMakeFiles/concilium_sim.dir/experiments.cpp.o.d"
  "CMakeFiles/concilium_sim.dir/scenario.cpp.o"
  "CMakeFiles/concilium_sim.dir/scenario.cpp.o.d"
  "libconcilium_sim.a"
  "libconcilium_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concilium_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
