# Empty compiler generated dependencies file for concilium_sim.
# This may be replaced when dependencies are built.
