file(REMOVE_RECURSE
  "libconcilium_sim.a"
)
