file(REMOVE_RECURSE
  "CMakeFiles/concilium_net.dir/event_sim.cpp.o"
  "CMakeFiles/concilium_net.dir/event_sim.cpp.o.d"
  "CMakeFiles/concilium_net.dir/link_state.cpp.o"
  "CMakeFiles/concilium_net.dir/link_state.cpp.o.d"
  "CMakeFiles/concilium_net.dir/paths.cpp.o"
  "CMakeFiles/concilium_net.dir/paths.cpp.o.d"
  "CMakeFiles/concilium_net.dir/topology.cpp.o"
  "CMakeFiles/concilium_net.dir/topology.cpp.o.d"
  "CMakeFiles/concilium_net.dir/topology_gen.cpp.o"
  "CMakeFiles/concilium_net.dir/topology_gen.cpp.o.d"
  "CMakeFiles/concilium_net.dir/transport.cpp.o"
  "CMakeFiles/concilium_net.dir/transport.cpp.o.d"
  "libconcilium_net.a"
  "libconcilium_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concilium_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
