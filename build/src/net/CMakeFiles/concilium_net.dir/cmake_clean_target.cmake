file(REMOVE_RECURSE
  "libconcilium_net.a"
)
