# Empty dependencies file for concilium_net.
# This may be replaced when dependencies are built.
