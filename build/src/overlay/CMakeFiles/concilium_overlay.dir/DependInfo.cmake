
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/advertisement.cpp" "src/overlay/CMakeFiles/concilium_overlay.dir/advertisement.cpp.o" "gcc" "src/overlay/CMakeFiles/concilium_overlay.dir/advertisement.cpp.o.d"
  "/root/repo/src/overlay/chord.cpp" "src/overlay/CMakeFiles/concilium_overlay.dir/chord.cpp.o" "gcc" "src/overlay/CMakeFiles/concilium_overlay.dir/chord.cpp.o.d"
  "/root/repo/src/overlay/density.cpp" "src/overlay/CMakeFiles/concilium_overlay.dir/density.cpp.o" "gcc" "src/overlay/CMakeFiles/concilium_overlay.dir/density.cpp.o.d"
  "/root/repo/src/overlay/jump_table.cpp" "src/overlay/CMakeFiles/concilium_overlay.dir/jump_table.cpp.o" "gcc" "src/overlay/CMakeFiles/concilium_overlay.dir/jump_table.cpp.o.d"
  "/root/repo/src/overlay/leaf_set.cpp" "src/overlay/CMakeFiles/concilium_overlay.dir/leaf_set.cpp.o" "gcc" "src/overlay/CMakeFiles/concilium_overlay.dir/leaf_set.cpp.o.d"
  "/root/repo/src/overlay/network.cpp" "src/overlay/CMakeFiles/concilium_overlay.dir/network.cpp.o" "gcc" "src/overlay/CMakeFiles/concilium_overlay.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/concilium_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/concilium_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/concilium_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
