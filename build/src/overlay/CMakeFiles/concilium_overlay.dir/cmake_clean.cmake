file(REMOVE_RECURSE
  "CMakeFiles/concilium_overlay.dir/advertisement.cpp.o"
  "CMakeFiles/concilium_overlay.dir/advertisement.cpp.o.d"
  "CMakeFiles/concilium_overlay.dir/chord.cpp.o"
  "CMakeFiles/concilium_overlay.dir/chord.cpp.o.d"
  "CMakeFiles/concilium_overlay.dir/density.cpp.o"
  "CMakeFiles/concilium_overlay.dir/density.cpp.o.d"
  "CMakeFiles/concilium_overlay.dir/jump_table.cpp.o"
  "CMakeFiles/concilium_overlay.dir/jump_table.cpp.o.d"
  "CMakeFiles/concilium_overlay.dir/leaf_set.cpp.o"
  "CMakeFiles/concilium_overlay.dir/leaf_set.cpp.o.d"
  "CMakeFiles/concilium_overlay.dir/network.cpp.o"
  "CMakeFiles/concilium_overlay.dir/network.cpp.o.d"
  "libconcilium_overlay.a"
  "libconcilium_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concilium_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
