file(REMOVE_RECURSE
  "libconcilium_overlay.a"
)
