# Empty dependencies file for concilium_overlay.
# This may be replaced when dependencies are built.
