file(REMOVE_RECURSE
  "libconcilium_dht.a"
)
