
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dht/dht.cpp" "src/dht/CMakeFiles/concilium_dht.dir/dht.cpp.o" "gcc" "src/dht/CMakeFiles/concilium_dht.dir/dht.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlay/CMakeFiles/concilium_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/concilium_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/concilium_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/concilium_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
