# Empty dependencies file for concilium_dht.
# This may be replaced when dependencies are built.
