file(REMOVE_RECURSE
  "CMakeFiles/concilium_dht.dir/dht.cpp.o"
  "CMakeFiles/concilium_dht.dir/dht.cpp.o.d"
  "libconcilium_dht.a"
  "libconcilium_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concilium_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
