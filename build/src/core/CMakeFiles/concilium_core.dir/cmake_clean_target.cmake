file(REMOVE_RECURSE
  "libconcilium_core.a"
)
