file(REMOVE_RECURSE
  "CMakeFiles/concilium_core.dir/accusation.cpp.o"
  "CMakeFiles/concilium_core.dir/accusation.cpp.o.d"
  "CMakeFiles/concilium_core.dir/bandwidth.cpp.o"
  "CMakeFiles/concilium_core.dir/bandwidth.cpp.o.d"
  "CMakeFiles/concilium_core.dir/blame.cpp.o"
  "CMakeFiles/concilium_core.dir/blame.cpp.o.d"
  "CMakeFiles/concilium_core.dir/commitments.cpp.o"
  "CMakeFiles/concilium_core.dir/commitments.cpp.o.d"
  "CMakeFiles/concilium_core.dir/extensions.cpp.o"
  "CMakeFiles/concilium_core.dir/extensions.cpp.o.d"
  "CMakeFiles/concilium_core.dir/reputation.cpp.o"
  "CMakeFiles/concilium_core.dir/reputation.cpp.o.d"
  "CMakeFiles/concilium_core.dir/steward.cpp.o"
  "CMakeFiles/concilium_core.dir/steward.cpp.o.d"
  "CMakeFiles/concilium_core.dir/validation.cpp.o"
  "CMakeFiles/concilium_core.dir/validation.cpp.o.d"
  "CMakeFiles/concilium_core.dir/verdicts.cpp.o"
  "CMakeFiles/concilium_core.dir/verdicts.cpp.o.d"
  "libconcilium_core.a"
  "libconcilium_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concilium_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
