
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accusation.cpp" "src/core/CMakeFiles/concilium_core.dir/accusation.cpp.o" "gcc" "src/core/CMakeFiles/concilium_core.dir/accusation.cpp.o.d"
  "/root/repo/src/core/bandwidth.cpp" "src/core/CMakeFiles/concilium_core.dir/bandwidth.cpp.o" "gcc" "src/core/CMakeFiles/concilium_core.dir/bandwidth.cpp.o.d"
  "/root/repo/src/core/blame.cpp" "src/core/CMakeFiles/concilium_core.dir/blame.cpp.o" "gcc" "src/core/CMakeFiles/concilium_core.dir/blame.cpp.o.d"
  "/root/repo/src/core/commitments.cpp" "src/core/CMakeFiles/concilium_core.dir/commitments.cpp.o" "gcc" "src/core/CMakeFiles/concilium_core.dir/commitments.cpp.o.d"
  "/root/repo/src/core/extensions.cpp" "src/core/CMakeFiles/concilium_core.dir/extensions.cpp.o" "gcc" "src/core/CMakeFiles/concilium_core.dir/extensions.cpp.o.d"
  "/root/repo/src/core/reputation.cpp" "src/core/CMakeFiles/concilium_core.dir/reputation.cpp.o" "gcc" "src/core/CMakeFiles/concilium_core.dir/reputation.cpp.o.d"
  "/root/repo/src/core/steward.cpp" "src/core/CMakeFiles/concilium_core.dir/steward.cpp.o" "gcc" "src/core/CMakeFiles/concilium_core.dir/steward.cpp.o.d"
  "/root/repo/src/core/validation.cpp" "src/core/CMakeFiles/concilium_core.dir/validation.cpp.o" "gcc" "src/core/CMakeFiles/concilium_core.dir/validation.cpp.o.d"
  "/root/repo/src/core/verdicts.cpp" "src/core/CMakeFiles/concilium_core.dir/verdicts.cpp.o" "gcc" "src/core/CMakeFiles/concilium_core.dir/verdicts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/overlay/CMakeFiles/concilium_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/tomography/CMakeFiles/concilium_tomography.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/concilium_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/concilium_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/concilium_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
