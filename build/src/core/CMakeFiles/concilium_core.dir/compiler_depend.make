# Empty compiler generated dependencies file for concilium_core.
# This may be replaced when dependencies are built.
