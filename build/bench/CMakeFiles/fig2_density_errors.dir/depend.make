# Empty dependencies file for fig2_density_errors.
# This may be replaced when dependencies are built.
