file(REMOVE_RECURSE
  "CMakeFiles/fig2_density_errors.dir/fig2_density_errors.cpp.o"
  "CMakeFiles/fig2_density_errors.dir/fig2_density_errors.cpp.o.d"
  "fig2_density_errors"
  "fig2_density_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_density_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
