file(REMOVE_RECURSE
  "CMakeFiles/fig3_density_suppression.dir/fig3_density_suppression.cpp.o"
  "CMakeFiles/fig3_density_suppression.dir/fig3_density_suppression.cpp.o.d"
  "fig3_density_suppression"
  "fig3_density_suppression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_density_suppression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
