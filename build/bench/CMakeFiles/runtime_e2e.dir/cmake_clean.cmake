file(REMOVE_RECURSE
  "CMakeFiles/runtime_e2e.dir/runtime_e2e.cpp.o"
  "CMakeFiles/runtime_e2e.dir/runtime_e2e.cpp.o.d"
  "runtime_e2e"
  "runtime_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
