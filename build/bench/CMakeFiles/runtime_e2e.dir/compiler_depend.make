# Empty compiler generated dependencies file for runtime_e2e.
# This may be replaced when dependencies are built.
