# Empty compiler generated dependencies file for ext_chord_occupancy.
# This may be replaced when dependencies are built.
