file(REMOVE_RECURSE
  "CMakeFiles/ext_chord_occupancy.dir/ext_chord_occupancy.cpp.o"
  "CMakeFiles/ext_chord_occupancy.dir/ext_chord_occupancy.cpp.o.d"
  "ext_chord_occupancy"
  "ext_chord_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_chord_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
