file(REMOVE_RECURSE
  "CMakeFiles/fig4_link_coverage.dir/fig4_link_coverage.cpp.o"
  "CMakeFiles/fig4_link_coverage.dir/fig4_link_coverage.cpp.o.d"
  "fig4_link_coverage"
  "fig4_link_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_link_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
