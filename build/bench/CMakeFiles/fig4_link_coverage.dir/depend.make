# Empty dependencies file for fig4_link_coverage.
# This may be replaced when dependencies are built.
