# Empty dependencies file for ablation_blame.
# This may be replaced when dependencies are built.
