file(REMOVE_RECURSE
  "CMakeFiles/ablation_blame.dir/ablation_blame.cpp.o"
  "CMakeFiles/ablation_blame.dir/ablation_blame.cpp.o.d"
  "ablation_blame"
  "ablation_blame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_blame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
