# Empty compiler generated dependencies file for fig5_blame_pdf.
# This may be replaced when dependencies are built.
