file(REMOVE_RECURSE
  "CMakeFiles/fig5_blame_pdf.dir/fig5_blame_pdf.cpp.o"
  "CMakeFiles/fig5_blame_pdf.dir/fig5_blame_pdf.cpp.o.d"
  "fig5_blame_pdf"
  "fig5_blame_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_blame_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
