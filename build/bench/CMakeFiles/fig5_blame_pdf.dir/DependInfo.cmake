
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_blame_pdf.cpp" "bench/CMakeFiles/fig5_blame_pdf.dir/fig5_blame_pdf.cpp.o" "gcc" "bench/CMakeFiles/fig5_blame_pdf.dir/fig5_blame_pdf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/concilium_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/concilium_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tomography/CMakeFiles/concilium_tomography.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/concilium_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/concilium_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/concilium_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/concilium_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/concilium_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
