# Empty dependencies file for tab_bandwidth.
# This may be replaced when dependencies are built.
