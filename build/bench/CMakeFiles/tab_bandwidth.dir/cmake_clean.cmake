file(REMOVE_RECURSE
  "CMakeFiles/tab_bandwidth.dir/tab_bandwidth.cpp.o"
  "CMakeFiles/tab_bandwidth.dir/tab_bandwidth.cpp.o.d"
  "tab_bandwidth"
  "tab_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
