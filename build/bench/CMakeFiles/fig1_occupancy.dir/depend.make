# Empty dependencies file for fig1_occupancy.
# This may be replaced when dependencies are built.
