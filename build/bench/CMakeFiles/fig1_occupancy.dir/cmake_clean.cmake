file(REMOVE_RECURSE
  "CMakeFiles/fig1_occupancy.dir/fig1_occupancy.cpp.o"
  "CMakeFiles/fig1_occupancy.dir/fig1_occupancy.cpp.o.d"
  "fig1_occupancy"
  "fig1_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
