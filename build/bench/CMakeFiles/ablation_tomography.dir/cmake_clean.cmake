file(REMOVE_RECURSE
  "CMakeFiles/ablation_tomography.dir/ablation_tomography.cpp.o"
  "CMakeFiles/ablation_tomography.dir/ablation_tomography.cpp.o.d"
  "ablation_tomography"
  "ablation_tomography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tomography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
