# Empty dependencies file for ablation_tomography.
# This may be replaced when dependencies are built.
