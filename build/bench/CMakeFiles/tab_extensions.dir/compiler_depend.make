# Empty compiler generated dependencies file for tab_extensions.
# This may be replaced when dependencies are built.
