file(REMOVE_RECURSE
  "CMakeFiles/tab_extensions.dir/tab_extensions.cpp.o"
  "CMakeFiles/tab_extensions.dir/tab_extensions.cpp.o.d"
  "tab_extensions"
  "tab_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
