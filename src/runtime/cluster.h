// The Concilium protocol as an event-driven machine.
//
// sim::Scenario evaluates the paper's equations directly under the Section
// 4.3 assumptions (probes classify links with accuracy a).  Cluster instead
// *runs the protocol*: every node schedules lightweight striped probes of
// its tree (Section 3.2), escalates to heavyweight probing and MINC
// inference when leaves go silent or messages go unacknowledged, publishes
// signed snapshots to its routing peers, and archives the snapshots it
// receives.  Application messages travel hop by hop over the simulated IP
// network with forwarding commitments (Section 3.6) and end-to-end
// acknowledgments under recursive stewardship (Section 3.5); timeouts
// trigger blame evaluation, verdict ledgers, upstream revision pushes, and
// formal accusations stored in the DHT (Section 3.4).
//
// Misbehaviour is injected per node through runtime::NodeBehavior (see
// runtime/attack.h): message droppers, probe-report flippers ("misreporting
// the results of its own probes", Section 3.3), ack suppressors/fabricators
// at the probing layer, commitment refusers, nodes that withhold revisions
// "at their own peril", and the evidence-integrity campaign roles --
// equivocators, replayers, slanderers, accusation spammers, and verdict
// colluders -- each paired here with its self-verifying defense.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/accusation.h"
#include "core/blame.h"
#include "core/reputation.h"
#include "core/trace.h"
#include "core/validation.h"
#include "core/verdicts.h"
#include "dht/dht.h"
#include "net/chaos.h"
#include "net/event_sim.h"
#include "net/link_state.h"
#include "net/transport.h"
#include "core/equivocation.h"
#include "crypto/verify_cache.h"
#include "overlay/network.h"
#include "runtime/archive.h"
#include "runtime/attack.h"
#include "runtime/journal.h"
#include "runtime/retry.h"
#include "tomography/overlay_trees.h"
#include "tomography/probing.h"
#include "tomography/snapshot.h"
#include "util/rng.h"

namespace concilium::runtime {

struct RuntimeParams {
    /// Routing-state validation applied to the advertisements exchanged at
    /// start() (Section 3.1).
    core::ValidationParams validation;
    /// Lightweight probe inter-arrival: uniform in [0, this] (Section 3.2).
    util::SimTime probe_interval_max = 120 * util::kSecond;
    /// Retries sent to silent leaves before escalating.
    int lightweight_retries = 2;
    /// Heavyweight session shape (Duffield's full scheme).
    tomography::HeavyweightParams heavyweight{
        .probe_count = 100, .spacing = 50 * util::kMillisecond};
    /// Per-node floor between *periodic* heavyweight sessions.
    util::SimTime heavyweight_min_gap = 1 * util::kMinute;
    /// Floor for *reactive* sessions (unacknowledged message): fresh
    /// evidence matters more than probe budget when blame is being decided.
    util::SimTime reactive_heavyweight_min_gap = 10 * util::kSecond;
    core::BlameParams blame;
    core::VerdictParams verdicts;
    tomography::SnapshotParams snapshot;
    /// Steward acknowledgment timeout.
    util::SimTime ack_timeout = 5 * util::kSecond;
    /// Delay between a timeout and the steward's judgment, leaving time for
    /// reactive heavyweight snapshots and downstream revisions to arrive.
    util::SimTime judgment_grace = 8 * util::kSecond;
    /// Control-plane (snapshot / revision) dissemination latency.
    util::SimTime control_latency = 200 * util::kMillisecond;
    int dht_replication = 4;
    /// Per-writer quota on DHT values stored under one key (0 = unlimited);
    /// contains accusation spam without touching honest accusers.
    int dht_per_writer_quota = 8;
    /// Reputation votes needed before a peer is considered poor.
    int reputation_threshold = 3;
    /// No-confidence votes older than this stop counting toward
    /// reputation_threshold (0 = votes never expire).
    util::SimTime reputation_vote_expiry = 30 * util::kMinute;
    /// A snapshot delivered more than this after its probed_at is rejected
    /// by the receiving archive as a replay/stale advertisement.
    util::SimTime snapshot_max_transit = util::kMinute;
    /// Newest-wins cap on archived snapshots per origin.
    std::size_t archive_max_per_origin = 64;
    net::TransportParams transport;
    /// Steward retransmission of an unacknowledged message before judging:
    /// attempts beyond the first re-send over the same IP path with
    /// exponential backoff + jitter.  The default (1) preserves the
    /// paper's judge-on-first-timeout behavior; chaos runs raise it so
    /// transient IP loss does not masquerade as a malicious drop.
    RetryPolicy forward_retry{};
    /// Snapshot-exchange retry, used when a chaos plan makes the control
    /// plane lossy (see set_chaos).  A peer whose delivery exhausts the
    /// budget simply lacks that snapshot -- the judge's evidence degrades
    /// gracefully instead of wedging diagnosis.
    RetryPolicy snapshot_retry{.max_attempts = 3,
                               .base_delay = 300 * util::kMillisecond};
    /// Crash recovery (RECOVERY.md): an in-flight stewardship whose
    /// forward is older than this at restart is abandoned with a signed
    /// handoff instead of resumed (the ack, if any, is long lost and the
    /// upstream judgment has already run its course).
    util::SimTime recovery_resume_horizon = 30 * util::kSecond;
};

class Cluster {
  public:
    Cluster(net::EventSim& sim, const net::FailureTimeline& timeline,
            const overlay::OverlayNetwork& net,
            const tomography::OverlayTrees& trees, RuntimeParams params,
            std::vector<NodeBehavior> behaviors, util::Rng rng);

    /// Schedules every node's first probe round.  Call once, then drive the
    /// EventSim.
    void start();

    /// Attaches a chaos plan (see net/chaos.h).  Link flaps, correlated
    /// outages, and loss spikes fold into every packet via the transport;
    /// the churn schedule drives set_online(); snapshot dissemination
    /// becomes lossy (sampled over the member-to-peer IP path, retried per
    /// snapshot_retry); probe acknowledgments drop at ack_drop_rate; and
    /// forwarded packets may be reordered or duplicated.  Call before
    /// start().  The plan must outlive the cluster; nullptr detaches.
    void set_chaos(const net::FaultPlan* plan) noexcept {
        chaos_ = plan;
        transport_.set_chaos(plan);
    }
    [[nodiscard]] const net::FaultPlan* chaos() const noexcept {
        return chaos_;
    }

    /// Takes a node off the network / brings it back (our extension: the
    /// paper "did not model fluctuating machine availability").  An offline
    /// node answers no probes, forwards no messages, relays no acks, and
    /// publishes no snapshots -- indistinguishable, to the protocol, from a
    /// total message dropper, and blamed accordingly.
    void set_online(overlay::MemberIndex m, bool online);
    [[nodiscard]] bool is_online(overlay::MemberIndex m) const {
        return online_.at(m);
    }

    struct MessageOutcome {
        bool delivered = false;
        bool network_blamed = false;
        /// Degraded mode (RECOVERY.md): the diagnosis closed with no
        /// verdict at all because the evidence covering the judged hop
        /// was hollowed out by a crash or partition.  Nobody is blamed.
        bool insufficient_evidence = false;
        /// Final accused node (after revisions), when a node is blamed.
        std::optional<util::NodeId> blamed;
        /// Route positions, for ground-truth scoring by callers.
        std::vector<overlay::MemberIndex> route;
        /// Simulation-only ground truth (never visible to protocol logic):
        /// which hop actually dropped the message, or whether the IP
        /// network ate the message / its acknowledgment (and on which
        /// route segment).
        std::optional<std::size_t> true_drop_hop;
        bool true_network_drop = false;
        std::optional<std::size_t> true_network_segment;
    };
    using CompletionFn = std::function<void(const MessageOutcome&)>;

    /// Sends an application message from `from` toward the root of
    /// `dest_key`.  The callback fires when the sender either receives the
    /// acknowledgment or completes its diagnosis.
    std::uint64_t send(overlay::MemberIndex from, const util::NodeId& dest_key,
                       CompletionFn on_complete = {});

    struct Stats {
        std::size_t messages = 0;
        std::size_t delivered = 0;
        std::size_t dropped_by_forwarder = 0;  ///< ground truth
        std::size_t dropped_by_network = 0;    ///< ground truth (incl. acks)
        std::size_t guilty_verdicts = 0;
        std::size_t innocent_verdicts = 0;
        std::size_t accusations_filed = 0;
        std::size_t revisions_pushed = 0;
        std::size_t revisions_applied = 0;
        std::size_t snapshots_published = 0;
        std::size_t snapshots_rejected = 0;  ///< bad signature on receipt
        std::size_t lightweight_rounds = 0;
        std::size_t heavyweight_sessions = 0;
        std::size_t commitments_issued = 0;
        std::size_t commitments_refused = 0;
        std::size_t reputation_votes = 0;
        std::size_t advertisements_accepted = 0;
        std::size_t advertisements_rejected = 0;
        std::size_t forward_retransmissions = 0;
        std::size_t snapshot_retries = 0;
        std::size_t snapshot_deliveries_failed = 0;  ///< retry budget spent
        std::size_t duplicates_suppressed = 0;
        std::size_t churn_leaves = 0;
        std::size_t churn_rejoins = 0;
        // --- crash recovery + partitions (RECOVERY.md) --------------------
        std::size_t crashes = 0;
        std::size_t restarts = 0;
        std::size_t journal_replays = 0;
        std::size_t recovery_announcements = 0;
        std::size_t recovery_repairs_accepted = 0;
        std::size_t recovery_repairs_rejected = 0;
        std::size_t stewardships_resumed = 0;
        std::size_t stewardships_abandoned = 0;
        std::size_t insufficient_verdicts = 0;  ///< degraded-mode abstentions
        std::size_t verdicts_retracted = 0;     ///< after announcements
        std::size_t partition_activations = 0;
        std::size_t partition_heals = 0;
        std::size_t partition_blocked_packets = 0;
        std::size_t resync_rounds = 0;  ///< heal-time anti-entropy probes
        // --- attack-campaign activity (what the adversary did) -----------
        std::size_t equivocations_published = 0;  ///< per-peer variant rounds
        std::size_t replays_published = 0;        ///< stale re-advertisements
        std::size_t slanders_filed = 0;           ///< forged accusations
        std::size_t spam_puts = 0;                ///< junk DHT insertions
        std::size_t collusions_pushed = 0;        ///< fabricated revisions
        // --- defense outcomes (what the protocol caught) -----------------
        std::size_t snapshots_rejected_stale = 0;  ///< archive transit check
        std::size_t snapshots_rejected_epoch = 0;  ///< archive replay floor
        std::size_t equivocation_proofs_filed = 0;
        std::size_t revisions_rejected = 0;  ///< failed re-verification
        std::size_t dht_puts_rejected = 0;   ///< writer quota exhausted
    };
    [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

    [[nodiscard]] const SnapshotArchive& archive(overlay::MemberIndex m) const {
        return nodes_.at(m).archive;
    }
    [[nodiscard]] const dht::Dht& repository() const noexcept { return dht_; }
    [[nodiscard]] const core::ReputationBook& reputation() const noexcept {
        return reputation_;
    }

    /// Peers that rejected m's routing advertisement during the start()
    /// exchange (empty set == everyone accepted it).
    [[nodiscard]] const std::vector<overlay::MemberIndex>&
    advertisement_rejecters(overlay::MemberIndex m) const {
        return ad_rejecters_.at(m);
    }

    /// Fetches and deserializes the accusations stored against a member,
    /// as an arbitrary third party would (Section 3.4's final step).
    /// Malformed values (spam) are skipped, not fatal.
    [[nodiscard]] std::vector<core::FaultAccusation> accusations_against(
        overlay::MemberIndex m) const;

    /// Fetches the self-verifying equivocation proofs filed against a
    /// member's snapshot stream (two valid signatures over conflicting
    /// payloads for the same origin+epoch).  Malformed values are skipped.
    [[nodiscard]] std::vector<core::EquivocationProof>
    equivocation_proofs_against(overlay::MemberIndex m) const;

    /// Independently verifies an accusation against this cluster's key
    /// registry, exactly as a prospective peer would before sanctioning.
    [[nodiscard]] core::AccusationCheck verify(
        const core::FaultAccusation& accusation) const;

    /// Independently verifies an equivocation proof against the accused
    /// member's registered key.
    [[nodiscard]] core::EquivocationCheck verify(
        const core::EquivocationProof& proof,
        overlay::MemberIndex accused) const;

    /// The node's durable journal (its "disk"): written on every epoch
    /// advance, verdict, stewardship transition, and vote; replayed on
    /// restart after a crash.
    [[nodiscard]] const NodeJournal& journal(overlay::MemberIndex m) const {
        return journals_.at(m);
    }

    /// True while m is crashed (offline with amnesia, as opposed to a
    /// graceful churn leave which keeps its volatile state).
    [[nodiscard]] bool is_crashed(overlay::MemberIndex m) const {
        return crashed_.at(m);
    }

    /// Attaches an opt-in diagnosis journal: every message that completes
    /// via diagnosis (i.e. was not acknowledged) appends one record with
    /// its forwarder chain, every judgment's Equation 2-3 blame inputs,
    /// and the final verdict.  Pass nullptr to detach.  The trace must
    /// outlive the cluster (or be detached first).
    void set_trace(core::DiagnosisTrace* trace) noexcept { trace_ = trace; }

  private:
    struct StewardRecord {
        bool forwarded = false;
        bool acked = false;
        /// Message copy seen at this hop (dedupes retransmissions and
        /// chaos-duplicated packets).
        bool received = false;
        std::optional<core::ForwardingCommitment> commitment;  ///< from next
        std::optional<core::BlameEvidence> judgment;  ///< own verdict vs next
        /// The Equation 2-3 terms behind `judgment` (kept for the trace).
        std::optional<core::BlameBreakdown> breakdown;
        util::SimTime judged_at = 0;
        bool judgment_guilty = false;
        /// Revision evidence pushed up from downstream stewards, in chain
        /// order (next hop's judgment first).
        std::vector<core::BlameEvidence> pushed;
        bool judged = false;
        /// Degraded mode: the judgment abstained (insufficient evidence)
        /// instead of convicting.
        bool judgment_insufficient = false;
        /// Signed abandonment received from the next hop after it
        /// restarted: proof the "drop" was a crash.
        std::optional<StewardHandoff> handoff;
    };

    struct MessageContext {
        std::uint64_t id = 0;
        std::vector<overlay::MemberIndex> route;
        util::SimTime sent_at = 0;
        std::vector<StewardRecord> stewards;
        CompletionFn on_complete;
        bool completed = false;
        // Ground truth for stats.
        std::optional<std::size_t> dropped_by_hop;
        bool dropped_by_network = false;
        std::optional<std::size_t> network_drop_segment;
    };

    /// A snapshot sealed for dissemination: the signed payload is serialized
    /// once at publication, its digest interned once, and every per-peer
    /// delivery (and retry) shares this immutable slab by reference instead
    /// of copying the snapshot into each deliver closure.
    struct PublishedSnapshot {
        tomography::TomographicSnapshot snapshot;
        /// Publisher's member index (snapshots are always self-originated);
        /// receivers resolve the origin key through it without a NodeId map
        /// lookup per delivery.
        overlay::MemberIndex origin_m = 0;
        std::vector<std::uint8_t> payload;  ///< signed_payload(), serialized once
        util::Digest digest{};
        util::DigestInterner::Id digest_id = util::DigestInterner::kInvalidId;
    };
    [[nodiscard]] std::shared_ptr<const PublishedSnapshot> seal(
        overlay::MemberIndex m, tomography::TomographicSnapshot snapshot);

    struct NodeState {
        SnapshotArchive archive;
        core::VerdictLedger ledger;
        util::SimTime last_heavyweight = -(1LL << 60);
        /// Next snapshot publication counter (epoch 0 = unversioned).
        std::uint64_t next_epoch = 1;
        /// Replayer state: the first favorable snapshot (sealed),
        /// re-advertised verbatim every later round.
        std::shared_ptr<const PublishedSnapshot> replay_stash;
        /// Commitments this node collected as a steward, by issuing member
        /// -- a colluder's raw material for fabricated revisions.  Keyed by
        /// dense MemberIndex; NodeIds resolve at the call boundary.
        std::unordered_map<overlay::MemberIndex, core::ForwardingCommitment>
            collected;
        /// Round-robin victim cursors for slander / spam rounds.
        std::size_t slander_cursor = 0;
        std::size_t spam_cursor = 0;
        /// Verified recovery announcements received, by announcing member:
        /// the basis for verdict retraction and accusation abstention.
        std::unordered_map<overlay::MemberIndex,
                           std::vector<RecoveryAnnouncement>>
            recovery_seen;
    };

    // --- POD event dispatch ------------------------------------------------
    /// Hot simulation events ride EventSim's POD queue: an op code plus two
    /// integer operands, fanned out by one registered handler.  Rare
    /// setup/control events (churn, crash schedules, snapshot deliveries
    /// with their sealed payload slabs) stay on the callback API.
    enum class Op : std::uint32_t {
        kProbeRound,     ///< b = member
        kSlanderRound,   ///< b = member
        kSpamRound,      ///< b = member
        kPeerRefresh,    ///< b = member (heavyweight refresh, periodic gap)
        kDeliverToHop,   ///< b = message, c = hop
        kDeliverAck,     ///< b = message, c = hop
        kAckTimeout,     ///< b = message, c = hop
        kJudge,          ///< b = message, c = hop
        kForwardRetry,   ///< b = message, c = hop << 32 | attempt
        kMaybeComplete,  ///< b = message
    };
    static void dispatch_event(void* ctx, std::uint32_t a, std::uint64_t b,
                               std::uint64_t c);
    void post(util::SimTime delay, Op op, std::uint64_t b,
              std::uint64_t c = 0) {
        sim_->post_after(delay, handler_, static_cast<std::uint32_t>(op), b,
                         c);
    }
    /// Retry-timer body: re-send unless the ack landed in the meantime.
    void forward_retry(std::uint64_t msg_id, std::size_t hop, int attempt);

    // --- routing-state exchange -------------------------------------------
    void exchange_routing_state();

    // --- probing ---------------------------------------------------------
    void schedule_probe_round(overlay::MemberIndex m);
    void run_probe_round(overlay::MemberIndex m);
    /// One probe round without rescheduling the next: the heal-time resync
    /// and post-restart refresh path.
    void probe_round_once(overlay::MemberIndex m);
    void run_heavyweight(overlay::MemberIndex m);
    void publish_snapshot(overlay::MemberIndex m,
                          tomography::TomographicSnapshot snapshot);
    void send_snapshot(overlay::MemberIndex m, overlay::MemberIndex peer,
                       std::shared_ptr<const PublishedSnapshot> snapshot,
                       int attempt);

    // --- attack campaign + evidence-integrity defenses ---------------------
    /// Equivocator variant for one peer: even peer ranks get the snapshot
    /// as-is, odd ranks a fully link-flipped re-signed twin (same epoch).
    [[nodiscard]] tomography::TomographicSnapshot equivocation_variant(
        overlay::MemberIndex m, const tomography::TomographicSnapshot& base,
        std::size_t peer_rank) const;
    /// Cross-peer digest exchange: after archiving `published` at `holder`,
    /// compare interned digest ids against what the origin's other routing
    /// peers hold for the same epoch; only an id mismatch builds and
    /// verifies a full self-verifying proof for the DHT.
    void detect_equivocation(overlay::MemberIndex holder,
                             const PublishedSnapshot& published);
    void schedule_slander_round(overlay::MemberIndex m);
    void run_slander_round(overlay::MemberIndex m);
    void schedule_spam_round(overlay::MemberIndex m);
    void run_spam_round(overlay::MemberIndex m);
    /// Colluder reaction to its own drop: push a fabricated guilty revision
    /// against the hop it framed, upstream toward the sender.
    void push_fabricated_revision(std::uint64_t msg_id, std::size_t hop);

    // --- chaos -------------------------------------------------------------
    void schedule_churn();
    /// Extra delivery delay when a per-packet chaos effect fires (0 when no
    /// plan is attached or the draw misses).
    util::SimTime chaos_extra_delay(double rate, const char* counter_name);

    // --- crash recovery + partitions (RECOVERY.md) --------------------------
    void schedule_recovery_faults();
    /// Crash-stop: offline plus amnesia -- every volatile structure is
    /// reset; only the journal survives.
    void crash_node(overlay::MemberIndex m);
    /// Journal replay, recovery handshake, stewardship resume/abandon.
    void restart_node(overlay::MemberIndex m);
    void recovery_handshake(overlay::MemberIndex m,
                            const NodeJournal::RecoveredState& recovered);
    void accept_recovery_announcement(overlay::MemberIndex peer,
                                      const RecoveryAnnouncement& announcement);
    void deliver_handoff(std::uint64_t msg_id, std::size_t to_hop,
                         const StewardHandoff& handoff);
    void heal_partition();
    /// True when the active partition separates members a and b right now.
    [[nodiscard]] bool partition_blocks(overlay::MemberIndex a,
                                        overlay::MemberIndex b) const;
    /// True when this run carries crash/partition faults: guilty verdicts
    /// then require post-incident evidence coverage.
    [[nodiscard]] bool degraded_mode() const noexcept {
        return chaos_ != nullptr && chaos_->has_recovery_faults();
    }
    /// Degraded-mode conviction bar: every link of the judged segment
    /// carries an admitted probe observation from on-or-after the message
    /// time by a reporter other than the suspect.
    [[nodiscard]] bool post_incident_coverage(
        const core::BlameEvidence& evidence, util::SimTime message_time) const;
    /// True when any verified announcement from `suspect` (as seen by
    /// `observer`) covers time t.
    [[nodiscard]] bool announced_down(overlay::MemberIndex observer,
                                      overlay::MemberIndex suspect,
                                      util::SimTime t) const;
    /// True when `accused` is a route steward whose own judgment abstained
    /// as insufficient: a blame chain cannot end on an abstainer.
    [[nodiscard]] bool accused_abstained(const MessageContext& ctx,
                                         const util::NodeId& accused) const;

    // --- messaging ---------------------------------------------------------
    void deliver_to_hop(std::uint64_t msg_id, std::size_t hop);
    void forward_from_hop(std::uint64_t msg_id, std::size_t hop);
    /// One physical transmission of the message from `hop` toward hop + 1;
    /// schedules bounded backoff retransmissions while the ack is missing.
    void transmit_to_next(std::uint64_t msg_id, std::size_t hop, int attempt);
    void start_ack_return(std::uint64_t msg_id);
    void deliver_ack_to_hop(std::uint64_t msg_id, std::size_t hop);
    void on_ack_timeout(std::uint64_t msg_id, std::size_t hop);
    void judge_next_hop(std::uint64_t msg_id, std::size_t hop);
    void push_revision_upstream(std::uint64_t msg_id, std::size_t hop);
    void relay_revision(std::uint64_t msg_id,
                        const core::BlameEvidence& evidence,
                        std::size_t to_hop);
    void maybe_complete(std::uint64_t msg_id);

    core::BlameEvidence build_evidence(const MessageContext& ctx,
                                       std::size_t judge_hop,
                                       core::BlameBreakdown* breakdown_out =
                                           nullptr) const;
    void record_trace(const MessageContext& ctx,
                      const MessageOutcome& outcome);
    void file_accusation(const MessageContext& ctx);

    /// The third-party verification context every node shares: this
    /// cluster's key registry, blame/verdict parameters, and link map.
    [[nodiscard]] core::AccusationVerifier make_verifier() const;

    /// IP link path for route segment hop -> hop+1, as a span into the
    /// trees' arena (empty when no IP path exists).  Zero-allocation: this
    /// runs once per packet transmission and once per judgment.
    [[nodiscard]] std::span<const net::LinkId> hop_path(
        const MessageContext& ctx, std::size_t hop) const;
    [[nodiscard]] const NodeBehavior& behavior(overlay::MemberIndex m) const;
    [[nodiscard]] std::vector<tomography::LeafBehavior> leaf_behaviors(
        overlay::MemberIndex m) const;
    [[nodiscard]] std::optional<crypto::PublicKey> key_of(
        const util::NodeId& id) const;

    net::EventSim* sim_;
    const net::FailureTimeline* timeline_;
    const overlay::OverlayNetwork* net_;
    const tomography::OverlayTrees* trees_;
    RuntimeParams params_;
    std::vector<NodeBehavior> behaviors_;
    util::Rng rng_;
    net::Transport transport_;
    crypto::KeyRegistry registry_;
    /// Signature-verification memo shared by every node in the cluster (the
    /// cluster is single-threaded; identical (key, digest, sig) checks repeat
    /// once per routing peer on every snapshot dissemination).
    crypto::VerifyCache verify_cache_{registry_};
    /// Snapshot payload digests interned to dense ids, shared across every
    /// node's archive so cross-archive digest comparison is an integer test.
    util::DigestInterner interner_;
    /// NodeId -> member index, resolved once where ids enter from the wire.
    std::unordered_map<util::NodeId, overlay::MemberIndex, util::NodeIdHash>
        member_of_;  // hot-path-lint: boundary
    std::vector<NodeState> nodes_;
    dht::Dht dht_;
    core::ReputationBook reputation_;
    std::unordered_map<std::uint64_t, MessageContext> messages_;
    std::uint64_t next_message_id_ = 1;
    std::vector<bool> online_;
    std::vector<NodeJournal> journals_;
    std::vector<bool> crashed_;
    std::vector<util::SimTime> crashed_at_;
    std::vector<std::vector<overlay::MemberIndex>> ad_rejecters_;
    /// (origin member, epoch) pairs already covered by a filed equivocation
    /// proof, so repeated digest conflicts do not re-file.
    std::set<std::pair<overlay::MemberIndex, std::uint64_t>> proofs_filed_;
    Stats stats_;
    core::DiagnosisTrace* trace_ = nullptr;
    const net::FaultPlan* chaos_ = nullptr;
    net::EventSim::HandlerId handler_ = 0;
};

}  // namespace concilium::runtime
