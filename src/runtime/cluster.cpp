#include "runtime/cluster.h"

#include "tomography/verification.h"
#include "util/metrics.h"
#include "util/spans.h"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace concilium::runtime {

namespace {

const NodeBehavior kHonest{};

// Mirrors a Stats increment into the process metrics registry.  Cluster
// events run at human-auditable rates, so the per-call name lookup is fine.
void bump(const char* name, std::int64_t delta = 1) {
    util::metrics::Registry::global().counter(name).add(delta);
}

// A per-sim-minute windowed series (geometry matches the kWellKnownSeries
// catalogue in util/metrics.cpp).
util::metrics::SeriesMetric& minute_series(const char* name) {
    return util::metrics::Registry::global().series(
        name, util::kMinute, 240, util::metrics::SeriesMetric::Mode::kSum);
}

}  // namespace

Cluster::Cluster(net::EventSim& sim, const net::FailureTimeline& timeline,
                 const overlay::OverlayNetwork& net,
                 const tomography::OverlayTrees& trees, RuntimeParams params,
                 std::vector<NodeBehavior> behaviors, util::Rng rng)
    : sim_(&sim), timeline_(&timeline), net_(&net), trees_(&trees),
      params_(params), behaviors_(std::move(behaviors)), rng_(rng),
      transport_(timeline, sim, rng_.fork(), params.transport),
      dht_(net, params.dht_replication, params.dht_per_writer_quota),
      reputation_(params.reputation_vote_expiry) {
    if (!behaviors_.empty() && behaviors_.size() != net.size()) {
        throw std::invalid_argument(
            "Cluster: behaviors must match overlay size");
    }
    handler_ = sim_->register_handler(this, &Cluster::dispatch_event);
    online_.assign(net.size(), true);
    journals_.resize(net.size());
    crashed_.assign(net.size(), false);
    crashed_at_.assign(net.size(), 0);
    member_of_.reserve(net.size());
    nodes_.reserve(net.size());
    for (overlay::MemberIndex m = 0; m < net.size(); ++m) {
        registry_.register_key(net.member(m).keys);
        member_of_.emplace(net.member(m).id(), m);
        nodes_.push_back(NodeState{
            SnapshotArchive(params_.blame.delta + 5 * util::kMinute,
                            params_.snapshot_max_transit,
                            params_.archive_max_per_origin),
            core::VerdictLedger(params_.verdicts),
            -(1LL << 60)});
        nodes_.back().archive.bind_interner(&interner_);
    }
}

void Cluster::set_online(overlay::MemberIndex m, bool online) {
    online_.at(m) = online;
}

void Cluster::dispatch_event(void* ctx, std::uint32_t a, std::uint64_t b,
                             std::uint64_t c) {
    auto* self = static_cast<Cluster*>(ctx);
    switch (static_cast<Op>(a)) {
        case Op::kProbeRound:
            self->run_probe_round(static_cast<overlay::MemberIndex>(b));
            break;
        case Op::kSlanderRound:
            self->run_slander_round(static_cast<overlay::MemberIndex>(b));
            break;
        case Op::kSpamRound:
            self->run_spam_round(static_cast<overlay::MemberIndex>(b));
            break;
        case Op::kPeerRefresh: {
            const auto peer = static_cast<overlay::MemberIndex>(b);
            if (self->sim_->now() - self->nodes_[peer].last_heavyweight >=
                self->params_.heavyweight_min_gap) {
                self->run_heavyweight(peer);
            }
            break;
        }
        case Op::kDeliverToHop:
            self->deliver_to_hop(b, static_cast<std::size_t>(c));
            break;
        case Op::kDeliverAck:
            self->deliver_ack_to_hop(b, static_cast<std::size_t>(c));
            break;
        case Op::kAckTimeout:
            self->on_ack_timeout(b, static_cast<std::size_t>(c));
            break;
        case Op::kJudge:
            self->judge_next_hop(b, static_cast<std::size_t>(c));
            break;
        case Op::kForwardRetry:
            self->forward_retry(b, static_cast<std::size_t>(c >> 32),
                                static_cast<int>(c & 0xffffffffu));
            break;
        case Op::kMaybeComplete:
            self->maybe_complete(b);
            break;
    }
}

void Cluster::schedule_churn() {
    for (const net::ChurnEvent& ev : chaos_->churn) {
        if (ev.node >= net_->size()) continue;
        const auto node = static_cast<overlay::MemberIndex>(ev.node);
        sim_->schedule_at(ev.leave, [this, node] {
            ++stats_.churn_leaves;
            bump("runtime.churn_leaves");
            set_online(node, false);
        });
        sim_->schedule_at(ev.rejoin, [this, node] {
            ++stats_.churn_rejoins;
            bump("runtime.churn_rejoins");
            set_online(node, true);
        });
    }
}

util::SimTime Cluster::chaos_extra_delay(double rate,
                                         const char* counter_name) {
    if (chaos_ == nullptr || rate <= 0.0) return 0;
    if (!rng_.bernoulli(rate)) return 0;
    bump(counter_name);
    return std::max<util::SimTime>(
        1, static_cast<util::SimTime>(rng_.uniform(
               0.0, static_cast<double>(chaos_->max_extra_delay))));
}

// ------------------------- crash recovery + partitions (RECOVERY.md)

void Cluster::schedule_recovery_faults() {
    for (const net::CrashEvent& ev : chaos_->crashes) {
        if (ev.node >= net_->size()) continue;
        const auto node = static_cast<overlay::MemberIndex>(ev.node);
        sim_->schedule_at(ev.crash, [this, node] { crash_node(node); });
        sim_->schedule_at(ev.restart, [this, node] { restart_node(node); });
    }
    for (const net::PartitionEvent& ev : chaos_->partitions) {
        sim_->schedule_at(ev.start, [this] {
            ++stats_.partition_activations;
            bump("partition.activations");
        });
        sim_->schedule_at(ev.heal, [this] { heal_partition(); });
    }
}

void Cluster::crash_node(overlay::MemberIndex m) {
    if (crashed_[m]) return;
    ++stats_.crashes;
    bump("recovery.crashes");
    crashed_[m] = true;
    crashed_at_[m] = sim_->now();
    online_[m] = false;
    // Amnesia: every volatile structure resets.  Only journals_[m] -- the
    // node's "disk" -- survives a crash-stop.
    NodeState& node = nodes_[m];
    node.archive = SnapshotArchive(params_.blame.delta + 5 * util::kMinute,
                                   params_.snapshot_max_transit,
                                   params_.archive_max_per_origin);
    node.archive.bind_interner(&interner_);
    node.ledger = core::VerdictLedger(params_.verdicts);
    node.last_heavyweight = -(1LL << 60);
    node.next_epoch = 1;
    node.replay_stash.reset();
    node.collected.clear();
    node.recovery_seen.clear();
}

void Cluster::restart_node(overlay::MemberIndex m) {
    if (!crashed_[m]) return;
    crashed_[m] = false;
    online_[m] = true;
    ++stats_.restarts;
    bump("recovery.restarts");
    ++stats_.journal_replays;
    bump("recovery.journal_replays");
    const NodeJournal::RecoveredState recovered =
        journals_[m].replay(params_.verdicts.window);
    NodeState& node = nodes_[m];
    // Without the journaled epoch floor the restarted node would re-issue
    // epochs its peers already archived -- and read as an equivocator.
    node.next_epoch = std::max<std::uint64_t>(1, recovered.next_epoch);
    node.ledger.restore_windows(recovered.windows);
    // Collected commitments come back too (recovered.votes stay advisory:
    // the reputation book models durable DHT-backed state, so re-casting
    // would double-count).
    for (const auto& [issuer, commitment] : recovered.collected) {
        // The journal keys by durable NodeId; resolve to the dense member
        // index once, here at the replay boundary.
        const auto issuer_it = member_of_.find(issuer);
        if (issuer_it == member_of_.end()) continue;
        node.collected.insert_or_assign(issuer_it->second, commitment);
    }
    recovery_handshake(m, recovered);
    journals_[m].record_restart(sim_->now());
}

void Cluster::recovery_handshake(
    overlay::MemberIndex m, const NodeJournal::RecoveredState& recovered) {
    const util::SimTime now = sim_->now();
    // Outage interval (crash → handshake) on the sim clock, keyed by the
    // recovering member.
    util::spans::sim_span(util::spans::SpanType::kRecoveryHandshake,
                          crashed_at_[m], now, /*causal=*/m,
                          static_cast<std::int64_t>(recovered.incarnations));
    // (a) Announce the outage.  The signed interval is what turns peers'
    // degraded-mode guilty presumptions into retractions.
    const RecoveryAnnouncement announcement = make_recovery_announcement(
        net_->member(m).id(), recovered.incarnations + 1, crashed_at_[m], now,
        net_->member(m).keys);
    ++stats_.recovery_announcements;
    bump("recovery.announcements_sent");

    // (b) Leaf-set / jump-table repair: re-advertise routing state; every
    // peer re-runs the full validation pipeline (signature, freshness,
    // density), so a forged "repair" advertisement fails exactly like any
    // other forged advertisement.
    const auto key_fn = [this](const util::NodeId& id) { return key_of(id); };
    auto ad = overlay::make_advertisement(
        *net_, m, now, [this](overlay::MemberIndex) {
            return std::max<util::SimTime>(
                0, sim_->now() - params_.probe_interval_max / 2);
        });
    const double fraction = behavior(m).advertised_table_fraction;
    if (fraction < 1.0) {
        ad.entries.resize(static_cast<std::size_t>(
            fraction * static_cast<double>(ad.entries.size())));
        ad.signature = net_->member(m).keys.sign(ad.signed_payload());
    }
    for (const overlay::MemberIndex peer : net_->routing_peers(m)) {
        if (!online_[peer]) continue;
        if (partition_blocks(m, peer)) {
            bump("partition.control_blocked");
            continue;
        }
        sim_->schedule_after(
            params_.control_latency, [this, peer, announcement] {
                accept_recovery_announcement(peer, announcement);
            });
        const auto verdict = core::validate_advertisement(
            ad, net_->secure_table(peer).density(), now, params_.validation,
            key_fn, registry_);
        if (verdict == core::AdvertisementCheck::kOk) {
            ++stats_.recovery_repairs_accepted;
            bump("recovery.repairs_accepted");
        } else {
            ++stats_.recovery_repairs_rejected;
            bump("recovery.repairs_rejected");
        }
    }

    // (c) Refresh the node's own view immediately: its next snapshots (and
    // the evidence it can contribute to judges) recover without waiting for
    // the periodic round.
    probe_round_once(m);

    // (d) Resume or abandon each stewardship in flight at the crash.
    for (const JournaledStewardship& s : recovered.open_stewardships) {
        const auto it = messages_.find(s.message_id);
        if (it == messages_.end()) continue;
        MessageContext& ctx = it->second;
        const auto hop = static_cast<std::size_t>(s.hop);
        if (hop + 1 >= ctx.route.size() || ctx.route[hop] != m) continue;
        StewardRecord& steward = ctx.stewards[hop];
        if (ctx.completed || steward.acked || steward.judged) continue;
        if (now - s.forwarded_at <= params_.recovery_resume_horizon) {
            ++stats_.stewardships_resumed;
            bump("recovery.stewardships_resumed");
            post(params_.ack_timeout, Op::kAckTimeout, s.message_id, hop);
            transmit_to_next(s.message_id, hop, 1);
        } else {
            // Too stale to resume: any ack is long lost and the upstream
            // judgment has run its course.  Abandon with a signed handoff
            // so the upstream's pending judgment of *us* resolves as
            // insufficient evidence, not guilt.
            ++stats_.stewardships_abandoned;
            bump("recovery.stewardships_abandoned");
            steward.judged = true;  // this steward will never judge
            journals_[m].record_steward_close(s.message_id, s.hop);
            if (hop > 0) {
                const overlay::MemberIndex up = ctx.route[hop - 1];
                if (online_[up] && !partition_blocks(m, up)) {
                    const StewardHandoff handoff = make_steward_handoff(
                        net_->member(m).id(), s.message_id, s.hop,
                        crashed_at_[m], now, net_->member(m).keys);
                    sim_->schedule_after(
                        params_.control_latency,
                        [this, id = s.message_id, hop, handoff] {
                            deliver_handoff(id, hop - 1, handoff);
                        });
                } else if (online_[up]) {
                    bump("partition.control_blocked");
                }
            } else {
                // The abandoning steward is the sender itself: close out
                // the diagnosis so the completion callback still fires.
                post(params_.control_latency, Op::kMaybeComplete,
                     s.message_id);
            }
        }
    }
}

void Cluster::accept_recovery_announcement(
    overlay::MemberIndex peer, const RecoveryAnnouncement& announcement) {
    if (!online_[peer]) return;
    const auto announcer = member_of_.find(announcement.node);
    if (announcer == member_of_.end()) return;
    const crypto::PublicKey key =
        net_->member(announcer->second).keys.public_key();
    if (!verify_recovery_announcement(announcement, key, registry_)) {
        return;  // a forged outage claim buys nothing
    }
    bump("recovery.announcements_delivered");
    nodes_[peer].recovery_seen[announcer->second].push_back(announcement);
    const int retracted = nodes_[peer].ledger.retract_guilty(
        announcement.node, announcement.crashed_at,
        announcement.restarted_at);
    if (retracted > 0) {
        stats_.verdicts_retracted += static_cast<std::size_t>(retracted);
        journals_[peer].record_retraction(announcement.node,
                                          announcement.crashed_at,
                                          announcement.restarted_at);
    }
}

void Cluster::deliver_handoff(std::uint64_t msg_id, std::size_t to_hop,
                              const StewardHandoff& handoff) {
    const auto it = messages_.find(msg_id);
    if (it == messages_.end()) return;
    MessageContext& ctx = it->second;
    if (to_hop + 1 >= ctx.route.size()) return;
    if (!online_[ctx.route[to_hop]]) return;
    // The handoff must be signed by the very node this steward forwarded
    // to; a third party cannot abandon someone else's stewardship.
    const util::NodeId downstream = net_->member(ctx.route[to_hop + 1]).id();
    const auto key = key_of(handoff.steward);
    if (!(handoff.steward == downstream) || !key.has_value() ||
        !verify_steward_handoff(handoff, *key, registry_)) {
        return;
    }
    ctx.stewards[to_hop].handoff = handoff;
    bump("recovery.handoffs_delivered");
}

void Cluster::heal_partition() {
    ++stats_.partition_heals;
    bump("partition.heals");
    // Anti-entropy: both sides probe once, staggered, so fresh snapshots
    // cross the healed cut and the sides' archives re-converge.
    for (overlay::MemberIndex m = 0; m < net_->size(); ++m) {
        if (!online_[m]) continue;
        const auto stagger = static_cast<util::SimTime>(m % 64) *
                             (25 * util::kMillisecond);
        sim_->schedule_after(stagger, [this, m] {
            if (!online_[m]) return;
            ++stats_.resync_rounds;
            bump("partition.resync_rounds");
            probe_round_once(m);
        });
    }
}

bool Cluster::partition_blocks(overlay::MemberIndex a,
                               overlay::MemberIndex b) const {
    return chaos_ != nullptr && !chaos_->partitions.empty() &&
           chaos_->partition_blocks(a, b, sim_->now());
}

bool Cluster::post_incident_coverage(const core::BlameEvidence& evidence,
                                     util::SimTime message_time) const {
    if (evidence.path_links.empty()) return false;
    const auto probes = core::probes_from_snapshots(evidence.snapshots);
    for (const net::LinkId link : evidence.path_links) {
        bool covered = false;
        for (const core::ProbeResult& p : probes) {
            if (p.link != link) continue;
            if (p.reporter == evidence.suspect) continue;
            if (p.at < message_time ||
                p.at > message_time + params_.blame.delta) {
                continue;
            }
            covered = true;
            break;
        }
        if (!covered) return false;
    }
    return true;
}

bool Cluster::announced_down(overlay::MemberIndex observer,
                             overlay::MemberIndex suspect,
                             util::SimTime t) const {
    const auto it = nodes_[observer].recovery_seen.find(suspect);
    if (it == nodes_[observer].recovery_seen.end()) return false;
    for (const RecoveryAnnouncement& a : it->second) {
        if (a.covers(t)) return true;
    }
    return false;
}

bool Cluster::accused_abstained(const MessageContext& ctx,
                                const util::NodeId& accused) const {
    for (std::size_t h = 1; h < ctx.stewards.size(); ++h) {
        if (net_->member(ctx.route[h]).id() == accused) {
            return ctx.stewards[h].judgment_insufficient;
        }
    }
    return false;
}

const NodeBehavior& Cluster::behavior(overlay::MemberIndex m) const {
    if (behaviors_.empty()) return kHonest;
    return behaviors_[m];
}

std::optional<crypto::PublicKey> Cluster::key_of(
    const util::NodeId& id) const {
    const auto it = member_of_.find(id);
    if (it == member_of_.end()) return std::nullopt;
    return net_->member(it->second).keys.public_key();
}

std::vector<tomography::LeafBehavior> Cluster::leaf_behaviors(
    overlay::MemberIndex m) const {
    std::vector<tomography::LeafBehavior> out;
    const double chaos_ack_drop =
        chaos_ != nullptr ? chaos_->ack_drop_rate : 0.0;
    bool all_online = true;
    for (const bool b : online_) all_online = all_online && b;
    const bool partition_now = chaos_ != nullptr &&
                               !chaos_->partitions.empty() &&
                               chaos_->partition_active(sim_->now());
    if (behaviors_.empty() && all_online && chaos_ack_drop == 0.0 &&
        !partition_now) {
        return out;  // all honest + online, no injected ack loss
    }
    for (const overlay::MemberIndex leaf : trees_->leaf_members(m)) {
        tomography::LeafBehavior b;
        b.suppress_ack_probability = behavior(leaf).suppress_probe_acks;
        b.fabricate_acks = behavior(leaf).fabricate_probe_acks;
        if (chaos_ack_drop > 0.0) {
            // Environmental ack loss composes with any adversarial
            // suppression: the ack survives only if both spare it.
            b.suppress_ack_probability =
                1.0 - (1.0 - b.suppress_ack_probability) *
                          (1.0 - chaos_ack_drop);
        }
        if (!online_[leaf] ||
            (partition_now && partition_blocks(m, leaf))) {
            // Offline machines -- and machines across an active partition
            // cut -- answer nothing, honestly.
            b.suppress_ack_probability = 1.0;
            b.fabricate_acks = false;
        }
        out.push_back(b);
    }
    return out;
}

// --------------------------------------------------------------- probing

void Cluster::start() {
    exchange_routing_state();
    if (chaos_ != nullptr) {
        schedule_churn();
        schedule_recovery_faults();
    }
    for (overlay::MemberIndex m = 0; m < net_->size(); ++m) {
        schedule_probe_round(m);
        if (behavior(m).slander) schedule_slander_round(m);
        if (behavior(m).spam_accusations) schedule_spam_round(m);
    }
}

void Cluster::exchange_routing_state() {
    // Section 3.1: peers exchange signed jump tables before Concilium can
    // predict forwarding paths; each receiver runs the full validation
    // pipeline (owner signature, per-entry freshness, slot constraints,
    // the occupancy density test).
    ad_rejecters_.assign(net_->size(), {});
    const auto key_fn = [this](const util::NodeId& id) {
        return key_of(id);
    };
    for (overlay::MemberIndex m = 0; m < net_->size(); ++m) {
        if (!online_[m]) continue;
        auto ad = overlay::make_advertisement(
            *net_, m, sim_->now(), [this](overlay::MemberIndex) {
                // Entries were last vouched for within one probe period.
                return std::max<util::SimTime>(
                    0, sim_->now() - params_.probe_interval_max / 2);
            });
        const double fraction = behavior(m).advertised_table_fraction;
        if (fraction < 1.0) {
            // Suppression attack: hide a share of the honest entries.
            ad.entries.resize(static_cast<std::size_t>(
                fraction * static_cast<double>(ad.entries.size())));
            ad.signature = net_->member(m).keys.sign(ad.signed_payload());
        }
        for (const overlay::MemberIndex peer : net_->routing_peers(m)) {
            if (!online_[peer]) continue;
            const auto verdict = core::validate_advertisement(
                ad, net_->secure_table(peer).density(), sim_->now(),
                params_.validation, key_fn, registry_);
            if (verdict == core::AdvertisementCheck::kOk) {
                ++stats_.advertisements_accepted;
            } else {
                ++stats_.advertisements_rejected;
                ad_rejecters_[m].push_back(peer);
            }
        }
    }
}

void Cluster::schedule_probe_round(overlay::MemberIndex m) {
    const auto delay = static_cast<util::SimTime>(rng_.uniform(
        0.0, static_cast<double>(params_.probe_interval_max)));
    post(delay, Op::kProbeRound, m);
}

void Cluster::run_probe_round(overlay::MemberIndex m) {
    if (!online_[m]) {
        schedule_probe_round(m);
        return;
    }
    probe_round_once(m);
    schedule_probe_round(m);
}

void Cluster::probe_round_once(overlay::MemberIndex m) {
    if (!online_[m]) return;
    ++stats_.lightweight_rounds;
    util::spans::sim_instant(util::spans::SpanType::kProbeRound, sim_->now(),
                             /*causal=*/m);
    const auto& tree = trees_->tree(m);
    if (!tree.leaves().empty()) {
        const auto pass = [this](net::LinkId link, util::SimTime t) {
            return transport_.pass_probability(link, t);
        };
        const auto behaviors = leaf_behaviors(m);
        const auto light = tomography::run_lightweight_probe(
            tree, pass, sim_->now(), params_.lightweight_retries, behaviors,
            rng_);

        bool any_silent = false;
        tomography::TomographicSnapshot snap;
        snap.origin = net_->member(m).id();
        snap.probed_at = sim_->now();
        std::unordered_map<net::LinkId, bool> up_links;
        for (std::size_t leaf = 0; leaf < light.responsive.size(); ++leaf) {
            tomography::PathSummary summary;
            summary.peer = trees_->leaf_ids(m)[leaf];
            if (light.responsive[leaf]) {
                summary.bucket = tomography::LossBucket::kClean;
                // An acknowledged probe traversed every link on the path.
                for (const net::LinkId l :
                     trees_->slot_path_links(m, static_cast<int>(leaf))) {
                    up_links[l] = true;
                }
            } else {
                summary.bucket = tomography::LossBucket::kDown;
                any_silent = true;
            }
            snap.paths.push_back(summary);
        }
        for (const auto& [link, up] : up_links) {
            snap.links.push_back(tomography::LinkObservation{link, up});
        }
        publish_snapshot(m, std::move(snap));

        // "If link loss is detected ... H initiates heavyweight probing."
        if (any_silent && sim_->now() - nodes_[m].last_heavyweight >=
                              params_.heavyweight_min_gap) {
            run_heavyweight(m);
        }
    }
}

void Cluster::run_heavyweight(overlay::MemberIndex m) {
    const auto& tree = trees_->tree(m);
    if (tree.leaves().empty()) return;
    ++stats_.heavyweight_sessions;
    // Dual-clock span: the sim instant keeps the deterministic section
    // aligned with the probe timeline, the wall interval measures the
    // session + MLE compute (the tomography hot path).
    util::spans::WallSpan hw_span(util::spans::SpanType::kHeavyweightSession,
                                  /*causal=*/m,
                                  static_cast<std::int64_t>(
                                      tree.leaves().size()));
    hw_span.set_sim(sim_->now(), sim_->now());
    nodes_[m].last_heavyweight = sim_->now();
    const auto pass = [this](net::LinkId link, util::SimTime t) {
        return transport_.pass_probability(link, t);
    };
    const auto behaviors = leaf_behaviors(m);
    const auto session = tomography::run_heavyweight_session(
        tree, pass, sim_->now(), params_.heavyweight, behaviors, rng_);

    // Feedback verification (Section 3.3): exclude fabricators (invalid
    // nonces) and suppressors (implausible conditional ack rates) before
    // inference.
    const auto fabricators =
        tomography::detect_fabricators(tree.leaves().size(), session.probes);
    const auto suppressors = tomography::detect_suppressors(
        tree, session.probes, tomography::SuppressionTestParams{});
    std::vector<bool> excluded(tree.leaves().size(), false);
    for (std::size_t leaf = 0; leaf < excluded.size(); ++leaf) {
        excluded[leaf] = fabricators[leaf] || suppressors[leaf];
    }
    const auto cleaned = tomography::exclude_leaves(session.probes, excluded);
    const auto inference = tomography::infer_link_loss(tree, cleaned);
    auto snapshot = tomography::make_snapshot(
        net_->member(m).id(), net_->member(m).keys, sim_->now(), tree,
        inference, params_.snapshot, trees_->leaf_ids(m));

    // An excluded leaf's silenced feedback makes its last mile *look* dead;
    // links that are only observable through excluded leaves carry no
    // evidence and must not be reported at all.
    bool any_excluded = false;
    for (const bool e : excluded) any_excluded = any_excluded || e;
    if (any_excluded) {
        std::unordered_map<net::LinkId, bool> observable;
        for (std::size_t leaf = 0; leaf < excluded.size(); ++leaf) {
            if (excluded[leaf]) continue;
            for (const net::LinkId l :
                 trees_->slot_path_links(m, static_cast<int>(leaf))) {
                observable[l] = true;
            }
        }
        std::erase_if(snapshot.links,
                      [&](const tomography::LinkObservation& obs) {
                          return !observable.contains(obs.link);
                      });
        snapshot.signature =
            net_->member(m).keys.sign(snapshot.signed_payload());
    }
    publish_snapshot(m, std::move(snapshot));
}

std::shared_ptr<const Cluster::PublishedSnapshot> Cluster::seal(
    overlay::MemberIndex m, tomography::TomographicSnapshot snapshot) {
    auto pub = std::make_shared<PublishedSnapshot>();
    pub->snapshot = std::move(snapshot);
    pub->origin_m = m;
    pub->payload = pub->snapshot.signed_payload();
    pub->digest =
        util::digest_bytes({pub->payload.data(), pub->payload.size()});
    pub->digest_id = interner_.intern(pub->digest);
    return pub;
}

void Cluster::publish_snapshot(overlay::MemberIndex m,
                               tomography::TomographicSnapshot snapshot) {
    const NodeBehavior& b = behavior(m);
    if (b.replay_snapshots && nodes_[m].replay_stash != nullptr) {
        // Replayer: instead of publishing fresh results (which would reveal
        // the paths it is breaking), re-advertise its first, favorable
        // snapshot verbatim -- signature and epoch included.  Receiving
        // archives reject it on the transit-time check (and, were the
        // timestamp forged, on the epoch floor).
        ++stats_.replays_published;
        bump("attack.replays_published");
        for (const overlay::MemberIndex peer : net_->routing_peers(m)) {
            send_snapshot(m, peer, nodes_[m].replay_stash, 1);
        }
        return;
    }
    if (b.flip_probe_reports) {
        // Section 3.3's worst-case leaf: answer others' probes correctly but
        // misreport one's own results.  The liar signs its lie.
        for (auto& obs : snapshot.links) obs.up = !obs.up;
        for (auto& path : snapshot.paths) {
            path.bucket = path.bucket == tomography::LossBucket::kClean
                              ? tomography::LossBucket::kDown
                              : tomography::LossBucket::kClean;
        }
    }
    snapshot.epoch = nodes_[m].next_epoch++;
    // Journal the epoch advance *before* the snapshot leaves: a crash
    // between publish and checkpoint must never let the restarted node
    // re-issue an epoch its peers already archived.
    journals_[m].record_epoch(nodes_[m].next_epoch);
    snapshot.signature =
        net_->member(m).keys.sign(snapshot.signed_payload());
    ++stats_.snapshots_published;
    bump("runtime.snapshots_published");
    // Publish → expected fan-out delivery on the sim clock; arg carries
    // the epoch so equivocating twins are distinguishable in the trace.
    util::spans::sim_span(util::spans::SpanType::kSnapshotExchange,
                          sim_->now(), sim_->now() + params_.control_latency,
                          /*causal=*/m,
                          static_cast<std::int64_t>(snapshot.epoch));
    // Serialize + digest the signed payload exactly once; every per-peer
    // delivery below (and the node's own archive) reuses the sealed slab.
    const auto pub = seal(m, std::move(snapshot));
    if (b.replay_snapshots) nodes_[m].replay_stash = pub;
    nodes_[m].archive.add(pub->snapshot, sim_->now(), pub->digest_id);
    if (b.equivocate_snapshots) {
        // Equivocator: alternate peers get a fully link-flipped twin signed
        // over the *same* origin+epoch.  Any two peers comparing digests now
        // hold a self-verifying proof.
        ++stats_.equivocations_published;
        bump("attack.equivocations_published");
        std::size_t rank = 0;
        for (const overlay::MemberIndex peer : net_->routing_peers(m)) {
            const std::size_t r = rank++;
            send_snapshot(
                m, peer,
                r % 2 == 0
                    ? pub
                    : seal(m, equivocation_variant(m, pub->snapshot, r)),
                1);
        }
        return;
    }
    for (const overlay::MemberIndex peer : net_->routing_peers(m)) {
        send_snapshot(m, peer, pub, 1);
    }
}

tomography::TomographicSnapshot Cluster::equivocation_variant(
    overlay::MemberIndex m, const tomography::TomographicSnapshot& base,
    std::size_t peer_rank) const {
    if (peer_rank % 2 == 0) return base;
    tomography::TomographicSnapshot variant = base;
    for (auto& obs : variant.links) obs.up = !obs.up;
    for (auto& path : variant.paths) {
        path.bucket = path.bucket == tomography::LossBucket::kClean
                          ? tomography::LossBucket::kDown
                          : tomography::LossBucket::kClean;
    }
    variant.signature = net_->member(m).keys.sign(variant.signed_payload());
    return variant;
}

void Cluster::detect_equivocation(overlay::MemberIndex holder,
                                  const PublishedSnapshot& published) {
    const tomography::TomographicSnapshot& snapshot = published.snapshot;
    if (snapshot.epoch == 0) return;  // unversioned: nothing to compare
    const overlay::MemberIndex origin_m = published.origin_m;
    if (proofs_filed_.contains({origin_m, snapshot.epoch})) return;
    // Digest exchange: compare the interned payload-digest id just archived
    // at `holder` against what the origin's other routing peers hold for the
    // same epoch.  Ids come from the cluster-wide interner, so agreement is
    // a single integer compare; only a mismatch -- an actual payload
    // conflict -- pays for building and verifying the full proof.  Both
    // copies carry the origin's valid signature, so the conflict *is* the
    // proof, no trust in either peer required.
    for (const overlay::MemberIndex peer : net_->routing_peers(origin_m)) {
        if (peer == holder || !online_[peer]) continue;
        const SnapshotArchive::DigestId other_digest =
            nodes_[peer].archive.digest_of(snapshot.origin, snapshot.epoch);
        if (other_digest == util::DigestInterner::kInvalidId ||
            other_digest == published.digest_id) {
            continue;  // peer lacks the epoch, or holds the same payload
        }
        const tomography::TomographicSnapshot* other =
            nodes_[peer].archive.find(snapshot.origin, snapshot.epoch);
        if (other == nullptr) continue;
        core::EquivocationProof proof{*other, snapshot};
        if (core::verify_equivocation_proof(
                proof, net_->member(origin_m).keys.public_key(), registry_) !=
            core::EquivocationCheck::kOk) {
            continue;  // not a usable proof after all
        }
        proofs_filed_.insert({origin_m, snapshot.epoch});
        dht_.put(holder,
                 core::EquivocationProof::dht_key(
                     net_->member(origin_m).keys.public_key()),
                 proof.serialize());
        ++stats_.equivocation_proofs_filed;
        bump("defense.equivocation_proofs_filed");
        return;
    }
}

void Cluster::send_snapshot(overlay::MemberIndex m,
                            overlay::MemberIndex peer,
                            std::shared_ptr<const PublishedSnapshot> snapshot,
                            int attempt) {
    const auto deliver = [this, peer, pub = snapshot] {
        // Same check as tomography::verify_snapshot, memoized on the sealed
        // payload digest: the identical (key, digest, signature) triple
        // arrives at every routing peer of the origin.
        const crypto::PublicKey key =
            net_->member(pub->origin_m).keys.public_key();
        if (!verify_cache_.verify(key, pub->digest, pub->payload,
                                  pub->snapshot.signature)) {
            ++stats_.snapshots_rejected;
            bump("runtime.snapshots_rejected");
            return;
        }
        switch (nodes_[peer].archive.add(pub->snapshot, sim_->now(),
                                         pub->digest_id)) {
            case ArchiveAdd::kArchived:
                detect_equivocation(peer, *pub);
                break;
            case ArchiveAdd::kRejectedStale:
                ++stats_.snapshots_rejected_stale;
                bump("defense.snapshots_rejected_stale");
                break;
            case ArchiveAdd::kRejectedEpoch:
                ++stats_.snapshots_rejected_epoch;
                bump("defense.snapshots_rejected_epoch");
                break;
        }
    };
    if (chaos_ == nullptr) {
        // Lossless control plane (the paper's assumption).
        sim_->schedule_after(params_.control_latency, deliver);
        return;
    }
    // Under chaos the control plane shares the faulty IP network: the
    // snapshot is one packet over the member-to-peer path, retried with
    // exponential backoff, and abandoned once the budget is spent -- the
    // peer then simply lacks this snapshot, so the blame evidence it can
    // contribute degrades instead of the diagnosis wedging on it.
    if (!online_[m]) return;  // an offline origin stops retrying
    bump("runtime.retry.snapshot_attempts");
    util::SimTime latency = params_.control_latency;
    bool delivered = true;
    if (partition_blocks(m, peer)) {
        // The cut swallows this copy; the retry arm below may land a later
        // one after the heal.
        delivered = false;
        bump("partition.snapshots_blocked");
    } else if (trees_->leaf_slot(m, peer).has_value()) {
        const auto path = trees_->path_links(m, peer);
        delivered = transport_.sample_traversal(path, sim_->now());
        latency = std::max(latency, transport_.latency(path.size()));
    }
    if (delivered) {
        sim_->schedule_after(latency, deliver);
        return;
    }
    const int next = attempt + 1;
    if (!params_.snapshot_retry.allows(next)) {
        ++stats_.snapshot_deliveries_failed;
        bump("runtime.retry.snapshot_exhausted");
        return;
    }
    ++stats_.snapshot_retries;
    bump("runtime.retry.snapshot_retries");
    const auto backoff = params_.snapshot_retry.delay_before(next, rng_);
    sim_->schedule_after(backoff, [this, m, peer, snapshot, next] {
        send_snapshot(m, peer, snapshot, next);
    });
}

// -------------------------------------------------------------- messaging

std::uint64_t Cluster::send(overlay::MemberIndex from,
                            const util::NodeId& dest_key,
                            CompletionFn on_complete) {
    MessageContext ctx;
    ctx.id = next_message_id_++;
    ctx.route = net_->route(from, dest_key);
    ctx.sent_at = sim_->now();
    ctx.stewards.resize(ctx.route.size());
    ctx.on_complete = std::move(on_complete);
    ++stats_.messages;
    bump("runtime.messages_sent");
    const std::uint64_t id = ctx.id;
    messages_.emplace(id, std::move(ctx));
    deliver_to_hop(id, 0);
    return id;
}

std::span<const net::LinkId> Cluster::hop_path(const MessageContext& ctx,
                                               std::size_t hop) const {
    // The IP path between consecutive route hops, taken from the upstream
    // node's link map (direction does not matter for loss sampling).
    if (!trees_->leaf_slot(ctx.route[hop], ctx.route[hop + 1]).has_value()) {
        return {};
    }
    return trees_->path_links(ctx.route[hop], ctx.route[hop + 1]);
}

void Cluster::deliver_to_hop(std::uint64_t msg_id, std::size_t hop) {
    auto& ctx = messages_.at(msg_id);
    if (hop > 0) {
        // Dedupe: a node that already saw this message (retransmission or
        // chaos-duplicated packet) ignores further copies -- except the
        // destination, which re-acknowledges so that a retransmitted
        // message also heals a lost acknowledgment.
        if (ctx.stewards[hop].received) {
            if (hop + 1 == ctx.route.size() && !ctx.completed &&
                online_[ctx.route[hop]] && ctx.route.size() > 1) {
                bump("runtime.retry.reacks");
                start_ack_return(msg_id);
                return;
            }
            ++stats_.duplicates_suppressed;
            bump("chaos.duplicates_suppressed");
            return;
        }
        ctx.stewards[hop].received = true;
    }
    if (hop > 0 && hop + 1 == ctx.route.size() &&
        !online_[ctx.route[hop]]) {
        // The destination is down: no acknowledgment will ever come.
        ctx.dropped_by_hop = hop;
        return;
    }
    if (hop + 1 == ctx.route.size()) {
        if (ctx.route.size() == 1) {
            // Sender is already the destination.
            ctx.completed = true;
            ++stats_.delivered;
    bump("runtime.messages_delivered");
            if (ctx.on_complete) {
                MessageOutcome outcome;
                outcome.delivered = true;
                outcome.route = ctx.route;
                ctx.on_complete(outcome);
            }
            return;
        }
        start_ack_return(msg_id);
        return;
    }
    forward_from_hop(msg_id, hop);
}

void Cluster::forward_from_hop(std::uint64_t msg_id, std::size_t hop) {
    auto& ctx = messages_.at(msg_id);
    const overlay::MemberIndex m = ctx.route[hop];
    const overlay::MemberIndex next = ctx.route[hop + 1];

    // A faulty *intermediate* forwarder may silently drop the message; an
    // offline one cannot forward at all.
    if (hop > 0 && (!online_[m] ||
                    rng_.bernoulli(behavior(m).drop_forward_probability))) {
        ctx.dropped_by_hop = hop;
        if (online_[m] && behavior(m).collude_revisions) {
            // The colluder waits out the upstream timeout, then pushes a
            // fabricated guilty revision framing its next hop for the drop
            // it just committed.
            sim_->schedule_after(
                params_.ack_timeout + params_.judgment_grace,
                [this, msg_id, hop] {
                    push_fabricated_revision(msg_id, hop);
                });
        }
        return;  // upstream stewards will time out
    }

    // Forwarding commitment (Section 3.6), issued by the next hop.
    if (behavior(next).refuse_commitments) {
        ++stats_.commitments_refused;
    bump("runtime.commitments_refused");
        ++stats_.reputation_votes;
        reputation_.cast_vote(net_->member(m).id(), net_->member(next).id(),
                              sim_->now());
        journals_[m].record_vote(net_->member(next).id(), sim_->now());
    } else {
        ++stats_.commitments_issued;
    bump("runtime.commitments_issued");
        ctx.stewards[hop].commitment = core::make_forwarding_commitment(
            net_->member(m).id(), net_->member(next).id(),
            net_->member(ctx.route.back()).id(), msg_id, ctx.sent_at,
            net_->member(next).keys);
        // Stewards keep the commitments they collect; a slanderer or
        // colluder later reuses them as raw material for forged evidence.
        nodes_[m].collected.insert_or_assign(next,
                                             *ctx.stewards[hop].commitment);
    }

    ctx.stewards[hop].forwarded = true;
    journals_[m].record_steward_open(msg_id, hop, sim_->now(),
                                     ctx.stewards[hop].commitment);
    post(params_.ack_timeout, Op::kAckTimeout, msg_id, hop);

    transmit_to_next(msg_id, hop, 1);
}

void Cluster::transmit_to_next(std::uint64_t msg_id, std::size_t hop,
                               int attempt) {
    auto& ctx = messages_.at(msg_id);
    const auto path = hop_path(ctx, hop);
    if (path.empty()) {
        ctx.dropped_by_network = true;
        ctx.network_drop_segment = hop;
        return;  // no IP path exists; retrying cannot help
    }
    // An active partition cut swallows every copy; the retry arm below
    // stays armed, so a retransmission after the heal can still succeed.
    const bool cut = partition_blocks(ctx.route[hop], ctx.route[hop + 1]);
    if (cut) {
        ++stats_.partition_blocked_packets;
        bump("partition.messages_blocked");
        static auto& blocked_by_minute =
            minute_series("partition.messages_blocked.by_minute");
        blocked_by_minute.observe(sim_->now());
        if (!ctx.dropped_by_hop.has_value()) {
            ctx.dropped_by_network = true;
            ctx.network_drop_segment = hop;
        }
    } else if (transport_.sample_traversal(path, sim_->now())) {
        // One packet over the IP path; loss kills this copy.
        const util::SimTime jitter =
            chaos_extra_delay(chaos_ != nullptr ? chaos_->reorder_rate : 0.0,
                              "chaos.packets_reordered");
        post(transport_.latency(path.size()) + jitter, Op::kDeliverToHop,
             msg_id, hop + 1);
        if (chaos_ != nullptr && rng_.bernoulli(chaos_->duplicate_rate)) {
            // A duplicated packet arrives slightly later; the receiving
            // steward dedupes it.
            bump("chaos.packets_duplicated");
            const util::SimTime extra = std::max<util::SimTime>(
                1, static_cast<util::SimTime>(rng_.uniform(
                       0.0,
                       static_cast<double>(chaos_->max_extra_delay))));
            post(transport_.latency(path.size()) + jitter + extra,
                 Op::kDeliverToHop, msg_id, hop + 1);
        }
    } else if (!ctx.dropped_by_hop.has_value()) {
        ctx.dropped_by_network = true;
        ctx.network_drop_segment = hop;
    }
    // Steward retransmission (bounded backoff + jitter): the steward
    // cannot observe the loss, only the missing acknowledgment, so the
    // retry timer is armed regardless of this copy's fate and checks the
    // ack when it fires.  Downstream nodes dedupe spurious re-sends.
    const int next = attempt + 1;
    if (!params_.forward_retry.allows(next)) return;
    const auto backoff = params_.forward_retry.delay_before(next, rng_);
    post(backoff, Op::kForwardRetry, msg_id,
         (static_cast<std::uint64_t>(hop) << 32) |
             static_cast<std::uint32_t>(next));
}

void Cluster::forward_retry(std::uint64_t msg_id, std::size_t hop,
                            int attempt) {
    auto& ctx = messages_.at(msg_id);
    if (ctx.completed || ctx.stewards[hop].acked) return;
    if (!online_[ctx.route[hop]]) return;  // churned out mid-retry
    ++stats_.forward_retransmissions;
    bump("runtime.retry.forward_attempts");
    static auto& retries_by_minute =
        minute_series("runtime.retry.forward_attempts.by_minute");
    retries_by_minute.observe(sim_->now());
    transmit_to_next(msg_id, hop, attempt);
}

void Cluster::start_ack_return(std::uint64_t msg_id) {
    auto& ctx = messages_.at(msg_id);
    deliver_ack_to_hop(msg_id, ctx.route.size() - 1);
}

void Cluster::deliver_ack_to_hop(std::uint64_t msg_id, std::size_t hop) {
    auto& ctx = messages_.at(msg_id);
    if (!online_[ctx.route[hop]]) return;  // a dead relay swallows the ack
    ctx.stewards[hop].acked = true;
    if (ctx.stewards[hop].forwarded) {
        // The acknowledgment retires this hop's stewardship on "disk" too:
        // a later crash must not resurrect it as an open obligation.
        journals_[ctx.route[hop]].record_steward_close(msg_id, hop);
    }
    if (hop == 0) {
        if (!ctx.completed) {
            ctx.completed = true;
            ++stats_.delivered;
    bump("runtime.messages_delivered");
            if (ctx.on_complete) {
                MessageOutcome outcome;
                outcome.delivered = true;
                outcome.route = ctx.route;
                ctx.on_complete(outcome);
            }
        }
        return;
    }
    // Relay the acknowledgment upstream over hop-1's path.
    const auto path = hop_path(ctx, hop - 1);
    if (path.empty()) {
        ctx.dropped_by_network = true;
        return;
    }
    if (partition_blocks(ctx.route[hop], ctx.route[hop - 1])) {
        // The cut eats the relayed ack; upstream stewards will time out.
        ++stats_.partition_blocked_packets;
        bump("partition.acks_blocked");
        ctx.dropped_by_network = true;
        if (!ctx.network_drop_segment.has_value()) {
            ctx.network_drop_segment = hop - 1;
        }
        return;
    }
    if (transport_.sample_traversal(path, sim_->now())) {
        // Chaos may hold the relayed acknowledgment back; a delay long
        // enough to cross the upstream steward's timeout looks exactly
        // like a loss until the ack lands.
        const util::SimTime delay =
            chaos_extra_delay(chaos_ != nullptr ? chaos_->ack_delay_rate : 0.0,
                              "chaos.acks_delayed");
        post(transport_.latency(path.size()) + delay, Op::kDeliverAck, msg_id,
             hop - 1);
    } else {
        // Lost acknowledgment: upstream stewards will time out and a chain
        // of verdicts will be issued (Section 3.5).
        ctx.dropped_by_network = true;
        if (!ctx.network_drop_segment.has_value()) {
            ctx.network_drop_segment = hop - 1;
        }
    }
}

void Cluster::on_ack_timeout(std::uint64_t msg_id, std::size_t hop) {
    auto& ctx = messages_.at(msg_id);
    StewardRecord& steward = ctx.stewards[hop];
    if (steward.acked || !steward.forwarded) return;
    // A crashed steward's timer outlived its memory of arming it; the
    // journaled stewardship is resumed or abandoned at restart instead.
    if (crashed_[ctx.route[hop]]) return;

    // Reactive heavyweight probing: the steward refreshes its own view and
    // asks its routing peers to do the same (Section 3.2).  The judge's own
    // refresh uses the (shorter) reactive floor: its tree covers the very
    // path it is about to rule on.
    const overlay::MemberIndex m = ctx.route[hop];
    if (sim_->now() - nodes_[m].last_heavyweight >=
        params_.reactive_heavyweight_min_gap) {
        run_heavyweight(m);
    }
    for (const overlay::MemberIndex peer : net_->routing_peers(m)) {
        const auto delay = static_cast<util::SimTime>(
            rng_.uniform(0.0, 2.0 * util::kSecond));
        post(delay, Op::kPeerRefresh, peer);
    }

    post(params_.judgment_grace, Op::kJudge, msg_id, hop);
}

core::BlameEvidence Cluster::build_evidence(
    const MessageContext& ctx, std::size_t judge_hop,
    core::BlameBreakdown* breakdown_out) const {
    const overlay::MemberIndex m = ctx.route[judge_hop];
    const overlay::MemberIndex suspect = ctx.route[judge_hop + 1];
    core::BlameEvidence ev;
    ev.judge = net_->member(m).id();
    ev.suspect = net_->member(suspect).id();
    ev.message_id = ctx.id;
    ev.message_time = ctx.sent_at;
    const auto hop_links = hop_path(ctx, judge_hop);
    ev.path_links.assign(hop_links.begin(), hop_links.end());
    ev.snapshots = nodes_[m].archive.evidence_for(
        ev.path_links, ctx.sent_at, params_.blame.delta, ev.suspect);
    if (ctx.stewards[judge_hop].commitment.has_value()) {
        ev.commitment = *ctx.stewards[judge_hop].commitment;
    }
    core::BlameBreakdown breakdown =
        core::compute_blame(ev.path_links,
                            core::probes_from_snapshots(ev.snapshots),
                            ctx.sent_at, ev.suspect, params_.blame);
    ev.claimed_blame = breakdown.blame;
    if (breakdown_out != nullptr) *breakdown_out = std::move(breakdown);
    ev.judge_signature = net_->member(m).keys.sign(ev.signed_payload());
    return ev;
}

void Cluster::judge_next_hop(std::uint64_t msg_id, std::size_t hop) {
    auto& ctx = messages_.at(msg_id);
    StewardRecord& steward = ctx.stewards[hop];
    if (steward.acked || steward.judged) return;
    const overlay::MemberIndex m = ctx.route[hop];
    if (crashed_[m]) return;  // a crashed judge testifies to nothing
    steward.judged = true;

    core::BlameBreakdown breakdown;
    core::BlameEvidence ev = build_evidence(ctx, hop, &breakdown);
    const bool guilty = core::is_guilty_verdict(ev.claimed_blame,
                                                params_.verdicts);
    // Degraded-mode conviction bar (RECOVERY.md): with crash or partition
    // faults in play, the empty-evidence presumption ("otherwise, B was
    // faulty") would convict every node that merely crashed or sat across
    // a cut.  A guilty verdict then additionally requires either direct
    // proof of the opposite -- a signed handoff or a verified recovery
    // announcement covering the message -- to be absent, *and* fresh
    // post-incident probe coverage of every judged link to be present.  A
    // live malicious dropper still answers probes, so it always clears the
    // coverage bar and stays convictable.
    bool insufficient = false;
    if (guilty) {
        // A judge that lost its own control channel to the suspect -- the
        // two sat across an active cut at send or judgment time -- cannot
        // tell a partitioned peer from a dropper, no matter what its
        // same-side reporters' probes say: the silence it observed is its
        // own unreachability.
        const bool cut_from_suspect =
            hop + 1 < ctx.route.size() &&
            (partition_blocks(m, ctx.route[hop + 1]) ||
             (chaos_ != nullptr &&
              chaos_->partition_blocks(m, ctx.route[hop + 1], ctx.sent_at)));
        const overlay::MemberIndex suspect_m = ctx.route[hop + 1];
        insufficient =
            steward.handoff.has_value() || cut_from_suspect ||
            announced_down(m, suspect_m, ctx.sent_at) ||
            announced_down(m, suspect_m, sim_->now()) ||
            (degraded_mode() && !post_incident_coverage(ev, ctx.sent_at));
    }
    steward.breakdown = std::move(breakdown);
    steward.judged_at = sim_->now();
    util::spans::sim_instant(util::spans::SpanType::kJudgment, sim_->now(),
                             /*causal=*/msg_id,
                             /*arg=*/static_cast<std::int64_t>(hop));
    steward.judgment = std::move(ev);
    journals_[m].record_steward_close(msg_id, hop);
    if (insufficient) {
        // Abstention: no ledger entry, no journaled verdict, no upstream
        // revision -- "insufficient evidence" is not a verdict anybody may
        // accumulate toward an accusation or relay as a revision.
        steward.judgment_insufficient = true;
        ++stats_.insufficient_verdicts;
        bump("recovery.insufficient_evidence_verdicts");
    } else {
        nodes_[m].ledger.record(steward.judgment->suspect,
                                steward.judgment->claimed_blame, sim_->now());
        journals_[m].record_verdict(steward.judgment->suspect, guilty,
                                    sim_->now());
        if (guilty) {
            ++stats_.guilty_verdicts;
        } else {
            ++stats_.innocent_verdicts;
        }
        steward.judgment_guilty = guilty;
        if (hop > 0) push_revision_upstream(msg_id, hop);
    }
    if (hop == 0) {
        // Give downstream revisions time to climb the chain, then settle.
        const auto settle =
            params_.control_latency *
                static_cast<util::SimTime>(ctx.route.size() + 2) +
            params_.judgment_grace;
        post(settle, Op::kMaybeComplete, msg_id);
    }
}

void Cluster::push_revision_upstream(std::uint64_t msg_id, std::size_t hop) {
    auto& ctx = messages_.at(msg_id);
    const overlay::MemberIndex m = ctx.route[hop];
    if (behavior(m).refuse_revisions) return;  // at its own peril
    if (!ctx.stewards[hop].judgment.has_value()) return;
    ++stats_.revisions_pushed;
    bump("runtime.revisions_pushed");
    // Each steward presents the verdict to its upstream neighbor, which
    // relays it further unless it withholds revisions itself (Section 3.5).
    const core::BlameEvidence evidence = *ctx.stewards[hop].judgment;
    sim_->schedule_after(params_.control_latency, [this, msg_id, evidence,
                                                   hop] {
        relay_revision(msg_id, evidence, hop - 1);
    });
}

void Cluster::relay_revision(std::uint64_t msg_id,
                             const core::BlameEvidence& evidence,
                             std::size_t to_hop) {
    auto& ctx = messages_.at(msg_id);
    ctx.stewards[to_hop].pushed.push_back(evidence);
    ++stats_.revisions_applied;
    bump("runtime.revisions_applied");
    if (to_hop == 0) return;
    if (behavior(ctx.route[to_hop]).refuse_revisions) return;
    sim_->schedule_after(params_.control_latency,
                         [this, msg_id, evidence, to_hop] {
                             relay_revision(msg_id, evidence, to_hop - 1);
                         });
}

// ------------------------------------------- attack campaign behaviours

void Cluster::push_fabricated_revision(std::uint64_t msg_id,
                                       std::size_t hop) {
    auto& ctx = messages_.at(msg_id);
    if (ctx.completed || !online_[ctx.route[hop]]) return;
    const overlay::MemberIndex m = ctx.route[hop];
    const overlay::MemberIndex next = ctx.route[hop + 1];
    core::BlameEvidence ev;
    ev.judge = net_->member(m).id();
    ev.suspect = net_->member(next).id();
    ev.message_id = ctx.id;
    ev.message_time = ctx.sent_at;
    const auto hop_links = hop_path(ctx, hop);
    ev.path_links.assign(hop_links.begin(), hop_links.end());
    // No snapshots: the colluder's archive holds evidence the path was fine
    // (it dropped the message itself), so it bundles nothing and asserts
    // maximum blame.  Without a commitment for *this* message from the
    // framed hop, the best it can attach is a stale commitment it collected
    // earlier -- either way, sender-side re-verification fails.
    const auto it = nodes_[m].collected.find(next);
    if (it != nodes_[m].collected.end()) ev.commitment = it->second;
    ev.claimed_blame = 1.0;
    ev.judge_signature = net_->member(m).keys.sign(ev.signed_payload());
    ++stats_.collusions_pushed;
    bump("attack.collusions_pushed");
    sim_->schedule_after(params_.control_latency,
                         [this, msg_id, ev, hop] {
                             relay_revision(msg_id, ev, hop - 1);
                         });
}

void Cluster::schedule_slander_round(overlay::MemberIndex m) {
    const auto delay = static_cast<util::SimTime>(rng_.uniform(
        0.0, static_cast<double>(params_.probe_interval_max)));
    post(delay, Op::kSlanderRound, m);
}

void Cluster::run_slander_round(overlay::MemberIndex m) {
    if (!online_[m]) {
        schedule_slander_round(m);
        return;
    }
    const auto& peers = net_->routing_peers(m);
    if (!peers.empty()) {
        NodeState& node = nodes_[m];
        const overlay::MemberIndex victim =
            peers[node.slander_cursor++ % peers.size()];
        core::BlameEvidence ev;
        ev.judge = net_->member(m).id();
        ev.suspect = net_->member(victim).id();
        const auto collected = node.collected.find(victim);
        if (collected != node.collected.end()) {
            // Strongest forgery available: a genuine commitment from the
            // victim, with the accusation anchored to its message binding so
            // the commitment checks pass.  The lie then has to live in the
            // evidence bundle.
            ev.commitment = collected->second;
            ev.message_id = collected->second.message_id;
            ev.message_time = collected->second.at;
        } else {
            // No commitment from the victim: forge one in its name.  The
            // slanderer can only sign with its own key, so verification
            // rejects it outright.
            ev.message_id = (std::uint64_t{0x51AD} << 32) |
                            (std::uint64_t{m} << 16) | node.slander_cursor;
            ev.message_time = sim_->now();
            core::ForwardingCommitment c;
            c.sender = ev.judge;
            c.forwarder = ev.suspect;
            c.destination = ev.judge;
            c.message_id = ev.message_id;
            c.at = ev.message_time;
            c.signature = net_->member(m).keys.sign(c.signed_payload());
            ev.commitment = c;
        }
        if (trees_->leaf_slot(m, victim).has_value()) {
            const auto victim_links = trees_->path_links(m, victim);
            ev.path_links.assign(victim_links.begin(), victim_links.end());
        }
        // Cherry-picking: of everything archived about these links, keep
        // ONLY snapshots outside the admission window around message_time --
        // old outages the victim had nothing to do with.  Fresh exonerating
        // snapshots are deliberately withheld.
        auto bundle = node.archive.evidence_for(
            ev.path_links, ev.message_time,
            params_.blame.delta + 5 * util::kMinute, ev.suspect);
        std::erase_if(bundle,
                      [&](const tomography::TomographicSnapshot& s) {
                          const util::SimTime skew =
                              s.probed_at >= ev.message_time
                                  ? s.probed_at - ev.message_time
                                  : ev.message_time - s.probed_at;
                          return skew <= params_.blame.delta;
                      });
        if (bundle.size() > 4) bundle.resize(4);
        ev.snapshots = std::move(bundle);
        ev.claimed_blame = 1.0;
        ev.judge_signature = net_->member(m).keys.sign(ev.signed_payload());

        core::FaultAccusation accusation;
        accusation.accuser = net_->member(m).id();
        accusation.evidence.push_back(std::move(ev));
        accusation.signature =
            net_->member(m).keys.sign(accusation.signed_payload());
        dht_.put(m,
                 core::FaultAccusation::dht_key(
                     net_->member(victim).keys.public_key()),
                 accusation.serialize());
        ++stats_.slanders_filed;
        bump("attack.slanders_filed");
    }
    schedule_slander_round(m);
}

void Cluster::schedule_spam_round(overlay::MemberIndex m) {
    const auto delay = static_cast<util::SimTime>(rng_.uniform(
        0.0, static_cast<double>(params_.probe_interval_max)));
    post(delay, Op::kSpamRound, m);
}

void Cluster::run_spam_round(overlay::MemberIndex m) {
    if (!online_[m]) {
        schedule_spam_round(m);
        return;
    }
    const auto& peers = net_->routing_peers(m);
    if (!peers.empty()) {
        NodeState& node = nodes_[m];
        const overlay::MemberIndex victim =
            peers[node.spam_cursor++ % peers.size()];
        const auto key = core::FaultAccusation::dht_key(
            net_->member(victim).keys.public_key());
        for (int i = 0; i < 4; ++i) {
            std::vector<std::uint8_t> junk(24);
            for (auto& byte : junk) {
                byte = static_cast<std::uint8_t>(rng_.uniform_int(0, 255));
            }
            const auto result = dht_.put(m, key, std::move(junk));
            ++stats_.spam_puts;
            bump("attack.spam_puts");
            if (!result.accepted) {
                ++stats_.dht_puts_rejected;
                bump("defense.dht_puts_rejected");
            }
        }
    }
    schedule_spam_round(m);
}

void Cluster::maybe_complete(std::uint64_t msg_id) {
    auto& ctx = messages_.at(msg_id);
    if (ctx.completed) return;
    ctx.completed = true;
    if (ctx.dropped_by_hop.has_value()) {
        ++stats_.dropped_by_forwarder;
    bump("runtime.messages_dropped_by_forwarder");
    } else if (ctx.dropped_by_network) {
        ++stats_.dropped_by_network;
    bump("runtime.messages_dropped_by_network");
    }

    MessageOutcome outcome;
    outcome.route = ctx.route;
    outcome.true_drop_hop = ctx.dropped_by_hop;
    outcome.true_network_drop = ctx.dropped_by_network;
    outcome.true_network_segment = ctx.network_drop_segment;
    const auto& sender = ctx.stewards[0];
    if (!sender.judgment.has_value()) {
        // Sender never judged (e.g. it never forwarded); nothing to report.
        record_trace(ctx, outcome);
        if (ctx.on_complete) ctx.on_complete(outcome);
        return;
    }
    if (sender.judgment_insufficient) {
        // Degraded mode: the sender's own judgment abstained, so the
        // diagnosis closes without blaming anyone (RECOVERY.md).
        outcome.insufficient_evidence = true;
        record_trace(ctx, outcome);
        if (ctx.on_complete) ctx.on_complete(outcome);
        return;
    }
    if (!core::is_guilty_verdict(sender.judgment->claimed_blame,
                                 params_.verdicts)) {
        outcome.network_blamed = true;
        record_trace(ctx, outcome);
        if (ctx.on_complete) ctx.on_complete(outcome);
        return;
    }
    // Walk the revision chain: start blaming hop 1, follow pushed verdicts.
    // Every pushed revision is re-verified before it is honored -- same
    // checks a third party runs on a full accusation (signatures, the
    // commitment's message binding, snapshot freshness, the Equation 2-3
    // recomputation).  A fabricated revision is simply ignored, leaving the
    // blame where the sender's own verified chain ends.
    const core::AccusationVerifier verifier = make_verifier();
    util::NodeId accused = sender.judgment->suspect;
    std::vector<const core::BlameEvidence*> chain{&*sender.judgment};
    bool network = false;
    for (bool advanced = true; advanced;) {
        advanced = false;
        for (const core::BlameEvidence& ev : sender.pushed) {
            if (!(ev.judge == accused)) continue;
            const core::AccusationCheck check = verifier.verify_evidence(ev);
            if (check == core::AccusationCheck::kBlameBelowThreshold) {
                // The accused proved the IP path to its next hop was bad.
                network = true;
            } else if (check == core::AccusationCheck::kOk) {
                accused = ev.suspect;
                chain.push_back(&ev);
                advanced = true;
            } else {
                ++stats_.revisions_rejected;
                bump("defense.revisions_rejected");
            }
            break;
        }
        if (network) break;
    }
    const auto accused_it = member_of_.find(accused);
    if (network) {
        outcome.network_blamed = true;
    } else if (accused_abstained(ctx, accused) ||
               (accused_it != member_of_.end() &&
                announced_down(ctx.route[0], accused_it->second,
                               ctx.sent_at))) {
        // The final accused either abstained from its own judgment (it
        // demonstrably forwarded, then lost its channel to the next hop
        // across a cut -- the abstention reaches the sender over the
        // intact same-side path in place of a revision) or provably
        // crashed across the message interval.  Either way the evidence
        // chain ends without a verdict: the sender abstains from blame
        // and accusation alike.
        outcome.insufficient_evidence = true;
        ++stats_.insufficient_verdicts;
        bump("recovery.insufficient_evidence_verdicts");
    } else {
        outcome.blamed = accused;
        // File a formal accusation once the suspect has accumulated enough
        // guilty verdicts in the sender's window (Section 3.4).
        const overlay::MemberIndex sender_m = ctx.route[0];
        if (nodes_[sender_m].ledger.guilty_count(
                ctx.stewards[0].judgment->suspect) >=
                params_.verdicts.accusation_threshold &&
            ctx.stewards[0].commitment.has_value()) {
            core::FaultAccusation accusation;
            accusation.accuser = net_->member(sender_m).id();
            for (const core::BlameEvidence* ev : chain) {
                // A suspect that never issued a forwarding commitment can
                // only be handled through the reputation system (Section
                // 3.6); the verifiable chain truncates there.
                const auto suspect_key = key_of(ev->suspect);
                if (!suspect_key.has_value() ||
                    !core::verify_forwarding_commitment(
                        ev->commitment, *suspect_key, registry_)) {
                    break;
                }
                accusation.evidence.push_back(*ev);
            }
            if (!accusation.evidence.empty()) {
                accusation.signature = net_->member(sender_m).keys.sign(
                    accusation.signed_payload());
                const auto accused_member = member_of_.find(
                    accusation.accused());
                if (accused_member != member_of_.end()) {
                    dht_.put(sender_m,
                             core::FaultAccusation::dht_key(
                                 net_->member(accused_member->second)
                                     .keys.public_key()),
                             accusation.serialize());
                    ++stats_.accusations_filed;
    bump("runtime.accusations_filed");
                }
            }
        }
    }
    record_trace(ctx, outcome);
    if (ctx.on_complete) ctx.on_complete(outcome);
}

void Cluster::record_trace(const MessageContext& ctx,
                           const MessageOutcome& outcome) {
    // The whole-diagnosis span (sent → settled), causally keyed by message
    // id like every judgment recorded along the way; arg encodes the
    // verdict class.  Recorded whether or not a DiagnosisTrace is attached.
    const std::int64_t verdict_arg = outcome.insufficient_evidence ? 3
                                     : outcome.network_blamed      ? 2
                                     : outcome.blamed.has_value()  ? 1
                                                                   : 0;
    util::spans::sim_span(util::spans::SpanType::kDiagnosis, ctx.sent_at,
                          sim_->now(), /*causal=*/ctx.id, verdict_arg);
    if (trace_ == nullptr) return;
    core::DiagnosisRecord rec;
    rec.message_id = ctx.id;
    rec.sent_at = ctx.sent_at;
    rec.completed_at = sim_->now();
    rec.forwarder_chain.reserve(ctx.route.size());
    for (const overlay::MemberIndex m : ctx.route) {
        rec.forwarder_chain.push_back(net_->member(m).id());
    }
    for (std::size_t hop = 0; hop < ctx.stewards.size(); ++hop) {
        const StewardRecord& s = ctx.stewards[hop];
        if (!s.judgment.has_value()) continue;
        core::TraceJudgment j;
        j.judge = s.judgment->judge;
        j.suspect = s.judgment->suspect;
        j.judged_at = s.judged_at;
        j.path_links = s.judgment->path_links;
        if (s.breakdown.has_value()) j.breakdown = *s.breakdown;
        j.guilty = s.judgment_guilty;
        j.revision = hop > 0;
        rec.judgments.push_back(std::move(j));
    }
    if (outcome.insufficient_evidence) {
        rec.verdict = core::DiagnosisRecord::Verdict::kInsufficientEvidence;
    } else if (outcome.network_blamed) {
        rec.verdict = core::DiagnosisRecord::Verdict::kNetworkBlamed;
    } else if (outcome.blamed.has_value()) {
        rec.verdict = core::DiagnosisRecord::Verdict::kNodeBlamed;
        rec.blamed = outcome.blamed;
    }
    trace_->record(std::move(rec));
}

std::vector<core::FaultAccusation> Cluster::accusations_against(
    overlay::MemberIndex m) const {
    std::vector<core::FaultAccusation> out;
    const auto key =
        core::FaultAccusation::dht_key(net_->member(m).keys.public_key());
    // Read as an arbitrary third party.
    const auto result = dht_.get((m + 1) % net_->size(), key);
    for (const auto& bytes : result.values) {
        try {
            out.push_back(core::FaultAccusation::deserialize(bytes));
        } catch (const std::exception&) {
            // Spam: a value under an accusation key that is not an
            // accusation.  Readers skip it.
            bump("defense.malformed_accusations_dropped");
        }
    }
    return out;
}

std::vector<core::EquivocationProof> Cluster::equivocation_proofs_against(
    overlay::MemberIndex m) const {
    std::vector<core::EquivocationProof> out;
    const auto key =
        core::EquivocationProof::dht_key(net_->member(m).keys.public_key());
    const auto result = dht_.get((m + 1) % net_->size(), key);
    for (const auto& bytes : result.values) {
        try {
            out.push_back(core::EquivocationProof::deserialize(bytes));
        } catch (const std::exception&) {
            bump("defense.malformed_accusations_dropped");
        }
    }
    return out;
}

core::AccusationVerifier Cluster::make_verifier() const {
    return core::AccusationVerifier(
        registry_,
        [this](const util::NodeId& id) { return key_of(id); },
        params_.blame, params_.verdicts,
        // Path claims are checked against the verifier's own link map: the
        // judge's claimed path must be the actual IP path between the two
        // nodes (Section 3.4 bundles the routing state for this purpose).
        [this](const util::NodeId& judge, const util::NodeId& suspect,
               std::span<const net::LinkId> links) {
            const auto j = member_of_.find(judge);
            const auto s = member_of_.find(suspect);
            if (j == member_of_.end() || s == member_of_.end()) return false;
            if (!trees_->leaf_slot(j->second, s->second).has_value()) {
                return false;
            }
            const auto truth = trees_->path_links(j->second, s->second);
            return std::equal(links.begin(), links.end(), truth.begin(),
                              truth.end());
        });
}

core::AccusationCheck Cluster::verify(
    const core::FaultAccusation& accusation) const {
    return make_verifier().verify(accusation);
}

core::EquivocationCheck Cluster::verify(
    const core::EquivocationProof& proof,
    overlay::MemberIndex accused) const {
    return core::verify_equivocation_proof(
        proof, net_->member(accused).keys.public_key(), registry_);
}

}  // namespace concilium::runtime
