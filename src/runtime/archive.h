// Per-node snapshot archive.
//
// "Regardless, the node archives H's snapshot.  As the node receives
// snapshots from other peers, it constructs a distributed view of the
// forwarding paths emanating from its routing peers and the quality of IP
// links in these paths." (Section 3.2)
//
// The archive keeps every snapshot that is still young enough to matter for
// blame evaluation (the Delta admission window plus slack) and answers the
// query the blame engine needs: all probe results covering a set of links
// around a point in time, with provenance.

#pragma once

#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/blame.h"
#include "tomography/snapshot.h"
#include "util/ids.h"
#include "util/time.h"

namespace concilium::runtime {

class SnapshotArchive {
  public:
    /// retention: snapshots older than now - retention are pruned on insert.
    explicit SnapshotArchive(util::SimTime retention = 10 * util::kMinute)
        : retention_(retention) {}

    /// Archives a snapshot (assumed already signature-checked by the caller;
    /// un-verifiable snapshots never reach the archive).
    void add(tomography::TomographicSnapshot snapshot, util::SimTime now);

    /// All archived probe results covering any link in `links`, initiated in
    /// [t - delta, t + delta].  Results from `exclude` are skipped -- the
    /// caller passes the judged node per Section 3.4's self-probe rule.
    [[nodiscard]] std::vector<core::ProbeResult> probes_for(
        std::span<const net::LinkId> links, util::SimTime t,
        util::SimTime delta, const util::NodeId& exclude) const;

    /// The archived snapshots from one origin, oldest first (used as signed
    /// evidence when building accusations).
    [[nodiscard]] std::vector<const tomography::TomographicSnapshot*>
    snapshots_from(const util::NodeId& origin) const;

    /// Snapshots (from any origin) whose probes fall inside the window and
    /// touch the given links; this is exactly the evidence bundle a formal
    /// accusation must carry.
    [[nodiscard]] std::vector<tomography::TomographicSnapshot>
    evidence_for(std::span<const net::LinkId> links, util::SimTime t,
                 util::SimTime delta, const util::NodeId& exclude) const;

    [[nodiscard]] std::size_t size() const noexcept { return count_; }

  private:
    void prune(util::SimTime now);

    util::SimTime retention_;
    std::unordered_map<util::NodeId, std::deque<tomography::TomographicSnapshot>,
                       util::NodeIdHash>
        by_origin_;
    std::size_t count_ = 0;
};

}  // namespace concilium::runtime
