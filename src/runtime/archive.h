// Per-node snapshot archive.
//
// "Regardless, the node archives H's snapshot.  As the node receives
// snapshots from other peers, it constructs a distributed view of the
// forwarding paths emanating from its routing peers and the quality of IP
// links in these paths." (Section 3.2)
//
// The archive keeps every snapshot that is still young enough to matter for
// blame evaluation (the Delta admission window plus slack) and answers the
// query the blame engine needs: all probe results covering a set of links
// around a point in time, with provenance.
//
// Admission is the first evidence-integrity defense: a snapshot whose epoch
// regressed against the origin's newest archived epoch is a replay, and one
// that took implausibly long to arrive is stale -- both are rejected before
// they can weigh on any blame computation.  Retention is enforced on the
// query path as well as on insert, and a per-origin cap bounds what any
// single (possibly hostile) origin can pin in memory.

#pragma once

#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/blame.h"
#include "tomography/snapshot.h"
#include "util/ids.h"
#include "util/time.h"

namespace concilium::runtime {

/// Outcome of SnapshotArchive::add.
enum class ArchiveAdd {
    kArchived,
    kRejectedStale,  ///< probed_at implausibly far behind delivery time
    kRejectedEpoch,  ///< epoch did not advance past the origin's newest
};

class SnapshotArchive {
  public:
    /// retention: snapshots older than now - retention are pruned on insert
    /// and filtered out of queries.
    /// max_transit: a snapshot delivered more than this after its probed_at
    /// is rejected as stale (honest dissemination takes control-latency plus
    /// bounded retries; a replayed snapshot arrives rounds late).
    /// max_per_origin: newest-wins cap on archived snapshots per origin.
    explicit SnapshotArchive(util::SimTime retention = 10 * util::kMinute,
                             util::SimTime max_transit = util::kMinute,
                             std::size_t max_per_origin = 64)
        : retention_(retention), max_transit_(max_transit),
          max_per_origin_(max_per_origin) {}

    /// Archives a snapshot (assumed already signature-checked by the caller;
    /// un-verifiable snapshots never reach the archive).  Epoch-0 snapshots
    /// skip the replay check (unversioned test inputs); the staleness check
    /// always applies.
    ArchiveAdd add(tomography::TomographicSnapshot snapshot,
                   util::SimTime now);

    /// The archived snapshot from `origin` with exactly this (non-zero)
    /// epoch, or nullptr.  The lookup behind cross-peer digest comparison:
    /// two peers holding different payloads for the same (origin, epoch)
    /// have caught an equivocator.
    [[nodiscard]] const tomography::TomographicSnapshot* find(
        const util::NodeId& origin, std::uint64_t epoch) const;

    /// All archived probe results covering any link in `links`, initiated in
    /// [t - delta, t + delta] (and never older than t - retention).  Results
    /// from `exclude` are skipped -- the caller passes the judged node per
    /// Section 3.4's self-probe rule.
    [[nodiscard]] std::vector<core::ProbeResult> probes_for(
        std::span<const net::LinkId> links, util::SimTime t,
        util::SimTime delta, const util::NodeId& exclude) const;

    /// The archived snapshots from one origin, oldest first (used as signed
    /// evidence when building accusations).
    [[nodiscard]] std::vector<const tomography::TomographicSnapshot*>
    snapshots_from(const util::NodeId& origin) const;

    /// Snapshots (from any origin) whose probes fall inside the window and
    /// touch the given links; this is exactly the evidence bundle a formal
    /// accusation must carry.  Like probes_for, the retention horizon is
    /// enforced on this query path too.
    [[nodiscard]] std::vector<tomography::TomographicSnapshot>
    evidence_for(std::span<const net::LinkId> links, util::SimTime t,
                 util::SimTime delta, const util::NodeId& exclude) const;

    [[nodiscard]] std::size_t size() const noexcept { return count_; }

  private:
    void prune(util::SimTime now);
    /// The effective lower admission bound for a query anchored at `t`.
    [[nodiscard]] util::SimTime query_horizon(util::SimTime t,
                                              util::SimTime delta) const;

    util::SimTime retention_;
    util::SimTime max_transit_;
    std::size_t max_per_origin_;
    std::unordered_map<util::NodeId, std::deque<tomography::TomographicSnapshot>,
                       util::NodeIdHash>
        by_origin_;
    /// Highest epoch archived per origin (replay floor).
    std::unordered_map<util::NodeId, std::uint64_t, util::NodeIdHash>
        newest_epoch_;
    std::size_t count_ = 0;
};

}  // namespace concilium::runtime
