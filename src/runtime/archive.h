// Per-node snapshot archive.
//
// "Regardless, the node archives H's snapshot.  As the node receives
// snapshots from other peers, it constructs a distributed view of the
// forwarding paths emanating from its routing peers and the quality of IP
// links in these paths." (Section 3.2)
//
// The archive keeps every snapshot that is still young enough to matter for
// blame evaluation (the Delta admission window plus slack) and answers the
// query the blame engine needs: all probe results covering a set of links
// around a point in time, with provenance.
//
// Admission is the first evidence-integrity defense: a snapshot whose epoch
// regressed against the origin's newest archived epoch is a replay, and one
// that took implausibly long to arrive is stale -- both are rejected before
// they can weigh on any blame computation.  Retention is enforced on the
// query path as well as on insert, and a per-origin cap bounds what any
// single (possibly hostile) origin can pin in memory.
//
// Storage is index-addressed: origins resolve once to a dense slot at the
// admission boundary, and per-origin state lives in parallel
// structure-of-arrays tables.  A compact per-entry Meta row (epoch, interned
// payload digest, probe time) serves the scanning queries -- epoch lookups
// and cross-peer digest comparison never touch the snapshot payloads
// themselves.  Pruning is throttled to a fraction of the retention window
// instead of running a full scan on every insert; queries enforce the
// retention horizon exactly either way.

#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/blame.h"
#include "tomography/snapshot.h"
#include "util/arena.h"
#include "util/ids.h"
#include "util/time.h"

namespace concilium::runtime {

/// Outcome of SnapshotArchive::add.
enum class ArchiveAdd {
    kArchived,
    kRejectedStale,  ///< probed_at implausibly far behind delivery time
    kRejectedEpoch,  ///< epoch did not advance past the origin's newest
};

class SnapshotArchive {
  public:
    using DigestId = util::DigestInterner::Id;

    /// retention: snapshots older than now - retention are pruned on insert
    /// and filtered out of queries.
    /// max_transit: a snapshot delivered more than this after its probed_at
    /// is rejected as stale (honest dissemination takes control-latency plus
    /// bounded retries; a replayed snapshot arrives rounds late).
    /// max_per_origin: newest-wins cap on archived snapshots per origin.
    explicit SnapshotArchive(util::SimTime retention = 10 * util::kMinute,
                             util::SimTime max_transit = util::kMinute,
                             std::size_t max_per_origin = 64)
        : retention_(retention), max_transit_(max_transit),
          max_per_origin_(max_per_origin) {}

    /// Points this archive at a digest interner shared across the cluster,
    /// so digest ids are comparable between different peers' archives (the
    /// equivocation fast path).  Entries archived without an interner carry
    /// no digest id.
    void bind_interner(util::DigestInterner* interner) noexcept {
        interner_ = interner;
    }

    /// Archives a snapshot (assumed already signature-checked by the caller;
    /// un-verifiable snapshots never reach the archive).  Epoch-0 snapshots
    /// skip the replay check (unversioned test inputs); the staleness check
    /// always applies.  `digest_id` is the interned id of the snapshot's
    /// signed payload when the caller already computed it (publication
    /// interns once; deliveries reuse it); pass kInvalidId to let the
    /// archive intern, or to skip digest bookkeeping entirely when no
    /// interner is bound.
    ArchiveAdd add(tomography::TomographicSnapshot snapshot, util::SimTime now,
                   DigestId digest_id = util::DigestInterner::kInvalidId);

    /// The archived snapshot from `origin` with exactly this (non-zero)
    /// epoch, or nullptr.  The lookup behind cross-peer digest comparison:
    /// two peers holding different payloads for the same (origin, epoch)
    /// have caught an equivocator.
    [[nodiscard]] const tomography::TomographicSnapshot* find(
        const util::NodeId& origin, std::uint64_t epoch) const;

    /// The interned payload-digest id archived for (origin, epoch), or
    /// kInvalidId when absent.  Two peers returning different valid ids for
    /// the same (origin, epoch) hold conflicting payloads -- the cheap
    /// first-pass equivocation test that avoids re-serializing snapshots.
    [[nodiscard]] DigestId digest_of(const util::NodeId& origin,
                                     std::uint64_t epoch) const;

    /// All archived probe results covering any link in `links`, initiated in
    /// [t - delta, t + delta] (and never older than t - retention).  Results
    /// from `exclude` are skipped -- the caller passes the judged node per
    /// Section 3.4's self-probe rule.
    [[nodiscard]] std::vector<core::ProbeResult> probes_for(
        std::span<const net::LinkId> links, util::SimTime t,
        util::SimTime delta, const util::NodeId& exclude) const;

    /// The archived snapshots from one origin, oldest first (used as signed
    /// evidence when building accusations).
    [[nodiscard]] std::vector<const tomography::TomographicSnapshot*>
    snapshots_from(const util::NodeId& origin) const;

    /// Snapshots (from any origin) whose probes fall inside the window and
    /// touch the given links; this is exactly the evidence bundle a formal
    /// accusation must carry.  Like probes_for, the retention horizon is
    /// enforced on this query path too.
    [[nodiscard]] std::vector<tomography::TomographicSnapshot>
    evidence_for(std::span<const net::LinkId> links, util::SimTime t,
                 util::SimTime delta, const util::NodeId& exclude) const;

    [[nodiscard]] std::size_t size() const noexcept { return count_; }

  private:
    /// Compact per-entry row for the scanning queries; parallel to snaps.
    struct Meta {
        std::uint64_t epoch = 0;
        util::SimTime probed_at = 0;
        DigestId digest = util::DigestInterner::kInvalidId;
    };
    /// One origin's dense slot: parallel snapshot/meta queues plus the
    /// replay floor, which survives pruning and eviction.
    struct OriginTable {
        util::NodeId origin;
        std::deque<tomography::TomographicSnapshot> snaps;
        std::deque<Meta> meta;
        std::uint64_t newest_epoch = 0;
    };

    void prune(util::SimTime now);
    /// The effective lower admission bound for a query anchored at `t`.
    [[nodiscard]] util::SimTime query_horizon(util::SimTime t,
                                              util::SimTime delta) const;
    [[nodiscard]] const OriginTable* table_of(const util::NodeId& origin) const;

    util::SimTime retention_;
    util::SimTime max_transit_;
    std::size_t max_per_origin_;
    std::vector<OriginTable> origins_;  // dense, first-admission order
    /// NodeId -> slot, resolved once at the admission/query boundary.
    std::unordered_map<util::NodeId, std::uint32_t, util::NodeIdHash>
        slot_of_;  // hot-path-lint: boundary
    util::DigestInterner* interner_ = nullptr;
    /// Simulation time starts at zero, so zero means "never pruned".
    util::SimTime last_prune_ = 0;
    std::size_t count_ = 0;
};

}  // namespace concilium::runtime
