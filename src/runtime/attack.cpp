#include "runtime/attack.h"

#include <algorithm>
#include <cmath>

#include "util/metrics.h"
#include "util/rate_spec.h"

namespace concilium::runtime {

namespace {

// Parse-order table; also the canonical to_string() order.
constexpr util::RateSpecKind kKinds[] = {
    {static_cast<std::size_t>(AttackKind::kEquivocate), "equivocate"},
    {static_cast<std::size_t>(AttackKind::kReplay), "replay"},
    {static_cast<std::size_t>(AttackKind::kSlander), "slander"},
    {static_cast<std::size_t>(AttackKind::kSpam), "spam"},
    {static_cast<std::size_t>(AttackKind::kCollude), "collude"},
};

void assign_role(NodeBehavior& b, AttackKind kind) {
    switch (kind) {
        case AttackKind::kEquivocate:
            b.equivocate_snapshots = true;
            b.drop_forward_probability = 1.0;
            break;
        case AttackKind::kReplay:
            b.replay_snapshots = true;
            b.drop_forward_probability = 1.0;
            break;
        case AttackKind::kSlander:
            b.slander = true;
            break;
        case AttackKind::kSpam:
            b.spam_accusations = true;
            break;
        case AttackKind::kCollude:
            b.collude_revisions = true;
            b.drop_forward_probability = 1.0;
            break;
        case AttackKind::kCount_:
            break;
    }
}

}  // namespace

std::string_view to_string(AttackKind kind) {
    for (const util::RateSpecKind& k : kKinds) {
        if (k.slot == static_cast<std::size_t>(kind)) return k.name;
    }
    return "?";
}

AttackCampaign AttackCampaign::parse(std::string_view text) {
    AttackCampaign campaign;
    util::parse_rate_spec(text, "--attack", "attack", kKinds,
                          campaign.rates_);
    return campaign;
}

void AttackCampaign::set_rate(AttackKind kind, double rate) {
    util::check_rate_bounds("--attack", rate);
    rates_[static_cast<std::size_t>(kind)] = rate;
}

bool AttackCampaign::empty() const noexcept {
    for (const double r : rates_) {
        if (r != 0.0) return false;
    }
    return true;
}

AttackCampaign AttackCampaign::scaled(double factor) const {
    AttackCampaign out;
    for (std::size_t i = 0; i < static_cast<std::size_t>(AttackKind::kCount_);
         ++i) {
        out.rates_[i] = std::min(1.0, rates_[i] * factor);
    }
    return out;
}

std::string AttackCampaign::to_string() const {
    return util::format_rate_spec(kKinds, rates_);
}

std::vector<NodeBehavior> materialize_attackers(const AttackCampaign& campaign,
                                                std::size_t node_count,
                                                util::Rng& rng) {
    auto& registry = util::metrics::Registry::global();
    static auto& recruited = registry.counter("attack.nodes_recruited");

    std::vector<NodeBehavior> behaviors(node_count);
    if (campaign.empty() || node_count == 0) return behaviors;

    // Not-yet-recruited pool; roles are exclusive, so each pick removes the
    // node from further recruitment.
    std::vector<std::size_t> pool(node_count);
    for (std::size_t i = 0; i < node_count; ++i) pool[i] = i;

    for (const AttackKind kind :
         {AttackKind::kEquivocate, AttackKind::kReplay, AttackKind::kSlander,
          AttackKind::kSpam, AttackKind::kCollude}) {
        const double rate = campaign.rate(kind);
        if (rate <= 0.0) continue;
        auto want = static_cast<std::size_t>(
            std::llround(rate * static_cast<double>(node_count)));
        // A non-zero rate recruits at least one node: tiny worlds should
        // still see the attack the spec asked for.
        want = std::max<std::size_t>(want, 1);
        want = std::min(want, pool.size());
        for (std::size_t n = 0; n < want; ++n) {
            const std::size_t pick = rng.uniform_index(pool.size());
            assign_role(behaviors[pool[pick]], kind);
            recruited.add(1);
            pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
        }
        if (pool.empty()) break;
    }
    return behaviors;
}

}  // namespace concilium::runtime
