#include "runtime/attack.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/metrics.h"

namespace concilium::runtime {

namespace {

struct KindName {
    AttackKind kind;
    std::string_view name;
};

// Parse-order table; also the canonical to_string() order.
constexpr KindName kKinds[] = {
    {AttackKind::kEquivocate, "equivocate"},
    {AttackKind::kReplay, "replay"},
    {AttackKind::kSlander, "slander"},
    {AttackKind::kSpam, "spam"},
    {AttackKind::kCollude, "collude"},
};

[[noreturn]] void bad_spec(const std::string& what) {
    throw std::invalid_argument("--attack: " + what);
}

std::string known_kinds() {
    std::string out;
    for (const KindName& k : kKinds) {
        if (!out.empty()) out += ", ";
        out += k.name;
    }
    return out;
}

/// Strict [0, 1] rate parse; rejects empty text, trailing junk, and
/// non-finite values (strtod alone would accept "1e3x" prefixes or "nan").
double parse_rate(std::string_view kind, std::string_view text) {
    const std::string owned(text);
    if (owned.empty()) {
        bad_spec("attack '" + std::string(kind) + "' has an empty rate");
    }
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size() || !std::isfinite(value)) {
        bad_spec("attack '" + std::string(kind) + "' has a malformed rate '" +
                 owned + "'");
    }
    if (value < 0.0 || value > 1.0) {
        bad_spec("attack '" + std::string(kind) + "' rate " + owned +
                 " is outside [0, 1]");
    }
    return value;
}

void assign_role(NodeBehavior& b, AttackKind kind) {
    switch (kind) {
        case AttackKind::kEquivocate:
            b.equivocate_snapshots = true;
            b.drop_forward_probability = 1.0;
            break;
        case AttackKind::kReplay:
            b.replay_snapshots = true;
            b.drop_forward_probability = 1.0;
            break;
        case AttackKind::kSlander:
            b.slander = true;
            break;
        case AttackKind::kSpam:
            b.spam_accusations = true;
            break;
        case AttackKind::kCollude:
            b.collude_revisions = true;
            b.drop_forward_probability = 1.0;
            break;
        case AttackKind::kCount_:
            break;
    }
}

}  // namespace

std::string_view to_string(AttackKind kind) {
    for (const KindName& k : kKinds) {
        if (k.kind == kind) return k.name;
    }
    return "?";
}

AttackCampaign AttackCampaign::parse(std::string_view text) {
    AttackCampaign campaign;
    bool seen[static_cast<std::size_t>(AttackKind::kCount_)] = {};
    while (!text.empty()) {
        const std::size_t comma = text.find(',');
        const std::string_view pair = text.substr(0, comma);
        if (comma != std::string_view::npos &&
            text.substr(comma + 1).empty()) {
            bad_spec("trailing ',' after '" + std::string(pair) + "'");
        }
        text = comma == std::string_view::npos ? std::string_view{}
                                               : text.substr(comma + 1);
        const std::size_t colon = pair.find(':');
        if (pair.empty() || colon == std::string_view::npos) {
            bad_spec("expected 'kind:rate', got '" + std::string(pair) + "'");
        }
        const std::string_view name = pair.substr(0, colon);
        const KindName* match = nullptr;
        for (const KindName& k : kKinds) {
            if (k.name == name) {
                match = &k;
                break;
            }
        }
        if (match == nullptr) {
            bad_spec("unknown attack kind '" + std::string(name) +
                     "' (known: " + known_kinds() + ")");
        }
        const auto slot = static_cast<std::size_t>(match->kind);
        if (seen[slot]) {
            bad_spec("attack '" + std::string(name) + "' given twice");
        }
        seen[slot] = true;
        campaign.rates_[slot] = parse_rate(name, pair.substr(colon + 1));
    }
    return campaign;
}

void AttackCampaign::set_rate(AttackKind kind, double rate) {
    if (!(rate >= 0.0) || rate > 1.0) {
        bad_spec("rate " + std::to_string(rate) + " is outside [0, 1]");
    }
    rates_[static_cast<std::size_t>(kind)] = rate;
}

bool AttackCampaign::empty() const noexcept {
    for (const double r : rates_) {
        if (r != 0.0) return false;
    }
    return true;
}

AttackCampaign AttackCampaign::scaled(double factor) const {
    AttackCampaign out;
    for (std::size_t i = 0; i < static_cast<std::size_t>(AttackKind::kCount_);
         ++i) {
        out.rates_[i] = std::min(1.0, rates_[i] * factor);
    }
    return out;
}

std::string AttackCampaign::to_string() const {
    std::string out;
    for (const KindName& k : kKinds) {
        const double r = rate(k.kind);
        if (r == 0.0) continue;
        if (!out.empty()) out += ',';
        char buf[48];
        std::snprintf(buf, sizeof buf, "%s:%g", std::string(k.name).c_str(),
                      r);
        out += buf;
    }
    return out;
}

std::vector<NodeBehavior> materialize_attackers(const AttackCampaign& campaign,
                                                std::size_t node_count,
                                                util::Rng& rng) {
    auto& registry = util::metrics::Registry::global();
    static auto& recruited = registry.counter("attack.nodes_recruited");

    std::vector<NodeBehavior> behaviors(node_count);
    if (campaign.empty() || node_count == 0) return behaviors;

    // Not-yet-recruited pool; roles are exclusive, so each pick removes the
    // node from further recruitment.
    std::vector<std::size_t> pool(node_count);
    for (std::size_t i = 0; i < node_count; ++i) pool[i] = i;

    for (const AttackKind kind :
         {AttackKind::kEquivocate, AttackKind::kReplay, AttackKind::kSlander,
          AttackKind::kSpam, AttackKind::kCollude}) {
        const double rate = campaign.rate(kind);
        if (rate <= 0.0) continue;
        auto want = static_cast<std::size_t>(
            std::llround(rate * static_cast<double>(node_count)));
        // A non-zero rate recruits at least one node: tiny worlds should
        // still see the attack the spec asked for.
        want = std::max<std::size_t>(want, 1);
        want = std::min(want, pool.size());
        for (std::size_t n = 0; n < want; ++n) {
            const std::size_t pick = rng.uniform_index(pool.size());
            assign_role(behaviors[pool[pick]], kind);
            recruited.add(1);
            pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
        }
        if (pool.empty()) break;
    }
    return behaviors;
}

}  // namespace concilium::runtime
