#include "runtime/archive.h"

#include <algorithm>

namespace concilium::runtime {

ArchiveAdd SnapshotArchive::add(tomography::TomographicSnapshot snapshot,
                                util::SimTime now) {
    if (now - snapshot.probed_at > max_transit_) {
        return ArchiveAdd::kRejectedStale;
    }
    if (snapshot.epoch != 0) {
        const auto it = newest_epoch_.find(snapshot.origin);
        if (it != newest_epoch_.end() && snapshot.epoch <= it->second) {
            return ArchiveAdd::kRejectedEpoch;
        }
        newest_epoch_[snapshot.origin] = snapshot.epoch;
    }
    auto& queue = by_origin_[snapshot.origin];
    queue.push_back(std::move(snapshot));
    ++count_;
    while (queue.size() > max_per_origin_) {
        queue.pop_front();
        --count_;
    }
    prune(now);
    return ArchiveAdd::kArchived;
}

void SnapshotArchive::prune(util::SimTime now) {
    const util::SimTime horizon = now - retention_;
    for (auto& [origin, queue] : by_origin_) {
        while (!queue.empty() && queue.front().probed_at < horizon) {
            queue.pop_front();
            --count_;
        }
    }
}

const tomography::TomographicSnapshot* SnapshotArchive::find(
    const util::NodeId& origin, std::uint64_t epoch) const {
    if (epoch == 0) return nullptr;
    const auto it = by_origin_.find(origin);
    if (it == by_origin_.end()) return nullptr;
    for (const auto& snap : it->second) {
        if (snap.epoch == epoch) return &snap;
    }
    return nullptr;
}

util::SimTime SnapshotArchive::query_horizon(util::SimTime t,
                                             util::SimTime delta) const {
    // The window is [t - delta, t + delta], but never reaches further back
    // than the retention promise: a caller passing a huge delta must not
    // resurrect evidence that insert-time pruning merely hasn't visited yet.
    return std::max(t - delta, t - retention_);
}

std::vector<core::ProbeResult> SnapshotArchive::probes_for(
    std::span<const net::LinkId> links, util::SimTime t, util::SimTime delta,
    const util::NodeId& exclude) const {
    const util::SimTime lo = query_horizon(t, delta);
    std::vector<core::ProbeResult> out;
    for (const auto& [origin, queue] : by_origin_) {
        if (origin == exclude) continue;
        for (const auto& snap : queue) {
            if (snap.probed_at < lo || snap.probed_at > t + delta) {
                continue;
            }
            for (const auto& obs : snap.links) {
                if (std::find(links.begin(), links.end(), obs.link) ==
                    links.end()) {
                    continue;
                }
                out.push_back(core::ProbeResult{origin, obs.link, obs.up,
                                                snap.probed_at});
            }
        }
    }
    return out;
}

std::vector<const tomography::TomographicSnapshot*>
SnapshotArchive::snapshots_from(const util::NodeId& origin) const {
    std::vector<const tomography::TomographicSnapshot*> out;
    const auto it = by_origin_.find(origin);
    if (it == by_origin_.end()) return out;
    for (const auto& snap : it->second) out.push_back(&snap);
    return out;
}

std::vector<tomography::TomographicSnapshot> SnapshotArchive::evidence_for(
    std::span<const net::LinkId> links, util::SimTime t, util::SimTime delta,
    const util::NodeId& exclude) const {
    const util::SimTime lo = query_horizon(t, delta);
    std::vector<tomography::TomographicSnapshot> out;
    for (const auto& [origin, queue] : by_origin_) {
        if (origin == exclude) continue;
        for (const auto& snap : queue) {
            if (snap.probed_at < lo || snap.probed_at > t + delta) {
                continue;
            }
            const bool touches = std::any_of(
                snap.links.begin(), snap.links.end(),
                [&](const tomography::LinkObservation& obs) {
                    return std::find(links.begin(), links.end(), obs.link) !=
                           links.end();
                });
            if (touches) out.push_back(snap);
        }
    }
    return out;
}

}  // namespace concilium::runtime
