#include "runtime/archive.h"

#include <algorithm>

namespace concilium::runtime {

ArchiveAdd SnapshotArchive::add(tomography::TomographicSnapshot snapshot,
                                util::SimTime now, DigestId digest_id) {
    if (now - snapshot.probed_at > max_transit_) {
        return ArchiveAdd::kRejectedStale;
    }
    OriginTable* table = nullptr;
    const auto it = slot_of_.find(snapshot.origin);
    if (it != slot_of_.end()) table = &origins_[it->second];
    if (snapshot.epoch != 0 && table != nullptr &&
        snapshot.epoch <= table->newest_epoch) {
        return ArchiveAdd::kRejectedEpoch;
    }
    if (table == nullptr) {
        slot_of_.emplace(snapshot.origin,
                         static_cast<std::uint32_t>(origins_.size()));
        origins_.push_back(OriginTable{snapshot.origin, {}, {}, 0});
        table = &origins_.back();
    }
    if (snapshot.epoch != 0) table->newest_epoch = snapshot.epoch;

    if (digest_id == util::DigestInterner::kInvalidId && interner_ != nullptr) {
        const auto payload = snapshot.signed_payload();
        digest_id = interner_->intern(
            util::digest_bytes({payload.data(), payload.size()}));
    }
    table->meta.push_back(
        Meta{snapshot.epoch, snapshot.probed_at, digest_id});
    table->snaps.push_back(std::move(snapshot));
    ++count_;
    while (table->snaps.size() > max_per_origin_) {
        table->snaps.pop_front();
        table->meta.pop_front();
        --count_;
    }
    // Throttled reclamation: a full prune per insert was a measured hotspot
    // at --full scale, and queries enforce the horizon regardless.
    if (now - last_prune_ >= retention_ / 8) {
        prune(now);
        last_prune_ = now;
    }
    return ArchiveAdd::kArchived;
}

void SnapshotArchive::prune(util::SimTime now) {
    const util::SimTime horizon = now - retention_;
    for (auto& table : origins_) {
        while (!table.meta.empty() && table.meta.front().probed_at < horizon) {
            table.snaps.pop_front();
            table.meta.pop_front();
            --count_;
        }
    }
}

const SnapshotArchive::OriginTable* SnapshotArchive::table_of(
    const util::NodeId& origin) const {
    const auto it = slot_of_.find(origin);
    return it == slot_of_.end() ? nullptr : &origins_[it->second];
}

const tomography::TomographicSnapshot* SnapshotArchive::find(
    const util::NodeId& origin, std::uint64_t epoch) const {
    if (epoch == 0) return nullptr;
    const OriginTable* table = table_of(origin);
    if (table == nullptr) return nullptr;
    // Scan newest-first over the compact meta rows; recent epochs are the
    // common probe.
    for (std::size_t i = table->meta.size(); i-- > 0;) {
        if (table->meta[i].epoch == epoch) return &table->snaps[i];
    }
    return nullptr;
}

SnapshotArchive::DigestId SnapshotArchive::digest_of(
    const util::NodeId& origin, std::uint64_t epoch) const {
    if (epoch == 0) return util::DigestInterner::kInvalidId;
    const OriginTable* table = table_of(origin);
    if (table == nullptr) return util::DigestInterner::kInvalidId;
    for (std::size_t i = table->meta.size(); i-- > 0;) {
        if (table->meta[i].epoch == epoch) return table->meta[i].digest;
    }
    return util::DigestInterner::kInvalidId;
}

util::SimTime SnapshotArchive::query_horizon(util::SimTime t,
                                             util::SimTime delta) const {
    // The window is [t - delta, t + delta], but never reaches further back
    // than the retention promise: a caller passing a huge delta must not
    // resurrect evidence that insert-time pruning merely hasn't visited yet.
    return std::max(t - delta, t - retention_);
}

std::vector<core::ProbeResult> SnapshotArchive::probes_for(
    std::span<const net::LinkId> links, util::SimTime t, util::SimTime delta,
    const util::NodeId& exclude) const {
    const util::SimTime lo = query_horizon(t, delta);
    std::vector<core::ProbeResult> out;
    for (const auto& table : origins_) {
        if (table.origin == exclude) continue;
        for (std::size_t i = 0; i < table.meta.size(); ++i) {
            const util::SimTime at = table.meta[i].probed_at;
            if (at < lo || at > t + delta) continue;
            for (const auto& obs : table.snaps[i].links) {
                if (std::find(links.begin(), links.end(), obs.link) ==
                    links.end()) {
                    continue;
                }
                out.push_back(
                    core::ProbeResult{table.origin, obs.link, obs.up, at});
            }
        }
    }
    return out;
}

std::vector<const tomography::TomographicSnapshot*>
SnapshotArchive::snapshots_from(const util::NodeId& origin) const {
    std::vector<const tomography::TomographicSnapshot*> out;
    const OriginTable* table = table_of(origin);
    if (table == nullptr) return out;
    for (const auto& snap : table->snaps) out.push_back(&snap);
    return out;
}

std::vector<tomography::TomographicSnapshot> SnapshotArchive::evidence_for(
    std::span<const net::LinkId> links, util::SimTime t, util::SimTime delta,
    const util::NodeId& exclude) const {
    const util::SimTime lo = query_horizon(t, delta);
    std::vector<tomography::TomographicSnapshot> out;
    for (const auto& table : origins_) {
        if (table.origin == exclude) continue;
        for (std::size_t i = 0; i < table.meta.size(); ++i) {
            const util::SimTime at = table.meta[i].probed_at;
            if (at < lo || at > t + delta) continue;
            const auto& snap = table.snaps[i];
            const bool touches = std::any_of(
                snap.links.begin(), snap.links.end(),
                [&](const tomography::LinkObservation& obs) {
                    return std::find(links.begin(), links.end(), obs.link) !=
                           links.end();
                });
            if (touches) out.push_back(snap);
        }
    }
    return out;
}

}  // namespace concilium::runtime
