#include "runtime/journal.h"

#include <algorithm>

#include "util/serialize.h"

namespace concilium::runtime {

namespace {

// Domain-separation tags: announcement and handoff payloads must never be
// valid signatures for each other (or for any other signed artifact).
constexpr std::string_view kAnnouncementTag = "concilium.recovery.announce";
constexpr std::string_view kHandoffTag = "concilium.recovery.handoff";

}  // namespace

std::vector<std::uint8_t> RecoveryAnnouncement::signed_payload() const {
    util::ByteWriter w;
    w.str(kAnnouncementTag);
    w.node_id(node);
    w.u64(incarnation);
    w.i64(crashed_at);
    w.i64(restarted_at);
    return w.data();
}

RecoveryAnnouncement make_recovery_announcement(
    const util::NodeId& node, std::uint64_t incarnation,
    util::SimTime crashed_at, util::SimTime restarted_at,
    const crypto::KeyPair& node_keys) {
    RecoveryAnnouncement a;
    a.node = node;
    a.incarnation = incarnation;
    a.crashed_at = crashed_at;
    a.restarted_at = restarted_at;
    a.signature = node_keys.sign(a.signed_payload());
    return a;
}

bool verify_recovery_announcement(const RecoveryAnnouncement& announcement,
                                  const crypto::PublicKey& node_key,
                                  const crypto::KeyRegistry& registry) {
    return announcement.crashed_at <= announcement.restarted_at &&
           registry.verify(node_key, announcement.signed_payload(),
                           announcement.signature);
}

std::vector<std::uint8_t> StewardHandoff::signed_payload() const {
    util::ByteWriter w;
    w.str(kHandoffTag);
    w.node_id(steward);
    w.u64(message_id);
    w.u64(hop);
    w.i64(crashed_at);
    w.i64(restarted_at);
    return w.data();
}

StewardHandoff make_steward_handoff(const util::NodeId& steward,
                                    std::uint64_t message_id,
                                    std::uint64_t hop,
                                    util::SimTime crashed_at,
                                    util::SimTime restarted_at,
                                    const crypto::KeyPair& steward_keys) {
    StewardHandoff h;
    h.steward = steward;
    h.message_id = message_id;
    h.hop = hop;
    h.crashed_at = crashed_at;
    h.restarted_at = restarted_at;
    h.signature = steward_keys.sign(h.signed_payload());
    return h;
}

bool verify_steward_handoff(const StewardHandoff& handoff,
                            const crypto::PublicKey& steward_key,
                            const crypto::KeyRegistry& registry) {
    return handoff.crashed_at <= handoff.restarted_at &&
           registry.verify(steward_key, handoff.signed_payload(),
                           handoff.signature);
}

void NodeJournal::record_epoch(std::uint64_t next_epoch) {
    Entry e;
    e.kind = EntryKind::kEpoch;
    e.value = next_epoch;
    entries_.push_back(std::move(e));
}

void NodeJournal::record_verdict(const util::NodeId& suspect, bool guilty,
                                 util::SimTime at) {
    Entry e;
    e.kind = EntryKind::kVerdict;
    e.peer = suspect;
    e.guilty = guilty;
    e.at = at;
    entries_.push_back(std::move(e));
}

void NodeJournal::record_retraction(const util::NodeId& suspect,
                                    util::SimTime from, util::SimTime to) {
    Entry e;
    e.kind = EntryKind::kRetraction;
    e.peer = suspect;
    e.at = from;
    e.until = to;
    entries_.push_back(std::move(e));
}

void NodeJournal::record_steward_open(
    std::uint64_t message_id, std::uint64_t hop, util::SimTime at,
    std::optional<core::ForwardingCommitment> commitment) {
    Entry e;
    e.kind = EntryKind::kStewardOpen;
    e.value = message_id;
    e.hop = hop;
    e.at = at;
    e.commitment = std::move(commitment);
    entries_.push_back(std::move(e));
}

void NodeJournal::record_steward_close(std::uint64_t message_id,
                                       std::uint64_t hop) {
    Entry e;
    e.kind = EntryKind::kStewardClose;
    e.value = message_id;
    e.hop = hop;
    entries_.push_back(std::move(e));
}

void NodeJournal::record_vote(const util::NodeId& subject, util::SimTime at) {
    Entry e;
    e.kind = EntryKind::kVote;
    e.peer = subject;
    e.at = at;
    entries_.push_back(std::move(e));
}

void NodeJournal::record_restart(util::SimTime at) {
    Entry e;
    e.kind = EntryKind::kRestart;
    e.at = at;
    entries_.push_back(std::move(e));
}

NodeJournal::RecoveredState NodeJournal::replay(int verdict_window) const {
    RecoveredState state;
    const auto cap = static_cast<std::size_t>(std::max(verdict_window, 1));

    // Suspects and commitment issuers stay in first-seen order: the fold
    // never consults a hash map's iteration order, so two replays of the
    // same log -- in any process, at any worker count -- agree bytewise.
    const auto window_of = [&](const util::NodeId& suspect)
        -> core::VerdictLedger::WindowSnapshot& {
        for (auto& w : state.windows) {
            if (w.suspect == suspect) return w;
        }
        state.windows.push_back({suspect, {}});
        return state.windows.back();
    };

    for (const Entry& e : entries_) {
        switch (e.kind) {
            case EntryKind::kEpoch:
                state.next_epoch = std::max(state.next_epoch, e.value);
                break;
            case EntryKind::kVerdict: {
                auto& win = window_of(e.peer);
                win.entries.push_back({e.guilty, e.at});
                if (win.entries.size() > cap) {
                    win.entries.erase(win.entries.begin());
                }
                break;
            }
            case EntryKind::kRetraction: {
                auto& win = window_of(e.peer);
                for (auto& v : win.entries) {
                    if (v.guilty && v.at >= e.at && v.at <= e.until) {
                        v.guilty = false;
                    }
                }
                break;
            }
            case EntryKind::kStewardOpen: {
                JournaledStewardship s;
                s.message_id = e.value;
                s.hop = e.hop;
                s.forwarded_at = e.at;
                s.commitment = e.commitment;
                state.open_stewardships.push_back(std::move(s));
                if (e.commitment.has_value()) {
                    const util::NodeId& issuer = e.commitment->forwarder;
                    bool replaced = false;
                    for (auto& [id, c] : state.collected) {
                        if (id == issuer) {
                            c = *e.commitment;
                            replaced = true;
                            break;
                        }
                    }
                    if (!replaced) {
                        state.collected.emplace_back(issuer, *e.commitment);
                    }
                }
                break;
            }
            case EntryKind::kStewardClose: {
                auto& open = state.open_stewardships;
                open.erase(std::remove_if(
                               open.begin(), open.end(),
                               [&](const JournaledStewardship& s) {
                                   return s.message_id == e.value &&
                                          s.hop == e.hop;
                               }),
                           open.end());
                break;
            }
            case EntryKind::kVote:
                state.votes.emplace_back(e.peer, e.at);
                break;
            case EntryKind::kRestart:
                ++state.incarnations;
                break;
        }
    }
    return state;
}

}  // namespace concilium::runtime
