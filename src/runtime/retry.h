// Bounded retry with exponential backoff and jitter.
//
// The protocol runtime retries two kinds of exchanges when chaos makes the
// network lossy: steward retransmission of an unacknowledged message before
// judgment, and signed-snapshot delivery to routing peers.  Both use this
// policy: attempt k (1-based) waits base_delay * multiplier^(k-1), capped
// at max_delay, then jittered by a uniform +/- jitter_fraction so repeated
// failures from many nodes do not synchronize into retry storms.
//
// Delays are computed in simulated time from a caller-supplied util::Rng,
// so the whole retry schedule is deterministic given the seed: tests drive
// it against net::EventSim as a fake clock and assert exact firing times.

#pragma once

#include "util/rng.h"
#include "util/time.h"

namespace concilium::runtime {

struct RetryPolicy {
    /// Total tries including the first (1 = never retry).
    int max_attempts = 1;
    util::SimTime base_delay = 500 * util::kMillisecond;
    double multiplier = 2.0;
    /// Uniform jitter of +/- this fraction around the nominal delay.
    double jitter_fraction = 0.1;
    util::SimTime max_delay = 8 * util::kSecond;

    /// True when `next_attempt` (1-based; the first retry is attempt 2) is
    /// still within budget.
    [[nodiscard]] bool allows(int next_attempt) const noexcept {
        return next_attempt <= max_attempts;
    }

    /// Backoff before retry `next_attempt` (>= 2): exponential in the
    /// retry index, capped, then jittered.  Always at least one
    /// microsecond, so a scheduled retry never fires in the same event as
    /// the failure that caused it.
    [[nodiscard]] util::SimTime delay_before(int next_attempt,
                                             util::Rng& rng) const;
};

}  // namespace concilium::runtime
