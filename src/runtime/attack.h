// Byzantine attack campaigns against evidence integrity.
//
// PR 3's chaos layer misbehaves at the *environment* level; this module
// misbehaves at the *peer* level, exercising exactly the adversary of
// Sections 3.2-3.5: nodes that lie in signed snapshots, replay stale ones,
// fabricate accusations and revision chains, and flood the accusation
// repository.  A campaign is parsed from a strict `--attack` spec mirroring
// net::FaultSpec ("equivocate:0.05,replay:0.1,..."), where each rate is the
// fraction of overlay nodes recruited into that role; materialization
// assigns exclusive roles deterministically from an Rng substream.
//
// Per-node misbehaviour (both the Section 3.3 classics and the campaign
// roles) is configured through NodeBehavior, consumed by runtime::Cluster.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace concilium::runtime {

struct NodeBehavior {
    /// Silently drop messages this node should forward (the core fault
    /// Concilium diagnoses).
    double drop_forward_probability = 0.0;
    /// Invert the link verdicts in published snapshots (Section 3.3's most
    /// damaging leaf strategy: answer others' probes correctly, misreport
    /// one's own results).
    bool flip_probe_reports = false;
    /// Probability of suppressing the acknowledgment of a received probe.
    double suppress_probe_acks = 0.0;
    /// Acknowledge probes that were never received (caught by nonces).
    bool fabricate_probe_acks = false;
    /// Refuse to issue forwarding commitments (Section 3.6).
    bool refuse_commitments = false;
    /// Never push guilty verdicts upstream ("They do so at their own
    /// peril", Section 3.5).
    bool refuse_revisions = false;
    /// Advertise only this fraction of the jump table (a suppression attack
    /// on routing state; 1.0 = honest).
    double advertised_table_fraction = 1.0;

    // --- campaign roles (see AttackKind) ---------------------------------
    /// Sign a different snapshot for different peers in the same probing
    /// round (caught by cross-peer digest exchange: two valid signatures
    /// over the same origin+epoch form a self-verifying proof).
    bool equivocate_snapshots = false;
    /// Re-advertise the node's oldest favorable snapshot verbatim instead
    /// of fresh results (caught by the archive's epoch/freshness checks).
    bool replay_snapshots = false;
    /// File accusations against honest peers from cherry-picked stale
    /// evidence bundles (caught by the hardened third-party verifier).
    bool slander = false;
    /// Flood the DHT with junk under a victim's accusation key (contained
    /// by per-writer quotas; readers skip malformed values).
    bool spam_accusations = false;
    /// After dropping a message, push a fabricated revision blaming the
    /// next hop (caught by sender-side revision verification).
    bool collude_revisions = false;

    /// True when any campaign role is set (for ground-truth scoring).
    [[nodiscard]] bool byzantine() const noexcept {
        return equivocate_snapshots || replay_snapshots || slander ||
               spam_accusations || collude_revisions;
    }
};

enum class AttackKind {
    kEquivocate,  ///< per-peer snapshot variants, same epoch
    kReplay,      ///< stale favorable snapshots re-advertised
    kSlander,     ///< forged accusations against honest peers
    kSpam,        ///< junk floods under a victim's accusation key
    kCollude,     ///< fabricated revision chains after a drop
    kCount_,
};

std::string_view to_string(AttackKind kind);

/// Per-role recruitment rates in [0, 1]: the fraction of overlay nodes
/// assigned to each role.  Parsing is strict, mirroring net::FaultSpec:
/// unknown kinds, duplicate kinds, malformed or out-of-range rates, and
/// trailing commas all throw std::invalid_argument prefixed with
/// "--attack:".
class AttackCampaign {
  public:
    static AttackCampaign parse(std::string_view text);

    [[nodiscard]] double rate(AttackKind kind) const noexcept {
        return rates_[static_cast<std::size_t>(kind)];
    }
    void set_rate(AttackKind kind, double rate);
    [[nodiscard]] bool empty() const noexcept;
    /// Rates multiplied by `factor`, clamped to 1.
    [[nodiscard]] AttackCampaign scaled(double factor) const;
    /// Canonical spec text (kinds in declaration order, zero rates
    /// omitted); parse(to_string()) round-trips.
    [[nodiscard]] std::string to_string() const;

  private:
    double rates_[static_cast<std::size_t>(AttackKind::kCount_)] = {};
};

/// Draws the campaign's attacker assignment for an overlay of `node_count`
/// members: per kind (in declaration order), round(rate * node_count) nodes
/// are recruited uniformly without replacement; roles are exclusive.
/// Equivocators, replayers, and colluders also drop every message they
/// should forward -- their snapshot/revision lies exist to evade blame for
/// those drops.  Pure function of the Rng stream: byte-stable across
/// worker counts.
std::vector<NodeBehavior> materialize_attackers(const AttackCampaign& campaign,
                                                std::size_t node_count,
                                                util::Rng& rng);

}  // namespace concilium::runtime
