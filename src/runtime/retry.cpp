#include "runtime/retry.h"

#include <algorithm>
#include <cmath>

#include "util/metrics.h"

namespace concilium::runtime {

util::SimTime RetryPolicy::delay_before(int next_attempt,
                                        util::Rng& rng) const {
    static auto& backoff =
        util::metrics::Registry::global().histogram(
            "runtime.retry.backoff_seconds", 0.0, 16.0, 32);
    const int retries = std::max(0, next_attempt - 2);
    double nominal = static_cast<double>(base_delay) *
                     std::pow(multiplier, static_cast<double>(retries));
    nominal = std::min(nominal, static_cast<double>(max_delay));
    const double jitter =
        jitter_fraction > 0.0
            ? rng.uniform(1.0 - jitter_fraction, 1.0 + jitter_fraction)
            : 1.0;
    const auto delay = std::max<util::SimTime>(
        1, static_cast<util::SimTime>(nominal * jitter));
    backoff.observe(util::to_seconds(delay));
    return delay;
}

}  // namespace concilium::runtime
