// Durable node state for crash recovery (RECOVERY.md).
//
// The paper's protocol machinery -- strictly increasing snapshot epochs,
// sliding verdict windows, forwarding commitments, reputation votes -- all
// assumes a node's memory survives.  A crash-stop breaks that: a node that
// restarts from nothing would re-issue epoch 1 (and look like an
// equivocator to every peer holding its older signed snapshots), forget
// m-1 of the m guilty verdicts it had already issued, and silently orphan
// every message it had committed to steward.
//
// NodeJournal is the deterministic in-memory "disk" that prevents all
// three: an append-only entry log written at each state transition, folded
// back into a RecoveredState by replay() on restart.  Alongside it live
// the two signed recovery artifacts: the RecoveryAnnouncement a restarted
// node disseminates ("I was provably down in [crashed_at, restarted_at]"
// -- the statement that turns degraded-mode guilty presumptions into
// retractions), and the StewardHandoff it pushes upstream when an
// in-flight stewardship is too stale to resume.

#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/commitments.h"
#include "core/verdicts.h"
#include "crypto/keys.h"
#include "util/ids.h"
#include "util/time.h"

namespace concilium::runtime {

/// Signed by a restarted node and sent to its routing peers: the node was
/// crashed for the stated interval.  A judge that verified one retracts
/// guilty verdicts issued against the announcer inside that interval, and
/// a sender abstains from filing accusations covered by it.
struct RecoveryAnnouncement {
    util::NodeId node;
    /// Completed crash/restart cycles, 1 for the first restart; strictly
    /// increasing, so replayed announcements are recognizable.
    std::uint64_t incarnation = 0;
    util::SimTime crashed_at = 0;
    util::SimTime restarted_at = 0;
    crypto::Signature signature;  ///< by the restarted node

    [[nodiscard]] std::vector<std::uint8_t> signed_payload() const;

    /// True when `t` falls inside the announced outage.
    [[nodiscard]] bool covers(util::SimTime t) const noexcept {
        return t >= crashed_at && t <= restarted_at;
    }
};

RecoveryAnnouncement make_recovery_announcement(
    const util::NodeId& node, std::uint64_t incarnation,
    util::SimTime crashed_at, util::SimTime restarted_at,
    const crypto::KeyPair& node_keys);

bool verify_recovery_announcement(const RecoveryAnnouncement& announcement,
                                  const crypto::PublicKey& node_key,
                                  const crypto::KeyRegistry& registry);

/// Signed by a restarted steward that abandons an in-flight message
/// instead of resuming it: "I held the stewardship for message_id at hop,
/// crashed, and will never judge my next hop."  The upstream steward's
/// pending judgment of the abandoner resolves as insufficient evidence,
/// not guilt.
struct StewardHandoff {
    util::NodeId steward;
    std::uint64_t message_id = 0;
    std::uint64_t hop = 0;
    util::SimTime crashed_at = 0;
    util::SimTime restarted_at = 0;
    crypto::Signature signature;  ///< by the abandoning steward

    [[nodiscard]] std::vector<std::uint8_t> signed_payload() const;
};

StewardHandoff make_steward_handoff(const util::NodeId& steward,
                                    std::uint64_t message_id,
                                    std::uint64_t hop,
                                    util::SimTime crashed_at,
                                    util::SimTime restarted_at,
                                    const crypto::KeyPair& steward_keys);

bool verify_steward_handoff(const StewardHandoff& handoff,
                            const crypto::PublicKey& steward_key,
                            const crypto::KeyRegistry& registry);

/// One in-flight stewardship as recovered from the journal.
struct JournaledStewardship {
    std::uint64_t message_id = 0;
    std::uint64_t hop = 0;
    util::SimTime forwarded_at = 0;
    /// The commitment collected from the next hop, when one was issued.
    std::optional<core::ForwardingCommitment> commitment;
};

/// Append-only, deterministic, in-memory: the node's "disk".  The runtime
/// appends an entry at each durable state transition; replay() folds the
/// log into the state a restarted node resumes from.  No entry is ever
/// rewritten -- recovery correctness is an invariant of the fold, not of
/// the writer.
class NodeJournal {
  public:
    enum class EntryKind : std::uint8_t {
        kEpoch,         ///< snapshot epoch advanced; value = next unused
        kVerdict,       ///< verdict appended (peer = suspect)
        kRetraction,    ///< guilty verdicts withdrawn for peer in [at, until]
        kStewardOpen,   ///< forwarding stewardship went in flight
        kStewardClose,  ///< acked or judged: stewardship retired
        kVote,          ///< no-confidence vote cast (peer = subject)
        kRestart,       ///< one completed crash/restart cycle
    };

    struct Entry {
        EntryKind kind = EntryKind::kEpoch;
        std::uint64_t value = 0;  ///< epoch / message id
        std::uint64_t hop = 0;
        util::NodeId peer;  ///< suspect / vote subject
        bool guilty = false;
        util::SimTime at = 0;
        util::SimTime until = 0;  ///< kRetraction interval end
        std::optional<core::ForwardingCommitment> commitment;
    };

    void record_epoch(std::uint64_t next_epoch);
    void record_verdict(const util::NodeId& suspect, bool guilty,
                        util::SimTime at);
    void record_retraction(const util::NodeId& suspect, util::SimTime from,
                           util::SimTime to);
    void record_steward_open(std::uint64_t message_id, std::uint64_t hop,
                             util::SimTime at,
                             std::optional<core::ForwardingCommitment>
                                 commitment);
    void record_steward_close(std::uint64_t message_id, std::uint64_t hop);
    void record_vote(const util::NodeId& subject, util::SimTime at);
    void record_restart(util::SimTime at);

    [[nodiscard]] std::size_t size() const noexcept {
        return entries_.size();
    }
    [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
        return entries_;
    }

    /// Everything replay() can put back.
    struct RecoveredState {
        /// Highest journaled epoch counter (1 when never advanced): the
        /// critical checkpoint -- restarting below it would re-issue
        /// epochs peers already archived, indistinguishable from
        /// equivocation.
        std::uint64_t next_epoch = 1;
        /// Completed crash/restart cycles before this replay.
        std::uint64_t incarnations = 0;
        /// Verdict windows, trimmed to `verdict_window`, suspects in
        /// first-verdict order with retractions applied.
        std::vector<core::VerdictLedger::WindowSnapshot> windows;
        /// No-confidence votes in cast order (already shared with the
        /// reputation book; recovered for audit, not re-cast).
        std::vector<std::pair<util::NodeId, util::SimTime>> votes;
        /// Stewardships opened but never closed, in open order: the
        /// restarted node resumes or abandons each.
        std::vector<JournaledStewardship> open_stewardships;
        /// Latest commitment collected per issuing forwarder, in
        /// first-seen order.
        std::vector<std::pair<util::NodeId, core::ForwardingCommitment>>
            collected;
    };

    /// Folds the log, oldest entry first.  Pure function of the entries;
    /// deterministic across runs and worker counts.
    [[nodiscard]] RecoveredState replay(int verdict_window) const;

  private:
    std::vector<Entry> entries_;
};

}  // namespace concilium::runtime
