// Parallel experiment engine.
//
// Every figure of the evaluation is a Monte-Carlo aggregate over thousands
// of independent trials, and trials share no state: each one reads the
// (const, immutable-after-construction) Scenario and draws from its own RNG.
// ExperimentDriver owns the fan-out of those trials over a fixed-size
// worker pool and the ordered merge of their results, with two guarantees:
//
//   1. Determinism: trial i always runs with util::Rng::substream(seed, i),
//      a pure function of (seed, i), and results are merged strictly in
//      trial-index order.  The merged output is therefore byte-identical
//      for any worker count, including jobs = 1.  This extends to metric
//      counters incremented inside trials: every issued trial index is
//      fully computed on every path (results past an early merge stop are
//      discarded, not skipped), so the set of computed trials — and hence
//      every deterministic counter — is also independent of the worker
//      count.
//   2. Safety: trial callbacks run concurrently and must only read shared
//      state; the merge callback runs on the calling thread only, so
//      accumulators (util::Histogram, util::OnlineMoments, counters) need
//      no synchronization.
//
// Two shapes cover every experiment in the repo:
//
//   run(trials, trial, merge)        -- a fixed trial count, e.g. Monte
//                                       Carlo tables or per-row sweeps;
//   run_until(target, trial, merge)  -- rejection sampling: attempts are
//                                       issued in waves and merge() reports
//                                       whether each attempt was accepted,
//                                       until `target` acceptances.  The
//                                       accept/reject decision happens in
//                                       attempt order, so the accepted set
//                                       is again independent of the worker
//                                       count.
//
// Both return a RunStats (trials issued, wall/busy seconds, worker count)
// and report it to the process metrics registry (`sim.driver_*`; wall-time
// derived values land in the registry's timing section).

#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/metrics.h"
#include "util/rng.h"
#include "util/spans.h"

namespace concilium::sim {

struct DriverOptions {
    std::uint64_t seed = 1;
    /// Worker threads; 0 = std::thread::hardware_concurrency().
    std::size_t jobs = 0;
};

/// What one run()/run_until() call actually did.  `trials` counts every
/// trial index issued (for run_until, attempts including rejected and
/// discarded ones); `accepted` counts merged acceptances (== trials for
/// plain run).  Wall/busy seconds come from steady_clock and are NOT
/// deterministic; everything else is.
struct RunStats {
    std::uint64_t trials = 0;
    std::uint64_t accepted = 0;
    std::size_t jobs = 0;
    double wall_seconds = 0.0;
    /// Summed execution time of the trial callbacks across all workers.
    double busy_seconds = 0.0;

    /// Fraction of the pool's wall-clock capacity spent inside trials.
    [[nodiscard]] double utilization() const noexcept {
        const double capacity = wall_seconds * static_cast<double>(jobs);
        return capacity > 0.0 ? busy_seconds / capacity : 0.0;
    }
};

/// Publishes one run's stats to the global metrics registry.
void report_run(const RunStats& stats);

namespace detail {
util::metrics::Counter& driver_wave_counter();
util::metrics::HistogramMetric& driver_trial_seconds();
}  // namespace detail

class ExperimentDriver {
  public:
    ExperimentDriver() = default;
    explicit ExperimentDriver(DriverOptions options) : options_(options) {}
    ExperimentDriver(std::uint64_t seed, std::size_t jobs)
        : options_{seed, jobs} {}

    [[nodiscard]] std::uint64_t seed() const noexcept {
        return options_.seed;
    }

    /// The resolved worker count (never zero).
    [[nodiscard]] std::size_t jobs() const noexcept;

    /// The deterministic generator for one trial index.
    [[nodiscard]] util::Rng trial_rng(std::uint64_t trial) const {
        return util::Rng::substream(options_.seed, trial);
    }

    /// A generator for experiment setup that is disjoint from every trial
    /// substream (trial indices are dense from 0; tags live in the top
    /// half of the index space).
    [[nodiscard]] util::Rng setup_rng(std::uint64_t tag = 0) const {
        return util::Rng::substream(options_.seed,
                                    kSetupStreamBase + tag);
    }

    /// The deterministic generator for shard `shard` of trial `trial`
    /// (intra-trial sharding; see run_shards).  Disjoint from every
    /// trial_rng and setup_rng stream.  shard must be < 2^20.
    [[nodiscard]] util::Rng shard_rng(std::uint64_t trial,
                                      std::uint64_t shard) const {
        return util::Rng::substream(
            options_.seed, kShardStreamBase + (trial << 20) + shard);
    }

    /// Runs `trial(i, rng)` for i in [0, trials) across the worker pool and
    /// calls `merge(i, result)` on this thread in increasing i.
    template <typename TrialFn, typename MergeFn>
    RunStats run(std::size_t trials, TrialFn&& trial, MergeFn&& merge) const {
        const auto start = std::chrono::steady_clock::now();
        RunStats stats;
        stats.jobs = jobs();
        stats.busy_seconds = run_range(
            0, trials, [this](std::uint64_t i) { return trial_rng(i); },
            trial, [&](std::uint64_t i, auto&& r) {
                merge(i, std::forward<decltype(r)>(r));
                return true;
            },
            util::spans::SpanType::kTrial, scope_block());
        stats.trials = trials;
        stats.accepted = trials;
        stats.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        report_run(stats);
        return stats;
    }

    /// Issues attempts 0, 1, 2, ... in waves until `merge` has returned
    /// true (accepted) `target` times.  Attempts computed beyond the target
    /// inside the final wave are discarded without being merged, in attempt
    /// order, so the accepted prefix is exactly what a sequential
    /// `for (q = 0; accepted < target; ++q)` loop would keep.
    template <typename TrialFn, typename MergeFn>
    RunStats run_until(std::size_t target, TrialFn&& trial,
                       MergeFn&& merge) const {
        const auto start = std::chrono::steady_clock::now();
        RunStats stats;
        stats.jobs = jobs();
        const std::uint64_t scopes = scope_block();
        std::uint64_t next_attempt = 0;
        std::size_t accepted = 0;
        while (accepted < target) {
            // Wave sizing depends only on already-merged history, so the
            // attempt schedule is itself deterministic.  Overshoot the
            // observed acceptance rate slightly to usually finish in one
            // extra wave.
            const std::size_t remaining = target - accepted;
            double rate = next_attempt == 0
                              ? 1.0
                              : static_cast<double>(accepted) /
                                    static_cast<double>(next_attempt);
            if (rate < 0.05) rate = 0.05;
            std::size_t wave = static_cast<std::size_t>(
                static_cast<double>(remaining) / rate * 1.1);
            wave = std::max(wave, std::max<std::size_t>(64, 4 * jobs()));
            detail::driver_wave_counter().add(1);
            stats.busy_seconds += run_range(
                next_attempt, wave,
                [this](std::uint64_t i) { return trial_rng(i); }, trial,
                [&](std::uint64_t i, auto&& r) {
                    if (accepted >= target) return false;
                    if (merge(i, std::forward<decltype(r)>(r))) {
                        ++accepted;
                    }
                    return accepted < target;
                },
                util::spans::SpanType::kTrial, scopes);
            next_attempt += wave;
        }
        stats.trials = next_attempt;
        stats.accepted = accepted;
        stats.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        report_run(stats);
        return stats;
    }

    /// Intra-trial sharding: splits the *inside* of one heavy trial into
    /// `shards` independent pieces, runs `shard(s, rng)` for s in
    /// [0, shards) over the worker pool, and calls `merge(s, result)` on
    /// this thread strictly in shard order.  Shard s always draws from
    /// shard_rng(trial, s) -- a pure function of (seed, trial, s) -- so
    /// the merged output is byte-identical at any worker count, exactly
    /// like run().  Use when one trial (a full-SCAN-scale world slice)
    /// dwarfs the per-trial fan-out: the shards are the parallelism.
    template <typename ShardFn, typename MergeFn>
    RunStats run_shards(std::uint64_t trial, std::size_t shards,
                        ShardFn&& shard, MergeFn&& merge) const {
        const auto start = std::chrono::steady_clock::now();
        RunStats stats;
        stats.jobs = jobs();
        stats.busy_seconds = run_range(
            0, shards,
            [this, trial](std::uint64_t s) { return shard_rng(trial, s); },
            shard, [&](std::uint64_t s, auto&& r) {
                merge(s, std::forward<decltype(r)>(r));
                return true;
            },
            util::spans::SpanType::kShard, scope_block());
        stats.trials = shards;
        stats.accepted = shards;
        stats.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        report_run(stats);
        return stats;
    }

  private:
    // Setup tags sit far above any realistic trial count.
    static constexpr std::uint64_t kSetupStreamBase = 0xC011'EC70'0000'0000ULL;
    // Shard streams pack (trial, shard) into the index; with shards < 2^20
    // and the base below both setup tags and any dense trial index, the
    // three stream families never collide.
    static constexpr std::uint64_t kShardStreamBase = 0x5AAD'0000'0000'0000ULL;

    /// A fresh span-scope block for one run, or 0 when the recorder is off
    /// (scope ids are only ever read by the recorder).
    static std::uint64_t scope_block() {
        return util::spans::enabled()
                   ? util::spans::Recorder::global().next_scope_block()
                   : 0;
    }

    /// Runs trial indices [base, base + count) on the pool and consumes
    /// results in index order; `consume` returns false to stop consuming
    /// (remaining computed results are dropped).  Every index in the range
    /// is computed regardless — see determinism guarantee 1 above.
    /// `rng_of(i)` supplies the generator for index i (trial substreams for
    /// run/run_until, shard substreams for run_shards).
    /// Each trial executes inside a spans::TrialScope (scope = the run's
    /// block | index + 1) wrapped in a wall span of `span_type`, which is
    /// what merges per-trial span buffers deterministically: a trial's
    /// sim-clock events carry (scope, seq) — a pure function of the seed —
    /// and the exporter sorts by it, so the trace is byte-stable across
    /// worker counts.
    /// Returns the summed trial execution time in seconds.
    template <typename RngOf, typename TrialFn, typename ConsumeFn>
    double run_range(std::uint64_t base, std::size_t count, RngOf&& rng_of,
                     TrialFn& trial, ConsumeFn&& consume,
                     util::spans::SpanType span_type,
                     std::uint64_t scope_base) const {
        using Result =
            std::invoke_result_t<TrialFn&, std::uint64_t, util::Rng&>;
        static_assert(!std::is_void_v<Result>,
                      "trial functions must return their result");
        if (count == 0) return 0.0;
        auto& trial_seconds = detail::driver_trial_seconds();
        const auto run_one = [&trial, span_type,
                              scope_base](std::uint64_t i, util::Rng& rng) {
            const util::spans::TrialScope scope(scope_base | (i + 1));
            const util::spans::WallSpan span(span_type, /*causal=*/i);
            return trial(i, rng);
        };

        const std::size_t workers = std::min(jobs(), count);
        if (workers <= 1) {
            double busy = 0.0;
            bool consuming = true;
            for (std::uint64_t i = base; i < base + count; ++i) {
                util::Rng rng = rng_of(i);
                const auto t0 = std::chrono::steady_clock::now();
                Result r = run_one(i, rng);
                const double sec = std::chrono::duration<double>(
                                       std::chrono::steady_clock::now() - t0)
                                       .count();
                trial_seconds.observe(sec);
                busy += sec;
                if (consuming) consuming = consume(i, std::move(r));
            }
            return busy;
        }

        std::vector<std::optional<Result>> results(count);
        std::atomic<std::size_t> next{0};
        std::atomic<bool> stop{false};
        std::atomic<double> busy{0.0};
        std::exception_ptr failure;
        std::mutex failure_mutex;
        {
            std::vector<std::jthread> pool;
            pool.reserve(workers);
            for (std::size_t w = 0; w < workers; ++w) {
                pool.emplace_back([&] {
                    double local_busy = 0.0;
                    const auto flush_busy = [&] {
                        double cur = busy.load(std::memory_order_relaxed);
                        while (!busy.compare_exchange_weak(
                            cur, cur + local_busy,
                            std::memory_order_relaxed)) {
                        }
                    };
                    for (;;) {
                        const std::size_t slot =
                            next.fetch_add(1, std::memory_order_relaxed);
                        if (slot >= count ||
                            stop.load(std::memory_order_relaxed)) {
                            flush_busy();
                            return;
                        }
                        const std::uint64_t i = base + slot;
                        try {
                            util::Rng rng = rng_of(i);
                            const auto t0 = std::chrono::steady_clock::now();
                            results[slot].emplace(run_one(i, rng));
                            const double sec =
                                std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count();
                            trial_seconds.observe(sec);
                            local_busy += sec;
                        } catch (...) {
                            const std::lock_guard<std::mutex> lock(
                                failure_mutex);
                            if (!failure) {
                                failure = std::current_exception();
                            }
                            stop.store(true, std::memory_order_relaxed);
                            flush_busy();
                            return;
                        }
                    }
                });
            }
        }  // jthreads join here
        if (failure) std::rethrow_exception(failure);
        bool consuming = true;
        for (std::size_t slot = 0; slot < count && consuming; ++slot) {
            consuming = consume(base + slot, std::move(*results[slot]));
        }
        return busy.load(std::memory_order_relaxed);
    }

    DriverOptions options_;
};

}  // namespace concilium::sim
