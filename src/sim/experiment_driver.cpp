#include "sim/experiment_driver.h"

namespace concilium::sim {

std::size_t ExperimentDriver::jobs() const noexcept {
    if (options_.jobs != 0) return options_.jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

namespace detail {

util::metrics::Counter& driver_wave_counter() {
    static auto& c =
        util::metrics::Registry::global().counter("sim.driver_waves");
    return c;
}

util::metrics::HistogramMetric& driver_trial_seconds() {
    static auto& h = util::metrics::Registry::global().timing_histogram(
        "sim.driver_trial_seconds", 0.0, 0.05, 50);
    return h;
}

}  // namespace detail

void report_run(const RunStats& stats) {
    using util::metrics::Registry;
    Registry& reg = Registry::global();
    static auto& runs = reg.counter("sim.driver_runs");
    static auto& trials = reg.counter("sim.driver_trials");
    static auto& jobs = reg.timing_gauge("sim.driver_jobs");
    static auto& utilization =
        reg.timing_gauge("sim.driver_worker_utilization");
    static auto& busy = reg.timing_gauge("sim.driver_busy_seconds");
    static auto& run_seconds =
        reg.timing_histogram("sim.driver_run_seconds", 0.0, 60.0, 24);
    runs.add(1);
    trials.add(static_cast<std::int64_t>(stats.trials));
    jobs.set(static_cast<double>(stats.jobs));
    utilization.set(stats.utilization());
    busy.add(stats.busy_seconds);
    run_seconds.observe(stats.wall_seconds);
}

}  // namespace concilium::sim
