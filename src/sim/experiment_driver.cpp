#include "sim/experiment_driver.h"

namespace concilium::sim {

std::size_t ExperimentDriver::jobs() const noexcept {
    if (options_.jobs != 0) return options_.jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace concilium::sim
