// Experiment scenario: the assembled simulation world of Section 4.2.
//
// A Scenario owns the generated IP topology, the Pastry overlay placed on
// 3% of its end hosts, every member's probe tree, the link-failure ground
// truth, the set of colluding malicious nodes, and the machinery for
// synthesizing the tomographic evidence available to any judge at any
// simulated instant.
//
// Probe evidence follows the paper's assumptions: lightweight probes fire
// with inter-arrival times uniform in [0, max_probe_time] (Section 3.2), a
// probe classifies a link's up/down state with accuracy a = 0.9 (Section
// 4.3), and colluding peers flip their reported results strategically --
// "when a non-faulty node was being judged, malicious peers would always
// claim that their probed links were up ...; when a malicious peer was
// being judged, other malicious peers would always claim that their probed
// links were down".

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/blame.h"
#include "crypto/certificates.h"
#include "net/chaos.h"
#include "net/link_state.h"
#include "net/paths.h"
#include "net/topology.h"
#include "net/topology_gen.h"
#include "overlay/network.h"
#include "tomography/overlay_trees.h"
#include "util/rng.h"
#include "util/time.h"

namespace concilium::sim {

struct ScenarioParams {
    net::TopologyParams topology = net::medium_params();
    /// "randomly selected 3% of these machines to be Pastry nodes".
    double overlay_fraction = 0.03;
    /// When nonzero, overrides the fraction with an absolute node count.
    std::size_t overlay_nodes_override = 0;
    overlay::OverlayParams overlay;
    net::FailureModelParams failures;
    util::SimTime duration = 2 * util::kHour;  ///< "two virtual hours"
    /// Lightweight probe inter-arrival upper bound (Section 3.2).
    util::SimTime max_probe_time = 120 * util::kSecond;
    core::BlameParams blame;  ///< accuracy 0.9, Delta = 60 s
    /// Fraction of nodes that collude and flip probe reports (Section 4.3).
    double malicious_fraction = 0.0;
    /// Declarative chaos spec (see net/chaos.h); the scenario materializes
    /// it into a FaultPlan from its own deterministic stream.  Empty by
    /// default: no chaos.
    net::FaultSpec chaos;
    std::uint64_t seed = 1;
};

// Thread-safety: a constructed Scenario is immutable, and every const
// member function below is safe to call concurrently from experiment-driver
// workers.  gather_probes derives all of its randomness locally from
// (seed, query_id), sample_triple draws only from the caller's generator,
// and no const path touches rng_root_ (fork_rng is non-const for exactly
// that reason).
class Scenario {
  public:
    explicit Scenario(const ScenarioParams& params);

    [[nodiscard]] const ScenarioParams& params() const noexcept {
        return params_;
    }
    [[nodiscard]] const net::Topology& topology() const noexcept {
        return topology_;
    }
    [[nodiscard]] const overlay::OverlayNetwork& overlay_net() const noexcept {
        return *overlay_;
    }
    [[nodiscard]] const net::FailureTimeline& timeline() const noexcept {
        return timeline_;
    }
    /// The materialized chaos schedule (empty plan when params().chaos is
    /// empty).  Runtime clusters attach it with Cluster::set_chaos.
    [[nodiscard]] const net::FaultPlan& fault_plan() const noexcept {
        return fault_plan_;
    }
    [[nodiscard]] const tomography::ProbeTree& tree(
        overlay::MemberIndex m) const {
        return trees_->tree(m);
    }
    [[nodiscard]] const tomography::OverlayTrees& trees() const {
        return *trees_;
    }
    /// Leaf slot of peer inside member's tree, when the IP path existed.
    [[nodiscard]] std::optional<int> leaf_slot(
        overlay::MemberIndex m, overlay::MemberIndex peer) const {
        return trees_->leaf_slot(m, peer);
    }

    /// IP links of the path member -> peer (a span into the trees' shared
    /// arena; valid for the scenario's lifetime).
    [[nodiscard]] std::span<const net::LinkId> path_links(
        overlay::MemberIndex m, overlay::MemberIndex peer) const {
        return trees_->path_links(m, peer);
    }

    [[nodiscard]] bool is_malicious(overlay::MemberIndex m) const {
        return malicious_.at(m);
    }
    [[nodiscard]] std::size_t malicious_count() const noexcept {
        return malicious_count_;
    }

    /// Members whose probe tree contains the link.
    [[nodiscard]] std::span<const overlay::MemberIndex> reporters_of_link(
        net::LinkId link) const;

    /// The strategic goal a colluding reporter pursues for one judgment
    /// (Section 4.3's flipping rule).
    enum class CollusionStance {
        kNone,         ///< honest reporting
        kExonerate,    ///< claim probed links DOWN (protect a guilty peer)
        kIncriminate,  ///< claim probed links UP (frame an innocent peer)
    };

    /// Synthesizes the probe results available to `judge` about `path` links
    /// around time t: its own probes plus those in snapshots received from
    /// its routing peers.  `stance` controls what colluding reporters claim.
    /// `reporter_cap` limits how many routing peers' snapshots the judge may
    /// consult (Section 4.2: "gathering probe results from more peers
    /// increases the average number of hosts that ... can potentially vouch
    /// for the status of that link"); the default is unlimited.
    /// Deterministic given (seed, query_id).
    [[nodiscard]] std::vector<core::ProbeResult> gather_probes(
        overlay::MemberIndex judge, std::span<const net::LinkId> path,
        util::SimTime t, CollusionStance stance, std::uint64_t query_id,
        std::size_t reporter_cap = SIZE_MAX) const;

    /// Ground truth: does the path have at least one down link at t?
    [[nodiscard]] bool path_bad(std::span<const net::LinkId> path,
                                util::SimTime t) const {
        return timeline_.any_down(path, t);
    }

    /// Draws a uniformly random valid (A, B, C) triple: B in A's routing
    /// state, C in B's routing state, with an existing IP path B -> C.
    struct Triple {
        overlay::MemberIndex a, b, c;
    };
    [[nodiscard]] std::optional<Triple> sample_triple(util::Rng& rng) const;

    /// Forks the scenario's root generator.  Deliberately non-const: each
    /// fork advances the root stream, so concurrent callers would race and
    /// break replayability.  Parallel experiments derive per-trial streams
    /// with util::Rng::substream instead.
    [[nodiscard]] util::Rng fork_rng() { return rng_root_.fork(); }

  private:
    ScenarioParams params_;
    util::Rng rng_root_;
    net::Topology topology_;
    crypto::CertificateAuthority ca_;
    std::optional<overlay::OverlayNetwork> overlay_;
    std::optional<tomography::OverlayTrees> trees_;
    net::FailureTimeline timeline_;
    net::FaultPlan fault_plan_;
    std::vector<bool> malicious_;
    std::size_t malicious_count_ = 0;
    std::unordered_map<net::LinkId, std::vector<overlay::MemberIndex>>
        link_reporters_;
};

}  // namespace concilium::sim
