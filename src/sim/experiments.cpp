#include "sim/experiments.h"

#include <algorithm>
#include <stdexcept>

namespace concilium::sim {

namespace {

/// Per-host result of one Figure-4 trial: the coverage / voucher values
/// for every forest size this host can contribute to.
struct CoverageTrial {
    std::vector<double> coverage;
    std::vector<double> vouchers;
};

/// One Figure-5 judgment attempt.  `valid` is false when no routing triple
/// was found for this substream (the attempt is rejected, exactly as the
/// sequential loop `continue`d past it).
struct BlameTrial {
    bool valid = false;
    bool path_bad = false;
    bool guilty = false;
    double blame = 0.0;
};

/// One end-to-end attribution attempt (rejected unless a drop occurred on
/// a qualifying route).
struct AttributionTrial {
    bool valid = false;
    bool network_cause = false;
    bool network_blamed = false;
    bool blamed_locus = false;
};

}  // namespace

CoverageCurve run_coverage_experiment(const Scenario& scenario,
                                      std::size_t max_peer_trees,
                                      std::size_t sample_hosts,
                                      const ExperimentDriver& driver) {
    const auto& net = scenario.overlay_net();
    sample_hosts = std::min(sample_hosts, net.size());
    // Host selection draws from a setup substream disjoint from every
    // per-trial substream.
    util::Rng setup = driver.setup_rng();
    const auto hosts = setup.sample_indices(net.size(), sample_hosts);

    CoverageCurve curve;
    curve.coverage.assign(max_peer_trees + 1, 0.0);
    curve.vouchers.assign(max_peer_trees + 1, 0.0);
    curve.hosts_counted.assign(max_peer_trees + 1, 0);

    driver.run(
        hosts.size(),
        [&](std::uint64_t trial, util::Rng& rng) {
            const auto m =
                static_cast<overlay::MemberIndex>(hosts[trial]);
            std::vector<const tomography::ProbeTree*> trees{
                &scenario.tree(m)};
            std::vector<overlay::MemberIndex> peers = net.routing_peers(m);
            rng.shuffle(peers);
            for (const overlay::MemberIndex p : peers) {
                trees.push_back(&scenario.tree(p));
            }
            const tomography::Forest forest(trees);
            CoverageTrial out;
            for (std::size_t k = 0; k <= max_peer_trees; ++k) {
                if (k + 1 > trees.size()) break;
                out.coverage.push_back(forest.coverage(k + 1));
                out.vouchers.push_back(forest.mean_vouchers(k + 1));
            }
            return out;
        },
        [&](std::uint64_t, CoverageTrial&& out) {
            for (std::size_t k = 0; k < out.coverage.size(); ++k) {
                curve.coverage[k] += out.coverage[k];
                curve.vouchers[k] += out.vouchers[k];
                ++curve.hosts_counted[k];
            }
        });

    for (std::size_t k = 0; k <= max_peer_trees; ++k) {
        if (curve.hosts_counted[k] == 0) continue;
        curve.coverage[k] /= curve.hosts_counted[k];
        curve.vouchers[k] /= curve.hosts_counted[k];
    }
    return curve;
}

BlameExperimentResult run_blame_experiment(const Scenario& scenario,
                                           const BlameExperimentParams& params,
                                           const ExperimentDriver& driver) {
    BlameExperimentResult result{
        util::Histogram(0.0, 1.0,
                        static_cast<std::size_t>(params.histogram_bins)),
        util::Histogram(0.0, 1.0,
                        static_cast<std::size_t>(params.histogram_bins)),
        0, 0, 0.0, 0.0};

    core::BlameParams blame_params = scenario.params().blame;
    blame_params.or_operator = params.or_operator;
    const util::SimTime duration = scenario.params().duration;
    const bool colluders_active = scenario.malicious_count() > 0;

    std::size_t guilty_faulty = 0;
    std::size_t guilty_nonfaulty = 0;
    driver.run_until(
        params.samples,
        [&](std::uint64_t q, util::Rng& rng) {
            BlameTrial out;
            const auto triple = scenario.sample_triple(rng);
            if (!triple.has_value()) return out;
            const util::SimTime t = static_cast<util::SimTime>(rng.uniform(
                static_cast<double>(blame_params.delta),
                static_cast<double>(duration - blame_params.delta)));
            const auto path = scenario.path_links(triple->b, triple->c);
            out.path_bad = scenario.path_bad(path, t);
            // "B was a faulty node if it dropped a message despite B -> C
            // being good; it was non-faulty if at least one link in B -> C
            // was bad."
            const auto stance =
                !colluders_active ? Scenario::CollusionStance::kNone
                : out.path_bad    ? Scenario::CollusionStance::kIncriminate
                                  : Scenario::CollusionStance::kExonerate;
            const auto probes = scenario.gather_probes(
                triple->a, path, t, stance, q, params.reporter_cap);
            const auto breakdown = core::compute_blame(
                path, probes, t,
                scenario.overlay_net().member(triple->b).id(), blame_params);
            out.valid = true;
            out.blame = breakdown.blame;
            out.guilty = breakdown.blame >= params.guilty_threshold;
            return out;
        },
        [&](std::uint64_t, BlameTrial&& out) {
            if (!out.valid) return false;
            if (out.path_bad) {
                result.nonfaulty_pdf.add(out.blame);
                ++result.nonfaulty_samples;
                if (out.guilty) ++guilty_nonfaulty;
            } else {
                result.faulty_pdf.add(out.blame);
                ++result.faulty_samples;
                if (out.guilty) ++guilty_faulty;
            }
            return true;
        });

    if (result.nonfaulty_samples > 0) {
        result.p_good = static_cast<double>(guilty_nonfaulty) /
                        static_cast<double>(result.nonfaulty_samples);
    }
    if (result.faulty_samples > 0) {
        result.p_faulty = static_cast<double>(guilty_faulty) /
                          static_cast<double>(result.faulty_samples);
    }
    return result;
}

AttributionExperimentResult run_attribution_experiment(
    const Scenario& scenario, const AttributionExperimentParams& params,
    const ExperimentDriver& driver) {
    AttributionExperimentResult result;
    const auto& net = scenario.overlay_net();
    const core::BlameParams& blame_params = scenario.params().blame;
    const util::SimTime duration = scenario.params().duration;

    driver.run_until(
        params.samples,
        [&](std::uint64_t attempt, util::Rng& rng) {
            AttributionTrial out;
            // A random end-to-end route of at least one intermediate hop.
            const auto a = static_cast<overlay::MemberIndex>(
                rng.uniform_index(net.size()));
            const util::NodeId key = util::NodeId::random(rng);
            std::vector<overlay::MemberIndex> hops;
            try {
                hops = net.route(a, key);
            } catch (const std::runtime_error&) {
                return out;
            }
            if (hops.size() < params.min_route_length) return out;
            // Hop-to-hop IP paths must exist for stewardship to judge them.
            for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
                if (!scenario.leaf_slot(hops[i], hops[i + 1]).has_value()) {
                    return out;
                }
            }

            const util::SimTime t = static_cast<util::SimTime>(rng.uniform(
                static_cast<double>(blame_params.delta),
                static_cast<double>(duration - blame_params.delta)));

            // Ground truth: first route segment with a down IP link, if any.
            std::optional<std::size_t> bad_segment;
            for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
                const auto path = scenario.path_links(hops[i], hops[i + 1]);
                if (scenario.path_bad(path, t)) {
                    bad_segment = i;
                    break;
                }
            }
            // Optionally inject a faulty forwarder at a random interior hop.
            std::optional<std::size_t> dropper;
            if (rng.bernoulli(params.forwarder_drop_probability)) {
                dropper = 1 + rng.uniform_index(hops.size() - 2);
            }

            // Which cause fires first along the route?
            std::size_t locus;
            if (bad_segment.has_value() &&
                (!dropper.has_value() || *bad_segment < *dropper)) {
                out.network_cause = true;
                locus = *bad_segment;
            } else if (dropper.has_value()) {
                out.network_cause = false;
                locus = *dropper;
            } else {
                return out;  // delivered; nothing to judge
            }
            // For a network drop on segment locus -> locus+1, position locus
            // still forwarded the packet (it died in transit), so that
            // judge's tomographic evidence enters the chain.  A faulty
            // forwarder at locus never forwarded, so judges stop one
            // position earlier.
            const std::size_t forwarder_count =
                out.network_cause ? locus + 1 : locus;

            // Query ids are striped per attempt so every judgment in every
            // attempt draws a distinct probe-evidence stream, disjoint from
            // Figure 5's (which uses the bare attempt index).
            std::uint64_t query_id = 0x41545452ULL + (attempt << 20);
            const auto blame_fn = [&](std::size_t judge,
                                      std::size_t suspect) {
                const auto path =
                    scenario.path_links(hops[judge], hops[suspect]);
                const auto probes = scenario.gather_probes(
                    hops[judge], path, t, Scenario::CollusionStance::kNone,
                    query_id++);
                return core::compute_blame(path, probes, t,
                                           net.member(hops[suspect]).id(),
                                           blame_params)
                    .blame;
            };

            core::AttributionOutcome outcome;
            if (params.enable_revision) {
                outcome = core::attribute_fault(hops.size(), forwarder_count,
                                                blame_fn, params.verdicts);
            } else {
                // Non-recursive baseline: the sender's verdict on its first
                // hop is final.
                const double blame = blame_fn(0, 1);
                if (core::is_guilty_verdict(blame, params.verdicts)) {
                    outcome.blamed_hop = 1;
                } else {
                    outcome.network_blamed = true;
                    outcome.faulted_segment = 0;
                }
            }

            out.valid = true;
            out.network_blamed = outcome.network_blamed;
            out.blamed_locus =
                !outcome.network_blamed && outcome.blamed_hop == locus;
            return out;
        },
        [&](std::uint64_t, AttributionTrial&& out) {
            if (!out.valid) return false;
            ++result.samples;
            if (out.network_cause) {
                ++result.cause_network;
                if (out.network_blamed) {
                    ++result.correct;
                } else {
                    ++result.blamed_node_wrongly;
                }
            } else {
                ++result.cause_forwarder;
                if (out.network_blamed) {
                    ++result.blamed_network_wrongly;
                } else if (out.blamed_locus) {
                    ++result.correct;
                } else {
                    ++result.blamed_wrong_node;
                }
            }
            return true;
        });
    return result;
}

}  // namespace concilium::sim
