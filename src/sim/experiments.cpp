#include "sim/experiments.h"

#include <algorithm>
#include <stdexcept>

namespace concilium::sim {

CoverageCurve run_coverage_experiment(const Scenario& scenario,
                                      std::size_t max_peer_trees,
                                      std::size_t sample_hosts,
                                      util::Rng& rng) {
    const auto& net = scenario.overlay_net();
    sample_hosts = std::min(sample_hosts, net.size());
    const auto hosts = rng.sample_indices(net.size(), sample_hosts);

    CoverageCurve curve;
    curve.coverage.assign(max_peer_trees + 1, 0.0);
    curve.vouchers.assign(max_peer_trees + 1, 0.0);
    curve.hosts_counted.assign(max_peer_trees + 1, 0);

    for (const std::size_t h : hosts) {
        const auto m = static_cast<overlay::MemberIndex>(h);
        std::vector<const tomography::ProbeTree*> trees{&scenario.tree(m)};
        std::vector<overlay::MemberIndex> peers = net.routing_peers(m);
        rng.shuffle(peers);
        for (const overlay::MemberIndex p : peers) {
            trees.push_back(&scenario.tree(p));
        }
        const tomography::Forest forest(trees);
        for (std::size_t k = 0; k <= max_peer_trees; ++k) {
            if (k + 1 > trees.size()) break;
            curve.coverage[k] += forest.coverage(k + 1);
            curve.vouchers[k] += forest.mean_vouchers(k + 1);
            ++curve.hosts_counted[k];
        }
    }
    for (std::size_t k = 0; k <= max_peer_trees; ++k) {
        if (curve.hosts_counted[k] == 0) continue;
        curve.coverage[k] /= curve.hosts_counted[k];
        curve.vouchers[k] /= curve.hosts_counted[k];
    }
    return curve;
}

BlameExperimentResult run_blame_experiment(const Scenario& scenario,
                                           const BlameExperimentParams& params,
                                           util::Rng& rng) {
    BlameExperimentResult result{
        util::Histogram(0.0, 1.0,
                        static_cast<std::size_t>(params.histogram_bins)),
        util::Histogram(0.0, 1.0,
                        static_cast<std::size_t>(params.histogram_bins)),
        0, 0, 0.0, 0.0};

    core::BlameParams blame_params = scenario.params().blame;
    blame_params.or_operator = params.or_operator;
    const util::SimTime duration = scenario.params().duration;
    const bool colluders_active = scenario.malicious_count() > 0;

    std::size_t guilty_faulty = 0;
    std::size_t guilty_nonfaulty = 0;
    for (std::uint64_t q = 0; result.faulty_samples +
                                  result.nonfaulty_samples <
                              params.samples;
         ++q) {
        const auto triple = scenario.sample_triple(rng);
        if (!triple.has_value()) continue;
        const util::SimTime t = static_cast<util::SimTime>(rng.uniform(
            static_cast<double>(blame_params.delta),
            static_cast<double>(duration - blame_params.delta)));
        const auto path = scenario.path_links(triple->b, triple->c);
        const bool path_bad = scenario.path_bad(path, t);
        // "B was a faulty node if it dropped a message despite B -> C being
        // good; it was non-faulty if at least one link in B -> C was bad."
        const auto stance =
            !colluders_active ? Scenario::CollusionStance::kNone
            : path_bad        ? Scenario::CollusionStance::kIncriminate
                              : Scenario::CollusionStance::kExonerate;
        const auto probes = scenario.gather_probes(triple->a, path, t, stance,
                                                   q, params.reporter_cap);
        const auto breakdown = core::compute_blame(
            path, probes, t, scenario.overlay_net().member(triple->b).id(),
            blame_params);
        const bool guilty = breakdown.blame >= params.guilty_threshold;
        if (path_bad) {
            result.nonfaulty_pdf.add(breakdown.blame);
            ++result.nonfaulty_samples;
            if (guilty) ++guilty_nonfaulty;
        } else {
            result.faulty_pdf.add(breakdown.blame);
            ++result.faulty_samples;
            if (guilty) ++guilty_faulty;
        }
    }
    if (result.nonfaulty_samples > 0) {
        result.p_good = static_cast<double>(guilty_nonfaulty) /
                        static_cast<double>(result.nonfaulty_samples);
    }
    if (result.faulty_samples > 0) {
        result.p_faulty = static_cast<double>(guilty_faulty) /
                          static_cast<double>(result.faulty_samples);
    }
    return result;
}

AttributionExperimentResult run_attribution_experiment(
    const Scenario& scenario, const AttributionExperimentParams& params,
    util::Rng& rng) {
    AttributionExperimentResult result;
    const auto& net = scenario.overlay_net();
    const core::BlameParams& blame_params = scenario.params().blame;
    const util::SimTime duration = scenario.params().duration;

    std::uint64_t query_id = 0x41545452u;  // disjoint stream from Figure 5
    while (result.samples < params.samples) {
        // A random end-to-end route of at least one intermediate hop.
        const auto a = static_cast<overlay::MemberIndex>(
            rng.uniform_index(net.size()));
        const util::NodeId key = util::NodeId::random(rng);
        std::vector<overlay::MemberIndex> hops;
        try {
            hops = net.route(a, key);
        } catch (const std::runtime_error&) {
            continue;
        }
        if (hops.size() < params.min_route_length) continue;
        // Hop-to-hop IP paths must exist for stewardship to judge them.
        bool paths_ok = true;
        for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
            if (!scenario.leaf_slot(hops[i], hops[i + 1]).has_value()) {
                paths_ok = false;
                break;
            }
        }
        if (!paths_ok) continue;

        const util::SimTime t = static_cast<util::SimTime>(rng.uniform(
            static_cast<double>(blame_params.delta),
            static_cast<double>(duration - blame_params.delta)));

        // Ground truth: first route segment with a down IP link, if any.
        std::optional<std::size_t> bad_segment;
        for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
            const auto path = scenario.path_links(hops[i], hops[i + 1]);
            if (scenario.path_bad(path, t)) {
                bad_segment = i;
                break;
            }
        }
        // Optionally inject a faulty forwarder at a random interior hop.
        std::optional<std::size_t> dropper;
        if (rng.bernoulli(params.forwarder_drop_probability)) {
            dropper = 1 + rng.uniform_index(hops.size() - 2);
        }

        // Which cause fires first along the route?
        bool network_cause;
        std::size_t locus;
        if (bad_segment.has_value() &&
            (!dropper.has_value() || *bad_segment < *dropper)) {
            network_cause = true;
            locus = *bad_segment;
        } else if (dropper.has_value()) {
            network_cause = false;
            locus = *dropper;
        } else {
            continue;  // message would have been delivered; nothing to judge
        }
        // For a network drop on segment locus -> locus+1, position locus
        // still forwarded the packet (it died in transit), so that judge's
        // tomographic evidence enters the chain.  A faulty forwarder at
        // locus never forwarded, so judges stop one position earlier.
        const std::size_t forwarder_count =
            network_cause ? locus + 1 : locus;

        const auto blame_fn = [&](std::size_t judge, std::size_t suspect) {
            const auto path =
                scenario.path_links(hops[judge], hops[suspect]);
            const auto probes = scenario.gather_probes(
                hops[judge], path, t, Scenario::CollusionStance::kNone,
                query_id++);
            return core::compute_blame(path, probes, t,
                                       net.member(hops[suspect]).id(),
                                       blame_params)
                .blame;
        };

        core::AttributionOutcome outcome;
        if (params.enable_revision) {
            outcome = core::attribute_fault(hops.size(), forwarder_count,
                                            blame_fn, params.verdicts);
        } else {
            // Non-recursive baseline: the sender's verdict on its first hop
            // is final.
            const double blame = blame_fn(0, 1);
            if (core::is_guilty_verdict(blame, params.verdicts)) {
                outcome.blamed_hop = 1;
            } else {
                outcome.network_blamed = true;
                outcome.faulted_segment = 0;
            }
        }

        ++result.samples;
        if (network_cause) {
            ++result.cause_network;
            if (outcome.network_blamed) {
                ++result.correct;
            } else {
                ++result.blamed_node_wrongly;
            }
        } else {
            ++result.cause_forwarder;
            if (outcome.network_blamed) {
                ++result.blamed_network_wrongly;
            } else if (outcome.blamed_hop == locus) {
                ++result.correct;
            } else {
                ++result.blamed_wrong_node;
            }
        }
    }
    return result;
}

}  // namespace concilium::sim
