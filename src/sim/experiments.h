// The paper's simulation experiments (Sections 4.2-4.3) plus this repo's
// ablations, all driven off a Scenario.
//
// Every experiment fans its trials out over an ExperimentDriver: trial i
// draws from util::Rng::substream(driver.seed(), i) and results are merged
// in trial order, so a given driver seed produces bit-identical results at
// any worker count.

#pragma once

#include <cstdint>

#include "core/blame.h"
#include "core/steward.h"
#include "core/verdicts.h"
#include "sim/experiment_driver.h"
#include "sim/scenario.h"
#include "util/stats.h"

namespace concilium::sim {

// ---------------------------------------------------------------- Figure 4

struct CoverageCurve {
    /// coverage[k]: mean fraction of F_H links covered by the own tree plus
    /// k peer trees (k = 0 is "probes only its own tree").
    std::vector<double> coverage;
    /// vouchers[k]: mean number of trees testing a covered link.
    std::vector<double> vouchers;
    /// Number of sampled hosts contributing to each point.
    std::vector<int> hosts_counted;
};

/// Averages forest coverage over `sample_hosts` random members, including
/// peer trees in random order (Figure 4).  One trial = one sampled host.
CoverageCurve run_coverage_experiment(const Scenario& scenario,
                                      std::size_t max_peer_trees,
                                      std::size_t sample_hosts,
                                      const ExperimentDriver& driver);

// ---------------------------------------------------------------- Figure 5

struct BlameExperimentParams {
    /// Number of (A, B, C, t) judgments sampled.  The paper enumerates all
    /// routing-constrained triples x 10 times; sampling converges to the
    /// same pdf and keeps default runtimes sane.
    std::size_t samples = 50000;
    /// "nodes receiving less than 40% blame are proclaimed innocent".
    double guilty_threshold = 0.4;
    int histogram_bins = 50;
    /// Ablation hook: the fuzzy OR used to combine per-link confidences.
    core::BlameParams::OrOperator or_operator =
        core::BlameParams::OrOperator::kMax;
    /// Ablation hook: cap on how many peers' snapshots each judge consults
    /// (Section 4.2's vouching argument); SIZE_MAX = unlimited.
    std::size_t reporter_cap = SIZE_MAX;
};

struct BlameExperimentResult {
    util::Histogram faulty_pdf;     ///< blame assigned to faulty forwarders
    util::Histogram nonfaulty_pdf;  ///< blame assigned to innocent forwarders
    std::size_t faulty_samples = 0;
    std::size_t nonfaulty_samples = 0;
    /// Guilty-verdict rates at the threshold (feed Figure 6's binomial
    /// model): p_good is the innocent conviction rate, p_faulty the faulty
    /// conviction rate.
    double p_good = 0.0;
    double p_faulty = 0.0;
};

/// Samples triples (A, B, C) with B in A's routing state and C in B's, picks
/// random times, and evaluates the blame A would assign B for an
/// unacknowledged message (Figure 5).  B is "faulty" when B -> C was good at
/// that moment (so only B could have dropped the message), "non-faulty" when
/// a link in B -> C was down.
BlameExperimentResult run_blame_experiment(const Scenario& scenario,
                                           const BlameExperimentParams& params,
                                           const ExperimentDriver& driver);

// ------------------------------------------- end-to-end attribution (ours)

struct AttributionExperimentParams {
    std::size_t samples = 2000;
    core::VerdictParams verdicts;
    /// When false, skip recursive revision: the sender's own verdict is
    /// final (guilty == blame its first hop).  This is the paper's Section
    /// 3.5 mechanism ablated away.
    bool enable_revision = true;
    /// Probability of injecting a forwarder drop on an otherwise healthy
    /// route sample.
    double forwarder_drop_probability = 0.5;
    /// Only judge routes with at least this many overlay nodes; longer
    /// routes exercise deeper revision chains.
    std::size_t min_route_length = 3;
};

struct AttributionExperimentResult {
    std::size_t samples = 0;
    std::size_t cause_forwarder = 0;  ///< drops caused by a faulty forwarder
    std::size_t cause_network = 0;    ///< drops caused by a down IP link
    std::size_t correct = 0;          ///< blame landed on the true culprit
    std::size_t blamed_wrong_node = 0;
    std::size_t blamed_network_wrongly = 0;  ///< forwarder drop called network
    std::size_t blamed_node_wrongly = 0;     ///< network drop pinned on a node

    [[nodiscard]] double accuracy() const {
        return samples == 0 ? 0.0
                            : static_cast<double>(correct) /
                                  static_cast<double>(samples);
    }
};

/// Routes messages end to end, injects forwarder and network drops, runs the
/// full recursive-stewardship attribution of Section 3.5, and scores the
/// final blame against ground truth.
AttributionExperimentResult run_attribution_experiment(
    const Scenario& scenario, const AttributionExperimentParams& params,
    const ExperimentDriver& driver);

}  // namespace concilium::sim
