#include "sim/scenario.h"

#include <algorithm>
#include <stdexcept>

#include "util/spans.h"

namespace concilium::sim {

namespace {

/// generate_topology runs in the constructor's member-initializer list, so
/// the phase span wraps it through this helper.
net::Topology timed_topology(const net::TopologyParams& params,
                             util::Rng& rng) {
    const util::spans::WallSpan span(util::spans::SpanType::kTopologyGen);
    return net::generate_topology(params, rng);
}

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
    std::uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Probe firing times of one reporter inside [lo, hi]: a renewal process
/// with inter-arrival uniform in [0, max_gap], entered at a random phase.
std::vector<util::SimTime> renewal_times(util::Rng& rng, util::SimTime lo,
                                         util::SimTime hi,
                                         util::SimTime max_gap) {
    std::vector<util::SimTime> times;
    double t = static_cast<double>(lo) -
               rng.uniform() * static_cast<double>(max_gap);
    while (t <= static_cast<double>(hi)) {
        if (t >= static_cast<double>(lo)) {
            times.push_back(static_cast<util::SimTime>(t));
        }
        t += rng.uniform() * static_cast<double>(max_gap);
    }
    return times;
}

}  // namespace

Scenario::Scenario(const ScenarioParams& params)
    : params_(params), rng_root_(params.seed),
      topology_(timed_topology(params.topology, rng_root_)),
      ca_(mix(params.seed, 0xCA15ULL)) {
    using util::spans::SpanType;
    using util::spans::WallSpan;

    const std::vector<net::RouterId> hosts = topology_.end_hosts();
    std::size_t count = params_.overlay_nodes_override != 0
                            ? params_.overlay_nodes_override
                            : static_cast<std::size_t>(
                                  params_.overlay_fraction *
                                  static_cast<double>(hosts.size()));
    count = std::max<std::size_t>(count, 2);
    if (count > hosts.size()) {
        throw std::invalid_argument("Scenario: not enough end hosts");
    }
    {
        const WallSpan span(SpanType::kOverlayBuild, /*causal=*/0,
                            static_cast<std::int64_t>(count));
        overlay_.emplace(overlay::build_overlay_from_hosts(
            hosts, count, ca_, params_.overlay, rng_root_));
    }

    // Build every member's probe tree; the (host, routing peer) paths seed
    // the failure process.
    const std::size_t n = overlay_->size();
    {
        const WallSpan span(SpanType::kTreeBuild, /*causal=*/0,
                            static_cast<std::int64_t>(n));
        trees_.emplace(*overlay_, topology_);
    }

    {
        const WallSpan span(SpanType::kFailureTimeline);
        timeline_ = net::generate_failure_timeline(
            params_.failures, params_.duration, trees_->member_peer_paths(),
            rng_root_);
    }

    {
        const WallSpan span(SpanType::kScenarioIndex);
        malicious_.assign(n, false);
        malicious_count_ = static_cast<std::size_t>(
            params_.malicious_fraction * static_cast<double>(n));
        for (const std::size_t m :
             rng_root_.sample_indices(n, malicious_count_)) {
            malicious_[m] = true;
        }

        for (overlay::MemberIndex m = 0; m < n; ++m) {
            for (const net::LinkId l : trees_->tree(m).links()) {
                link_reporters_[l].push_back(m);
            }
        }
    }

    // Chaos last, so an empty spec leaves every earlier draw -- and hence
    // every existing seed's world -- untouched.
    {
        const WallSpan span(SpanType::kFaultPlan);
        fault_plan_ = net::build_fault_plan(params_.chaos, params_.duration,
                                            trees_->member_peer_paths(), n,
                                            rng_root_);
    }
}

std::span<const overlay::MemberIndex> Scenario::reporters_of_link(
    net::LinkId link) const {
    static const std::vector<overlay::MemberIndex> kNone;
    const auto it = link_reporters_.find(link);
    return it == link_reporters_.end() ? kNone : it->second;
}

std::vector<core::ProbeResult> Scenario::gather_probes(
    overlay::MemberIndex judge, std::span<const net::LinkId> path,
    util::SimTime t, CollusionStance stance, std::uint64_t query_id,
    std::size_t reporter_cap) const {
    std::vector<core::ProbeResult> out;
    // Evidence reaches the judge via its own probes and the snapshots its
    // routing peers push to it (Section 3.2), optionally capped to the
    // first reporter_cap peers.
    std::vector<char> available(overlay_->size(), 0);
    available[judge] = 1;
    std::size_t admitted = 0;
    for (const overlay::MemberIndex p : overlay_->routing_peers(judge)) {
        if (admitted++ >= reporter_cap) break;
        available[p] = 1;
    }

    const util::SimTime lo = t - params_.blame.delta;
    const util::SimTime hi = t + params_.blame.delta;
    const double flip_probability = 1.0 - params_.blame.probe_accuracy;

    std::vector<net::LinkId> seen;
    for (const net::LinkId link : path) {
        if (std::find(seen.begin(), seen.end(), link) != seen.end()) continue;
        seen.push_back(link);
        for (const overlay::MemberIndex reporter : reporters_of_link(link)) {
            if (!available[reporter]) continue;
            // Probe times are keyed per (query, reporter): one stripe tests
            // every link of the reporter's tree at once.
            util::Rng time_rng(mix(mix(params_.seed, query_id), reporter));
            const auto times =
                renewal_times(time_rng, lo, hi, params_.max_probe_time);
            if (times.empty()) continue;
            util::Rng noise_rng(
                mix(mix(params_.seed, query_id), mix(reporter, link)));
            const bool colluder =
                malicious_[reporter] && stance != CollusionStance::kNone;
            for (const util::SimTime tp : times) {
                bool observed_up;
                if (colluder) {
                    observed_up = stance == CollusionStance::kIncriminate;
                } else {
                    const bool truth_up = timeline_.is_up(link, tp);
                    observed_up =
                        noise_rng.bernoulli(flip_probability) ? !truth_up
                                                              : truth_up;
                }
                out.push_back(core::ProbeResult{
                    overlay_->member(reporter).id(), link, observed_up, tp});
            }
        }
    }
    return out;
}

std::optional<Scenario::Triple> Scenario::sample_triple(util::Rng& rng) const {
    for (int attempt = 0; attempt < 64; ++attempt) {
        const auto a = static_cast<overlay::MemberIndex>(
            rng.uniform_index(overlay_->size()));
        const auto& peers_a = overlay_->routing_peers(a);
        if (peers_a.empty()) continue;
        const overlay::MemberIndex b = rng.pick(peers_a);
        const auto& peers_b = overlay_->routing_peers(b);
        if (peers_b.empty()) continue;
        const overlay::MemberIndex c = rng.pick(peers_b);
        if (c == b || c == a) continue;
        if (!leaf_slot(b, c).has_value()) continue;
        return Triple{a, b, c};
    }
    return std::nullopt;
}

}  // namespace concilium::sim
