#include "util/rate_spec.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace concilium::util {

namespace {

std::string known_kinds(std::span<const RateSpecKind> kinds) {
    std::string out;
    for (const RateSpecKind& k : kinds) {
        if (!out.empty()) out += ", ";
        out += k.name;
    }
    return out;
}

/// Strict [0, 1] rate parse; rejects empty text, trailing junk, and
/// non-finite values (strtod alone would accept "1e3x" prefixes or "nan").
double parse_rate(std::string_view option, std::string_view noun,
                  std::string_view kind, std::string_view text) {
    const std::string owned(text);
    if (owned.empty()) {
        throw_bad_rate_spec(option, std::string(noun) + " '" +
                                        std::string(kind) +
                                        "' has an empty rate");
    }
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size() || !std::isfinite(value)) {
        throw_bad_rate_spec(option, std::string(noun) + " '" +
                                        std::string(kind) +
                                        "' has a malformed rate '" + owned +
                                        "'");
    }
    if (value < 0.0 || value > 1.0) {
        throw_bad_rate_spec(option, std::string(noun) + " '" +
                                        std::string(kind) + "' rate " + owned +
                                        " is outside [0, 1]");
    }
    return value;
}

}  // namespace

void throw_bad_rate_spec(std::string_view option, const std::string& what) {
    throw std::invalid_argument(std::string(option) + ": " + what);
}

void parse_rate_spec(std::string_view text, std::string_view option,
                     std::string_view noun,
                     std::span<const RateSpecKind> kinds,
                     std::span<double> rates) {
    // Small vocabularies: the linear scans below beat any map.
    std::vector<bool> seen(rates.size(), false);
    while (!text.empty()) {
        const std::size_t comma = text.find(',');
        const std::string_view pair = text.substr(0, comma);
        if (comma != std::string_view::npos &&
            text.substr(comma + 1).empty()) {
            throw_bad_rate_spec(option,
                                "trailing ',' after '" + std::string(pair) +
                                    "'");
        }
        text = comma == std::string_view::npos ? std::string_view{}
                                               : text.substr(comma + 1);
        const std::size_t colon = pair.find(':');
        if (pair.empty() || colon == std::string_view::npos) {
            throw_bad_rate_spec(option, "expected 'kind:rate', got '" +
                                            std::string(pair) + "'");
        }
        const std::string_view name = pair.substr(0, colon);
        const RateSpecKind* match = nullptr;
        for (const RateSpecKind& k : kinds) {
            if (k.name == name) {
                match = &k;
                break;
            }
        }
        if (match == nullptr) {
            throw_bad_rate_spec(option, "unknown " + std::string(noun) +
                                            " kind '" + std::string(name) +
                                            "' (known: " +
                                            known_kinds(kinds) + ")");
        }
        if (seen[match->slot]) {
            throw_bad_rate_spec(option, std::string(noun) + " '" +
                                            std::string(name) +
                                            "' given twice");
        }
        seen[match->slot] = true;
        rates[match->slot] =
            parse_rate(option, noun, name, pair.substr(colon + 1));
    }
}

void check_rate_bounds(std::string_view option, double rate) {
    if (!(rate >= 0.0) || rate > 1.0) {
        throw_bad_rate_spec(option, "rate " + std::to_string(rate) +
                                        " is outside [0, 1]");
    }
}

std::string format_rate_spec(std::span<const RateSpecKind> kinds,
                             std::span<const double> rates) {
    std::string out;
    for (const RateSpecKind& k : kinds) {
        const double r = rates[k.slot];
        if (r == 0.0) continue;
        if (!out.empty()) out += ',';
        char buf[48];
        std::snprintf(buf, sizeof buf, "%s:%g", std::string(k.name).c_str(),
                      r);
        out += buf;
    }
    return out;
}

}  // namespace concilium::util
