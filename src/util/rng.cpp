#include "util/rng.h"

#include <numeric>
#include <stdexcept>

namespace concilium::util {

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
    if (k > n) {
        throw std::invalid_argument("Rng::sample_indices: k > n");
    }
    std::vector<std::size_t> pool(n);
    std::iota(pool.begin(), pool.end(), std::size_t{0});
    for (std::size_t i = 0; i < k; ++i) {
        std::swap(pool[i], pool[i + uniform_index(n - i)]);
    }
    pool.resize(k);
    return pool;
}

}  // namespace concilium::util
