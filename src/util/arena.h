// Bump-pointer arena and digest interning.
//
// The full-SCAN topology (Section 4.2: 112,969 routers / 181,639 links)
// multiplies every per-path and per-snapshot allocation by two orders of
// magnitude over the default world.  Two small utilities keep that scale
// affordable:
//
//  * Arena — a bump-pointer allocator for trivially-destructible data.
//    Hot-path producers (PathOracle's per-BFS path extraction, flattened
//    probe-tree routes) carve spans out of a shared arena instead of
//    allocating one vector pair per path.  Allocation is a pointer bump;
//    deallocation is wholesale via reset().  Pointers into the arena stay
//    valid until reset() or destruction — blocks are chained, never
//    reallocated or moved.
//
//  * DigestInterner — assigns dense uint32 ids to 20-byte content digests.
//    Snapshot payload digests are interned once at publication; every
//    downstream comparison (archive admission, equivocation detection,
//    signature-verification memoization) compares two uint32s instead of
//    re-serializing and hashing the payloads.  Id assignment order is a
//    pure function of the intern() call order, so runs stay deterministic.
//
// Neither type is thread-safe; each simulation world owns its own.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace concilium::util {

/// Bump-pointer allocator.  Allocations never move and are freed only in
/// bulk (reset() / destruction), so spans handed out remain valid for the
/// arena's current generation.  Only trivially-destructible element types
/// are supported; the arena never runs destructors.
class Arena {
  public:
    static constexpr std::size_t kDefaultBlockBytes = std::size_t{1} << 20;

    explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
        : block_bytes_(block_bytes < kMinBlockBytes ? kMinBlockBytes
                                                    : block_bytes) {}

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;
    Arena(Arena&&) noexcept = default;
    Arena& operator=(Arena&&) noexcept = default;

    /// Raw allocation of `bytes` with alignment `align` (a power of two).
    /// Oversized requests get a dedicated block, so any size works.
    void* allocate(std::size_t bytes, std::size_t align);

    /// A span of n value-initialized Ts backed by the arena.
    template <typename T>
    std::span<T> make_span(std::size_t n) {
        static_assert(std::is_trivially_destructible_v<T>,
                      "Arena never runs destructors");
        if (n == 0) return {};
        T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
        std::memset(static_cast<void*>(p), 0, n * sizeof(T));
        return {p, n};
    }

    /// Copies `src` into the arena and returns the stable copy.
    template <typename T>
    std::span<const T> copy(std::span<const T> src) {
        static_assert(std::is_trivially_copyable_v<T>,
                      "Arena copies bytes, not objects");
        if (src.empty()) return {};
        T* p = static_cast<T*>(allocate(src.size_bytes(), alignof(T)));
        std::memcpy(static_cast<void*>(p), src.data(), src.size_bytes());
        return {p, src.size()};
    }

    /// Bytes handed out since construction / last reset().
    [[nodiscard]] std::size_t bytes_used() const noexcept { return used_; }
    /// Bytes reserved from the system (>= bytes_used()).
    [[nodiscard]] std::size_t bytes_reserved() const noexcept {
        return reserved_;
    }

    /// Invalidates every outstanding span and rewinds to the first block.
    /// Later blocks are released; the first is kept so steady-state reuse
    /// allocates nothing.
    void reset() noexcept;

  private:
    static constexpr std::size_t kMinBlockBytes = 4096;

    struct Block {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
    };

    std::vector<Block> blocks_;
    std::byte* cur_ = nullptr;
    std::byte* end_ = nullptr;
    std::size_t block_bytes_;
    std::size_t used_ = 0;
    std::size_t reserved_ = 0;
};

/// A 20-byte content digest (same width as util::NodeId, so
/// NodeId::hash_of output can be interned directly).
using Digest = std::array<std::uint8_t, 20>;

/// FNV-1a digest of a byte string, in the same derivation as
/// NodeId::hash_of so digests computed either way agree.
Digest digest_bytes(std::span<const std::uint8_t> data);

/// Dense-id interning for digests.  Ids are assigned 0, 1, 2, ... in
/// first-intern order; a given call sequence always yields the same ids,
/// keeping interned state byte-deterministic across runs.
class DigestInterner {
  public:
    using Id = std::uint32_t;
    static constexpr Id kInvalidId = 0xffffffffu;

    /// The digest's id, assigning the next dense id on first sight.
    Id intern(const Digest& digest);

    /// The digest's id, or kInvalidId if it was never interned.
    [[nodiscard]] Id find(const Digest& digest) const;

    /// The digest behind an id previously returned by intern().
    [[nodiscard]] const Digest& digest(Id id) const { return digests_[id]; }

    [[nodiscard]] std::size_t size() const noexcept { return digests_.size(); }

  private:
    struct DigestHash {
        std::size_t operator()(const Digest& d) const noexcept {
            // Digests are already uniformly mixed; fold the first 8 bytes.
            std::uint64_t x;
            std::memcpy(&x, d.data(), sizeof(x));
            return static_cast<std::size_t>(x);
        }
    };

    std::unordered_map<Digest, Id, DigestHash> ids_;
    std::vector<Digest> digests_;
};

}  // namespace concilium::util
