// Causal span tracing: the third observability subsystem, alongside the
// util::metrics registry (what happened, in aggregate) and the
// core::DiagnosisTrace blame journal (why one verdict landed).  Spans add
// *when* and *in what causal order*: typed intervals and instants recorded
// into lock-free per-thread ring buffers and exported as Chrome trace-event
// JSON that loads directly in Perfetto / chrome://tracing.
//
// Every event carries up to two clocks:
//
//   * a sim-time interval (util::SimTime microseconds) — a pure function of
//     the seed, so the exported sim-clock section is byte-identical across
//     `--jobs` values exactly like the metrics "metrics" section; and/or
//   * a wall-time interval (nanoseconds on the process steady clock) —
//     segregated into its own export section like the metrics "timing"
//     section, never byte-compared.
//
// Determinism across worker counts is a sequencing problem, not a
// commutativity problem (spans are ordered, counters are not).  The recorder
// solves it with scopes: sim::ExperimentDriver wraps every trial/shard in a
// TrialScope carrying a unique scope id, and each event records (scope,
// per-scope sequence number).  A trial executes entirely on one worker
// thread, so (scope, seq) is a pure function of the seed; the exporter sorts
// the sim-clock section by it, making the merge of per-trial span buffers
// independent of which worker ran which trial.  Sim-clock events must be
// recorded either inside a TrialScope or on the main thread (scope 0).
//
// The rings are bounded and overwrite oldest-first, which doubles as the
// flight recorder: after a crash-adjacent failure, the last N events per
// thread are still in the buffer, and the bench `--spans-out` dump is what
// the soak gates (`tools/check_*.py --flight`) replay as a timeline.
//
// Cost when disabled: every recording site is one relaxed atomic load and
// one branch (see enabled()); no thread-local touch, no allocation.

#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/time.h"

namespace concilium::util::spans {

/// The typed span vocabulary.  Kept deliberately small: one enum value per
/// phase a human would want on a timeline, not per function call.
enum class SpanType : std::uint8_t {
    // Wall-clock world-build phases (sim::Scenario construction).
    kWorldBuild = 0,
    kTopologyGen,
    kOverlayBuild,
    kTreeBuild,
    kFailureTimeline,
    kScenarioIndex,
    kFaultPlan,
    // Experiment-driver structure (one per trial / shard execution).
    kTrial,
    kShard,
    // The diagnosis path (sim clock; runtime::Cluster + tomography).
    kProbeRound,
    kHeavyweightSession,
    kMleSolve,
    kSnapshotExchange,
    kDiagnosis,
    kJudgment,
    kRecoveryHandshake,
    kCount,
};

/// Stable lowercase name used as the Chrome trace event name.
[[nodiscard]] const char* span_name(SpanType t) noexcept;

/// Sentinel for "this event does not carry that clock".
constexpr std::int64_t kNoClock = std::numeric_limits<std::int64_t>::min();

/// One recorded span or instant.  POD, 64 bytes; scope/seq/thread are
/// assigned by the recorder, everything else by the call site.
struct Event {
    std::int64_t sim_begin = kNoClock;   ///< SimTime micros, or kNoClock.
    std::int64_t sim_end = kNoClock;
    std::int64_t wall_begin = kNoClock;  ///< ns on the span clock, or kNoClock.
    std::int64_t wall_end = kNoClock;
    std::uint64_t scope = 0;   ///< TrialScope id; 0 = global/main thread.
    std::uint64_t causal = 0;  ///< Message id / trial id threading the trace.
    std::int64_t arg = 0;      ///< Free per-type payload (hop, epoch, count).
    std::uint32_t seq = 0;     ///< Per-scope sequence number.
    std::uint16_t thread = 0;  ///< Recorder thread ordinal (wall section tid).
    SpanType type = SpanType::kCount;
    std::uint8_t pad = 0;
};
static_assert(sizeof(Event) == 64, "Event should stay one cache line");

namespace detail {
// The one global the disabled fast path touches.
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// True when the process recorder is armed.  The only cost a disabled span
/// site pays: one relaxed load + branch.
[[nodiscard]] inline bool enabled() noexcept {
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Nanoseconds on the process-wide span clock (steady, epoch = first use).
[[nodiscard]] std::int64_t wall_now_ns() noexcept;

/// The process-wide span recorder: per-thread bounded rings, oldest-first
/// overwrite, mutex only on thread registration and collection.
class Recorder {
  public:
    static constexpr std::size_t kDefaultCapacity = 1u << 15;  // per thread

    static Recorder& global();

    /// Arms recording.  Call before the instrumented work; capacity applies
    /// to threads that register after the call.
    void enable(std::size_t per_thread_capacity = kDefaultCapacity);
    void disable();

    /// Drops every recorded event but keeps thread registrations.
    void clear();

    /// Appends one event, stamping scope, seq, and thread ordinal from the
    /// calling thread's state.  Callers check enabled() first.
    void record(Event e) noexcept;

    /// A fresh block of scope ids (high 32 bits); the driver takes one per
    /// run so trial indices from different runs never collide.
    [[nodiscard]] std::uint64_t next_scope_block() noexcept;

    [[nodiscard]] std::uint64_t total_recorded() const;
    [[nodiscard]] std::uint64_t total_dropped() const;

    /// Every buffered event, oldest-first per thread.  Call only after the
    /// recording threads have quiesced (post-join / at exit).
    [[nodiscard]] std::vector<Event> collect() const;

    /// Chrome trace-event JSON.  Two sections inside "traceEvents": the
    /// sim-clock section first (cat "sim", sorted by (scope, seq) — byte
    /// identical across --jobs), then the wall-clock section (cat "wall").
    /// Dual-clock events appear in both.  Loads in Perfetto as-is.
    [[nodiscard]] std::string to_chrome_json() const;

    struct ThreadBuffer;  // implementation detail, defined in spans.cpp

  private:
    ThreadBuffer& buffer_for_this_thread() noexcept;
};

/// Renders `events` (as returned by collect()) to Chrome trace JSON; the
/// recorder's to_chrome_json() is this over its own buffers.
[[nodiscard]] std::string to_chrome_json(const std::vector<Event>& events,
                                         std::uint64_t dropped);

namespace detail {
struct ScopeState {
    std::uint64_t scope = 0;
    std::uint32_t seq = 0;
};
/// The calling thread's current scope (thread_local).
[[nodiscard]] ScopeState& scope_state() noexcept;
}  // namespace detail

/// RAII scope marker: while alive, every event recorded on this thread is
/// tagged with `scope_id` and numbered from 0.  ExperimentDriver establishes
/// one per trial/shard; nesting restores the outer scope on destruction.
/// No-op (one branch) when the recorder is disabled.
class TrialScope {
  public:
    explicit TrialScope(std::uint64_t scope_id) noexcept {
        if (!enabled()) return;
        active_ = true;
        auto& st = detail::scope_state();
        saved_ = st;
        st.scope = scope_id;
        st.seq = 0;
    }
    ~TrialScope() {
        if (active_) detail::scope_state() = saved_;
    }
    TrialScope(const TrialScope&) = delete;
    TrialScope& operator=(const TrialScope&) = delete;

  private:
    bool active_ = false;
    detail::ScopeState saved_{};
};

/// RAII wall-clock span: measures construction → destruction on the span
/// clock.  Optionally annotated with a sim-time interval via set_sim(), in
/// which case the event shows up in both export sections.  One branch when
/// disabled.
class WallSpan {
  public:
    explicit WallSpan(SpanType type, std::uint64_t causal = 0,
                      std::int64_t arg = 0) noexcept {
        if (!enabled()) return;
        armed_ = true;
        type_ = type;
        causal_ = causal;
        arg_ = arg;
        begin_ = wall_now_ns();
    }
    ~WallSpan() {
        if (!armed_) return;
        Event e;
        e.type = type_;
        e.causal = causal_;
        e.arg = arg_;
        e.sim_begin = sim_begin_;
        e.sim_end = sim_end_;
        e.wall_begin = begin_;
        e.wall_end = wall_now_ns();
        Recorder::global().record(e);
    }
    WallSpan(const WallSpan&) = delete;
    WallSpan& operator=(const WallSpan&) = delete;

    void set_sim(SimTime begin, SimTime end) noexcept {
        sim_begin_ = begin;
        sim_end_ = end;
    }
    void set_arg(std::int64_t arg) noexcept { arg_ = arg; }

  private:
    bool armed_ = false;
    SpanType type_ = SpanType::kCount;
    std::uint64_t causal_ = 0;
    std::int64_t arg_ = 0;
    std::int64_t begin_ = 0;
    std::int64_t sim_begin_ = kNoClock;
    std::int64_t sim_end_ = kNoClock;
};

/// Records a completed sim-time interval.  One branch when disabled.
inline void sim_span(SpanType type, SimTime begin, SimTime end,
                     std::uint64_t causal = 0, std::int64_t arg = 0) noexcept {
    if (!enabled()) return;
    Event e;
    e.type = type;
    e.sim_begin = begin;
    e.sim_end = end;
    e.causal = causal;
    e.arg = arg;
    Recorder::global().record(e);
}

/// Records a zero-duration sim-time instant.
inline void sim_instant(SpanType type, SimTime at, std::uint64_t causal = 0,
                        std::int64_t arg = 0) noexcept {
    sim_span(type, at, at, causal, arg);
}

}  // namespace concilium::util::spans
