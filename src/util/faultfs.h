// Deterministic storage-fault injection: a thin VFS seam for file I/O.
//
// Concilium's thesis is that failures must be diagnosed loudly and
// correctly rather than papered over; FaultFs applies that standard to our
// own disk path.  Every durability-critical file operation the daemon
// performs -- open, write, fsync, rename, read -- goes through this seam,
// and each call is one *fault site*: a point where an injected storage
// fault may fire instead of (or on top of) the real syscall.  Two
// injection modes, composable:
//
//  * Rate mode (`--io-faults eio:0.01,short:0.01,torn_rename:0.005,
//    bitrot:0.001,enospc:0.002`, the FaultSpec grammar family): each site
//    draws one Bernoulli per applicable kind, in fixed kind order, from a
//    dedicated Rng substream of the spec's seed.  The schedule is a pure
//    function of (seed, operation sequence) -- byte-reproducible, like
//    every other stochastic component in this repo.  Rates apply to the
//    *write path* only (open/write/fsync/rename/dir-fsync): that is the
//    failing-disk scenario the daemon's retry-then-degrade policy exists
//    for.  A rate-driven fault on the trace read would just abort the run
//    at startup -- a case one-shot mode already pins down exhaustively.
//
//  * One-shot mode (`--io-fault-at 17:bitrot`): exactly one fault of one
//    kind at one global site index, regardless of rates.  This is what the
//    crashpoint sweep (tools/check_faultfs.py) enumerates: every site x
//    every kind, each run asserting "cmp-identical resume or a loud
//    refusal naming the corrupt artifact".
//
// Fault taxonomy -- the split that matters is loud vs silent:
//
//   eio          the operation fails loudly (injected EIO)      -> retry
//   enospc       the operation fails loudly (injected ENOSPC)   -> retry
//   short        a write persists only a prefix but CLAIMS
//                success (a lying disk)                 -> caught at verify
//   torn_rename  rename leaves a truncated destination and
//                CLAIMS success (power-loss-shaped)     -> caught at verify
//   bitrot       one bit of the just-renamed file flips
//                on the platter, silently               -> caught at verify
//   crash        the process dies on the spot (_Exit), the
//                SIGKILL shape no handler can soften    -> resume replays
//
// Loud faults surface as std::runtime_error naming the path, the fault,
// and the site index; callers own retry/degradation policy (the daemon
// uses runtime::RetryPolicy and then disarms checkpointing rather than
// dying).  Silent faults corrupt the artifact exactly the way a real
// storage stack would; the checkpoint chain's verify-and-fall-back is what
// catches them.
//
// A default-constructed FaultFs is a passthrough (no faults, real I/O,
// still counts sites); FaultFs::system() is the process-wide passthrough
// used by code without an injection context.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/rng.h"

namespace concilium::util {

enum class IoFaultKind : std::size_t {
    kEio = 0,      ///< loud failure: injected EIO
    kShortWrite,   ///< silent: write persists a prefix, claims success
    kTornRename,   ///< silent: truncated destination, claims success
    kBitrot,       ///< silent: one bit flips in the renamed file
    kEnospc,       ///< loud failure: injected ENOSPC
    kCrash,        ///< process exits immediately (one-shot mode only)
    kCount,
};

/// Kinds addressable by the probabilistic `--io-faults` spec (crash is
/// excluded: a rate-driven process exit is not a reproducible experiment;
/// the crashpoint sweep places crashes site by site instead).
inline constexpr std::size_t kIoFaultRateKinds = 5;

[[nodiscard]] std::string_view to_string(IoFaultKind kind);

/// Parses a one-shot "SITE:KIND" spec (e.g. "17:bitrot"); throws
/// std::invalid_argument naming the offending token.  All six kinds,
/// crash included, are valid here.
[[nodiscard]] std::pair<std::uint64_t, IoFaultKind> parse_one_shot_fault(
    std::string_view text);

struct IoFaultSpec {
    /// Per-site firing probability, indexed by IoFaultKind (< kCrash).
    std::array<double, kIoFaultRateKinds> rates{};
    /// Base seed; the fault schedule draws from a dedicated substream so
    /// it never perturbs (or is perturbed by) simulation randomness.
    std::uint64_t seed = 0;

    /// Strict `kind:rate[,kind:rate]*` parse in the shared rate-spec
    /// grammar (util/rate_spec.h), option name "--io-faults", noun
    /// "io fault".  The empty string is the empty spec.
    [[nodiscard]] static IoFaultSpec parse(std::string_view text,
                                           std::uint64_t seed = 0);

    /// Canonical spec text (enabled kinds only); parse() round-trips it.
    [[nodiscard]] std::string format() const;

    [[nodiscard]] bool any() const noexcept;
};

class FaultFs {
  public:
    /// Passthrough: real I/O, no faults, sites still counted.
    FaultFs() : rng_(Rng::substream(0, kFaultStream)) {}

    explicit FaultFs(const IoFaultSpec& spec)
        : spec_(spec), rng_(Rng::substream(spec.seed, kFaultStream)) {}

    /// The process-wide passthrough instance.
    [[nodiscard]] static FaultFs& system();

    /// Arms a single fault of `kind` at global site index `site` (0-based,
    /// in operation order).  Fires once, on top of any rate spec.
    void arm_one_shot(std::uint64_t site, IoFaultKind kind);
    /// Same, from "SITE:KIND" text; throws std::invalid_argument.
    void arm_one_shot(std::string_view text);

    /// Fault sites visited so far (= operations attempted).
    [[nodiscard]] std::uint64_t ops() const noexcept { return ops_; }
    /// Faults injected so far, loud and silent together.
    [[nodiscard]] std::uint64_t injected() const noexcept {
        return injected_;
    }

    // --- the VFS surface ------------------------------------------------
    // Each call is one fault site.  Loud faults and real syscall failures
    // both throw std::runtime_error naming the path and cause.

    /// Opens `path` for writing (create + truncate).  Faults: eio,
    /// enospc, crash.
    [[nodiscard]] int open_trunc(const std::string& path);

    /// Writes all of `data` to `fd`.  Faults: eio, enospc, crash, and
    /// short (persists a deterministic prefix, then claims success).
    void write_all(int fd, std::string_view data, const std::string& path);

    /// fsync(2) on `fd`.  Faults: eio, crash.
    void fsync_fd(int fd, const std::string& path);

    /// rename(2).  Faults: eio, crash, torn_rename (destination keeps a
    /// truncated copy, source unlinked, success claimed), and bitrot (the
    /// rename succeeds, then one bit of the destination flips silently).
    void rename_file(const std::string& from, const std::string& to);

    /// fsync(2) on the directory itself, making a preceding rename
    /// durable.  Faults: eio, crash.
    void fsync_dir(const std::string& dir);

    /// Slurps `path`.  Faults: eio, crash -- one-shot injection only
    /// (read sites never draw from the rate schedule; see above).
    [[nodiscard]] std::string read_file(const std::string& path);

    /// close(2); not a fault site (close errors are unactionable here).
    void close_fd(int fd) noexcept;

  private:
    /// Substream id for the fault schedule, disjoint from every simulation
    /// stream constant by construction (documented in DAEMON.md).
    static constexpr std::uint64_t kFaultStream = 0xFA017F5;

    /// Visits the next site and decides whether a fault fires; returns
    /// kCount when the operation should proceed cleanly.  `applicable` is
    /// a bitmask over IoFaultKind; `rate_eligible` is false for read
    /// sites, which only one-shot injection can fault.
    [[nodiscard]] IoFaultKind next_site(unsigned applicable,
                                        bool rate_eligible = true);
    [[noreturn]] void throw_injected(IoFaultKind kind,
                                     const std::string& path,
                                     const char* op);
    /// Deterministic per-site entropy for silent-fault shaping (prefix
    /// lengths, bit positions).
    [[nodiscard]] std::uint64_t site_entropy() const noexcept;

    IoFaultSpec spec_{};
    Rng rng_;
    bool one_shot_armed_ = false;
    std::uint64_t one_shot_site_ = 0;
    IoFaultKind one_shot_kind_ = IoFaultKind::kCount;
    std::uint64_t ops_ = 0;       ///< sites visited
    std::uint64_t injected_ = 0;  ///< faults fired
};

}  // namespace concilium::util
