// Deterministic random number generation.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng so that simulations, tests, and benchmark figures are reproducible
// bit-for-bit.  Rng::fork() derives independent child streams, which lets a
// simulation hand each node or process its own generator without the streams
// interfering when components are added or reordered.

#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace concilium::util {

class Rng {
  public:
    explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

    /// Derives an independent child generator.  Successive forks from the
    /// same parent yield distinct streams.
    [[nodiscard]] Rng fork() {
        return Rng(splitmix(seed_ ^ (0x9e3779b97f4a7c15ULL * ++forks_)));
    }

    /// Seed of substream `stream` of `seed`: the splitmix64 output for state
    /// seed + (stream + 1) * golden-gamma.  Unlike fork(), the derivation is
    /// a pure function of (seed, stream) -- no generator state is consumed --
    /// so any thread can reconstruct the exact generator for a trial index,
    /// which is what lets the parallel ExperimentDriver produce identical
    /// results regardless of worker count.
    [[nodiscard]] static std::uint64_t substream_seed(
        std::uint64_t seed, std::uint64_t stream) noexcept {
        return splitmix(seed + 0x9e3779b97f4a7c15ULL * (stream + 1));
    }

    /// The independent generator for substream `stream` of `seed`.
    [[nodiscard]] static Rng substream(std::uint64_t seed,
                                       std::uint64_t stream) {
        return Rng(substream_seed(seed, stream));
    }

    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

    std::uint64_t uniform_u64() { return engine_(); }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /// Uniform index in [0, n); n must be positive.
    std::size_t uniform_index(std::size_t n) {
        return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
    }

    /// Uniform double in [0, 1).
    double uniform() {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    bool bernoulli(double p) {
        if (p <= 0.0) return false;
        if (p >= 1.0) return true;
        return std::bernoulli_distribution(p)(engine_);
    }

    double normal(double mean, double stddev) {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    double exponential(double mean) {
        return std::exponential_distribution<double>(1.0 / mean)(engine_);
    }

    double gamma(double shape, double scale) {
        return std::gamma_distribution<double>(shape, scale)(engine_);
    }

    /// Beta(alpha, beta) via the two-gamma construction.  The paper's failure
    /// model selects failing-link depth with Beta(0.9, 0.6) (Section 4.2).
    double beta(double alpha, double beta) {
        const double x = gamma(alpha, 1.0);
        const double y = gamma(beta, 1.0);
        return x / (x + y);
    }

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::swap(v[i - 1], v[uniform_index(i)]);
        }
    }

    /// Uniformly chosen element of a non-empty vector.
    template <typename T>
    const T& pick(const std::vector<T>& v) {
        return v[uniform_index(v.size())];
    }

    /// Samples k distinct indices from [0, n) without replacement
    /// (partial Fisher-Yates).
    std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

    std::mt19937_64& engine() noexcept { return engine_; }

  private:
    static std::uint64_t splitmix(std::uint64_t x) {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    }

    std::mt19937_64 engine_;
    std::uint64_t seed_;
    std::uint64_t forks_ = 0;
};

}  // namespace concilium::util
