#include "util/arena.h"

namespace concilium::util {

void* Arena::allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    auto aligned = [&](std::byte* p) {
        const auto addr = reinterpret_cast<std::uintptr_t>(p);
        const auto up = (addr + (align - 1)) & ~(static_cast<std::uintptr_t>(align) - 1);
        return p + (up - addr);
    };

    std::byte* p = cur_ ? aligned(cur_) : nullptr;
    if (p == nullptr || p + bytes > end_) {
        // Oversized requests get their own block so a single huge span does
        // not strand the tail of the current block's neighbours.
        const std::size_t want = bytes + align;
        const std::size_t size = want > block_bytes_ ? want : block_bytes_;
        Block block{std::make_unique<std::byte[]>(size), size};
        reserved_ += size;
        std::byte* base = block.data.get();
        if (size == block_bytes_) {
            // Normal block: becomes the bump target.
            blocks_.push_back(std::move(block));
            cur_ = base;
            end_ = base + size;
            p = aligned(cur_);
        } else {
            // Dedicated block: keep bumping from the previous one.  Insert
            // below the top so the active block stays last.
            const std::size_t at = blocks_.empty() ? 0 : blocks_.size() - 1;
            blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(at),
                           std::move(block));
            used_ += bytes;
            return aligned(base);
        }
    }
    cur_ = p + bytes;
    used_ += bytes;
    return p;
}

void Arena::reset() noexcept {
    if (blocks_.empty()) {
        used_ = 0;
        return;
    }
    // Keep exactly one normal-sized block (the last, which is the active
    // bump block unless everything allocated was oversized).
    Block keep = std::move(blocks_.back());
    blocks_.clear();
    reserved_ = keep.size;
    cur_ = keep.data.get();
    end_ = cur_ + keep.size;
    blocks_.push_back(std::move(keep));
    used_ = 0;
}

Digest digest_bytes(std::span<const std::uint8_t> data) {
    // Mirrors NodeId::hash_of (util/ids.cpp): two FNV-1a rounds with
    // distinct offsets spread across the 20 bytes.
    Digest bytes{};
    std::uint64_t h1 = 0xcbf29ce484222325ULL;
    std::uint64_t h2 = 0x84222325cbf29ce4ULL;
    for (const std::uint8_t c : data) {
        h1 = (h1 ^ c) * 0x100000001b3ULL;
        h2 = (h2 ^ (c + 0x9e)) * 0x100000001b3ULL;
    }
    const std::uint64_t h3 = h1 ^ (h2 << 1) ^ (h2 >> 7);
    for (int i = 0; i < 8; ++i) {
        bytes[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(h1 >> (56 - 8 * i));
        bytes[static_cast<std::size_t>(i) + 8] =
            static_cast<std::uint8_t>(h2 >> (56 - 8 * i));
    }
    for (int i = 0; i < 4; ++i) {
        bytes[16 + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(h3 >> (24 - 8 * i));
    }
    return bytes;
}

DigestInterner::Id DigestInterner::intern(const Digest& digest) {
    auto [it, inserted] =
        ids_.try_emplace(digest, static_cast<Id>(digests_.size()));
    if (inserted) digests_.push_back(digest);
    return it->second;
}

DigestInterner::Id DigestInterner::find(const Digest& digest) const {
    const auto it = ids_.find(digest);
    return it == ids_.end() ? kInvalidId : it->second;
}

}  // namespace concilium::util
