#include "util/serialize.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace concilium::util {

namespace {

template <typename T>
void append_le(std::vector<std::uint8_t>& buf, T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

}  // namespace

void ByteWriter::u8(std::uint8_t v) { buffer_.push_back(v); }
void ByteWriter::u16(std::uint16_t v) { append_le(buffer_, v); }
void ByteWriter::u32(std::uint32_t v) { append_le(buffer_, v); }
void ByteWriter::u64(std::uint64_t v) { append_le(buffer_, v); }
void ByteWriter::i64(std::int64_t v) {
    append_le(buffer_, static_cast<std::uint64_t>(v));
}

void ByteWriter::f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    append_le(buffer_, bits);
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void ByteWriter::str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void ByteWriter::node_id(const NodeId& id) {
    buffer_.insert(buffer_.end(), id.bytes().begin(), id.bytes().end());
}

void ByteReader::need(std::size_t n) const {
    if (offset_ + n > data_.size()) {
        throw std::out_of_range("ByteReader: truncated message");
    }
}

std::uint8_t ByteReader::u8() {
    need(1);
    return data_[offset_++];
}

std::uint16_t ByteReader::u16() {
    need(2);
    std::uint16_t v = 0;
    for (std::size_t i = 0; i < 2; ++i) {
        v = static_cast<std::uint16_t>(v | (data_[offset_ + i] << (8 * i)));
    }
    offset_ += 2;
    return v;
}

std::uint32_t ByteReader::u32() {
    need(4);
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(data_[offset_ + i]) << (8 * i);
    }
    offset_ += 4;
    return v;
}

std::uint64_t ByteReader::u64() {
    need(8);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(data_[offset_ + i]) << (8 * i);
    }
    offset_ += 8;
    return v;
}

std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }

double ByteReader::f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::vector<std::uint8_t> ByteReader::bytes() {
    const std::uint32_t n = u32();
    need(n);
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(offset_ + n));
    offset_ += n;
    return out;
}

std::string ByteReader::str() {
    const std::uint32_t n = u32();
    need(n);
    std::string out(reinterpret_cast<const char*>(data_.data()) + offset_, n);
    offset_ += n;
    return out;
}

NodeId ByteReader::node_id() {
    need(NodeId::kBytes);
    std::array<std::uint8_t, NodeId::kBytes> raw{};
    std::memcpy(raw.data(), data_.data() + offset_, NodeId::kBytes);
    offset_ += NodeId::kBytes;
    return NodeId(raw);
}

}  // namespace concilium::util
