#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/json.h"

namespace concilium::util::metrics {

namespace detail {

std::size_t this_thread_slot() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

}  // namespace detail

// --------------------------------------------------------------------------
// HistogramMetric

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins) {
    if (!(hi > lo) || bins == 0) {
        throw std::invalid_argument("HistogramMetric: bad geometry");
    }
    width_ = (hi - lo) / static_cast<double>(bins);
    counts_ = std::make_unique<std::atomic<std::int64_t>[]>(bins);
    for (std::size_t i = 0; i < bins_; ++i) {
        counts_[i].store(0, std::memory_order_relaxed);
    }
}

void HistogramMetric::observe(double x) noexcept {
    auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
    if (bin < 0) bin = 0;
    if (bin >= static_cast<std::ptrdiff_t>(bins_)) {
        bin = static_cast<std::ptrdiff_t>(bins_) - 1;
    }
    counts_[static_cast<std::size_t>(bin)].fetch_add(1,
                                                     std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    sum_nanos_.fetch_add(static_cast<std::int64_t>(std::llround(x * 1e9)),
                         std::memory_order_relaxed);
}

std::int64_t HistogramMetric::count(std::size_t bin) const noexcept {
    return counts_[bin].load(std::memory_order_relaxed);
}

std::int64_t HistogramMetric::total() const noexcept {
    return total_.load(std::memory_order_relaxed);
}

double HistogramMetric::sum() const noexcept {
    // 1e9 is exactly representable, so e.g. 250000000 nanos divides to an
    // exact 0.25 (multiplying by the inexact 1e-9 would not).
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) /
           1e9;
}

double HistogramMetric::upper_edge(std::size_t bin) const noexcept {
    return lo_ + width_ * static_cast<double>(bin + 1);
}

void HistogramMetric::reset() noexcept {
    for (std::size_t i = 0; i < bins_; ++i) {
        counts_[i].store(0, std::memory_order_relaxed);
    }
    total_.store(0, std::memory_order_relaxed);
    sum_nanos_.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------------------
// SeriesMetric

SeriesMetric::SeriesMetric(std::int64_t window_us, std::size_t windows,
                           Mode mode)
    : window_us_(window_us), windows_(windows), mode_(mode) {
    if (window_us <= 0 || windows == 0) {
        throw std::invalid_argument("SeriesMetric: bad geometry");
    }
    buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(windows);
    for (std::size_t i = 0; i < windows_; ++i) {
        buckets_[i].store(0, std::memory_order_relaxed);
    }
}

double Snapshot::HistogramValue::upper_edge(std::size_t bin) const noexcept {
    const double width = (hi - lo) / static_cast<double>(counts.size());
    return lo + width * static_cast<double>(bin + 1);
}

// --------------------------------------------------------------------------
// Registry

Registry& Registry::global() {
    // Intentionally leaked: atexit-registered exporters (bench --metrics-out)
    // must be able to snapshot after static destructors start running.
    static Registry* instance = new Registry(/*preregister_well_known=*/true);
    return *instance;
}

namespace {

// The well-known instrument catalogue.  Every name the codebase's
// instrumentation sites use is listed here so a snapshot from *any* binary
// exposes the full `tomography/overlay/core/net/runtime/sim` namespace set
// with zeros rather than omitting untouched subsystems.  Keep in sync with
// OBSERVABILITY.md.
struct WellKnown {
    enum Kind { kCounter, kGauge, kHistogram } kind;
    const char* name;
    bool timing = false;
    double lo = 0.0;
    double hi = 1.0;
    std::size_t bins = 20;
};

constexpr WellKnown kWellKnown[] = {
    // net — event queue and transport.
    {WellKnown::kCounter, "net.events_scheduled"},
    {WellKnown::kCounter, "net.events_executed"},
    {WellKnown::kGauge, "net.queue_depth_max"},
    {WellKnown::kGauge, "net.eventsim.queue_high_water"},
    {WellKnown::kGauge, "net.eventsim.overflow_high_water"},
    // crypto — ideal-signature verification and its memo cache.
    {WellKnown::kCounter, "crypto.verify.cache_hit"},
    {WellKnown::kCounter, "crypto.verify.cache_miss"},
    {WellKnown::kCounter, "net.packets_sent"},
    {WellKnown::kCounter, "net.packets_delivered"},
    {WellKnown::kCounter, "net.packets_dropped"},
    // tomography — probing and MINC inference.
    {WellKnown::kCounter, "tomography.stripes_sampled"},
    {WellKnown::kCounter, "tomography.probes_issued"},
    {WellKnown::kCounter, "tomography.probes_lost"},
    {WellKnown::kCounter, "tomography.probe_acks"},
    {WellKnown::kCounter, "tomography.acks_suppressed"},
    {WellKnown::kCounter, "tomography.acks_fabricated"},
    {WellKnown::kCounter, "tomography.lightweight_rounds"},
    {WellKnown::kCounter, "tomography.heavyweight_sessions"},
    {WellKnown::kCounter, "tomography.inference_runs"},
    {WellKnown::kCounter, "tomography.solver_calls"},
    {WellKnown::kCounter, "tomography.solver_iterations"},
    {WellKnown::kHistogram, "tomography.link_loss_estimate", false, 0.0, 1.0,
     20},
    // overlay — density tests and advertisement validation.
    {WellKnown::kCounter, "overlay.density_tests"},
    {WellKnown::kCounter, "overlay.density_rejections"},
    {WellKnown::kCounter, "overlay.leaf_density_tests"},
    {WellKnown::kCounter, "overlay.leaf_density_rejections"},
    {WellKnown::kCounter, "overlay.density_model_evaluations"},
    {WellKnown::kCounter, "overlay.occupancy_samples"},
    {WellKnown::kCounter, "overlay.ads_validated"},
    {WellKnown::kCounter, "overlay.ads_accepted"},
    {WellKnown::kCounter, "overlay.ads_rejected"},
    {WellKnown::kCounter, "overlay.ad_reject.bad_owner_signature"},
    {WellKnown::kCounter, "overlay.ad_reject.malformed_entry"},
    {WellKnown::kCounter, "overlay.ad_reject.constraint_violation"},
    {WellKnown::kCounter, "overlay.ad_reject.bad_entry_timestamp"},
    {WellKnown::kCounter, "overlay.ad_reject.stale_entry"},
    {WellKnown::kCounter, "overlay.ad_reject.too_sparse"},
    // core — blame, verdicts, attribution, accusations.
    {WellKnown::kCounter, "core.blame_evaluations"},
    {WellKnown::kCounter, "core.blame_probes_admitted"},
    {WellKnown::kHistogram, "core.blame_score", false, 0.0, 1.0, 20},
    {WellKnown::kCounter, "core.verdict_evaluations"},
    {WellKnown::kCounter, "core.verdicts_guilty"},
    {WellKnown::kCounter, "core.verdicts_innocent"},
    {WellKnown::kCounter, "core.ledger_verdicts"},
    {WellKnown::kCounter, "core.accusations_triggered"},
    {WellKnown::kCounter, "core.accusation_model_evaluations"},
    {WellKnown::kCounter, "core.attributions"},
    {WellKnown::kCounter, "core.attribution_node_blamed"},
    {WellKnown::kCounter, "core.attribution_network_blamed"},
    {WellKnown::kCounter, "core.accusations_verified"},
    {WellKnown::kCounter, "core.accusation_checks_failed"},
    {WellKnown::kCounter, "core.equivocation_proofs_verified"},
    {WellKnown::kCounter, "core.equivocation_checks_failed"},
    {WellKnown::kCounter, "core.bandwidth_evaluations"},
    {WellKnown::kCounter, "core.verdicts_retracted"},
    // runtime — the event-driven cluster.
    {WellKnown::kCounter, "runtime.messages_sent"},
    {WellKnown::kCounter, "runtime.messages_delivered"},
    {WellKnown::kCounter, "runtime.messages_dropped_by_forwarder"},
    {WellKnown::kCounter, "runtime.messages_dropped_by_network"},
    {WellKnown::kCounter, "runtime.snapshots_published"},
    {WellKnown::kCounter, "runtime.snapshots_rejected"},
    {WellKnown::kCounter, "runtime.revisions_pushed"},
    {WellKnown::kCounter, "runtime.revisions_applied"},
    {WellKnown::kCounter, "runtime.accusations_filed"},
    {WellKnown::kCounter, "runtime.commitments_issued"},
    {WellKnown::kCounter, "runtime.commitments_refused"},
    {WellKnown::kCounter, "runtime.trace_records"},
    {WellKnown::kCounter, "runtime.churn_leaves"},
    {WellKnown::kCounter, "runtime.churn_rejoins"},
    // runtime.retry — bounded backoff for forwarding and snapshot exchange.
    {WellKnown::kCounter, "runtime.retry.forward_attempts"},
    {WellKnown::kCounter, "runtime.retry.reacks"},
    {WellKnown::kCounter, "runtime.retry.snapshot_attempts"},
    {WellKnown::kCounter, "runtime.retry.snapshot_retries"},
    {WellKnown::kCounter, "runtime.retry.snapshot_exhausted"},
    {WellKnown::kHistogram, "runtime.retry.backoff_seconds", false, 0.0,
     16.0, 32},
    // chaos — deterministic fault injection (net/chaos.h).
    {WellKnown::kCounter, "chaos.plans_built"},
    {WellKnown::kCounter, "chaos.flap_intervals"},
    {WellKnown::kCounter, "chaos.correlated_outages"},
    {WellKnown::kCounter, "chaos.loss_spikes"},
    {WellKnown::kCounter, "chaos.churn_events"},
    {WellKnown::kCounter, "chaos.packets_reordered"},
    {WellKnown::kCounter, "chaos.packets_duplicated"},
    {WellKnown::kCounter, "chaos.duplicates_suppressed"},
    {WellKnown::kCounter, "chaos.acks_delayed"},
    {WellKnown::kCounter, "chaos.crash_events"},
    {WellKnown::kCounter, "chaos.partition_events"},
    // chaos soak scoring (bench/soak_chaos).
    {WellKnown::kCounter, "chaos.diagnosed_messages"},
    {WellKnown::kCounter, "chaos.false_accusations"},
    {WellKnown::kCounter, "chaos.correct_accusations"},
    // attack — Byzantine campaign activity (runtime/attack.h).
    {WellKnown::kCounter, "attack.nodes_recruited"},
    {WellKnown::kCounter, "attack.equivocations_published"},
    {WellKnown::kCounter, "attack.replays_published"},
    {WellKnown::kCounter, "attack.slanders_filed"},
    {WellKnown::kCounter, "attack.spam_puts"},
    {WellKnown::kCounter, "attack.collusions_pushed"},
    // attack soak scoring (bench/soak_attacks).
    {WellKnown::kCounter, "attack.diagnosed_messages"},
    {WellKnown::kCounter, "attack.false_accusations"},
    {WellKnown::kCounter, "attack.attackers_with_drops"},
    {WellKnown::kCounter, "attack.attackers_caught"},
    {WellKnown::kCounter, "attack.attackers_evaded"},
    {WellKnown::kCounter, "attack.slander_successes"},
    // recovery — crash-stop, journal replay, degraded-mode diagnosis
    // (RECOVERY.md).
    {WellKnown::kCounter, "recovery.crashes"},
    {WellKnown::kCounter, "recovery.restarts"},
    {WellKnown::kCounter, "recovery.journal_replays"},
    {WellKnown::kCounter, "recovery.announcements_sent"},
    {WellKnown::kCounter, "recovery.announcements_delivered"},
    {WellKnown::kCounter, "recovery.repairs_accepted"},
    {WellKnown::kCounter, "recovery.repairs_rejected"},
    {WellKnown::kCounter, "recovery.stewardships_resumed"},
    {WellKnown::kCounter, "recovery.stewardships_abandoned"},
    {WellKnown::kCounter, "recovery.handoffs_delivered"},
    {WellKnown::kCounter, "recovery.insufficient_evidence_verdicts"},
    // recovery soak scoring (bench/soak_recovery).
    {WellKnown::kCounter, "recovery.soak_messages"},
    {WellKnown::kCounter, "recovery.diagnosed_messages"},
    {WellKnown::kCounter, "recovery.false_accusations"},
    {WellKnown::kCounter, "recovery.correct_attributions"},
    {WellKnown::kCounter, "recovery.insufficient_outcomes"},
    {WellKnown::kCounter, "recovery.orphaned_messages"},
    // partition — correlated bisections and their heals (RECOVERY.md).
    {WellKnown::kCounter, "partition.activations"},
    {WellKnown::kCounter, "partition.heals"},
    {WellKnown::kCounter, "partition.messages_blocked"},
    {WellKnown::kCounter, "partition.acks_blocked"},
    {WellKnown::kCounter, "partition.snapshots_blocked"},
    {WellKnown::kCounter, "partition.control_blocked"},
    {WellKnown::kCounter, "partition.resync_rounds"},
    // defense — evidence-integrity countermeasures.
    {WellKnown::kCounter, "defense.snapshots_rejected_stale"},
    {WellKnown::kCounter, "defense.snapshots_rejected_epoch"},
    {WellKnown::kCounter, "defense.equivocation_proofs_filed"},
    {WellKnown::kCounter, "defense.revisions_rejected"},
    {WellKnown::kCounter, "defense.dht_puts_rejected"},
    {WellKnown::kCounter, "defense.malformed_accusations_dropped"},
    // dht — the accusation repository.
    {WellKnown::kCounter, "dht.puts"},
    {WellKnown::kCounter, "dht.gets"},
    {WellKnown::kCounter, "dht.puts_rejected_quota"},
    // sim — the experiment driver.  Trial *counts* are deterministic;
    // wall-clock derived instruments live in the timing section.
    {WellKnown::kCounter, "sim.driver_runs"},
    {WellKnown::kCounter, "sim.driver_trials"},
    {WellKnown::kCounter, "sim.driver_waves"},
    {WellKnown::kGauge, "sim.driver_jobs", true},
    {WellKnown::kGauge, "sim.driver_worker_utilization", true},
    {WellKnown::kGauge, "sim.driver_busy_seconds", true},
    {WellKnown::kHistogram, "sim.driver_run_seconds", true, 0.0, 60.0, 24},
    {WellKnown::kHistogram, "sim.driver_trial_seconds", true, 0.0, 0.05, 50},
    // daemon — conciliumd's trace-driven service loop (DAEMON.md).  The
    // run is deterministic end to end, so everything but the HTTP request
    // counter lives in the deterministic section.
    {WellKnown::kCounter, "daemon.trace_records"},
    {WellKnown::kCounter, "daemon.messages_fed"},
    {WellKnown::kCounter, "daemon.messages_delivered"},
    {WellKnown::kCounter, "daemon.messages_diagnosed"},
    {WellKnown::kCounter, "daemon.false_accusations"},
    {WellKnown::kCounter, "daemon.correct_attributions"},
    {WellKnown::kCounter, "daemon.insufficient_outcomes"},
    {WellKnown::kCounter, "daemon.orphaned_messages"},
    {WellKnown::kCounter, "daemon.churn_events"},
    {WellKnown::kCounter, "daemon.crash_events"},
    {WellKnown::kCounter, "daemon.fault_downs"},
    {WellKnown::kCounter, "daemon.attack_roles"},
    {WellKnown::kCounter, "daemon.checkpoints_written"},
    {WellKnown::kCounter, "daemon.resume_replays"},
    {WellKnown::kCounter, "daemon.ticks"},
    {WellKnown::kCounter, "daemon.io.write_errors"},
    {WellKnown::kCounter, "daemon.io.write_retries"},
    {WellKnown::kCounter, "daemon.io.checkpoints_quarantined"},
    {WellKnown::kCounter, "daemon.io.checkpoints_pruned"},
    {WellKnown::kGauge, "daemon.io.faults_injected"},
    {WellKnown::kGauge, "daemon.io.degraded"},
    {WellKnown::kCounter, "daemon.http_requests", true},
};

// Windowed sim-clock series (OBSERVABILITY.md "Windowed series").  Named
// `<counter>.by_minute` after the end-of-run total they decompose; every
// entry covers four sim-hours in one-minute windows (the soaks simulate
// two hours plus workload tail).
struct WellKnownSeries {
    const char* name;
    std::int64_t window_us = 60'000'000;  // one sim-minute
    std::size_t windows = 240;
    SeriesMetric::Mode mode = SeriesMetric::Mode::kSum;
};

constexpr WellKnownSeries kWellKnownSeries[] = {
    {"chaos.false_accusations.by_minute"},
    {"attack.false_accusations.by_minute"},
    {"recovery.false_accusations.by_minute"},
    {"runtime.retry.forward_attempts.by_minute"},
    {"partition.messages_blocked.by_minute"},
    {"net.eventsim.queue_depth.by_minute", 60'000'000, 240,
     SeriesMetric::Mode::kMax},
    // Daemon soaks simulate weeks, so these decompose by sim-hour instead
    // of sim-minute: 400 one-hour windows cover a 16-day run.
    {"daemon.messages_fed.by_hour", 3'600'000'000, 400,
     SeriesMetric::Mode::kSum},
    {"daemon.false_accusations.by_hour", 3'600'000'000, 400,
     SeriesMetric::Mode::kSum},
};

}  // namespace

Registry::Registry(bool preregister_well_known) {
    if (!preregister_well_known) return;
    for (const WellKnown& m : kWellKnown) {
        switch (m.kind) {
            case WellKnown::kCounter:
                m.timing ? timing_counter(m.name) : counter(m.name);
                break;
            case WellKnown::kGauge:
                m.timing ? timing_gauge(m.name) : gauge(m.name);
                break;
            case WellKnown::kHistogram:
                m.timing ? timing_histogram(m.name, m.lo, m.hi, m.bins)
                         : histogram(m.name, m.lo, m.hi, m.bins);
                break;
        }
    }
    for (const WellKnownSeries& s : kWellKnownSeries) {
        series(s.name, s.window_us, s.windows, s.mode);
    }
}

void Registry::require_unique(std::string_view name, const void* home) const {
    // Caller holds mutex_.  Kinds share one namespace.
    if (home != &counters_ && counters_.find(name) != counters_.end()) {
        throw std::logic_error("metric '" + std::string(name) +
                               "' already registered as a counter");
    }
    if (home != &gauges_ && gauges_.find(name) != gauges_.end()) {
        throw std::logic_error("metric '" + std::string(name) +
                               "' already registered as a gauge");
    }
    if (home != &histograms_ && histograms_.find(name) != histograms_.end()) {
        throw std::logic_error("metric '" + std::string(name) +
                               "' already registered as a histogram");
    }
    if (home != &series_ && series_.find(name) != series_.end()) {
        throw std::logic_error("metric '" + std::string(name) +
                               "' already registered as a series");
    }
}

Counter& Registry::counter_impl(std::string_view name, bool timing) {
    const std::lock_guard lock(mutex_);
    if (auto it = counters_.find(name); it != counters_.end()) {
        return *it->second.metric;
    }
    require_unique(name, &counters_);
    auto& entry = counters_[std::string(name)];
    entry.metric = std::make_unique<Counter>();
    entry.timing = timing;
    return *entry.metric;
}

Gauge& Registry::gauge_impl(std::string_view name, bool timing) {
    const std::lock_guard lock(mutex_);
    if (auto it = gauges_.find(name); it != gauges_.end()) {
        return *it->second.metric;
    }
    require_unique(name, &gauges_);
    auto& entry = gauges_[std::string(name)];
    entry.metric = std::make_unique<Gauge>();
    entry.timing = timing;
    return *entry.metric;
}

HistogramMetric& Registry::histogram_impl(std::string_view name, double lo,
                                          double hi, std::size_t bins,
                                          bool timing) {
    const std::lock_guard lock(mutex_);
    if (auto it = histograms_.find(name); it != histograms_.end()) {
        HistogramMetric& h = *it->second.metric;
        if (h.lo() != lo || h.hi() != hi || h.bins() != bins) {
            throw std::logic_error("histogram '" + std::string(name) +
                                   "' re-registered with different geometry");
        }
        return h;
    }
    require_unique(name, &histograms_);
    auto& entry = histograms_[std::string(name)];
    entry.metric = std::make_unique<HistogramMetric>(lo, hi, bins);
    entry.timing = timing;
    return *entry.metric;
}

SeriesMetric& Registry::series(std::string_view name, std::int64_t window_us,
                               std::size_t windows, SeriesMetric::Mode mode) {
    const std::lock_guard lock(mutex_);
    if (auto it = series_.find(name); it != series_.end()) {
        SeriesMetric& s = *it->second.metric;
        if (s.window_us() != window_us || s.windows() != windows ||
            s.mode() != mode) {
            throw std::logic_error("series '" + std::string(name) +
                                   "' re-registered with different geometry");
        }
        return s;
    }
    require_unique(name, &series_);
    auto& entry = series_[std::string(name)];
    entry.metric = std::make_unique<SeriesMetric>(window_us, windows, mode);
    entry.timing = false;
    return *entry.metric;
}

Counter& Registry::counter(std::string_view name) {
    return counter_impl(name, /*timing=*/false);
}
Gauge& Registry::gauge(std::string_view name) {
    return gauge_impl(name, /*timing=*/false);
}
HistogramMetric& Registry::histogram(std::string_view name, double lo,
                                     double hi, std::size_t bins) {
    return histogram_impl(name, lo, hi, bins, /*timing=*/false);
}
Counter& Registry::timing_counter(std::string_view name) {
    return counter_impl(name, /*timing=*/true);
}
Gauge& Registry::timing_gauge(std::string_view name) {
    return gauge_impl(name, /*timing=*/true);
}
HistogramMetric& Registry::timing_histogram(std::string_view name, double lo,
                                            double hi, std::size_t bins) {
    return histogram_impl(name, lo, hi, bins, /*timing=*/true);
}

Snapshot Registry::snapshot() const {
    const std::lock_guard lock(mutex_);
    Snapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, entry] : counters_) {
        snap.counters.push_back({name, entry.metric->value(), entry.timing});
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, entry] : gauges_) {
        snap.gauges.push_back({name, entry.metric->value(), entry.timing});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, entry] : histograms_) {
        const HistogramMetric& h = *entry.metric;
        Snapshot::HistogramValue v;
        v.name = name;
        v.lo = h.lo();
        v.hi = h.hi();
        v.counts.resize(h.bins());
        for (std::size_t i = 0; i < h.bins(); ++i) v.counts[i] = h.count(i);
        v.total = h.total();
        v.sum = h.sum();
        v.timing = entry.timing;
        snap.histograms.push_back(std::move(v));
    }
    snap.series.reserve(series_.size());
    for (const auto& [name, entry] : series_) {
        const SeriesMetric& s = *entry.metric;
        Snapshot::SeriesValue v;
        v.name = name;
        v.window_us = s.window_us();
        v.maximum = s.mode() == SeriesMetric::Mode::kMax;
        v.clipped = s.clipped();
        v.timing = entry.timing;
        std::size_t last = 0;
        for (std::size_t i = 0; i < s.windows(); ++i) {
            if (s.value(i) != 0) last = i + 1;
        }
        v.values.resize(last);
        for (std::size_t i = 0; i < last; ++i) v.values[i] = s.value(i);
        snap.series.push_back(std::move(v));
    }
    return snap;
}

void Registry::reset() {
    const std::lock_guard lock(mutex_);
    for (auto& [name, entry] : counters_) entry.metric->reset();
    for (auto& [name, entry] : gauges_) entry.metric->reset();
    for (auto& [name, entry] : histograms_) entry.metric->reset();
    for (auto& [name, entry] : series_) entry.metric->reset();
}

// --------------------------------------------------------------------------
// Exporters

namespace {

std::string prometheus_name(std::string_view name) {
    std::string out = "concilium_";
    for (const char c : name) out += (c == '.' || c == '-') ? '_' : c;
    return out;
}

std::string histogram_json(const Snapshot::HistogramValue& h) {
    std::string out = "{\"lo\": " + json_number(h.lo) +
                      ", \"hi\": " + json_number(h.hi) +
                      ", \"total\": " + json_number(h.total) +
                      ", \"sum\": " + json_number(h.sum) + ", \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
        if (i > 0) out += ", ";
        out += json_number(h.counts[i]);
    }
    out += "]}";
    return out;
}

std::string series_json(const Snapshot::SeriesValue& s) {
    std::string out =
        "{\"window_seconds\": " +
        json_number(static_cast<double>(s.window_us) / 1e6) +
        ", \"mode\": " + json_quote(s.maximum ? "max" : "sum") +
        ", \"clipped\": " + json_number(s.clipped) + ", \"values\": [";
    for (std::size_t i = 0; i < s.values.size(); ++i) {
        if (i > 0) out += ", ";
        out += json_number(s.values[i]);
    }
    out += "]}";
    return out;
}

}  // namespace

std::string Snapshot::to_text() const {
    std::string out;
    const auto header = [&out](const std::string& pname, const char* type,
                               bool timing) {
        if (timing) out += "# TIMING (excluded from determinism checks)\n";
        out += "# TYPE " + pname + " " + type + "\n";
    };
    for (const CounterValue& c : counters) {
        const std::string pname = prometheus_name(c.name);
        header(pname, "counter", c.timing);
        out += pname + " " + json_number(c.value) + "\n";
    }
    for (const GaugeValue& g : gauges) {
        const std::string pname = prometheus_name(g.name);
        header(pname, "gauge", g.timing);
        out += pname + " " + json_number(g.value) + "\n";
    }
    for (const HistogramValue& h : histograms) {
        const std::string pname = prometheus_name(h.name);
        header(pname, "histogram", h.timing);
        std::int64_t cumulative = 0;
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            cumulative += h.counts[i];
            out += pname + "_bucket{le=\"" + json_number(h.upper_edge(i)) +
                   "\"} " + json_number(cumulative) + "\n";
        }
        out += pname + "_bucket{le=\"+Inf\"} " + json_number(h.total) + "\n";
        out += pname + "_sum " + json_number(h.sum) + "\n";
        out += pname + "_count " + json_number(h.total) + "\n";
    }
    for (const SeriesValue& s : series) {
        // Windowed sim-clock series render as a labeled gauge family: one
        // sample per non-zero window, labeled with the window index and
        // width, plus a _clipped companion for out-of-range observations.
        const std::string pname = prometheus_name(s.name);
        header(pname, "gauge", s.timing);
        for (std::size_t w = 0; w < s.values.size(); ++w) {
            if (s.values[w] == 0) continue;
            out += pname + "{window=\"" + json_number(static_cast<std::uint64_t>(w)) +
                   "\",window_seconds=\"" +
                   json_number(static_cast<double>(s.window_us) / 1e6) +
                   "\"} " + json_number(s.values[w]) + "\n";
        }
        out += pname + "_clipped " + json_number(s.clipped) + "\n";
    }
    return out;
}

std::string Snapshot::to_json() const {
    // Two name-sorted sections: "metrics" (deterministic for a fixed seed,
    // byte-comparable across --jobs) and "timing" (wall-clock dependent).
    std::vector<std::pair<std::string, std::string>> lines[2];
    for (const CounterValue& c : counters) {
        lines[c.timing ? 1 : 0].emplace_back(c.name, json_number(c.value));
    }
    for (const GaugeValue& g : gauges) {
        lines[g.timing ? 1 : 0].emplace_back(g.name, json_number(g.value));
    }
    for (const HistogramValue& h : histograms) {
        lines[h.timing ? 1 : 0].emplace_back(h.name, histogram_json(h));
    }
    for (const SeriesValue& s : series) {
        lines[s.timing ? 1 : 0].emplace_back(s.name, series_json(s));
    }
    std::string out = "{\n";
    const char* section_name[2] = {"metrics", "timing"};
    for (int s = 0; s < 2; ++s) {
        std::sort(lines[s].begin(), lines[s].end());
        out += "  ";
        out += json_quote(section_name[s]);
        out += ": {\n";
        for (std::size_t i = 0; i < lines[s].size(); ++i) {
            out += "    " + json_quote(lines[s][i].first) + ": " +
                   lines[s][i].second;
            if (i + 1 < lines[s].size()) out += ',';
            out += '\n';
        }
        out += (s == 0) ? "  },\n" : "  }\n";
    }
    out += "}\n";
    return out;
}

}  // namespace concilium::util::metrics
