#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace concilium::util {

double normal_pdf(double x) {
    static const double kInvSqrt2Pi = 0.3989422804014327;
    return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_cdf(double x, double mean, double stddev) {
    if (stddev <= 0.0) {
        return x < mean ? 0.0 : 1.0;
    }
    return normal_cdf((x - mean) / stddev);
}

double normal_quantile(double p) {
    if (!(p > 0.0 && p < 1.0)) {
        throw std::domain_error("normal_quantile: p must be in (0, 1)");
    }
    // Acklam's rational approximation.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double p_low = 0.02425;
    const double p_high = 1.0 - p_low;
    double q = 0.0;
    double r = 0.0;
    if (p < p_low) {
        q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= p_high) {
        q = p - 0.5;
        r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
                a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
                1.0);
    }
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double log_factorial(int n) {
    if (n < 0) {
        throw std::domain_error("log_factorial: negative argument");
    }
    return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial_coefficient(int n, int k) {
    if (k < 0 || k > n) {
        return -std::numeric_limits<double>::infinity();
    }
    return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double binomial_pmf(int n, int k, double p) {
    if (k < 0 || k > n) return 0.0;
    if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
    if (p >= 1.0) return k == n ? 1.0 : 0.0;
    const double log_pmf = log_binomial_coefficient(n, k) +
                           k * std::log(p) + (n - k) * std::log1p(-p);
    return std::exp(log_pmf);
}

double binomial_upper_tail(int n, int k, double p) {
    if (k <= 0) return 1.0;
    if (k > n) return 0.0;
    // Sum the smaller tail for accuracy.
    if (k > n / 2) {
        double sum = 0.0;
        for (int i = k; i <= n; ++i) sum += binomial_pmf(n, i, p);
        return std::min(1.0, sum);
    }
    double sum = 0.0;
    for (int i = 0; i < k; ++i) sum += binomial_pmf(n, i, p);
    return std::max(0.0, 1.0 - sum);
}

double binomial_lower_tail_exclusive(int n, int k, double p) {
    return 1.0 - binomial_upper_tail(n, k, p);
}

PoissonBinomialNormal::PoissonBinomialNormal(std::span<const double> probs)
    : slots_(probs.size()) {
    if (probs.empty()) {
        throw std::invalid_argument("PoissonBinomialNormal: empty grid");
    }
    double sum = 0.0;
    for (const double p : probs) {
        if (p < 0.0 || p > 1.0) {
            throw std::domain_error(
                "PoissonBinomialNormal: probability outside [0, 1]");
        }
        sum += p;
    }
    const double s = static_cast<double>(slots_);
    grid_mean_ = sum / s;
    double sq = 0.0;
    for (const double p : probs) {
        const double d = p - grid_mean_;
        sq += d * d;
    }
    grid_variance_ = sq / s;
    mu_phi_ = s * grid_mean_;
    const double var_phi =
        s * grid_mean_ * (1.0 - grid_mean_) - s * grid_variance_;
    sigma_phi_ = std::sqrt(std::max(0.0, var_phi));
}

double PoissonBinomialNormal::cdf(double x) const {
    return normal_cdf(x, mu_phi_, sigma_phi_);
}

double PoissonBinomialNormal::pmf(int d) const {
    return cdf(d + 0.5) - cdf(d - 0.5);
}

void OnlineMoments::add(double x) noexcept {
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void OnlineMoments::merge(const OnlineMoments& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double OnlineMoments::variance() const noexcept {
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_);
}

double OnlineMoments::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
    if (!(hi > lo) || bins == 0) {
        throw std::invalid_argument("Histogram: invalid range or bin count");
    }
}

void Histogram::add(double x) noexcept {
    const double pos = (x - lo_) / width_;
    std::size_t bin = 0;
    if (pos >= 0.0) {
        bin = std::min(counts_.size() - 1, static_cast<std::size_t>(pos));
    }
    ++counts_[bin];
    ++total_;
}

void Histogram::merge(const Histogram& other) {
    if (other.lo_ != lo_ || other.hi_ != hi_ ||
        other.counts_.size() != counts_.size()) {
        throw std::invalid_argument("Histogram::merge: geometry mismatch");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        counts_[i] += other.counts_[i];
    }
    total_ += other.total_;
}

double Histogram::bin_center(std::size_t bin) const {
    if (bin >= counts_.size()) {
        throw std::out_of_range("Histogram::bin_center");
    }
    return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(std::size_t bin) const {
    if (total_ == 0) return 0.0;
    return static_cast<double>(count(bin)) /
           (static_cast<double>(total_) * width_);
}

double Histogram::fraction_below(double x) const noexcept {
    if (total_ == 0) return 0.0;
    if (x <= lo_) return 0.0;
    if (x >= hi_) return 1.0;
    const double pos = (x - lo_) / width_;
    const std::size_t full_bins =
        std::min(counts_.size(), static_cast<std::size_t>(pos));
    std::int64_t below = 0;
    for (std::size_t i = 0; i < full_bins; ++i) below += counts_[i];
    double frac = static_cast<double>(below);
    if (full_bins < counts_.size()) {
        const double partial = pos - static_cast<double>(full_bins);
        frac += partial * static_cast<double>(counts_[full_bins]);
    }
    return frac / static_cast<double>(total_);
}

}  // namespace concilium::util
