// Overlay identifiers.
//
// Structured overlays such as Pastry assign every node a fixed-width random
// identifier.  Identifiers are interpreted as strings of base-v digits; the
// paper (Section 3.1) uses identifiers of length l = 32 or 40 digits with
// v = 16 possible values per digit, i.e. 128- or 160-bit hexadecimal strings.
//
// NodeId stores the maximal 160-bit form.  Deployments with shorter digit
// strings simply ignore the trailing digits; all digit-indexed accessors take
// the digit count from the caller's OverlayGeometry.

#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace concilium::util {

class Rng;

/// Static parameters of the identifier space (Section 3.1: "overlay
/// identifiers are l characters long and each character can assume one of v
/// different values").  v is fixed at 16 (hexadecimal digits); l is
/// configurable up to kMaxDigits.
struct OverlayGeometry {
    static constexpr int kDigitBase = 16;   ///< v: values per digit.
    static constexpr int kMaxDigits = 40;   ///< upper bound on l (160 bits).

    int digits = 40;                        ///< l: identifier length in digits.

    [[nodiscard]] constexpr int rows() const noexcept { return digits; }
    [[nodiscard]] constexpr int columns() const noexcept { return kDigitBase; }
    /// Total number of jump-table slots (l rows x v columns).
    [[nodiscard]] constexpr int table_slots() const noexcept {
        return digits * kDigitBase;
    }

    friend bool operator==(const OverlayGeometry&,
                           const OverlayGeometry&) = default;
};

/// A 160-bit overlay identifier viewed as 40 hexadecimal digits,
/// most-significant digit first.
class NodeId {
  public:
    static constexpr int kBytes = 20;
    static constexpr int kDigits = 2 * kBytes;

    /// The all-zero identifier.
    constexpr NodeId() noexcept : bytes_{} {}

    /// Builds an identifier from raw big-endian bytes.
    explicit constexpr NodeId(const std::array<std::uint8_t, kBytes>& bytes) noexcept
        : bytes_(bytes) {}

    /// Parses a hex string of up to kDigits characters (shorter strings are
    /// left-aligned and zero-padded).  Throws std::invalid_argument on any
    /// non-hex character.
    static NodeId from_hex(std::string_view hex);

    /// Draws an identifier uniformly at random.  Random assignment by the
    /// certificate authority is what stops adversaries from choosing
    /// advantageous identifier-space positions (Section 2).
    static NodeId random(Rng& rng);

    /// Deterministically derives an identifier from arbitrary bytes (used to
    /// key DHT entries by public key, Section 3.4).
    static NodeId hash_of(std::string_view data);

    /// Returns digit i (0 = most significant), in [0, 16).
    [[nodiscard]] int digit(int i) const;

    /// Returns a copy with digit i replaced by value.  This is the "point p"
    /// construction of secure routing: the local identifier with the i-th
    /// character substituted with j (Section 2).
    [[nodiscard]] NodeId with_digit(int i, int value) const;

    /// Length of the shared digit prefix with other, in [0, kDigits].
    [[nodiscard]] int shared_prefix_digits(const NodeId& other) const noexcept;

    /// Absolute distance on the identifier ring (min of clockwise and
    /// counter-clockwise distance), returned as a NodeId-sized magnitude.
    [[nodiscard]] NodeId ring_distance(const NodeId& other) const noexcept;

    /// Lossy projection of the identifier (or a ring distance) onto a double
    /// in [0, 1): the identifier's position as a fraction of the ring.
    [[nodiscard]] double as_fraction() const noexcept;

    [[nodiscard]] std::string to_hex() const;
    /// First eight hex digits; convenient for logs.
    [[nodiscard]] std::string short_hex() const;

    [[nodiscard]] const std::array<std::uint8_t, kBytes>& bytes() const noexcept {
        return bytes_;
    }

    friend constexpr auto operator<=>(const NodeId&, const NodeId&) = default;

  private:
    std::array<std::uint8_t, kBytes> bytes_;  // big-endian digit string
};

/// FNV-1a over the identifier bytes, for unordered containers.
struct NodeIdHash {
    std::size_t operator()(const NodeId& id) const noexcept;
};

/// Clockwise distance from a to b on the ring (b - a mod 2^160).
NodeId clockwise_distance(const NodeId& a, const NodeId& b) noexcept;

}  // namespace concilium::util
