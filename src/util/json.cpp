#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace concilium::util {

std::string json_quote(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
    return out;
}

std::string json_number(double v) {
    if (!std::isfinite(v)) return v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

std::string json_number(std::int64_t v) {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

std::string json_number(std::uint64_t v) {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

}  // namespace concilium::util
