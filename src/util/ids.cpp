#include "util/ids.h"

#include <cstddef>
#include <stdexcept>

#include "util/rng.h"

namespace concilium::util {

namespace {

int hex_value(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    throw std::invalid_argument("NodeId::from_hex: non-hex character");
}

constexpr char kHexDigits[] = "0123456789abcdef";

}  // namespace

NodeId NodeId::from_hex(std::string_view hex) {
    if (hex.size() > kDigits) {
        throw std::invalid_argument("NodeId::from_hex: too many digits");
    }
    std::array<std::uint8_t, kBytes> bytes{};
    for (std::size_t i = 0; i < hex.size(); ++i) {
        const int v = hex_value(hex[i]);
        if (i % 2 == 0) {
            bytes[i / 2] = static_cast<std::uint8_t>(v << 4);
        } else {
            bytes[i / 2] = static_cast<std::uint8_t>(bytes[i / 2] | v);
        }
    }
    return NodeId(bytes);
}

NodeId NodeId::random(Rng& rng) {
    std::array<std::uint8_t, kBytes> bytes{};
    for (auto& b : bytes) {
        b = static_cast<std::uint8_t>(rng.uniform_u64() & 0xff);
    }
    return NodeId(bytes);
}

NodeId NodeId::hash_of(std::string_view data) {
    // Two rounds of FNV-1a with different offsets, spread across the 20
    // bytes.  Not cryptographic -- see crypto/ for the trust model -- but
    // stable, well-distributed, and dependency-free.
    std::array<std::uint8_t, kBytes> bytes{};
    std::uint64_t h1 = 0xcbf29ce484222325ULL;
    std::uint64_t h2 = 0x84222325cbf29ce4ULL;
    for (unsigned char c : data) {
        h1 = (h1 ^ c) * 0x100000001b3ULL;
        h2 = (h2 ^ (c + 0x9e)) * 0x100000001b3ULL;
    }
    std::uint64_t h3 = h1 ^ (h2 << 1) ^ (h2 >> 7);
    for (int i = 0; i < 8; ++i) {
        bytes[i] = static_cast<std::uint8_t>(h1 >> (56 - 8 * i));
        bytes[i + 8] = static_cast<std::uint8_t>(h2 >> (56 - 8 * i));
    }
    for (int i = 0; i < 4; ++i) {
        bytes[16 + i] = static_cast<std::uint8_t>(h3 >> (24 - 8 * i));
    }
    return NodeId(bytes);
}

int NodeId::digit(int i) const {
    if (i < 0 || i >= kDigits) {
        throw std::out_of_range("NodeId::digit: index out of range");
    }
    const std::uint8_t byte = bytes_[static_cast<std::size_t>(i) / 2];
    return (i % 2 == 0) ? (byte >> 4) : (byte & 0x0f);
}

NodeId NodeId::with_digit(int i, int value) const {
    if (i < 0 || i >= kDigits) {
        throw std::out_of_range("NodeId::with_digit: index out of range");
    }
    if (value < 0 || value >= OverlayGeometry::kDigitBase) {
        throw std::out_of_range("NodeId::with_digit: digit value out of range");
    }
    std::array<std::uint8_t, kBytes> bytes = bytes_;
    auto& byte = bytes[static_cast<std::size_t>(i) / 2];
    if (i % 2 == 0) {
        byte = static_cast<std::uint8_t>((byte & 0x0f) | (value << 4));
    } else {
        byte = static_cast<std::uint8_t>((byte & 0xf0) | value);
    }
    return NodeId(bytes);
}

int NodeId::shared_prefix_digits(const NodeId& other) const noexcept {
    for (int i = 0; i < kBytes; ++i) {
        if (bytes_[i] != other.bytes_[i]) {
            const int hi_a = bytes_[i] >> 4;
            const int hi_b = other.bytes_[i] >> 4;
            return 2 * i + (hi_a == hi_b ? 1 : 0);
        }
    }
    return kDigits;
}

NodeId clockwise_distance(const NodeId& a, const NodeId& b) noexcept {
    // b - a mod 2^160, big-endian subtraction with borrow.
    std::array<std::uint8_t, NodeId::kBytes> out{};
    int borrow = 0;
    for (int i = NodeId::kBytes - 1; i >= 0; --i) {
        int diff = static_cast<int>(b.bytes()[i]) -
                   static_cast<int>(a.bytes()[i]) - borrow;
        borrow = diff < 0 ? 1 : 0;
        if (diff < 0) diff += 256;
        out[i] = static_cast<std::uint8_t>(diff);
    }
    return NodeId(out);
}

NodeId NodeId::ring_distance(const NodeId& other) const noexcept {
    const NodeId cw = clockwise_distance(*this, other);
    const NodeId ccw = clockwise_distance(other, *this);
    return cw < ccw ? cw : ccw;
}

double NodeId::as_fraction() const noexcept {
    // Use the top 53 bits so the result is an exact double strictly below
    // 1.0 even for the all-ones identifier.
    std::uint64_t top = 0;
    for (int i = 0; i < 8; ++i) {
        top = (top << 8) | bytes_[i];
    }
    top >>= 11;  // keep 53 bits
    return static_cast<double>(top) / 9007199254740992.0;  // 2^53
}

std::string NodeId::to_hex() const {
    std::string out;
    out.reserve(kDigits);
    for (const std::uint8_t b : bytes_) {
        out.push_back(kHexDigits[b >> 4]);
        out.push_back(kHexDigits[b & 0x0f]);
    }
    return out;
}

std::string NodeId::short_hex() const { return to_hex().substr(0, 8); }

std::size_t NodeIdHash::operator()(const NodeId& id) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::uint8_t b : id.bytes()) {
        h = (h ^ b) * 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
}

}  // namespace concilium::util
