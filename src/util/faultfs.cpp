#include "util/faultfs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "util/rate_spec.h"

namespace concilium::util {

namespace {

constexpr RateSpecKind kRateKinds[] = {
    {static_cast<std::size_t>(IoFaultKind::kEio), "eio"},
    {static_cast<std::size_t>(IoFaultKind::kShortWrite), "short"},
    {static_cast<std::size_t>(IoFaultKind::kTornRename), "torn_rename"},
    {static_cast<std::size_t>(IoFaultKind::kBitrot), "bitrot"},
    {static_cast<std::size_t>(IoFaultKind::kEnospc), "enospc"},
};

constexpr unsigned bit(IoFaultKind kind) {
    return 1u << static_cast<unsigned>(kind);
}

[[noreturn]] void throw_errno(const std::string& path, const char* op) {
    throw std::runtime_error(path + ": " + op + " failed: " +
                             std::strerror(errno));
}

}  // namespace

std::string_view to_string(IoFaultKind kind) {
    switch (kind) {
        case IoFaultKind::kEio: return "eio";
        case IoFaultKind::kShortWrite: return "short";
        case IoFaultKind::kTornRename: return "torn_rename";
        case IoFaultKind::kBitrot: return "bitrot";
        case IoFaultKind::kEnospc: return "enospc";
        case IoFaultKind::kCrash: return "crash";
        case IoFaultKind::kCount: break;
    }
    return "none";
}

std::pair<std::uint64_t, IoFaultKind> parse_one_shot_fault(
    std::string_view text) {
    const auto fail = [&](const std::string& what) {
        return std::invalid_argument("--io-fault-at: " + what + " (in '" +
                                     std::string(text) + "')");
    };
    const std::size_t colon = text.find(':');
    if (colon == std::string_view::npos) {
        throw fail("expected 'SITE:KIND'");
    }
    const std::string_view site_text = text.substr(0, colon);
    const std::string_view kind_text = text.substr(colon + 1);
    if (site_text.empty()) throw fail("empty site index");
    std::uint64_t site = 0;
    for (const char c : site_text) {
        if (c < '0' || c > '9') throw fail("malformed site index");
        site = site * 10 + static_cast<std::uint64_t>(c - '0');
    }
    for (std::size_t k = 0; k < static_cast<std::size_t>(IoFaultKind::kCount);
         ++k) {
        if (kind_text == to_string(static_cast<IoFaultKind>(k))) {
            return {site, static_cast<IoFaultKind>(k)};
        }
    }
    throw fail("unknown fault kind '" + std::string(kind_text) +
               "' (known: eio, short, torn_rename, bitrot, enospc, crash)");
}

IoFaultSpec IoFaultSpec::parse(std::string_view text, std::uint64_t seed) {
    IoFaultSpec spec;
    spec.seed = seed;
    parse_rate_spec(text, "--io-faults", "io fault", kRateKinds, spec.rates);
    return spec;
}

std::string IoFaultSpec::format() const {
    return format_rate_spec(kRateKinds, rates);
}

bool IoFaultSpec::any() const noexcept {
    for (const double r : rates) {
        if (r > 0.0) return true;
    }
    return false;
}

FaultFs& FaultFs::system() {
    static FaultFs fs;
    return fs;
}

void FaultFs::arm_one_shot(std::uint64_t site, IoFaultKind kind) {
    if (kind == IoFaultKind::kCount) {
        throw std::invalid_argument("--io-fault-at: no fault kind given");
    }
    one_shot_armed_ = true;
    one_shot_site_ = site;
    one_shot_kind_ = kind;
}

void FaultFs::arm_one_shot(std::string_view text) {
    const auto [site, kind] = parse_one_shot_fault(text);
    arm_one_shot(site, kind);
}

std::uint64_t FaultFs::site_entropy() const noexcept {
    // ops_ has already been advanced past this site, so -1 keys the
    // entropy to the firing site itself.
    return Rng::substream_seed(spec_.seed ^ 0xB17F11Full, ops_ - 1);
}

IoFaultKind FaultFs::next_site(unsigned applicable, bool rate_eligible) {
    const std::uint64_t site = ops_++;
    if (one_shot_armed_ && site == one_shot_site_ &&
        (applicable & bit(one_shot_kind_)) != 0) {
        one_shot_armed_ = false;
        ++injected_;
        return one_shot_kind_;
    }
    if (!rate_eligible) return IoFaultKind::kCount;
    // Rate draws in fixed kind order; only applicable kinds consume
    // randomness, so the schedule is a pure function of the op sequence.
    for (const RateSpecKind& k : kRateKinds) {
        const auto kind = static_cast<IoFaultKind>(k.slot);
        if ((applicable & bit(kind)) == 0) continue;
        const double rate = spec_.rates[k.slot];
        if (rate <= 0.0) continue;
        if (rng_.bernoulli(rate)) {
            ++injected_;
            return kind;
        }
    }
    return IoFaultKind::kCount;
}

void FaultFs::throw_injected(IoFaultKind kind, const std::string& path,
                             const char* op) {
    const char* why = kind == IoFaultKind::kEnospc
                          ? "ENOSPC (no space left on device)"
                          : "EIO (input/output error)";
    throw std::runtime_error(path + ": " + op + " failed: injected " + why +
                             " [io fault site " + std::to_string(ops_ - 1) +
                             "]");
}

int FaultFs::open_trunc(const std::string& path) {
    switch (next_site(bit(IoFaultKind::kEio) | bit(IoFaultKind::kEnospc) |
                      bit(IoFaultKind::kCrash))) {
        case IoFaultKind::kCrash: std::_Exit(137);
        case IoFaultKind::kEio:
            throw_injected(IoFaultKind::kEio, path, "open");
        case IoFaultKind::kEnospc:
            throw_injected(IoFaultKind::kEnospc, path, "open");
        default: break;
    }
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) throw_errno(path, "open");
    return fd;
}

void FaultFs::write_all(int fd, std::string_view data,
                        const std::string& path) {
    std::size_t limit = data.size();
    switch (next_site(bit(IoFaultKind::kEio) | bit(IoFaultKind::kEnospc) |
                      bit(IoFaultKind::kShortWrite) |
                      bit(IoFaultKind::kCrash))) {
        case IoFaultKind::kCrash: std::_Exit(137);
        case IoFaultKind::kEio:
            throw_injected(IoFaultKind::kEio, path, "write");
        case IoFaultKind::kEnospc:
            throw_injected(IoFaultKind::kEnospc, path, "write");
        case IoFaultKind::kShortWrite:
            // The lying-disk shape: persist a deterministic prefix, then
            // report success.  Verification, not hope, has to catch it.
            if (!data.empty()) limit = site_entropy() % data.size();
            break;
        default: break;
    }
    std::size_t off = 0;
    while (off < limit) {
        const ssize_t n = ::write(fd, data.data() + off, limit - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno(path, "write");
        }
        off += static_cast<std::size_t>(n);
    }
}

void FaultFs::fsync_fd(int fd, const std::string& path) {
    switch (next_site(bit(IoFaultKind::kEio) | bit(IoFaultKind::kCrash))) {
        case IoFaultKind::kCrash: std::_Exit(137);
        case IoFaultKind::kEio:
            throw_injected(IoFaultKind::kEio, path, "fsync");
        default: break;
    }
    if (::fsync(fd) != 0) throw_errno(path, "fsync");
}

void FaultFs::rename_file(const std::string& from, const std::string& to) {
    IoFaultKind bitrot_pending = IoFaultKind::kCount;
    switch (next_site(bit(IoFaultKind::kEio) |
                      bit(IoFaultKind::kTornRename) |
                      bit(IoFaultKind::kBitrot) | bit(IoFaultKind::kCrash))) {
        case IoFaultKind::kCrash: std::_Exit(137);
        case IoFaultKind::kEio:
            throw_injected(IoFaultKind::kEio, to, "rename");
        case IoFaultKind::kTornRename: {
            // Power-loss shape: the destination materializes truncated,
            // the source is gone, and the call claims success.
            std::string text;
            if (std::FILE* f = std::fopen(from.c_str(), "rb")) {
                char buf[1 << 14];
                std::size_t n;
                while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
                    text.append(buf, n);
                }
                std::fclose(f);
            }
            const std::size_t keep =
                text.empty() ? 0 : site_entropy() % text.size();
            if (std::FILE* f = std::fopen(to.c_str(), "wb")) {
                std::fwrite(text.data(), 1, keep, f);
                std::fclose(f);
            }
            std::remove(from.c_str());
            return;
        }
        case IoFaultKind::kBitrot:
            bitrot_pending = IoFaultKind::kBitrot;
            break;
        default: break;
    }
    if (std::rename(from.c_str(), to.c_str()) != 0) {
        throw_errno(to, "rename");
    }
    if (bitrot_pending == IoFaultKind::kBitrot) {
        // At-rest decay: flip one deterministically chosen bit of the
        // freshly renamed file.  No error is reported -- that is the point.
        if (std::FILE* f = std::fopen(to.c_str(), "r+b")) {
            std::string text;
            char buf[1 << 14];
            std::size_t n;
            while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
                text.append(buf, n);
            }
            if (!text.empty()) {
                const std::uint64_t target = site_entropy() % (text.size() * 8);
                text[target / 8] = static_cast<char>(
                    static_cast<unsigned char>(text[target / 8]) ^
                    (1u << (target % 8)));
                std::fseek(f, 0, SEEK_SET);
                std::fwrite(text.data(), 1, text.size(), f);
            }
            std::fclose(f);
        }
    }
}

void FaultFs::fsync_dir(const std::string& dir) {
    switch (next_site(bit(IoFaultKind::kEio) | bit(IoFaultKind::kCrash))) {
        case IoFaultKind::kCrash: std::_Exit(137);
        case IoFaultKind::kEio:
            throw_injected(IoFaultKind::kEio, dir, "fsync (directory)");
        default: break;
    }
    const int fd = ::open(dir.empty() ? "." : dir.c_str(),
                          O_RDONLY | O_DIRECTORY);
    if (fd < 0) throw_errno(dir, "open (directory)");
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) throw_errno(dir, "fsync (directory)");
}

std::string FaultFs::read_file(const std::string& path) {
    switch (next_site(bit(IoFaultKind::kEio) | bit(IoFaultKind::kCrash),
                      /*rate_eligible=*/false)) {
        case IoFaultKind::kCrash: std::_Exit(137);
        case IoFaultKind::kEio:
            throw_injected(IoFaultKind::kEio, path, "read");
        default: break;
    }
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) throw_errno(path, "open");
    std::string text;
    char buf[1 << 14];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        text.append(buf, n);
    }
    std::fclose(f);
    return text;
}

void FaultFs::close_fd(int fd) noexcept {
    if (fd >= 0) ::close(fd);
}

}  // namespace concilium::util
