// Strict "kind:rate[,kind:rate]*" spec parsing, shared by the chaos and
// attack command-line surfaces.
//
// net::FaultSpec (`--chaos flap:0.02,...`) and runtime::AttackCampaign
// (`--attack equivocate:0.05,...`) expose the same grammar with the same
// deliberately unforgiving rejection semantics: unknown kinds, duplicated
// kinds, empty/malformed/out-of-range rates, and trailing commas all throw
// std::invalid_argument naming the offending token.  Both parsers live
// here now, parameterized by the option name ("--chaos"), the noun used in
// diagnostics ("fault" / "attack"), and the kind vocabulary, so the
// rejection semantics are specified -- and tested -- exactly once.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>

namespace concilium::util {

/// One name in a rate-spec vocabulary: `slot` indexes the caller's dense
/// rate array (an enum value), `name` is the spelling accepted on the
/// command line.  Table order is also the canonical format_rate_spec()
/// order.
struct RateSpecKind {
    std::size_t slot = 0;
    std::string_view name;
};

/// Throws std::invalid_argument("<option>: <what>"); the shared prefix
/// convention for every rate-spec diagnostic.
[[noreturn]] void throw_bad_rate_spec(std::string_view option,
                                      const std::string& what);

/// Parses `text` and stores each kind's rate into `rates[kind.slot]`
/// (slots not named in the spec are left untouched; the empty string is
/// the empty spec).  Rejections, all via throw_bad_rate_spec(option, ...):
///   - "expected 'kind:rate', got '<pair>'"         (missing colon)
///   - "trailing ',' after '<pair>'"
///   - "unknown <noun> kind '<name>' (known: ...)"
///   - "<noun> '<name>' given twice"
///   - "<noun> '<name>' has an empty rate"
///   - "<noun> '<name>' has a malformed rate '<text>'"  (strict strtod:
///     trailing junk and non-finite values rejected)
///   - "<noun> '<name>' rate <text> is outside [0, 1]"
void parse_rate_spec(std::string_view text, std::string_view option,
                     std::string_view noun,
                     std::span<const RateSpecKind> kinds,
                     std::span<double> rates);

/// The [0, 1] bound check used by programmatic set_rate() calls; throws
/// "<option>: rate <rate> is outside [0, 1]".  Written so NaN fails too.
void check_rate_bounds(std::string_view option, double rate);

/// Canonical spec text: enabled kinds (rate != 0) in table order as
/// "kind:rate" with %g formatting; parse_rate_spec() round-trips it.
[[nodiscard]] std::string format_rate_spec(std::span<const RateSpecKind> kinds,
                                           std::span<const double> rates);

}  // namespace concilium::util
