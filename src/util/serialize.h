// Byte-level serialization for protocol messages.
//
// Concilium exchanges signed artifacts -- routing tables, tomographic
// snapshots, verdicts, accusations -- whose byte encodings matter twice:
// signatures are computed over the encoded form, and Section 4.4 accounts
// for the bandwidth they consume.  ByteWriter/ByteReader provide a simple
// little-endian encoding with explicit sizes.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.h"

namespace concilium::util {

class ByteWriter {
  public:
    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v);
    void f64(double v);
    /// Length-prefixed (u32) byte string.
    void bytes(std::span<const std::uint8_t> data);
    /// Length-prefixed (u32) UTF-8 string.
    void str(std::string_view s);
    void node_id(const NodeId& id);

    [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
        return buffer_;
    }
    [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
    [[nodiscard]] std::string as_string() const {
        return std::string(buffer_.begin(), buffer_.end());
    }

  private:
    std::vector<std::uint8_t> buffer_;
};

/// Throws std::out_of_range when reads run past the end of the buffer --
/// malformed network input must never be silently truncated.
class ByteReader {
  public:
    explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64();
    double f64();
    std::vector<std::uint8_t> bytes();
    std::string str();
    NodeId node_id();

    [[nodiscard]] bool exhausted() const noexcept {
        return offset_ == data_.size();
    }
    [[nodiscard]] std::size_t remaining() const noexcept {
        return data_.size() - offset_;
    }

  private:
    void need(std::size_t n) const;

    std::span<const std::uint8_t> data_;
    std::size_t offset_ = 0;
};

}  // namespace concilium::util
