// Statistical primitives used throughout the Concilium evaluation:
// the normal approximation to the Poisson-binomial occupancy distribution
// (Section 3.1), binomial tail probabilities for accusation windows
// (Section 4.3), and general accumulators / histograms for the simulations.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace concilium::util {

/// Standard normal probability density.
double normal_pdf(double x);

/// Standard normal cumulative distribution Phi(x).
double normal_cdf(double x);

/// Cumulative distribution of N(mean, stddev^2) at x.  stddev == 0 yields a
/// step function at the mean.
double normal_cdf(double x, double mean, double stddev);

/// Inverse of the standard normal cdf (Acklam's rational approximation,
/// relative error < 1.2e-9).  p must lie in (0, 1).
double normal_quantile(double p);

/// log(n!) via lgamma.
double log_factorial(int n);

/// log of the binomial coefficient C(n, k).
double log_binomial_coefficient(int n, int k);

/// Binomial pmf Pr(X = k) for X ~ Binomial(n, p), computed in log space.
double binomial_pmf(int n, int k, double p);

/// Upper tail Pr(X >= k) for X ~ Binomial(n, p).
/// This is the false-positive form of Section 4.3: Pr(W >= m) with p_good.
double binomial_upper_tail(int n, int k, double p);

/// Lower tail Pr(X < k), i.e. Pr(X <= k-1).
/// This is the false-negative form of Section 4.3: Pr(W < m) with p_faulty.
double binomial_lower_tail_exclusive(int n, int k, double p);

/// Exact mean and variance of a Poisson-binomial distribution (a sum of
/// independent Bernoulli variables with heterogeneous success probabilities),
/// plus the paper's normal approximation to its cdf.
///
/// The paper expresses the moments through grid-normalised quantities
/// (Section 3.1): with S = l*v Bernoulli slots and fill probabilities p_ij,
///     mu      = (1/S) * sum p_ij            (mean occupancy fraction)
///     sigma^2 = (1/S) * sum (p_ij - mu)^2   (variance of the p grid)
///     mu_phi      = S * mu                  (mean slot count)
///     sigma_phi^2 = S*mu*(1-mu) - S*sigma^2 (exact PB variance)
/// The identity sum p(1-p) = S*mu*(1-mu) - S*sigma^2 makes sigma_phi^2 the
/// exact Poisson-binomial variance, so the normal approximation matches the
/// first two moments exactly.
class PoissonBinomialNormal {
  public:
    /// probs: the Bernoulli success probabilities (the p_ij grid, flattened).
    explicit PoissonBinomialNormal(std::span<const double> probs);

    [[nodiscard]] double mean_count() const noexcept { return mu_phi_; }
    [[nodiscard]] double stddev_count() const noexcept { return sigma_phi_; }
    [[nodiscard]] std::size_t slots() const noexcept { return slots_; }

    /// Mean occupancy fraction mu (paper notation).
    [[nodiscard]] double grid_mean() const noexcept { return grid_mean_; }
    /// Variance of the probability grid sigma^2 (paper notation).
    [[nodiscard]] double grid_variance() const noexcept { return grid_variance_; }

    /// Normal-approximate Pr(count <= x) (no continuity correction; callers
    /// that need Pr(count == d) use cdf(d + 0.5) - cdf(d - 0.5) per the
    /// paper's density-test equations).
    [[nodiscard]] double cdf(double x) const;

    /// Normal-approximate point mass Pr(count == d) via continuity
    /// correction, i.e. cdf(d + 1/2) - cdf(d - 1/2).
    [[nodiscard]] double pmf(int d) const;

  private:
    std::size_t slots_;
    double grid_mean_;
    double grid_variance_;
    double mu_phi_;
    double sigma_phi_;
};

/// Welford online accumulator for count / mean / variance / min / max.
class OnlineMoments {
  public:
    void add(double x) noexcept;
    void merge(const OnlineMoments& other) noexcept;

    [[nodiscard]] std::int64_t count() const noexcept { return count_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    /// Population variance (zero when fewer than two samples).
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }

  private:
    std::int64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi].  Out-of-range samples clamp to the
/// edge bins; used to render the blame pdfs of Figure 5.
class Histogram {
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;

    /// Adds every count of `other` into this histogram.  The two must have
    /// identical geometry (range and bin count); merging per-worker
    /// histograms in trial order reproduces the sequential fill exactly.
    void merge(const Histogram& other);

    [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
    [[nodiscard]] std::int64_t total() const noexcept { return total_; }
    [[nodiscard]] std::int64_t count(std::size_t bin) const {
        return counts_.at(bin);
    }
    /// Center of bin i.
    [[nodiscard]] double bin_center(std::size_t bin) const;
    [[nodiscard]] double bin_width() const noexcept { return width_; }
    /// Empirical density for bin i (integrates to 1 over the range).
    [[nodiscard]] double density(std::size_t bin) const;
    /// Fraction of samples below x, linearly interpolating within the bin
    /// that straddles x.
    [[nodiscard]] double fraction_below(double x) const noexcept;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::int64_t> counts_;
    std::int64_t total_ = 0;
};

}  // namespace concilium::util
