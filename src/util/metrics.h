// Process-wide metrics: named counters, gauges, and value histograms with
// a lock-free update path, a consistent snapshot, and text/JSON exporters.
//
// Design goals, in order:
//
//  1. Hot-path updates must be cheap enough to leave enabled everywhere —
//     counters are sharded cache-line-aligned relaxed atomics, so worker
//     threads touching the same counter do not ping-pong one line.
//  2. Deterministic values stay deterministic.  Everything a simulation
//     increments is a pure function of the seed (trial schedules are
//     jobs-independent, see sim::ExperimentDriver), so exporters split the
//     snapshot into a "metrics" section that must be byte-identical across
//     `--jobs` values and a "timing" section (wall time, utilization,
//     worker counts) that legitimately is not.  Register wall-clock-
//     dependent instruments through the `timing_*` accessors.
//  3. One naming convention: `subsystem.metric` (e.g. `core.blame_score`,
//     `net.events_scheduled`).  See OBSERVABILITY.md for the catalogue.
//
// Instrumentation sites should cache the handle once:
//
//     static auto& probes = util::metrics::Registry::global()
//                               .counter("tomography.probes_issued");
//     probes.add(stripe.size());
//
// Handles returned by the registry are valid for the registry's lifetime;
// registration never invalidates previously returned references.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace concilium::util::metrics {

namespace detail {
/// Small per-thread slot used to spread counter updates across shards;
/// assigned round-robin at first use so a worker pool lands on distinct
/// shards.
std::size_t this_thread_slot() noexcept;
}  // namespace detail

/// Monotonic (well, signed — deltas may be negative) event counter.
/// Updates are relaxed atomics on a per-thread shard; `value()` sums the
/// shards and is exact once concurrent writers have quiesced.
class Counter {
  public:
    void add(std::int64_t delta = 1) noexcept {
        shards_[detail::this_thread_slot() & (kShards - 1)].v.fetch_add(
            delta, std::memory_order_relaxed);
    }

    [[nodiscard]] std::int64_t value() const noexcept {
        std::int64_t sum = 0;
        for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
        return sum;
    }

    void reset() noexcept {
        for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
    }

  private:
    static constexpr std::size_t kShards = 16;  // power of two
    struct alignas(64) Shard {
        std::atomic<std::int64_t> v{0};
    };
    std::array<Shard, kShards> shards_{};
};

/// Last-written / accumulated floating-point value.
class Gauge {
  public:
    void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }

    void add(double delta) noexcept {
        double cur = v_.load(std::memory_order_relaxed);
        while (!v_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
        }
    }

    /// Raises the gauge to `v` if `v` exceeds the current value (running
    /// maximum; commutative, so the result is order-independent).
    void set_max(double v) noexcept {
        double cur = v_.load(std::memory_order_relaxed);
        while (cur < v &&
               !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
        }
    }

    [[nodiscard]] double value() const noexcept {
        return v_.load(std::memory_order_relaxed);
    }

    void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/// Fixed-geometry value histogram (same bin layout as util::Histogram:
/// `bins` equal-width bins over [lo, hi], out-of-range observations clamp
/// to the edge bins).  Bin counts are relaxed atomics; `sum` tracks the
/// total of observed values for mean computation.  The sum accumulates in
/// nano-unit fixed point: integer addition commutes exactly, so the
/// exported value is independent of the thread interleaving (floating-point
/// accumulation would drift by an ulp per reordering and break the
/// byte-stable snapshot guarantee).
class HistogramMetric {
  public:
    HistogramMetric(double lo, double hi, std::size_t bins);

    void observe(double x) noexcept;

    [[nodiscard]] double lo() const noexcept { return lo_; }
    [[nodiscard]] double hi() const noexcept { return hi_; }
    [[nodiscard]] std::size_t bins() const noexcept { return bins_; }
    [[nodiscard]] std::int64_t count(std::size_t bin) const noexcept;
    [[nodiscard]] std::int64_t total() const noexcept;
    [[nodiscard]] double sum() const noexcept;
    /// Upper edge of `bin` (used by the Prometheus exporter's `le` labels).
    [[nodiscard]] double upper_edge(std::size_t bin) const noexcept;

    void reset() noexcept;

  private:
    double lo_;
    double hi_;
    double width_;
    std::size_t bins_;
    std::unique_ptr<std::atomic<std::int64_t>[]> counts_;
    std::atomic<std::int64_t> total_{0};
    /// Sum of observations in nano-units (value * 1e9, rounded to nearest).
    std::atomic<std::int64_t> sum_nanos_{0};
};

/// Windowed time series over the *simulation* clock: `windows` fixed-width
/// buckets of `window_us` microseconds covering sim time
/// [0, windows * window_us).  observe(t, v) lands in bucket t / window_us;
/// kSum accumulates and kMax keeps a running maximum — both commute
/// exactly, so a series filled from concurrent driver trials is as
/// byte-stable across `--jobs` as a counter.  Observations outside the
/// covered range count as `clipped` instead of being dropped silently.
class SeriesMetric {
  public:
    enum class Mode { kSum, kMax };

    SeriesMetric(std::int64_t window_us, std::size_t windows, Mode mode);

    void observe(std::int64_t t_us, std::int64_t value = 1) noexcept {
        const std::int64_t w = t_us / window_us_;
        if (t_us < 0 || w >= static_cast<std::int64_t>(windows_)) {
            clipped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        auto& bucket = buckets_[static_cast<std::size_t>(w)];
        if (mode_ == Mode::kSum) {
            bucket.fetch_add(value, std::memory_order_relaxed);
        } else {
            std::int64_t cur = bucket.load(std::memory_order_relaxed);
            while (cur < value &&
                   !bucket.compare_exchange_weak(cur, value,
                                                 std::memory_order_relaxed)) {
            }
        }
    }

    [[nodiscard]] std::int64_t window_us() const noexcept {
        return window_us_;
    }
    [[nodiscard]] std::size_t windows() const noexcept { return windows_; }
    [[nodiscard]] Mode mode() const noexcept { return mode_; }
    [[nodiscard]] std::int64_t value(std::size_t window) const noexcept {
        return buckets_[window].load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t clipped() const noexcept {
        return clipped_.load(std::memory_order_relaxed);
    }

    void reset() noexcept {
        for (std::size_t i = 0; i < windows_; ++i) {
            buckets_[i].store(0, std::memory_order_relaxed);
        }
        clipped_.store(0, std::memory_order_relaxed);
    }

  private:
    std::int64_t window_us_;
    std::size_t windows_;
    Mode mode_;
    std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;
    std::atomic<std::int64_t> clipped_{0};
};

/// Point-in-time copy of every registered metric.  Plain data: safe to
/// keep, compare, or export after the registry has moved on.
struct Snapshot {
    struct CounterValue {
        std::string name;
        std::int64_t value = 0;
        bool timing = false;
    };
    struct GaugeValue {
        std::string name;
        double value = 0.0;
        bool timing = false;
    };
    struct HistogramValue {
        std::string name;
        double lo = 0.0;
        double hi = 1.0;
        std::vector<std::int64_t> counts;
        std::int64_t total = 0;
        double sum = 0.0;
        bool timing = false;
        [[nodiscard]] double upper_edge(std::size_t bin) const noexcept;
    };

    struct SeriesValue {
        std::string name;
        std::int64_t window_us = 0;
        bool maximum = false;  ///< kMax mode (else kSum).
        /// Window values, trailing zero windows trimmed.
        std::vector<std::int64_t> values;
        std::int64_t clipped = 0;
        bool timing = false;
    };

    std::vector<CounterValue> counters;      // sorted by name
    std::vector<GaugeValue> gauges;          // sorted by name
    std::vector<HistogramValue> histograms;  // sorted by name
    std::vector<SeriesValue> series;         // sorted by name

    /// Prometheus-style exposition text (`concilium_` prefix, dots
    /// flattened to underscores, histograms as cumulative `_bucket`
    /// series).  Timing metrics carry a `# TIMING` marker comment.
    [[nodiscard]] std::string to_text() const;

    /// Machine-readable JSON, one metric per line, split into a
    /// deterministic `"metrics"` object and a wall-clock `"timing"`
    /// object.  Compare only `"metrics"` across runs/job counts.
    [[nodiscard]] std::string to_json() const;
};

/// Registry of named metrics.  Lookup/registration takes a mutex (cache
/// the returned reference at the call site); updates through the returned
/// handles are lock-free.  Metric kinds share one namespace: registering
/// `x` as a counter and again as a gauge throws std::logic_error, as does
/// re-registering a histogram with different geometry.
class Registry {
  public:
    /// The process-wide registry.  Pre-seeded with the well-known metric
    /// set (see OBSERVABILITY.md) so snapshots always expose every
    /// subsystem namespace, even ones a given binary never exercises.
    static Registry& global();

    /// `preregister_well_known` seeds the instrument catalogue the global
    /// registry uses; tests construct bare registries with `false`.
    explicit Registry(bool preregister_well_known = false);

    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    HistogramMetric& histogram(std::string_view name, double lo, double hi,
                               std::size_t bins);
    /// Sim-clock windowed series; re-registering with a different geometry
    /// or mode throws.  Series values are deterministic by construction
    /// (sim time is seed-derived), so there is no timing_ variant.
    SeriesMetric& series(std::string_view name, std::int64_t window_us,
                         std::size_t windows, SeriesMetric::Mode mode);

    /// Like the above, but the instrument is classified as wall-clock
    /// dependent and excluded from the deterministic export section.
    Counter& timing_counter(std::string_view name);
    Gauge& timing_gauge(std::string_view name);
    HistogramMetric& timing_histogram(std::string_view name, double lo,
                                      double hi, std::size_t bins);

    [[nodiscard]] Snapshot snapshot() const;

    /// Zeroes every value but keeps all registrations (and handle
    /// validity).  Used between repeated experiments in one process.
    void reset();

  private:
    template <typename T>
    struct Entry {
        std::unique_ptr<T> metric;
        bool timing = false;
    };

    Counter& counter_impl(std::string_view name, bool timing);
    Gauge& gauge_impl(std::string_view name, bool timing);
    HistogramMetric& histogram_impl(std::string_view name, double lo,
                                    double hi, std::size_t bins, bool timing);
    void require_unique(std::string_view name, const void* home) const;

    mutable std::mutex mutex_;
    std::map<std::string, Entry<Counter>, std::less<>> counters_;
    std::map<std::string, Entry<Gauge>, std::less<>> gauges_;
    std::map<std::string, Entry<HistogramMetric>, std::less<>> histograms_;
    std::map<std::string, Entry<SeriesMetric>, std::less<>> series_;
};

}  // namespace concilium::util::metrics
