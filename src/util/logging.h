// Minimal leveled logging.
//
// Simulations involving a hundred thousand links produce torrents of events;
// logging is therefore off by default and enabled per-run (examples use Info,
// debugging uses Debug).  The logger writes to stderr so benchmark stdout
// stays machine-parsable.

#pragma once

#include <sstream>
#include <string>

namespace concilium::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr ("[level] message").  Prefer the LOG_* helpers.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
    if (level < log_level()) return;
    std::ostringstream oss;
    (oss << ... << args);
    log_line(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
    detail::log_fmt(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
    detail::log_fmt(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
    detail::log_fmt(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
    detail::log_fmt(LogLevel::kError, args...);
}

}  // namespace concilium::util
