// Minimal leveled logging.
//
// Simulations involving a hundred thousand links produce torrents of events;
// logging is therefore off by default and enabled per-run (examples use Info,
// debugging uses Debug).  The logger writes to stderr so benchmark stdout
// stays machine-parsable.
//
// Thread safety: each call formats its whole line into one buffer and emits
// it with a single fwrite under a mutex, so lines from the experiment
// driver's worker pool never interleave mid-line.

#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace concilium::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// When enabled, each line carries seconds-since-process-start with
/// microsecond resolution ("[info] 12.345678 message").  Off by default:
/// wall-clock stamps would break byte-identical output comparisons.
void set_log_timestamps(bool enabled);
bool log_timestamps();

/// Emits one line to stderr ("[level] message").  Prefer the LOG_* helpers.
void log_line(LogLevel level, const std::string& message);

/// Tagged form: "[level] (subsystem) message".  Use the short subsystem
/// names from the metrics convention (net, overlay, tomography, core, sim).
void log_line(LogLevel level, std::string_view subsystem,
              const std::string& message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, std::string_view subsystem, const Args&... args) {
    if (level < log_level()) return;
    std::ostringstream oss;
    (oss << ... << args);
    log_line(level, subsystem, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
    detail::log_fmt(LogLevel::kDebug, {}, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
    detail::log_fmt(LogLevel::kInfo, {}, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
    detail::log_fmt(LogLevel::kWarn, {}, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
    detail::log_fmt(LogLevel::kError, {}, args...);
}

// Subsystem-tagged variants; first argument is the tag.
template <typename... Args>
void log_debug_in(std::string_view subsystem, const Args&... args) {
    detail::log_fmt(LogLevel::kDebug, subsystem, args...);
}
template <typename... Args>
void log_info_in(std::string_view subsystem, const Args&... args) {
    detail::log_fmt(LogLevel::kInfo, subsystem, args...);
}
template <typename... Args>
void log_warn_in(std::string_view subsystem, const Args&... args) {
    detail::log_fmt(LogLevel::kWarn, subsystem, args...);
}
template <typename... Args>
void log_error_in(std::string_view subsystem, const Args&... args) {
    detail::log_fmt(LogLevel::kError, subsystem, args...);
}

}  // namespace concilium::util
