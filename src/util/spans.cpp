#include "util/spans.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#include "util/json.h"

namespace concilium::util::spans {

const char* span_name(SpanType t) noexcept {
    switch (t) {
        case SpanType::kWorldBuild: return "world_build";
        case SpanType::kTopologyGen: return "topology_gen";
        case SpanType::kOverlayBuild: return "overlay_build";
        case SpanType::kTreeBuild: return "tree_build";
        case SpanType::kFailureTimeline: return "failure_timeline";
        case SpanType::kScenarioIndex: return "scenario_index";
        case SpanType::kFaultPlan: return "fault_plan";
        case SpanType::kTrial: return "trial";
        case SpanType::kShard: return "shard";
        case SpanType::kProbeRound: return "probe_round";
        case SpanType::kHeavyweightSession: return "heavyweight_session";
        case SpanType::kMleSolve: return "mle_solve";
        case SpanType::kSnapshotExchange: return "snapshot_exchange";
        case SpanType::kDiagnosis: return "diagnosis";
        case SpanType::kJudgment: return "judgment";
        case SpanType::kRecoveryHandshake: return "recovery_handshake";
        case SpanType::kCount: break;
    }
    return "unknown";
}

std::int64_t wall_now_ns() noexcept {
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                epoch)
        .count();
}

namespace detail {

ScopeState& scope_state() noexcept {
    thread_local ScopeState state;
    return state;
}

}  // namespace detail

/// One thread's bounded ring.  Only the owning thread writes; `head` is a
/// monotonic event count published with release stores so collectors that
/// acquire it see completed slots.  Slots wrap oldest-first (the flight
/// recorder behavior); a slot being overwritten while a concurrent collect
/// reads it would race, so collection is specified post-quiescence only.
struct Recorder::ThreadBuffer {
    explicit ThreadBuffer(std::size_t capacity, std::uint16_t ordinal)
        : ring(capacity), ordinal(ordinal) {}
    std::vector<Event> ring;
    std::atomic<std::uint64_t> head{0};
    std::uint16_t ordinal;
};

namespace {

struct RecorderState {
    std::mutex mutex;
    std::vector<std::unique_ptr<Recorder::ThreadBuffer>> buffers;
    std::size_t capacity = Recorder::kDefaultCapacity;
    std::atomic<std::uint32_t> scope_blocks{0};
};

RecorderState& state() {
    // Leaked like metrics::Registry::global(): atexit exporters must be able
    // to collect after static destruction begins.
    static RecorderState* s = new RecorderState;
    return *s;
}

}  // namespace

Recorder& Recorder::global() {
    static Recorder* instance = new Recorder;
    return *instance;
}

void Recorder::enable(std::size_t per_thread_capacity) {
    {
        const std::lock_guard lock(state().mutex);
        state().capacity = std::max<std::size_t>(per_thread_capacity, 16);
    }
    detail::g_enabled.store(true, std::memory_order_relaxed);
}

void Recorder::disable() {
    detail::g_enabled.store(false, std::memory_order_relaxed);
}

void Recorder::clear() {
    const std::lock_guard lock(state().mutex);
    for (auto& buf : state().buffers) {
        buf->head.store(0, std::memory_order_relaxed);
    }
}

Recorder::ThreadBuffer& Recorder::buffer_for_this_thread() noexcept {
    thread_local ThreadBuffer* cached = nullptr;
    if (cached == nullptr) {
        auto& s = state();
        const std::lock_guard lock(s.mutex);
        s.buffers.push_back(std::make_unique<ThreadBuffer>(
            s.capacity, static_cast<std::uint16_t>(s.buffers.size())));
        cached = s.buffers.back().get();
    }
    return *cached;
}

void Recorder::record(Event e) noexcept {
    ThreadBuffer& buf = buffer_for_this_thread();
    auto& scope = detail::scope_state();
    e.scope = scope.scope;
    e.seq = scope.seq++;
    e.thread = buf.ordinal;
    const std::uint64_t h = buf.head.load(std::memory_order_relaxed);
    buf.ring[h % buf.ring.size()] = e;
    buf.head.store(h + 1, std::memory_order_release);
}

std::uint64_t Recorder::next_scope_block() noexcept {
    return static_cast<std::uint64_t>(
               state().scope_blocks.fetch_add(1, std::memory_order_relaxed) +
               1)
           << 32;
}

std::uint64_t Recorder::total_recorded() const {
    const std::lock_guard lock(state().mutex);
    std::uint64_t total = 0;
    for (const auto& buf : state().buffers) {
        total += buf->head.load(std::memory_order_acquire);
    }
    return total;
}

std::uint64_t Recorder::total_dropped() const {
    const std::lock_guard lock(state().mutex);
    std::uint64_t dropped = 0;
    for (const auto& buf : state().buffers) {
        const std::uint64_t h = buf->head.load(std::memory_order_acquire);
        if (h > buf->ring.size()) dropped += h - buf->ring.size();
    }
    return dropped;
}

std::vector<Event> Recorder::collect() const {
    const std::lock_guard lock(state().mutex);
    std::vector<Event> out;
    for (const auto& buf : state().buffers) {
        const std::uint64_t h = buf->head.load(std::memory_order_acquire);
        const std::uint64_t cap = buf->ring.size();
        const std::uint64_t n = std::min(h, cap);
        for (std::uint64_t i = 0; i < n; ++i) {
            // Oldest surviving event first.
            out.push_back(buf->ring[(h - n + i) % cap]);
        }
    }
    return out;
}

std::string Recorder::to_chrome_json() const {
    return spans::to_chrome_json(collect(), total_dropped());
}

// --------------------------------------------------------------------------
// Chrome trace-event export

namespace {

void append_args(std::string& out, const Event& e) {
    out += "\"args\":{\"scope\":" + json_number(e.scope) +
           ",\"seq\":" + json_number(static_cast<std::uint64_t>(e.seq)) +
           ",\"causal\":" + json_number(e.causal) +
           ",\"arg\":" + json_number(e.arg) + "}";
}

}  // namespace

std::string to_chrome_json(const std::vector<Event>& events,
                           std::uint64_t dropped) {
    // Split by which clock an event carries; dual-clock events land in both
    // sections (the wall twin carries the measured compute, the sim twin
    // stays byte-deterministic).
    std::vector<const Event*> sim;
    std::vector<const Event*> wall;
    for (const Event& e : events) {
        if (e.sim_begin != kNoClock) sim.push_back(&e);
        if (e.wall_begin != kNoClock) wall.push_back(&e);
    }

    // The sim section's order — and therefore its bytes — must be a pure
    // function of the seed, so sort by deterministic fields only (never the
    // recorder thread ordinal).
    std::sort(sim.begin(), sim.end(), [](const Event* a, const Event* b) {
        if (a->scope != b->scope) return a->scope < b->scope;
        if (a->seq != b->seq) return a->seq < b->seq;
        if (a->sim_begin != b->sim_begin) return a->sim_begin < b->sim_begin;
        if (a->type != b->type) return a->type < b->type;
        return a->causal < b->causal;
    });
    std::sort(wall.begin(), wall.end(), [](const Event* a, const Event* b) {
        if (a->wall_begin != b->wall_begin) {
            return a->wall_begin < b->wall_begin;
        }
        if (a->thread != b->thread) return a->thread < b->thread;
        return a->seq < b->seq;
    });

    // Dense per-scope track ids in sorted order keep the Perfetto row layout
    // (and the bytes) deterministic.
    std::vector<std::uint64_t> scope_track;
    const auto track_of = [&scope_track](std::uint64_t scope) {
        for (std::size_t i = 0; i < scope_track.size(); ++i) {
            if (scope_track[i] == scope) return i;
        }
        scope_track.push_back(scope);
        return scope_track.size() - 1;
    };

    std::string out = "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
                      "\"tool\":\"concilium util::spans\",\"dropped\":" +
                      json_number(dropped) + "},\"traceEvents\":[\n";
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
           "\"args\":{\"name\":\"sim clock (deterministic)\"}},\n";
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,"
           "\"args\":{\"name\":\"wall clock\"}}";
    for (const Event* e : sim) {
        out += ",\n{\"name\":" + json_quote(span_name(e->type)) +
               ",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
               json_number(static_cast<std::uint64_t>(track_of(e->scope))) +
               ",\"ts\":" + json_number(e->sim_begin) + ",\"dur\":" +
               json_number(std::max<std::int64_t>(0,
                                                  e->sim_end - e->sim_begin)) +
               ",";
        append_args(out, *e);
        out += "}";
    }
    for (const Event* e : wall) {
        out += ",\n{\"name\":" + json_quote(span_name(e->type)) +
               ",\"cat\":\"wall\",\"ph\":\"X\",\"pid\":2,\"tid\":" +
               json_number(static_cast<std::uint64_t>(e->thread)) +
               ",\"ts\":" + json_number(static_cast<double>(e->wall_begin) /
                                        1000.0) +
               ",\"dur\":" +
               json_number(static_cast<double>(std::max<std::int64_t>(
                               0, e->wall_end - e->wall_begin)) /
                           1000.0) +
               ",";
        append_args(out, *e);
        out += "}";
    }
    out += "\n]}\n";
    return out;
}

}  // namespace concilium::util::spans
