// Simulated time.
//
// All protocol timestamps and event-simulator clocks use SimTime, an integer
// count of microseconds since the start of the simulation.  Integer time
// keeps event ordering exact and serialization trivial.

#pragma once

#include <cstdint>

namespace concilium::util {

using SimTime = std::int64_t;  ///< microseconds since simulation start

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

constexpr double to_seconds(SimTime t) noexcept {
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr SimTime from_seconds(double s) noexcept {
    return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

}  // namespace concilium::util
