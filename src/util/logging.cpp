#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace concilium::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<bool> g_timestamps{false};
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "debug";
        case LogLevel::kInfo: return "info";
        case LogLevel::kWarn: return "warn";
        case LogLevel::kError: return "error";
        case LogLevel::kOff: return "off";
    }
    return "?";
}

double seconds_since_start() {
    static const auto start = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_log_timestamps(bool enabled) { g_timestamps.store(enabled); }

bool log_timestamps() { return g_timestamps.load(); }

void log_line(LogLevel level, const std::string& message) {
    log_line(level, {}, message);
}

void log_line(LogLevel level, std::string_view subsystem,
              const std::string& message) {
    if (level < log_level()) return;
    std::string line;
    line.reserve(message.size() + subsystem.size() + 32);
    line += '[';
    line += level_name(level);
    line += "] ";
    if (log_timestamps()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6f ", seconds_since_start());
        line += buf;
    }
    if (!subsystem.empty()) {
        line += '(';
        line += subsystem;
        line += ") ";
    }
    line += message;
    line += '\n';
    const std::lock_guard lock(g_write_mutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace concilium::util
