// Minimal JSON emission helpers shared by the metrics exporter and the
// diagnosis trace.  Formatting is locale-independent and deterministic:
// the same value always renders to the same bytes, which the metrics
// byte-stability guarantees (EXPERIMENTS.md) rely on.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace concilium::util {

/// `s` escaped and wrapped in double quotes, ready to splice into JSON.
[[nodiscard]] std::string json_quote(std::string_view s);

/// Shortest round-trip decimal form of `v` ("0.4", not "0.40000000000000002").
/// Non-finite values (invalid JSON) render as quoted strings.
[[nodiscard]] std::string json_number(double v);

[[nodiscard]] std::string json_number(std::int64_t v);
[[nodiscard]] std::string json_number(std::uint64_t v);

}  // namespace concilium::util
