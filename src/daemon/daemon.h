// conciliumd's engine: a long-running, resumable protocol run (DAEMON.md).
//
// A Daemon owns one deterministic world -- sim::Scenario built from the
// trace's directives, runtime::Cluster driven by the trace's records -- and
// advances it in fixed sim-time ticks.  Ticks exist for three reasons: they
// bound how much workload is scheduled ahead (a weeks-long trace streams
// instead of loading into the calendar queue at once), they are the points
// where checkpoints are cut and stop flags honored, and they give the live
// mode something to pace against wall time so a scraper can watch a run in
// flight.
//
// Determinism contract: the entire run is a pure function of the trace
// bytes (world directives + records) and the loop geometry (tick,
// checkpoint cadence).  Tick boundaries are derived from sim time alone,
// never from wall time, so a paced live run, a flat-out batch run, and a
// killed-and-resumed run all execute the identical event sequence.  That is
// what makes the checkpoint story work: resume replays from sim time zero,
// rewrites every checkpoint it passes (byte-identical by construction),
// verifies its recomputed state against the checkpoint it loaded, and only
// then continues into new work.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "daemon/checkpoint.h"
#include "daemon/workload.h"
#include "net/chaos.h"
#include "runtime/cluster.h"
#include "runtime/retry.h"
#include "sim/scenario.h"
#include "util/faultfs.h"

namespace concilium::daemon {

struct DaemonOptions {
    /// Directory for periodic checkpoints (empty = checkpointing off, and
    /// therefore no resume).
    std::string checkpoint_dir;
    util::SimTime checkpoint_every = 10 * util::kMinute;
    /// Sim-time advance per loop iteration; also the stop-flag and pacing
    /// granularity.
    util::SimTime tick = 30 * util::kSecond;
    /// Extra sim time after the last scheduled record, so in-flight
    /// stewardships finish diagnosing before orphans are counted.
    util::SimTime settle = 5 * util::kMinute;
    /// Retain only the newest this-many checkpoints (0 = keep all).
    /// Redundancy is the fall-back budget: a corrupt newest checkpoint
    /// resumes from its ancestor, so keep >= 2 when pruning at all.
    std::size_t checkpoint_keep = 0;
    /// The storage seam every checkpoint and trace byte moves through.
    /// Defaults to a private passthrough; tests and the fault harness hand
    /// in a FaultFs armed with an injection schedule.
    std::shared_ptr<util::FaultFs> io;
    /// Bounded retry for *loud* checkpoint-write failures (EIO/ENOSPC).
    /// When the budget is exhausted the daemon degrades -- checkpointing
    /// disarms, the run continues, /healthz and daemon.io.* say so --
    /// instead of dying mid-run.
    runtime::RetryPolicy io_retry = default_io_retry();
    runtime::RuntimeParams params;

    [[nodiscard]] static runtime::RetryPolicy default_io_retry() {
        runtime::RetryPolicy p;
        p.max_attempts = 3;
        p.base_delay = 2 * util::kMillisecond;
        p.max_delay = 50 * util::kMillisecond;
        return p;
    }
};

class Daemon {
  public:
    /// Builds the world and, when the checkpoint directory holds a prior
    /// run's checkpoint for this exact trace and loop geometry, arms
    /// replay-and-resume.  Throws std::invalid_argument on a checkpoint
    /// that does not match the trace (wrong trace digest, different tick
    /// or cadence) and std::runtime_error on I/O failure.
    Daemon(Workload workload, DaemonOptions options);
    ~Daemon();

    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /// Advances the run to completion (trace duration + settle).  Returns
    /// true when the run finished; false when `stop` was raised, in which
    /// case a final off-cadence checkpoint has been written and a new
    /// Daemon on the same directory will resume.  `pace_ms` sleeps that
    /// many wall milliseconds per tick in live (non-replay) operation so
    /// external scrapers see a run in motion; replay never paces.
    /// Throws std::runtime_error when replay verification fails.
    bool run(const std::atomic<bool>* stop = nullptr, int pace_ms = 0);

    /// Ground-truth scoring of every completed message, soak_recovery
    /// style.  Orphans are only meaningful after run() returns true.
    struct Score {
        std::uint64_t fed = 0;
        std::uint64_t completed = 0;
        std::uint64_t delivered = 0;
        std::uint64_t diagnosed = 0;
        std::uint64_t false_accusations = 0;
        std::uint64_t correct_attributions = 0;
        std::uint64_t insufficient = 0;
        [[nodiscard]] std::uint64_t orphans() const noexcept {
            return fed - completed;
        }
    };
    [[nodiscard]] const Score& score() const noexcept { return score_; }

    /// The current state serialized in checkpoint format; two runs of the
    /// same trace are identical iff these bytes are.
    [[nodiscard]] std::string state_text() const;

    /// Small key-value health block, first line "ok".  Safe to call from
    /// another thread while run() is executing.
    [[nodiscard]] std::string health_text() const;

    [[nodiscard]] util::SimTime clock() const noexcept { return clock_; }
    [[nodiscard]] util::SimTime end() const noexcept { return end_; }
    [[nodiscard]] bool resumed() const noexcept {
        return resume_target_.has_value();
    }
    [[nodiscard]] const runtime::Cluster& cluster() const noexcept {
        return *cluster_;
    }
    [[nodiscard]] const Workload& workload() const noexcept { return wl_; }

    /// True once checkpoint writing has been disarmed after exhausting the
    /// retry budget; the run itself is still healthy and deterministic.
    [[nodiscard]] bool io_degraded() const noexcept {
        return health_degraded_.load(std::memory_order_relaxed);
    }
    /// One human-readable line per checkpoint quarantined or write budget
    /// exhausted during construction/run, for the operator's stderr
    /// (logging is off by default; these must not be silent).
    [[nodiscard]] const std::vector<std::string>& io_notes() const noexcept {
        return io_notes_;
    }
    [[nodiscard]] util::FaultFs& io() noexcept { return *io_; }

  private:
    [[nodiscard]] Checkpoint build_checkpoint() const;
    void write_checkpoint(bool on_cadence);
    /// Loads the newest *valid* checkpoint in the chain, quarantining any
    /// corrupt ones it walks past.  Returns nullopt when no readable
    /// checkpoint remains (fresh start).
    [[nodiscard]] std::optional<Checkpoint> load_resume_checkpoint();
    void feed_until(util::SimTime t);
    void complete_message(const runtime::Cluster::MessageOutcome& outcome);

    Workload wl_;
    DaemonOptions opts_;
    std::unique_ptr<sim::Scenario> world_;
    std::vector<runtime::NodeBehavior> behaviors_;
    net::FaultPlan plan_;
    net::EventSim sim_;
    std::unique_ptr<runtime::Cluster> cluster_;

    util::SimTime end_ = 0;          ///< duration + settle
    util::SimTime clock_ = 0;        ///< sim time the loop has reached
    std::size_t next_record_ = 0;    ///< feed cursor into wl_.records
    std::uint64_t messages_fed_ = 0;
    std::uint64_t checkpoints_written_ = 0;  ///< cadence checkpoints only
    util::SimTime next_checkpoint_ = 0;      ///< 0 = checkpointing off
    Score score_;

    /// Durability state.  checkpoint_armed_ flips false when the write
    /// retry budget is exhausted (graceful degradation); cadence
    /// accounting continues regardless, because checkpoints_written_ is
    /// part of the deterministic state text and must stay a pure function
    /// of sim progress, faults or no faults.
    std::shared_ptr<util::FaultFs> io_;
    bool checkpoint_armed_ = false;
    util::Rng io_retry_rng_;  ///< jitter stream for io_retry backoff
    std::vector<std::string> io_notes_;

    /// Replay-and-resume state (set when a valid checkpoint was loaded).
    std::optional<util::SimTime> resume_target_;
    std::string resume_expected_;  ///< loaded checkpoint, re-serialized

    /// Mirrors for health_text(), readable off-thread.
    std::atomic<std::int64_t> health_clock_{0};
    std::atomic<std::uint64_t> health_fed_{0};
    std::atomic<std::uint64_t> health_completed_{0};
    std::atomic<bool> health_replaying_{false};
    std::atomic<bool> health_degraded_{false};
    std::atomic<std::uint64_t> health_quarantined_{0};
};

}  // namespace concilium::daemon
