// conciliumd's engine: a long-running, resumable protocol run (DAEMON.md).
//
// A Daemon owns one deterministic world -- sim::Scenario built from the
// trace's directives, runtime::Cluster driven by the trace's records -- and
// advances it in fixed sim-time ticks.  Ticks exist for three reasons: they
// bound how much workload is scheduled ahead (a weeks-long trace streams
// instead of loading into the calendar queue at once), they are the points
// where checkpoints are cut and stop flags honored, and they give the live
// mode something to pace against wall time so a scraper can watch a run in
// flight.
//
// Determinism contract: the entire run is a pure function of the trace
// bytes (world directives + records) and the loop geometry (tick,
// checkpoint cadence).  Tick boundaries are derived from sim time alone,
// never from wall time, so a paced live run, a flat-out batch run, and a
// killed-and-resumed run all execute the identical event sequence.  That is
// what makes the checkpoint story work: resume replays from sim time zero,
// rewrites every checkpoint it passes (byte-identical by construction),
// verifies its recomputed state against the checkpoint it loaded, and only
// then continues into new work.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "daemon/checkpoint.h"
#include "daemon/workload.h"
#include "net/chaos.h"
#include "runtime/cluster.h"
#include "sim/scenario.h"

namespace concilium::daemon {

struct DaemonOptions {
    /// Directory for periodic checkpoints (empty = checkpointing off, and
    /// therefore no resume).
    std::string checkpoint_dir;
    util::SimTime checkpoint_every = 10 * util::kMinute;
    /// Sim-time advance per loop iteration; also the stop-flag and pacing
    /// granularity.
    util::SimTime tick = 30 * util::kSecond;
    /// Extra sim time after the last scheduled record, so in-flight
    /// stewardships finish diagnosing before orphans are counted.
    util::SimTime settle = 5 * util::kMinute;
    runtime::RuntimeParams params;
};

class Daemon {
  public:
    /// Builds the world and, when the checkpoint directory holds a prior
    /// run's checkpoint for this exact trace and loop geometry, arms
    /// replay-and-resume.  Throws std::invalid_argument on a checkpoint
    /// that does not match the trace (wrong trace digest, different tick
    /// or cadence) and std::runtime_error on I/O failure.
    Daemon(Workload workload, DaemonOptions options);
    ~Daemon();

    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /// Advances the run to completion (trace duration + settle).  Returns
    /// true when the run finished; false when `stop` was raised, in which
    /// case a final off-cadence checkpoint has been written and a new
    /// Daemon on the same directory will resume.  `pace_ms` sleeps that
    /// many wall milliseconds per tick in live (non-replay) operation so
    /// external scrapers see a run in motion; replay never paces.
    /// Throws std::runtime_error when replay verification fails.
    bool run(const std::atomic<bool>* stop = nullptr, int pace_ms = 0);

    /// Ground-truth scoring of every completed message, soak_recovery
    /// style.  Orphans are only meaningful after run() returns true.
    struct Score {
        std::uint64_t fed = 0;
        std::uint64_t completed = 0;
        std::uint64_t delivered = 0;
        std::uint64_t diagnosed = 0;
        std::uint64_t false_accusations = 0;
        std::uint64_t correct_attributions = 0;
        std::uint64_t insufficient = 0;
        [[nodiscard]] std::uint64_t orphans() const noexcept {
            return fed - completed;
        }
    };
    [[nodiscard]] const Score& score() const noexcept { return score_; }

    /// The current state serialized in checkpoint format; two runs of the
    /// same trace are identical iff these bytes are.
    [[nodiscard]] std::string state_text() const;

    /// Small key-value health block, first line "ok".  Safe to call from
    /// another thread while run() is executing.
    [[nodiscard]] std::string health_text() const;

    [[nodiscard]] util::SimTime clock() const noexcept { return clock_; }
    [[nodiscard]] util::SimTime end() const noexcept { return end_; }
    [[nodiscard]] bool resumed() const noexcept {
        return resume_target_.has_value();
    }
    [[nodiscard]] const runtime::Cluster& cluster() const noexcept {
        return *cluster_;
    }
    [[nodiscard]] const Workload& workload() const noexcept { return wl_; }

  private:
    [[nodiscard]] Checkpoint build_checkpoint() const;
    void write_checkpoint(bool on_cadence);
    void feed_until(util::SimTime t);
    void complete_message(const runtime::Cluster::MessageOutcome& outcome);

    Workload wl_;
    DaemonOptions opts_;
    std::unique_ptr<sim::Scenario> world_;
    std::vector<runtime::NodeBehavior> behaviors_;
    net::FaultPlan plan_;
    net::EventSim sim_;
    std::unique_ptr<runtime::Cluster> cluster_;

    util::SimTime end_ = 0;          ///< duration + settle
    util::SimTime clock_ = 0;        ///< sim time the loop has reached
    std::size_t next_record_ = 0;    ///< feed cursor into wl_.records
    std::uint64_t messages_fed_ = 0;
    std::uint64_t checkpoints_written_ = 0;  ///< cadence checkpoints only
    util::SimTime next_checkpoint_ = 0;      ///< 0 = checkpointing off
    Score score_;

    /// Replay-and-resume state (set when a valid checkpoint was loaded).
    std::optional<util::SimTime> resume_target_;
    std::string resume_expected_;  ///< loaded checkpoint, re-serialized

    /// Mirrors for health_text(), readable off-thread.
    std::atomic<std::int64_t> health_clock_{0};
    std::atomic<std::uint64_t> health_fed_{0};
    std::atomic<std::uint64_t> health_completed_{0};
    std::atomic<bool> health_replaying_{false};
};

}  // namespace concilium::daemon
