// Daemon checkpoints: periodic, verifiable progress records (DAEMON.md).
//
// conciliumd's recovery story is the NodeJournal philosophy applied at
// process scope: the workload trace is the journal of record, the run is a
// pure function of (trace bytes, directives), and a restarted daemon
// *replays* that function deterministically.  A checkpoint therefore does
// not serialize the cluster -- it records a digest of the full
// deterministic state at one sim instant (ground-truth stats, every node's
// journal, the feed cursor) so that
//
//   * restart knows the sim clock the previous incarnation had reached
//     (the resume target),
//   * the replay can be *verified*: when the replayed run reaches the
//     checkpointed clock its recomputed state text must match the
//     checkpoint byte for byte, or the daemon refuses to continue
//     (non-determinism and trace tampering both fail loudly), and
//   * two runs of the same trace -- killed-and-resumed or not -- can be
//     compared with cmp(1): equal state text == identical runs.
//
// The file format is the same strict line-oriented text as the trace, with
// a trailing self-digest so a torn write is detected even though writes go
// through write_atomic()'s tmp-fsync-rename-fsync sequence.
//
// Durability (DAEMON.md "Durability under storage faults"): all checkpoint
// file I/O goes through util::FaultFs, the deterministic storage-fault
// seam.  The chain helpers below implement verify-and-fall-back: a
// digest-mismatched, truncated, or unreadable checkpoint is *quarantined*
// (renamed with a named reason) instead of wedging resume, and the daemon
// proceeds from the newest valid ancestor -- redundancy plus verification,
// never hope.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/faultfs.h"
#include "util/time.h"

namespace concilium::runtime {
class NodeJournal;
}  // namespace concilium::runtime

namespace concilium::daemon {

struct Checkpoint {
    /// FNV-1a of the raw trace text this run was driven by.
    std::uint64_t trace_fnv = 0;
    util::SimTime sim_clock = 0;
    /// Loop geometry: a resume with different tick or cadence would place
    /// feed windows and checkpoints elsewhere and silently diverge, so the
    /// daemon refuses to resume across a mismatch.
    util::SimTime tick = 0;
    util::SimTime checkpoint_every = 0;
    std::uint64_t messages_fed = 0;
    std::uint64_t checkpoints_written = 0;

    /// Ground-truth runtime::Cluster::Stats, every field by name in
    /// declaration order.
    std::vector<std::pair<std::string, std::uint64_t>> stats;

    /// Per-node durable state: entry count + FNV-1a over a canonical
    /// encoding of each NodeJournal.
    struct JournalDigest {
        std::uint64_t entries = 0;
        std::uint64_t fnv = 0;
    };
    std::vector<JournalDigest> journals;

    /// Serializes to the checkpoint text, self-digest line included.
    [[nodiscard]] std::string to_text() const;

    /// Strict parse; verifies the self-digest.  Throws
    /// std::invalid_argument naming `origin` and the offending line.
    [[nodiscard]] static Checkpoint parse(std::string_view text,
                                          std::string_view origin);

    [[nodiscard]] static Checkpoint parse_file(const std::string& path);
    /// Same, reading through a FaultFs seam (and its fault schedule).
    [[nodiscard]] static Checkpoint parse_file(const std::string& path,
                                               util::FaultFs& fs);
};

/// FNV-1a over a canonical byte encoding of the journal's entries.
[[nodiscard]] std::uint64_t journal_fnv(const runtime::NodeJournal& journal);

/// Writes `text` to `path` atomically and durably: `path.tmp`, fsync of
/// the temp file *before* rename, fsync of the containing directory
/// *after* -- so neither a SIGKILL mid-write nor a power-loss-style crash
/// can surface an empty, missing, or half-written "successfully written"
/// file.  All five steps are FaultFs fault sites.  Throws
/// std::runtime_error on I/O failure (injected or real); the temp file is
/// cleaned up on every failure path.
void write_atomic(const std::string& path, const std::string& text,
                  util::FaultFs& fs);
/// Convenience overload through the process-wide passthrough seam.
void write_atomic(const std::string& path, const std::string& text);

/// Every resume candidate `checkpoint-<sim_clock_us>.ckpt` in `dir`,
/// newest (highest clock) first.  Leftover `*.tmp` files from interrupted
/// writes and `*.quarantined-*` artifacts are never candidates, nor is
/// anything whose stem is not a pure decimal clock.
[[nodiscard]] std::vector<std::string> checkpoint_chain(
    const std::string& dir);

/// The newest `checkpoint-*.ckpt` in `dir` (empty string when none):
/// checkpoint_chain(dir).front().
[[nodiscard]] std::string latest_checkpoint_file(const std::string& dir);

/// Moves a corrupt checkpoint out of the resume-candidate set by renaming
/// it to `<path>.quarantined-<reason>`, preserving the evidence for a
/// post-mortem.  Returns the new name, or the empty string when even the
/// rename failed (the caller still skips the file either way).
std::string quarantine_checkpoint(const std::string& path,
                                  const std::string& reason);

/// Maps a checkpoint load failure (exception text) to the short reason
/// slug used in quarantine names: "digest-mismatch", "truncated",
/// "io-error", or "parse-error".
[[nodiscard]] std::string checkpoint_failure_reason(const std::string& what);

/// Deletes the oldest entries of the chain beyond the newest `keep`
/// (keep == 0 keeps everything).  Quarantined artifacts are never touched.
/// Returns the number of files removed.
std::size_t prune_checkpoint_chain(const std::string& dir, std::size_t keep);

}  // namespace concilium::daemon
