// Daemon checkpoints: periodic, verifiable progress records (DAEMON.md).
//
// conciliumd's recovery story is the NodeJournal philosophy applied at
// process scope: the workload trace is the journal of record, the run is a
// pure function of (trace bytes, directives), and a restarted daemon
// *replays* that function deterministically.  A checkpoint therefore does
// not serialize the cluster -- it records a digest of the full
// deterministic state at one sim instant (ground-truth stats, every node's
// journal, the feed cursor) so that
//
//   * restart knows the sim clock the previous incarnation had reached
//     (the resume target),
//   * the replay can be *verified*: when the replayed run reaches the
//     checkpointed clock its recomputed state text must match the
//     checkpoint byte for byte, or the daemon refuses to continue
//     (non-determinism and trace tampering both fail loudly), and
//   * two runs of the same trace -- killed-and-resumed or not -- can be
//     compared with cmp(1): equal state text == identical runs.
//
// The file format is the same strict line-oriented text as the trace, with
// a trailing self-digest so a torn write is detected even though writes go
// through write_atomic()'s tmp-then-rename.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/time.h"

namespace concilium::runtime {
class NodeJournal;
}  // namespace concilium::runtime

namespace concilium::daemon {

struct Checkpoint {
    /// FNV-1a of the raw trace text this run was driven by.
    std::uint64_t trace_fnv = 0;
    util::SimTime sim_clock = 0;
    /// Loop geometry: a resume with different tick or cadence would place
    /// feed windows and checkpoints elsewhere and silently diverge, so the
    /// daemon refuses to resume across a mismatch.
    util::SimTime tick = 0;
    util::SimTime checkpoint_every = 0;
    std::uint64_t messages_fed = 0;
    std::uint64_t checkpoints_written = 0;

    /// Ground-truth runtime::Cluster::Stats, every field by name in
    /// declaration order.
    std::vector<std::pair<std::string, std::uint64_t>> stats;

    /// Per-node durable state: entry count + FNV-1a over a canonical
    /// encoding of each NodeJournal.
    struct JournalDigest {
        std::uint64_t entries = 0;
        std::uint64_t fnv = 0;
    };
    std::vector<JournalDigest> journals;

    /// Serializes to the checkpoint text, self-digest line included.
    [[nodiscard]] std::string to_text() const;

    /// Strict parse; verifies the self-digest.  Throws
    /// std::invalid_argument naming `origin` and the offending line.
    [[nodiscard]] static Checkpoint parse(std::string_view text,
                                          std::string_view origin);

    [[nodiscard]] static Checkpoint parse_file(const std::string& path);
};

/// FNV-1a over a canonical byte encoding of the journal's entries.
[[nodiscard]] std::uint64_t journal_fnv(const runtime::NodeJournal& journal);

/// Writes `text` to `path` atomically (`path.tmp` + rename) so a SIGKILL
/// mid-write never leaves a half-checkpoint behind.  Throws
/// std::runtime_error on I/O failure.
void write_atomic(const std::string& path, const std::string& text);

/// The newest `checkpoint-*.ckpt` in `dir` (empty string when none).
[[nodiscard]] std::string latest_checkpoint_file(const std::string& dir);

}  // namespace concilium::daemon
