#include "daemon/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "daemon/workload.h"
#include "runtime/journal.h"

namespace concilium::daemon {

namespace {

[[noreturn]] void fail(const std::string& where, const std::string& what) {
    throw std::invalid_argument(where + ": " + what);
}

void append_hex64(std::string& out, std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    out += buf;
}

std::uint64_t fold_u64(std::uint64_t h, std::uint64_t v) {
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) {
        bytes[i] = static_cast<unsigned char>(v >> (8 * i));
    }
    return fnv1a(h, bytes, sizeof bytes);
}

}  // namespace

std::uint64_t journal_fnv(const runtime::NodeJournal& journal) {
    std::uint64_t h = kFnvOffset;
    for (const auto& e : journal.entries()) {
        h = fold_u64(h, static_cast<std::uint64_t>(e.kind));
        h = fold_u64(h, e.value);
        h = fold_u64(h, e.hop);
        h = fnv1a(h, e.peer.bytes().data(), e.peer.bytes().size());
        h = fold_u64(h, e.guilty ? 1 : 0);
        h = fold_u64(h, static_cast<std::uint64_t>(e.at));
        h = fold_u64(h, static_cast<std::uint64_t>(e.until));
        h = fold_u64(h, e.commitment.has_value() ? 1 : 0);
        if (e.commitment.has_value()) {
            h = fold_u64(h, e.commitment->message_id);
            h = fold_u64(h, static_cast<std::uint64_t>(e.commitment->at));
            h = fnv1a(h, e.commitment->forwarder.bytes().data(),
                      e.commitment->forwarder.bytes().size());
        }
    }
    return h;
}

std::string Checkpoint::to_text() const {
    std::string out = "concilium-checkpoint v1\n";
    const auto line = [&out](const char* name, std::uint64_t v) {
        out += name;
        out += ' ';
        out += std::to_string(v);
        out += '\n';
    };
    out += "trace-fnv ";
    append_hex64(out, trace_fnv);
    out += '\n';
    line("sim-clock-us", static_cast<std::uint64_t>(sim_clock));
    line("tick-us", static_cast<std::uint64_t>(tick));
    line("checkpoint-every-us", static_cast<std::uint64_t>(checkpoint_every));
    line("messages-fed", messages_fed);
    line("checkpoints-written", checkpoints_written);
    for (const auto& [name, value] : stats) {
        out += "stat ";
        out += name;
        out += ' ';
        out += std::to_string(value);
        out += '\n';
    }
    for (std::size_t m = 0; m < journals.size(); ++m) {
        out += "journal ";
        out += std::to_string(m);
        out += ' ';
        out += std::to_string(journals[m].entries);
        out += ' ';
        append_hex64(out, journals[m].fnv);
        out += '\n';
    }
    out += "digest ";
    append_hex64(out, fnv1a(kFnvOffset, out.data(), out.size()));
    out += "\nend\n";
    return out;
}

Checkpoint Checkpoint::parse(std::string_view text, std::string_view origin) {
    Checkpoint ck;
    std::size_t line_no = 0;
    std::size_t pos = 0;
    bool saw_header = false;
    bool saw_digest = false;
    bool saw_end = false;
    std::size_t digest_covers = 0;  // byte offset the self-digest spans
    std::uint64_t claimed_digest = 0;

    // Field presence, so a truncated file cannot parse as a sparse one.
    bool have[6] = {};  // trace-fnv clock tick every fed written

    while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const std::size_t line_end =
            eol == std::string_view::npos ? text.size() : eol;
        const std::string_view line = text.substr(pos, line_end - pos);
        const std::size_t line_start = pos;
        pos = eol == std::string_view::npos ? text.size() : eol + 1;
        ++line_no;
        const std::string where =
            std::string(origin) + ":" + std::to_string(line_no);

        if (!saw_header) {
            if (line != "concilium-checkpoint v1") {
                fail(where, "not a checkpoint file");
            }
            saw_header = true;
            continue;
        }
        if (saw_end) fail(where, "content after 'end'");
        if (saw_digest) {
            if (line != "end") fail(where, "expected 'end' after digest");
            saw_end = true;
            continue;
        }

        // Tokenize: checkpoint lines are "name value [value ...]".
        std::vector<std::string_view> fields;
        std::size_t i = 0;
        while (i < line.size()) {
            while (i < line.size() && line[i] == ' ') ++i;
            std::size_t start = i;
            while (i < line.size() && line[i] != ' ') ++i;
            if (i > start) fields.push_back(line.substr(start, i - start));
        }
        if (fields.empty()) fail(where, "blank line inside checkpoint");
        const std::string_view kind = fields[0];

        const auto want = [&](std::size_t n) {
            if (fields.size() != n) {
                fail(where, "'" + std::string(kind) + "' takes " +
                                std::to_string(n - 1) + " value(s)");
            }
        };
        const auto hex = [&](std::string_view token) {
            if (token.size() != 16) {
                fail(where, "expected 16 hex digits");
            }
            std::uint64_t v = 0;
            for (const char c : token) {
                int d;
                if (c >= '0' && c <= '9') {
                    d = c - '0';
                } else if (c >= 'a' && c <= 'f') {
                    d = 10 + (c - 'a');
                } else {
                    fail(where, "expected lowercase hex digits");
                }
                v = (v << 4) | static_cast<std::uint64_t>(d);
            }
            return v;
        };

        if (kind == "trace-fnv") {
            want(2);
            ck.trace_fnv = hex(fields[1]);
            have[0] = true;
        } else if (kind == "sim-clock-us") {
            want(2);
            ck.sim_clock = static_cast<util::SimTime>(
                parse_uint(fields[1], where));
            have[1] = true;
        } else if (kind == "tick-us") {
            want(2);
            ck.tick = static_cast<util::SimTime>(parse_uint(fields[1], where));
            have[2] = true;
        } else if (kind == "checkpoint-every-us") {
            want(2);
            ck.checkpoint_every =
                static_cast<util::SimTime>(parse_uint(fields[1], where));
            have[3] = true;
        } else if (kind == "messages-fed") {
            want(2);
            ck.messages_fed = parse_uint(fields[1], where);
            have[4] = true;
        } else if (kind == "checkpoints-written") {
            want(2);
            ck.checkpoints_written = parse_uint(fields[1], where);
            have[5] = true;
        } else if (kind == "stat") {
            want(3);
            ck.stats.emplace_back(std::string(fields[1]),
                                  parse_uint(fields[2], where));
        } else if (kind == "journal") {
            want(4);
            const std::uint64_t m = parse_uint(fields[1], where);
            if (m != ck.journals.size()) {
                fail(where, "journal lines out of order");
            }
            Checkpoint::JournalDigest jd;
            jd.entries = parse_uint(fields[2], where);
            jd.fnv = hex(fields[3]);
            ck.journals.push_back(jd);
        } else if (kind == "digest") {
            want(2);
            claimed_digest = hex(fields[1]);
            digest_covers = line_start + 7;  // text up to "digest "
            saw_digest = true;
        } else {
            fail(where, "unknown checkpoint field '" + std::string(kind) +
                            "'");
        }
    }

    if (!saw_header) fail(std::string(origin) + ":1", "empty checkpoint");
    if (!saw_end) {
        fail(std::string(origin) + ":" + std::to_string(line_no),
             "missing 'end' (truncated checkpoint?)");
    }
    for (const bool h : have) {
        if (!h) {
            fail(std::string(origin),
                 "checkpoint is missing a required header field");
        }
    }
    const std::uint64_t actual =
        fnv1a(kFnvOffset, text.data(), digest_covers);
    if (actual != claimed_digest) {
        fail(std::string(origin),
             "self-digest mismatch (torn or tampered checkpoint)");
    }
    return ck;
}

Checkpoint Checkpoint::parse_file(const std::string& path) {
    return parse_file(path, util::FaultFs::system());
}

Checkpoint Checkpoint::parse_file(const std::string& path,
                                  util::FaultFs& fs) {
    return parse(fs.read_file(path), path);
}

void write_atomic(const std::string& path, const std::string& text,
                  util::FaultFs& fs) {
    const std::string tmp = path + ".tmp";
    const int fd = fs.open_trunc(tmp);
    try {
        fs.write_all(fd, text, tmp);
        // fsync *before* rename: without it, a power loss after the rename
        // can surface an empty or garbage file under the final name -- the
        // one failure shape tmp-then-rename exists to rule out.
        fs.fsync_fd(fd, tmp);
    } catch (...) {
        fs.close_fd(fd);
        std::remove(tmp.c_str());
        throw;
    }
    fs.close_fd(fd);
    try {
        fs.rename_file(tmp, path);
    } catch (...) {
        std::remove(tmp.c_str());
        throw;
    }
    // fsync the containing directory so the rename itself is durable.
    const std::string parent =
        std::filesystem::path(path).parent_path().string();
    fs.fsync_dir(parent.empty() ? "." : parent);
}

void write_atomic(const std::string& path, const std::string& text) {
    write_atomic(path, text, util::FaultFs::system());
}

namespace {

/// The sim clock encoded in a resume-candidate filename, or -1 when the
/// name is not a candidate (wrong affixes, leftover `.tmp`, quarantined
/// artifact, non-decimal stem).
util::SimTime candidate_clock(const std::string& name) {
    if (name.rfind("checkpoint-", 0) != 0) return -1;
    if (name.size() < 17 || name.substr(name.size() - 5) != ".ckpt") {
        return -1;
    }
    // Defense in depth: the suffix check above already rejects `.tmp` and
    // `.quarantined-*` names, but those must never become resume
    // candidates even if the naming scheme grows, so reject explicitly.
    if (name.find(".tmp") != std::string::npos ||
        name.find(".quarantined") != std::string::npos) {
        return -1;
    }
    const std::string stem = name.substr(11, name.size() - 11 - 5);
    if (stem.empty()) return -1;
    util::SimTime clock = 0;
    for (const char c : stem) {
        if (c < '0' || c > '9') return -1;
        clock = clock * 10 + (c - '0');
    }
    return clock;
}

}  // namespace

std::vector<std::string> checkpoint_chain(const std::string& dir) {
    namespace fs = std::filesystem;
    std::error_code ec;
    std::vector<std::pair<util::SimTime, std::string>> found;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        const util::SimTime clock =
            candidate_clock(entry.path().filename().string());
        if (clock < 0) continue;
        found.emplace_back(clock, entry.path().string());
    }
    std::sort(found.begin(), found.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<std::string> chain;
    chain.reserve(found.size());
    for (auto& [clock, path] : found) chain.push_back(std::move(path));
    return chain;
}

std::string latest_checkpoint_file(const std::string& dir) {
    const std::vector<std::string> chain = checkpoint_chain(dir);
    return chain.empty() ? std::string() : chain.front();
}

std::string quarantine_checkpoint(const std::string& path,
                                  const std::string& reason) {
    std::string slug;
    for (const char c : reason) {
        if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-') {
            slug += c;
        } else if (c == ' ' || c == '_') {
            slug += '-';
        }
    }
    if (slug.empty()) slug = "unknown";
    const std::string moved = path + ".quarantined-" + slug;
    if (std::rename(path.c_str(), moved.c_str()) != 0) return {};
    return moved;
}

std::string checkpoint_failure_reason(const std::string& what) {
    if (what.find("digest") != std::string::npos) return "digest-mismatch";
    if (what.find("truncated") != std::string::npos ||
        what.find("empty checkpoint") != std::string::npos) {
        return "truncated";
    }
    if (what.find("failed:") != std::string::npos) return "io-error";
    return "parse-error";
}

std::size_t prune_checkpoint_chain(const std::string& dir,
                                   std::size_t keep) {
    if (keep == 0) return 0;
    const std::vector<std::string> chain = checkpoint_chain(dir);
    std::size_t removed = 0;
    for (std::size_t i = keep; i < chain.size(); ++i) {
        if (std::remove(chain[i].c_str()) == 0) ++removed;
    }
    return removed;
}

}  // namespace concilium::daemon
