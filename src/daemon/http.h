// Minimal scrape server for conciliumd (DAEMON.md).
//
// One loopback listener, one background thread, HTTP/1.0 close-per-request
// semantics: exactly the surface a Prometheus scraper or a CI curl needs
// and nothing more.  Responses are produced by caller-supplied handlers so
// the server knows nothing about metrics, health, or spans -- it routes
// four GET paths and closes the connection.
//
// Deliberately not a general web server: no keep-alive, no TLS, no POST,
// no request bodies, loopback only.  The daemon's *state* is owned by the
// sim thread; handlers must be safe to call from the server thread (the
// ones conciliumd installs snapshot atomics or take registry snapshots,
// both of which are).
//
// Because the loop serves one connection at a time, it defends its own
// availability: a client that connects and sends nothing is cut off with
// 408 after a short per-connection deadline, and a request whose header
// exceeds the size ceiling gets 413 -- either way the loop moves on and
// /healthz stays scrapeable.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace concilium::daemon {

class HttpServer {
  public:
    /// One handler per route; each returns the full response body.  The
    /// content type is fixed per route (text/plain for /metrics and
    /// /healthz, application/json for /metrics.json and /spans).
    struct Handlers {
        std::function<std::string()> metrics_text;
        std::function<std::string()> metrics_json;
        std::function<std::string()> health;
        std::function<std::string()> spans;
    };

    HttpServer() = default;
    ~HttpServer() { stop(); }

    HttpServer(const HttpServer&) = delete;
    HttpServer& operator=(const HttpServer&) = delete;

    /// Binds 127.0.0.1:`port` (0 picks an ephemeral port), starts the
    /// serving thread.  Throws std::runtime_error when the bind fails.
    void start(std::uint16_t port, Handlers handlers);

    /// Closes the listener and joins the thread.  Idempotent.
    void stop();

    /// The bound port (resolves ephemeral binds); 0 before start().
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  private:
    void serve();
    void handle_client(int fd);

    Handlers handlers_;
    // The fd is written only while the serving thread is not running;
    // stopping_ is the cross-thread signal (the fd itself stays valid
    // until the thread has joined, so serve() never reads a stale fd).
    int listen_fd_ = -1;
    std::atomic<bool> stopping_{false};
    std::uint16_t port_ = 0;
    std::thread thread_;
};

}  // namespace concilium::daemon
