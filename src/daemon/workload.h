// Trace-driven workload for conciliumd (DAEMON.md).
//
// Everything else in this repo drives the protocol from bespoke bench
// loops; the daemon instead streams its load from a *workload trace*: a
// versioned, line-oriented text file of timestamped message / churn /
// crash / fault / attack records plus a small directive preamble naming
// the world (seed, overlay size, topology shape, duration).  The format
// exists so that millions-of-users-shaped traffic -- diurnal load curves,
// flash crowds, correlated regional churn -- can be generated once
// (tools/gen_workload.py), version-controlled, and replayed byte-for-byte.
//
// Parsing is strict in the FaultSpec tradition: an unknown record kind, a
// malformed field, a record before the preamble ends, an out-of-order
// timestamp, or a truncated file (the mandatory `end <count>` trailer is
// how truncation is detected) all throw std::invalid_argument naming the
// offending line.  A daemon fed garbage refuses to start; it never guesses.
//
// Grammar (one construct per line; `#` comments and blank lines ignored):
//
//   header     := "concilium-trace v1"               (first line, exactly)
//   directive  := ("seed" | "nodes" | "hosts" | "stubs") SP uint
//               | "duration" SP time
//   record     := "msg"    SP time SP member SP hex64   (send toward key)
//               | "churn"  SP time SP member SP time    (leave, down-for)
//               | "crash"  SP time SP member SP time    (crash, down-for)
//               | "fault"  SP time SP member SP member SP time
//                                          (IP path a->b loses a link)
//               | "attack" SP time SP member SP role
//   trailer    := "end" SP uint                        (the record count)
//   time       := uint ("us" | "ms" | "s" | "min" | "h")
//   role       := drop | flip | equivocate | replay | slander | spam
//               | collude
//
// Directives must precede the first record, each may appear once, and
// record timestamps must be non-decreasing.  Attack roles are static node
// behaviors (runtime::NodeBehavior); the record's timestamp is validated
// and kept for bookkeeping but the role is active from cluster start --
// behaviors are fixed at construction (see DAEMON.md).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/faultfs.h"
#include "util/time.h"

namespace concilium::daemon {

/// FNV-1a offset basis; checkpoints bind to a trace by this digest.
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;

/// Incremental FNV-1a fold over raw bytes.
[[nodiscard]] std::uint64_t fnv1a(std::uint64_t h, const void* data,
                                  std::size_t n) noexcept;

enum class RecordKind : std::uint8_t {
    kMessage,  ///< application message send
    kChurn,    ///< graceful leave + rejoin
    kCrash,    ///< crash-stop (amnesia) + journal-replay restart
    kFault,    ///< IP-level down interval on the a->b path
    kAttack,   ///< node adopts a misbehavior role
};

[[nodiscard]] std::string_view to_string(RecordKind kind);

enum class AttackRole : std::uint8_t {
    kDrop,        ///< drop every message it should forward
    kFlip,        ///< invert link verdicts in published snapshots
    kEquivocate,  ///< per-peer snapshot variants (ADVERSARY.md)
    kReplay,      ///< stale snapshot re-advertisement
    kSlander,     ///< forged accusations against honest peers
    kSpam,        ///< DHT junk floods under victims' keys
    kCollude,     ///< fabricated post-drop revisions
};

[[nodiscard]] std::string_view to_string(AttackRole role);

/// One parsed trace line.  Plain data; field use depends on `kind`:
/// msg uses (a, key); churn/crash use (a, down); fault uses (a, b, down);
/// attack uses (a, role).
struct WorkloadRecord {
    RecordKind kind = RecordKind::kMessage;
    util::SimTime at = 0;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint64_t key = 0;
    util::SimTime down = 0;
    AttackRole role = AttackRole::kDrop;
};

/// A fully parsed trace: the world directives plus every record in file
/// order (timestamps non-decreasing by construction).
struct Workload {
    std::uint64_t seed = 1;
    std::size_t overlay_nodes = 90;
    std::size_t end_hosts = 600;
    std::size_t stub_domains = 16;
    util::SimTime duration = 2 * util::kHour;

    std::vector<WorkloadRecord> records;
    std::size_t messages = 0;
    std::size_t churns = 0;
    std::size_t crashes = 0;
    std::size_t faults = 0;
    std::size_t attacks = 0;

    /// FNV-1a over the raw trace text; checkpoints refuse to resume a run
    /// whose trace bytes changed underneath them.
    std::uint64_t content_fnv = kFnvOffset;

    /// Timestamp of the last record (0 when the trace has none).
    [[nodiscard]] util::SimTime last_record_at() const noexcept {
        return records.empty() ? 0 : records.back().at;
    }

    /// Strict parse.  `origin` names the source in error messages
    /// (`origin:line: message`).  Throws std::invalid_argument.
    [[nodiscard]] static Workload parse(std::string_view text,
                                        std::string_view origin);

    /// parse() over a file's bytes; throws std::invalid_argument when the
    /// file cannot be read.
    [[nodiscard]] static Workload parse_file(const std::string& path);
    /// Same, reading through a FaultFs seam so trace input shares the
    /// daemon's storage-fault schedule.
    [[nodiscard]] static Workload parse_file(const std::string& path,
                                             util::FaultFs& fs);
};

/// Strict `<uint><unit>` simulation-time parse shared with the checkpoint
/// reader; throws std::invalid_argument on anything else.
[[nodiscard]] util::SimTime parse_time(std::string_view token,
                                       const std::string& where);

/// Strict non-negative integer parse; throws std::invalid_argument.
[[nodiscard]] std::uint64_t parse_uint(std::string_view token,
                                       const std::string& where);

}  // namespace concilium::daemon
