#include "daemon/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/metrics.h"

namespace concilium::daemon {

namespace {

std::string make_response(int code, const char* status,
                          const char* content_type,
                          const std::string& body) {
    std::string out = "HTTP/1.0 ";
    out += std::to_string(code);
    out += ' ';
    out += status;
    out += "\r\nContent-Type: ";
    out += content_type;
    out += "\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

void send_all(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                                 MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            return;  // client went away; nothing useful to do
        }
        off += static_cast<std::size_t>(n);
    }
}

}  // namespace

void HttpServer::start(std::uint16_t port, Handlers handlers) {
    handlers_ = std::move(handlers);

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(listen_fd_, 16) < 0) {
        const std::string why = std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("bind 127.0.0.1:" + std::to_string(port) +
                                 ": " + why);
    }

    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    stopping_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { serve(); });
}

void HttpServer::stop() {
    if (listen_fd_ >= 0) {
        // Signal first, then shutdown() to wake the poll/accept; the fd is
        // only closed and reassigned after the thread has joined, so the
        // serving thread never observes a torn or stale descriptor.
        stopping_.store(true, std::memory_order_release);
        ::shutdown(listen_fd_, SHUT_RDWR);
    }
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    port_ = 0;
}

void HttpServer::serve() {
    // Cached handle: the request counter is wall-clock-driven by nature.
    auto& requests = util::metrics::Registry::global().timing_counter(
        "daemon.http_requests");
    for (;;) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int r = ::poll(&pfd, 1, 250);
        if (stopping_.load(std::memory_order_acquire)) return;
        if (r <= 0) continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED) continue;
            return;  // listener closed or broken
        }
        requests.add(1);
        handle_client(fd);
        ::close(fd);
    }
}

namespace {

/// Per-connection read deadline.  The serve loop is single-threaded by
/// design (one scraper, localhost); without a deadline one silent client
/// that connects and sends nothing wedges /healthz for every scraper that
/// follows -- the exact unobservability failure the daemon exists to avoid.
constexpr int kRecvTimeoutMs = 2000;
/// Header-size ceiling; a request that exceeds it is refused, not dropped.
constexpr std::size_t kMaxRequestBytes = 16384;

}  // namespace

void HttpServer::handle_client(int fd) {
    // Read until the header terminator; request bodies are not supported.
    std::string req;
    char buf[2048];
    bool timed_out = false;
    while (req.find("\r\n\r\n") == std::string::npos &&
           req.size() <= kMaxRequestBytes) {
        pollfd pfd{fd, POLLIN, 0};
        const int r = ::poll(&pfd, 1, kRecvTimeoutMs);
        if (r < 0 && errno == EINTR) continue;
        if (r <= 0) {
            timed_out = true;
            break;
        }
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            break;
        }
        req.append(buf, static_cast<std::size_t>(n));
    }
    if (timed_out) {
        send_all(fd, make_response(408, "Request Timeout", "text/plain",
                                   "no complete request header within " +
                                       std::to_string(kRecvTimeoutMs) +
                                       "ms\n"));
        return;
    }
    if (req.size() > kMaxRequestBytes) {
        send_all(fd, make_response(413, "Payload Too Large", "text/plain",
                                   "request header exceeds " +
                                       std::to_string(kMaxRequestBytes) +
                                       " bytes\n"));
        return;
    }

    const std::size_t line_end = req.find("\r\n");
    const std::string line =
        line_end == std::string::npos ? req : req.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        send_all(fd, make_response(400, "Bad Request", "text/plain",
                                   "malformed request line\n"));
        return;
    }
    const std::string method = line.substr(0, sp1);
    const std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (method != "GET") {
        send_all(fd, make_response(405, "Method Not Allowed", "text/plain",
                                   "GET only\n"));
        return;
    }

    if (path == "/metrics") {
        send_all(fd, make_response(200, "OK",
                                   "text/plain; version=0.0.4",
                                   handlers_.metrics_text()));
    } else if (path == "/metrics.json") {
        send_all(fd, make_response(200, "OK", "application/json",
                                   handlers_.metrics_json()));
    } else if (path == "/healthz") {
        send_all(fd, make_response(200, "OK", "text/plain",
                                   handlers_.health()));
    } else if (path == "/spans") {
        send_all(fd, make_response(200, "OK", "application/json",
                                   handlers_.spans()));
    } else {
        send_all(fd, make_response(404, "Not Found", "text/plain",
                                   "unknown path " + path + "\n"));
    }
}

}  // namespace concilium::daemon
